package dkf_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	dkf "repro"
)

// haloTrace runs the canonical 2-rank (one GPU per node) halo exchange with
// tracing enabled and returns the session plus its Chrome trace bytes.
func haloTrace(t *testing.T) (*dkf.Session, []byte) {
	t.Helper()
	spec := dkf.SystemLassen.Spec()
	spec.Nodes = 2
	spec.GPUsPerNode = 1
	sess, err := dkf.NewSession(dkf.SessionConfig{
		CustomSpec: &spec,
		Scheme:     dkf.SchemeProposedTuned,
		Trace:      &dkf.TraceOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Vector(16, 32, 64, dkf.Float64))
	s0 := sess.Alloc(0, "s0", int(l.ExtentBytes))
	r0 := sess.Alloc(0, "r0", int(l.ExtentBytes))
	s1 := sess.Alloc(1, "s1", int(l.ExtentBytes))
	r1 := sess.Alloc(1, "r1", int(l.ExtentBytes))
	dkf.FillPattern(s0.Data, 1)
	dkf.FillPattern(s1.Data, 2)
	err = sess.Run(func(c *dkf.RankCtx) {
		peer := 1 - c.ID()
		sb, rb := s0, r0
		if c.ID() == 1 {
			sb, rb = s1, r1
		}
		c.Waitall([]*dkf.Request{
			c.Irecv(peer, 0, rb, l, 1),
			c.Isend(peer, 0, sb, l, 1),
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sess.Timeline().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	return sess, b.Bytes()
}

// TestGoldenHaloTrace pins the Chrome trace of a 2-rank halo exchange
// byte-for-byte: the simulation is deterministic and the writer emits no
// map-ordered or time-of-day content, so any diff is a real behavior
// change. Refresh with UPDATE_GOLDEN=1 go test -run TestGoldenHaloTrace.
func TestGoldenHaloTrace(t *testing.T) {
	_, got := haloTrace(t)
	_, again := haloTrace(t)
	if !bytes.Equal(got, again) {
		t.Fatal("trace not byte-identical across two runs")
	}
	golden := filepath.Join("testdata", "golden_halo2rank_trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace differs from golden %s (len got=%d want=%d); rerun with UPDATE_GOLDEN=1 if intended",
			golden, len(got), len(want))
	}
}

// TestTraceCoversAllLayersAndParses checks the structural acceptance
// criteria: valid JSON, events from all four instrumentation layers, one
// Chrome process per rank.
func TestTraceCoversAllLayersAndParses(t *testing.T) {
	_, raw := haloTrace(t)
	var cf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &cf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	layers := map[string]bool{}
	pids := map[int]bool{}
	for _, e := range cf.TraceEvents {
		if e.Cat != "" {
			layers[e.Cat] = true
		}
		pids[e.Pid] = true
	}
	for _, want := range []string{"sim", "gpu", "mpi", "fusion"} {
		if !layers[want] {
			t.Errorf("no events from layer %q (got %v)", want, layers)
		}
	}
	if len(pids) != 2 {
		t.Errorf("want 2 rank processes, got %v", pids)
	}
}

// TestTimelineSumsMatchBreakdownEveryScheme is the conformance-style
// reconciliation check: for every scheme, the per-category timeline sums of
// each rank equal Session.TraceOf(rank) exactly — every Breakdown charge is
// mirrored by exactly one timeline event.
func TestTimelineSumsMatchBreakdownEverySchemes(t *testing.T) {
	l := dkf.Commit(dkf.Indexed([]int{3, 1, 2}, []int{0, 5, 9}, dkf.Float32))
	for _, scheme := range dkf.Schemes() {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			sess, err := dkf.NewSession(dkf.SessionConfig{
				Scheme: scheme,
				Trace:  &dkf.TraceOptions{},
			})
			if err != nil {
				t.Fatal(err)
			}
			sbuf := sess.Alloc(0, "s", int(l.ExtentBytes))
			rbuf := sess.Alloc(4, "r", int(l.ExtentBytes))
			dkf.FillPattern(sbuf.Data, 7)
			err = sess.Run(func(c *dkf.RankCtx) {
				switch c.ID() {
				case 0:
					c.Wait(c.Isend(4, 0, sbuf, l, 1))
				case 4:
					c.Wait(c.Irecv(0, 0, rbuf, l, 1))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			tl := sess.Timeline()
			if tl == nil {
				t.Fatal("traced session must expose a timeline")
			}
			for rk := 0; rk < sess.NumRanks(); rk++ {
				sums := tl.Rank(rk).Sums()
				bd := sess.TraceOf(rk)
				// String renders every category, so equality here is
				// per-category equality.
				if sums.Total() != bd.Total() || sums.String() != bd.String() {
					t.Errorf("rank %d: timeline sums != breakdown\n  timeline:  %s\n  breakdown: %s",
						rk, sums, bd)
				}
			}
			if sess.TraceOf(0).Total() == 0 {
				t.Error("sender breakdown empty — instrumentation not exercised")
			}
		})
	}
}

// TestUntracedSessionHasNoTimeline pins the disabled default.
func TestUntracedSessionHasNoTimeline(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Timeline() != nil {
		t.Fatal("session without Trace must have a nil timeline")
	}
}
