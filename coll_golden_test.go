package dkf_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	dkf "repro"
)

// neighborTrace runs a fused NeighborAlltoallw ring exchange on a 2-node ×
// 2-GPU (4-rank) system with tracing on and returns the session plus its
// Chrome trace bytes. Every rank exchanges a strided face with both ring
// neighbors in one collective, so the trace shows the collective-scope
// fusion windows (coll layer) bracketing the per-phase fused launches.
func neighborTrace(t *testing.T) (*dkf.Session, []byte) {
	t.Helper()
	spec := dkf.SystemLassen.Spec()
	spec.Nodes = 2
	spec.GPUsPerNode = 2
	sess, err := dkf.NewSession(dkf.SessionConfig{
		CustomSpec: &spec,
		Scheme:     dkf.SchemeProposedTuned,
		Trace:      &dkf.TraceOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Vector(16, 32, 64, dkf.Float64))
	n := sess.NumRanks()
	type bufs struct{ sl, sr, rl, rr *dkf.Buffer }
	all := make([]bufs, n)
	for r := 0; r < n; r++ {
		all[r] = bufs{
			sl: sess.Alloc(r, "sl", int(l.ExtentBytes)),
			sr: sess.Alloc(r, "sr", int(l.ExtentBytes)),
			rl: sess.Alloc(r, "rl", int(l.ExtentBytes)),
			rr: sess.Alloc(r, "rr", int(l.ExtentBytes)),
		}
		dkf.FillPattern(all[r].sl.Data, uint64(2*r+1))
		dkf.FillPattern(all[r].sr.Data, uint64(2*r+2))
	}
	err = sess.Run(func(c *dkf.RankCtx) {
		left := (c.ID() + n - 1) % n
		right := (c.ID() + 1) % n
		b := all[c.ID()]
		err := c.NeighborAlltoallw([]dkf.NeighborOp{
			{Peer: left, SendBuf: b.sl, SendType: l, RecvBuf: b.rl, RecvType: l, Count: 1},
			{Peer: right, SendBuf: b.sr, SendType: l, RecvBuf: b.rr, RecvType: l, Count: 1},
		})
		if err != nil {
			t.Errorf("rank %d: %v", c.ID(), err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sess.Timeline().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	return sess, b.Bytes()
}

// TestGoldenNeighborTrace pins the Chrome trace of the fused 4-rank
// NeighborAlltoallw byte-for-byte (the committed file also feeds the CI
// tracecheck smoke). Refresh with
// UPDATE_GOLDEN=1 go test -run TestGoldenNeighborTrace.
func TestGoldenNeighborTrace(t *testing.T) {
	sess, got := neighborTrace(t)
	_, again := neighborTrace(t)
	if !bytes.Equal(got, again) {
		t.Fatal("neighbor trace not byte-identical across two runs")
	}
	// The exchange ran under the collective engine: ring neighbors received
	// each other's payloads byte-exactly (checked by the conformance suite)
	// and no requests leaked.
	if n := sess.LeakedRequests(); n != 0 {
		t.Fatalf("%d leaked requests", n)
	}
	golden := filepath.Join("testdata", "golden_neighbor4rank_trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace differs from golden %s (len got=%d want=%d); rerun with UPDATE_GOLDEN=1 if intended",
			golden, len(got), len(want))
	}
}

// TestNeighborTraceHasCollLayer checks the golden trace structurally:
// valid JSON, one Chrome process per rank, and events from the coll layer
// alongside the pt2pt layers it drives.
func TestNeighborTraceHasCollLayer(t *testing.T) {
	_, raw := neighborTrace(t)
	var cf struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Pid int    `json:"pid"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &cf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	layers := map[string]bool{}
	pids := map[int]bool{}
	for _, e := range cf.TraceEvents {
		if e.Cat != "" {
			layers[e.Cat] = true
		}
		if e.Ph != "M" {
			pids[e.Pid] = true
		}
	}
	for _, want := range []string{"coll", "mpi", "fusion", "gpu"} {
		if !layers[want] {
			t.Errorf("no events from layer %q (got %v)", want, layers)
		}
	}
	if len(pids) != 4 {
		t.Errorf("want 4 rank processes, got %v", pids)
	}
}
