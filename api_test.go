package dkf_test

import (
	"strings"
	"testing"

	dkf "repro"
)

// TestNewSessionRejectsInvalidConfigs is the validation table: every bad
// configuration must fail fast in NewSession with a descriptive error.
func TestNewSessionRejectsInvalidConfigs(t *testing.T) {
	abci := dkf.SystemABCI.Spec()
	noNodes := abci
	noNodes.Nodes = 0
	noGPUs := abci
	noGPUs.GPUsPerNode = 0
	cases := []struct {
		name    string
		cfg     dkf.SessionConfig
		wantSub string
	}{
		{"negative fusion threshold", dkf.SessionConfig{FusionThreshold: -1}, "FusionThreshold"},
		{"negative eager limit", dkf.SessionConfig{EagerLimit: -8192}, "EagerLimit"},
		{"negative pipeline chunk", dkf.SessionConfig{PipelineChunk: -1}, "PipelineChunk"},
		{"system below range", dkf.SessionConfig{System: dkf.System(-1)}, "unknown System"},
		{"system above range", dkf.SessionConfig{System: dkf.System(99)}, "unknown System"},
		{"unknown scheme", dkf.SessionConfig{Scheme: "bogus"}, `unknown scheme "bogus"`},
		{"custom spec without nodes", dkf.SessionConfig{CustomSpec: &noNodes}, "at least one node"},
		{"custom spec without gpus", dkf.SessionConfig{CustomSpec: &noGPUs}, "at least one GPU"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := dkf.NewSession(tc.cfg)
			if err == nil {
				t.Fatalf("NewSession(%+v) succeeded, want error", tc.cfg)
			}
			if sess != nil {
				t.Fatal("failed NewSession must return a nil session")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestUnknownSchemeErrorListsValidNames checks the error is actionable.
func TestUnknownSchemeErrorListsValidNames(t *testing.T) {
	_, err := dkf.NewSession(dkf.SessionConfig{Scheme: "nope"})
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range dkf.SchemeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid scheme %q", err, name)
		}
	}
}

// TestSchemeConstantsRoundTrip pins the typed constants to SchemeNames():
// every listed name is a valid constant value and vice versa.
func TestSchemeConstantsRoundTrip(t *testing.T) {
	constants := []dkf.Scheme{
		dkf.SchemeGPUSync, dkf.SchemeGPUAsync, dkf.SchemeCPUGPUHybrid,
		dkf.SchemeNaiveMemcpy, dkf.SchemeStagedHost, dkf.SchemeProposed,
		dkf.SchemeProposedTuned, dkf.SchemeProposedAuto,
	}
	names := dkf.SchemeNames()
	if len(constants) != len(names) {
		t.Fatalf("have %d typed constants but %d scheme names", len(constants), len(names))
	}
	byName := map[string]bool{}
	for _, n := range names {
		byName[n] = true
	}
	for _, c := range constants {
		if !byName[string(c)] {
			t.Errorf("constant %q not in SchemeNames() %v", c, names)
		}
	}
	if typed := dkf.Schemes(); len(typed) != len(names) {
		t.Fatalf("Schemes() has %d entries, want %d", len(typed), len(names))
	} else {
		for i, s := range typed {
			if string(s) != names[i] {
				t.Errorf("Schemes()[%d] = %q, want %q", i, s, names[i])
			}
		}
	}
}

// TestProductionAliasSchemesAccepted keeps the Fig. 14 legend names working.
func TestProductionAliasSchemesAccepted(t *testing.T) {
	for _, s := range []dkf.Scheme{dkf.SchemeMVAPICH2GDR, dkf.SchemeSpectrumMPI, dkf.SchemeOpenMPI} {
		if _, err := dkf.NewSession(dkf.SessionConfig{Scheme: s}); err != nil {
			t.Errorf("alias %q rejected: %v", s, err)
		}
	}
}

func TestAllocErrorsAndPanics(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AllocE(0, "z", 0); err == nil || !strings.Contains(err.Error(), "rank 0") {
		t.Fatalf("zero-size AllocE = %v, want error naming rank 0", err)
	}
	if _, err := sess.AllocE(0, "n", -4); err == nil {
		t.Fatal("negative AllocE must fail")
	}
	if _, err := sess.AllocE(0, "dup", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AllocE(0, "dup", 8); err == nil || !strings.Contains(err.Error(), `"dup"`) {
		t.Fatalf("duplicate AllocE = %v, want error naming the buffer", err)
	}
	// Same name on a different rank is fine.
	if _, err := sess.AllocE(1, "dup", 8); err != nil {
		t.Fatalf("same name on another rank must work: %v", err)
	}
	func() {
		defer func() {
			msg, _ := recover().(string)
			if !strings.Contains(msg, "rank 2") || !strings.Contains(msg, `"bad"`) {
				t.Fatalf("Alloc panic %q must name rank and buffer", msg)
			}
		}()
		sess.Alloc(2, "bad", -1)
	}()
}

func TestSessionClose(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{Trace: &dkf.TraceOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Contiguous(64, dkf.Byte))
	sbuf := sess.Alloc(0, "s", int(l.ExtentBytes))
	rbuf := sess.Alloc(4, "r", int(l.ExtentBytes))
	dkf.FillPattern(sbuf.Data, 3)
	if err := sess.Run(func(c *dkf.RankCtx) {
		switch c.ID() {
		case 0:
			c.Wait(c.Isend(4, 0, sbuf, l, 1))
		case 4:
			c.Wait(c.Irecv(0, 0, rbuf, l, 1))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if sbuf.Data != nil {
		t.Fatal("Close must release buffer memory")
	}
	if err := sess.Run(func(c *dkf.RankCtx) {}); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Run after Close = %v, want closed-session error", err)
	}
	if _, err := sess.AllocE(0, "late", 8); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("AllocE after Close = %v, want closed-session error", err)
	}
	// Observability survives Close.
	if sess.TraceOf(0).Total() == 0 {
		t.Fatal("trace must stay readable after Close")
	}
	if sess.Timeline() == nil {
		t.Fatal("timeline must stay readable after Close")
	}
}
