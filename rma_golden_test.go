package dkf_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	dkf "repro"
)

// rmaTrace runs a 2-rank put-based ring Allgatherv (one rank per node,
// so the puts cross the IB wire) with tracing on and returns the session,
// its Chrome trace bytes, and the recv checksums. fused selects the
// GPU-triggered PackPut arm; unfused disables the fusion window so every
// pack takes the launch → stream-sync → doorbell path.
func rmaTrace(t *testing.T, fused bool) (*dkf.Session, []byte, []uint64) {
	t.Helper()
	spec := dkf.SystemLassen.Spec()
	spec.Nodes, spec.GPUsPerNode = 2, 1
	cfg := dkf.SessionConfig{
		CustomSpec: &spec,
		Scheme:     dkf.SchemeProposedTuned,
		Trace:      &dkf.TraceOptions{},
		Backend:    dkf.BackendRMA,
	}
	if !fused {
		cfg.Coll.DisableFusionWindow = true
	}
	sess, err := dkf.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := dkf.Commit(dkf.Vector(16, 32, 64, dkf.Float64))
	n := sess.NumRanks()
	sends := make([]dkf.VOp, n)
	recvs := make([][]dkf.VOp, n)
	for r := 0; r < n; r++ {
		sb := sess.Alloc(r, "ag-s", int(l.ExtentBytes))
		dkf.FillPattern(sb.Data, uint64(7+r))
		sends[r] = dkf.VOp{Buf: sb, Type: l, Count: 1}
		recvs[r] = make([]dkf.VOp, n)
		for src := 0; src < n; src++ {
			recvs[r][src] = dkf.VOp{Buf: sess.Alloc(r, fmt.Sprintf("ag-r-%d", src), int(l.ExtentBytes)), Type: l, Count: 1}
		}
	}
	err = sess.Run(func(c *dkf.RankCtx) {
		if cerr := c.Allgatherv(sends[c.ID()], recvs[c.ID()]); cerr != nil {
			t.Errorf("rank %d: %v", c.ID(), cerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := sess.Timeline().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var sums []uint64
	for r := 0; r < n; r++ {
		for src := 0; src < n; src++ {
			sums = append(sums, recvs[r][src].Buf.Checksum())
		}
	}
	return sess, b.Bytes(), sums
}

// TestGoldenRMATrace pins the Chrome traces of the 2-rank put-based ring
// Allgatherv — fused and unfused — byte-for-byte, with a bit-identical
// replay assertion on each arm. The committed files also feed the CI
// rma-smoke tracecheck (-require-layer rma). Refresh with
// UPDATE_GOLDEN=1 go test -run TestGoldenRMATrace.
func TestGoldenRMATrace(t *testing.T) {
	var fusedSums, unfusedSums []uint64
	for _, arm := range []struct {
		name  string
		fused bool
	}{{"fused", true}, {"unfused", false}} {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			sess, got, sums := rmaTrace(t, arm.fused)
			_, again, _ := rmaTrace(t, arm.fused)
			if !bytes.Equal(got, again) {
				t.Fatalf("%s rma trace not byte-identical across two runs", arm.name)
			}
			if n := sess.LeakedRequests(); n != 0 {
				t.Fatalf("%d leaked requests", n)
			}
			st := sess.RMAStats()
			if st.PackPuts == 0 {
				t.Fatalf("no pack-puts in the %s arm: %+v", arm.name, st)
			}
			if st.Retransmits != 0 {
				t.Fatalf("fault-free run recorded %d retransmits", st.Retransmits)
			}
			if arm.fused {
				fusedSums = sums
			} else {
				unfusedSums = sums
			}
			golden := filepath.Join("testdata", fmt.Sprintf("golden_rma2rank_%s_trace.json", arm.name))
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trace differs from golden %s (len got=%d want=%d); rerun with UPDATE_GOLDEN=1 if intended",
					golden, len(got), len(want))
			}
		})
	}
	if len(fusedSums) == len(unfusedSums) && len(fusedSums) > 0 {
		for i := range fusedSums {
			if fusedSums[i] != unfusedSums[i] {
				t.Fatalf("leg %d: fused checksum %#x differs from unfused %#x", i, fusedSums[i], unfusedSums[i])
			}
		}
	}
}

// TestRMATraceHasRMALayer checks the trace structurally: valid JSON, one
// Chrome process per rank, and events from the rma layer alongside the
// gpu layer the pack kernels run on.
func TestRMATraceHasRMALayer(t *testing.T) {
	_, raw, _ := rmaTrace(t, true)
	var cf struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Pid int    `json:"pid"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &cf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	layers := map[string]bool{}
	pids := map[int]bool{}
	for _, e := range cf.TraceEvents {
		if e.Cat != "" {
			layers[e.Cat] = true
		}
		if e.Ph != "M" {
			pids[e.Pid] = true
		}
	}
	for _, want := range []string{"rma", "gpu", "coll"} {
		if !layers[want] {
			t.Errorf("no events from layer %q (got %v)", want, layers)
		}
	}
	if len(pids) != 2 {
		t.Errorf("want 2 rank processes, got %v", pids)
	}
}
