package dkf_test

import (
	"errors"
	"fmt"
	"testing"

	dkf "repro"
)

// TestConfigErrorTyped pins the typed validation contract: every rejected
// configuration surfaces as a *ConfigError naming the offending option,
// and the combinations that used to be blanket-rejected but are genuinely
// supported — PayloadLazy with Faults above all — now construct sessions.
func TestConfigErrorTyped(t *testing.T) {
	cases := []struct {
		name       string
		cfg        dkf.SessionConfig
		wantOption string
	}{
		{"negative fusion threshold", dkf.SessionConfig{FusionThreshold: -1}, "FusionThreshold"},
		{"unknown payload mode", dkf.SessionConfig{Payload: dkf.PayloadMode(9)}, "Payload"},
		{"negative lazy threshold", dkf.SessionConfig{Payload: dkf.PayloadLazy, LazyThreshold: -1}, "LazyThreshold"},
		{"lazy threshold without lazy mode", dkf.SessionConfig{LazyThreshold: 64}, "LazyThreshold"},
		{"heartbeat without faults", dkf.SessionConfig{Heartbeat: dkf.HeartbeatConfig{TimeoutNs: 1000}}, "Heartbeat.TimeoutNs"},
		{"unknown scheme", dkf.SessionConfig{Scheme: "bogus"}, "Scheme"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := dkf.NewSession(tc.cfg)
			var ce *dkf.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("NewSession error %v, want *ConfigError", err)
			}
			if ce.Option != tc.wantOption {
				t.Fatalf("ConfigError.Option = %q, want %q (err: %v)", ce.Option, tc.wantOption, err)
			}
		})
	}

	plan, err := dkf.ParseFaultPlan("mixed,seed=4")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dkf.NewSession(dkf.SessionConfig{Payload: dkf.PayloadLazy, Faults: plan})
	if err != nil {
		t.Fatalf("PayloadLazy + Faults rejected: %v", err)
	}
	sess.Close()
}

// TestCheckpointRestoreDriverSide exercises the Session-level coordinated
// checkpoint: register, capture, scribble, restore, verify — epochs
// numbered in commit order, no virtual time involved.
func TestCheckpointRestoreDriverSide(t *testing.T) {
	sess, err := dkf.NewSession(dkf.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Restore(); err == nil {
		t.Fatal("Restore before any Checkpoint succeeded")
	}
	n := sess.NumRanks()
	bufs := make([]*dkf.Buffer, n)
	sums := make([]uint64, n)
	for r := 0; r < n; r++ {
		bufs[r] = sess.Alloc(r, "state", 8192)
		bufs[r].FillStream(uint64(100 + r))
		sums[r] = bufs[r].Checksum()
		sess.CheckpointRegister(r, bufs[r])
	}
	if got := sess.Checkpoint(); got != 1 {
		t.Fatalf("first Checkpoint() = epoch %d, want 1", got)
	}
	for r := 0; r < n; r++ {
		bufs[r].FillStream(0xdead)
	}
	if err := sess.Restore(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if bufs[r].Checksum() != sums[r] {
			t.Fatalf("rank %d state not rolled back", r)
		}
	}
	if got := sess.Checkpoint(); got != 2 {
		t.Fatalf("second Checkpoint() = epoch %d, want 2", got)
	}
	if got := sess.CheckpointEpoch(); got != 2 {
		t.Fatalf("CheckpointEpoch() = %d, want 2", got)
	}
}

// TestLazyChaosAutoRestoreOnShrink is the tentpole's end-to-end facade
// test: a lazy-payload session under a planned rank crash checkpoints
// in-run (charging virtual time), survives the crash, and Shrink rolls
// every survivor's registered state back to the captured epoch
// automatically. The dead rank's snapshot stays adoptable via its buddy.
func TestLazyChaosAutoRestoreOnShrink(t *testing.T) {
	const deadRank = 1
	plan, err := dkf.ParseFaultPlan(fmt.Sprintf("crash=%d@20000", deadRank))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dkf.NewSession(dkf.SessionConfig{
		Scheme:  dkf.SchemeProposedTuned,
		Payload: dkf.PayloadLazy,
		Faults:  plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	n := sess.NumRanks()
	const stateBytes = 64 << 10 // above the lazy threshold: span-clone snapshots
	state := make([]*dkf.Buffer, n)
	adopted := make([]*dkf.Buffer, 1)
	for r := 0; r < n; r++ {
		state[r] = sess.Alloc(r, "state", stateBytes)
		state[r].FillStream(uint64(7 + r))
		if !state[r].IsLazy() {
			t.Fatalf("rank %d state buffer is not lazy", r)
		}
		sess.CheckpointRegister(r, state[r])
	}
	buddy := sess.CheckpointBuddy(deadRank)
	adopted[0] = sess.Alloc(buddy, "adopted", stateBytes)
	deadSum := state[deadRank].Checksum()

	l := dkf.Commit(dkf.Contiguous(64, dkf.Byte))
	ckptSums := make([]uint64, n)
	ckptNs := make([]int64, n)
	restoredSums := make([]uint64, n)
	worldErrs := make([]error, n)
	shrinkErrs := make([]error, n)
	err = sess.Run(func(c *dkf.RankCtx) {
		me := c.ID()
		t0 := c.Now()
		c.Checkpoint()
		ckptNs[me] = c.Now() - t0
		ckptSums[me] = state[me].Checksum()

		ops := make([]dkf.WOp, n)
		for p := 0; p < n; p++ {
			ops[p] = dkf.WOp{
				SendBuf: c.Alloc(fmt.Sprintf("ws%d", p), 64), SendType: l, SendCount: 1,
				RecvBuf: c.Alloc(fmt.Sprintf("wr%d", p), 64), RecvType: l, RecvCount: 1,
			}
		}
		const horizonNs = 400_000
		for worldErrs[me] == nil && c.Now() < horizonNs {
			worldErrs[me] = c.Alltoallw(ops)
		}
		// Simulate work done past the checkpoint that the rollback must
		// discard: scribble the recoverable state, then Agree + Shrink.
		state[me].FillStream(0xbad)
		c.Agree(c.World(), 1)
		if _, serr := c.Shrink(c.World()); serr != nil {
			shrinkErrs[me] = serr
			return
		}
		restoredSums[me] = state[me].Checksum()
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range sess.Survivors() {
		if ckptNs[w] <= 0 {
			t.Errorf("rank %d: Checkpoint charged no virtual time", w)
		}
		if worldErrs[w] == nil {
			t.Errorf("rank %d: crash never surfaced", w)
		} else if !errors.Is(worldErrs[w], dkf.ErrRankFailed) && !errors.Is(worldErrs[w], dkf.ErrCommRevoked) {
			t.Errorf("rank %d: untyped world-phase error %v", w, worldErrs[w])
		}
		if shrinkErrs[w] != nil {
			t.Errorf("rank %d: Shrink failed: %v", w, shrinkErrs[w])
		}
		if restoredSums[w] != ckptSums[w] {
			t.Errorf("rank %d: auto-restore-on-Shrink did not roll state back (got %#x want %#x)",
				w, restoredSums[w], ckptSums[w])
		}
	}
	if leaked := sess.LeakedRequests(); leaked != 0 {
		t.Errorf("LeakedRequests() = %d, want 0", leaked)
	}

	// Buddy adoption: the dead rank's snapshot is still recoverable on its
	// buddy, byte-for-byte what the rank held at the checkpoint.
	if !sess.CheckpointAvailable(deadRank) {
		t.Fatalf("snapshot of dead rank %d unavailable despite live buddy %d", deadRank, buddy)
	}
	if err := sess.CheckpointAdopt(buddy, deadRank, adopted[0]); err != nil {
		t.Fatalf("buddy adoption failed: %v", err)
	}
	if adopted[0].Checksum() != deadSum {
		t.Fatalf("adopted state %#x != dead rank's captured state %#x", adopted[0].Checksum(), deadSum)
	}
	if err := sess.CheckpointAdopt(buddy+1, deadRank, adopted[0]); err == nil {
		t.Fatal("non-buddy adoption succeeded")
	}
}
