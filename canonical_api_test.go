package dkf_test

import (
	"errors"
	"strings"
	"testing"

	dkf "repro"
)

func TestCommitETypedErrors(t *testing.T) {
	bad := dkf.Vector(4, -1, 8, dkf.Byte)
	l, err := dkf.CommitE(bad)
	if l != nil || err == nil {
		t.Fatalf("CommitE(invalid) = %v, %v; want nil, error", l, err)
	}
	if !errors.Is(err, dkf.ErrInvalidType) {
		t.Fatalf("error %v does not unwrap to ErrInvalidType", err)
	}
	var ite *dkf.InvalidTypeError
	if !errors.As(err, &ite) || ite.Constructor != "Vector" {
		t.Fatalf("error %v is not an *InvalidTypeError naming Vector", err)
	}

	// Commit stays the panicking wrapper (Alloc/AllocE convention).
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Commit(invalid) did not panic")
		}
	}()
	dkf.Commit(bad)
}

func TestCanonicalAndEquivalentExposed(t *testing.T) {
	a := dkf.Vector(4, 2, 8, dkf.Byte)
	b := dkf.Hindexed([]int{2, 2, 2, 2}, []int64{0, 8, 16, 24}, dkf.Byte)
	if !dkf.Equivalent(a, b) {
		t.Fatal("vector and its hindexed spelling should be equivalent")
	}
	la, lb := dkf.Commit(a), dkf.Commit(b)
	if la.Canonical() == "" || la.Canonical() != lb.Canonical() {
		t.Fatalf("canonical signatures differ:\n %s\n %s", la.Canonical(), lb.Canonical())
	}
	// Debug output names the canonical family.
	if s := la.String(); !strings.Contains(s, "canon") {
		t.Fatalf("Layout.String() = %q should include the canonical form", s)
	}
	if dkf.Equivalent(a, dkf.Vector(4, 3, 8, dkf.Byte)) {
		t.Fatal("different payloads reported equivalent")
	}
}

func runPlanStatsExchange(t *testing.T, disable bool) (dkf.PlanStats, uint64) {
	t.Helper()
	sess, err := dkf.NewSession(dkf.SessionConfig{
		Scheme:           "Proposed-Tuned",
		DisablePackPlans: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two equivalent spellings of the same layout: one compile, later hits.
	la := dkf.Commit(dkf.Vector(16, 8, 32, dkf.Byte))
	lb := dkf.Commit(dkf.Hvector(16, 8, 32, dkf.Byte))
	sbuf := sess.Alloc(0, "s", int(la.ExtentBytes)*2)
	rbuf := sess.Alloc(4, "r", int(la.ExtentBytes)*2)
	dkf.FillPattern(sbuf.Data, 3)
	err = sess.Run(func(c *dkf.RankCtx) {
		switch c.ID() {
		case 0:
			c.Wait(c.Isend(4, 0, sbuf, la, 2))
			c.Wait(c.Isend(4, 1, sbuf, lb, 2))
		case 4:
			c.Wait(c.Irecv(0, 0, rbuf, la, 2))
			c.Wait(c.Irecv(0, 1, rbuf, lb, 2))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, b := range rbuf.Data {
		sum = sum*131 + uint64(b)
	}
	return sess.PlanStats(), sum
}

func TestSessionPlanStats(t *testing.T) {
	on, onSum := runPlanStatsExchange(t, false)
	if on.Misses == 0 {
		t.Fatal("expected at least one canonical-cache miss")
	}
	if on.Hits == 0 {
		t.Fatal("equivalent spellings at equal count should hit the canonical cache")
	}
	if on.TotalCompiled() == 0 {
		t.Fatal("plans enabled but nothing compiled")
	}
	if on.TotalCompiled() != on.Misses {
		t.Fatalf("compiles (%d) should track misses (%d): one plan per cache entry",
			on.TotalCompiled(), on.Misses)
	}
	// count=2 of this vector breaks the stride run at the repeat seam
	// (extent 488 != stride 32), so the compiled plan is a gather.
	if n := on.Compiled["gather"]; n == 0 {
		t.Fatalf("repeated vector layout should compile a gather plan, got %v", on.Compiled)
	}

	off, offSum := runPlanStatsExchange(t, true)
	if off.TotalCompiled() != 0 {
		t.Fatalf("DisablePackPlans left %d compiled plans", off.TotalCompiled())
	}
	if off.Hits != on.Hits || off.Misses != on.Misses {
		t.Fatalf("plan toggle changed cache behavior: on %d/%d, off %d/%d",
			on.Hits, on.Misses, off.Hits, off.Misses)
	}
	if onSum != offSum {
		t.Fatalf("plan toggle changed received bytes: %#x vs %#x", onSum, offSum)
	}
}
