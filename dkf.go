// Package dkf is the public API of the Dynamic Kernel Fusion library — a
// pure-Go reproduction of "Dynamic Kernel Fusion for Bulk Non-contiguous
// Data Transfer on GPU Clusters" (Chu et al., IEEE CLUSTER 2020).
//
// The library simulates a GPU cluster (devices with realistic kernel-launch
// overhead, NVLink/PCIe/InfiniBand fabric) on a deterministic virtual
// clock, runs a CUDA-aware-MPI-style runtime on it, and implements the
// paper's kernel-fusion framework alongside every baseline scheme the
// paper compares against. Data movement is real — packing and unpacking
// shuffle actual bytes — while time is virtual, so results are exactly
// reproducible.
//
// Quick start:
//
//	sess, _ := dkf.NewSession(dkf.SessionConfig{System: dkf.SystemLassen, Scheme: "Proposed-Tuned"})
//	l := dkf.Commit(dkf.Vector(64, 128, 256, dkf.Float64))
//	err := sess.Run(func(c *dkf.RankCtx) {
//	    ... c.Isend / c.Irecv / c.Waitall ...
//	})
package dkf

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/fusion"
	"repro/internal/gpu"
	"repro/internal/layoutcache"
	"repro/internal/mpi"
	"repro/internal/rma"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

// --- datatypes ---

// Type is an uncommitted MPI-style derived datatype.
type Type = datatype.Type

// Layout is a committed (flattened) datatype.
type Layout = datatype.Layout

// Block is one contiguous span of a flattened layout.
type Block = datatype.Block

// Predefined primitive datatypes.
var (
	Byte       = datatype.Byte
	Char       = datatype.Char
	Int32      = datatype.Int32
	Int64      = datatype.Int64
	Float32    = datatype.Float32
	Float64    = datatype.Float64
	Complex64  = datatype.Complex64
	Complex128 = datatype.Complex128
)

// Contiguous is MPI_Type_contiguous.
func Contiguous(count int, base Type) Type { return datatype.Contiguous(count, base) }

// Vector is MPI_Type_vector.
func Vector(count, blocklen, stride int, base Type) Type {
	return datatype.Vector(count, blocklen, stride, base)
}

// Hvector is MPI_Type_create_hvector.
func Hvector(count, blocklen int, strideBytes int64, base Type) Type {
	return datatype.Hvector(count, blocklen, strideBytes, base)
}

// Indexed is MPI_Type_indexed.
func Indexed(blocklens, displs []int, base Type) Type {
	return datatype.Indexed(blocklens, displs, base)
}

// Hindexed is MPI_Type_create_hindexed.
func Hindexed(blocklens []int, displsBytes []int64, base Type) Type {
	return datatype.Hindexed(blocklens, displsBytes, base)
}

// IndexedBlock is MPI_Type_create_indexed_block.
func IndexedBlock(blocklen int, displs []int, base Type) Type {
	return datatype.IndexedBlock(blocklen, displs, base)
}

// Struct is MPI_Type_create_struct.
func Struct(blocklens []int, displsBytes []int64, types []Type) Type {
	return datatype.Struct(blocklens, displsBytes, types)
}

// Subarray is MPI_Type_create_subarray (row-major).
func Subarray(sizes, subsizes, starts []int, base Type) Type {
	return datatype.Subarray(sizes, subsizes, starts, base)
}

// Commit flattens a datatype (MPI_Type_commit). It panics on malformed
// constructor input (negative counts, mismatched slice lengths,
// out-of-range subarray bounds); use CommitE to handle those as errors.
// Constructors themselves never panic — invalid shapes surface at commit,
// mirroring the Alloc/AllocE convention.
func Commit(t Type) *Layout { return datatype.Commit(t) }

// CommitE is Commit returning a typed error instead of panicking: a
// *InvalidTypeError (unwrapping to ErrInvalidType) naming the offending
// constructor and the reason.
func CommitE(t Type) (*Layout, error) { return datatype.CommitE(t) }

// InvalidTypeError describes malformed constructor input, surfaced by
// CommitE; it unwraps to ErrInvalidType for errors.Is checks.
type InvalidTypeError = datatype.InvalidTypeError

// ErrInvalidType is the sentinel wrapped by every *InvalidTypeError.
var ErrInvalidType = datatype.ErrInvalidType

// Equivalent reports whether two datatype spellings commit to the same
// canonical form — the same pack sequence at the same extent — and would
// therefore share one layout-cache entry and compiled pack plan. Layouts
// expose the identity directly via Layout.Canonical() (the signature
// string) and Layout.CanonicalForm() (the stride-run form).
func Equivalent(a, b Type) bool { return datatype.Equivalent(a, b) }

// --- systems ---

// System selects one of the modeled machines.
type System int

const (
	// SystemLassen is LLNL Lassen: POWER9 + V100 + NVLink2 + 2x IB EDR.
	SystemLassen System = iota
	// SystemABCI is AIST ABCI: Xeon + V100 + PCIe Gen3 + IB EDR.
	SystemABCI
)

// Spec returns the underlying cluster parameter set for customization.
func (s System) Spec() cluster.Spec {
	if s == SystemABCI {
		return cluster.ABCI()
	}
	return cluster.Lassen()
}

func (s System) String() string { return s.Spec().Name }

// --- session ---

// Buffer is a simulated device or host memory buffer; Data is real memory.
type Buffer = gpu.Buffer

// Request is a non-blocking communication handle.
type Request = mpi.Request

// Breakdown is the per-category cost taxonomy of Fig. 11.
type Breakdown = trace.Breakdown

// Wildcards for Irecv.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Scheme identifies a DDT-processing scheme. It is string-backed, so the
// paper-legend names keep working verbatim; prefer the typed constants below.
type Scheme string

// Typed scheme constants, matching SchemeNames() one to one.
const (
	// SchemeGPUSync launches one kernel per operation and synchronizes.
	SchemeGPUSync Scheme = "GPU-Sync"
	// SchemeGPUAsync polls CUDA events instead of synchronizing.
	SchemeGPUAsync Scheme = "GPU-Async"
	// SchemeCPUGPUHybrid packs small dense layouts on the CPU (GDRCopy).
	SchemeCPUGPUHybrid Scheme = "CPU-GPU-Hybrid"
	// SchemeNaiveMemcpy issues one cudaMemcpyAsync per contiguous block.
	SchemeNaiveMemcpy Scheme = "NaiveMemcpy"
	// SchemeStagedHost stages packed data through host memory.
	SchemeStagedHost Scheme = "StagedHost"
	// SchemeProposed is dynamic kernel fusion with the untuned threshold.
	SchemeProposed Scheme = "Proposed"
	// SchemeProposedTuned is the paper's tuned fusion configuration.
	SchemeProposedTuned Scheme = "Proposed-Tuned"
	// SchemeProposedAuto seeds the threshold from the cost model and
	// adapts it online.
	SchemeProposedAuto Scheme = "Proposed-Auto"
)

// Production-library aliases (Fig. 14 legends); they resolve to the
// baseline scheme that models the library's datatype path.
const (
	SchemeMVAPICH2GDR Scheme = "MVAPICH2-GDR" // -> CPU-GPU-Hybrid
	SchemeSpectrumMPI Scheme = "SpectrumMPI"  // -> NaiveMemcpy
	SchemeOpenMPI     Scheme = "OpenMPI"      // -> NaiveMemcpy
)

// validSchemes lists every accepted Scheme value: the canonical names in
// SchemeNames() order plus the production-library aliases.
func validSchemes() []string {
	return append(schemes.Names(), string(SchemeMVAPICH2GDR), string(SchemeSpectrumMPI), string(SchemeOpenMPI))
}

// --- fault injection & reliability ---

// FaultPlan configures deterministic seeded fault injection
// (SessionConfig.Faults). Zero-valued fields disable the corresponding
// fault class; see FaultPreset and ParseFaultPlan for ready-made plans.
type FaultPlan = fault.Plan

// FaultEvent is one recorded injected-fault or recovery event
// (Session.FaultEvents).
type FaultEvent = fault.Event

// FaultPreset returns a named built-in fault plan (see FaultPresetNames;
// e.g. "drop-heavy", "flaky-ib", "kernel-failure", "mixed", "rank-crash")
// seeded for deterministic replay.
func FaultPreset(name string, seed uint64) (*FaultPlan, error) { return fault.Preset(name, seed) }

// FaultPresetNames lists the built-in fault-plan preset names.
func FaultPresetNames() []string { return fault.PresetNames() }

// ParseFaultPlan parses a CLI-style fault spec such as
// "seed=7,drop=0.02,corrupt=0.01,delay=0.05,delayns=2000" or
// "preset=mixed,seed=3".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.ParsePlan(spec) }

// StallError is the watchdog's deadlock diagnosis; Session.Run returns one
// (wrapped) when no request completes for SessionConfig.StallTimeout.
type StallError = sim.StallError

// OpError is the typed terminal error of a failed request, returned from
// Wait/Waitall when a fault plan is active. Inspect the cause with
// errors.Is against the sentinels below.
type OpError = mpi.OpError

// Typed failure sentinels carried inside *OpError.
var (
	// ErrRetriesExhausted: bounded retransmission gave up on a message.
	ErrRetriesExhausted = mpi.ErrRetriesExhausted
	// ErrPeerAborted: the matching request on the peer rank failed first.
	ErrPeerAborted = mpi.ErrPeerAborted
	// ErrTruncate: a matched message exceeded the posted receive.
	ErrTruncate = mpi.ErrTruncate
)

// --- rank-failure tolerance (ULFM-style) ---

// HeartbeatConfig tunes the rank-failure detector (SessionConfig.Heartbeat):
// IntervalNs is the detector tick period (default 25 µs) and TimeoutNs is
// how long a rank may stay silent before being declared dead (default
// 150 µs). Zero values select the defaults when a crash plan activates the
// detector; setting TimeoutNs > 0 activates it even without planned crashes.
type HeartbeatConfig = mpi.HeartbeatConfig

// RankFailedError is the typed error attached to every operation involving
// a rank the failure detector declared dead (it unwraps to ErrRankFailed).
type RankFailedError = mpi.RankFailedError

// Typed rank-failure sentinels for errors.Is.
var (
	// ErrRankFailed: a peer rank was declared dead by the failure detector.
	ErrRankFailed = mpi.ErrRankFailed
	// ErrCommRevoked: the communicator was revoked (ULFM MPI_ERR_REVOKED).
	ErrCommRevoked = mpi.ErrCommRevoked
)

// Comm is a communicator: an ordered set of world ranks with ULFM-style
// Revoke/Shrink/Agree recovery (driven through the RankCtx methods of the
// same names). Session.Run bodies start from RankCtx.World and recover from
// rank failures by agreeing on the error, shrinking to the survivors, and
// retrying collectives on the shrunken communicator via RankCtx.On.
type Comm = mpi.Comm

// TraceOptions configures timeline recording (SessionConfig.Trace).
type TraceOptions = timeline.Options

// Timeline is the per-rank event timeline of a traced session.
type Timeline = timeline.Timeline

// TimelineCollector merges timelines from several sessions/worlds into one
// Chrome trace.
type TimelineCollector = timeline.Collector

// SessionConfig configures a simulated cluster session.
type SessionConfig struct {
	// System picks the machine model (default Lassen). CustomSpec, if
	// non-nil, overrides it entirely.
	System     System
	CustomSpec *cluster.Spec
	// Scheme selects the DDT-processing scheme (default
	// SchemeProposedTuned). Use the typed Scheme constants; raw strings
	// such as "GPU-Sync" still convert and are accepted for backward
	// compatibility, but that path is deprecated — new code should write
	// dkf.SchemeGPUSync.
	Scheme Scheme
	// FusionThreshold overrides the fused-kernel flush threshold in
	// bytes (0 = scheme default; only affects the Proposed schemes).
	FusionThreshold int64
	// EagerLimit, RendezvousRPUT, and DisableIPC tune the MPI runtime.
	EagerLimit     int64
	RendezvousRPUT bool
	DisableIPC     bool
	// PipelineChunk enables chunked rendezvous for non-contiguous RGET
	// sends larger than this many bytes (0 = whole-message rendezvous).
	PipelineChunk int64
	// Trace, when non-nil, enables per-rank event-timeline recording;
	// retrieve the result with Session.Timeline after Run. The default
	// (nil) keeps the communication hot paths allocation-free.
	Trace *TraceOptions
	// Faults, when non-nil, injects deterministic faults (drops,
	// corruption, delays, link flaps, NIC post errors, kernel-launch
	// failures) and activates the MPI reliability layer: checksummed,
	// acked transport with timeout/backoff retransmission and typed
	// request errors from Wait/Waitall. Build plans with FaultPreset or
	// ParseFaultPlan. The default (nil) keeps every fault-free fast path
	// byte-identical.
	Faults *FaultPlan
	// Heartbeat tunes the rank-failure detector. The zero value selects
	// the defaults (25 µs interval, 150 µs timeout) when Faults schedules
	// rank crashes; setting Heartbeat.TimeoutNs > 0 activates the detector
	// even without planned crashes, enabling Revoke/Shrink/Agree. Keep the
	// timeout well under StallTimeout so detection beats the watchdog.
	Heartbeat HeartbeatConfig
	// StallTimeout bounds, in virtual nanoseconds, how long the
	// simulation may run without any request completing before the
	// watchdog declares a deadlock (Session.Run returns a *StallError).
	// Zero selects the 100 ms default; negative disables the watchdog.
	StallTimeout int64
	// Coll overrides the collective-engine selection policy (per-
	// collective algorithms, size/topology thresholds, fusion-window
	// ablation). The zero value selects the full Auto policy.
	Coll CollTuning
	// Payload selects the payload representation. PayloadExact (default)
	// carries real bytes everywhere — the reference semantics every other
	// mode is verified against. PayloadLazy carries buffers at or above
	// LazyThreshold as a seed+span+checksum algebra instead, making copy
	// costs independent of message size; timings, traces, and checksums
	// are identical to the exact run by construction. Composes with
	// Faults: the reliability layer checksums lazy payloads through the
	// same composable FNV-1a algebra and models in-flight corruption as a
	// deterministic span splice, so chaos runs scale to lazy-mode world
	// sizes.
	Payload PayloadMode
	// LazyThreshold is the minimum allocation size, in bytes, carried
	// lazily under PayloadLazy (0 = 4 KiB default). Smaller buffers stay
	// byte-exact, so header-style metadata keeps working untouched.
	LazyThreshold int64
	// PollInterval overrides, in virtual nanoseconds, the progress-engine
	// polling period (0 = 200 ns default). Large-scale runs raise it: poll
	// events scale as ranks x virtual-time/interval, and at 1024 ranks the
	// default generates billions of events.
	PollInterval int64
	// DisablePackPlans forces the legacy block-list pack/unpack loops
	// instead of the compiled per-canonical-form pack plans (ablation /
	// differential-oracle control). Plans only change host execution
	// speed: checksums, virtual clocks, and kernel counts are identical
	// either way.
	DisablePackPlans bool
	// Backend selects the default communication backend for the
	// collective engine. BackendP2P (default) keeps the two-sided
	// eager/rendezvous schedules; BackendRMA builds the one-sided fabric
	// up front and defaults Allgatherv/Alltoallw to the put-based
	// one-sided ring (explicit CollTuning overrides still win). The
	// RankCtx one-sided verbs (Window/Put/Get/Quiet/...) work under
	// either backend — the choice only moves the collective default.
	Backend Backend
}

// Backend selects the communication backend for the collective engine
// (see SessionConfig.Backend).
type Backend int

const (
	// BackendP2P schedules collectives over two-sided send/recv (default).
	BackendP2P Backend = iota
	// BackendRMA schedules collectives over one-sided puts into
	// symmetric windows with signal-based sync — no rendezvous
	// round-trips, no target-side progress.
	BackendRMA
)

// ParseBackend resolves a backend name ("p2p" or "rma").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "p2p":
		return BackendP2P, nil
	case "rma":
		return BackendRMA, nil
	}
	return BackendP2P, fmt.Errorf("dkf: unknown backend %q (valid: p2p, rma)", s)
}

func (b Backend) String() string {
	if b == BackendRMA {
		return "rma"
	}
	return "p2p"
}

// PayloadMode selects how message payloads are represented (see
// SessionConfig.Payload).
type PayloadMode int

const (
	// PayloadExact carries real bytes end to end (default).
	PayloadExact PayloadMode = iota
	// PayloadLazy carries large buffers as a lazy span algebra.
	PayloadLazy
)

// DefaultLazyThreshold is the allocation size, in bytes, above which
// PayloadLazy carries buffers lazily when LazyThreshold is unset.
const DefaultLazyThreshold = 4096

// ConfigError is the typed error NewSession returns for an invalid
// SessionConfig. Option names the offending field (dotted for nested
// fields, e.g. "Heartbeat.TimeoutNs"); Reason says what is wrong with it.
type ConfigError struct {
	Option string
	Reason string
}

func (e *ConfigError) Error() string {
	return "dkf: invalid SessionConfig." + e.Option + ": " + e.Reason
}

func cfgErr(option, format string, args ...any) *ConfigError {
	return &ConfigError{Option: option, Reason: fmt.Sprintf(format, args...)}
}

// validate rejects configurations that would misbehave downstream. Only
// genuinely unsupported combinations are refused; every rejection is a
// *ConfigError naming the offending option.
func (cfg *SessionConfig) validate() error {
	if cfg.FusionThreshold < 0 {
		return cfgErr("FusionThreshold", "negative FusionThreshold %d", cfg.FusionThreshold)
	}
	if cfg.EagerLimit < 0 {
		return cfgErr("EagerLimit", "negative EagerLimit %d", cfg.EagerLimit)
	}
	if cfg.PipelineChunk < 0 {
		return cfgErr("PipelineChunk", "negative PipelineChunk %d", cfg.PipelineChunk)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return cfgErr("Faults", "%v", err)
		}
	}
	if cfg.Heartbeat.IntervalNs < 0 {
		return cfgErr("Heartbeat.IntervalNs", "negative Heartbeat.IntervalNs %d", cfg.Heartbeat.IntervalNs)
	}
	if cfg.Heartbeat.TimeoutNs < 0 {
		return cfgErr("Heartbeat.TimeoutNs", "negative Heartbeat.TimeoutNs %d", cfg.Heartbeat.TimeoutNs)
	}
	if cfg.Heartbeat.TimeoutNs > 0 && cfg.Faults == nil {
		return cfgErr("Heartbeat.TimeoutNs", "Heartbeat requires a fault plan (set Faults; an empty plan enables the reliability layer)")
	}
	if cfg.CustomSpec == nil {
		if cfg.System < SystemLassen || cfg.System > SystemABCI {
			return cfgErr("System", "unknown System %d (valid: SystemLassen, SystemABCI)", int(cfg.System))
		}
	} else {
		if cfg.CustomSpec.Nodes < 1 {
			return cfgErr("CustomSpec", "CustomSpec needs at least one node, got %d", cfg.CustomSpec.Nodes)
		}
		if cfg.CustomSpec.GPUsPerNode < 1 {
			return cfgErr("CustomSpec", "CustomSpec needs at least one GPU per node, got %d", cfg.CustomSpec.GPUsPerNode)
		}
	}
	if cfg.Payload != PayloadExact && cfg.Payload != PayloadLazy {
		return cfgErr("Payload", "unknown PayloadMode %d (valid: PayloadExact, PayloadLazy)", int(cfg.Payload))
	}
	if cfg.LazyThreshold < 0 {
		return cfgErr("LazyThreshold", "negative LazyThreshold %d", cfg.LazyThreshold)
	}
	if cfg.LazyThreshold > 0 && cfg.Payload != PayloadLazy {
		return cfgErr("LazyThreshold", "LazyThreshold requires Payload: PayloadLazy")
	}
	if cfg.PollInterval < 0 {
		return cfgErr("PollInterval", "negative PollInterval %d", cfg.PollInterval)
	}
	if cfg.Backend != BackendP2P && cfg.Backend != BackendRMA {
		return cfgErr("Backend", "unknown Backend %d (valid: BackendP2P, BackendRMA)", int(cfg.Backend))
	}
	known := false
	for _, n := range validSchemes() {
		if n == string(cfg.Scheme) {
			known = true
			break
		}
	}
	if !known {
		return cfgErr("Scheme", "unknown scheme %q (valid: %s)",
			cfg.Scheme, strings.Join(validSchemes(), ", "))
	}
	return nil
}

// Session is a simulated cluster plus MPI world, ready to Run rank bodies.
type Session struct {
	cfg      SessionConfig
	env      *sim.Env
	cluster  *cluster.Cluster
	world    *mpi.World
	coll     *coll.Engine
	subs     map[*mpi.Comm]*coll.Engine
	rma      *rma.Fabric // lazily built; shared with the collective engine
	ckpt     *ckpt.Store
	ckptWins map[ckptWinKey]*gpu.Buffer // checkpoint-registered window regions (CheckpointRegisterWindow)
	closed   bool
}

// ckptWinKey identifies one rank's checkpoint-registered window region by
// window name — stable across re-rendezvous, unlike the backing buffer.
type ckptWinKey struct {
	rank int
	name string
}

// rmaFabric returns the session's one-sided fabric, building it (and
// pointing the collective engine at it) on first use — user verbs and
// the put-based collectives share one symmetric heap.
func (s *Session) rmaFabric() *rma.Fabric {
	if s.rma == nil {
		s.rma = rma.New(s.world)
		s.coll.UseRMA(s.rma)
	}
	return s.rma
}

// NewSession builds the cluster and world. It returns a descriptive error
// for any invalid configuration: unknown scheme (the message lists the valid
// names), out-of-range System, negative tuning knobs, or a degenerate
// CustomSpec.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = SchemeProposedTuned
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	spec := cfg.System.Spec()
	if cfg.CustomSpec != nil {
		spec = *cfg.CustomSpec
	}
	env := sim.NewEnv()
	cl, err := cluster.Build(env, spec)
	if err != nil {
		return nil, fmt.Errorf("dkf: %w", err)
	}
	if cfg.Payload == PayloadLazy {
		th := cfg.LazyThreshold
		if th == 0 {
			th = DefaultLazyThreshold
		}
		for _, node := range cl.Devices {
			for _, d := range node {
				d.LazyThreshold = th
			}
		}
	}
	mcfg := mpi.DefaultConfig()
	if cfg.PollInterval > 0 {
		mcfg.PollIntervalNs = cfg.PollInterval
	}
	if cfg.EagerLimit > 0 {
		mcfg.EagerLimitBytes = cfg.EagerLimit
	}
	if cfg.RendezvousRPUT {
		mcfg.Rendezvous = mpi.RPUT
	}
	mcfg.DisableIPC = cfg.DisableIPC
	mcfg.DisablePackPlans = cfg.DisablePackPlans
	mcfg.PipelineChunkBytes = cfg.PipelineChunk
	mcfg.Timeline = cfg.Trace
	mcfg.Faults = cfg.Faults
	mcfg.Heartbeat = cfg.Heartbeat
	mcfg.StallTimeoutNs = cfg.StallTimeout
	factory := schemes.Factory(string(cfg.Scheme))
	if cfg.FusionThreshold > 0 {
		th := cfg.FusionThreshold
		factory = func(r *mpi.Rank) mpi.Scheme {
			fc := fusion.DefaultConfig()
			fc.ThresholdBytes = th
			return schemes.NewFusionWith(r, fc)
		}
	}
	world := mpi.NewWorld(cl, mcfg, factory)
	ctun := cfg.Coll
	if cfg.Backend == BackendRMA {
		// The RMA backend's defaults: put-based schedules wherever a
		// one-sided algorithm exists, unless explicitly overridden.
		if ctun.Allgatherv == coll.Auto {
			ctun.Allgatherv = coll.OneSidedRing
		}
		if ctun.Alltoallw == coll.Auto {
			ctun.Alltoallw = coll.OneSidedRing
		}
	}
	s := &Session{
		cfg:      cfg,
		env:      env,
		cluster:  cl,
		world:    world,
		coll:     coll.New(world, ctun),
		ckpt:     ckpt.NewStore(world.Size()),
		ckptWins: make(map[ckptWinKey]*gpu.Buffer),
	}
	if cfg.Backend == BackendRMA {
		s.rmaFabric() // build the fabric up front, shared with the engine
	}
	return s, nil
}

// NumRanks reports the number of ranks (one per GPU).
func (s *Session) NumRanks() int { return s.world.Size() }

// LiveProcs reports how many simulation processes are still unfinished —
// zero after a clean Run, making it a scheduler-side leak oracle alongside
// LeakedRequests and PendingFusedJobs.
func (s *Session) LiveProcs() int { return s.env.LiveProcs() }

// Alloc allocates a device buffer on rank r's GPU before Run starts. It
// panics — naming the rank and buffer — on a non-positive size or a
// duplicate name; use AllocE to handle those as errors.
func (s *Session) Alloc(r int, name string, bytes int) *Buffer {
	b, err := s.AllocE(r, name, bytes)
	if err != nil {
		panic(err.Error())
	}
	return b
}

// AllocE is Alloc returning an error instead of panicking.
func (s *Session) AllocE(r int, name string, bytes int) (*Buffer, error) {
	if s.closed {
		return nil, fmt.Errorf("dkf: Alloc %q on closed session", name)
	}
	if bytes <= 0 {
		return nil, fmt.Errorf("dkf: rank %d: non-positive allocation of %d bytes for buffer %q", r, bytes, name)
	}
	b, err := s.world.Rank(r).Dev.AllocE(name, bytes)
	if err != nil {
		return nil, fmt.Errorf("dkf: rank %d: %w", r, err)
	}
	return b, nil
}

// TraceOf returns rank r's accumulated cost breakdown.
func (s *Session) TraceOf(r int) *Breakdown { return s.world.Rank(r).Trace }

// Timeline returns the session's event timeline, or nil when the session
// was built without SessionConfig.Trace.
func (s *Session) Timeline() *Timeline { return s.world.Timeline() }

// DeviceStats returns rank r's GPU activity counters.
func (s *Session) DeviceStats(r int) gpu.Stats { return s.world.Rank(r).Dev.Stats }

// PlanStats summarizes canonical layout-cache behavior across all ranks:
// hits/misses/evictions of the canonical-keyed caches plus plan
// compilations by kind. A hot cache shows a high hit count and a compile
// count no larger than the number of distinct (canonical form, count)
// pairs — equivalent datatype spellings never recompile.
type PlanStats struct {
	// Hits/Misses/Evictions aggregate the per-rank canonical caches
	// (both the charged point-to-point cache and the collective-engine
	// plan cache).
	Hits      int64
	Misses    int64
	Evictions int64
	// Compiled counts compiled pack plans by specialization:
	// "empty", "contig", "strided", "gather".
	Compiled map[string]int64
}

// TotalCompiled sums plan compilations across kinds.
func (ps PlanStats) TotalCompiled() int64 {
	var n int64
	for _, c := range ps.Compiled {
		n += c
	}
	return n
}

// PlanStats aggregates canonical-cache and pack-plan counters across all
// ranks of the session.
func (s *Session) PlanStats() PlanStats {
	var agg layoutcache.Stats
	for r := 0; r < s.world.Size(); r++ {
		agg.Add(s.world.Rank(r).CacheStats())
	}
	ps := PlanStats{
		Hits:      agg.Hits,
		Misses:    agg.Misses,
		Evictions: agg.Evictions,
		Compiled:  make(map[string]int64, len(agg.Compiled)),
	}
	for k, n := range agg.Compiled {
		if n != 0 {
			ps.Compiled[datatype.PlanKind(k).String()] = n
		}
	}
	return ps
}

// FaultEvents returns the chronological injected-fault/recovery event log
// (nil when the session was built without SessionConfig.Faults).
func (s *Session) FaultEvents() []FaultEvent { return s.world.FaultEvents() }

// LeakedRequests counts requests still registered in-flight after Run — a
// recovery-path leak detector; a clean run reports zero.
func (s *Session) LeakedRequests() int { return s.world.LeakedRequests() }

// FTEnabled reports whether rank-failure tolerance is active (the session
// was built with a crash plan or an explicit Heartbeat timeout).
func (s *Session) FTEnabled() bool { return s.world.FTEnabled() }

// Survivors lists the ranks that never crashed, sorted (every rank when
// failure tolerance is off).
func (s *Session) Survivors() []int { return s.world.Survivors() }

// FailedRanks lists the ranks the failure detector declared dead, sorted.
func (s *Session) FailedRanks() []int { return s.world.FailedRanks() }

// CrashedRanks lists the ranks whose processes were killed — ground truth,
// a superset of FailedRanks until detection catches up — sorted.
func (s *Session) CrashedRanks() []int { return s.world.CrashedRanks() }

// --- checkpoint/restore (internal/ckpt) ---

// CheckpointRegister adds bufs to rank r's recoverable state in the
// session's epoch-consistent checkpoint store. Register everything a rank
// needs to roll back BEFORE the first Checkpoint; registration order is
// restore order. Snapshots are cheap span clones in lazy payload mode and
// byte copies in exact mode.
func (s *Session) CheckpointRegister(r int, bufs ...*Buffer) {
	s.ckpt.Register(r, bufs...)
}

// CheckpointRegisterWindow adds this rank's region of window w to its
// recoverable state. Unlike CheckpointRegister, the registration tracks
// the window by name: after a Shrink re-rendezvous invalidates the
// window, reopening it under the same name rebinds the registration to
// the fresh region and automatically rolls the contents back to the last
// committed checkpoint epoch — symmetric-heap state gets the same
// restore-on-Shrink story as plain registered buffers, in exact and lazy
// payload modes alike.
func (c *RankCtx) CheckpointRegisterWindow(w *Window) error {
	s := c.sess
	me := c.fabricSelf()
	if me < 0 {
		return fmt.Errorf("dkf: rank %d is not a member of the fabric epoch", c.ID())
	}
	b := w.Buf(me)
	if b == nil {
		return fmt.Errorf("dkf: window %q not attached on rank %d", w.Name(), c.ID())
	}
	key := ckptWinKey{rank: c.ID(), name: w.Name()}
	switch old := s.ckptWins[key]; {
	case old == nil:
		s.ckpt.Register(c.ID(), b)
	case old != b:
		s.ckpt.Rebind(c.ID(), old, b)
	}
	s.ckptWins[key] = b
	return nil
}

// maybeRestoreWindow completes the re-rendezvous recovery path: when a
// reopened window is checkpoint-registered and its backing region
// changed (the heap was rebuilt), rebind the registration and roll the
// fresh region back to the last committed epoch, charging the restore
// memcpy to the simulated clock.
func (c *RankCtx) maybeRestoreWindow(w *Window) {
	s := c.sess
	key := ckptWinKey{rank: c.ID(), name: w.Name()}
	old := s.ckptWins[key]
	if old == nil {
		return
	}
	me := c.fabricSelf()
	if me < 0 {
		return
	}
	nb := w.Buf(me)
	if nb == nil || nb == old {
		return
	}
	s.ckpt.Rebind(c.ID(), old, nb)
	s.ckptWins[key] = nb
	s.syncCkptDead()
	if n, err := s.ckpt.RestoreBuffer(c.ID(), nb); err == nil {
		c.chargeCkpt("restore-window", n)
	}
}

// syncCkptDead mirrors crashed ranks into the checkpoint store so quorums
// shrink and buddy availability reflects reality.
func (s *Session) syncCkptDead() {
	for _, r := range s.world.CrashedRanks() {
		s.ckpt.MarkDead(r)
	}
}

// Checkpoint takes a driver-side coordinated checkpoint of every live
// registered rank (no virtual time passes — use RankCtx.Checkpoint inside
// Run to charge the simulated machine). It returns the committed epoch
// sequence number, or 0 when nothing is registered.
func (s *Session) Checkpoint() int {
	s.syncCkptDead()
	e := s.ckpt.CaptureAll(s.env.Now(), s.world.WorldComm().Epoch())
	if e == nil {
		return 0
	}
	return e.Seq
}

// Restore rolls every live registered rank back to the latest committed
// checkpoint epoch (driver-side, no virtual time). It fails if no epoch
// has committed or a rank's snapshot was lost (rank and buddy both dead).
func (s *Session) Restore() error {
	s.syncCkptDead()
	var firstErr error
	restored := 0
	for r := 0; r < s.world.Size(); r++ {
		if s.world.IsCrashed(r) || s.ckpt.Registered(r) == 0 {
			continue
		}
		if _, _, err := s.ckpt.RestoreRank(r); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		restored++
	}
	if firstErr != nil {
		return fmt.Errorf("dkf: Restore: %w", firstErr)
	}
	if restored == 0 {
		return fmt.Errorf("dkf: Restore: no committed checkpoint epoch")
	}
	return nil
}

// CheckpointEpoch reports the latest committed checkpoint epoch sequence
// number (0 before the first commit).
func (s *Session) CheckpointEpoch() int {
	if e := s.ckpt.Latest(); e != nil {
		return e.Seq
	}
	return 0
}

// CheckpointBuddy is the rank mirroring r's snapshots: r's state stays
// recoverable after r crashes for as long as the buddy survives.
func (s *Session) CheckpointBuddy(r int) int { return s.ckpt.Buddy(r) }

// CheckpointAvailable reports whether rank r's latest snapshot is
// recoverable under the buddy-placement model.
func (s *Session) CheckpointAvailable(r int) bool {
	s.syncCkptDead()
	return s.ckpt.Available(r)
}

// CheckpointAdopt copies dead rank's latest snapshot into the supplied
// buffers (matching count, sizes, and payload modes). Only dead's buddy
// holds the mirror, so adopter must be CheckpointBuddy(dead).
func (s *Session) CheckpointAdopt(adopter, dead int, into ...*Buffer) error {
	s.syncCkptDead()
	_, err := s.ckpt.AdoptRank(adopter, dead, into)
	return err
}

// engineFor resolves the collective engine scoped to cm, deriving and
// caching a sub-engine per shrunken communicator (the simulation scheduler
// serializes rank bodies, so the map needs no lock).
func (s *Session) engineFor(cm *Comm) *coll.Engine {
	if cm == nil || cm.IsWorld() {
		return s.coll
	}
	if e, ok := s.subs[cm]; ok {
		return e
	}
	if s.subs == nil {
		s.subs = make(map[*mpi.Comm]*coll.Engine)
	}
	e := s.coll.Sub(cm)
	s.subs[cm] = e
	return e
}

// Close releases every device buffer the session allocated (including
// internal staging buffers) so long-lived callers don't hold the arenas
// alive. Further Run/Alloc calls fail; Close is idempotent. Traces,
// timelines, and device stats stay readable after Close.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for _, node := range s.cluster.Devices {
		for _, d := range node {
			d.FreeAll()
		}
	}
	return nil
}

// Run executes body once per rank (each on its own simulated CPU thread)
// and drives the simulation until all ranks finish. A deadlock in the
// communication pattern surfaces as an error naming the stuck ranks.
func (s *Session) Run(body func(c *RankCtx)) error {
	if s.closed {
		return fmt.Errorf("dkf: Run on closed session")
	}
	return s.world.Run(func(r *mpi.Rank, p *sim.Proc) {
		body(&RankCtx{rank: r, proc: p, sess: s})
	})
}

// RankCtx is the per-rank execution context inside Session.Run: the MPI
// rank plus its simulated CPU thread.
type RankCtx struct {
	rank *mpi.Rank
	proc *sim.Proc
	sess *Session
}

// ID returns this rank's number.
func (c *RankCtx) ID() int { return c.rank.ID() }

// Node returns this rank's node index.
func (c *RankCtx) Node() int { return c.rank.Node() }

// NumRanks reports the world size.
func (c *RankCtx) NumRanks() int { return c.sess.world.Size() }

// Now returns the current virtual time in nanoseconds.
func (c *RankCtx) Now() int64 { return c.proc.Now() }

// Sleep advances this rank's virtual time (compute phases).
func (c *RankCtx) Sleep(ns int64) { c.proc.Sleep(ns) }

// Alloc allocates a device buffer on this rank's GPU. It panics — naming
// the rank and buffer — on a non-positive size or a duplicate name; use
// AllocE to handle those as errors.
func (c *RankCtx) Alloc(name string, bytes int) *Buffer {
	b, err := c.AllocE(name, bytes)
	if err != nil {
		panic(err.Error())
	}
	return b
}

// AllocE is Alloc returning an error instead of panicking.
func (c *RankCtx) AllocE(name string, bytes int) (*Buffer, error) {
	return c.sess.AllocE(c.ID(), name, bytes)
}

// Isend posts a non-blocking send of count elements of layout l.
func (c *RankCtx) Isend(dest, tag int, buf *Buffer, l *Layout, count int) *Request {
	return c.rank.Isend(c.proc, dest, tag, buf, l, count)
}

// Irecv posts a non-blocking receive.
func (c *RankCtx) Irecv(src, tag int, buf *Buffer, l *Layout, count int) *Request {
	return c.rank.Irecv(c.proc, src, tag, buf, l, count)
}

// Wait blocks until the request settles and returns its terminal error:
// nil on success, a *OpError when a fault plan exhausted recovery.
func (c *RankCtx) Wait(q *Request) error { return c.rank.Wait(c.proc, q) }

// Waitall blocks until all requests settle (flushing fused work first) and
// returns the joined errors of any failed ones (nil when all succeeded).
func (c *RankCtx) Waitall(qs []*Request) error { return c.rank.Waitall(c.proc, qs) }

// Test advances the progress engine once and reports completion.
func (c *RankCtx) Test(q *Request) bool { return c.rank.Test(c.proc, q) }

// Barrier synchronizes all ranks.
func (c *RankCtx) Barrier() { c.sess.world.Barrier(c.proc) }

// SchemeName reports the DDT scheme processing this rank's datatypes.
func (c *RankCtx) SchemeName() string { return c.rank.SchemeName() }

// --- workloads & experiments ---

// Workload is one of the paper's application-kernel layout families.
type Workload = workload.Workload

// Workloads returns the paper's four workloads (specfem3D_oc,
// specfem3D_cm, MILC, NAS_MG).
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks a workload up by its paper legend name.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// FillPattern deterministically fills a buffer for verification.
func FillPattern(data []byte, seed uint64) { workload.FillPattern(data, seed) }

// VerifyBlocks checks that the layout-covered bytes of got match want.
func VerifyBlocks(l *Layout, count int, want, got []byte) error {
	return workload.VerifyBlocks(l, count, want, got)
}

// ExperimentTable is a rendered experiment result.
type ExperimentTable = bench.Table

// RunFigure regenerates one of the paper's figures by id ("1", "8", "9",
// "10", "11", "12", "13", "14").
func RunFigure(id string) ([]*ExperimentTable, error) { return bench.Run(id) }

// Figures lists the reproducible figure ids.
func Figures() []string { return bench.Figures() }

// SchemeNames lists the available scheme names, matching the typed Scheme
// constants one to one (aliases like "MVAPICH2-GDR" are additionally
// accepted by NewSession but not listed here).
func SchemeNames() []string { return schemes.Names() }

// Schemes lists the typed scheme constants in SchemeNames() order.
func Schemes() []Scheme {
	names := schemes.Names()
	out := make([]Scheme, len(names))
	for i, n := range names {
		out[i] = Scheme(n)
	}
	return out
}

// Resized is MPI_Type_create_resized (lb = 0): overrides the extent.
func Resized(base Type, extent int64) Type { return datatype.Resized(base, extent) }

// --- explicit pack/unpack (Algorithm 1 of the paper) ---

// PackSize is MPI_Pack_size for count elements of l.
func (c *RankCtx) PackSize(l *Layout, count int) int64 { return c.rank.PackSize(l, count) }

// Pack is blocking MPI_Pack: it gathers count elements of l from inbuf
// into outbuf at *position, advancing *position.
func (c *RankCtx) Pack(inbuf *Buffer, l *Layout, count int, outbuf *Buffer, position *int64) {
	c.rank.Pack(c.proc, inbuf, l, count, outbuf, position)
}

// Unpack is blocking MPI_Unpack: the inverse of Pack.
func (c *RankCtx) Unpack(inbuf *Buffer, position *int64, outbuf *Buffer, l *Layout, count int) {
	c.rank.Unpack(c.proc, inbuf, position, outbuf, l, count)
}

// --- collectives & topology ---

// CollTagBase is the first tag of the reserved collective range: every tag
// in [CollTagBase, ∞) belongs to the runtime's collective machinery, and
// user Isend/Irecv with such a tag fails immediately with a *TagError.
const CollTagBase = mpi.CollTagBase

// TagError is the typed error returned (via Wait/Waitall) for a user
// send/receive posted with a tag inside the reserved collective range.
type TagError = mpi.TagError

// ErrTagReserved matches any *TagError via errors.Is.
var ErrTagReserved = mpi.ErrTagReserved

// CollTuning overrides the collective engine's algorithm selection; see
// the field docs in internal/coll. The zero value is full Auto.
type CollTuning = coll.Tuning

// CollAlgorithm names a collective schedule.
type CollAlgorithm = coll.Algorithm

// Collective algorithm constants for CollTuning overrides.
const (
	CollAuto              = coll.Auto
	CollLinear            = coll.Linear
	CollPairwise          = coll.Pairwise
	CollRing              = coll.Ring
	CollBruck             = coll.Bruck
	CollRecursiveDoubling = coll.RecursiveDoubling
	CollHierarchical      = coll.Hierarchical
	CollOneSidedRing      = coll.OneSidedRing
	CollOneSidedBruck     = coll.OneSidedBruck
)

// ParseCollAlgorithm resolves an algorithm name ("auto", "linear",
// "pairwise", "ring", "bruck", "recursive-doubling", "hierarchical",
// "onesided-ring", "onesided-bruck").
func ParseCollAlgorithm(s string) (CollAlgorithm, error) { return coll.ParseAlgorithm(s) }

// WOp is one peer's slot of an Alltoallw: per-peer send/recv buffers,
// layouts (displacements folded in as bytes), and counts.
type WOp = coll.WOp

// VOp is one buffer slot of a v-collective (Allgatherv/Gatherv/Scatterv).
type VOp = coll.VOp

// Bcast broadcasts count elements of l from root's buf (binomial tree).
func (c *RankCtx) Bcast(root int, buf *Buffer, l *Layout, count int) {
	c.rank.Bcast(c.proc, root, buf, l, count)
}

// AllreduceSumF64 sums n float64 values element-wise across all ranks.
// Any world size is supported (non-power-of-two sizes run the
// binary-blocks fallback); errors from the underlying transfers or an
// undersized buffer are returned.
func (c *RankCtx) AllreduceSumF64(buf *Buffer, n int) error {
	return c.rank.AllreduceSumF64(c.proc, buf, n)
}

// Alltoallw runs a DDT-aware personalized all-to-all: ops[i] is the leg
// pair with rank i, len(ops) == NumRanks on every rank. The collective
// engine fuses each schedule phase's packs and unpacks into single kernel
// launches; override the algorithm with SessionConfig.Coll.
func (c *RankCtx) Alltoallw(ops []WOp) error {
	return c.sess.coll.Alltoallw(c.proc, c.rank, ops)
}

// Allgatherv gathers every rank's contribution to every rank; the full
// recvs vector must be passed on every rank (SPMD full-args).
func (c *RankCtx) Allgatherv(send VOp, recvs []VOp) error {
	return c.sess.coll.Allgatherv(c.proc, c.rank, send, recvs)
}

// Gatherv collects every rank's contribution at root; the full recvs
// vector must be passed on every rank (SPMD full-args).
func (c *RankCtx) Gatherv(root int, send VOp, recvs []VOp) error {
	return c.sess.coll.Gatherv(c.proc, c.rank, root, send, recvs)
}

// Scatterv distributes per-rank slots from root; the full sends vector
// must be passed on every rank (SPMD full-args).
func (c *RankCtx) Scatterv(root int, sends []VOp, recv VOp) error {
	return c.sess.coll.Scatterv(c.proc, c.rank, root, sends, recv)
}

// NeighborOp is one leg of a neighborhood exchange
// (MPI_Neighbor_alltoallw style).
type NeighborOp = mpi.NeighborOp

// NeighborAlltoallw exchanges per-neighbor datatyped legs as ONE fused
// phase: every leg's pack in a single kernel launch, every arrival's
// unpack/IPC scatter in another. Legs keep their topology order (index-
// FIFO matching for repeated peers).
func (c *RankCtx) NeighborAlltoallw(ops []NeighborOp) error {
	return c.sess.coll.NeighborAlltoallw(c.proc, c.rank, ops)
}

// NeighborExchange posts all receives then all sends of ops and waits.
//
// Deprecated: NeighborAlltoallw supersedes this with collective-scope
// kernel fusion; this per-message path remains as the naive reference.
func (c *RankCtx) NeighborExchange(ops []NeighborOp) {
	c.rank.NeighborExchange(c.proc, ops)
}

// --- one-sided RMA (symmetric windows, put/get/signal) ---

// Window is a symmetric-heap window: a named allocation mirrored across
// every rank, offset-addressable by one-sided verbs.
type Window = rma.Window

// Signal is a slotted remote-completion flag array bumped by
// PutSignal/PackPut deposits; see WaitSignal.
type Signal = rma.Signal

// RMAStats counts one-sided activity (puts, gets, doorbells,
// retransmits, bytes) across the session's fabric.
type RMAStats = rma.Stats

// RMAOpError wraps a failed one-sided operation, surfaced by Quiet.
type RMAOpError = rma.OpError

// RMARevokedError reports a one-sided access on a revoked (or
// reseated-away) fabric epoch; it matches errors.Is(err, ErrCommRevoked).
type RMARevokedError = rma.RevokedError

// ErrRMARetriesExhausted matches (via errors.Is) a one-sided op whose
// bounded retransmissions all failed.
var ErrRMARetriesExhausted = rma.ErrRetriesExhausted

// RMAStats aggregates one-sided counters across all ranks; zero when no
// one-sided verb or collective has run.
func (s *Session) RMAStats() RMAStats {
	if s.rma == nil {
		return RMAStats{}
	}
	return s.rma.TotalStats()
}

// RMAPendingOps sums incomplete one-sided operations across every
// endpoint. Zero after every rank's Quiet has drained; nonzero after a
// recovery means reaping leaked an in-flight op.
func (s *Session) RMAPendingOps() int {
	if s.rma == nil {
		return 0
	}
	return s.rma.PendingOps()
}

// RMAEpoch is the fabric's re-rendezvous epoch: 0 until the first Shrink
// reseats the symmetric heap onto a survivor communicator.
func (s *Session) RMAEpoch() int {
	if s.rma == nil {
		return 0
	}
	return s.rma.Epoch()
}

// fabricSelf is this rank's member index in the fabric's current epoch —
// identical to the world rank until a Shrink re-rendezvous densely
// re-ranks the survivors (-1 when this rank is not a member).
func (c *RankCtx) fabricSelf() int { return c.sess.rmaFabric().MemberOf(c.rank.ID()) }

// Window opens (SPMD rendezvous) a named symmetric window of size bytes
// on every fabric member; all members must call with the same name and
// size, and balance it with CloseWindow. Window rank indices and verb
// targets are fabric member indices (== world ranks until a Shrink
// re-rendezvous). Reopening a checkpoint-registered window after a
// re-rendezvous automatically rebinds the registration to the fresh
// region and rolls its contents back to the last committed epoch.
func (c *RankCtx) Window(name string, size int64) (*Window, error) {
	w, err := c.sess.rmaFabric().OpenWindow(c.fabricSelf(), name, size)
	if err != nil {
		return nil, err
	}
	c.maybeRestoreWindow(w)
	return w, nil
}

// WindowSized opens a dynamic window whose size differs per rank; the
// offsets of a peer's regions must be learned out of band (e.g. through
// a Signal exchange), as they are not symmetric. Auto-restore on reopen
// works as for Window.
func (c *RankCtx) WindowSized(name string, localSize int64) (*Window, error) {
	w, err := c.sess.rmaFabric().OpenWindowSized(c.fabricSelf(), name, localSize)
	if err != nil {
		return nil, err
	}
	c.maybeRestoreWindow(w)
	return w, nil
}

// CloseWindow balances one Window/WindowSized open; the last close
// releases the heap space.
func (c *RankCtx) CloseWindow(w *Window) error { return c.sess.rmaFabric().CloseWindow(w) }

// OpenSignal opens (SPMD rendezvous) a named signal with the given slot
// count; balance with CloseSignal.
func (c *RankCtx) OpenSignal(name string, slots int) (*Signal, error) {
	return c.sess.rmaFabric().OpenSignal(name, slots)
}

// CloseSignal balances one OpenSignal.
func (c *RankCtx) CloseSignal(s *Signal) { c.sess.rmaFabric().CloseSignal(s) }

// Put deposits n bytes from src[srcOff:] into target's window region at
// dstOff — one-sided, no target CPU involvement. Completion is local:
// Quiet drains all outstanding puts.
func (c *RankCtx) Put(w *Window, target int, dstOff int64, src *Buffer, srcOff, n int64) error {
	return c.sess.rmaFabric().Endpoint(c.rank.ID()).Put(c.proc, w, target, dstOff, src, srcOff, n)
}

// PutSignal is Put plus a remote signal bump after the payload lands:
// sig[target][slot] += add, payload-before-signal ordering guaranteed.
func (c *RankCtx) PutSignal(w *Window, target int, dstOff int64, src *Buffer, srcOff, n int64, sig *Signal, slot int, add uint64) error {
	return c.sess.rmaFabric().Endpoint(c.rank.ID()).PutSignal(c.proc, w, target, dstOff, src, srcOff, n, sig, slot, add)
}

// Get reads n bytes from target's window region at srcOff into the
// local dst[dstOff:] (RDMA read; completion via Quiet).
func (c *RankCtx) Get(w *Window, target int, srcOff int64, dst *Buffer, dstOff, n int64) error {
	return c.sess.rmaFabric().Endpoint(c.rank.ID()).Get(c.proc, w, target, srcOff, dst, dstOff, n)
}

// PackPut packs count elements of layout l from origin into this rank's
// own region of w at packOff, then deposits the packed bytes at
// target's dstOff, optionally bumping sig[target][slot] by add. Fused,
// one kernel launch triggers the wire leg at retirement (GPU-initiated
// communication); unfused, the CPU synchronizes the pack stream first.
func (c *RankCtx) PackPut(w *Window, target int, dstOff int64, origin *Buffer, l *Layout, count int, packOff int64, sig *Signal, slot int, add uint64, fused bool) error {
	return c.sess.rmaFabric().Endpoint(c.rank.ID()).PackPut(c.proc, w, target, dstOff, origin, l, count, packOff, sig, slot, add, fused)
}

// WaitSignal blocks until sig's slot on this rank reaches atLeast. The
// wait observes rank failures and epoch revocation on the virtual clock
// — a crashed peer surfaces as a *RankFailedError and a revoked fabric
// as a *RMARevokedError instead of a stall — and honors the session's
// StallTimeout: a signal that can never arrive unwinds with a typed
// *StallError on this rank rather than wedging the scheduler.
func (c *RankCtx) WaitSignal(sig *Signal, slot int, atLeast uint64) error {
	return c.sess.rmaFabric().Endpoint(c.rank.ID()).WaitSignal(c.proc, sig, slot, atLeast)
}

// Quiet blocks until every one-sided op this rank issued has completed,
// returning (and clearing) the first failure.
func (c *RankCtx) Quiet() error {
	return c.sess.rmaFabric().Endpoint(c.rank.ID()).Quiet(c.proc)
}

// Fence orders this rank's prior puts before subsequent ones at every
// target (modeled conservatively as full remote completion).
func (c *RankCtx) Fence() error {
	return c.sess.rmaFabric().Endpoint(c.rank.ID()).Fence(c.proc)
}

// --- rank-failure recovery (ULFM verbs) ---

// World returns the world communicator (every rank, epoch 0) — the
// starting point of the Revoke/Shrink/Agree recovery sequence.
func (c *RankCtx) World() *Comm { return c.sess.world.WorldComm() }

// Revoke marks cm revoked at this rank and floods the revocation in-band
// to every other member, failing their pending operations on the comm fast
// with ErrCommRevoked (ULFM MPI_Comm_revoke). The collectives revoke
// automatically when they observe a member death, so explicit calls are
// only needed for application-level aborts.
func (c *RankCtx) Revoke(cm *Comm) { cm.Revoke(c.proc, c.rank) }

// Shrink is the ULFM MPI_Comm_shrink analogue: a rendezvous of cm's live
// members returning a dense re-ranked communicator of the survivors at a
// fresh epoch. Members that die mid-rendezvous are excluded when the
// detector declares them, so Shrink completes within the heartbeat bound.
//
// When a committed checkpoint epoch covers this rank, Shrink additionally
// rolls the rank's registered buffers back to it (automatic
// restore-on-Shrink), charging the restore memcpy to the simulated clock.
// When the session has a one-sided fabric, Shrink also re-rendezvouses it
// onto the survivor communicator (dense re-rank, fresh epoch, rebuilt
// symmetric heap) — reopen windows afterwards; checkpoint-registered
// windows auto-restore on reopen, extending restore-on-Shrink to
// symmetric-heap state.
func (c *RankCtx) Shrink(cm *Comm) (*Comm, error) {
	sub, err := cm.Shrink(c.proc, c.rank)
	if err != nil || sub == nil {
		return sub, err
	}
	c.sess.syncCkptDead()
	st := c.sess.ckpt
	if st.Latest() != nil && st.Registered(c.ID()) > 0 {
		if n, _, rerr := st.RestoreRank(c.ID()); rerr == nil {
			c.chargeCkpt("restore", n)
		}
	}
	if f := c.sess.rma; f != nil {
		if rerr := f.Reseat(c.proc, c.rank, sub); rerr != nil {
			return sub, rerr
		}
	}
	return sub, nil
}

// chargeCkpt bills a checkpoint/restore memcpy of n logical bytes to the
// simulated machine at device-memory bandwidth under trace.Recovery. The
// charge is by logical size in BOTH payload modes — the machine copies the
// bytes even when the host-side representation is a span clone — so lazy
// and exact runs stay clock-identical.
func (c *RankCtx) chargeCkpt(what string, n int64) {
	d := int64(float64(n) / c.rank.Dev.Arch.MemBWBytesPerNs)
	if d <= 0 {
		return
	}
	t0 := c.proc.Now()
	c.rank.Trace.Add(trace.Recovery, d)
	c.proc.Sleep(d)
	if tl := c.sess.world.Timeline(); tl != nil {
		tl.Rank(c.ID()).Span(timeline.LayerFault, trace.Recovery, "", "ckpt-"+what, t0, d)
	}
}

// Checkpoint contributes this rank's registered buffers to the open
// coordinated checkpoint epoch (opening one if needed) and reports whether
// this contribution committed it — true on the last live registered rank.
// The snapshot memcpy is charged to the simulated clock (trace.Recovery).
// Call from every live rank at a consistent point (e.g. after a Barrier or
// a completed collective) to get an epoch no rank can tear.
func (c *RankCtx) Checkpoint() bool {
	s := c.sess
	s.syncCkptDead()
	c.chargeCkpt("capture", s.ckpt.RegisteredBytes(c.ID()))
	_, committed := s.ckpt.CaptureRank(c.ID(), c.proc.Now(), s.world.WorldComm().Epoch())
	return committed
}

// Agree is the MPIX_Comm_agree analogue: a fault-tolerant agreement
// returning the bitwise AND of the live members' flags. When a member of cm
// is dead the agreed flag is still returned, together with a
// *RankFailedError — survivors get a consistent flag plus the failure
// notification.
func (c *RankCtx) Agree(cm *Comm, flag uint64) (uint64, error) {
	return cm.Agree(c.proc, c.rank, flag)
}

// CommCtx scopes a rank's collective operations to a communicator
// (typically a Shrink survivor comm). Ranks, roots, and peer indices are
// comm ranks; the engine inherits the session's CollTuning, with
// topology-bound algorithm choices downgraded off the world scope.
type CommCtx struct {
	c  *RankCtx
	cm *Comm
}

// On returns this rank's collective operations scoped to cm. The rank must
// be a member.
func (c *RankCtx) On(cm *Comm) *CommCtx { return &CommCtx{c: c, cm: cm} }

// Comm returns the scoped communicator.
func (cc *CommCtx) Comm() *Comm { return cc.cm }

// Rank returns this rank's comm rank (-1 if not a member).
func (cc *CommCtx) Rank() int { return cc.cm.CommRank(cc.c.ID()) }

// Size reports the communicator size.
func (cc *CommCtx) Size() int { return cc.cm.Size() }

// Alltoallw runs the DDT-aware personalized all-to-all over the scoped
// communicator: ops[i] is the leg pair with comm rank i, len(ops) == Size.
func (cc *CommCtx) Alltoallw(ops []WOp) error {
	return cc.c.sess.engineFor(cc.cm).Alltoallw(cc.c.proc, cc.c.rank, ops)
}

// Allgatherv gathers every member's contribution to every member.
func (cc *CommCtx) Allgatherv(send VOp, recvs []VOp) error {
	return cc.c.sess.engineFor(cc.cm).Allgatherv(cc.c.proc, cc.c.rank, send, recvs)
}

// Gatherv collects every member's contribution at comm rank root.
func (cc *CommCtx) Gatherv(root int, send VOp, recvs []VOp) error {
	return cc.c.sess.engineFor(cc.cm).Gatherv(cc.c.proc, cc.c.rank, root, send, recvs)
}

// Scatterv distributes per-member slots from comm rank root.
func (cc *CommCtx) Scatterv(root int, sends []VOp, recv VOp) error {
	return cc.c.sess.engineFor(cc.cm).Scatterv(cc.c.proc, cc.c.rank, root, sends, recv)
}

// CartComm is a Cartesian process topology (MPI_Cart_create).
type CartComm = mpi.CartComm

// CartCreate builds a Cartesian topology over the first prod(dims) ranks.
func (s *Session) CartCreate(dims []int, periods []bool) *CartComm {
	return s.world.CartCreate(dims, periods)
}

// ExtendedWorkloads returns all implemented ddtbench workloads: the
// paper's four plus WRF, LAMMPS_full, NAS_LU, and FFT2D.
func ExtendedWorkloads() []Workload { return workload.Extended() }
