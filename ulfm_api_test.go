package dkf_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	dkf "repro"
)

func TestSessionHeartbeatValidation(t *testing.T) {
	if _, err := dkf.NewSession(dkf.SessionConfig{
		Heartbeat: dkf.HeartbeatConfig{IntervalNs: -1},
		Faults:    &dkf.FaultPlan{},
	}); err == nil {
		t.Error("negative Heartbeat.IntervalNs accepted")
	}
	if _, err := dkf.NewSession(dkf.SessionConfig{
		Heartbeat: dkf.HeartbeatConfig{TimeoutNs: -1},
		Faults:    &dkf.FaultPlan{},
	}); err == nil {
		t.Error("negative Heartbeat.TimeoutNs accepted")
	}
	if _, err := dkf.NewSession(dkf.SessionConfig{
		Heartbeat: dkf.HeartbeatConfig{TimeoutNs: 100_000},
	}); err == nil {
		t.Error("Heartbeat timeout without a fault plan accepted")
	}
	sess, err := dkf.NewSession(dkf.SessionConfig{
		Heartbeat: dkf.HeartbeatConfig{IntervalNs: 10_000, TimeoutNs: 100_000},
		Faults:    &dkf.FaultPlan{},
	})
	if err != nil {
		t.Fatalf("explicit heartbeat with empty fault plan rejected: %v", err)
	}
	if !sess.FTEnabled() {
		t.Error("explicit Heartbeat.TimeoutNs did not enable failure tolerance")
	}
	if got := len(sess.Survivors()); got != sess.NumRanks() {
		t.Errorf("Survivors() = %d ranks before any crash, want %d", got, sess.NumRanks())
	}
}

// TestSessionShrinkRecovery drives the full ULFM recovery sequence through
// the public API: a planned crash kills rank 1 mid-Alltoallw, every
// survivor gets a typed error, agrees on the failure, shrinks the world to
// a dense 7-rank communicator, and re-runs the exchange on it byte-exactly.
func TestSessionShrinkRecovery(t *testing.T) {
	const deadRank = 1
	plan, err := dkf.ParseFaultPlan(fmt.Sprintf("crash=%d@20000", deadRank))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := dkf.NewSession(dkf.SessionConfig{Scheme: dkf.SchemeProposedTuned, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	n := sess.NumRanks()
	m := n - 1 // survivor count
	l := dkf.Commit(dkf.Contiguous(64, dkf.Byte))
	blk := int(l.ExtentBytes)

	// World-phase and retry-phase per-peer buffers for every rank (the dead
	// rank's retry slots just go unused).
	wsend := make([][]*dkf.Buffer, n)
	wrecv := make([][]*dkf.Buffer, n)
	rsend := make([][]*dkf.Buffer, n)
	rrecv := make([][]*dkf.Buffer, n)
	for r := 0; r < n; r++ {
		wsend[r] = make([]*dkf.Buffer, n)
		wrecv[r] = make([]*dkf.Buffer, n)
		rsend[r] = make([]*dkf.Buffer, m)
		rrecv[r] = make([]*dkf.Buffer, m)
		for p := 0; p < n; p++ {
			wsend[r][p] = sess.Alloc(r, fmt.Sprintf("ws%d", p), blk)
			wrecv[r][p] = sess.Alloc(r, fmt.Sprintf("wr%d", p), blk)
			dkf.FillPattern(wsend[r][p].Data, uint64(1+r*n+p))
		}
		for p := 0; p < m; p++ {
			rsend[r][p] = sess.Alloc(r, fmt.Sprintf("rs%d", p), blk)
			rrecv[r][p] = sess.Alloc(r, fmt.Sprintf("rr%d", p), blk)
			dkf.FillPattern(rsend[r][p].Data, uint64(1000+r*n+p))
		}
	}

	worldErrs := make([]error, n)
	agreeFlags := make([]uint64, n)
	agreeErrs := make([]error, n)
	subSizes := make([]int, n)
	subRanks := make([]int, n)
	retryErrs := make([]error, n)
	err = sess.Run(func(c *dkf.RankCtx) {
		me := c.ID()
		ops := make([]dkf.WOp, n)
		for p := 0; p < n; p++ {
			ops[p] = dkf.WOp{
				SendBuf: wsend[me][p], SendType: l, SendCount: 1,
				RecvBuf: wrecv[me][p], RecvType: l, RecvCount: 1,
			}
		}
		// Loop until the crash surfaces (the first iterations can finish
		// before the detector declares rank 1 dead).
		const horizonNs = 400_000
		for worldErrs[me] == nil && c.Now() < horizonNs {
			worldErrs[me] = c.Alltoallw(ops)
		}
		agreeFlags[me], agreeErrs[me] = c.Agree(c.World(), 1)
		sub, serr := c.Shrink(c.World())
		if serr != nil {
			retryErrs[me] = serr
			return
		}
		cc := c.On(sub)
		subSizes[me] = cc.Size()
		subRanks[me] = cc.Rank()
		retry := make([]dkf.WOp, cc.Size())
		for p := range retry {
			retry[p] = dkf.WOp{
				SendBuf: rsend[me][p], SendType: l, SendCount: 1,
				RecvBuf: rrecv[me][p], RecvType: l, RecvCount: 1,
			}
		}
		retryErrs[me] = cc.Alltoallw(retry)
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := sess.CrashedRanks(); len(got) != 1 || got[0] != deadRank {
		t.Fatalf("CrashedRanks() = %v, want [%d]", got, deadRank)
	}
	if got := sess.FailedRanks(); len(got) != 1 || got[0] != deadRank {
		t.Fatalf("FailedRanks() = %v, want [%d]", got, deadRank)
	}
	survivors := sess.Survivors()
	if len(survivors) != m {
		t.Fatalf("Survivors() = %v, want %d ranks", survivors, m)
	}
	for cr, w := range survivors {
		if worldErrs[w] == nil {
			t.Errorf("rank %d: world-phase Alltoallw never surfaced the crash", w)
		} else if !errors.Is(worldErrs[w], dkf.ErrRankFailed) && !errors.Is(worldErrs[w], dkf.ErrCommRevoked) {
			t.Errorf("rank %d: world-phase error %v is not a rank-failure/revocation error", w, worldErrs[w])
		}
		if agreeFlags[w] != 1 {
			t.Errorf("rank %d: Agree flag = %d, want 1", w, agreeFlags[w])
		}
		var rf *dkf.RankFailedError
		if !errors.As(agreeErrs[w], &rf) || rf.Rank != deadRank {
			t.Errorf("rank %d: Agree error = %v, want *RankFailedError{Rank: %d}", w, agreeErrs[w], deadRank)
		}
		if subSizes[w] != m || subRanks[w] != cr {
			t.Errorf("rank %d: shrunken comm size/rank = %d/%d, want %d/%d", w, subSizes[w], subRanks[w], m, cr)
		}
		if retryErrs[w] != nil {
			t.Errorf("rank %d: retry Alltoallw on shrunken comm failed: %v", w, retryErrs[w])
		}
	}
	// Byte-exactness of the retry: survivor comm rank q received comm rank
	// p's slot-q send buffer.
	for q, wq := range survivors {
		for p, wp := range survivors {
			if !bytes.Equal(rrecv[wq][p].Data, rsend[wp][q].Data) {
				t.Errorf("retry: comm rank %d (world %d) slot %d differs from world %d's send", q, wq, p, wp)
			}
		}
	}
	if leaked := sess.LeakedRequests(); leaked != 0 {
		t.Errorf("LeakedRequests() = %d after recovery, want 0", leaked)
	}
}
