package dkf_test

// bench_test.go regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark runs the corresponding
// simulated experiment and reports the simulated latency as the custom
// metric "sim-us/exchange" (wall-clock ns/op measures only the simulator
// itself). Run:
//
//	go test -bench=. -benchmem
//
// Mapping (see DESIGN.md §3 for the full index):
//
//	BenchmarkFig01_* — Fig. 1 launch-vs-kernel breakdown per GPU arch
//	BenchmarkFig08_* — Fig. 8 fusion-threshold sweep
//	BenchmarkFig09_* — Fig. 9 bulk sparse, Lassen
//	BenchmarkFig10_* — Fig. 10 bulk dense, Lassen
//	BenchmarkFig11_* — Fig. 11 time breakdown, ABCI
//	BenchmarkFig12_* — Fig. 12 workload sweeps, Lassen
//	BenchmarkFig13_* — Fig. 13 workload sweeps, ABCI
//	BenchmarkFig14_* — Fig. 14 production libraries
//	BenchmarkTab02_* — Table II systems (cluster build sanity)
//	BenchmarkAblation_* — DESIGN.md §4 design-choice ablations

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/workload"
)

// reportBulk runs one bulk measurement per b.N iteration and reports the
// simulated exchange latency.
func reportBulk(b *testing.B, opt bench.BulkOptions) {
	b.Helper()
	var last bench.BulkResult
	for i := 0; i < b.N; i++ {
		last = bench.RunBulk(opt)
		if last.VerifyErr != nil {
			b.Fatal(last.VerifyErr)
		}
	}
	b.ReportMetric(float64(last.AvgNs)/1000, "sim-us/exchange")
	b.ReportMetric(float64(last.MsgBytes), "msg-bytes")
}

func BenchmarkFig01_LaunchOverheadBreakdown(b *testing.B) {
	for _, arch := range cluster.FigureOneArchs() {
		arch := arch
		b.Run(arch.Name, func(b *testing.B) {
			var kernel, launch int64
			for i := 0; i < b.N; i++ {
				env := sim.NewEnv()
				dev := gpu.NewDevice(env, arch, 0, 0)
				l := workload.Specfem3DCM().Layout(32)
				kernel = dev.EstimateKernelNs(l.SizeBytes, l.NumBlocks(), l.MaxBlockBytes)
				launch = arch.LaunchOverheadNs
			}
			b.ReportMetric(float64(kernel)/1000, "sim-kernel-us")
			b.ReportMetric(float64(launch)/1000, "sim-launch-us")
		})
	}
}

func BenchmarkFig08_ThresholdSweep(b *testing.B) {
	for _, th := range []int64{16 << 10, 512 << 10, 4 << 20} {
		th := th
		b.Run(fmt.Sprintf("thr=%dKB", th>>10), func(b *testing.B) {
			reportBulk(b, bench.BulkOptions{
				System: cluster.Lassen(), Scheme: "Proposed",
				Workload: workload.Specfem3DCM(), Dim: 32, Buffers: 16,
				FusionThreshold: th,
			})
		})
	}
}

func benchSchemes(b *testing.B, system cluster.Spec, wl workload.Workload, dim, buffers int) {
	b.Helper()
	for _, s := range []string{"GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed", "Proposed-Tuned"} {
		s := s
		b.Run(s, func(b *testing.B) {
			reportBulk(b, bench.BulkOptions{
				System: system, Scheme: s, Workload: wl, Dim: dim, Buffers: buffers,
			})
		})
	}
}

func BenchmarkFig09_BulkSparseLassen(b *testing.B) {
	for _, nbuf := range []int{1, 4, 16} {
		nbuf := nbuf
		b.Run(fmt.Sprintf("buffers=%d", nbuf), func(b *testing.B) {
			benchSchemes(b, cluster.Lassen(), workload.Specfem3DCM(), 32, nbuf)
		})
	}
}

func BenchmarkFig10_BulkDenseLassen(b *testing.B) {
	for _, nbuf := range []int{1, 4, 16} {
		nbuf := nbuf
		b.Run(fmt.Sprintf("buffers=%d", nbuf), func(b *testing.B) {
			benchSchemes(b, cluster.Lassen(), workload.MILC(), 8, nbuf)
		})
	}
}

func BenchmarkFig11_TimeBreakdown(b *testing.B) {
	for _, s := range []string{"GPU-Sync", "GPU-Async", "Proposed-Tuned"} {
		s := s
		b.Run(s, func(b *testing.B) {
			var last bench.BulkResult
			for i := 0; i < b.N; i++ {
				last = bench.RunBulk(bench.BulkOptions{
					System: cluster.ABCI(), Scheme: s,
					Workload: workload.MILC(), Dim: 16, Buffers: 16, Iterations: 3,
				})
				if last.VerifyErr != nil {
					b.Fatal(last.VerifyErr)
				}
			}
			per := last.Breakdown.Scale(3)
			b.ReportMetric(float64(last.AvgNs)/1000, "sim-us/exchange")
			b.ReportMetric(float64(per.Total())/1000, "sim-us/breakdown-total")
		})
	}
}

func BenchmarkFig12_WorkloadsLassen(b *testing.B) {
	for _, wl := range workload.All() {
		wl := wl
		dim := wl.Dims[len(wl.Dims)/2]
		b.Run(wl.Name, func(b *testing.B) {
			benchSchemes(b, cluster.Lassen(), wl, dim, 16)
		})
	}
}

func BenchmarkFig13_WorkloadsABCI(b *testing.B) {
	for _, wl := range workload.All() {
		wl := wl
		dim := wl.Dims[len(wl.Dims)/2]
		b.Run(wl.Name, func(b *testing.B) {
			benchSchemes(b, cluster.ABCI(), wl, dim, 16)
		})
	}
}

func BenchmarkFig14_ProductionLibraries(b *testing.B) {
	for _, lib := range []string{"SpectrumMPI", "OpenMPI", "MVAPICH2-GDR", "Proposed-Tuned"} {
		lib := lib
		b.Run(lib, func(b *testing.B) {
			reportBulk(b, bench.BulkOptions{
				System: cluster.Lassen(), Scheme: lib,
				Workload: workload.MILC(), Dim: 8, Buffers: 4,
				Iterations: 2, Warmup: 1,
			})
		})
	}
}

func BenchmarkTab02_SystemBuild(b *testing.B) {
	for _, spec := range []cluster.Spec{cluster.Lassen(), cluster.ABCI()} {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := sim.NewEnv()
				c := cluster.MustBuild(env, spec)
				if c.TotalGPUs() != 8 {
					b.Fatal("bad build")
				}
			}
		})
	}
}

func BenchmarkAblation_SyncVsStatusPoll(b *testing.B) {
	var tab *bench.Table
	for i := 0; i < b.N; i++ {
		tab = bench.AblationSyncVsStatusPoll()
	}
	_ = tab
}

func BenchmarkAblation_FlushPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationFlushPolicy()
	}
}

func BenchmarkAblation_Partitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationPartitioning()
	}
}

func BenchmarkAblation_Rendezvous(b *testing.B) {
	for _, m := range []mpi.RendezvousMode{mpi.RGET, mpi.RPUT} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			reportBulk(b, bench.BulkOptions{
				System: cluster.Lassen(), Scheme: "Proposed-Tuned",
				Workload: workload.NASMG(), Dim: 128, Buffers: 8,
				MutateMPI: func(c *mpi.Config) { c.Rendezvous = m },
			})
		})
	}
}

func BenchmarkAblation_LayoutCache(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		disabled := disabled
		name := "cached"
		if disabled {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			reportBulk(b, bench.BulkOptions{
				System: cluster.Lassen(), Scheme: "Proposed-Tuned",
				Workload: workload.Specfem3DCM(), Dim: 32, Buffers: 16,
				MutateMPI: func(c *mpi.Config) { c.DisableLayoutCache = disabled },
			})
		})
	}
}

func BenchmarkAblation_Pipeline(b *testing.B) {
	for _, chunk := range []int64{0, 32 << 10} {
		chunk := chunk
		name := "whole-message"
		if chunk > 0 {
			name = "chunked-32KB"
		}
		b.Run(name, func(b *testing.B) {
			reportBulk(b, bench.BulkOptions{
				System: cluster.Lassen(), Scheme: "Proposed-Tuned",
				Workload: workload.Specfem3DCM(), Dim: 64, Buffers: 8,
				MutateMPI: func(c *mpi.Config) { c.PipelineChunkBytes = chunk },
			})
		})
	}
}
