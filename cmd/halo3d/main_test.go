package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestRunSmallGrid runs one timestep of the 2x2x2 halo exchange on a tiny
// grid and golden-checks the report line.
func TestRunSmallGrid(t *testing.T) {
	var buf bytes.Buffer
	avg, err := run(&buf, "GPU-Sync", 8, 1, 8, false, false, false, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 {
		t.Errorf("avg step latency %d ns, want > 0", avg)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "GPU-Sync") ||
		!strings.Contains(out, "grid=8^3") ||
		!strings.Contains(out, "avg step latency") {
		t.Errorf("report line = %q", out)
	}
}

// TestRunRMAMode runs the exchange through the one-sided path — fused
// pack-puts into symmetric ghost windows — in exact mode at 8 ranks and
// lazy mode at 64 ranks (where run() sample-verifies rank 0's faces).
func TestRunRMAMode(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		ranks := 8
		if lazy {
			ranks = 64
		}
		var buf bytes.Buffer
		avg, err := run(&buf, "Proposed-Tuned", 8, 2, ranks, lazy, false, true, false, "")
		if err != nil {
			t.Fatalf("lazy=%v: %v", lazy, err)
		}
		if avg <= 0 {
			t.Errorf("lazy=%v: avg step latency %d ns, want > 0", lazy, avg)
		}
		out := buf.String()
		if !strings.Contains(out, "one-sided exchange") || !strings.Contains(out, "fused pack-puts") {
			t.Errorf("lazy=%v: missing one-sided stats line:\n%s", lazy, out)
		}
		if strings.Contains(out, " 0 fused pack-puts") {
			t.Errorf("lazy=%v: no pack-puts issued:\n%s", lazy, out)
		}
		if lazy && !strings.Contains(out, "sampled faces around rank 0 verified byte-exact") {
			t.Errorf("lazy=%v: missing verification line:\n%s", lazy, out)
		}
	}
}

// TestRunCollMode runs the same timestep through the NeighborAlltoallw
// collective path and checks it completes with a plausible report.
func TestRunCollMode(t *testing.T) {
	var buf bytes.Buffer
	avg, err := run(&buf, "Proposed-Tuned", 8, 1, 8, false, true, false, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 {
		t.Errorf("avg step latency %d ns, want > 0", avg)
	}
	if !strings.Contains(buf.String(), "avg step latency") {
		t.Errorf("report line = %q", buf.String())
	}
}

// TestDims3 pins the balanced 3D factorizations -ranks depends on.
func TestDims3(t *testing.T) {
	cases := map[int][]int{
		8:    {2, 2, 2},
		64:   {4, 4, 4},
		256:  {8, 8, 4},
		1024: {16, 8, 8},
	}
	for ranks, want := range cases {
		got := dims3(ranks)
		if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
			t.Errorf("dims3(%d) = %v, want %v", ranks, got, want)
		}
	}
}

// TestRunLazyRanks runs the lazy-bytes mode at 64 ranks through both
// exchange paths; run() itself performs the sampled byte-exact check
// around rank 0, so success here means the verification passed.
func TestRunLazyRanks(t *testing.T) {
	for _, useColl := range []bool{false, true} {
		var buf bytes.Buffer
		avg, err := run(&buf, "Proposed-Tuned", 8, 1, 64, true, useColl, false, false, "")
		if err != nil {
			t.Fatalf("coll=%v: %v", useColl, err)
		}
		if avg <= 0 {
			t.Errorf("coll=%v: avg step latency %d ns, want > 0", useColl, avg)
		}
		out := buf.String()
		if !strings.Contains(out, "lazy mode; 6 sampled faces around rank 0 verified byte-exact") {
			t.Errorf("coll=%v: missing verification line:\n%s", useColl, out)
		}
		if !strings.Contains(out, "ranks=64") {
			t.Errorf("coll=%v: report line = %q", useColl, out)
		}
	}
}

// TestRunRecover drives the checkpoint-backed recovery demo on a tiny
// grid in both payload modes: a planned crash kills one rank, the
// survivors shrink (rolling their grids back to the pre-run checkpoint)
// and re-exchange, and runRecover's own rollback, byte-exactness, and
// buddy-adoption checks must pass.
func TestRunRecover(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		name := "exact"
		if lazy {
			name = "lazy"
		}
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runRecover(&buf, "Proposed-Tuned", 8, "crash=2@20000", lazy); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, want := range []string{
				"rank(s) [2] crashed",
				"shrunk world 8 -> 7 ranks",
				"checkpoint epoch 1 restored",
				"recovery exchange byte-exact across 6 survivor pairs",
				"checkpointed grid adopted by buddy rank 3",
			} {
				if !strings.Contains(out, want) {
					t.Errorf("recovery report missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestRunRecoverRMA drives the one-sided recovery demo in both payload
// modes: the planned crash tears the fused pack-put exchange, the
// survivors shrink (re-rendezvousing the symmetric heap), the reopened
// window restores its checkpointed contents, and the z-chain re-exchange
// over the new fabric epoch must verify byte-exactly with the dead rank's
// window snapshot still adoptable from its buddy.
func TestRunRecoverRMA(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		name := "exact"
		if lazy {
			name = "lazy"
		}
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runRecoverRMA(&buf, "Proposed-Tuned", 8, "crash=2@20000", lazy); err != nil {
				t.Fatalf("%v\n%s", err, buf.String())
			}
			out := buf.String()
			for _, want := range []string{
				"rank(s) [2] crashed",
				"survivors observed typed failures",
				"shrunk world 8 -> 7 ranks; symmetric heap re-rendezvoused at fabric epoch 1",
				"window contents restored from checkpoint epoch 1",
				"recovery chain byte-exact across 6 survivor pairs",
				"checkpointed grid and window adopted by buddy rank 3",
			} {
				if !strings.Contains(out, want) {
					t.Errorf("recovery report missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestRunRecoverRMAPresetSeeds checks the one-sided demo survives the
// rank-crash preset across seeds (different victims and crash times).
func TestRunRecoverRMAPresetSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full one-sided recovery cycles")
	}
	for _, seed := range []uint64{1, 2, 3} {
		var buf bytes.Buffer
		spec := fmt.Sprintf("rank-crash,seed=%d", seed)
		if err := runRecoverRMA(&buf, "Proposed-Tuned", 8, spec, seed%2 == 0); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, buf.String())
		}
	}
}

// TestRunRecoverPresetSeeds checks the demo survives the rank-crash preset
// across several seeds (different victim ranks and crash times).
func TestRunRecoverPresetSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full recovery cycles")
	}
	for _, seed := range []uint64{1, 2, 3} {
		var buf bytes.Buffer
		spec := fmt.Sprintf("rank-crash,seed=%d", seed)
		if err := runRecover(&buf, "Proposed-Tuned", 8, spec, seed%2 == 0); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, buf.String())
		}
	}
}

// TestCompareAllSmall checks the shoot-out covers all four schemes and
// reports speedups relative to GPU-Sync (whose own speedup is 1.00x).
func TestCompareAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full exchanges")
	}
	var buf bytes.Buffer
	if err := compareAll(&buf, 8, 1, 8, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed-Tuned"} {
		if !strings.Contains(out, s) {
			t.Errorf("missing scheme %q:\n%s", s, out)
		}
	}
	if !strings.Contains(out, "speedup vs GPU-Sync = 1.00x") {
		t.Errorf("GPU-Sync baseline should report 1.00x:\n%s", out)
	}
}
