// Command halo3d is a Comb-style 3D domain-decomposition proxy app on the
// simulated cluster: an N³ double-precision grid is split across all
// ranks (balanced 3D decomposition, 2x2x2 at the default 8), each rank
// exchanges its six faces with its neighbors every timestep using
// subarray datatypes, and the tool reports per-timestep latency for a
// chosen DDT scheme (or compares all of them).
//
// Usage:
//
//	halo3d -n 64 -steps 10 -scheme Proposed-Tuned
//	halo3d -n 64 -compare
//	halo3d -n 64 -coll          # NeighborAlltoallw with fused launches
//	halo3d -n 64 -rma           # one-sided: fused pack-puts into ghost windows
//	halo3d -n 32 -ranks 1024 -lazy -coll   # 16x8x8 grid, lazy-bytes payloads
//	halo3d -n 16 -faults rank-crash -recover
//	halo3d -n 16 -lazy -faults rank-crash -recover
//	halo3d -n 16 -rma -faults rank-crash -recover
//
// -rma swaps the exchange for the one-sided backend: every rank opens a
// symmetric window (an inbound slot plus a staging slot per face) and a
// six-slot signal, then each step fuse-packs its faces straight into the
// neighbors' windows (GPU-triggered doorbell, no rendezvous round-trip),
// waits on the per-face signals, and unpacks the deposits into its ghost
// grid. Works with -lazy and -ranks; mutually exclusive with -coll.
//
// -lazy switches the session to the lazy-bytes payload mode: grid buffers
// carry a span algebra instead of real bytes, so rank counts in the
// hundreds-to-1024 range complete in seconds of wall time. Correctness is
// spot-checked by materializing only rank 0's ghost region and its
// neighbors' faces after the run.
//
// The last two forms are the recovery demo, built on the coordinated
// checkpoint subsystem (internal/ckpt): every rank checkpoints its grid,
// a seeded fault plan kills one rank mid-exchange, the survivors observe
// the typed failure, agree on it, and shrink the world (ULFM-style) —
// which rolls their torn grids back to the checkpoint — then re-decompose
// the halo as a 1D z-chain over the survivor communicator and re-verify
// the exchanged faces byte-exactly. The dead rank's snapshot is finally
// adopted by its buddy. The process exits non-zero if any survivor misses
// the failure, the rollback or the recovery exchange mismatches, or
// requests leak. Works in both payload modes (-lazy included).
//
// With -rma the recovery demo runs over the one-sided backend instead:
// every rank checkpoint-registers its symmetric halo window alongside its
// grid, the fused pack-put exchange runs until the planned crash surfaces
// as a typed failure (a reaped in-flight put, a failed signal wait, or a
// fail-fast to the declared-dead rank), and Shrink re-rendezvouses the
// symmetric heap onto the survivors. Reopening the window then rebinds the
// checkpoint registration to the rebuilt heap and rolls the window
// contents back to the checkpoint epoch; the survivors re-exchange a
// z-chain with fused pack-puts over the new fabric epoch, and the driver
// verifies the window restore, the grid rollback, the chain byte-exactly,
// and that no one-sided ops were left pending.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	dkf "repro"
)

// faceLayouts builds the six face subarray types of an n^3 local grid with
// one ghost cell on each side (interior n-2 per axis, mirroring Comb).
func faceLayouts(n int) map[string]*dkf.Layout {
	sizes := []int{n, n, n}
	in := n - 2
	mk := func(sub, start []int) *dkf.Layout {
		return dkf.Commit(dkf.Subarray(sizes, sub, start, dkf.Float64))
	}
	return map[string]*dkf.Layout{
		"x-": mk([]int{1, in, in}, []int{1, 1, 1}),
		"x+": mk([]int{1, in, in}, []int{n - 2, 1, 1}),
		"y-": mk([]int{in, 1, in}, []int{1, 1, 1}),
		"y+": mk([]int{in, 1, in}, []int{1, n - 2, 1}),
		"z-": mk([]int{in, in, 1}, []int{1, 1, 1}),
		"z+": mk([]int{in, in, 1}, []int{1, 1, n - 2}),
	}
}

// dims3 factors ranks into the most balanced 3D grid, largest dimension
// first (8 -> 2x2x2, 64 -> 4x4x4, 256 -> 8x8x4, 1024 -> 16x8x8).
func dims3(ranks int) []int {
	best := [3]int{ranks, 1, 1}
	for a := 1; a*a*a <= ranks; a++ {
		if ranks%a != 0 {
			continue
		}
		m := ranks / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			if c-a < best[0]-best[2] {
				best = [3]int{c, b, a}
			}
		}
	}
	return []int{best[0], best[1], best[2]}
}

// faceCover counts, per byte of the ghost grid, how many recv faces
// cover it. The six face regions overlap along grid edges (cell (1,1,1)
// is in x-, y-, and z-), so edge bytes hold whichever face unpacked
// last — verification only trusts bytes covered exactly once.
func faceCover(faces map[string]*dkf.Layout, gridBytes int) []uint8 {
	cover := make([]uint8, gridBytes)
	for _, l := range faces {
		for _, b := range l.Blocks {
			for o := b.Offset; o < b.Offset+b.Len; o++ {
				cover[o]++
			}
		}
	}
	return cover
}

// compareFace checks that the ghost-region face of dst equals the sent
// face of src, block by block (the two layouts have identical block
// structure — same subarray sizes, different start corner), skipping
// ghost bytes covered by more than one face.
func compareFace(sent, ghost *dkf.Layout, src, dst []byte, cover []uint8) error {
	for i := range ghost.Blocks {
		gb, sb := ghost.Blocks[i], sent.Blocks[i]
		for k := int64(0); k < gb.Len; k++ {
			if cover[gb.Offset+k] == 1 && dst[gb.Offset+k] != src[sb.Offset+k] {
				return fmt.Errorf("byte %d of block %d differs", k, i)
			}
		}
	}
	return nil
}

// faceOrder fixes the window-slot order for the -rma exchange: offsets
// are derived per rank from this sequence, so every rank computes the
// same symmetric layout.
var faceOrder = []string{"x-", "x+", "y-", "y+", "z-", "z+"}

func run(w io.Writer, scheme string, n, steps, ranks int, lazy, useColl, useRMA, quiet bool, tracePath string) (int64, error) {
	cfg := dkf.SessionConfig{Scheme: dkf.Scheme(scheme)}
	if useRMA {
		cfg.Backend = dkf.BackendRMA
	}
	if ranks != 8 {
		if ranks < 8 || ranks%4 != 0 {
			return 0, fmt.Errorf("halo3d: -ranks must be >= 8 and divisible by 4 (one node is 4 GPUs), got %d", ranks)
		}
		spec := dkf.SystemLassen.Spec().WithNodes(ranks / 4)
		cfg.CustomSpec = &spec
		// Poll events scale as ranks x virtual-time/interval; the 200 ns
		// default is built for 8-rank runs.
		cfg.PollInterval = 5000
	}
	if lazy {
		cfg.Payload = dkf.PayloadLazy
	}
	if tracePath != "" {
		cfg.Trace = &dkf.TraceOptions{}
	}
	sess, err := dkf.NewSession(cfg)
	if err != nil {
		return 0, err
	}
	defer sess.Close()
	cart := sess.CartCreate(dims3(ranks), []bool{true, true, true})
	faces := faceLayouts(n)
	gridBytes := n * n * n * 8
	nr := sess.NumRanks()
	grids := make([]*dkf.Buffer, nr)
	ghosts := make([]*dkf.Buffer, nr)
	for r := 0; r < nr; r++ {
		grids[r] = sess.Alloc(r, "grid", gridBytes)
		ghosts[r] = sess.Alloc(r, "ghost", gridBytes)
		if grids[r].IsLazy() {
			grids[r].FillStream(uint64(r + 1))
		} else {
			dkf.FillPattern(grids[r].Data, uint64(r+1))
		}
	}
	axes := []struct {
		axis          int
		minusF, plusF string
	}{{0, "x-", "x+"}, {1, "y-", "y+"}, {2, "z-", "z+"}}

	var stepNs int64
	err = sess.Run(func(c *dkf.RankCtx) {
		me := c.ID()
		// One-sided setup: a symmetric window split into an inbound half
		// (one slot per ghost face, where neighbors deposit) and a staging
		// half (where this rank's fused pack kernels build outgoing faces
		// before the NIC reads them), plus one signal slot per face.
		var win *dkf.Window
		var sig *dkf.Signal
		inOff := make(map[string]int64, len(faceOrder))
		slotOf := make(map[string]int, len(faceOrder))
		var half int64
		if useRMA {
			for i, f := range faceOrder {
				inOff[f] = half
				slotOf[f] = i
				half += c.PackSize(faces[f], 1)
			}
			var werr error
			if win, werr = c.Window("halo", 2*half); werr != nil {
				panic(werr)
			}
			var serr error
			if sig, serr = c.OpenSignal("halo", len(faceOrder)); serr != nil {
				panic(serr)
			}
		}
		for s := 0; s < steps; s++ {
			c.Barrier()
			t0 := c.Now()
			if useRMA {
				// My minus face is the minus neighbor's plus ghost face and
				// vice versa (same pairing as the pt2pt tags). The step-top
				// barrier makes staging reuse safe: nobody re-packs a slot
				// until every rank has seen (and therefore received) the
				// previous step's signals.
				for _, ax := range axes {
					mPeer, pPeer := cart.Shift(me, ax.axis, 1)
					if perr := c.PackPut(win, mPeer, inOff[ax.plusF], grids[me], faces[ax.minusF], 1,
						half+inOff[ax.minusF], sig, slotOf[ax.plusF], 1, true); perr != nil {
						panic(perr)
					}
					if perr := c.PackPut(win, pPeer, inOff[ax.minusF], grids[me], faces[ax.plusF], 1,
						half+inOff[ax.plusF], sig, slotOf[ax.minusF], 1, true); perr != nil {
						panic(perr)
					}
				}
				for _, f := range faceOrder {
					if werr := c.WaitSignal(sig, slotOf[f], uint64(s+1)); werr != nil {
						panic(werr)
					}
					pos := inOff[f]
					c.Unpack(win.Buf(me), &pos, ghosts[me], faces[f], 1)
				}
			} else if useColl {
				// Collective path: one NeighborAlltoallw per step, ops in
				// the fixed (-x,+x,-y,+y,-z,+z) order so every rank's legs
				// line up, with per-phase fused pack/unpack launches.
				// Same-peer legs match by index, so the minus-direction op
				// sends the minus face and receives the neighbor's minus
				// face into the plus ghost region (and vice versa) — on the
				// periodic 2-extent axes both directions reach one peer.
				var ops []dkf.NeighborOp
				for _, ax := range axes {
					mPeer, pPeer := cart.Shift(c.ID(), ax.axis, 1)
					ops = append(ops,
						dkf.NeighborOp{Peer: mPeer, SendBuf: grids[c.ID()], SendType: faces[ax.minusF],
							RecvBuf: ghosts[c.ID()], RecvType: faces[ax.plusF], Count: 1},
						dkf.NeighborOp{Peer: pPeer, SendBuf: grids[c.ID()], SendType: faces[ax.plusF],
							RecvBuf: ghosts[c.ID()], RecvType: faces[ax.minusF], Count: 1},
					)
				}
				if err := c.NeighborAlltoallw(ops); err != nil {
					panic(err)
				}
			} else {
				var reqs []*dkf.Request
				for _, ax := range axes {
					mPeer, pPeer := cart.Shift(c.ID(), ax.axis, 1)
					// Receive the peer's opposite faces into the ghost grid.
					reqs = append(reqs,
						c.Irecv(mPeer, 10+ax.axis, ghosts[c.ID()], faces[ax.minusF], 1),
						c.Irecv(pPeer, 20+ax.axis, ghosts[c.ID()], faces[ax.plusF], 1),
						c.Isend(mPeer, 20+ax.axis, grids[c.ID()], faces[ax.minusF], 1),
						c.Isend(pPeer, 10+ax.axis, grids[c.ID()], faces[ax.plusF], 1),
					)
				}
				c.Waitall(reqs)
			}
			c.Barrier()
			if c.ID() == 0 {
				stepNs += c.Now() - t0
			}
			// Interior compute phase (fixed virtual cost).
			c.Sleep(int64(n*n) * 2)
		}
		if useRMA {
			if qerr := c.Quiet(); qerr != nil {
				panic(qerr)
			}
			c.Barrier()
			c.CloseSignal(sig)
			if cerr := c.CloseWindow(win); cerr != nil {
				panic(cerr)
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if lazy {
		checked, verr := verifySample(cart, faces, grids, ghosts, useColl)
		if verr != nil {
			return 0, verr
		}
		if !quiet {
			if checked == 0 {
				fmt.Fprintf(w, "halo3d: lazy mode; sampled verification skipped (all axes have extent 2 — covered by the 8-rank conformance suite)\n")
			} else {
				fmt.Fprintf(w, "halo3d: lazy mode; %d sampled faces around rank 0 verified byte-exact\n", checked)
			}
		}
	}
	avg := stepNs / int64(steps)
	if !quiet {
		fmt.Fprintf(w, "%-16s grid=%d^3  ranks=%d (%v)  faces=6x2  avg step latency = %.1f us (simulated)\n",
			scheme, n, nr, cart.Dims(), float64(avg)/1000)
		if useRMA {
			st := sess.RMAStats()
			fmt.Fprintf(w, "halo3d: one-sided exchange: %d fused pack-puts, %d doorbells, %d retransmits\n",
				st.PackPuts, st.Doorbells, st.Retransmits)
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		if err := sess.Timeline().WriteChrome(f); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "halo3d: wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n", tracePath)
	}
	return avg, nil
}

// verifySample spot-checks a lazy run by materializing only rank 0's
// ghost region and its six neighbors' grids: each received face must
// match the face the neighbor sent (edge bytes shared between faces are
// excluded — see faceCover). Only O(grids-around-rank-0) bytes are
// ever materialized, so the check stays cheap at 1024 ranks. On the
// collective path legs match by per-peer index FIFO, which on extent-2
// axes (both directions reach one peer) pairs the legs differently — such
// axes are skipped; returns how many faces were checked.
func verifySample(cart *dkf.CartComm, faces map[string]*dkf.Layout, grids, ghosts []*dkf.Buffer, useColl bool) (int, error) {
	dims := cart.Dims()
	ghost0 := ghosts[0].Materialize()
	cover := faceCover(faces, len(ghost0))
	axes := []struct {
		axis          int
		minusF, plusF string
	}{{0, "x-", "x+"}, {1, "y-", "y+"}, {2, "z-", "z+"}}
	checked := 0
	for _, ax := range axes {
		mPeer, pPeer := cart.Shift(0, ax.axis, 1)
		var pairs []struct {
			fromRank      int
			sentF, ghostF string
		}
		if useColl {
			if dims[ax.axis] <= 2 {
				continue
			}
			// Coll path: rank 0's minus op receives the minus neighbor's
			// plus face into the plus ghost region (and symmetrically).
			pairs = []struct {
				fromRank      int
				sentF, ghostF string
			}{{mPeer, ax.plusF, ax.plusF}, {pPeer, ax.minusF, ax.minusF}}
		} else {
			// Pt2pt path: tags pair each recv with the opposite face, so
			// extent-2 axes verify too.
			pairs = []struct {
				fromRank      int
				sentF, ghostF string
			}{{mPeer, ax.plusF, ax.minusF}, {pPeer, ax.minusF, ax.plusF}}
		}
		for _, pr := range pairs {
			err := compareFace(faces[pr.sentF], faces[pr.ghostF], grids[pr.fromRank].Materialize(), ghost0, cover)
			if err != nil {
				return checked, fmt.Errorf("halo3d: lazy verification failed: rank 0 ghost face %s vs rank %d's sent face %s: %w", pr.ghostF, pr.fromRank, pr.sentF, err)
			}
			checked++
		}
	}
	return checked, nil
}

// runRecover is the rank-failure recovery demo, built on the coordinated
// checkpoint subsystem (internal/ckpt): every rank registers its grid and
// checkpoints before the exchange loop, then the 2x2x2 halo exchange runs
// under faultSpec until a rank dies and every survivor has observed the
// failure (typed *RankFailedError / ErrCommRevoked via the collective's
// self-healing revocation). The survivors Agree on the outcome, scribble
// their grids (standing in for a timestep torn by the failure), and
// Shrink the world — which automatically rolls every survivor's
// registered state back to the checkpoint. The halo is then re-decomposed
// as a 1D z-chain over the dense survivor communicator and the boundary
// faces re-exchanged with fresh tags; the driver re-verifies every
// exchanged face byte-exactly against the sender's restored grid, checks
// the rollback itself by checksum, and finally adopts the dead rank's
// snapshot onto its buddy. Works in both payload modes.
func runRecover(w io.Writer, scheme string, n int, faultSpec string, lazy bool) error {
	plan, err := dkf.ParseFaultPlan(faultSpec)
	if err != nil {
		return err
	}
	cfg := dkf.SessionConfig{Scheme: dkf.Scheme(scheme), Faults: plan}
	if lazy {
		cfg.Payload = dkf.PayloadLazy
	}
	sess, err := dkf.NewSession(cfg)
	if err != nil {
		return err
	}
	defer sess.Close()
	cart := sess.CartCreate([]int{2, 2, 2}, []bool{true, true, true})
	faces := faceLayouts(n)
	gridBytes := n * n * n * 8
	nr := sess.NumRanks()
	grids := make([]*dkf.Buffer, nr)
	ghosts := make([]*dkf.Buffer, nr)
	rghosts := make([]*dkf.Buffer, nr)
	initSums := make([]uint64, nr)
	for r := 0; r < nr; r++ {
		grids[r] = sess.Alloc(r, "grid", gridBytes)
		ghosts[r] = sess.Alloc(r, "ghost", gridBytes)
		rghosts[r] = sess.Alloc(r, "rghost", gridBytes)
		grids[r].FillStream(uint64(r + 1))
		// Junk so the verification can only pass if recovery wrote it.
		rghosts[r].FillStream(uint64(0xdead + r))
		initSums[r] = grids[r].Checksum()
		sess.CheckpointRegister(r, grids[r])
	}
	axes := []struct {
		axis          int
		minusF, plusF string
	}{{0, "x-", "x+"}, {1, "y-", "y+"}, {2, "z-", "z+"}}

	ft := sess.FTEnabled()
	stepsDone := make([]int, nr)
	stepErrs := make([]error, nr)
	recovered := make([]bool, nr)
	recoverErrs := make([]error, nr)
	err = sess.Run(func(c *dkf.RankCtx) {
		me := c.ID()
		if ft {
			// Coordinated checkpoint of the registered grids before any
			// exchange traffic; Shrink rolls survivors back to this epoch.
			c.Checkpoint()
		}
		// No per-step barrier here: ranks leave the loop at different
		// times once the failure propagates, and a rendezvous with ranks
		// that already moved on to Agree would wedge the survivors.
		const horizonNs = 600_000 // crash + detection + revocation slack
		for stepErrs[me] == nil && c.Now() < horizonNs && stepsDone[me] < 10_000 {
			var ops []dkf.NeighborOp
			for _, ax := range axes {
				mPeer, pPeer := cart.Shift(me, ax.axis, 1)
				ops = append(ops,
					dkf.NeighborOp{Peer: mPeer, SendBuf: grids[me], SendType: faces[ax.minusF],
						RecvBuf: ghosts[me], RecvType: faces[ax.plusF], Count: 1},
					dkf.NeighborOp{Peer: pPeer, SendBuf: grids[me], SendType: faces[ax.plusF],
						RecvBuf: ghosts[me], RecvType: faces[ax.minusF], Count: 1},
				)
			}
			if stepErrs[me] = c.NeighborAlltoallw(ops); stepErrs[me] == nil {
				stepsDone[me]++
				c.Sleep(int64(n*n) * 2)
			}
		}
		if !ft {
			return
		}
		flag := uint64(1)
		if stepErrs[me] != nil {
			flag = 0
		}
		agreed, aerr := c.Agree(c.World(), flag)
		if agreed == 1 && aerr == nil {
			return // everyone finished clean and nobody died
		}
		// The failure tore the in-flight timestep: scribble the grid so the
		// downstream verification can only pass if Shrink's automatic
		// restore actually rolled it back to the checkpoint.
		grids[me].FillStream(uint64(0xbad0 + me))
		sub, serr := c.Shrink(c.World())
		if serr != nil {
			recoverErrs[me] = serr
			return
		}
		// Re-decomposition from the restored checkpoint: the halo is
		// re-laid-out as a 1D z-chain in comm-rank order and the boundary
		// faces re-exchanged with fresh tags (the shrunken epoch keeps
		// collective traffic separate; these point-to-point legs use tags
		// outside the failed step's range).
		cc := c.On(sub)
		cr := cc.Rank()
		var reqs []*dkf.Request
		if cr > 0 {
			left := sub.WorldRank(cr - 1)
			reqs = append(reqs,
				c.Irecv(left, 30, rghosts[me], faces["z-"], 1),
				c.Isend(left, 40, grids[me], faces["z+"], 1),
			)
		}
		if cr < cc.Size()-1 {
			right := sub.WorldRank(cr + 1)
			reqs = append(reqs,
				c.Irecv(right, 40, rghosts[me], faces["z+"], 1),
				c.Isend(right, 30, grids[me], faces["z-"], 1),
			)
		}
		if werr := c.Waitall(reqs); werr != nil {
			recoverErrs[me] = werr
			return
		}
		recovered[me] = true
	})
	if err != nil {
		return err
	}

	crashed := sess.CrashedRanks()
	survivors := sess.Survivors()
	if !ft || len(crashed) == 0 {
		steps := 0
		for _, s := range stepsDone {
			if s > steps {
				steps = s
			}
		}
		fmt.Fprintf(w, "halo3d: no rank failure under plan %q; %d steps completed\n", faultSpec, steps)
		return nil
	}
	steps := 0
	for _, s := range survivors {
		if stepsDone[s] > steps {
			steps = stepsDone[s]
		}
		if stepErrs[s] != nil &&
			!errors.Is(stepErrs[s], dkf.ErrRankFailed) && !errors.Is(stepErrs[s], dkf.ErrCommRevoked) {
			return fmt.Errorf("halo3d: rank %d failed with an untyped error: %w", s, stepErrs[s])
		}
		if recoverErrs[s] != nil {
			return fmt.Errorf("halo3d: rank %d recovery failed: %w", s, recoverErrs[s])
		}
		if !recovered[s] {
			return fmt.Errorf("halo3d: rank %d never completed the recovery exchange", s)
		}
	}
	fmt.Fprintf(w, "halo3d: rank(s) %v crashed at step ~%d; survivors detected the failure and revoked the world\n",
		crashed, steps)
	fmt.Fprintf(w, "halo3d: shrunk world %d -> %d ranks; checkpoint epoch %d restored; halo re-decomposed as a %d-rank z-chain\n",
		nr, len(survivors), sess.CheckpointEpoch(), len(survivors))
	// The scribble must be gone: every survivor's grid is back at the
	// checkpointed content.
	for _, s := range survivors {
		if grids[s].Checksum() != initSums[s] {
			return fmt.Errorf("halo3d: rank %d grid not rolled back to the checkpoint after Shrink", s)
		}
	}
	for i := 0; i+1 < len(survivors); i++ {
		a, b := survivors[i], survivors[i+1]
		if verr := dkf.VerifyBlocks(faces["z-"], 1, grids[a].Materialize(), rghosts[b].Materialize()); verr != nil {
			return fmt.Errorf("halo3d: recovery exchange %d->%d (z-) mismatch: %w", a, b, verr)
		}
		if verr := dkf.VerifyBlocks(faces["z+"], 1, grids[b].Materialize(), rghosts[a].Materialize()); verr != nil {
			return fmt.Errorf("halo3d: recovery exchange %d->%d (z+) mismatch: %w", b, a, verr)
		}
	}
	if lk := sess.LeakedRequests(); lk != 0 {
		return fmt.Errorf("halo3d: %d requests leaked across the recovery", lk)
	}
	fmt.Fprintf(w, "halo3d: recovery exchange byte-exact across %d survivor pairs; no leaked requests\n",
		len(survivors)-1)
	// Buddy adoption: the dead rank's checkpointed grid is still
	// recoverable on its buddy, byte-for-byte what it held at the capture.
	for _, d := range crashed {
		if !sess.CheckpointAvailable(d) {
			return fmt.Errorf("halo3d: dead rank %d's snapshot unavailable despite buddy placement", d)
		}
		buddy := sess.CheckpointBuddy(d)
		adopted := sess.Alloc(buddy, fmt.Sprintf("adopted-%d", d), gridBytes)
		if aerr := sess.CheckpointAdopt(buddy, d, adopted); aerr != nil {
			return fmt.Errorf("halo3d: buddy adoption of rank %d: %w", d, aerr)
		}
		if adopted.Checksum() != initSums[d] {
			return fmt.Errorf("halo3d: adopted grid of rank %d differs from its checkpointed content", d)
		}
		fmt.Fprintf(w, "halo3d: rank %d's checkpointed grid adopted by buddy rank %d, checksum-exact\n", d, buddy)
	}
	return nil
}

// runRecoverRMA is the one-sided variant of the recovery demo: the halo
// exchange runs over fused pack-puts into symmetric windows, the planned
// crash surfaces as typed one-sided failures (reaped in-flight puts,
// failed signal waits, fail-fasts to the declared-dead rank), and Shrink
// re-rendezvouses the symmetric heap onto the survivors. The halo window
// is checkpoint-registered, so reopening it after the shrink rebinds the
// registration to the rebuilt heap and rolls the window contents back to
// the checkpoint epoch — the survivors then re-exchange a 1D z-chain with
// fused pack-puts over the new fabric epoch. The driver verifies the
// window restore and grid rollback by checksum, the recovery chain
// byte-exactly, that no one-sided ops were left pending, and finally
// adopts the dead rank's grid AND window snapshots onto its buddy.
func runRecoverRMA(w io.Writer, scheme string, n int, faultSpec string, lazy bool) error {
	plan, err := dkf.ParseFaultPlan(faultSpec)
	if err != nil {
		return err
	}
	cfg := dkf.SessionConfig{Scheme: dkf.Scheme(scheme), Faults: plan, Backend: dkf.BackendRMA}
	if lazy {
		cfg.Payload = dkf.PayloadLazy
	}
	sess, err := dkf.NewSession(cfg)
	if err != nil {
		return err
	}
	defer sess.Close()
	cart := sess.CartCreate([]int{2, 2, 2}, []bool{true, true, true})
	faces := faceLayouts(n)
	gridBytes := n * n * n * 8
	nr := sess.NumRanks()
	grids := make([]*dkf.Buffer, nr)
	ghosts := make([]*dkf.Buffer, nr)
	rghosts := make([]*dkf.Buffer, nr)
	initSums := make([]uint64, nr)
	winSums := make([]uint64, nr)
	for r := 0; r < nr; r++ {
		grids[r] = sess.Alloc(r, "grid", gridBytes)
		ghosts[r] = sess.Alloc(r, "ghost", gridBytes)
		rghosts[r] = sess.Alloc(r, "rghost", gridBytes)
		grids[r].FillStream(uint64(r + 1))
		rghosts[r].FillStream(uint64(0xdead + r))
		initSums[r] = grids[r].Checksum()
		sess.CheckpointRegister(r, grids[r])
	}
	axes := []struct {
		axis          int
		minusF, plusF string
	}{{0, "x-", "x+"}, {1, "y-", "y+"}, {2, "z-", "z+"}}

	ft := sess.FTEnabled()
	stepsDone := make([]int, nr)
	stepErrs := make([]error, nr)
	recovered := make([]bool, nr)
	recoverErrs := make([]error, nr)
	var half int64
	err = sess.Run(func(c *dkf.RankCtx) {
		me := c.ID()
		// Symmetric window layout as in run(): an inbound slot per ghost
		// face in the first half, staging for outgoing packs in the second.
		inOff := make(map[string]int64, len(faceOrder))
		slotOf := make(map[string]int, len(faceOrder))
		half = 0
		for i, f := range faceOrder {
			inOff[f] = half
			slotOf[f] = i
			half += c.PackSize(faces[f], 1)
		}
		win, werr := c.Window("halo", 2*half)
		if werr != nil {
			recoverErrs[me] = werr
			return
		}
		sig, serr := c.OpenSignal("halo", len(faceOrder))
		if serr != nil {
			recoverErrs[me] = serr
			return
		}
		// Seed the window with recognizable content and checkpoint it
		// together with the grid: the restore check downstream passes only
		// if the rebuilt heap really got this epoch's bytes back.
		win.Buf(me).FillStream(uint64(0x51c0 + me))
		winSums[me] = win.Buf(me).Checksum()
		if ft {
			if rerr := c.CheckpointRegisterWindow(win); rerr != nil {
				recoverErrs[me] = rerr
				return
			}
			c.Checkpoint()
		}
		// No per-step barrier (survivors leave the loop at different
		// times); the cumulative per-face signal counts keep steps paired,
		// and the per-step Quiet keeps the local staging half safe to
		// re-pack.
		const horizonNs = 600_000
		for stepErrs[me] == nil && c.Now() < horizonNs && stepsDone[me] < 10_000 {
			s := stepsDone[me]
			for _, ax := range axes {
				mPeer, pPeer := cart.Shift(me, ax.axis, 1)
				if stepErrs[me] = c.PackPut(win, mPeer, inOff[ax.plusF], grids[me], faces[ax.minusF], 1,
					half+inOff[ax.minusF], sig, slotOf[ax.plusF], 1, true); stepErrs[me] != nil {
					break
				}
				if stepErrs[me] = c.PackPut(win, pPeer, inOff[ax.minusF], grids[me], faces[ax.plusF], 1,
					half+inOff[ax.plusF], sig, slotOf[ax.minusF], 1, true); stepErrs[me] != nil {
					break
				}
			}
			for _, f := range faceOrder {
				if stepErrs[me] != nil {
					break
				}
				if stepErrs[me] = c.WaitSignal(sig, slotOf[f], uint64(s+1)); stepErrs[me] == nil {
					pos := inOff[f]
					c.Unpack(win.Buf(me), &pos, ghosts[me], faces[f], 1)
				}
			}
			if stepErrs[me] == nil {
				stepErrs[me] = c.Quiet()
			}
			if stepErrs[me] == nil {
				stepsDone[me]++
				c.Sleep(int64(n*n) * 2)
			}
		}
		if !ft {
			return
		}
		flag := uint64(1)
		if stepErrs[me] != nil {
			flag = 0
		}
		agreed, aerr := c.Agree(c.World(), flag)
		if agreed == 1 && aerr == nil {
			return // everyone finished clean and nobody died
		}
		// The failure tore the in-flight timestep: scribble the grid so the
		// rollback check can only pass if Shrink really restored it. (The
		// window's torn region dies with the old heap; its restore check is
		// against the rebuilt region after reopen.)
		grids[me].FillStream(uint64(0xbad0 + me))
		sub, serr2 := c.Shrink(c.World())
		if serr2 != nil {
			recoverErrs[me] = serr2
			return
		}
		cc := c.On(sub)
		cr := cc.Rank()
		// Reopen the halo window on the survivor fabric: same name, fresh
		// heap — the checkpoint registration rebinds and restores it.
		rwin, rerr := c.Window("halo", 2*half)
		if rerr != nil {
			recoverErrs[me] = rerr
			return
		}
		if got := rwin.Buf(cr).Checksum(); got != winSums[me] {
			recoverErrs[me] = fmt.Errorf("window not restored after re-rendezvous: checksum %#x, want %#x", got, winSums[me])
			return
		}
		// Recovery exchange: a 1D z-chain in survivor comm-rank order over
		// a fresh window at the new fabric epoch, fused pack-puts both ways.
		zm := c.PackSize(faces["z-"], 1)
		inTot := zm + c.PackSize(faces["z+"], 1)
		cwin, cerr := c.Window("rchain", 2*inTot)
		if cerr != nil {
			recoverErrs[me] = cerr
			return
		}
		csig, cserr := c.OpenSignal("rchain", 2)
		if cserr != nil {
			recoverErrs[me] = cserr
			return
		}
		if cr < cc.Size()-1 {
			if perr := c.PackPut(cwin, cr+1, 0, grids[me], faces["z-"], 1, inTot, csig, 0, 1, true); perr != nil {
				recoverErrs[me] = perr
				return
			}
		}
		if cr > 0 {
			if perr := c.PackPut(cwin, cr-1, zm, grids[me], faces["z+"], 1, inTot+zm, csig, 1, 1, true); perr != nil {
				recoverErrs[me] = perr
				return
			}
		}
		if cr > 0 {
			if werr := c.WaitSignal(csig, 0, 1); werr != nil {
				recoverErrs[me] = werr
				return
			}
			pos := int64(0)
			c.Unpack(cwin.Buf(cr), &pos, rghosts[me], faces["z-"], 1)
		}
		if cr < cc.Size()-1 {
			if werr := c.WaitSignal(csig, 1, 1); werr != nil {
				recoverErrs[me] = werr
				return
			}
			pos := zm
			c.Unpack(cwin.Buf(cr), &pos, rghosts[me], faces["z+"], 1)
		}
		if qerr := c.Quiet(); qerr != nil {
			recoverErrs[me] = qerr
			return
		}
		recovered[me] = true
	})
	if err != nil {
		return err
	}

	crashed := sess.CrashedRanks()
	survivors := sess.Survivors()
	if !ft || len(crashed) == 0 {
		steps := 0
		for _, s := range stepsDone {
			if s > steps {
				steps = s
			}
		}
		fmt.Fprintf(w, "halo3d: no rank failure under plan %q; %d one-sided steps completed\n", faultSpec, steps)
		return nil
	}
	steps := 0
	for _, s := range survivors {
		if stepsDone[s] > steps {
			steps = stepsDone[s]
		}
		if stepErrs[s] != nil &&
			!errors.Is(stepErrs[s], dkf.ErrRankFailed) && !errors.Is(stepErrs[s], dkf.ErrCommRevoked) {
			return fmt.Errorf("halo3d: rank %d failed with an untyped error: %w", s, stepErrs[s])
		}
		if recoverErrs[s] != nil {
			return fmt.Errorf("halo3d: rank %d recovery failed: %w", s, recoverErrs[s])
		}
		if !recovered[s] {
			return fmt.Errorf("halo3d: rank %d never completed the recovery exchange", s)
		}
	}
	fmt.Fprintf(w, "halo3d: rank(s) %v crashed at step ~%d of the one-sided exchange; survivors observed typed failures\n",
		crashed, steps)
	fmt.Fprintf(w, "halo3d: shrunk world %d -> %d ranks; symmetric heap re-rendezvoused at fabric epoch %d\n",
		nr, len(survivors), sess.RMAEpoch())
	fmt.Fprintf(w, "halo3d: window contents restored from checkpoint epoch %d on every survivor\n",
		sess.CheckpointEpoch())
	for _, s := range survivors {
		if grids[s].Checksum() != initSums[s] {
			return fmt.Errorf("halo3d: rank %d grid not rolled back to the checkpoint after Shrink", s)
		}
	}
	for i := 0; i+1 < len(survivors); i++ {
		a, b := survivors[i], survivors[i+1]
		if verr := dkf.VerifyBlocks(faces["z-"], 1, grids[a].Materialize(), rghosts[b].Materialize()); verr != nil {
			return fmt.Errorf("halo3d: recovery pack-put %d->%d (z-) mismatch: %w", a, b, verr)
		}
		if verr := dkf.VerifyBlocks(faces["z+"], 1, grids[b].Materialize(), rghosts[a].Materialize()); verr != nil {
			return fmt.Errorf("halo3d: recovery pack-put %d->%d (z+) mismatch: %w", b, a, verr)
		}
	}
	if po := sess.RMAPendingOps(); po != 0 {
		return fmt.Errorf("halo3d: %d one-sided ops still pending after recovery", po)
	}
	if lk := sess.LeakedRequests(); lk != 0 {
		return fmt.Errorf("halo3d: %d requests leaked across the recovery", lk)
	}
	st := sess.RMAStats()
	fmt.Fprintf(w, "halo3d: recovery chain byte-exact across %d survivor pairs; %d in-flight ops reaped, none pending\n",
		len(survivors)-1, st.Reaped)
	// Buddy adoption covers the window snapshot too: the dead rank's
	// registered state was (grid, window region), in that order.
	for _, d := range crashed {
		if !sess.CheckpointAvailable(d) {
			return fmt.Errorf("halo3d: dead rank %d's snapshot unavailable despite buddy placement", d)
		}
		buddy := sess.CheckpointBuddy(d)
		adoptedGrid := sess.Alloc(buddy, fmt.Sprintf("adopted-%d", d), gridBytes)
		adoptedWin := sess.Alloc(buddy, fmt.Sprintf("adopted-win-%d", d), int(2*half))
		if aerr := sess.CheckpointAdopt(buddy, d, adoptedGrid, adoptedWin); aerr != nil {
			return fmt.Errorf("halo3d: buddy adoption of rank %d: %w", d, aerr)
		}
		if adoptedGrid.Checksum() != initSums[d] {
			return fmt.Errorf("halo3d: adopted grid of rank %d differs from its checkpointed content", d)
		}
		if adoptedWin.Checksum() != winSums[d] {
			return fmt.Errorf("halo3d: adopted window region of rank %d differs from its checkpointed content", d)
		}
		fmt.Fprintf(w, "halo3d: rank %d's checkpointed grid and window adopted by buddy rank %d, checksum-exact\n", d, buddy)
	}
	return nil
}

// compareAll runs the scheme shoot-out and reports speedups vs GPU-Sync.
func compareAll(w io.Writer, n, steps, ranks int, lazy, useColl, useRMA bool) error {
	var base int64
	for _, s := range []string{"GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed-Tuned"} {
		avg, err := run(w, s, n, steps, ranks, lazy, useColl, useRMA, true, "")
		if err != nil {
			return err
		}
		if base == 0 {
			base = avg
		}
		fmt.Fprintf(w, "%-16s avg step = %8.1f us   speedup vs GPU-Sync = %.2fx\n",
			s, float64(avg)/1000, float64(base)/float64(avg))
	}
	return nil
}

func main() {
	n := flag.Int("n", 64, "local grid size per rank (n^3 doubles)")
	steps := flag.Int("steps", 5, "timesteps")
	ranks := flag.Int("ranks", 8, "number of ranks (>= 8, divisible by 4; Lassen nodes are sized to ranks/4)")
	lazy := flag.Bool("lazy", false, "carry payloads as a lazy span algebra instead of real bytes (scales to 1024 ranks; correctness spot-checked around rank 0)")
	scheme := flag.String("scheme", "Proposed-Tuned", "DDT scheme")
	compare := flag.Bool("compare", false, "compare all schemes")
	useColl := flag.Bool("coll", false, "exchange halos with the NeighborAlltoallw collective (fused per-phase launches) instead of raw Isend/Irecv")
	useRMA := flag.Bool("rma", false, "exchange halos with one-sided fused pack-puts into symmetric ghost windows (no rendezvous round-trip)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (single-scheme mode only)")
	faultSpec := flag.String("faults", "", "fault-plan spec for the recovery demo (e.g. \"rank-crash\", \"rank-crash,seed=3\", \"crash=1@20000\"); requires -recover")
	doRecover := flag.Bool("recover", false, "survive a planned rank crash: agree on the failure, shrink the world, re-decompose the halo, and verify byte-exactness")
	flag.Parse()

	if *useRMA && *useColl {
		fmt.Fprintln(os.Stderr, "halo3d: -rma and -coll are mutually exclusive")
		os.Exit(2)
	}
	if *doRecover || *faultSpec != "" {
		if !*doRecover || *faultSpec == "" {
			fmt.Fprintln(os.Stderr, "halo3d: -faults and -recover must be used together")
			os.Exit(2)
		}
		if *ranks != 8 {
			fmt.Fprintln(os.Stderr, "halo3d: -recover supports only the default 8-rank world (not -ranks)")
			os.Exit(2)
		}
		rec := runRecover
		if *useRMA {
			rec = runRecoverRMA
		}
		if err := rec(os.Stdout, *scheme, *n, *faultSpec, *lazy); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *compare {
		if *tracePath != "" {
			fmt.Fprintln(os.Stderr, "halo3d: -trace is not supported with -compare")
			os.Exit(2)
		}
		if err := compareAll(os.Stdout, *n, *steps, *ranks, *lazy, *useColl, *useRMA); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if _, err := run(os.Stdout, *scheme, *n, *steps, *ranks, *lazy, *useColl, *useRMA, false, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
