package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmallSweep drives the full threshold sweep with a small workload
// and golden-checks the output skeleton: preamble, column header, one row
// per threshold, exactly one optimum marker.
func TestRunSmallSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "MILC", 8, 1, "lassen"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "MILC on Lassen:") {
		t.Errorf("preamble = %q", strings.SplitN(out, "\n", 2)[0])
	}
	var header string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "threshold") {
			header = line
			break
		}
	}
	if !strings.Contains(header, "latency_us") || !strings.Contains(header, "verdict") {
		t.Errorf("column header = %q, want threshold/latency_us/verdict", header)
	}
	for _, th := range []string{"16KB", "512KB", "4MB"} {
		if !strings.Contains(out, th+" ") {
			t.Errorf("missing threshold row %q:\n%s", th, out)
		}
	}
	if n := strings.Count(out, "<- optimal"); n != 1 {
		t.Errorf("want exactly one optimal marker, got %d:\n%s", n, out)
	}
}

// TestRunUnknownWorkload: bad input is an error, not a crash.
func TestRunUnknownWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "no-such-workload", 8, 1, "lassen"); err == nil {
		t.Fatal("want error for unknown workload")
	}
}
