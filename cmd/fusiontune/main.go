// Command fusiontune sweeps the fused-kernel flush threshold for a chosen
// workload and system — the tool behind the paper's Fig. 8 tuning
// methodology ("figure out the optimal threshold for a given workload on a
// given system").
//
// Usage:
//
//	fusiontune -workload specfem3D_cm -dim 32 -buffers 16 -system lassen
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/fusion"
	"repro/internal/timeline"
	"repro/internal/workload"
)

func main() {
	wlName := flag.String("workload", "specfem3D_cm", "workload: specfem3D_oc, specfem3D_cm, MILC, NAS_MG")
	dim := flag.Int("dim", 32, "dimension size")
	buffers := flag.Int("buffers", 16, "outstanding buffers per direction")
	system := flag.String("system", "lassen", "system model: lassen or abci")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of every sweep point to this file")
	flag.Parse()

	var coll *timeline.Collector
	if *tracePath != "" {
		coll = timeline.NewCollector()
		bench.SetCollector(coll)
	}
	if err := run(os.Stdout, *wlName, *dim, *buffers, *system); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if coll != nil && !coll.Empty() {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusiontune: -trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := coll.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, "fusiontune: -trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fusiontune: wrote Chrome trace to %s\n", *tracePath)
	}
}

func run(w io.Writer, wlName string, dim, buffers int, system string) error {
	wl, ok := workload.ByName(wlName)
	if !ok {
		return fmt.Errorf("unknown workload %q", wlName)
	}
	spec := cluster.Lassen()
	if system == "abci" {
		spec = cluster.ABCI()
	}

	l := wl.Layout(dim)
	fmt.Fprintf(w, "%s on %s: %d blocks, %d B/message, %d buffers/direction\n",
		wl.Name, spec.Name, l.NumBlocks(), l.SizeBytes, buffers)
	predicted := fusion.PredictThreshold(spec.GPU, fusion.ModelInput{
		AvgRequestBytes: l.SizeBytes,
		AvgSegments:     l.NumBlocks(),
		NetBWBytesPerNs: spec.InterNode.BWBytesPerNs,
	})
	fmt.Fprintf(w, "model-based prediction (paper §VII): %s\n\n", fmtKB(predicted))
	fmt.Fprintf(w, "%-14s %-12s %s\n", "threshold", "latency_us", "verdict")

	var best int64
	var bestTh int64
	results := map[int64]int64{}
	thresholds := []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
	for _, th := range thresholds {
		r := bench.RunBulk(bench.BulkOptions{
			System: spec, Scheme: "Proposed", Workload: wl,
			Dim: dim, Buffers: buffers, FusionThreshold: th,
		})
		if r.VerifyErr != nil {
			return fmt.Errorf("verification failed at threshold %d: %v", th, r.VerifyErr)
		}
		results[th] = r.AvgNs
		if best == 0 || r.AvgNs < best {
			best, bestTh = r.AvgNs, th
		}
	}
	for _, th := range thresholds {
		verdict := ""
		switch {
		case th == bestTh:
			verdict = "<- optimal"
		case results[th] > best*12/10 && th < bestTh:
			verdict = "under-fused"
		case results[th] > best*12/10 && th > bestTh:
			verdict = "over-fused"
		}
		fmt.Fprintf(w, "%-14s %-12.1f %s\n", fmtKB(th), float64(results[th])/1000, verdict)
	}
	return nil
}

func fmtKB(b int64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%dKB", b>>10)
}
