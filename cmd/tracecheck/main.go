// Command tracecheck validates a Chrome trace-event JSON file as emitted
// by ddtbench/halo3d/fusiontune -trace: it must parse, carry at least one
// duration event, and every event must satisfy the trace-event contract
// (known phase, non-negative timestamps and durations, named). Used by CI
// as a smoke check; exits non-zero with a diagnostic on the first
// violation.
//
// Usage:
//
//	tracecheck [-require-layer name[,name...]] trace.json
//
// -require-layer additionally demands at least one span event from each
// named timeline layer (the event's "cat" field): CI uses it to prove
// the rma layer really exports (e.g. -require-layer rma,gpu).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func check(path string, requireLayers []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("%s: no traceEvents", path)
	}
	var spans, metas int
	layers := make(map[string]int)
	for i, e := range tf.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		switch e.Ph {
		case "X":
			spans++
			layers[e.Cat]++
			if e.Ts < 0 || e.Dur < 0 {
				return fmt.Errorf("%s: event %d (%s): negative ts/dur", path, i, e.Name)
			}
		case "i":
			spans++
			layers[e.Cat]++
			if e.Ts < 0 {
				return fmt.Errorf("%s: event %d (%s): negative ts", path, i, e.Name)
			}
		case "M":
			metas++
		default:
			return fmt.Errorf("%s: event %d (%s): unknown phase %q", path, i, e.Name, e.Ph)
		}
	}
	if spans == 0 {
		return fmt.Errorf("%s: only metadata events, no spans", path)
	}
	for _, want := range requireLayers {
		if layers[want] == 0 {
			have := make([]string, 0, len(layers))
			for l := range layers {
				if l != "" {
					have = append(have, l)
				}
			}
			return fmt.Errorf("%s: no events from required layer %q (have: %s)",
				path, want, strings.Join(have, ", "))
		}
	}
	fmt.Printf("%s: OK (%d span/instant events, %d metadata events)\n", path, spans, metas)
	return nil
}

func main() {
	requireLayer := flag.String("require-layer", "", "comma-separated timeline layers that must each contribute at least one span")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require-layer name[,name...]] <trace.json>")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var layers []string
	if *requireLayer != "" {
		layers = strings.Split(*requireLayer, ",")
	}
	if err := check(flag.Arg(0), layers); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}
