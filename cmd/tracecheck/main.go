// Command tracecheck validates a Chrome trace-event JSON file as emitted
// by ddtbench/halo3d/fusiontune -trace: it must parse, carry at least one
// duration event, and every event must satisfy the trace-event contract
// (known phase, non-negative timestamps and durations, named). Used by CI
// as a smoke check; exits non-zero with a diagnostic on the first
// violation.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("%s: no traceEvents", path)
	}
	var spans, metas int
	for i, e := range tf.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		switch e.Ph {
		case "X":
			spans++
			if e.Ts < 0 || e.Dur < 0 {
				return fmt.Errorf("%s: event %d (%s): negative ts/dur", path, i, e.Name)
			}
		case "i":
			spans++
			if e.Ts < 0 {
				return fmt.Errorf("%s: event %d (%s): negative ts", path, i, e.Name)
			}
		case "M":
			metas++
		default:
			return fmt.Errorf("%s: event %d (%s): unknown phase %q", path, i, e.Name, e.Ph)
		}
	}
	if spans == 0 {
		return fmt.Errorf("%s: only metadata events, no spans", path)
	}
	fmt.Printf("%s: OK (%d span/instant events, %d metadata events)\n", path, spans, metas)
	return nil
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	if err := check(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}
