// Command ddtbench regenerates the paper's evaluation tables and figures
// on the simulated clusters, plus the repository's additional experiments.
//
// Usage:
//
//	ddtbench -list
//	ddtbench -fig 9
//	ddtbench -fig all
//	ddtbench -ablations
//	ddtbench -approaches          # Section III Algorithms 1-3
//	ddtbench -extended            # all eight ddtbench workloads
//	ddtbench -plans               # pack-plan speedups + plan-cache counters
//	ddtbench -scaling             # node-count ring scaling
//	ddtbench -fig rma             # put-based vs two-sided collectives
//	ddtbench -fig 12 -format csv  # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/timeline"
	"repro/internal/workload"
)

var format = flag.String("format", "text", "output format: text or csv")

func emitTo(w io.Writer, format string, tabs []*bench.Table) {
	for _, t := range tabs {
		if format == "csv" {
			fmt.Fprintf(w, "# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Fprintln(w, t.String())
		}
	}
}

func emit(tabs []*bench.Table) { emitTo(os.Stdout, *format, tabs) }

func main() {
	fig := flag.String("fig", "", "figure id to regenerate (1, 8, 9, 10, 11, 12, 13, 14, coll, scale, chaos-scale, rma, or 'all')")
	list := flag.Bool("list", false, "list reproducible experiments")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation experiments")
	approaches := flag.Bool("approaches", false, "compare the Section III approaches (Algorithms 1-3)")
	extended := flag.Bool("extended", false, "sweep all eight ddtbench workloads")
	scaling := flag.Bool("scaling", false, "ring-exchange node scaling")
	table1 := flag.Bool("table1", false, "quantified Table I scheme comparison")
	plans := flag.Bool("plans", false, "compiled pack-plan speedups and plan-cache counters")
	system := flag.String("system", "lassen", "system for -approaches/-extended/-scaling: lassen or abci")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of every measurement to this file (load in Perfetto / chrome://tracing)")
	faultSpec := flag.String("faults", "", "run every measurement under deterministic fault injection: a preset name (mixed, drop-heavy, corrupt-heavy, flappy-link, kernel-failure), optionally with overrides, or a key=value spec (e.g. 'mixed,seed=7' or 'drop=0.05,corrupt=0.02')")
	flag.Parse()

	spec := cluster.Lassen()
	if *system == "abci" {
		spec = cluster.ABCI()
	}

	if *faultSpec != "" {
		plan, err := fault.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddtbench: -faults:", err)
			os.Exit(2)
		}
		bench.SetFaultPlan(plan)
		fmt.Fprintf(os.Stderr, "ddtbench: fault injection active (%s); recovery cost appears in the Retrans column\n", *faultSpec)
	}

	var coll *timeline.Collector
	if *tracePath != "" {
		coll = timeline.NewCollector()
		bench.SetCollector(coll)
		defer writeTrace(coll, *tracePath)
	}

	switch {
	case *list:
		fmt.Println("reproducible figures:")
		for _, f := range bench.Figures() {
			fmt.Printf("  -fig %s\n", f)
		}
		fmt.Println("plus: -ablations, -approaches, -extended, -scaling, -table1, -plans")
	case *ablations:
		emit(bench.Ablations())
	case *approaches:
		emit([]*bench.Table{bench.Approaches(spec)})
	case *extended:
		emit([]*bench.Table{bench.ExtendedWorkloads(spec)})
	case *scaling:
		emit([]*bench.Table{bench.Scaling(spec, workload.MILC(), 16)})
	case *table1:
		emit([]*bench.Table{bench.TableOne()})
	case *plans:
		emit(bench.Plans(spec))
	case *fig == "all":
		for _, f := range bench.Figures() {
			if err := run(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case *fig != "":
		if err := run(*fig); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeTrace dumps the collected timelines as Chrome trace-event JSON.
func writeTrace(coll *timeline.Collector, path string) {
	if coll.Empty() {
		fmt.Fprintln(os.Stderr, "ddtbench: -trace: no measurements ran, nothing to write")
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddtbench: -trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := coll.WriteChrome(f); err != nil {
		fmt.Fprintln(os.Stderr, "ddtbench: -trace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ddtbench: wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n", path)
}

func run(fig string) error { return runTo(os.Stdout, *format, fig) }

func runTo(w io.Writer, format, fig string) error {
	tabs, err := bench.Run(fig)
	if err != nil {
		return err
	}
	emitTo(w, format, tabs)
	return nil
}
