package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFig1CSV golden-checks the CSV header row of the cheapest figure:
// the format is consumed by plotting scripts, so a header drift is a
// breaking change, not cosmetics.
func TestRunFig1CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, "csv", "1"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if len(lines) < 3 {
		t.Fatalf("want at least title+header+rows, got %q", buf.String())
	}
	if want := "# Fig 1: packing kernel vs launch overhead across GPU generations (us)"; lines[0] != want {
		t.Errorf("title row = %q, want %q", lines[0], want)
	}
	if want := "gpu,workload,kernel_us,launch_us,launch_share"; lines[1] != want {
		t.Errorf("header row = %q, want %q", lines[1], want)
	}
	if !strings.Contains(buf.String(), "Tesla-V100-NVLink") {
		t.Errorf("output missing the V100 rows:\n%s", buf.String())
	}
}

// TestRunFig1Text checks the aligned-text renderer emits the same header.
func TestRunFig1Text(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, "text", "1"); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 3)
	if len(head) < 2 || !strings.HasPrefix(head[1], "gpu") || !strings.Contains(head[1], "launch_share") {
		t.Errorf("text header row = %q", head[min(1, len(head)-1)])
	}
}

// TestRunUnknownFigure: the error path must not emit partial output.
func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := runTo(&buf, "text", "99"); err == nil {
		t.Fatal("want error for unknown figure")
	}
	if buf.Len() != 0 {
		t.Errorf("unknown figure wrote output: %q", buf.String())
	}
}
