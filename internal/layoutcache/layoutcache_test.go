package layoutcache

import (
	"testing"
	"testing/quick"

	"repro/internal/datatype"
)

func vecLayout() *datatype.Layout {
	return datatype.Commit(datatype.Vector(4, 2, 5, datatype.Float64))
}

func TestMissThenHit(t *testing.T) {
	c := New(8)
	l := vecLayout()
	e1, hit := c.Get(l, 3)
	if hit {
		t.Fatal("first access must miss")
	}
	e2, hit := c.Get(l, 3)
	if !hit {
		t.Fatal("second access must hit")
	}
	if e1 != e2 {
		t.Fatal("hit must return the same entry")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats: %d hits %d misses", c.Hits, c.Misses)
	}
}

func TestDistinctCountsAreDistinctEntries(t *testing.T) {
	c := New(8)
	l := vecLayout()
	a, _ := c.Get(l, 1)
	b, _ := c.Get(l, 2)
	if a == b {
		t.Fatal("count must be part of the key")
	}
	if b.Bytes != 2*a.Bytes {
		t.Fatalf("count-2 bytes = %d, want %d", b.Bytes, 2*a.Bytes)
	}
	if b.Extent != 2*a.Extent {
		t.Fatalf("count-2 extent = %d, want %d", b.Extent, 2*a.Extent)
	}
}

func TestEntryAggregates(t *testing.T) {
	c := New(0)
	l := vecLayout()
	e, _ := c.Get(l, 1)
	if e.Bytes != l.SizeBytes || e.Segments != l.NumBlocks() || e.MaxBlock != l.MaxBlockBytes {
		t.Fatalf("entry %+v does not match layout %+v", e, l)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	// Distinct canonical forms: different blocklens.
	l1 := datatype.Commit(datatype.Vector(4, 1, 5, datatype.Float64))
	l2 := datatype.Commit(datatype.Vector(4, 2, 5, datatype.Float64))
	l3 := datatype.Commit(datatype.Vector(4, 3, 5, datatype.Float64))
	c.Get(l1, 1)
	c.Get(l2, 1)
	c.Get(l1, 1) // touch l1 so l2 is the LRU victim
	c.Get(l3, 1) // evicts l2
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	if _, hit := c.Get(l1, 1); !hit {
		t.Fatal("l1 should have survived")
	}
	if _, hit := c.Get(l2, 1); hit {
		t.Fatal("l2 should have been evicted")
	}
}

func TestUnboundedCacheNeverEvicts(t *testing.T) {
	c := New(0)
	for i := 0; i < 100; i++ {
		// Distinct counts give distinct keys even though the layouts are
		// all canonically equal.
		c.Get(vecLayout(), i+1)
	}
	if c.Evictions != 0 || c.Len() != 100 {
		t.Fatalf("evictions=%d len=%d", c.Evictions, c.Len())
	}
}

// Equivalent spellings — the same memory access pattern committed through
// different constructors — share one cache entry: the second commit's first
// Get is already a hit and compiles nothing.
func TestEquivalentSpellingsShareEntry(t *testing.T) {
	c := New(8)
	vec := datatype.Commit(datatype.Vector(4, 2, 8, datatype.Byte))
	hidx := datatype.Commit(datatype.Hindexed([]int{2, 2, 2, 2}, []int64{0, 8, 16, 24}, datatype.Byte))
	if vec.Canonical() != hidx.Canonical() {
		t.Fatalf("canonical mismatch:\n %s\n %s", vec.Canonical(), hidx.Canonical())
	}
	e1, hit := c.Get(vec, 3)
	if hit {
		t.Fatal("first access must miss")
	}
	compiledAfterFirst := c.Stats().TotalCompiled()
	e2, hit := c.Get(hidx, 3)
	if !hit {
		t.Fatal("equivalent spelling must hit the shared entry")
	}
	if e1 != e2 {
		t.Fatal("equivalent spellings must share one entry")
	}
	if got := c.Stats().TotalCompiled(); got != compiledAfterFirst {
		t.Fatalf("recompiled: %d plans after hit, want %d", got, compiledAfterFirst)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

// DisablePlans leaves Entry.Plan nil and compiles nothing — the control
// arm of the plans-on/plans-off differential oracle.
func TestDisablePlans(t *testing.T) {
	c := New(8)
	c.DisablePlans = true
	e, _ := c.Get(vecLayout(), 2)
	if e.Plan != nil {
		t.Fatal("plan compiled with DisablePlans set")
	}
	if e.Canon == nil {
		t.Fatal("canonical form should still be computed")
	}
	if c.Stats().TotalCompiled() != 0 {
		t.Fatal("compile counters must stay zero")
	}
}

// A compiled plan's Pack agrees byte-for-byte with the legacy block-list
// gather over the entry's blocks.
func TestEntryPlanMatchesBlocks(t *testing.T) {
	c := New(8)
	l := datatype.Commit(datatype.Vector(5, 3, 7, datatype.Int32))
	e, _ := c.Get(l, 2)
	if e.Plan == nil {
		t.Fatal("plan not compiled")
	}
	src := make([]byte, e.Extent)
	for i := range src {
		src[i] = byte(i * 31)
	}
	want := make([]byte, e.Bytes)
	var w int64
	for _, b := range e.Blocks {
		copy(want[w:w+b.Len], src[b.Offset:b.Offset+b.Len])
		w += b.Len
	}
	got := make([]byte, e.Bytes)
	if n := e.Plan.Pack(src, got); n != e.Bytes {
		t.Fatalf("plan packed %d bytes, want %d", n, e.Bytes)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d: plan %d, legacy %d", i, got[i], want[i])
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := New(8)
	l := vecLayout()
	c.Get(l, 1)
	c.Invalidate(l, 1)
	if _, hit := c.Get(l, 1); hit {
		t.Fatal("invalidated entry must miss")
	}
	c.Invalidate(l, 99) // absent key: no-op
}

func TestHitRate(t *testing.T) {
	c := New(8)
	if c.HitRate() != 0 {
		t.Fatal("empty cache hit rate should be 0")
	}
	l := vecLayout()
	c.Get(l, 1)
	c.Get(l, 1)
	c.Get(l, 1)
	c.Get(l, 1)
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %f, want 0.75", got)
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultCostModel
	if m.Lookup(true, 10_000) != m.HitNs {
		t.Fatal("hit cost must not scale with segments")
	}
	small := m.Lookup(false, 10)
	big := m.Lookup(false, 10_000)
	if big <= small {
		t.Fatal("miss cost must scale with segments")
	}
}

// Property: a Get with the same (layout, count) is always a hit after the
// first access, and entry aggregates equal a direct recomputation.
func TestPropertyGetIdempotent(t *testing.T) {
	f := func(countRaw uint8, blocklenRaw, strideExtra uint8) bool {
		count := int(countRaw%8) + 1
		bl := int(blocklenRaw%4) + 1
		l := datatype.Commit(datatype.Vector(3, bl, bl+int(strideExtra%4)+1, datatype.Int32))
		c := New(4)
		e, hit := c.Get(l, count)
		if hit {
			return false
		}
		e2, hit2 := c.Get(l, count)
		if !hit2 || e2 != e {
			return false
		}
		blocks := l.Repeat(count)
		var bytes int64
		for _, b := range blocks {
			bytes += b.Len
		}
		return e.Bytes == bytes && e.Segments == len(blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
