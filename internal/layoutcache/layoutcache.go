// Package layoutcache caches flattened datatype layouts, following the
// datatype-layout caching scheme of Chu et al. (HiPC 2019) that the paper's
// request objects reference: the first send with a (datatype, count) pair
// pays the flattening cost; subsequent sends reuse the cached block list.
package layoutcache

import (
	"container/list"

	"repro/internal/datatype"
)

// Key identifies a cached entry: a committed datatype UID plus the element
// count of the communication call.
type Key struct {
	UID   int64
	Count int
}

// Entry is an immutable cached flattened layout for (datatype, count).
type Entry struct {
	Key      Key
	Blocks   []datatype.Block
	Bytes    int64 // payload per message
	Segments int   // contiguous segments per message
	MaxBlock int64 // largest contiguous segment
	Extent   int64 // memory span of the full message
}

// CostModel prices cache interactions in virtual nanoseconds so the MPI
// runtime can charge the calling process realistically.
type CostModel struct {
	// HitNs is the lookup cost on a hit.
	HitNs int64
	// MissBaseNs plus MissPerBlockNs*segments is the flattening cost on
	// a miss.
	MissBaseNs     int64
	MissPerBlockNs float64
}

// DefaultCostModel mirrors the ~2 µs/message scheduling overhead ceiling
// reported in the paper: hits are cheap, misses scale with layout size.
var DefaultCostModel = CostModel{HitNs: 120, MissBaseNs: 800, MissPerBlockNs: 6}

// Lookup returns the cost of one access given hit/miss and segment count.
func (m CostModel) Lookup(hit bool, segments int) int64 {
	if hit {
		return m.HitNs
	}
	return m.MissBaseNs + int64(m.MissPerBlockNs*float64(segments))
}

// Cache is an LRU layout cache. It is not safe for concurrent use; in the
// simulation each rank owns one cache, matching the per-process caches of
// the real runtime.
type Cache struct {
	capacity int
	items    map[Key]*list.Element
	lru      *list.List // front = most recent

	// Stats
	Hits      int64
	Misses    int64
	Evictions int64
}

// New creates a cache holding at most capacity entries; capacity <= 0 means
// unbounded.
func New(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		items:    make(map[Key]*list.Element),
		lru:      list.New(),
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int { return c.lru.Len() }

// Get returns the flattened layout for count elements of l, computing and
// caching it on first use. The boolean reports whether this was a hit.
func (c *Cache) Get(l *datatype.Layout, count int) (*Entry, bool) {
	k := Key{UID: l.UID, Count: count}
	if el, ok := c.items[k]; ok {
		c.Hits++
		c.lru.MoveToFront(el)
		return el.Value.(*Entry), true
	}
	c.Misses++
	blocks := l.Repeat(count)
	e := &Entry{
		Key:      k,
		Blocks:   blocks,
		Segments: len(blocks),
		Extent:   l.ExtentBytes * int64(count),
	}
	for _, b := range blocks {
		e.Bytes += b.Len
		if b.Len > e.MaxBlock {
			e.MaxBlock = b.Len
		}
	}
	c.items[k] = c.lru.PushFront(e)
	if c.capacity > 0 && c.lru.Len() > c.capacity {
		victim := c.lru.Back()
		c.lru.Remove(victim)
		delete(c.items, victim.Value.(*Entry).Key)
		c.Evictions++
	}
	return e, false
}

// Invalidate drops the entry for (l, count) if present (MPI_Type_free).
func (c *Cache) Invalidate(l *datatype.Layout, count int) {
	k := Key{UID: l.UID, Count: count}
	if el, ok := c.items[k]; ok {
		c.lru.Remove(el)
		delete(c.items, k)
	}
}

// HitRate returns hits/(hits+misses), or 0 for an unused cache.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
