// Package layoutcache caches flattened datatype layouts, following the
// datatype-layout caching scheme of Chu et al. (HiPC 2019) that the paper's
// request objects reference, re-keyed on *canonical identity* after TEMPI:
// the first send with a (canonical form, count) pair pays the flattening
// and plan-compilation cost; subsequent sends — including sends using a
// distinct-but-equivalent spelling of the datatype — reuse the cached block
// list and compiled pack plan.
package layoutcache

import (
	"container/list"

	"repro/internal/datatype"
)

// Key identifies a cached entry: the canonical signature of the committed
// datatype plus the element count of the communication call. Two layouts
// committed from equivalent spellings share a signature and therefore a
// cache entry.
type Key struct {
	Sig   string
	Count int
}

// Entry is an immutable cached flattened layout for (canonical form, count).
type Entry struct {
	Key      Key
	Blocks   []datatype.Block
	Bytes    int64 // payload per message
	Segments int   // contiguous segments per message
	MaxBlock int64 // largest contiguous segment
	Extent   int64 // memory span of the full message

	// Canon is the canonical stride-run form of the *repeated* block list
	// (count elements at extent stride), and Plan the pack routine
	// compiled from it. Plan is nil when the owning cache disables plans.
	Canon *datatype.Canonical
	Plan  *datatype.Plan
}

// CostModel prices cache interactions in virtual nanoseconds so the MPI
// runtime can charge the calling process realistically.
type CostModel struct {
	// HitNs is the lookup cost on a hit.
	HitNs int64
	// MissBaseNs plus MissPerBlockNs*segments is the flattening cost on
	// a miss.
	MissBaseNs     int64
	MissPerBlockNs float64
}

// DefaultCostModel mirrors the ~2 µs/message scheduling overhead ceiling
// reported in the paper: hits are cheap, misses scale with layout size.
var DefaultCostModel = CostModel{HitNs: 120, MissBaseNs: 800, MissPerBlockNs: 6}

// Lookup returns the cost of one access given hit/miss and segment count.
func (m CostModel) Lookup(hit bool, segments int) int64 {
	if hit {
		return m.HitNs
	}
	return m.MissBaseNs + int64(m.MissPerBlockNs*float64(segments))
}

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Compiled counts plans compiled since creation, by plan kind.
	Compiled [datatype.NumPlanKinds]int64
}

// Add accumulates o into s (for aggregating per-rank caches).
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	for i := range s.Compiled {
		s.Compiled[i] += o.Compiled[i]
	}
}

// TotalCompiled sums plan compilations across kinds.
func (s Stats) TotalCompiled() int64 {
	var n int64
	for _, c := range s.Compiled {
		n += c
	}
	return n
}

// Cache is an LRU layout cache. It is not safe for concurrent use; in the
// simulation each rank owns one cache, matching the per-process caches of
// the real runtime.
type Cache struct {
	capacity int
	items    map[Key]*list.Element
	lru      *list.List // front = most recent

	// DisablePlans skips plan compilation, forcing consumers onto the
	// legacy block-list path (the differential-oracle control arm).
	DisablePlans bool

	// Stats
	Hits      int64
	Misses    int64
	Evictions int64
	Compiled  [datatype.NumPlanKinds]int64
}

// New creates a cache holding at most capacity entries; capacity <= 0 means
// unbounded.
func New(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		items:    make(map[Key]*list.Element),
		lru:      list.New(),
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int { return c.lru.Len() }

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.Hits, Misses: c.Misses, Evictions: c.Evictions, Compiled: c.Compiled}
}

// Get returns the flattened layout for count elements of l, computing and
// caching it on first use. The boolean reports whether this was a hit.
// The key is l's canonical signature, so equivalent spellings hit the same
// entry and the plan is compiled once per family.
func (c *Cache) Get(l *datatype.Layout, count int) (*Entry, bool) {
	k := Key{Sig: l.Canonical(), Count: count}
	if el, ok := c.items[k]; ok {
		c.Hits++
		c.lru.MoveToFront(el)
		return el.Value.(*Entry), true
	}
	c.Misses++
	blocks := l.Repeat(count)
	e := &Entry{
		Key:      k,
		Blocks:   blocks,
		Segments: len(blocks),
		Extent:   l.ExtentBytes * int64(count),
	}
	for _, b := range blocks {
		e.Bytes += b.Len
		if b.Len > e.MaxBlock {
			e.MaxBlock = b.Len
		}
	}
	e.Canon = datatype.Canonicalize(blocks, e.Extent)
	if !c.DisablePlans {
		e.Plan = datatype.CompilePlan(e.Canon)
		c.Compiled[int(e.Plan.Kind)]++
	}
	c.items[k] = c.lru.PushFront(e)
	if c.capacity > 0 && c.lru.Len() > c.capacity {
		victim := c.lru.Back()
		c.lru.Remove(victim)
		delete(c.items, victim.Value.(*Entry).Key)
		c.Evictions++
	}
	return e, false
}

// Invalidate drops the entry for (l, count) if present (MPI_Type_free).
func (c *Cache) Invalidate(l *datatype.Layout, count int) {
	k := Key{Sig: l.Canonical(), Count: count}
	if el, ok := c.items[k]; ok {
		c.lru.Remove(el)
		delete(c.items, k)
	}
}

// HitRate returns hits/(hits+misses), or 0 for an unused cache.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
