package workload

import "repro/internal/datatype"

// Extended ddtbench workloads beyond the four the paper's figures use.
// They widen coverage of the datatype engine (struct-of-subarray,
// indexed-block, fat-block vectors, transpose shapes) and give the fusion
// framework more layout diversity to chew on.

// WRF is the weather-model x-direction halo: a struct of four 3D subarray
// fields with different vertical extents, as in ddtbench's WRF_x_vec.
func WRF() Workload {
	return Workload{
		Name: "WRF",
		Kind: Dense,
		Dims: []int{8, 12, 16, 24, 32, 48},
		Build: func(dim int) datatype.Type {
			// Four fields over (z, y, x) grids; exchange one x-plane.
			field := func(depth int) datatype.Type {
				sizes := []int{depth, dim, dim}
				sub := []int{depth, dim, 2} // two x-columns
				return datatype.Subarray(sizes, sub, []int{0, 0, 0}, datatype.Float32)
			}
			f1 := field(dim)     // full-depth field
			f2 := field(dim)     // second prognostic variable
			f3 := field(dim / 2) // soil levels
			f4 := field(1)       // surface field
			d1 := int64(0)
			d2 := d1 + f1.Extent() + 32
			d3 := d2 + f2.Extent() + 32
			d4 := d3 + f3.Extent() + 32
			return datatype.Struct(
				[]int{1, 1, 1, 1},
				[]int64{d1, d2, d3, d4},
				[]datatype.Type{f1, f2, f3, f4},
			)
		},
	}
}

// LAMMPSFull is the molecular-dynamics exchange of ddtbench's LAMMPS_full:
// an indexed-block type gathering whole atoms (8 doubles: position,
// velocity, charge, type) scattered through the atom array.
func LAMMPSFull() Workload {
	return Workload{
		Name: "LAMMPS_full",
		Kind: Dense,
		Dims: []int{16, 32, 64, 128, 256, 512},
		Build: func(dim int) datatype.Type {
			atom := datatype.Contiguous(8, datatype.Float64) // 64 B
			n := dim * 4                                     // atoms leaving the domain
			g := lcg(uint64(dim) * 2027)
			displs := make([]int, n)
			pos := 0
			for i := 0; i < n; i++ {
				displs[i] = pos
				pos += 1 + g.next(4) // skip 0-3 atoms between picks
			}
			return datatype.IndexedBlock(1, displs, atom)
		},
	}
}

// NASLU is the NAS LU pencil exchange: each grid cell carries five flow
// variables, so faces are vectors with five-double blocks.
func NASLU() Workload {
	return Workload{
		Name: "NAS_LU",
		Kind: Dense,
		Dims: []int{16, 32, 64, 96, 128, 192},
		Build: func(dim int) datatype.Type {
			cell := datatype.Contiguous(5, datatype.Float64) // 40 B
			return datatype.Vector(dim, 1, dim, cell)
		},
	}
}

// FFT2D is the transpose step of a distributed 2D FFT: each rank sends a
// block-column of its row-slab, a vector of dim blocks of (dim/ranks)
// complex values.
func FFT2D() Workload {
	return Workload{
		Name: "FFT2D",
		Kind: Dense,
		Dims: []int{16, 32, 64, 128, 256, 384},
		Build: func(dim int) datatype.Type {
			chunk := dim / 8
			if chunk < 1 {
				chunk = 1
			}
			return datatype.Vector(dim, chunk, dim, datatype.Complex128)
		},
	}
}

// Extended returns every implemented workload: the paper's four plus the
// additional ddtbench shapes.
func Extended() []Workload {
	return append(All(), WRF(), LAMMPSFull(), NASLU(), FFT2D())
}
