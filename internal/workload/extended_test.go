package workload

import (
	"testing"
	"testing/quick"
)

func TestExtendedListsEight(t *testing.T) {
	ext := Extended()
	if len(ext) != 8 {
		t.Fatalf("extended = %d workloads, want 8", len(ext))
	}
	seen := map[string]bool{}
	for _, w := range ext {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestWRFIsStructOfSubarrays(t *testing.T) {
	l := WRF().Layout(16)
	if l.SizeBytes == 0 || l.NumBlocks() < 4 {
		t.Fatalf("WRF layout degenerate: %+v", l)
	}
	// Four fields, the surface one much smaller than the full-depth ones.
	full := 16 * 16 * 2 * 4 // depth*y*2 columns*4B
	if l.SizeBytes != int64(2*full+full/2+full/16) {
		t.Fatalf("WRF payload = %d", l.SizeBytes)
	}
}

func TestLAMMPSAtomsAre64Bytes(t *testing.T) {
	l := LAMMPSFull().Layout(32)
	// Adjacent picked atoms coalesce, so blocks are multiples of 64B.
	for _, b := range l.Blocks {
		if b.Len%64 != 0 {
			t.Fatalf("block %+v not atom-aligned", b)
		}
	}
	if l.SizeBytes != int64(32*4*64) {
		t.Fatalf("payload = %d, want %d", l.SizeBytes, 32*4*64)
	}
}

func TestNASLUFiveDoubleBlocks(t *testing.T) {
	l := NASLU().Layout(64)
	if l.NumBlocks() != 64 || l.MaxBlockBytes != 40 {
		t.Fatalf("LU layout: blocks=%d max=%d", l.NumBlocks(), l.MaxBlockBytes)
	}
}

func TestFFT2DComplexChunks(t *testing.T) {
	l := FFT2D().Layout(64)
	if l.NumBlocks() != 64 {
		t.Fatalf("blocks = %d", l.NumBlocks())
	}
	if l.MaxBlockBytes != 8*16 { // dim/8 complex128s
		t.Fatalf("chunk = %d", l.MaxBlockBytes)
	}
}

func TestExtendedPackUnpackRoundTrip(t *testing.T) {
	for _, w := range Extended() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			l := w.Layout(w.Dims[1])
			src := make([]byte, l.ExtentBytes)
			FillPattern(src, 11)
			packed := make([]byte, l.SizeBytes)
			dst := make([]byte, l.ExtentBytes)
			l.Pack(src, packed)
			l.Unpack(packed, dst)
			if err := VerifyBlocks(l, 1, src, dst); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: every extended workload at every swept dim is well-formed and
// grows monotonically in payload.
func TestPropertyExtendedWellFormed(t *testing.T) {
	f := func(wIdx uint8) bool {
		ext := Extended()
		w := ext[int(wIdx)%len(ext)]
		prev := int64(0)
		for _, d := range w.Dims {
			l := w.Layout(d)
			if l.SizeBytes <= prev || l.ExtentBytes < l.SizeBytes {
				return false
			}
			for _, b := range l.Blocks {
				if b.Offset < 0 || b.Offset+b.Len > l.ExtentBytes {
					return false
				}
			}
			prev = l.SizeBytes
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Fatal(err)
	}
}
