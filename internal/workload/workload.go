// Package workload provides the application-kernel datatype layouts the
// paper evaluates (Section V-A), modeled on ddtbench and the LLNL Comb 3D
// domain-decomposition kernel:
//
//	specfem3D_oc — MPI indexed, sparse: thousands of single-element
//	               blocks (Geophysics, SPECFEM3D ocean/crust boundary)
//	specfem3D_cm — struct-on-indexed, sparse (crust-mantle boundary:
//	               displacement/velocity/acceleration fields)
//	MILC         — nested vector over su3 matrices, dense-ish small
//	               blocks (Lattice QCD, zdown face)
//	NAS_MG       — vector with fat blocks (Fluid dynamics, 3D grid face)
//
// Each workload maps a "dimension size" (the x-axis of the paper's figures)
// to a committed datatype, so benchmarks sweep exactly like the paper does.
package workload

import (
	"fmt"

	"repro/internal/datatype"
)

// Kind classifies a layout the way the paper's text does.
type Kind string

const (
	// Sparse layouts have thousands of tiny blocks.
	Sparse Kind = "sparse"
	// Dense layouts have fewer, fatter blocks.
	Dense Kind = "dense"
)

// Workload describes one application kernel's datatype family.
type Workload struct {
	// Name matches the paper's legends (specfem3D_oc, specfem3D_cm,
	// MILC, NAS_MG).
	Name string
	// Kind is the paper's sparse/dense classification.
	Kind Kind
	// Build returns the (uncommitted) datatype for a dimension size.
	Build func(dim int) datatype.Type
	// Dims is the representative sweep used in the figures.
	Dims []int
}

// Layout commits the datatype for dim.
func (w Workload) Layout(dim int) *datatype.Layout {
	return datatype.Commit(w.Build(dim))
}

// Describe summarizes the layout for a dimension (for experiment tables).
func (w Workload) Describe(dim int) string {
	l := w.Layout(dim)
	return fmt.Sprintf("%s dim=%d: %d blocks, %dB payload, %dB extent",
		w.Name, dim, l.NumBlocks(), l.SizeBytes, l.ExtentBytes)
}

// lcg is a tiny deterministic generator so layouts are stable across runs
// without importing math/rand into layout construction.
type lcg uint64

func (g *lcg) next(n int) int {
	*g = *g*6364136223846793005 + 1442695040888963407
	return int((uint64(*g) >> 33) % uint64(n))
}

// Specfem3DOC is the sparse indexed "ocean crust" boundary: ~2·dim² blocks
// of one float each, irregular gaps.
func Specfem3DOC() Workload {
	return Workload{
		Name: "specfem3D_oc",
		Kind: Sparse,
		Dims: []int{8, 16, 24, 32, 48, 64},
		Build: func(dim int) datatype.Type {
			n := 2 * dim * dim
			g := lcg(uint64(dim) * 1009)
			lens := make([]int, n)
			displs := make([]int, n)
			pos := 0
			for i := 0; i < n; i++ {
				lens[i] = 1
				displs[i] = pos
				pos += 2 + g.next(4) // 1-4 element holes
			}
			return datatype.Indexed(lens, displs, datatype.Float32)
		},
	}
}

// Specfem3DCM is the sparse struct-on-indexed crust-mantle boundary: three
// field arrays (displacement, velocity, acceleration), each an indexed type
// of dim² small blocks, at distinct displacements — the "struct-on-indexed"
// type the paper uses for Fig. 8 and Fig. 9.
func Specfem3DCM() Workload {
	return Workload{
		Name: "specfem3D_cm",
		Kind: Sparse,
		Dims: []int{8, 16, 24, 32, 48, 64},
		Build: func(dim int) datatype.Type {
			n := dim * dim
			field := func(seed uint64) datatype.Type {
				g := lcg(seed)
				lens := make([]int, n)
				displs := make([]int, n)
				pos := 0
				for i := 0; i < n; i++ {
					lens[i] = 1 + g.next(3) // 1-3 floats
					displs[i] = pos
					pos += lens[i] + 1 + g.next(3)
				}
				return datatype.Indexed(lens, displs, datatype.Float32)
			}
			f1 := field(uint64(dim) * 31)
			f2 := field(uint64(dim) * 37)
			f3 := field(uint64(dim) * 41)
			d1 := int64(0)
			d2 := d1 + f1.Extent() + 64
			d3 := d2 + f2.Extent() + 64
			return datatype.Struct(
				[]int{1, 1, 1},
				[]int64{d1, d2, d3},
				[]datatype.Type{f1, f2, f3},
			)
		},
	}
}

// MILC is the Lattice QCD su3 zdown face: a nested vector over su3
// matrices (3x3 single-precision complex = 72 bytes), dim² blocks of two
// matrices each — dense by the paper's classification (small block count,
// fatter blocks than specfem).
func MILC() Workload {
	return Workload{
		Name: "MILC",
		Kind: Dense,
		Dims: []int{4, 8, 12, 16, 24, 32},
		Build: func(dim int) datatype.Type {
			// The performance-relevant geometry is dim^2 blocks of
			// 144 B; the strides are compacted (one-site gaps
			// rather than whole-lattice gaps) so benchmark buffers
			// stay at O(dim^2) instead of O(dim^3) memory while the
			// pack kernels see the identical segment structure.
			su3 := datatype.Contiguous(18, datatype.Float32)           // 72 B
			site := datatype.Contiguous(2, su3)                        // 144 B
			row := datatype.Hvector(dim, 1, 2*144, site)               // dim blocks
			return datatype.Hvector(dim, 1, int64(2*144*dim)+144, row) // dim^2 blocks
		},
	}
}

// NASMG is the NAS MG y-face: a plain vector of dim blocks, each dim
// doubles long — the large dense layout of Fig. 12(d)/13(d).
func NASMG() Workload {
	return Workload{
		Name: "NAS_MG",
		Kind: Dense,
		Dims: []int{16, 32, 64, 128, 256, 384},
		Build: func(dim int) datatype.Type {
			// A y-face: dim blocks of dim doubles. The true grid
			// stride is dim^2 doubles; a 2*dim stride preserves the
			// non-contiguous block structure while keeping the
			// benchmark footprint at O(dim^2) bytes.
			return datatype.Vector(dim, dim, 2*dim, datatype.Float64)
		},
	}
}

// All returns the four paper workloads in figure order.
func All() []Workload {
	return []Workload{Specfem3DOC(), Specfem3DCM(), MILC(), NASMG()}
}

// ByName finds a workload by its paper legend name.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// FillPattern writes a deterministic, offset-dependent pattern so that
// copies to the wrong place are detectable.
func FillPattern(data []byte, seed uint64) {
	g := lcg(seed | 1)
	for i := range data {
		data[i] = byte(g.next(256))
	}
}

// VerifyBlocks checks that every layout-covered byte of got equals want.
// It returns a descriptive error naming the first mismatching block.
func VerifyBlocks(l *datatype.Layout, count int, want, got []byte) error {
	for _, b := range l.Repeat(count) {
		for off := b.Offset; off < b.Offset+b.Len; off++ {
			if got[off] != want[off] {
				return fmt.Errorf("workload: mismatch at byte %d of block %+v", off, b)
			}
		}
	}
	return nil
}
