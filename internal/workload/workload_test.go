package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAllFourWorkloadsPresent(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("want 4 workloads, got %d", len(all))
	}
	want := []string{"specfem3D_oc", "specfem3D_cm", "MILC", "NAS_MG"}
	for i, w := range all {
		if w.Name != want[i] {
			t.Errorf("workload %d = %s, want %s", i, w.Name, want[i])
		}
		if len(w.Dims) == 0 {
			t.Errorf("%s has no dimension sweep", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("MILC"); !ok || w.Name != "MILC" {
		t.Fatal("ByName(MILC) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName should miss unknown names")
	}
}

func TestSparseWorkloadsHaveThousandsOfBlocks(t *testing.T) {
	// Paper Section V-A: sparse = "more than thousands of small blocks".
	for _, w := range []Workload{Specfem3DOC(), Specfem3DCM()} {
		if w.Kind != Sparse {
			t.Errorf("%s should be sparse", w.Name)
		}
		l := w.Layout(32)
		if l.NumBlocks() < 1000 {
			t.Errorf("%s dim=32 has only %d blocks", w.Name, l.NumBlocks())
		}
		avg := l.SizeBytes / int64(l.NumBlocks())
		if avg > 16 {
			t.Errorf("%s avg block %dB too fat for sparse", w.Name, avg)
		}
	}
}

func TestDenseWorkloadsHaveFatterBlocks(t *testing.T) {
	// Paper: dense = "less than thousand of blocks".
	for _, w := range []Workload{MILC(), NASMG()} {
		if w.Kind != Dense {
			t.Errorf("%s should be dense", w.Name)
		}
		l := w.Layout(16)
		if l.NumBlocks() >= 1000 {
			t.Errorf("%s dim=16 has %d blocks, not dense", w.Name, l.NumBlocks())
		}
		avg := l.SizeBytes / int64(l.NumBlocks())
		if avg < 64 {
			t.Errorf("%s avg block %dB too thin for dense", w.Name, avg)
		}
	}
}

func TestLayoutsDeterministic(t *testing.T) {
	for _, w := range All() {
		a := w.Layout(16)
		b := w.Layout(16)
		if a.NumBlocks() != b.NumBlocks() || a.SizeBytes != b.SizeBytes {
			t.Errorf("%s layout not deterministic", w.Name)
		}
		for i := range a.Blocks {
			if a.Blocks[i] != b.Blocks[i] {
				t.Errorf("%s block %d differs between builds", w.Name, i)
				break
			}
		}
	}
}

func TestMessageSizeGrowsWithDim(t *testing.T) {
	for _, w := range All() {
		prev := int64(0)
		for _, d := range w.Dims {
			l := w.Layout(d)
			if l.SizeBytes <= prev {
				t.Errorf("%s: size did not grow at dim %d", w.Name, d)
			}
			prev = l.SizeBytes
		}
	}
}

func TestMILCStructure(t *testing.T) {
	l := MILC().Layout(8)
	if l.NumBlocks() != 64 {
		t.Fatalf("MILC dim=8 blocks = %d, want 64", l.NumBlocks())
	}
	if l.SizeBytes != 64*144 {
		t.Fatalf("MILC dim=8 payload = %d, want %d", l.SizeBytes, 64*144)
	}
}

func TestNASMGStructure(t *testing.T) {
	l := NASMG().Layout(32)
	if l.NumBlocks() != 32 {
		t.Fatalf("NAS_MG dim=32 blocks = %d", l.NumBlocks())
	}
	if l.MaxBlockBytes != 32*8 {
		t.Fatalf("NAS_MG dim=32 block size = %d, want 256", l.MaxBlockBytes)
	}
}

func TestSpecfemCMIsStructOfThreeFields(t *testing.T) {
	w := Specfem3DCM()
	l := w.Layout(8)
	// Three fields of dim^2 blocks each (some may coalesce).
	if l.NumBlocks() < 150 || l.NumBlocks() > 3*64 {
		t.Fatalf("specfem3D_cm dim=8 blocks = %d, want ~192", l.NumBlocks())
	}
	if !strings.HasPrefix(l.Name, "struct") {
		t.Fatalf("layout name %q should be a struct", l.Name)
	}
}

func TestDescribeMentionsGeometry(t *testing.T) {
	s := MILC().Describe(8)
	for _, frag := range []string{"MILC", "dim=8", "blocks"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("describe %q missing %q", s, frag)
		}
	}
}

func TestFillPatternDeterministicAndVaried(t *testing.T) {
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	FillPattern(a, 7)
	FillPattern(b, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fill not deterministic")
		}
	}
	FillPattern(b, 8)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatalf("different seeds produced %d/%d identical bytes", same, len(a))
	}
}

func TestVerifyBlocksCatchesCorruption(t *testing.T) {
	w := MILC()
	l := w.Layout(4)
	src := make([]byte, l.ExtentBytes)
	dst := make([]byte, l.ExtentBytes)
	FillPattern(src, 1)
	copy(dst, src)
	if err := VerifyBlocks(l, 1, src, dst); err != nil {
		t.Fatalf("identical buffers should verify: %v", err)
	}
	b := l.Blocks[len(l.Blocks)/2]
	dst[b.Offset] ^= 0xFF
	if err := VerifyBlocks(l, 1, src, dst); err == nil {
		t.Fatal("corruption not detected")
	}
	// Corruption in a hole must NOT be detected (holes are dont-care).
	copy(dst, src)
	holeFound := false
	for i := 0; i < len(l.Blocks)-1; i++ {
		gap := l.Blocks[i+1].Offset - (l.Blocks[i].Offset + l.Blocks[i].Len)
		if gap > 0 {
			dst[l.Blocks[i].Offset+l.Blocks[i].Len] ^= 0xFF
			holeFound = true
			break
		}
	}
	if holeFound {
		if err := VerifyBlocks(l, 1, src, dst); err != nil {
			t.Fatalf("hole corruption flagged: %v", err)
		}
	}
}

// Property: every workload at every swept dim yields a layout whose blocks
// are in bounds and whose density matches its kind at the margins.
func TestPropertyLayoutsWellFormed(t *testing.T) {
	f := func(wIdx, dIdx uint8) bool {
		all := All()
		w := all[int(wIdx)%len(all)]
		d := w.Dims[int(dIdx)%len(w.Dims)]
		l := w.Layout(d)
		if l.SizeBytes <= 0 || l.ExtentBytes < l.SizeBytes {
			return false
		}
		for _, b := range l.Blocks {
			if b.Offset < 0 || b.Offset+b.Len > l.ExtentBytes || b.Len <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
