package conformance

import (
	"fmt"
	"testing"
)

func TestReproDeadlock(t *testing.T) {
	sc := DecodeScenario([]byte("11zz000000000"))
	fmt.Printf("send=%s size=%d extent=%d count=%d eager=%d rdv=%v ipcOff=%v intra=%v pipe=%v\n",
		sc.SendType.TypeName(), sc.Send.SizeBytes, sc.Send.ExtentBytes, sc.Count,
		sc.EagerLimit, sc.Rendezvous, sc.DisableIPC, sc.IntraNode, sc.Pipeline)
	for _, name := range SchemeNames() {
		func() {
			defer func() {
				if r := recover(); r != nil {
					fmt.Printf("scheme %s: PANIC %v\n", name, r)
				}
			}()
			res, err := RunScenario(sc, name)
			if err != nil {
				fmt.Printf("scheme %s: err %v\n", name, err)
				return
			}
			_ = res
			fmt.Printf("scheme %s: ok clock=%d\n", name, res.FinalClock)
		}()
	}
}
