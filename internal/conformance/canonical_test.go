package conformance

import (
	"testing"

	"repro/internal/datatype"
)

// TestCanonicalPreservesFlattenSemantics is the canonicalization property
// test over the seeded DDT generator: for every generated type, the
// canonical stride-run form expands back to the committed block list
// element-for-element (pack order included), its aggregates match the
// layout's, and re-canonicalizing the expansion is a fixed point (same
// signature, same hash). This is the semantic guarantee that lets the
// layout cache key on canonical identity without changing any wire bytes.
func TestCanonicalPreservesFlattenSemantics(t *testing.T) {
	n := int64(400)
	if testing.Short() {
		n = 80
	}
	for seed := int64(0); seed < n; seed++ {
		typ := DecodeType(GenBytes(seed, 64))
		l := datatype.Commit(typ)
		c := l.CanonicalForm()
		if c.SizeBytes != l.SizeBytes || c.ExtentBytes != l.ExtentBytes {
			t.Fatalf("seed %d (%s): canon %d/%dB != layout %d/%dB",
				seed, typ.TypeName(), c.SizeBytes, c.ExtentBytes, l.SizeBytes, l.ExtentBytes)
		}
		exp := c.Expand()
		if len(exp) != len(l.Blocks) {
			t.Fatalf("seed %d (%s): canon expands to %d blocks, layout has %d",
				seed, typ.TypeName(), len(exp), len(l.Blocks))
		}
		for i, b := range l.Blocks {
			if exp[i] != b {
				t.Fatalf("seed %d (%s): expand[%d] = %+v, want %+v",
					seed, typ.TypeName(), i, exp[i], b)
			}
		}
		again := datatype.Canonicalize(exp, l.ExtentBytes)
		if !c.Equal(again) || c.Hash() != again.Hash() {
			t.Fatalf("seed %d (%s): not a fixed point:\n %s\n %s",
				seed, typ.TypeName(), c.Signature(), again.Signature())
		}
	}
}

// TestEquivalentSpellingsHashIdentically rebuilds each generated layout as
// a literal hindexed-of-bytes spelling of its own block list (a maximally
// different constructor tree) and asserts the two commit to identical
// canonical signatures and hashes — the family-collapse property TEMPI's
// cache reuse rests on.
func TestEquivalentSpellingsHashIdentically(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 40
	}
	for seed := int64(0); seed < n; seed++ {
		typ := DecodeType(GenBytes(seed, 64))
		l := datatype.Commit(typ)
		lens := make([]int, len(l.Blocks))
		displs := make([]int64, len(l.Blocks))
		for i, b := range l.Blocks {
			lens[i] = int(b.Len)
			displs[i] = b.Offset
		}
		respelled := datatype.Resized(
			datatype.Hindexed(lens, displs, datatype.Byte), l.ExtentBytes)
		rl := datatype.Commit(respelled)
		if l.Canonical() != rl.Canonical() {
			t.Fatalf("seed %d (%s): respelling changed identity:\n %s\n %s",
				seed, typ.TypeName(), l.Canonical(), rl.Canonical())
		}
		if l.CanonicalForm().Hash() != rl.CanonicalForm().Hash() {
			t.Fatalf("seed %d (%s): hashes differ", seed, typ.TypeName())
		}
		if !datatype.Equivalent(typ, respelled) {
			t.Fatalf("seed %d (%s): Equivalent() disagrees with signature equality",
				seed, typ.TypeName())
		}
	}
}

// TestPlanDifferentialAllSchemes is the plans-on/plans-off differential
// oracle over all schemes: identical receive checksums, bytes, virtual
// clocks, trace totals, and kernel counts with compiled pack plans enabled
// vs. the legacy block-list path, in both exact and lazy payload modes.
func TestPlanDifferentialAllSchemes(t *testing.T) {
	perScheme := 3
	if testing.Short() {
		perScheme = 1
	}
	for i, name := range SchemeNames() {
		for j := 0; j < perScheme; j++ {
			seed := int64(4000 + i*perScheme + j)
			sc := GenScenario(seed)
			if err := PlanDifferential(sc, name); err != nil {
				t.Errorf("scheme %s seed %d: %v\n  send=%s recv=%s count=%d",
					name, seed, err, sc.SendType.TypeName(), sc.RecvType.TypeName(), sc.Count)
			}
		}
	}
}

// TestPlanDifferentialSeedInputs runs the committed known-tricky decoder
// inputs through the plans differential under the fused scheme.
func TestPlanDifferentialSeedInputs(t *testing.T) {
	for i, in := range SeedInputs {
		sc := DecodeScenario(in)
		if err := PlanDifferential(sc, "Proposed-Tuned"); err != nil {
			t.Errorf("seed input %d (% x): %v", i, in, err)
		}
	}
}
