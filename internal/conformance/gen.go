// Package conformance is the differential correctness layer promised by
// DESIGN §5: every DDT scheme must produce byte-identical receive buffers,
// and the same seed must produce bit-identical simulated timings. The
// package provides
//
//   - a seeded random derived-datatype generator (bounded nested
//     vector/hvector/indexed/hindexed/struct/subarray types, depth <= 4)
//     driven by a byte-stream decoder so the same machinery serves both
//     seeded property tests and native go-fuzz targets;
//   - a differential runner that executes one exchange over every scheme
//     in internal/schemes and reports the first diverging
//     (offset, scheme-pair) on failure;
//   - a determinism oracle that replays a scenario and asserts identical
//     final sim-clock readings and per-category trace totals.
//
// TEMPI-style canonical flattening of nested datatypes is exactly where
// silent corruption hides (zero counts, zero-length blocks, overlapping
// extents, resized types whose payload outruns their extent), so the
// generator is deliberately biased toward those shapes.
package conformance

import (
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mpi"
)

// Generation bounds. Depth and extent budgets keep every generated type
// small enough that a full differential run over all schemes stays cheap.
const (
	maxDepth       = 4
	extentBudget   = 32 << 10 // bytes of memory span per element
	maxConstructor = 10
)

// reader yields bounded values from a byte stream. When the stream is
// exhausted it returns zeros, so every input — including the empty one —
// decodes to a well-formed type. This makes the decoder total: fuzzers can
// feed arbitrary bytes and only engine bugs, never decoder artifacts, can
// fail a target.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) next() byte {
	if r.pos >= len(r.data) {
		r.pos++
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// intn returns a value in [0, n).
func (r *reader) intn(n int) int {
	if n <= 1 {
		r.next()
		return 0
	}
	return int(r.next()) % n
}

// signed returns a value in (-128, 127] — used to exercise the
// negative-stride decode path, which the engine normalizes away.
func (r *reader) signed() int { return int(int8(r.next())) }

// amp occasionally multiplies a replication count so a useful fraction of
// scenarios crosses the eager and pipeline thresholds instead of the whole
// population clustering at tens of bytes. Zero stays zero.
func (r *reader) amp(n int) int {
	switch r.next() & 3 {
	case 0:
		return n * 16
	case 1:
		return n * 4
	}
	return n
}

var primitives = []datatype.Type{
	datatype.Byte, datatype.Char, datatype.Int32, datatype.Int64,
	datatype.Float32, datatype.Float64, datatype.Complex64, datatype.Complex128,
}

// capCount shrinks a decoded replication count so count*unit stays inside
// budget. Zero counts survive: they are a deliberately covered edge.
func capCount(n int, unit, budget int64) int {
	if n < 0 {
		n = 0
	}
	if unit <= 0 {
		unit = 1
	}
	if max := budget / unit; int64(n) > max {
		n = int(max)
	}
	return n
}

// DecodeType decodes an arbitrary byte string into a bounded derived
// datatype: nesting depth <= 4, per-element extent <= extentBudget. The
// mapping is stable so committed fuzz corpora keep meaning what their
// comments say.
func DecodeType(data []byte) datatype.Type {
	r := &reader{data: data}
	return decodeType(r, maxDepth, extentBudget)
}

func decodeType(r *reader, depth int, budget int64) datatype.Type {
	if depth <= 0 || budget < 32 {
		return primitives[r.intn(len(primitives))]
	}
	switch r.intn(maxConstructor) {
	case 0: // primitive leaf
		return primitives[r.intn(len(primitives))]

	case 1: // contiguous
		base := decodeType(r, depth-1, budget/4)
		count := capCount(r.amp(r.intn(7)), base.Extent(), budget)
		return datatype.Contiguous(count, base)

	case 2: // vector; negative decoded strides normalize to 0 (overlap)
		base := decodeType(r, depth-1, budget/8)
		count, blocklen := r.intn(10), r.intn(5)
		stride := r.signed() % 8
		if stride < 0 {
			stride = 0
		}
		span := int64(stride+blocklen) + 1
		count = capCount(r.amp(count), span*base.Extent(), budget)
		return datatype.Vector(count, blocklen, stride, base)

	case 3: // hvector with a byte stride decoupled from the base extent
		base := decodeType(r, depth-1, budget/8)
		count, blocklen := r.intn(10), r.intn(5)
		strideBytes := int64(r.signed())
		if strideBytes < 0 {
			strideBytes = 0
		}
		span := strideBytes + int64(blocklen)*base.Extent() + 1
		count = capCount(r.amp(count), span, budget)
		return datatype.Hvector(count, blocklen, strideBytes, base)

	case 4: // indexed: unordered displacements (descending and overlapping)
		base := decodeType(r, depth-1, budget/8)
		n := r.intn(7)
		maxDispl := capCount(64, base.Extent(), budget)
		lens := make([]int, n)
		displs := make([]int, n)
		for i := 0; i < n; i++ {
			lens[i] = capCount(r.intn(5), base.Extent(), budget/int64(n+1))
			displs[i] = r.intn(maxDispl + 1)
		}
		return datatype.Indexed(lens, displs, base)

	case 5: // hindexed: byte displacements
		base := decodeType(r, depth-1, budget/8)
		n := r.intn(7)
		lens := make([]int, n)
		displs := make([]int64, n)
		for i := 0; i < n; i++ {
			lens[i] = capCount(r.intn(5), base.Extent(), budget/int64(n+1))
			displs[i] = int64(r.intn(int(budget/2 + 1)))
		}
		return datatype.Hindexed(lens, displs, base)

	case 6: // indexed-block: constant block length
		base := decodeType(r, depth-1, budget/8)
		n := r.intn(7)
		blocklen := capCount(r.intn(4), base.Extent(), budget/int64(n+1))
		displs := make([]int, n)
		maxDispl := capCount(64, base.Extent(), budget)
		for i := 0; i < n; i++ {
			displs[i] = r.intn(maxDispl + 1)
		}
		return datatype.IndexedBlock(blocklen, displs, base)

	case 7: // struct: heterogeneous fields, gaps, possible overlap
		nf := 1 + r.intn(3)
		lens := make([]int, nf)
		displs := make([]int64, nf)
		types := make([]datatype.Type, nf)
		var pos int64
		for i := 0; i < nf; i++ {
			types[i] = decodeType(r, depth-1, budget/int64(2*nf))
			lens[i] = capCount(r.intn(4), types[i].Extent(), budget/int64(nf))
			if r.next()&1 == 0 {
				displs[i] = pos // sequential with a decoded gap
				pos += int64(lens[i])*types[i].Extent() + int64(r.intn(16))
			} else {
				displs[i] = int64(r.intn(int(budget/4 + 1))) // unordered
			}
		}
		return datatype.Struct(lens, displs, types)

	case 8: // subarray, 1-3 dims, row-major
		nd := 1 + r.intn(3)
		sizes := make([]int, nd)
		subsizes := make([]int, nd)
		starts := make([]int, nd)
		vol := int64(1)
		for d := 0; d < nd; d++ {
			sizes[d] = 1 + r.intn(6)
			vol *= int64(sizes[d])
		}
		base := decodeType(r, depth-1, budget/(vol+1))
		for d := 0; d < nd; d++ {
			subsizes[d] = r.intn(sizes[d] + 1) // zero-width slabs allowed
			starts[d] = r.intn(sizes[d] - subsizes[d] + 1)
		}
		return datatype.Subarray(sizes, subsizes, starts, base)

	default: // resized: extent override in [ext/2, ~1.5*ext]
		base := decodeType(r, depth-1, budget/2)
		ext := base.Extent()
		newExt := ext/2 + int64(r.intn(int(ext+2)))
		if newExt > budget {
			newExt = budget
		}
		return datatype.Resized(base, newExt)
	}
}

// Scenario is one decoded differential-exchange setup: a send datatype, a
// wire-compatible receive datatype (usually the same one), the element
// count, and the MPI-runtime knobs that select different protocol paths.
type Scenario struct {
	SendType, RecvType datatype.Type
	Send, Recv         *datatype.Layout
	Count              int
	Rendezvous         mpi.RendezvousMode
	// EagerLimit overrides the runtime eager threshold (0 = default):
	// forcing tiny limits drives small payloads down the rendezvous path,
	// huge limits drive large payloads down the eager path.
	EagerLimit int64
	DisableIPC bool
	// IntraNode exchanges between two GPUs of one node (DirectIPC path)
	// instead of across the fabric.
	IntraNode bool
	// Pipeline enables chunked rendezvous (small chunk size so even the
	// bounded generated payloads split into multiple chunks).
	Pipeline bool
	// Seed drives the deterministic buffer fill patterns.
	Seed uint64
	// Faults, when non-nil, injects deterministic fabric/NIC/GPU faults
	// and activates the MPI reliability layer (chaos conformance).
	Faults *fault.Plan
	// StallTimeoutNs overrides the sim watchdog timeout for this run.
	// Zero keeps the runner's default (2 s of virtual time, generous
	// enough for the slowest fuzzed baselines); negative disables it.
	StallTimeoutNs int64
	// DisablePlans forces the legacy block-list pack/unpack loops instead
	// of compiled pack plans — the control arm of the plans differential.
	DisablePlans bool
}

// DecodeScenario decodes an arbitrary byte string into a bounded scenario.
// Like DecodeType it is total: every input yields a runnable scenario.
func DecodeScenario(data []byte) Scenario {
	r := &reader{data: data}
	t := decodeType(r, maxDepth, extentBudget)
	l := datatype.Commit(t)
	sc := Scenario{SendType: t, RecvType: t, Send: l, Recv: l}
	sc.Count = 1 + r.intn(3)
	if r.next()&1 == 1 {
		sc.Rendezvous = mpi.RPUT
	}
	switch r.intn(3) {
	case 1:
		sc.EagerLimit = 256 // force rendezvous for almost everything
	case 2:
		sc.EagerLimit = 1 << 20 // force eager for everything generated
	}
	sc.DisableIPC = r.next()&1 == 1
	sc.IntraNode = r.next()&1 == 1
	sc.Pipeline = r.next()&1 == 1
	sc.Seed = uint64(r.next())<<8 | uint64(r.next()) | 1
	if r.intn(4) == 0 && l.NumBlocks() > 0 {
		// Cross-type exchange: receive into an hindexed rearrangement
		// with the identical wire signature but different displacements.
		sc.RecvType = rearrange(r, l)
		sc.Recv = datatype.Commit(sc.RecvType)
	}
	return sc
}

// rearrange builds an hindexed-of-bytes type whose block-length sequence
// (the wire signature) matches l's, but whose displacements are re-dealt
// with decoded gaps — the receive side scatters the same bytes elsewhere.
func rearrange(r *reader, l *datatype.Layout) datatype.Type {
	lens := make([]int, len(l.Blocks))
	displs := make([]int64, len(l.Blocks))
	var pos int64
	for i, b := range l.Blocks {
		lens[i] = int(b.Len)
		displs[i] = pos
		pos += b.Len + int64(r.intn(8))
	}
	return datatype.Hindexed(lens, displs, datatype.Byte)
}

// lcg is the deterministic byte source behind GenBytes.
type lcg uint64

func (g *lcg) next() byte {
	*g = *g*6364136223846793005 + 1442695040888963407
	return byte(uint64(*g) >> 33)
}

// GenBytes deterministically expands a seed into n decoder-input bytes, so
// seeded property tests draw from exactly the space fuzzing explores.
func GenBytes(seed int64, n int) []byte {
	g := lcg(uint64(seed)*2862933555777941757 + 3037000493)
	out := make([]byte, n)
	for i := range out {
		out[i] = g.next()
	}
	return out
}

// GenScenario decodes the scenario for a seed.
func GenScenario(seed int64) Scenario {
	return DecodeScenario(GenBytes(seed, 96))
}

// SeedInputs are the committed known-tricky decoder inputs, mirrored in the
// fuzz corpora under testdata/fuzz. Byte positions follow decodeType's
// consumption order; the leading byte selects the constructor (mod 10).
var SeedInputs = [][]byte{
	// zero-count vector of float64 (constructor 2; count byte = 0)
	{2, 0, 5, 0, 3, 2},
	// zero-length blocks: indexed with all lens decoding to 0
	{4, 0, 2, 4, 0, 7, 0, 3, 0, 11},
	// negative stride (0x85 = -123 as int8) normalized by the decoder
	{2, 0, 4, 3, 2, 0x85},
	// overlapping extents: vector with stride 0 < blocklen 3
	{2, 0, 1, 4, 3, 0},
	// resized type whose payload end exceeds its extent (constructor 9)
	{9, 1, 0, 3, 3, 0},
	// struct-on-indexed, the specfem3D_cm shape family
	{7, 2, 4, 0, 1, 3, 1, 5, 0, 4, 0, 2, 2, 2, 9, 1, 7},
	// 3-D subarray slab
	{8, 2, 3, 2, 1, 0, 4, 2, 1, 1, 0, 1, 1, 0},
	// deep nesting: hvector of contiguous of vector
	{3, 1, 2, 2, 1, 3, 2, 4, 3, 2, 12},
	// empty input: decoder zero-padding must still yield a valid scenario
	{},
}
