package conformance

import (
	"testing"
)

// TestLazyDifferentialAllSchemes runs the lazy-vs-exact oracle over every
// registered scheme on a spread of generated scenarios: same seed, two
// payload modes, identical checksums/clocks/traces/GPU accounting required.
func TestLazyDifferentialAllSchemes(t *testing.T) {
	perScheme := 4
	if testing.Short() {
		perScheme = 1
	}
	for i, name := range SchemeNames() {
		for j := 0; j < perScheme; j++ {
			seed := int64(5000 + i*perScheme + j)
			sc := GenScenario(seed)
			if err := LazyDifferential(sc, name); err != nil {
				t.Errorf("scheme %s seed %d: %v\n  send=%s recv=%s count=%d rdv=%v eager=%d ipc-off=%v intra=%v pipe=%v",
					name, seed, err, sc.SendType.TypeName(), sc.RecvType.TypeName(), sc.Count,
					sc.Rendezvous, sc.EagerLimit, sc.DisableIPC, sc.IntraNode, sc.Pipeline)
			}
		}
	}
}

// TestLazyDifferentialSeedInputs pushes the committed known-tricky decoder
// corpus through the lazy oracle under the reference scheme plus the fused
// proposed scheme, covering the datatype shapes that historically broke
// block arithmetic.
func TestLazyDifferentialSeedInputs(t *testing.T) {
	names := SchemeNames()
	pick := []string{names[0], names[len(names)-1]}
	for i, in := range SeedInputs {
		sc := DecodeScenario(in)
		for _, name := range pick {
			if err := LazyDifferential(sc, name); err != nil {
				t.Errorf("seed input %d scheme %s: %v", i, name, err)
			}
		}
	}
}

// TestLazyDeterminism: two identical lazy runs must be bit-identical, the
// same invariant CheckDeterminism asserts for exact mode.
func TestLazyDeterminism(t *testing.T) {
	for i, name := range SchemeNames() {
		sc := GenScenario(int64(7000 + i))
		a, err := RunScenarioPayload(sc, name, true)
		if err != nil {
			t.Fatalf("scheme %s: %v", name, err)
		}
		b, err := RunScenarioPayload(sc, name, true)
		if err != nil {
			t.Fatalf("scheme %s: %v", name, err)
		}
		if a.FinalClock != b.FinalClock || a.RecvSum != b.RecvSum {
			t.Errorf("scheme %s: lazy run nondeterministic (clock %d vs %d, sum %#x vs %#x)",
				name, a.FinalClock, b.FinalClock, a.RecvSum, b.RecvSum)
		}
	}
}
