package conformance

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SpecSmall is the differential-run machine: Lassen trimmed to two GPUs
// per node (4 ranks), enough for both the intra-node DirectIPC path and
// the inter-node fabric path while keeping a full scheme sweep cheap.
func SpecSmall() cluster.Spec {
	s := cluster.Lassen()
	s.GPUsPerNode = 2
	return s
}

// SchemeNames lists every scheme the differential runner sweeps — all
// registered factories, so a newly added scheme is conformance-tested the
// moment it appears in schemes.Names().
func SchemeNames() []string { return schemes.Names() }

// bufSpan sizes a buffer holding count elements of l. ExtentBytes*count is
// not enough on its own: a Resized type may place payload beyond its
// declared extent, so take the max over actual block ends too.
func bufSpan(l *datatype.Layout, count int) int64 {
	span := l.ExtentBytes * int64(count)
	for _, b := range l.Repeat(count) {
		if end := b.Offset + b.Len; end > span {
			span = end
		}
	}
	if span < 1 {
		span = 1 // zero-payload types still need an allocatable buffer
	}
	return span
}

// Signature is the wire type signature of (layout, count): the sequence of
// contiguous block lengths in traversal order. All primitives are opaque
// bytes on the simulated wire, so equal signatures mean send and receive
// sides agree on the byte stream's shape.
func Signature(l *datatype.Layout, count int) []int64 {
	blocks := l.Repeat(count)
	sig := make([]int64, len(blocks))
	for i, b := range blocks {
		sig[i] = b.Len
	}
	return sig
}

// SameSignature reports whether two signatures carry identical byte
// streams: equal total length with block boundaries at the same cuts.
// (Coalescing means block granularity can legitimately differ between two
// types with the same stream; compare cumulative cuts, not raw lengths.)
func SameSignature(a, b []int64) bool {
	var ta, tb int64
	for _, v := range a {
		ta += v
	}
	for _, v := range b {
		tb += v
	}
	return ta == tb
}

// Result captures everything observable about one scenario run under one
// scheme: the final receive buffer, the final virtual clock, and the
// per-category trace totals summed across ranks. Under a fault plan it
// additionally carries the recovery observables the chaos suite asserts.
type Result struct {
	Scheme     string
	Recv       []byte
	FinalClock int64
	Trace      map[string]int64
	// RecvSum is the FNV-1a checksum of the receive buffer's logical
	// content, computed mode-independently — the observable the lazy
	// oracle compares against the byte-exact reference run.
	RecvSum uint64
	// Kernels and MovedBytes sum gpu.Stats.KernelLaunches/BytesMoved over
	// all devices: the lazy oracle requires the GPU-side work accounting
	// to match the exact run exactly.
	Kernels    int64
	MovedBytes int64
	// LiveProcs counts simulation processes still unfinished after the
	// run (must be zero: the scheduler-side leak oracle).
	LiveProcs int
	// SendErr/RecvErr are the typed Waitall errors of the two endpoints
	// (nil on success; only ever non-nil under a fault plan).
	SendErr, RecvErr error
	// FaultEvents counts injected-fault/recovery events; Leaked counts
	// requests still registered in-flight after the run (must be zero).
	FaultEvents int
	Leaked      int
	// Retrans counts reliability-layer retransmissions (messages and RDMA
	// re-issues). The chaos differential requires it to be identical
	// between payload modes: fabric decisions are keyed by site name and
	// traffic order, never by payload representation.
	Retrans int64
	// PendingFused counts pack/unpack jobs still parked in live ranks'
	// fusion schedulers after the run — the error-path window-teardown
	// invariant: a collective or exchange that fails mid-phase must not
	// strand fused jobs (must be zero, fused schemes or not).
	PendingFused int
}

// fillKind selects how scenario buffers are seeded.
type fillKind int

const (
	// fillLCG is the legacy sequential-LCG pattern (workload.FillPattern)
	// used by the byte-exact differential against the sequential model.
	fillLCG fillKind = iota
	// fillPRF seeds with the position-addressable payload PRF, which both
	// exact and lazy modes can represent — required by the lazy oracle.
	fillPRF
)

// RunScenario executes sc once under the named scheme on SpecSmall and
// returns the observables. Rank 0 sends; rank 2 (inter-node) or rank 1
// (intra-node) receives. On a sim error (e.g. the watchdog's StallError)
// the partially populated Result is returned alongside the error so chaos
// tests can still inspect the endpoint errors.
func RunScenario(sc Scenario, scheme string) (*Result, error) {
	return runScenario(sc, scheme, fillLCG, false)
}

// RunScenarioPayload is RunScenario with PRF-seeded buffers and a payload
// mode switch: lazy=false is the byte-exact reference, lazy=true carries
// every buffer (threshold 1) through the lazy span algebra. Identical
// observables between the two are the lazy-vs-exact conformance oracle.
func RunScenarioPayload(sc Scenario, scheme string, lazy bool) (*Result, error) {
	return runScenario(sc, scheme, fillPRF, lazy)
}

func runScenario(sc Scenario, scheme string, fill fillKind, lazy bool) (*Result, error) {
	env := sim.NewEnv()
	cl := cluster.MustBuild(env, SpecSmall())
	if lazy {
		// Threshold 1 puts even tiny buffers on the lazy path — maximal
		// coverage of the span algebra at conformance sizes.
		for _, node := range cl.Devices {
			for _, d := range node {
				d.LazyThreshold = 1
			}
		}
	}

	cfg := mpi.DefaultConfig()
	// Fuzzed scenarios can legitimately take hundreds of virtual ms under
	// the slowest baselines (e.g. NaiveMemcpy posting tens of thousands of
	// cudaMemcpyAsync calls); give them headroom past the default stall
	// guard without affecting how passing cases are timed. The watchdog
	// itself is the sim-level one armed by World.Run.
	cfg.StallTimeoutNs = 2 * sim.Second
	if sc.StallTimeoutNs != 0 {
		cfg.StallTimeoutNs = sc.StallTimeoutNs
	}
	cfg.Rendezvous = sc.Rendezvous
	if sc.EagerLimit != 0 {
		cfg.EagerLimitBytes = sc.EagerLimit
	}
	cfg.DisableIPC = sc.DisableIPC
	cfg.DisablePackPlans = sc.DisablePlans
	if sc.Pipeline {
		cfg.PipelineChunkBytes = 2048
	}
	cfg.Faults = sc.Faults

	world := mpi.NewWorld(cl, cfg, schemes.Factory(scheme))

	const src = 0
	dst := 2
	if sc.IntraNode {
		dst = 1
	}

	sbuf := world.Rank(src).Dev.Alloc("conf-send", int(bufSpan(sc.Send, sc.Count)))
	rbuf := world.Rank(dst).Dev.Alloc("conf-recv", int(bufSpan(sc.Recv, sc.Count)))
	if fill == fillLCG {
		workload.FillPattern(sbuf.Data, sc.Seed)
		workload.FillPattern(rbuf.Data, ^sc.Seed)
	} else {
		sbuf.FillStream(sc.Seed)
		rbuf.FillStream(^sc.Seed)
	}

	res := &Result{Scheme: scheme, Trace: make(map[string]int64)}
	err := world.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case src:
			q := r.Isend(p, dst, 7, sbuf, sc.Send, sc.Count)
			res.SendErr = r.Waitall(p, []*mpi.Request{q})
		case dst:
			q := r.Irecv(p, src, 7, rbuf, sc.Recv, sc.Count)
			res.RecvErr = r.Waitall(p, []*mpi.Request{q})
		}
	})
	res.RecvSum = rbuf.Checksum()
	res.Recv = append([]byte(nil), rbuf.Materialize()...)
	res.FinalClock = env.Now()
	res.LiveProcs = env.LiveProcs()
	res.FaultEvents = len(world.FaultEvents())
	res.Leaked = world.LeakedRequests()
	res.Retrans = world.Injector().Count(fault.Retransmit)
	res.PendingFused = world.PendingFusedJobs()
	for i := 0; i < world.Size(); i++ {
		st := world.Rank(i).Dev.Stats
		res.Kernels += st.KernelLaunches
		res.MovedBytes += st.BytesMoved
	}
	if err != nil {
		return res, fmt.Errorf("scheme %s: %w", scheme, err)
	}
	if res.SendErr != nil {
		return res, fmt.Errorf("scheme %s: send: %w", scheme, res.SendErr)
	}
	if res.RecvErr != nil {
		return res, fmt.Errorf("scheme %s: recv: %w", scheme, res.RecvErr)
	}
	for i := 0; i < world.Size(); i++ {
		for _, c := range trace.Categories() {
			res.Trace[c.String()] += world.Rank(i).Trace.Get(c)
		}
	}
	return res, nil
}

// Expected computes the model receive buffer for sc with plain sequential
// code, independent of every engine under test: pack the send blocks into
// a wire stream, scatter the stream through the receive blocks into a
// buffer pre-filled exactly like the real run's. Bytes no scheme should
// touch are therefore compared too.
func Expected(sc Scenario) []byte {
	src := make([]byte, bufSpan(sc.Send, sc.Count))
	workload.FillPattern(src, sc.Seed)
	dst := make([]byte, bufSpan(sc.Recv, sc.Count))
	workload.FillPattern(dst, ^sc.Seed)

	var wire []byte
	for _, b := range sc.Send.Repeat(sc.Count) {
		wire = append(wire, src[b.Offset:b.Offset+b.Len]...)
	}
	var pos int64
	for _, b := range sc.Recv.Repeat(sc.Count) {
		copy(dst[b.Offset:b.Offset+b.Len], wire[pos:pos+b.Len])
		pos += b.Len
	}
	return dst
}

// Divergence reports the first byte at which two runs disagree.
type Divergence struct {
	SchemeA, SchemeB string
	Offset           int64
	A, B             byte
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("conformance: %s and %s diverge at recv offset %d (0x%02x vs 0x%02x)",
		d.SchemeA, d.SchemeB, d.Offset, d.A, d.B)
}

// firstDiff returns the first differing offset of a and b, or -1. A length
// mismatch diverges at the shorter length.
func firstDiff(a, b []byte) int64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return int64(i)
		}
	}
	if len(a) != len(b) {
		return int64(n)
	}
	return -1
}

func compare(nameA, nameB string, a, b []byte) error {
	if off := firstDiff(a, b); off >= 0 {
		var ba, bb byte
		if off < int64(len(a)) {
			ba = a[off]
		}
		if off < int64(len(b)) {
			bb = b[off]
		}
		return &Divergence{SchemeA: nameA, SchemeB: nameB, Offset: off, A: ba, B: bb}
	}
	return nil
}

// Differential runs sc under every scheme and asserts (1) the send and
// receive type signatures carry the same byte stream, (2) every scheme's
// receive buffer is byte-identical to the sequential model, and (3) all
// schemes agree with each other. The returned error names the first
// diverging (offset, scheme-pair).
func Differential(sc Scenario) error {
	if !SameSignature(Signature(sc.Send, sc.Count), Signature(sc.Recv, sc.Count)) {
		return fmt.Errorf("conformance: send/recv type signatures disagree (%d vs %d wire bytes)",
			sc.Send.SizeBytes*int64(sc.Count), sc.Recv.SizeBytes*int64(sc.Count))
	}
	want := Expected(sc)
	var first *Result
	for _, name := range SchemeNames() {
		res, err := RunScenario(sc, name)
		if err != nil {
			return err
		}
		if err := compare("model", name, want, res.Recv); err != nil {
			return err
		}
		if first == nil {
			first = res
		} else if err := compare(first.Scheme, name, first.Recv, res.Recv); err != nil {
			return err
		}
	}
	return nil
}

// LazyDifferential runs sc under one scheme twice — byte-exact and
// lazy-bytes, both PRF-seeded from the same scenario seed — and asserts
// the two runs are observationally identical: same receive checksum and
// bytes, same final virtual clock, same per-category trace totals, same
// GPU work accounting, and zero leaks on both sides. This is the oracle
// that licenses running at scales where byte-exact mode is unaffordable.
func LazyDifferential(sc Scenario, scheme string) error {
	exact, err := RunScenarioPayload(sc, scheme, false)
	if err != nil {
		return fmt.Errorf("exact: %w", err)
	}
	lazy, err := RunScenarioPayload(sc, scheme, true)
	if err != nil {
		return fmt.Errorf("lazy: %w", err)
	}
	if exact.RecvSum != lazy.RecvSum {
		return fmt.Errorf("conformance: %s lazy recv checksum %#x != exact %#x", scheme, lazy.RecvSum, exact.RecvSum)
	}
	if err := compare(scheme+"/exact", scheme+"/lazy", exact.Recv, lazy.Recv); err != nil {
		return err
	}
	if exact.FinalClock != lazy.FinalClock {
		return fmt.Errorf("conformance: %s lazy final clock %d ns != exact %d ns", scheme, lazy.FinalClock, exact.FinalClock)
	}
	for cat, ns := range exact.Trace {
		if lazy.Trace[cat] != ns {
			return fmt.Errorf("conformance: %s lazy trace[%s] %d ns != exact %d ns", scheme, cat, lazy.Trace[cat], ns)
		}
	}
	if exact.Kernels != lazy.Kernels || exact.MovedBytes != lazy.MovedBytes {
		return fmt.Errorf("conformance: %s lazy GPU accounting (kernels=%d bytes=%d) != exact (kernels=%d bytes=%d)",
			scheme, lazy.Kernels, lazy.MovedBytes, exact.Kernels, exact.MovedBytes)
	}
	for _, r := range []*Result{exact, lazy} {
		if r.Leaked != 0 || r.PendingFused != 0 || r.LiveProcs != 0 {
			return fmt.Errorf("conformance: %s %s run leaked state: requests=%d fused=%d procs=%d",
				scheme, map[bool]string{false: "exact", true: "lazy"}[r == lazy], r.Leaked, r.PendingFused, r.LiveProcs)
		}
	}
	return nil
}

// errText renders an endpoint error for cross-mode comparison ("" = nil).
// OpError strings carry ranks, tags, phases, and attempt counts but never
// payload bytes, so exact and lazy runs under the same fault plan must
// produce identical text.
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// ChaosLazyDifferential runs sc — which must carry a fault plan — under
// one scheme in byte-exact and lazy payload modes and asserts the two
// chaos runs are observationally identical: same outcome (success, or the
// same typed endpoint errors text-for-text), same receive checksum, same
// final virtual clock, same fault-event and retransmission counts, and
// zero leaked requests/fused jobs on both sides. Fabric drop/corrupt/dup
// decisions are keyed by site name and traffic order, never by payload
// representation, so any divergence is a payload-mode leak into the
// control flow — exactly the class of bug that would silently invalidate
// 1024-rank lazy chaos results.
func ChaosLazyDifferential(sc Scenario, scheme string) error {
	if sc.Faults == nil {
		return fmt.Errorf("conformance: ChaosLazyDifferential needs a fault plan")
	}
	exact, exactErr := RunScenarioPayload(sc, scheme, false)
	lazy, lazyErr := RunScenarioPayload(sc, scheme, true)
	if (exactErr == nil) != (lazyErr == nil) {
		return fmt.Errorf("conformance: %s chaos outcome differs: exact=%v lazy=%v", scheme, exactErr, lazyErr)
	}
	if errText(exact.SendErr) != errText(lazy.SendErr) {
		return fmt.Errorf("conformance: %s chaos send error differs:\n  exact: %v\n  lazy:  %v",
			scheme, exact.SendErr, lazy.SendErr)
	}
	if errText(exact.RecvErr) != errText(lazy.RecvErr) {
		return fmt.Errorf("conformance: %s chaos recv error differs:\n  exact: %v\n  lazy:  %v",
			scheme, exact.RecvErr, lazy.RecvErr)
	}
	if exact.RecvSum != lazy.RecvSum {
		return fmt.Errorf("conformance: %s chaos lazy recv checksum %#x != exact %#x", scheme, lazy.RecvSum, exact.RecvSum)
	}
	if exact.FinalClock != lazy.FinalClock {
		return fmt.Errorf("conformance: %s chaos lazy final clock %d ns != exact %d ns", scheme, lazy.FinalClock, exact.FinalClock)
	}
	if exact.FaultEvents != lazy.FaultEvents {
		return fmt.Errorf("conformance: %s chaos lazy fault events %d != exact %d", scheme, lazy.FaultEvents, exact.FaultEvents)
	}
	if exact.Retrans != lazy.Retrans {
		return fmt.Errorf("conformance: %s chaos lazy retransmissions %d != exact %d", scheme, lazy.Retrans, exact.Retrans)
	}
	if exact.Kernels != lazy.Kernels || exact.MovedBytes != lazy.MovedBytes {
		return fmt.Errorf("conformance: %s chaos lazy GPU accounting (kernels=%d bytes=%d) != exact (kernels=%d bytes=%d)",
			scheme, lazy.Kernels, lazy.MovedBytes, exact.Kernels, exact.MovedBytes)
	}
	for _, r := range []*Result{exact, lazy} {
		mode := map[bool]string{false: "exact", true: "lazy"}[r == lazy]
		if r.Leaked != 0 || r.PendingFused != 0 {
			return fmt.Errorf("conformance: %s %s chaos run leaked state: requests=%d fused=%d",
				scheme, mode, r.Leaked, r.PendingFused)
		}
	}
	return nil
}

// PlanDifferential runs sc under one scheme with compiled pack plans
// enabled and disabled (the legacy block-list path), in both exact and
// lazy payload modes, and asserts the four runs are observationally
// identical: same receive checksum and bytes, same final virtual clock,
// same per-category trace totals, same GPU work accounting. Plans are a
// host-side execution strategy — any divergence here is a plan-compiler
// or plan-runtime bug.
func PlanDifferential(sc Scenario, scheme string) error {
	for _, lazy := range []bool{false, true} {
		mode := map[bool]string{false: "exact", true: "lazy"}[lazy]
		scOn, scOff := sc, sc
		scOn.DisablePlans = false
		scOff.DisablePlans = true
		on, err := runScenario(scOn, scheme, fillPRF, lazy)
		if err != nil {
			return fmt.Errorf("%s/plans: %w", mode, err)
		}
		off, err := runScenario(scOff, scheme, fillPRF, lazy)
		if err != nil {
			return fmt.Errorf("%s/legacy: %w", mode, err)
		}
		if on.RecvSum != off.RecvSum {
			return fmt.Errorf("conformance: %s %s plan recv checksum %#x != legacy %#x", scheme, mode, on.RecvSum, off.RecvSum)
		}
		if err := compare(scheme+"/"+mode+"/plans", scheme+"/"+mode+"/legacy", on.Recv, off.Recv); err != nil {
			return err
		}
		if on.FinalClock != off.FinalClock {
			return fmt.Errorf("conformance: %s %s plan final clock %d ns != legacy %d ns", scheme, mode, on.FinalClock, off.FinalClock)
		}
		for cat, ns := range on.Trace {
			if off.Trace[cat] != ns {
				return fmt.Errorf("conformance: %s %s plan trace[%s] %d ns != legacy %d ns", scheme, mode, cat, ns, off.Trace[cat])
			}
		}
		if on.Kernels != off.Kernels || on.MovedBytes != off.MovedBytes {
			return fmt.Errorf("conformance: %s %s plan GPU accounting (kernels=%d bytes=%d) != legacy (kernels=%d bytes=%d)",
				scheme, mode, on.Kernels, on.MovedBytes, off.Kernels, off.MovedBytes)
		}
	}
	return nil
}

// CheckDeterminism runs sc twice under one scheme and asserts bit-identical
// observables: final sim clock, receive bytes, and per-category trace
// totals — the DESIGN §5 same-seed ⇒ same-timings invariant.
func CheckDeterminism(sc Scenario, scheme string) error {
	a, err := RunScenario(sc, scheme)
	if err != nil {
		return err
	}
	b, err := RunScenario(sc, scheme)
	if err != nil {
		return err
	}
	if a.FinalClock != b.FinalClock {
		return fmt.Errorf("conformance: %s nondeterministic final clock: %d vs %d ns",
			scheme, a.FinalClock, b.FinalClock)
	}
	if err := compare(scheme+"#1", scheme+"#2", a.Recv, b.Recv); err != nil {
		return err
	}
	for cat, ns := range a.Trace {
		if b.Trace[cat] != ns {
			return fmt.Errorf("conformance: %s nondeterministic trace[%s]: %d vs %d ns",
				scheme, cat, ns, b.Trace[cat])
		}
	}
	return nil
}
