package conformance

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// chaosScenario builds the canonical chaos exchange: a sparse-ish indexed
// layout large enough to cross protocol paths, exchanged inter-node where
// the fabric (and therefore the injector) is in the loop.
func chaosScenario(plan *fault.Plan) Scenario {
	lens := make([]int, 256)
	displs := make([]int, 256)
	for i := range lens {
		lens[i] = 4
		displs[i] = i * 6
	}
	t := datatype.Indexed(lens, displs, datatype.Float32)
	l := datatype.Commit(t)
	return Scenario{
		SendType: t, RecvType: t, Send: l, Recv: l,
		Count: 2, Seed: 1234, Faults: plan,
	}
}

// TestChaosAllSchemesAllPresets is the chaos conformance sweep: every DDT
// scheme survives every recoverable fault preset with byte-exact delivery
// and zero leaked requests, for several injection seeds.
func TestChaosAllSchemesAllPresets(t *testing.T) {
	seeds := []uint64{1, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, preset := range fault.PresetNames() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			injectedTotal := 0
			for _, seed := range seeds {
				plan, err := fault.Preset(preset, seed)
				if err != nil {
					t.Fatal(err)
				}
				sc := chaosScenario(plan)
				want := Expected(sc)
				for _, scheme := range SchemeNames() {
					res, err := RunScenario(sc, scheme)
					if plan.HasCrashes() {
						// Rank-crash presets are fail-stop, not recoverable:
						// delivery cannot be byte-exact when an endpoint dies.
						// The contract is instead ULFM-style — the run ends
						// (no stall), survivors see typed failures, and
						// nothing leaks (requests or half-fused jobs).
						if res == nil {
							t.Fatalf("seed %d %s: no result under crash preset (%v)", seed, scheme, err)
						}
						for _, e := range []error{res.SendErr, res.RecvErr} {
							if e != nil && !errors.Is(e, mpi.ErrRankFailed) && !errors.Is(e, mpi.ErrCommRevoked) {
								t.Fatalf("seed %d %s: untyped endpoint error under crash: %v", seed, scheme, e)
							}
						}
						if res.Leaked != 0 {
							t.Fatalf("seed %d %s: %d leaked requests", seed, scheme, res.Leaked)
						}
						if res.PendingFused != 0 {
							t.Fatalf("seed %d %s: %d fused jobs stranded", seed, scheme, res.PendingFused)
						}
						injectedTotal += res.FaultEvents
						continue
					}
					if err != nil {
						t.Fatalf("seed %d %s: %v", seed, scheme, err)
					}
					if err := compare("model", scheme, want, res.Recv); err != nil {
						t.Fatalf("seed %d: delivery not byte-exact under %s: %v", seed, preset, err)
					}
					if res.Leaked != 0 {
						t.Fatalf("seed %d %s: %d leaked requests", seed, scheme, res.Leaked)
					}
					if res.PendingFused != 0 {
						t.Fatalf("seed %d %s: %d fused jobs stranded", seed, scheme, res.PendingFused)
					}
					injectedTotal += res.FaultEvents
				}
			}
			if injectedTotal == 0 && preset != "kernel-failure" && preset != "rma-flaky" {
				// kernel-failure only fires on fused launches, so schemes
				// without fusion legitimately see zero events; rma-flaky
				// only fires on the one-sided put path (its chaos coverage
				// lives in internal/rma and the coll one-sided suite);
				// every other preset must have exercised recovery somewhere.
				t.Fatalf("preset %s never injected a fault across the sweep", preset)
			}
		})
	}
}

// TestChaosDeterministicReplay asserts the same-seed ⇒ same-everything
// invariant under active fault injection for a fusion and a non-fusion
// scheme: final clock, received bytes, and trace totals all reproduce.
func TestChaosDeterministicReplay(t *testing.T) {
	plan, err := fault.Preset("mixed", 99)
	if err != nil {
		t.Fatal(err)
	}
	sc := chaosScenario(plan)
	for _, scheme := range []string{"GPU-Sync", "Proposed-Tuned"} {
		if err := CheckDeterminism(sc, scheme); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

// TestChaosSeedChangesOutcome guards against the injector silently not
// drawing: two different seeds of a lossy plan must produce different fault
// sequences (same delivered bytes, different recovery timings or counts).
func TestChaosSeedChangesOutcome(t *testing.T) {
	mk := func(seed uint64) *Result {
		plan := &fault.Plan{Seed: seed, Link: fault.LinkPlan{DropProb: 0.1, CorruptProb: 0.1, DelayProb: 0.3}}
		res, err := RunScenario(chaosScenario(plan), "GPU-Sync")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(1), mk(2)
	if !bytes.Equal(a.Recv, b.Recv) {
		t.Fatal("delivered bytes must not depend on the fault seed")
	}
	if a.FinalClock == b.FinalClock && a.FaultEvents == b.FaultEvents {
		t.Fatalf("seeds 1 and 2 produced identical runs (clock %d, %d events) — injector not drawing?",
			a.FinalClock, a.FaultEvents)
	}
}

// TestChaosUnrecoverableSurfacesTypedErrors drives a link that drops every
// frame: the sender must fail with a typed retries-exhausted error, and the
// orphaned receiver (the failure notification is dropped too) must be
// caught by the sim watchdog rather than hanging.
func TestChaosUnrecoverableSurfacesTypedErrors(t *testing.T) {
	sc := chaosScenario(&fault.Plan{Seed: 3, Link: fault.LinkPlan{DropProb: 1}})
	sc.StallTimeoutNs = 50 * sim.Millisecond
	res, err := RunScenario(sc, "GPU-Sync")
	if err == nil {
		t.Fatal("expected a run error")
	}
	var stall *sim.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("run error %v, want *sim.StallError", err)
	}
	if res == nil {
		t.Fatal("partial result must be returned alongside the stall")
	}
	var op *mpi.OpError
	if !errors.As(res.SendErr, &op) || !errors.Is(res.SendErr, mpi.ErrRetriesExhausted) {
		t.Fatalf("send error %v, want *OpError wrapping ErrRetriesExhausted", res.SendErr)
	}
	if res.FaultEvents == 0 {
		t.Fatal("no fault events recorded for a 100% drop plan")
	}
	if res.PendingFused != 0 {
		t.Fatalf("%d fused jobs stranded after error path", res.PendingFused)
	}
}

// TestChaosGeneratedScenarios runs seeded generator scenarios (the same
// space the fuzzer explores) under the mixed preset: recovery must be
// byte-exact on arbitrary layouts, protocol modes, and chunkings.
func TestChaosGeneratedScenarios(t *testing.T) {
	n := 10
	if testing.Short() {
		n = 3
	}
	for seed := int64(0); seed < int64(n); seed++ {
		sc := GenScenario(seed)
		plan, err := fault.Preset("mixed", uint64(seed)+5)
		if err != nil {
			t.Fatal(err)
		}
		sc.Faults = plan
		want := Expected(sc)
		for _, scheme := range []string{"GPU-Sync", "Proposed-Tuned", "StagedHost"} {
			res, err := RunScenario(sc, scheme)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, scheme, err)
			}
			if err := compare("model", scheme, want, res.Recv); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if res.Leaked != 0 {
				t.Fatalf("seed %d %s: %d leaked requests", seed, scheme, res.Leaked)
			}
		}
	}
}
