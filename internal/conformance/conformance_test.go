package conformance

import (
	"testing"

	"repro/internal/datatype"
)

// scenarioSeeds reports how many generated scenarios the differential suite
// sweeps: at least 50 in the full run (the acceptance floor), a handful
// under -short.
func scenarioSeeds(t *testing.T) int {
	if testing.Short() {
		return 12
	}
	return 60
}

// TestSeedInputsDifferential runs the committed known-tricky decoder inputs
// (the same corpus the fuzz target starts from) through the full
// differential matrix.
func TestSeedInputsDifferential(t *testing.T) {
	for i, in := range SeedInputs {
		sc := DecodeScenario(in)
		if err := Differential(sc); err != nil {
			t.Errorf("seed input %d (% x): %v\n  send=%s recv=%s count=%d",
				i, in, err, sc.SendType.TypeName(), sc.RecvType.TypeName(), sc.Count)
		}
	}
}

// TestGeneratedDifferential sweeps generated scenarios over every scheme,
// asserting byte-identical receive buffers against the sequential model
// and against each other.
func TestGeneratedDifferential(t *testing.T) {
	n := scenarioSeeds(t)
	for seed := int64(0); seed < int64(n); seed++ {
		sc := GenScenario(seed)
		if err := Differential(sc); err != nil {
			t.Errorf("seed %d: %v\n  send=%s recv=%s count=%d rdv=%v eager=%d ipc-off=%v intra=%v pipe=%v",
				seed, err, sc.SendType.TypeName(), sc.RecvType.TypeName(), sc.Count,
				sc.Rendezvous, sc.EagerLimit, sc.DisableIPC, sc.IntraNode, sc.Pipeline)
		}
	}
}

// TestDeterminism replays scenarios under every scheme and asserts
// bit-identical clocks, buffers, and trace totals — the same-seed ⇒
// same-timings half of DESIGN §5.
func TestDeterminism(t *testing.T) {
	perScheme := 3
	if testing.Short() {
		perScheme = 1
	}
	for i, name := range SchemeNames() {
		for j := 0; j < perScheme; j++ {
			sc := GenScenario(int64(1000 + i*perScheme + j))
			if err := CheckDeterminism(sc, name); err != nil {
				t.Errorf("scheme %s seed %d: %v", name, 1000+i*perScheme+j, err)
			}
		}
	}
}

// TestDecoderBounded asserts the generator's own contract: every decoded
// type commits cleanly, respects the extent budget, and zero-payload types
// produce zero blocks (the subarray empty-slab regression).
func TestDecoderBounded(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		l := datatype.Commit(DecodeType(GenBytes(seed, 64)))
		// The budget bounds extent; Resized can pack payload up to 2x
		// denser than extent per nesting level, so size gets 2^(depth-1)
		// slack over the extent budget.
		const sizeBound = extentBudget << (maxDepth - 1)
		if l.SizeBytes < 0 || l.SizeBytes > sizeBound {
			t.Fatalf("seed %d: size %d outside [0, %d]", seed, l.SizeBytes, int64(sizeBound))
		}
		if l.SizeBytes == 0 && l.NumBlocks() != 0 {
			t.Fatalf("seed %d: zero-size layout has %d blocks", seed, l.NumBlocks())
		}
		var sum int64
		for _, b := range l.Blocks {
			if b.Offset < 0 || b.Len <= 0 {
				t.Fatalf("seed %d: bad block {%d %d}", seed, b.Offset, b.Len)
			}
			sum += b.Len
		}
		if sum != l.SizeBytes {
			t.Fatalf("seed %d: block lens sum %d != size %d", seed, sum, l.SizeBytes)
		}
	}
}

// TestEmptySlabSubarray pins the datatype bug this package first caught:
// a subarray with a zero outer subsize used to emit phantom blocks and
// panic Commit with "flatten lost bytes".
func TestEmptySlabSubarray(t *testing.T) {
	l := datatype.Commit(datatype.Subarray(
		[]int{4, 4}, []int{0, 2}, []int{0, 0}, datatype.Float32))
	if l.SizeBytes != 0 || l.NumBlocks() != 0 {
		t.Fatalf("empty slab: want 0 bytes 0 blocks, got %d bytes %d blocks",
			l.SizeBytes, l.NumBlocks())
	}
}

// FuzzSchemesAgree feeds arbitrary bytes through the scenario decoder and
// asserts the full differential property plus determinism for one scheme
// per input. The corpus seeds are SeedInputs; go-fuzz grows it from there.
func FuzzSchemesAgree(f *testing.F) {
	for _, in := range SeedInputs {
		f.Add(in)
	}
	names := SchemeNames()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("bounded decoder input")
		}
		sc := DecodeScenario(data)
		if err := Differential(sc); err != nil {
			t.Fatalf("%v (send=%s recv=%s count=%d)",
				err, sc.SendType.TypeName(), sc.RecvType.TypeName(), sc.Count)
		}
		// Rotate the determinism check over schemes by input shape so the
		// fuzz run spreads coverage instead of re-checking one scheme.
		pick := 0
		for _, b := range data {
			pick += int(b)
		}
		if err := CheckDeterminism(sc, names[pick%len(names)]); err != nil {
			t.Fatal(err)
		}
	})
}
