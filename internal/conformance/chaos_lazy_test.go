package conformance

import (
	"testing"

	"repro/internal/fault"
)

// TestChaosLazyDifferentialAllPresets is satellite oracle #4 of the lazy
// fault-tolerance work: for every fault preset and several injection
// seeds, a byte-exact chaos run and a lazy-bytes chaos run under the same
// plan must be observationally identical — same outcome (success or the
// same typed errors), same delivered checksum, same virtual clock, same
// fault-event and retransmission counts, zero leaks in both modes. This
// is what licenses trusting 1024-rank lazy chaos results: the fault
// machinery provably cannot tell the payload representations apart.
func TestChaosLazyDifferentialAllPresets(t *testing.T) {
	seeds := []uint64{1, 7}
	schemes := []string{"GPU-Sync", "Proposed-Tuned"}
	if testing.Short() {
		seeds = seeds[:1]
		schemes = schemes[1:]
	}
	for _, preset := range fault.PresetNames() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			for _, seed := range seeds {
				plan, err := fault.Preset(preset, seed)
				if err != nil {
					t.Fatal(err)
				}
				sc := chaosScenario(plan)
				for _, scheme := range schemes {
					if err := ChaosLazyDifferential(sc, scheme); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			}
		})
	}
}

// TestChaosLazyDeterminism runs the same lazy chaos scenario twice and
// requires bit-identical observables — same-seed ⇒ same-timings must keep
// holding when faults and lazy payloads combine.
func TestChaosLazyDeterminism(t *testing.T) {
	plan, err := fault.Preset("mixed", 5)
	if err != nil {
		t.Fatal(err)
	}
	sc := chaosScenario(plan)
	for _, scheme := range []string{"GPU-Sync", "Proposed-Tuned"} {
		a, err := RunScenarioPayload(sc, scheme, true)
		if err != nil {
			t.Fatalf("%s run 1: %v", scheme, err)
		}
		b, err := RunScenarioPayload(sc, scheme, true)
		if err != nil {
			t.Fatalf("%s run 2: %v", scheme, err)
		}
		if a.FinalClock != b.FinalClock || a.RecvSum != b.RecvSum ||
			a.FaultEvents != b.FaultEvents || a.Retrans != b.Retrans {
			t.Fatalf("%s lazy chaos replay diverged: clock %d/%d sum %#x/%#x events %d/%d retrans %d/%d",
				scheme, a.FinalClock, b.FinalClock, a.RecvSum, b.RecvSum,
				a.FaultEvents, b.FaultEvents, a.Retrans, b.Retrans)
		}
	}
}

// TestChaosLazyCorruptionForcesRetransmission pins the corrupt-splice path
// specifically: under a corrupt-heavy plan the lazy run must observe
// retransmissions (the CRC actually rejected damaged frames) and still
// deliver the exact-mode checksum.
func TestChaosLazyCorruptionForcesRetransmission(t *testing.T) {
	plan, err := fault.Preset("corrupt-heavy", 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := chaosScenario(plan)
	res, err := RunScenarioPayload(sc, "Proposed-Tuned", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retrans == 0 {
		t.Fatal("corrupt-heavy lazy run saw zero retransmissions — corruption not reaching the CRC path?")
	}
	exact, err := RunScenarioPayload(sc, "Proposed-Tuned", false)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecvSum != exact.RecvSum {
		t.Fatalf("lazy delivered %#x, exact %#x", res.RecvSum, exact.RecvSum)
	}
}
