package bench

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestRunBulkVerifiesAndTimes(t *testing.T) {
	r := RunBulk(BulkOptions{
		System: cluster.Lassen(), Scheme: "Proposed-Tuned",
		Workload: workload.MILC(), Dim: 8, Buffers: 4,
	})
	if r.VerifyErr != nil {
		t.Fatal(r.VerifyErr)
	}
	if r.AvgNs <= 0 {
		t.Fatalf("avg = %d", r.AvgNs)
	}
	if r.MsgBytes == 0 || r.Blocks == 0 {
		t.Fatalf("geometry missing: %+v", r)
	}
	if r.Breakdown.Total() == 0 {
		t.Fatal("breakdown empty")
	}
}

func TestRunBulkDeterministic(t *testing.T) {
	opt := BulkOptions{
		System: cluster.Lassen(), Scheme: "GPU-Sync",
		Workload: workload.Specfem3DOC(), Dim: 8, Buffers: 2,
	}
	a := RunBulk(opt)
	b := RunBulk(opt)
	if a.AvgNs != b.AvgNs {
		t.Fatalf("non-deterministic: %d vs %d", a.AvgNs, b.AvgNs)
	}
}

func TestRunBulkIntraNode(t *testing.T) {
	r := RunBulk(BulkOptions{
		System: cluster.Lassen(), Scheme: "Proposed-Tuned",
		Workload: workload.MILC(), Dim: 8, Buffers: 2, IntraNode: true,
	})
	if r.VerifyErr != nil {
		t.Fatal(r.VerifyErr)
	}
}

func TestRunBulkAllSchemesVerify(t *testing.T) {
	for _, s := range bulkSchemes {
		s := s
		t.Run(s, func(t *testing.T) {
			r := RunBulk(BulkOptions{
				System: cluster.ABCI(), Scheme: s,
				Workload: workload.Specfem3DCM(), Dim: 8, Buffers: 4,
			})
			if r.VerifyErr != nil {
				t.Fatal(r.VerifyErr)
			}
		})
	}
}

func TestRunBulkRPUT(t *testing.T) {
	r := RunBulk(BulkOptions{
		System: cluster.Lassen(), Scheme: "Proposed-Tuned",
		Workload: workload.NASMG(), Dim: 64, Buffers: 4,
		MutateMPI: mutRendezvous(mpi.RPUT),
	})
	if r.VerifyErr != nil {
		t.Fatal(r.VerifyErr)
	}
}

func TestFig1ShapesHold(t *testing.T) {
	tab := Fig1()
	if len(tab.Rows) != 8 { // 4 archs x 2 workloads
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// On every V100 row, launch overhead must exceed kernel time.
	for _, row := range tab.Rows {
		if strings.Contains(row[0], "V100") {
			var k, l float64
			if _, err := fmtScan(row[2], &k); err != nil {
				t.Fatal(err)
			}
			if _, err := fmtScan(row[3], &l); err != nil {
				t.Fatal(err)
			}
			if l <= k {
				t.Errorf("%s/%s: launch %.1f <= kernel %.1f", row[0], row[1], l, k)
			}
		}
	}
}

func TestFig9ProposedWinsSparseBulk(t *testing.T) {
	tab := Fig9()
	// Last row = 16 buffers. Columns: buffers, GPU-Sync, GPU-Async,
	// Hybrid, Proposed, Proposed-Tuned.
	last := tab.Rows[len(tab.Rows)-1]
	sync := mustF(t, last[1])
	hybrid := mustF(t, last[3])
	tuned := mustF(t, last[5])
	if tuned >= sync {
		t.Errorf("proposed-tuned (%f) should beat GPU-Sync (%f)", tuned, sync)
	}
	if tuned >= hybrid {
		t.Errorf("proposed-tuned (%f) should beat hybrid on sparse (%f)", tuned, hybrid)
	}
	if sync/tuned < 2 {
		t.Errorf("sparse win only %.1fx, paper reports up to ~6x", sync/tuned)
	}
}

func TestFig10HybridWinsSmallDense(t *testing.T) {
	tab := Fig10()
	// First row = 1 buffer: hybrid's CPU path should be competitive or
	// better vs the proposed design (paper: hybrid wins small dense).
	first := tab.Rows[0]
	hybrid := mustF(t, first[3])
	tuned := mustF(t, first[5])
	if hybrid > tuned {
		t.Errorf("hybrid (%f) should beat proposed (%f) at 1 small dense buffer", hybrid, tuned)
	}
	// Proposed must beat GPU-Sync and GPU-Async once there is bulk to
	// fuse (paper: improvement grows with outstanding operations; at a
	// single buffer it is a wash).
	for _, row := range tab.Rows {
		nbuf := mustF(t, row[0])
		if nbuf < 4 {
			continue
		}
		sync, async, tuned := mustF(t, row[1]), mustF(t, row[2]), mustF(t, row[5])
		if tuned >= sync || tuned >= async {
			t.Errorf("buffers=%s: proposed (%f) not beating sync (%f)/async (%f)", row[0], tuned, sync, async)
		}
	}
}

func TestFig11BreakdownShapes(t *testing.T) {
	tab := Fig11()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(scheme, cat string) float64 {
		ci := -1
		for i, h := range tab.Header {
			if h == cat {
				ci = i
			}
		}
		if ci < 0 {
			t.Fatalf("category %s missing", cat)
		}
		for _, row := range tab.Rows {
			if row[0] == scheme {
				return mustF(t, row[ci])
			}
		}
		t.Fatalf("scheme %s missing", scheme)
		return 0
	}
	// GPU-Sync has the highest Sync cost; the proposed design the lowest
	// launch cost (one fused launch vs dozens).
	if get("GPU-Sync", "Sync") <= get("Proposed-Tuned", "Sync") {
		t.Error("GPU-Sync should pay more Sync than proposed")
	}
	if get("Proposed-Tuned", "Launching") >= get("GPU-Sync", "Launching") {
		t.Error("proposed should pay less Launching than GPU-Sync")
	}
	if get("Proposed-Tuned", "Launching") >= get("GPU-Async", "Launching") {
		t.Error("proposed should pay less Launching than GPU-Async")
	}
}

func TestFig14ProposedTrouncesNaive(t *testing.T) {
	tab := Fig14()
	for _, row := range tab.Rows {
		// Columns: workload, dim, SpectrumMPI(=1.0x), OpenMPI,
		// MVAPICH2-GDR, Proposed.
		prop := mustX(t, row[5])
		spectrum := mustX(t, row[2])
		if spectrum != 1.0 {
			t.Errorf("%s: baseline not 1.0x: %f", row[0], spectrum)
		}
		if prop < 10 {
			t.Errorf("%s: proposed only %.1fx over SpectrumMPI, paper reports orders of magnitude", row[0], prop)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown figure must error")
	}
	tabs, err := Run("1")
	if err != nil || len(tabs) != 1 {
		t.Fatalf("Run(1): %v %d", err, len(tabs))
	}
	if len(Figures()) != 12 {
		t.Fatalf("figures list = %v", Figures())
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tab.String()
	if !strings.Contains(s, "# T") || !strings.Contains(s, "bb") {
		t.Fatalf("table render: %q", s)
	}
}

// --- small parse helpers ---

func fmtScan(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(s, 64)
	*out = v
	return 1, err
}

func mustF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// mustX parses "12.3x".
func mustX(t *testing.T, s string) float64 {
	t.Helper()
	return mustF(t, strings.TrimSuffix(s, "x"))
}

func TestRunBulkUnderFaultPlan(t *testing.T) {
	plan, err := fault.Preset("mixed", 11)
	if err != nil {
		t.Fatal(err)
	}
	SetFaultPlan(plan)
	defer SetFaultPlan(nil)
	opt := BulkOptions{
		System: cluster.Lassen(), Scheme: "Proposed-Tuned",
		Workload: workload.MILC(), Dim: 8, Buffers: 4,
	}
	a := RunBulk(opt)
	if a.VerifyErr != nil {
		t.Fatal(a.VerifyErr)
	}
	if a.Breakdown.Get(trace.Retrans) == 0 {
		t.Fatal("mixed plan injected nothing into the bulk measurement")
	}
	b := RunBulk(opt)
	if a.AvgNs != b.AvgNs {
		t.Fatalf("chaos measurement non-deterministic: %d vs %d", a.AvgNs, b.AvgNs)
	}
	SetFaultPlan(nil)
	c := RunBulk(opt)
	if c.Breakdown.Get(trace.Retrans) != 0 {
		t.Fatal("fault plan leaked into a faults-off measurement")
	}
}
