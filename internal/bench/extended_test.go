package bench

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func TestExtendedWorkloadsAllVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full eight-workload sweep")
	}
	tab := ExtendedWorkloads(cluster.Lassen())
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, c := range row {
			if c == "CORRUPT" {
				t.Fatalf("%v corrupted", row)
			}
		}
		// Fusion must beat GPU-Sync on every workload at 16 buffers.
		sync, tuned := mustF(t, row[4]), mustF(t, row[5])
		if tuned >= sync {
			t.Errorf("%s: tuned (%f) not beating GPU-Sync (%f)", row[0], tuned, sync)
		}
	}
}

func TestScalingFlatAcrossNodes(t *testing.T) {
	tab := Scaling(cluster.Lassen(), workload.MILC(), 16)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Ring load per link is constant, so latency must not blow up with
	// node count (allow 50% growth for barrier skew).
	first := mustF(t, tab.Rows[0][2])
	last := mustF(t, tab.Rows[len(tab.Rows)-1][2])
	if last > first*1.5 {
		t.Fatalf("scaling not flat: 2 nodes %.1fus vs 8 nodes %.1fus", first, last)
	}
	// Fusion wins at every scale.
	for _, row := range tab.Rows {
		sync, tuned := mustF(t, row[1]), mustF(t, row[2])
		if tuned >= sync {
			t.Errorf("nodes=%s: tuned (%f) not beating sync (%f)", row[0], tuned, sync)
		}
	}
}

func TestCSVRendering(t *testing.T) {
	tab := &Table{
		Title:  "x",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", `has,comma`}, {"2", `has"quote`}},
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[1] != `1,"has,comma"` {
		t.Fatalf("comma escape: %q", lines[1])
	}
	if lines[2] != `2,"has""quote"` {
		t.Fatalf("quote escape: %q", lines[2])
	}
}

func TestTableOneShapes(t *testing.T) {
	tab := TableOne()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	col := func(name string) int {
		for i, h := range tab.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %s missing", name)
		return -1
	}
	driver, lat := col("driver_us/msg"), col("latency_us")
	get := func(scheme string, c int) float64 {
		for _, row := range tab.Rows {
			if row[0] == scheme {
				return mustF(t, row[c])
			}
		}
		t.Fatalf("scheme %s missing", scheme)
		return 0
	}
	// Table I: proposed has Low driver overhead and Low latency.
	if get("Proposed-Tuned", driver) >= get("GPU-Sync", driver) {
		t.Error("proposed driver overhead should undercut GPU-Sync")
	}
	if get("Proposed-Tuned", lat) >= get("GPU-Sync", lat) {
		t.Error("proposed latency should undercut GPU-Sync")
	}
}

func TestIPCPathsOrdering(t *testing.T) {
	tab := IPCPaths(cluster.Lassen())
	ipc := mustF(t, tab.Rows[0][1])
	packed := mustF(t, tab.Rows[1][1])
	inter := mustF(t, tab.Rows[2][1])
	if ipc >= packed {
		t.Errorf("DirectIPC (%f) should beat the packed intra-node path (%f)", ipc, packed)
	}
	if ipc >= inter {
		t.Errorf("DirectIPC (%f) should beat inter-node IB (%f)", ipc, inter)
	}
}
