package bench

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/coll"
)

// TestRMAFigAcceptance is the CI gate on the one-sided backend's headline
// claim: on the 8-rank exact workload the put-based schedules must beat
// the two-sided ring on modeled latency, and at least one of them must
// also burn fewer progress events. The per-kind plan counters and the
// reuse column must be live.
func TestRMAFigAcceptance(t *testing.T) {
	tab := RMAFig(8)
	if len(tab.Rows) != len(rmaAlgs) {
		t.Fatalf("want %d rows at 8 ranks, got %d", len(rmaAlgs), len(tab.Rows))
	}
	type row struct {
		timeUs   float64
		progress int64
		puts     int64
		plans    string
		reuse    int64
	}
	byAlg := map[string]row{}
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[3], "ERROR") {
			t.Fatalf("row %v errored", r)
		}
		tUs, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatalf("row %v: bad time_us: %v", r, err)
		}
		prog, _ := strconv.ParseInt(r[5], 10, 64)
		puts, _ := strconv.ParseInt(r[7], 10, 64)
		reuse, _ := strconv.ParseInt(r[10], 10, 64)
		byAlg[r[2]] = row{timeUs: tUs, progress: prog, puts: puts, plans: r[9], reuse: reuse}
	}
	base, ok := byAlg[coll.Ring.String()]
	if !ok {
		t.Fatalf("no two-sided ring baseline row: %v", byAlg)
	}
	if base.puts != 0 {
		t.Fatalf("two-sided baseline touched the one-sided fabric: %+v", base)
	}
	var fewerProgress bool
	for _, alg := range []coll.Algorithm{coll.OneSidedRing, coll.OneSidedBruck} {
		os, ok := byAlg[alg.String()]
		if !ok {
			t.Fatalf("no %s row", alg)
		}
		if os.timeUs >= base.timeUs {
			t.Errorf("%s: %.1f us, not below the two-sided ring's %.1f us", alg, os.timeUs, base.timeUs)
		}
		if os.puts == 0 {
			t.Errorf("%s row recorded no puts", alg)
		}
		if os.progress < base.progress {
			fewerProgress = true
		}
	}
	if !fewerProgress {
		t.Errorf("no put-based schedule burned fewer progress events than the baseline (%d)", base.progress)
	}
	for alg, r := range byAlg {
		if !strings.Contains(r.plans, "strided:") {
			t.Errorf("%s: plan_compiles %q does not count the strided pack plan", alg, r.plans)
		}
		if r.reuse == 0 {
			t.Errorf("%s: plan cache recorded no reuse", alg)
		}
	}
}

// TestRMAA2ACtrlPuts is the CI gate on the symmetric-prefix offset
// negotiation: on two back-to-back identical one-sided Alltoallws, the
// first call must pay exactly 2(n-1) zero-byte control SignalPuts per
// rank (both parity regions, every peer) and the second call must issue
// zero — the negotiated offsets persist across calls — which also shows
// up as strictly fewer network messages on the repeat call.
func TestRMAA2ACtrlPuts(t *testing.T) {
	tab := RMAA2AFig(8)
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 rows at 8 ranks, got %d", len(tab.Rows))
	}
	const ranks = 8
	wantCtrl := int64(ranks * 2 * (ranks - 1))
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[3], "ERROR") {
			t.Fatalf("row %v errored", r)
		}
		ctrl1, _ := strconv.ParseInt(r[4], 10, 64)
		ctrl2, _ := strconv.ParseInt(r[5], 10, 64)
		msgs1, _ := strconv.ParseInt(r[6], 10, 64)
		msgs2, _ := strconv.ParseInt(r[7], 10, 64)
		puts, _ := strconv.ParseInt(r[8], 10, 64)
		if ctrl1 != wantCtrl {
			t.Errorf("%s: first call issued %d control puts, want %d", r[2], ctrl1, wantCtrl)
		}
		if ctrl2 != 0 {
			t.Errorf("%s: repeat call issued %d control puts, want 0 (offsets must persist)", r[2], ctrl2)
		}
		if msgs2 >= msgs1 {
			t.Errorf("%s: repeat call sent %d network messages, not below the first call's %d", r[2], msgs2, msgs1)
		}
		if puts == 0 {
			t.Errorf("%s: no puts recorded", r[2])
		}
	}
}

// TestRMAA2AExactLazyAgree: the two-call Alltoallw cell must report the
// same virtual clock, per-call message counts, and per-call control puts
// in both payload modes.
func TestRMAA2AExactLazyAgree(t *testing.T) {
	ex, exCtrl, exMsgs, err := runRMAAlltoallw(8, false, coll.OneSidedBruck)
	if err != nil {
		t.Fatal(err)
	}
	lz, lzCtrl, lzMsgs, err := runRMAAlltoallw(8, true, coll.OneSidedBruck)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ns != lz.ns || exCtrl != lzCtrl || exMsgs != lzMsgs {
		t.Fatalf("exact/lazy diverged: ns %d vs %d, ctrl %v vs %v, msgs %v vs %v",
			ex.ns, lz.ns, exCtrl, lzCtrl, exMsgs, lzMsgs)
	}
}

// TestRMAFigExactLazyAgree: the one-sided ring cell must report the same
// virtual completion time, message count, and kernel launches in both
// payload modes — the bench-level echo of the lazy conformance oracle.
func TestRMAFigExactLazyAgree(t *testing.T) {
	ex, err := runRMAAllgatherv(8, false, coll.OneSidedRing)
	if err != nil {
		t.Fatal(err)
	}
	lz, err := runRMAAllgatherv(8, true, coll.OneSidedRing)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ns != lz.ns || ex.msgs != lz.msgs || ex.launches != lz.launches {
		t.Fatalf("exact/lazy diverged: ns %d vs %d, msgs %d vs %d, launches %d vs %d",
			ex.ns, lz.ns, ex.msgs, lz.msgs, ex.launches, lz.launches)
	}
}
