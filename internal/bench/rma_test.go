package bench

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/coll"
)

// TestRMAFigAcceptance is the CI gate on the one-sided backend's headline
// claim: on the 8-rank exact workload the put-based schedules must beat
// the two-sided ring on modeled latency, and at least one of them must
// also burn fewer progress events. The per-kind plan counters and the
// reuse column must be live.
func TestRMAFigAcceptance(t *testing.T) {
	tab := RMAFig(8)
	if len(tab.Rows) != len(rmaAlgs) {
		t.Fatalf("want %d rows at 8 ranks, got %d", len(rmaAlgs), len(tab.Rows))
	}
	type row struct {
		timeUs   float64
		progress int64
		puts     int64
		plans    string
		reuse    int64
	}
	byAlg := map[string]row{}
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[3], "ERROR") {
			t.Fatalf("row %v errored", r)
		}
		tUs, err := strconv.ParseFloat(r[3], 64)
		if err != nil {
			t.Fatalf("row %v: bad time_us: %v", r, err)
		}
		prog, _ := strconv.ParseInt(r[5], 10, 64)
		puts, _ := strconv.ParseInt(r[7], 10, 64)
		reuse, _ := strconv.ParseInt(r[10], 10, 64)
		byAlg[r[2]] = row{timeUs: tUs, progress: prog, puts: puts, plans: r[9], reuse: reuse}
	}
	base, ok := byAlg[coll.Ring.String()]
	if !ok {
		t.Fatalf("no two-sided ring baseline row: %v", byAlg)
	}
	if base.puts != 0 {
		t.Fatalf("two-sided baseline touched the one-sided fabric: %+v", base)
	}
	var fewerProgress bool
	for _, alg := range []coll.Algorithm{coll.OneSidedRing, coll.OneSidedBruck} {
		os, ok := byAlg[alg.String()]
		if !ok {
			t.Fatalf("no %s row", alg)
		}
		if os.timeUs >= base.timeUs {
			t.Errorf("%s: %.1f us, not below the two-sided ring's %.1f us", alg, os.timeUs, base.timeUs)
		}
		if os.puts == 0 {
			t.Errorf("%s row recorded no puts", alg)
		}
		if os.progress < base.progress {
			fewerProgress = true
		}
	}
	if !fewerProgress {
		t.Errorf("no put-based schedule burned fewer progress events than the baseline (%d)", base.progress)
	}
	for alg, r := range byAlg {
		if !strings.Contains(r.plans, "strided:") {
			t.Errorf("%s: plan_compiles %q does not count the strided pack plan", alg, r.plans)
		}
		if r.reuse == 0 {
			t.Errorf("%s: plan cache recorded no reuse", alg)
		}
	}
}

// TestRMAFigExactLazyAgree: the one-sided ring cell must report the same
// virtual completion time, message count, and kernel launches in both
// payload modes — the bench-level echo of the lazy conformance oracle.
func TestRMAFigExactLazyAgree(t *testing.T) {
	ex, err := runRMAAllgatherv(8, false, coll.OneSidedRing)
	if err != nil {
		t.Fatal(err)
	}
	lz, err := runRMAAllgatherv(8, true, coll.OneSidedRing)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ns != lz.ns || ex.msgs != lz.msgs || ex.launches != lz.launches {
		t.Fatalf("exact/lazy diverged: ns %d vs %d, msgs %d vs %d, launches %d vs %d",
			ex.ns, lz.ns, ex.msgs, lz.msgs, ex.launches, lz.launches)
	}
}
