package bench

import (
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func TestPackPlansTable(t *testing.T) {
	tab := PackPlans()
	var want int
	for _, w := range workload.All() {
		want += len(planDims(w))
	}
	if len(tab.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), want)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(tab.Header))
		}
		// Host timings are noisy; assert sanity, not speed: both arms
		// measured something positive.
		for _, col := range []int{6, 7} {
			ns, err := strconv.ParseInt(row[col], 10, 64)
			if err != nil || ns <= 0 {
				t.Errorf("row %v: column %d is not a positive timing", row, col)
			}
		}
	}
}

func TestPlanCountersTable(t *testing.T) {
	tab := PlanCounters(cluster.Lassen())
	if len(tab.Rows) != len(workload.All()) {
		t.Fatalf("rows = %d, want one per workload", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[0] != "plan" {
			t.Fatalf("counter row label = %q, want \"plan\"", row[0])
		}
		if row[3] == "ERR" || row[4] == "ERR" {
			t.Fatalf("row %v reports an exchange error", row)
		}
		hits, _ := strconv.ParseInt(row[3], 10, 64)
		misses, _ := strconv.ParseInt(row[4], 10, 64)
		if hits == 0 || misses == 0 {
			t.Errorf("row %v: warm exchange should report hits and misses", row)
		}
		var compiled int64
		for _, col := range []int{6, 7, 8} {
			n, _ := strconv.ParseInt(row[col], 10, 64)
			compiled += n
		}
		if compiled == 0 {
			t.Errorf("row %v: no plans compiled", row)
		}
	}
}
