package bench

import (
	"fmt"
	"strings"

	"repro/internal/coll"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/rma"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// The rma figure (ddtbench -fig rma) compares the put-based one-sided
// collectives against the two-sided rendezvous baseline on the same
// Allgatherv workload: every rank contributes one 32 KiB strided leg —
// well above the eager limit, so the two-sided path pays the RTS/CTS
// rendezvous round-trip that a put replaces with a single doorbell.
// Rows run at 8 ranks in exact-payload mode and at 64/256 ranks in lazy
// mode (same split as -fig scale: real bytes stop where memory would
// scale with ranks x message size).

// rmaMeasure is one collective run under the rma figure: virtual
// completion time, fabric message count, progress events (Sync-category
// timeline events: progress-engine polls, stream syncs, signal waits),
// kernel launches, plan-cache counters, and — for one-sided rows — the
// fabric's own verb counters.
type rmaMeasure struct {
	ns       int64
	msgs     int64
	progress int64
	launches int64
	plans    [datatype.NumPlanKinds]int64
	reuse    int64
	rma      rma.Stats
}

// runRMAAllgatherv runs one Allgatherv over ranks (Lassen model,
// ranks/4 nodes) and measures it. One-sided algorithms get an explicit
// fabric so the verb counters can be read back; two-sided algorithms
// never touch it.
func runRMAAllgatherv(ranks int, lazy bool, alg coll.Algorithm) (rmaMeasure, error) {
	env, w, err := scaleWorldCfg(ranks, lazy, func(c *mpi.Config) {
		// A small ring per rank: Count() stays exact when events drop,
		// and the rma figure only reads counts, never the events.
		c.Timeline = &timeline.Options{Capacity: 64}
	})
	if err != nil {
		return rmaMeasure{}, err
	}
	l := collLayout() // 32 KiB strided legs
	size := w.Size()
	sends := make([]coll.VOp, size)
	recvs := make([][]coll.VOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		sb := dev.Alloc(fmt.Sprintf("rma-s-%d", r), int(l.ExtentBytes))
		sb.FillStream(uint64(r + 1))
		sends[r] = coll.VOp{Buf: sb, Type: l, Count: 1}
		recvs[r] = make([]coll.VOp, size)
		for src := 0; src < size; src++ {
			rb := dev.Alloc(fmt.Sprintf("rma-r-%d-%d", r, src), int(l.ExtentBytes))
			recvs[r][src] = coll.VOp{Buf: rb, Type: l, Count: 1}
		}
	}
	e := coll.New(w, coll.Tuning{Allgatherv: alg})
	f := rma.New(w)
	e.UseRMA(f)
	var bodyErr error
	err = w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Allgatherv(p, r, sends[r.ID()], recvs[r.ID()]); cerr != nil && bodyErr == nil {
			bodyErr = fmt.Errorf("rank %d: %w", r.ID(), cerr)
		}
	})
	if err == nil {
		err = bodyErr
	}
	if err == nil {
		if lk := w.LeakedRequests(); lk != 0 {
			err = fmt.Errorf("bench: rma run leaked %d requests", lk)
		}
	}
	if err == nil {
		if po := f.PendingOps(); po != 0 {
			err = fmt.Errorf("bench: rma run left %d one-sided ops pending", po)
		}
	}
	m := rmaMeasure{
		ns:   env.Now(),
		msgs: w.Cluster.Net.TotalMessages(),
		rma:  f.TotalStats(),
	}
	tl := w.Timeline()
	for i := 0; i < size; i++ {
		m.launches += w.Rank(i).Dev.Stats.KernelLaunches
		m.progress += tl.Rank(i).Count(trace.Sync)
		cs := w.Rank(i).CacheStats()
		m.reuse += cs.Hits
		for k := range cs.Compiled {
			m.plans[k] += cs.Compiled[k]
		}
	}
	return m, err
}

// fmtPlanKinds renders the per-kind plan-compile counters compactly,
// omitting kinds that never compiled ("strided:8 gather:2").
func fmtPlanKinds(plans [datatype.NumPlanKinds]int64) string {
	var parts []string
	for k, n := range plans {
		if n != 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", datatype.PlanKind(k), n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// rmaRow runs one (ranks, mode, algorithm) cell and renders it.
func rmaRow(ranks int, lazy bool, alg coll.Algorithm) []string {
	mode := "exact"
	if lazy {
		mode = "lazy"
	}
	m, err := runRMAAllgatherv(ranks, lazy, alg)
	if err != nil {
		return []string{fmt.Sprint(ranks), mode, alg.String(), "ERROR: " + err.Error(), "", "", "", "", "", "", ""}
	}
	return []string{
		fmt.Sprint(ranks), mode, alg.String(),
		fmtUs(m.ns),
		fmt.Sprint(m.msgs),
		fmt.Sprint(m.progress),
		fmt.Sprint(m.launches),
		fmt.Sprint(m.rma.PackPuts + m.rma.Puts),
		fmt.Sprint(m.rma.Doorbells),
		fmtPlanKinds(m.plans),
		fmt.Sprint(m.reuse),
	}
}

// rmaAlgs is the algorithm menu of the rma figure: the two-sided ring
// baseline against both put-based one-sided schedules.
var rmaAlgs = []coll.Algorithm{coll.Ring, coll.OneSidedRing, coll.OneSidedBruck}

// runRMAAlltoallw runs two back-to-back identical Alltoallws over the
// one-sided backend on a persistent engine and splits the fabric's
// control-put and network-message counters per call: the first call
// negotiates the symmetric-prefix deposit offsets (2(n-1) zero-byte
// control SignalPuts per rank, one per peer per parity region), and a
// repeat call with the same shape must reuse them and issue zero.
func runRMAAlltoallw(ranks int, lazy bool, alg coll.Algorithm) (rmaMeasure, [2]int64, [2]int64, error) {
	var ctrl, msgs [2]int64
	env, w, err := scaleWorldCfg(ranks, lazy, func(c *mpi.Config) {
		c.Timeline = &timeline.Options{Capacity: 64}
	})
	if err != nil {
		return rmaMeasure{}, ctrl, msgs, err
	}
	l := collLayout() // 32 KiB strided legs
	size := w.Size()
	ops := make([][]coll.WOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		ops[r] = make([]coll.WOp, size)
		for peer := 0; peer < size; peer++ {
			sb := dev.Alloc(fmt.Sprintf("a2a-s-%d-%d", r, peer), int(l.ExtentBytes))
			rb := dev.Alloc(fmt.Sprintf("a2a-r-%d-%d", r, peer), int(l.ExtentBytes))
			sb.FillStream(uint64(r*1000 + peer + 1))
			ops[r][peer] = coll.WOp{SendBuf: sb, SendType: l, SendCount: 1, RecvBuf: rb, RecvType: l, RecvCount: 1}
		}
	}
	e := coll.New(w, coll.Tuning{Alltoallw: alg})
	f := rma.New(w)
	e.UseRMA(f)
	var bodyErr error
	err = w.Run(func(r *mpi.Rank, p *sim.Proc) {
		for k := 0; k < 2; k++ {
			if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil && bodyErr == nil {
				bodyErr = fmt.Errorf("rank %d call %d: %w", r.ID(), k, cerr)
			}
			// Double barrier: every rank finishes call k, rank 0 snapshots
			// the cumulative counters, then everyone proceeds to call k+1.
			w.Barrier(p)
			if r.ID() == 0 {
				ctrl[k] = f.TotalStats().CtrlPuts
				msgs[k] = w.Cluster.Net.TotalMessages()
			}
			w.Barrier(p)
		}
	})
	if err == nil {
		err = bodyErr
	}
	if err == nil {
		if lk := w.LeakedRequests(); lk != 0 {
			err = fmt.Errorf("bench: rma a2a run leaked %d requests", lk)
		}
	}
	if err == nil {
		if po := f.PendingOps(); po != 0 {
			err = fmt.Errorf("bench: rma a2a run left %d one-sided ops pending", po)
		}
	}
	m := rmaMeasure{
		ns:   env.Now(),
		msgs: w.Cluster.Net.TotalMessages(),
		rma:  f.TotalStats(),
	}
	// Turn the cumulative snapshots into per-call deltas.
	ctrl[1] -= ctrl[0]
	msgs[1] -= msgs[0]
	return m, ctrl, msgs, err
}

// rmaA2ARow runs one (ranks, mode, algorithm) Alltoallw cell and renders it.
func rmaA2ARow(ranks int, lazy bool, alg coll.Algorithm) []string {
	mode := "exact"
	if lazy {
		mode = "lazy"
	}
	m, ctrl, msgs, err := runRMAAlltoallw(ranks, lazy, alg)
	if err != nil {
		return []string{fmt.Sprint(ranks), mode, alg.String(), "ERROR: " + err.Error(), "", "", "", "", "", ""}
	}
	return []string{
		fmt.Sprint(ranks), mode, alg.String(),
		fmtUs(m.ns),
		fmt.Sprint(ctrl[0]),
		fmt.Sprint(ctrl[1]),
		fmt.Sprint(msgs[0]),
		fmt.Sprint(msgs[1]),
		fmt.Sprint(m.rma.PackPuts + m.rma.Puts),
		fmt.Sprint(m.rma.Doorbells),
	}
}

// RMAA2AFig is the control-traffic table of the rma figure: two
// back-to-back one-sided Alltoallws with the same shape, control puts and
// network messages split per call. The first call pays the
// symmetric-prefix offset negotiation (2(n-1) zero-byte SignalPuts per
// rank); the second call must issue zero control puts and correspondingly
// fewer network messages — the persistent-engine claim, stated as a
// counter.
func RMAA2AFig(maxRanks int) *Table {
	t := &Table{
		Title: "One-sided Alltoallw control traffic: offset negotiation paid once per shape, not per call",
		Header: []string{"ranks", "mode", "algorithm", "time_us",
			"ctrl_puts_c1", "ctrl_puts_c2", "net_msgs_c1", "net_msgs_c2", "puts", "doorbells"},
	}
	for _, ranks := range []int{8, 64, 256} {
		if ranks > maxRanks {
			continue
		}
		lazy := ranks > 8
		for _, alg := range []coll.Algorithm{coll.OneSidedRing, coll.OneSidedBruck} {
			t.Rows = append(t.Rows, rmaA2ARow(ranks, lazy, alg))
		}
	}
	return t
}

// RMAFig is the one-sided-backend benchmark table (ddtbench -fig rma):
// put-based ring and Bruck Allgatherv against the two-sided ring at
// {8, 64, 256} ranks (capped at maxRanks). progress_ev counts
// Sync-category timeline events — the polls and stream syncs a blocked
// rank burns; puts retire on the NIC without the receiver polling a
// rendezvous state machine, so the one-sided rows show both lower
// modeled latency and fewer progress events. plan_compiles/plan_reuse
// expose the pack-plan cache per kind: every rank compiles its strided
// leg once and the fused pack-puts replay the cached plan.
func RMAFig(maxRanks int) *Table {
	t := &Table{
		Title: fmt.Sprintf("One-sided RMA backend: put-based vs two-sided Allgatherv, 32 KiB strided legs, Lassen model, poll %d ns",
			int64(scalePollNs)),
		Header: []string{"ranks", "mode", "algorithm", "time_us", "net_msgs", "progress_ev", "launches", "puts", "doorbells", "plan_compiles", "plan_reuse"},
	}
	for _, ranks := range []int{8, 64, 256} {
		if ranks > maxRanks {
			continue
		}
		lazy := ranks > 8
		for _, alg := range rmaAlgs {
			t.Rows = append(t.Rows, rmaRow(ranks, lazy, alg))
		}
	}
	return t
}
