package bench

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/workload"
)

// CSV renders the table as comma-separated values (for plotting).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// ExtendedWorkloads sweeps every implemented ddtbench workload (the
// paper's four plus WRF, LAMMPS_full, NAS_LU, FFT2D) under the legacy
// GPU-Sync scheme, the tuned proposal, and the auto-tuned variant.
func ExtendedWorkloads(system cluster.Spec) *Table {
	schemesList := []string{"GPU-Sync", "Proposed-Tuned", "Proposed-Auto"}
	t := &Table{
		Title:  fmt.Sprintf("Extended workloads, 16 buffers, %s (us, lower is better)", system.Name),
		Header: append([]string{"workload", "dim", "blocks", "msg_KB"}, schemesList...),
	}
	for _, wl := range workload.Extended() {
		dim := wl.Dims[len(wl.Dims)/2]
		l := wl.Layout(dim)
		row := []string{wl.Name, fmt.Sprint(dim), fmt.Sprint(l.NumBlocks()),
			fmt.Sprintf("%.1f", float64(l.SizeBytes)/1024)}
		for _, s := range schemesList {
			r := RunBulk(BulkOptions{System: system, Scheme: s, Workload: wl, Dim: dim, Buffers: 16})
			row = append(row, cell(r))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Scaling runs a ring halo exchange across an increasing number of nodes
// (one active GPU per node), the paper's "running at scale" future-work
// direction: per-step latency should stay flat as the ring grows because
// every link carries the same load.
func Scaling(base cluster.Spec, wl workload.Workload, dim int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Node scaling: ring exchange, %s dim=%d, %s (us per step)", wl.Name, dim, base.Name),
		Header: []string{"nodes", "GPU-Sync", "Proposed-Tuned"},
	}
	for _, nodes := range []int{2, 4, 8} {
		row := []string{fmt.Sprint(nodes)}
		for _, scheme := range []string{"GPU-Sync", "Proposed-Tuned"} {
			r := runRing(base.WithNodes(nodes), scheme, wl, dim)
			if r < 0 {
				row = append(row, "CORRUPT")
			} else {
				row = append(row, fmtUs(r))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// runRing measures a node-ring exchange: GPU 0 of each node sends to GPU 0
// of the next node and receives from the previous, 8 buffers per step.
func runRing(spec cluster.Spec, scheme string, wl workload.Workload, dim int) int64 {
	const nbuf, warmup, iters = 8, 2, 3
	env := sim.NewEnv()
	cl := cluster.MustBuild(env, spec)
	w := mpi.NewWorld(cl, mpi.DefaultConfig(), schemes.Factory(scheme))
	l := wl.Layout(dim)
	g := spec.GPUsPerNode
	nodes := spec.Nodes
	actor := func(rank int) (node int, active bool) {
		return rank / g, rank%g == 0
	}
	sbufs := make(map[int][]*gpu.Buffer)
	rbufs := make(map[int][]*gpu.Buffer)
	for rk := 0; rk < w.Size(); rk++ {
		if _, active := actor(rk); !active {
			continue
		}
		for i := 0; i < nbuf; i++ {
			sb := w.Rank(rk).Dev.Alloc(fmt.Sprintf("s%d-%d", rk, i), int(l.ExtentBytes))
			workload.FillPattern(sb.Data, uint64(rk*97+i))
			sbufs[rk] = append(sbufs[rk], sb)
			rbufs[rk] = append(rbufs[rk], w.Rank(rk).Dev.Alloc(fmt.Sprintf("r%d-%d", rk, i), int(l.ExtentBytes)))
		}
	}
	var total int64
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		node, active := actor(r.ID())
		next := ((node + 1) % nodes) * g
		prev := ((node + nodes - 1) % nodes) * g
		for it := 0; it < warmup+iters; it++ {
			w.Barrier(p)
			t0 := p.Now()
			if active {
				var reqs []*mpi.Request
				for i := 0; i < nbuf; i++ {
					reqs = append(reqs, r.Irecv(p, prev, i, rbufs[r.ID()][i], l, 1))
				}
				for i := 0; i < nbuf; i++ {
					reqs = append(reqs, r.Isend(p, next, i, sbufs[r.ID()][i], l, 1))
				}
				r.Waitall(p, reqs)
			}
			w.Barrier(p)
			if r.ID() == 0 && it >= warmup {
				total += p.Now() - t0
			}
		}
	})
	if err != nil {
		return -1
	}
	// Verify the whole ring.
	for rk := range rbufs {
		node := rk / g
		prevRank := ((node + nodes - 1) % nodes) * g
		for i := 0; i < nbuf; i++ {
			if workload.VerifyBlocks(l, 1, sbufs[prevRank][i].Data, rbufs[rk][i].Data) != nil {
				return -1
			}
		}
	}
	return total / iters
}

// IPCPaths compares the three ways a same-node exchange can travel:
// DirectIPC fused into kernels (zero-copy over NVLink), the packed path
// with IPC disabled (pack -> peer copy -> unpack), and the equivalent
// inter-node exchange over InfiniBand — quantifying the zero-copy win of
// [24] that the fusion framework inherits as its third request type.
func IPCPaths(system cluster.Spec) *Table {
	wl := workload.MILC()
	const dim, nbuf = 16, 8
	t := &Table{
		Title:  fmt.Sprintf("DirectIPC paths: %s dim=%d, %d buffers, %s (us)", wl.Name, dim, nbuf, system.Name),
		Header: []string{"path", "latency_us"},
	}
	cases := []struct {
		name  string
		intra bool
		mut   func(*mpi.Config)
	}{
		{"intra-node DirectIPC (fused)", true, nil},
		{"intra-node packed (IPC off)", true, func(c *mpi.Config) { c.DisableIPC = true }},
		{"inter-node over IB", false, nil},
	}
	for _, cse := range cases {
		r := RunBulk(BulkOptions{
			System: system, Scheme: "Proposed-Tuned", Workload: wl,
			Dim: dim, Buffers: nbuf, IntraNode: cse.intra, MutateMPI: cse.mut,
		})
		t.Rows = append(t.Rows, []string{cse.name, cell(r)})
	}
	return t
}
