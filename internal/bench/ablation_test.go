package bench

import "testing"

func TestAblationSyncVsStatusPoll(t *testing.T) {
	tab := AblationSyncVsStatusPoll()
	poll := mustF(t, tab.Rows[0][1])
	sync := mustF(t, tab.Rows[1][1])
	if poll >= sync {
		t.Fatalf("status-poll (%f) should beat boundary-sync (%f)", poll, sync)
	}
}

func TestAblationFlushPolicy(t *testing.T) {
	tab := AblationFlushPolicy()
	nothing := mustF(t, tab.Rows[0][1])
	tuned := mustF(t, tab.Rows[1][1])
	if tuned >= nothing {
		t.Fatalf("tuned threshold (%f) should beat fuse-nothing (%f)", tuned, nothing)
	}
	// fuse-everything delays communication; it must not beat tuned.
	everything := mustF(t, tab.Rows[2][1])
	if everything < tuned {
		t.Fatalf("fuse-everything (%f) unexpectedly beats tuned (%f)", everything, tuned)
	}
}

func TestAblationPartitioning(t *testing.T) {
	tab := AblationPartitioning()
	prop := mustF(t, tab.Rows[0][1])
	uniform := mustF(t, tab.Rows[1][1])
	if prop > uniform {
		t.Fatalf("work-proportional (%f) should not lose to uniform (%f)", prop, uniform)
	}
}

func TestAblationRendezvous(t *testing.T) {
	tab := AblationRendezvous()
	rget := mustF(t, tab.Rows[0][1])
	rput := mustF(t, tab.Rows[1][1])
	// RPUT overlaps the handshake with packing; it should not be slower.
	if rput > rget*1.05 {
		t.Fatalf("RPUT (%f) should not be slower than RGET (%f)", rput, rget)
	}
}

func TestAblationLayoutCache(t *testing.T) {
	tab := AblationLayoutCache()
	cached := mustF(t, tab.Rows[0][1])
	uncached := mustF(t, tab.Rows[1][1])
	if cached >= uncached {
		t.Fatalf("cached (%f) should beat flatten-every-message (%f)", cached, uncached)
	}
}

func TestAblationPipelineBounded(t *testing.T) {
	tab := AblationPipeline()
	whole := mustF(t, tab.Rows[0][1])
	chunked := mustF(t, tab.Rows[1][1])
	if chunked > whole*1.3 {
		t.Fatalf("chunked (%f) should stay within 30%% of whole-message (%f)", chunked, whole)
	}
}
