package bench

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/workload"
)

// This file holds the compiled-pack-plan experiments added with the
// canonical datatype representation. Two tables:
//
//   - PackPlans measures *host* wall-time of the compiled plan against the
//     legacy block-list loop over the ddtbench workload shapes. Virtual
//     simulator time is invariant by design (plans change how fast the
//     host executes a pack, never what the cost model charges), so the
//     speedup here is real execution speed, not simulated time.
//   - PlanCounters runs the bulk exchange per workload and reports the
//     canonical-cache "plan" counter row: hits, misses, evictions, and
//     plans compiled by kind, so cache behavior is visible without a
//     debugger.

// packBench times fn and returns ns/op: repetitions calibrated so one
// sample runs ~1ms, then min-of-7 samples so scheduler noise on a shared
// machine cannot invert a comparison.
func packBench(fn func()) int64 {
	fn() // warm caches, fault in pages
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		if el := time.Since(start); el >= time.Millisecond {
			break
		} else if el <= 0 {
			reps *= 1000
		} else {
			f := int64(time.Millisecond) * int64(reps) / el.Nanoseconds()
			if f <= int64(reps) {
				f = int64(reps) * 2
			}
			reps = int(f) + 1
		}
	}
	best := int64(1<<63 - 1)
	for s := 0; s < 7; s++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		if ns := time.Since(start).Nanoseconds() / int64(reps); ns < best {
			best = ns
		}
	}
	return best
}

// planDims picks the representative dims per workload for the plan tables:
// the middle and largest of the figure sweep.
func planDims(w workload.Workload) []int {
	d := w.Dims
	if len(d) <= 2 {
		return d
	}
	return []int{d[len(d)/2], d[len(d)-1]}
}

// PackPlans compares legacy block-list packing against the compiled
// per-canonical-form plan on every ddtbench workload shape (host ns/op).
func PackPlans() *Table {
	t := &Table{
		Title: "Compiled pack plans vs legacy block-list pack (host time, not simulated time)",
		Header: []string{"Workload", "Dim", "Bytes", "Blocks", "Kind", "Runs",
			"Legacy ns/op", "Plan ns/op", "Speedup"},
	}
	for _, w := range workload.All() {
		for _, dim := range planDims(w) {
			l := w.Layout(dim)
			c := l.CanonicalForm()
			p := datatype.CompilePlan(c)
			src := make([]byte, l.ExtentBytes)
			workload.FillPattern(src, uint64(dim))
			dst := make([]byte, l.SizeBytes)
			legacy := packBench(func() { l.Pack(src, dst) })
			plan := packBench(func() { p.Pack(src, dst) })
			t.Rows = append(t.Rows, []string{
				w.Name, fmt.Sprint(dim),
				fmt.Sprint(l.SizeBytes), fmt.Sprint(l.NumBlocks()),
				p.Kind.String(), fmt.Sprint(len(c.Runs)),
				fmt.Sprint(legacy), fmt.Sprint(plan),
				fmt.Sprintf("%.2fx", float64(legacy)/float64(plan)),
			})
		}
	}
	return t
}

// PlanCounters reports the canonical layout-cache counters ("plan" rows)
// observed during one bulk exchange per workload under the fused scheme.
func PlanCounters(spec cluster.Spec) *Table {
	t := &Table{
		Title: "plan counters: canonical layout-cache behavior per bulk exchange (Proposed-Tuned)",
		Header: []string{"Counter", "Workload", "Dim", "Hits", "Misses", "Evict",
			"Contig", "Strided", "Gather"},
	}
	for _, w := range workload.All() {
		dim := planDims(w)[0]
		res := RunBulk(BulkOptions{System: spec, Scheme: "Proposed-Tuned", Workload: w, Dim: dim})
		if res.VerifyErr != nil {
			t.Rows = append(t.Rows, []string{"plan", w.Name, fmt.Sprint(dim),
				"ERR", res.VerifyErr.Error(), "", "", "", ""})
			continue
		}
		s := res.Plans
		t.Rows = append(t.Rows, []string{
			"plan", w.Name, fmt.Sprint(dim),
			fmt.Sprint(s.Hits), fmt.Sprint(s.Misses), fmt.Sprint(s.Evictions),
			fmt.Sprint(s.Compiled[datatype.PlanContig]),
			fmt.Sprint(s.Compiled[datatype.PlanStrided]),
			fmt.Sprint(s.Compiled[datatype.PlanGather]),
		})
	}
	return t
}

// Plans bundles both plan tables for the ddtbench -plans flag.
func Plans(spec cluster.Spec) []*Table {
	return []*Table{PackPlans(), PlanCounters(spec)}
}
