package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// The scale benchmark drives the simulator core to 1024 ranks (256 Lassen
// nodes), the regime the lazy-bytes payload mode and the pooled-worker /
// sharded-event-queue scheduler exist for. Two communication patterns:
//
//   - a2a-hier: sparse personalized Alltoallw (each rank exchanges 32 KiB
//     strided legs with its 16 wrap-around neighbors; the other legs are
//     zero, which the hierarchical schedule skips entirely) under the
//     two-level node-leader aggregation.
//   - halo3d: one 3D halo timestep — a NeighborAlltoallw of the six faces
//     of a 16^3 double grid over a periodic Cartesian decomposition.
//
// Byte-exact rows are capped at 64 ranks: real bytes make memory and copy
// cost scale with ranks x message size (the 8-rank exact row is the
// reference the conformance suite checks lazy mode against). Lazy rows
// carry payloads as span algebra, so the same patterns reach 1024 ranks
// in seconds of wall time with near-flat per-rank allocation.

// scalePollNs is the progress-engine poll period for scale runs. The
// 200 ns default generates poll events proportional to ranks x
// virtual-time/200ns — billions at 1024 ranks; 5 us keeps the event queue
// tractable without perturbing the multi-microsecond collective phases.
const scalePollNs = 5000

// scaleNeighbors is the sparse all-to-all degree: 8 wrap-around peers on
// each side.
const scaleNeighbors = 16

// scaleMeasure is one scale run: virtual completion time, real wall time,
// bytes allocated over the run, and total kernel launches.
type scaleMeasure struct {
	virtNs  int64
	wall    time.Duration
	allocMB float64
	kernels int64
}

// scaleWorld builds a Lassen-model world with ranks/4 nodes; lazy flips
// every device to the 4 KiB lazy-bytes threshold.
func scaleWorld(ranks int, lazy bool) (*sim.Env, *mpi.World, error) {
	return scaleWorldCfg(ranks, lazy, nil)
}

// scaleWorldCfg is scaleWorld with a config hook, for runs that need
// fault injection or tracing on top of the scale defaults.
func scaleWorldCfg(ranks int, lazy bool, mut func(*mpi.Config)) (*sim.Env, *mpi.World, error) {
	if ranks < 8 || ranks%4 != 0 {
		return nil, nil, fmt.Errorf("bench: scale needs ranks >= 8 divisible by 4, got %d", ranks)
	}
	spec := cluster.Lassen().WithNodes(ranks / 4)
	env := sim.NewEnv()
	c, err := cluster.Build(env, spec)
	if err != nil {
		return nil, nil, err
	}
	if lazy {
		for _, node := range c.Devices {
			for _, d := range node {
				d.LazyThreshold = 4096
			}
		}
	}
	cfg := mpi.DefaultConfig()
	cfg.PollIntervalNs = scalePollNs
	if mut != nil {
		mut(&cfg)
	}
	return env, mpi.NewWorld(c, cfg, schemes.Factory("Proposed-Tuned")), nil
}

// measure wraps one world run with wall-clock and allocation accounting.
func measure(env *sim.Env, w *mpi.World, body func(r *mpi.Rank, p *sim.Proc)) (scaleMeasure, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	err := w.Run(body)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	m := scaleMeasure{
		virtNs:  env.Now(),
		wall:    wall,
		allocMB: float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
	}
	for i := 0; i < w.Size(); i++ {
		m.kernels += w.Rank(i).Dev.Stats.KernelLaunches
	}
	if err == nil {
		if lk := w.LeakedRequests(); lk != 0 {
			err = fmt.Errorf("bench: scale run leaked %d requests", lk)
		}
	}
	if err == nil {
		if lp := env.LiveProcs(); lp != 0 {
			err = fmt.Errorf("bench: scale run left %d live procs", lp)
		}
	}
	return m, err
}

// makeScaleA2AOps builds the sparse op matrix: every rank has nonzero legs
// only with its scaleNeighbors wrap-around peers, a world-sized op vector
// otherwise zero.
func makeScaleA2AOps(w *mpi.World, l *datatype.Layout) [][]coll.WOp {
	size := w.Size()
	half := scaleNeighbors / 2
	ops := make([][]coll.WOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		ops[r] = make([]coll.WOp, size)
		for d := 1; d <= half; d++ {
			for _, peer := range []int{(r + d) % size, (r - d + size) % size} {
				if ops[r][peer].SendBuf != nil {
					continue // tiny worlds: +d and -d can alias
				}
				sb := dev.Alloc(fmt.Sprintf("sc-s-%d-%d", r, peer), int(l.ExtentBytes))
				rb := dev.Alloc(fmt.Sprintf("sc-r-%d-%d", r, peer), int(l.ExtentBytes))
				sb.FillStream(uint64(r)<<32 | uint64(peer+1))
				ops[r][peer] = coll.WOp{SendBuf: sb, SendType: l, SendCount: 1, RecvBuf: rb, RecvType: l, RecvCount: 1}
			}
		}
	}
	return ops
}

// runScaleA2A runs the sparse hierarchical Alltoallw — the shape the
// hierarchical schedule's zero-leg skipping turns from O(ranks^2) into
// O(ranks x K).
func runScaleA2A(ranks int, lazy bool) (scaleMeasure, error) {
	env, w, err := scaleWorld(ranks, lazy)
	if err != nil {
		return scaleMeasure{}, err
	}
	ops := makeScaleA2AOps(w, collLayout()) // 32 KiB strided legs
	e := coll.New(w, coll.Tuning{Alltoallw: coll.Hierarchical})
	var bodyErr error
	m, err := measure(env, w, func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil && bodyErr == nil {
			bodyErr = fmt.Errorf("rank %d: %w", r.ID(), cerr)
		}
	})
	if err == nil {
		err = bodyErr
	}
	return m, err
}

// scaleDims3 factors ranks into the most balanced 3D grid (largest
// dimension first): 8 -> 2x2x2, 64 -> 4x4x4, 256 -> 8x8x4, 1024 -> 16x8x8.
func scaleDims3(ranks int) [3]int {
	best := [3]int{ranks, 1, 1}
	for a := 1; a*a*a <= ranks; a++ {
		if ranks%a != 0 {
			continue
		}
		m := ranks / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			if c-a < best[0]-best[2] {
				best = [3]int{c, b, a}
			}
		}
	}
	return best
}

// runScaleHalo runs one 3D halo timestep: the six faces of an n^3 double
// grid exchanged as a fused NeighborAlltoallw over a periodic Cartesian
// decomposition of all ranks.
func runScaleHalo(ranks int, lazy bool) (scaleMeasure, error) {
	env, w, err := scaleWorld(ranks, lazy)
	if err != nil {
		return scaleMeasure{}, err
	}
	dims := scaleDims3(ranks)
	cart := w.CartCreate(dims[:], []bool{true, true, true})
	const n = 16
	in := n - 2
	mk := func(sub, start []int) *datatype.Layout {
		return datatype.Commit(datatype.Subarray([]int{n, n, n}, sub, start, datatype.Float64))
	}
	faces := map[string]*datatype.Layout{
		"x-": mk([]int{1, in, in}, []int{1, 1, 1}),
		"x+": mk([]int{1, in, in}, []int{n - 2, 1, 1}),
		"y-": mk([]int{in, 1, in}, []int{1, 1, 1}),
		"y+": mk([]int{in, 1, in}, []int{1, n - 2, 1}),
		"z-": mk([]int{in, in, 1}, []int{1, 1, 1}),
		"z+": mk([]int{in, in, 1}, []int{1, 1, n - 2}),
	}
	size := w.Size()
	gridBytes := n * n * n * 8
	ops := make([][]mpi.NeighborOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		grid := dev.Alloc(fmt.Sprintf("hg-%d", r), gridBytes)
		ghost := dev.Alloc(fmt.Sprintf("hh-%d", r), gridBytes)
		grid.FillStream(uint64(r + 1))
		for axis, ax := range [][2]string{{"x-", "x+"}, {"y-", "y+"}, {"z-", "z+"}} {
			mPeer, pPeer := cart.Shift(r, axis, 1)
			ops[r] = append(ops[r],
				mpi.NeighborOp{Peer: mPeer, SendBuf: grid, SendType: faces[ax[0]],
					RecvBuf: ghost, RecvType: faces[ax[1]], Count: 1},
				mpi.NeighborOp{Peer: pPeer, SendBuf: grid, SendType: faces[ax[1]],
					RecvBuf: ghost, RecvType: faces[ax[0]], Count: 1},
			)
		}
	}
	e := coll.New(w, coll.Tuning{})
	var bodyErr error
	m, err := measure(env, w, func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.NeighborAlltoallw(p, r, ops[r.ID()]); cerr != nil && bodyErr == nil {
			bodyErr = fmt.Errorf("rank %d: %w", r.ID(), cerr)
		}
	})
	if err == nil {
		err = bodyErr
	}
	return m, err
}

// scaleRow runs one (pattern, ranks, mode) cell and renders it.
func scaleRow(pattern string, ranks int, lazy bool) []string {
	var m scaleMeasure
	var err error
	switch pattern {
	case "a2a-hier":
		m, err = runScaleA2A(ranks, lazy)
	case "halo3d":
		m, err = runScaleHalo(ranks, lazy)
	}
	mode := "exact"
	if lazy {
		mode = "lazy"
	}
	if err != nil {
		return []string{pattern, fmt.Sprint(ranks), fmt.Sprint(ranks / 4), mode, "ERROR: " + err.Error(), "", "", ""}
	}
	return []string{
		pattern, fmt.Sprint(ranks), fmt.Sprint(ranks / 4), mode,
		fmt.Sprintf("%.1f", float64(m.virtNs)/1e6),
		fmt.Sprintf("%.0f", float64(m.wall.Microseconds())/1000),
		fmt.Sprintf("%.1f", m.allocMB),
		fmt.Sprint(m.kernels),
	}
}

// Scale is the scaling benchmark table (ddtbench -fig scale): wall time
// and allocation volume for both patterns across rank counts up to
// maxRanks. Exact mode stops at 64 ranks by design (see the file comment).
func Scale(maxRanks int) *Table {
	t := &Table{
		Title: fmt.Sprintf("Scale: sparse Alltoallw-hier (16 peers x 32 KiB) and halo3d (16^3 doubles), Lassen model, Proposed-Tuned, poll %d ns",
			int64(scalePollNs)),
		Header: []string{"pattern", "ranks", "nodes", "mode", "virt_ms", "wall_ms", "alloc_MB", "kernels"},
	}
	for _, pattern := range []string{"a2a-hier", "halo3d"} {
		for _, ranks := range []int{8, 64, 256, 1024} {
			if ranks > maxRanks {
				continue
			}
			if ranks <= 64 {
				t.Rows = append(t.Rows, scaleRow(pattern, ranks, false))
			}
			t.Rows = append(t.Rows, scaleRow(pattern, ranks, true))
		}
	}
	return t
}
