// Package bench is the experiment harness: one runner per table/figure of
// the paper's evaluation (Section V), producing plain-text tables whose
// rows mirror the series the paper plots.
//
// All timings are virtual nanoseconds on the deterministic simulation
// clock. Because the simulation is deterministic, steady state is reached
// after the warmup iterations (which also warm the layout caches) and a
// handful of measured iterations suffices where the paper needed 500 on
// real hardware.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/fusion"
	"repro/internal/gpu"
	"repro/internal/layoutcache"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

// collector, when non-nil, receives every RunBulk measurement's event
// timeline (one entry per world, labeled "<scheme>/<workload>/dim<N>").
// Nil keeps tracing disabled and the hot paths allocation-free.
var collector *timeline.Collector

// SetCollector installs (or, with nil, removes) the timeline collector
// that subsequent RunBulk calls feed. Not safe for concurrent use with
// RunBulk; the harness is single-threaded.
func SetCollector(c *timeline.Collector) { collector = c }

// faultPlan, when non-nil, is threaded into every RunBulk world so the
// whole experiment suite runs under deterministic fault injection (the
// ddtbench -faults flag). Recovery costs then show up in the Retrans
// column of the breakdowns.
var faultPlan *fault.Plan

// SetFaultPlan installs (or, with nil, removes) the fault plan applied to
// subsequent RunBulk measurements. Not safe for concurrent use with
// RunBulk; the harness is single-threaded.
func SetFaultPlan(p *fault.Plan) { faultPlan = p }

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// BulkOptions parameterizes one bulk halo-exchange measurement: two ranks
// on different nodes exchange Buffers messages in each direction per
// iteration, the pattern of Figs. 9-14.
type BulkOptions struct {
	System   cluster.Spec
	Scheme   string
	Workload workload.Workload
	Dim      int
	Buffers  int
	// Iterations measured after Warmup iterations (defaults 3 and 2).
	Iterations int
	Warmup     int
	// MutateMPI tweaks the runtime config (protocol, IPC, ...).
	MutateMPI func(*mpi.Config)
	// FusionThreshold overrides the fusion flush threshold (0 = scheme
	// default); only meaningful for the Proposed schemes.
	FusionThreshold int64
	// IntraNode exchanges between two GPUs of one node instead.
	IntraNode bool
}

func (o *BulkOptions) defaults() {
	if o.Iterations <= 0 {
		o.Iterations = 3
	}
	if o.Warmup <= 0 {
		o.Warmup = 2
	}
	if o.Buffers <= 0 {
		o.Buffers = 16
	}
}

// BulkResult is one measurement.
type BulkResult struct {
	Scheme string
	// AvgNs is the mean per-iteration makespan of the whole bulk
	// exchange (post-warmup).
	AvgNs int64
	// Breakdown sums the two participating ranks' post-warmup cost
	// taxonomies (Fig. 11).
	Breakdown trace.Breakdown
	// MsgBytes is the per-message payload.
	MsgBytes int64
	// Blocks is the per-message contiguous-segment count.
	Blocks int
	// VerifyErr is non-nil if any received byte was wrong.
	VerifyErr error
	// Plans sums the two participating ranks' canonical-cache counters
	// (hits/misses/evictions and plans compiled by kind) after the run.
	Plans layoutcache.Stats
}

// factoryFor builds the scheme factory, honoring a threshold override.
func factoryFor(name string, threshold int64) mpi.SchemeFactory {
	if threshold > 0 {
		return func(r *mpi.Rank) mpi.Scheme {
			cfg := fusion.DefaultConfig()
			cfg.ThresholdBytes = threshold
			return schemes.NewFusionWith(r, cfg)
		}
	}
	return schemes.Factory(name)
}

// RunBulk executes one measurement.
func RunBulk(opt BulkOptions) BulkResult {
	opt.defaults()
	env := sim.NewEnv()
	cl := cluster.MustBuild(env, opt.System)
	cfg := mpi.DefaultConfig()
	if opt.MutateMPI != nil {
		opt.MutateMPI(&cfg)
	}
	if faultPlan != nil {
		cfg.Faults = faultPlan
	}
	if collector != nil {
		cfg.Timeline = &timeline.Options{}
	}
	w := mpi.NewWorld(cl, cfg, factoryFor(opt.Scheme, opt.FusionThreshold))
	if collector != nil {
		label := fmt.Sprintf("%s/%s/dim%d", opt.Scheme, opt.Workload.Name, opt.Dim)
		if opt.FusionThreshold > 0 {
			label += fmt.Sprintf("/th%d", opt.FusionThreshold)
		}
		collector.Add(label, w.Timeline())
	}

	l := opt.Workload.Layout(opt.Dim)
	a, bPeer := 0, opt.System.GPUsPerNode // rank on node 0, rank on node 1
	if opt.IntraNode {
		bPeer = 1
	}
	nbuf := opt.Buffers

	type side struct{ s, r []*gpu.Buffer }
	mk := func(rk int) side {
		var sd side
		for i := 0; i < nbuf; i++ {
			sb := w.Rank(rk).Dev.Alloc(fmt.Sprintf("s%d-%d", rk, i), int(l.ExtentBytes))
			rb := w.Rank(rk).Dev.Alloc(fmt.Sprintf("r%d-%d", rk, i), int(l.ExtentBytes))
			workload.FillPattern(sb.Data, uint64(rk*1000+i))
			sd.s = append(sd.s, sb)
			sd.r = append(sd.r, rb)
		}
		return sd
	}
	sideA, sideB := mk(a), mk(bPeer)

	res := BulkResult{Scheme: opt.Scheme, MsgBytes: l.SizeBytes, Blocks: l.NumBlocks()}
	var total int64
	var opErr error
	body := func(r *mpi.Rank, p *sim.Proc) {
		mine := r.ID() == a || r.ID() == bPeer
		var sd side
		var peer int
		if r.ID() == a {
			sd, peer = sideA, bPeer
		} else if r.ID() == bPeer {
			sd, peer = sideB, a
		}
		for it := 0; it < opt.Warmup+opt.Iterations; it++ {
			if it == opt.Warmup && mine {
				r.Trace.Reset()
				r.Timeline().Reset()
			}
			w.Barrier(p)
			t0 := p.Now()
			if mine {
				reqs := make([]*mpi.Request, 0, 2*nbuf)
				for i := 0; i < nbuf; i++ {
					reqs = append(reqs, r.Irecv(p, peer, i, sd.r[i], l, 1))
				}
				for i := 0; i < nbuf; i++ {
					reqs = append(reqs, r.Isend(p, peer, i, sd.s[i], l, 1))
				}
				if err := r.Waitall(p, reqs); err != nil && opErr == nil {
					opErr = fmt.Errorf("iteration %d: %w", it, err)
				}
			}
			w.Barrier(p)
			if r.ID() == a && it >= opt.Warmup {
				total += p.Now() - t0
			}
		}
	}
	if err := w.Run(body); err != nil {
		res.VerifyErr = err
		return res
	}
	if opErr != nil {
		res.VerifyErr = opErr
		return res
	}
	res.AvgNs = total / int64(opt.Iterations)
	res.Breakdown.Merge(w.Rank(a).Trace)
	res.Breakdown.Merge(w.Rank(bPeer).Trace)
	res.Plans.Add(w.Rank(a).CacheStats())
	res.Plans.Add(w.Rank(bPeer).CacheStats())
	for i := 0; i < nbuf; i++ {
		if err := workload.VerifyBlocks(l, 1, sideA.s[i].Data, sideB.r[i].Data); err != nil {
			res.VerifyErr = fmt.Errorf("A->B buffer %d: %w", i, err)
			return res
		}
		if err := workload.VerifyBlocks(l, 1, sideB.s[i].Data, sideA.r[i].Data); err != nil {
			res.VerifyErr = fmt.Errorf("B->A buffer %d: %w", i, err)
			return res
		}
	}
	return res
}

// fmtUs renders nanoseconds as microseconds with 1 decimal.
func fmtUs(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1000) }
