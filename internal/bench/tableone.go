package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TableOne quantifies the qualitative scheme comparison of the paper's
// Table I on live measurements: per scheme, the measured GPU driver
// overhead (launching + scheduling per message), CPU-GPU synchronization
// cost, end-to-end latency, and effective throughput for a representative
// bulk sparse exchange.
func TableOne() *Table {
	const nbuf = 16
	wl := workload.Specfem3DCM()
	dim := 32
	l := wl.Layout(dim)
	t := &Table{
		Title: fmt.Sprintf("Table I (quantified): %s dim=%d, %d buffers/direction, Lassen", wl.Name, dim, nbuf),
		Header: []string{
			"scheme", "layout_cache", "driver_us/msg", "sync_us/msg", "latency_us", "throughput_MB/s",
		},
	}
	// 16 sends + 16 recvs per rank, two ranks traced.
	const msgs = 4 * nbuf
	for _, s := range []string{"GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed-Tuned"} {
		r := RunBulk(BulkOptions{System: cluster.Lassen(), Scheme: s, Workload: wl, Dim: dim, Buffers: nbuf, Iterations: 3})
		if r.VerifyErr != nil {
			t.Rows = append(t.Rows, []string{s, "?", "CORRUPT", "", "", ""})
			continue
		}
		per := r.Breakdown.Scale(3) // per iteration
		driver := float64(per.Get(trace.Launch)+per.Get(trace.Scheduling)) / msgs / 1000
		sync := float64(per.Get(trace.Sync)) / msgs / 1000
		// Bidirectional payload per iteration.
		bytes := float64(2*nbuf) * float64(l.SizeBytes)
		throughput := bytes / (float64(r.AvgNs) / 1e9) / 1e6
		t.Rows = append(t.Rows, []string{
			s,
			layoutCacheColumn(s),
			fmt.Sprintf("%.2f", driver),
			fmt.Sprintf("%.2f", sync),
			fmtUs(r.AvgNs),
			fmt.Sprintf("%.0f", throughput),
		})
	}
	return t
}

// layoutCacheColumn mirrors Table I's "Layout Cache" column: the hybrid
// scheme of [24] and the proposed design cache flattened layouts; the
// classic GPU-driven schemes re-derive them (in this runtime the cache is
// shared infrastructure, so the column reports the paper's attribution).
func layoutCacheColumn(scheme string) string {
	switch scheme {
	case "CPU-GPU-Hybrid", "Proposed-Tuned", "Proposed", "Proposed-Auto":
		return "Y"
	default:
		return "N"
	}
}
