package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// TestExpectedShapes encodes the qualitative invariants of EXPERIMENTS.md
// as assertions on simulated nanoseconds, so a model change that flips a
// paper conclusion fails `go test` instead of requiring a human to re-read
// the regenerated figures. Thresholds are deliberately looser than the
// measured ratios (e.g. 2x asserted where 4.1x is measured) so calibration
// nudges pass but shape regressions do not.
func TestExpectedShapes(t *testing.T) {
	lassen := cluster.Lassen()
	bulk := func(t *testing.T, o BulkOptions) int64 {
		t.Helper()
		r := RunBulk(o)
		if r.VerifyErr != nil {
			t.Fatalf("%s/%s dim=%d: verification failed: %v",
				o.Scheme, o.Workload.Name, o.Dim, r.VerifyErr)
		}
		return r.AvgNs
	}

	// Fig 9: bulk sparse inter-node — the proposed fused design beats the
	// per-request GPU designs by >4x at 16 outstanding buffers; assert 2x.
	t.Run("proposed wins sparse", func(t *testing.T) {
		opt := BulkOptions{System: lassen, Workload: workload.Specfem3DCM(), Dim: 32, Buffers: 16}
		opt.Scheme = "GPU-Sync"
		sync := bulk(t, opt)
		opt.Scheme = "Proposed-Tuned"
		tuned := bulk(t, opt)
		if tuned*2 > sync {
			t.Errorf("sparse bulk: Proposed-Tuned %d ns vs GPU-Sync %d ns, want >= 2x win",
				tuned, sync)
		}
	})

	// Fig 10: small dense messages — the CPU packs faster than any kernel
	// launch amortizes, so CPU-GPU-Hybrid wins MILC dim=8 with 1 buffer.
	t.Run("hybrid wins small dense", func(t *testing.T) {
		opt := BulkOptions{System: lassen, Workload: workload.MILC(), Dim: 8, Buffers: 1}
		opt.Scheme = "CPU-GPU-Hybrid"
		hybrid := bulk(t, opt)
		opt.Scheme = "GPU-Sync"
		sync := bulk(t, opt)
		opt.Scheme = "Proposed"
		proposed := bulk(t, opt)
		if hybrid >= sync || hybrid >= proposed {
			t.Errorf("small dense: hybrid %d ns, GPU-Sync %d ns, Proposed %d ns — hybrid should win",
				hybrid, sync, proposed)
		}
	})

	// Fig 14: the naive per-block memcpy path of SpectrumMPI/OpenMPI is
	// 60-880x slower on sparse workloads; assert a conservative 10x.
	t.Run("naive at least 10x slower", func(t *testing.T) {
		opt := BulkOptions{System: lassen, Workload: workload.Specfem3DCM(), Dim: 16,
			Buffers: 4, Iterations: 2, Warmup: 1}
		opt.Scheme = "NaiveMemcpy"
		naive := bulk(t, opt)
		opt.Scheme = "Proposed-Tuned"
		tuned := bulk(t, opt)
		if naive < tuned*10 {
			t.Errorf("naive %d ns vs Proposed-Tuned %d ns, want >= 10x slower", naive, tuned)
		}
	})

	// Fig 8: the threshold sweep must keep both mistuned regimes — too
	// small a threshold flushes constantly (under-fused), too large waits
	// on work that should already be in flight (over-fused).
	t.Run("threshold sweep regimes", func(t *testing.T) {
		if testing.Short() {
			t.Skip("large-dim sweep")
		}
		opt := BulkOptions{System: lassen, Scheme: "Proposed",
			Workload: workload.Specfem3DCM(), Dim: 64, Buffers: 16}
		opt.FusionThreshold = 16 << 10
		under := bulk(t, opt)
		opt.FusionThreshold = 512 << 10
		best := bulk(t, opt)
		opt.FusionThreshold = 4 << 20
		over := bulk(t, opt)
		if best >= under || best >= over {
			t.Errorf("512KB (%d ns) should beat 16KB (%d ns) and 4MB (%d ns)", best, under, over)
		}
		if under*10 < best*15 { // under < 1.5x best
			t.Errorf("under-fused regime too shallow: 16KB %d ns vs best %d ns, want >= 1.5x", under, best)
		}
		if over*100 < best*105 { // over < 1.05x best
			t.Errorf("over-fused regime too shallow: 4MB %d ns vs best %d ns, want >= 1.05x", over, best)
		}
	})
}
