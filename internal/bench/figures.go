package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig1 reproduces the motivating breakdown: pack-kernel execution time vs
// kernel-launch overhead across GPU generations for the Specfem3D and MILC
// packing shapes. Launch dominates on every modern generation.
func Fig1() *Table {
	t := &Table{
		Title:  "Fig 1: packing kernel vs launch overhead across GPU generations (us)",
		Header: []string{"gpu", "workload", "kernel_us", "launch_us", "launch_share"},
	}
	wls := []struct {
		w   workload.Workload
		dim int
	}{
		{workload.Specfem3DCM(), 32},
		{workload.MILC(), 16},
	}
	for _, arch := range cluster.FigureOneArchs() {
		env := sim.NewEnv()
		dev := gpu.NewDevice(env, arch, 0, 0)
		for _, wl := range wls {
			l := wl.w.Layout(wl.dim)
			k := dev.EstimateKernelNs(l.SizeBytes, l.NumBlocks(), l.MaxBlockBytes)
			launch := arch.LaunchOverheadNs
			t.Rows = append(t.Rows, []string{
				arch.Name, wl.w.Name, fmtUs(k), fmtUs(launch),
				fmt.Sprintf("%.0f%%", 100*float64(launch)/float64(launch+k)),
			})
		}
	}
	return t
}

// Fig8 reproduces the fusion-threshold sweep: specfem3D_cm with 32
// outstanding operations, latency vs input size for several thresholds —
// under-fused at the low end, over-fused at the high end.
func Fig8(system cluster.Spec) *Table {
	thresholds := []int64{16 << 10, 64 << 10, 256 << 10, 512 << 10, 1 << 20, 4 << 20}
	wl := workload.Specfem3DCM()
	dims := wl.Dims
	t := &Table{
		Title:  fmt.Sprintf("Fig 8: fused-kernel threshold sweep, %s, 32 ops, %s (us)", wl.Name, system.Name),
		Header: []string{"dim", "msg_KB"},
	}
	for _, th := range thresholds {
		t.Header = append(t.Header, fmt.Sprintf("thr=%dKB", th>>10))
	}
	for _, d := range dims {
		l := wl.Layout(d)
		row := []string{fmt.Sprint(d), fmt.Sprintf("%.1f", float64(l.SizeBytes)/1024)}
		for _, th := range thresholds {
			r := RunBulk(BulkOptions{
				System: system, Scheme: "Proposed", Workload: wl, Dim: d,
				Buffers: 16, FusionThreshold: th,
			})
			row = append(row, cell(r))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// bulkSchemes are the series of Figs. 9-13.
var bulkSchemes = []string{"GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "Proposed", "Proposed-Tuned"}

// cell formats one measurement, flagging verification failures loudly.
func cell(r BulkResult) string {
	if r.VerifyErr != nil {
		return "CORRUPT"
	}
	return fmtUs(r.AvgNs)
}

// figBuffersSweep runs a Fig-9/10-shaped sweep: latency vs number of
// exchanged buffers at a fixed dimension.
func figBuffersSweep(title string, system cluster.Spec, wl workload.Workload, dim int) *Table {
	t := &Table{Title: title, Header: []string{"buffers"}}
	for _, s := range bulkSchemes {
		t.Header = append(t.Header, s)
	}
	for _, nbuf := range []int{1, 2, 4, 8, 16} {
		row := []string{fmt.Sprint(nbuf)}
		for _, s := range bulkSchemes {
			r := RunBulk(BulkOptions{System: system, Scheme: s, Workload: wl, Dim: dim, Buffers: nbuf})
			row = append(row, cell(r))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig9 reproduces bulk sparse inter-node transfer on Lassen: specfem3D_cm,
// 1-16 buffers (lower is better; proposed wins up to ~6X).
func Fig9() *Table {
	return figBuffersSweep(
		"Fig 9: bulk sparse inter-node, specfem3D_cm dim=32, Lassen (us, lower is better)",
		cluster.Lassen(), workload.Specfem3DCM(), 32)
}

// Fig10 reproduces bulk dense transfer on Lassen: MILC, 1-16 buffers
// (CPU-GPU-Hybrid wins the small dense cases). The paper's point is made
// with small messages: dim=8 is a ~9 KiB eager-range dense payload.
func Fig10() *Table {
	return figBuffersSweep(
		"Fig 10: bulk dense inter-node, MILC dim=8, Lassen (us, lower is better)",
		cluster.Lassen(), workload.MILC(), 8)
}

// Fig11 reproduces the time breakdown of the GPU-driven designs: MILC with
// 16 back-to-back transfers on ABCI, costs split per the paper's taxonomy.
func Fig11() *Table {
	t := &Table{
		Title:  "Fig 11: time breakdown, MILC dim=16 x16 buffers, ABCI (us per iteration)",
		Header: []string{"scheme"},
	}
	iters := 3
	var pers []trace.Breakdown
	schemeNames := []string{"GPU-Sync", "GPU-Async", "Proposed-Tuned"}
	for _, s := range schemeNames {
		r := RunBulk(BulkOptions{
			System: cluster.ABCI(), Scheme: s, Workload: workload.MILC(),
			Dim: 16, Buffers: 16, Iterations: iters,
		})
		pers = append(pers, r.Breakdown.Scale(int64(iters)))
	}
	// Figure runs are fault-free, so the Retrans bucket (and any future
	// recovery-only category) stays out of the table unless it accrued.
	var cats []trace.Category
	for _, c := range trace.Categories() {
		keep := c <= trace.Other
		for _, per := range pers {
			if per.Get(c) != 0 {
				keep = true
			}
		}
		if keep {
			cats = append(cats, c)
		}
	}
	for _, c := range cats {
		t.Header = append(t.Header, c.String())
	}
	for i, s := range schemeNames {
		row := []string{s}
		for _, c := range cats {
			row = append(row, fmtUs(pers[i].Get(c)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// figWorkloadSweep runs a Fig-12/13-shaped sweep: latency vs dimension for
// one workload with 32 outstanding operations.
func figWorkloadSweep(fig string, system cluster.Spec, wl workload.Workload) *Table {
	t := &Table{
		Title:  fmt.Sprintf("%s: 3D halo (32 ops), %s, %s (us, lower is better)", fig, wl.Name, system.Name),
		Header: []string{"dim", "msg_KB"},
	}
	for _, s := range bulkSchemes {
		t.Header = append(t.Header, s)
	}
	for _, d := range wl.Dims {
		l := wl.Layout(d)
		row := []string{fmt.Sprint(d), fmt.Sprintf("%.1f", float64(l.SizeBytes)/1024)}
		for _, s := range bulkSchemes {
			r := RunBulk(BulkOptions{System: system, Scheme: s, Workload: wl, Dim: d, Buffers: 16})
			row = append(row, cell(r))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig12 reproduces the four Lassen sub-figures (a: specfem3D_oc,
// b: specfem3D_cm, c: MILC, d: NAS_MG).
func Fig12() []*Table {
	var out []*Table
	for i, wl := range workload.All() {
		out = append(out, figWorkloadSweep(fmt.Sprintf("Fig 12(%c)", 'a'+i), cluster.Lassen(), wl))
	}
	return out
}

// Fig13 reproduces the same four sweeps on ABCI.
func Fig13() []*Table {
	var out []*Table
	for i, wl := range workload.All() {
		out = append(out, figWorkloadSweep(fmt.Sprintf("Fig 13(%c)", 'a'+i), cluster.ABCI(), wl))
	}
	return out
}

// Fig14 compares against production libraries on Lassen, normalized to
// SpectrumMPI (higher is better): SpectrumMPI and OpenMPI use the naive
// per-block memcpy path, MVAPICH2-GDR the adaptive hybrid, plus the
// proposed design.
func Fig14() *Table {
	libs := []string{"SpectrumMPI", "OpenMPI", "MVAPICH2-GDR", "Proposed-Tuned"}
	t := &Table{
		Title:  "Fig 14: production libraries, Lassen, normalized to SpectrumMPI (higher is better)",
		Header: append([]string{"workload", "dim"}, libs...),
	}
	cases := []struct {
		wl  workload.Workload
		dim int
	}{
		{workload.Specfem3DOC(), 16},
		{workload.Specfem3DCM(), 16},
		{workload.MILC(), 8},
		{workload.NASMG(), 64},
	}
	for _, c := range cases {
		lat := make([]int64, len(libs))
		for i, lib := range libs {
			r := RunBulk(BulkOptions{
				System: cluster.Lassen(), Scheme: lib, Workload: c.wl,
				Dim: c.dim, Buffers: 4, Iterations: 2, Warmup: 1,
			})
			if r.VerifyErr != nil {
				lat[i] = -1
			} else {
				lat[i] = r.AvgNs
			}
		}
		row := []string{c.wl.Name, fmt.Sprint(c.dim)}
		base := lat[0]
		for _, v := range lat {
			if v <= 0 {
				row = append(row, "CORRUPT")
				continue
			}
			row = append(row, fmt.Sprintf("%.1fx", float64(base)/float64(v)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Run dispatches a figure id ("1", "8", ..., "14") to its runner and
// returns the resulting tables.
func Run(fig string) ([]*Table, error) {
	switch fig {
	case "1":
		return []*Table{Fig1()}, nil
	case "8":
		return []*Table{Fig8(cluster.Lassen())}, nil
	case "9":
		return []*Table{Fig9()}, nil
	case "10":
		return []*Table{Fig10()}, nil
	case "11":
		return []*Table{Fig11()}, nil
	case "12":
		return Fig12(), nil
	case "13":
		return Fig13(), nil
	case "14":
		return []*Table{Fig14()}, nil
	case "coll":
		return Coll(cluster.Lassen()), nil
	case "scale":
		return []*Table{Scale(1024)}, nil
	case "chaos-scale":
		return []*Table{ChaosScale(1024)}, nil
	case "rma":
		return []*Table{RMAFig(256), RMAA2AFig(256)}, nil
	default:
		return nil, fmt.Errorf("bench: unknown figure %q (have 1, 8, 9, 10, 11, 12, 13, 14, coll, scale, chaos-scale, rma)", fig)
	}
}

// Figures lists the reproducible figure ids. "coll", "scale",
// "chaos-scale", and "rma" are the repository's own subsystem
// experiments, not paper figures.
func Figures() []string {
	return []string{"1", "8", "9", "10", "11", "12", "13", "14", "coll", "scale", "chaos-scale", "rma"}
}

// mutRendezvous returns a config mutator selecting the rendezvous mode
// (used by ablations and tests).
func mutRendezvous(m mpi.RendezvousMode) func(*mpi.Config) {
	return func(c *mpi.Config) { c.Rendezvous = m }
}
