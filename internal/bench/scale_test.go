package bench

import (
	"testing"
	"time"
)

// TestScaleSmoke is the CI gate on the tentpole claim: a 256-rank (64
// Lassen nodes) run of both scale patterns in lazy mode must complete
// well inside a wall-time budget, leak-free. It runs under -short — the
// budget is deliberately generous (the patterns finish in a few seconds
// on any modern machine) so only a scaling regression trips it.
func TestScaleSmoke(t *testing.T) {
	const ranks = 256
	const budget = 90 * time.Second
	for _, pattern := range []string{"a2a-hier", "halo3d"} {
		pattern := pattern
		t.Run(pattern, func(t *testing.T) {
			var err error
			var m scaleMeasure
			switch pattern {
			case "a2a-hier":
				m, err = runScaleA2A(ranks, true)
			case "halo3d":
				m, err = runScaleHalo(ranks, true)
			}
			if err != nil {
				t.Fatalf("%s at %d ranks: %v", pattern, ranks, err)
			}
			if m.wall > budget {
				t.Fatalf("%s at %d ranks took %v, budget %v", pattern, ranks, m.wall, budget)
			}
			t.Logf("%s at %d ranks: %v wall, %.1f ms virtual, %.1f MB alloc, %d kernels",
				pattern, ranks, m.wall, float64(m.virtNs)/1e6, m.allocMB, m.kernels)
		})
	}
}

// TestScaleDims3 pins the balanced 3D factorizations the halo pattern
// depends on.
func TestScaleDims3(t *testing.T) {
	cases := map[int][3]int{
		8:    {2, 2, 2},
		64:   {4, 4, 4},
		256:  {8, 8, 4},
		1024: {16, 8, 8},
	}
	for ranks, want := range cases {
		if got := scaleDims3(ranks); got != want {
			t.Errorf("scaleDims3(%d) = %v, want %v", ranks, got, want)
		}
	}
}

// TestScaleExactLazyAgree: at 8 ranks the sparse a2a pattern must produce
// the same virtual completion time and kernel count in both payload
// modes — the bench-level echo of the conformance differential.
func TestScaleExactLazyAgree(t *testing.T) {
	ex, err := runScaleA2A(8, false)
	if err != nil {
		t.Fatal(err)
	}
	lz, err := runScaleA2A(8, true)
	if err != nil {
		t.Fatal(err)
	}
	if ex.virtNs != lz.virtNs {
		t.Errorf("virtual clock differs: exact %d vs lazy %d", ex.virtNs, lz.virtNs)
	}
	if ex.kernels != lz.kernels {
		t.Errorf("kernel launches differ: exact %d vs lazy %d", ex.kernels, lz.kernels)
	}
}
