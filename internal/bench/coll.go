package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/workload"
)

// collLayout is the per-leg datatype for the collective benchmarks: a
// 32 KiB strided vector, large enough to cross the eager limit so the
// staging and rendezvous paths engage (the regime the hierarchical
// algorithms target).
func collLayout() *datatype.Layout {
	return datatype.Commit(datatype.Vector(64, 64, 128, datatype.Float64))
}

// collSmallLayout is a sub-eager dense vector for the small-message
// columns (256 B per count unit).
func collSmallLayout() *datatype.Layout {
	return datatype.Commit(datatype.Vector(8, 4, 8, datatype.Float64))
}

// collMeasure is one collective run: total kernel launches across all
// ranks and the virtual completion time of the whole collective.
type collMeasure struct {
	launches int64
	ns       int64
}

// runCollAlltoallw runs one Alltoallw over the whole world and measures
// it. disableWindows turns the collective-scope fusion windows off,
// reverting to per-message launches — the ablation baseline.
func runCollAlltoallw(spec cluster.Spec, alg coll.Algorithm, disableWindows bool, l *datatype.Layout) (collMeasure, error) {
	env := sim.NewEnv()
	c := cluster.MustBuild(env, spec)
	w := mpi.NewWorld(c, mpi.DefaultConfig(), schemes.Factory("Proposed-Tuned"))
	size := w.Size()
	ops := make([][]coll.WOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		ops[r] = make([]coll.WOp, size)
		for peer := 0; peer < size; peer++ {
			count := 1 + (r+peer)%3
			sb := dev.Alloc(fmt.Sprintf("s-%d-%d", r, peer), int(l.ExtentBytes)*3)
			rb := dev.Alloc(fmt.Sprintf("r-%d-%d", r, peer), int(l.ExtentBytes)*3)
			workload.FillPattern(sb.Data, uint64(r*1000+peer))
			ops[r][peer] = coll.WOp{SendBuf: sb, SendType: l, SendCount: count, RecvBuf: rb, RecvType: l, RecvCount: count}
		}
	}
	e := coll.New(w, coll.Tuning{Alltoallw: alg, DisableFusionWindow: disableWindows})
	var bodyErr error
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Alltoallw(p, r, ops[r.ID()]); cerr != nil && bodyErr == nil {
			bodyErr = fmt.Errorf("rank %d: %w", r.ID(), cerr)
		}
	})
	if err == nil {
		err = bodyErr
	}
	var m collMeasure
	for i := 0; i < size; i++ {
		m.launches += w.Rank(i).Dev.Stats.KernelLaunches
	}
	m.ns = env.Now()
	return m, err
}

// runCollAllgatherv runs one Allgatherv over the whole world.
func runCollAllgatherv(spec cluster.Spec, alg coll.Algorithm, l *datatype.Layout) (collMeasure, error) {
	env := sim.NewEnv()
	c := cluster.MustBuild(env, spec)
	w := mpi.NewWorld(c, mpi.DefaultConfig(), schemes.Factory("Proposed-Tuned"))
	size := w.Size()
	sends := make([]coll.VOp, size)
	recvs := make([][]coll.VOp, size)
	for r := 0; r < size; r++ {
		dev := w.Rank(r).Dev
		count := 1 + r%3
		sb := dev.Alloc(fmt.Sprintf("ags-%d", r), int(l.ExtentBytes)*3)
		workload.FillPattern(sb.Data, uint64(r))
		sends[r] = coll.VOp{Buf: sb, Type: l, Count: count}
		recvs[r] = make([]coll.VOp, size)
		for src := 0; src < size; src++ {
			rb := dev.Alloc(fmt.Sprintf("agr-%d-%d", r, src), int(l.ExtentBytes)*3)
			recvs[r][src] = coll.VOp{Buf: rb, Type: l, Count: 1 + src%3}
		}
	}
	e := coll.New(w, coll.Tuning{Allgatherv: alg})
	var bodyErr error
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if cerr := e.Allgatherv(p, r, sends[r.ID()], recvs[r.ID()]); cerr != nil && bodyErr == nil {
			bodyErr = fmt.Errorf("rank %d: %w", r.ID(), cerr)
		}
	})
	if err == nil {
		err = bodyErr
	}
	var m collMeasure
	for i := 0; i < size; i++ {
		m.launches += w.Rank(i).Dev.Stats.KernelLaunches
	}
	m.ns = env.Now()
	return m, err
}

// CollFusion measures the headline claim of the collectives subsystem:
// collective-scope fusion windows collapse per-message pack/unpack
// launches into per-phase fused launches. Same schedule, windows on vs
// off, for each Alltoallw algorithm on the full Lassen model (2 nodes ×
// 4 GPUs).
func CollFusion(spec cluster.Spec) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Collective-scope kernel fusion: Alltoallw, %s, 8 ranks, 32 KiB strided legs", spec.Name),
		Header: []string{"algorithm", "launches_fused", "launches_permsg", "launch_cut", "t_fused_us", "t_permsg_us", "speedup"},
	}
	for _, alg := range []coll.Algorithm{coll.Linear, coll.Pairwise, coll.Hierarchical} {
		fused, err1 := runCollAlltoallw(spec, alg, false, collLayout())
		unfused, err2 := runCollAlltoallw(spec, alg, true, collLayout())
		if err1 != nil || err2 != nil {
			t.Rows = append(t.Rows, []string{alg.String(), "ERROR", "", "", "", "", ""})
			continue
		}
		t.Rows = append(t.Rows, []string{
			alg.String(),
			fmt.Sprint(fused.launches), fmt.Sprint(unfused.launches),
			fmt.Sprintf("%.1fx", float64(unfused.launches)/float64(fused.launches)),
			fmtUs(fused.ns), fmtUs(unfused.ns),
			fmt.Sprintf("%.2fx", float64(unfused.ns)/float64(fused.ns)),
		})
	}
	return t
}

// CollAlgorithms compares the Allgatherv algorithm menu at a small and a
// rendezvous-sized per-rank contribution, showing where the selection
// policy's crossovers sit (Bruck for latency-bound small messages,
// hierarchical two-level aggregation once the inter-node legs dominate).
func CollAlgorithms(spec cluster.Spec) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Allgatherv algorithms, %s, 8 ranks (us)", spec.Name),
		Header: []string{"algorithm", "small_us", "big_us", "launches_big"},
	}
	algs := []coll.Algorithm{coll.Linear, coll.Ring, coll.Bruck, coll.RecursiveDoubling, coll.Hierarchical}
	for _, alg := range algs {
		small, err1 := runCollAllgatherv(spec, alg, collSmallLayout())
		big, err2 := runCollAllgatherv(spec, alg, collLayout())
		if err1 != nil || err2 != nil {
			t.Rows = append(t.Rows, []string{alg.String(), "ERROR", "", ""})
			continue
		}
		t.Rows = append(t.Rows, []string{
			alg.String(), fmtUs(small.ns), fmtUs(big.ns), fmt.Sprint(big.launches),
		})
	}
	return t
}

// Coll bundles the collectives-subsystem experiment tables (ddtbench
// -fig coll).
func Coll(spec cluster.Spec) []*Table {
	return []*Table{CollFusion(spec), CollAlgorithms(spec)}
}
