package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fusion"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file holds the ablation experiments called out in DESIGN.md §4:
// each isolates one design decision of the fusion framework and compares
// the chosen design against its alternative.

// boundarySyncFusion wraps the fusion scheme but waits for the whole fused
// kernel at every flush — reintroducing the kernel-boundary synchronization
// the paper's response-status protocol eliminates (step ③ of Fig. 5).
type boundarySyncFusion struct {
	inner *schemes.Fusion
}

func newBoundarySyncFusion(r *mpi.Rank) mpi.Scheme {
	return &boundarySyncFusion{inner: schemes.NewFusion(r).(*schemes.Fusion)}
}

func (s *boundarySyncFusion) Name() string { return "Fusion+BoundarySync" }

func (s *boundarySyncFusion) Pack(p *sim.Proc, job *pack.Job) mpi.Handle {
	return s.inner.Pack(p, job)
}

func (s *boundarySyncFusion) Unpack(p *sim.Proc, job *pack.Job) mpi.Handle {
	return s.inner.Unpack(p, job)
}

func (s *boundarySyncFusion) DirectIPC(p *sim.Proc, job *pack.Job) (mpi.Handle, bool) {
	return s.inner.DirectIPC(p, job)
}

// Flush launches pending work and then blocks until the whole fused stream
// drains — an explicit CPU-GPU synchronization at the kernel boundary.
func (s *boundarySyncFusion) Flush(p *sim.Proc) {
	s.inner.Flush(p)
	s.inner.SyncStream(p)
}

// AblationSyncVsStatusPoll compares the paper's GPU-written response-status
// completion (no kernel-boundary sync) against an explicit synchronize
// after every fused launch.
func AblationSyncVsStatusPoll() *Table {
	wl := workload.Specfem3DCM()
	t := &Table{
		Title:  "Ablation: response-status polling vs kernel-boundary sync (specfem3D_cm dim=32, 16 buffers, Lassen, us)",
		Header: []string{"variant", "latency_us"},
	}
	base := RunBulk(BulkOptions{System: cluster.Lassen(), Scheme: "Proposed-Tuned", Workload: wl, Dim: 32, Buffers: 16})
	t.Rows = append(t.Rows, []string{"status-poll (paper)", cell(base)})

	env := BulkOptions{System: cluster.Lassen(), Scheme: "Proposed-Tuned", Workload: wl, Dim: 32, Buffers: 16}
	env.defaults()
	r := runBulkWithFactory(env, newBoundarySyncFusion)
	t.Rows = append(t.Rows, []string{"boundary-sync", cell(r)})
	return t
}

// AblationFlushPolicy sweeps the flush policy: fuse-nothing (launch every
// request alone), the tuned byte threshold, and fuse-everything (only the
// Waitall flush launches).
func AblationFlushPolicy() *Table {
	wl := workload.Specfem3DCM()
	t := &Table{
		Title:  "Ablation: flush policy (specfem3D_cm dim=32, 16 buffers, Lassen, us)",
		Header: []string{"policy", "latency_us"},
	}
	cases := []struct {
		name      string
		threshold int64
	}{
		{"fuse-nothing (thr=1B)", 1},
		{"tuned (thr=512KB)", 512 << 10},
		{"fuse-everything (thr=inf)", 1 << 50},
	}
	for _, c := range cases {
		r := RunBulk(BulkOptions{
			System: cluster.Lassen(), Scheme: "Proposed", Workload: wl,
			Dim: 32, Buffers: 16, FusionThreshold: c.threshold,
		})
		t.Rows = append(t.Rows, []string{c.name, cell(r)})
	}
	return t
}

// AblationPartitioning compares work-proportional cooperative-group
// partitioning against a naive uniform split. The experiment fuses a
// heterogeneous batch — many tiny sparse packs plus a few fat dense packs
// — directly on the fusion scheduler: a uniform split hands the fat
// requests the same number of thread blocks as the tiny ones and stretches
// the kernel span (the Partition phase of paper Fig. 6 exists precisely to
// avoid this).
func AblationPartitioning() *Table {
	t := &Table{
		Title:  "Ablation: cooperative-group partitioning (15 trivial + 1 huge sparse request fused, Lassen, us)",
		Header: []string{"partitioning", "fused_span_us"},
	}
	huge := workload.Specfem3DCM().Layout(64) // ~12k tiny blocks
	for _, uniform := range []bool{false, true} {
		arch := cluster.VoltaV100NVLink()
		arch.UniformFusedPartition = uniform
		env := sim.NewEnv()
		dev := gpu.NewDevice(env, arch, 0, 0)
		sched := fusion.NewScheduler(dev, dev.NewStream("f"), fusion.Config{ThresholdBytes: 1 << 50})
		var span int64
		env.Spawn("pe", func(p *sim.Proc) {
			var uids []int64
			enq := func(bytes int64, segs int, max int64) {
				src := dev.Alloc(fmt.Sprintf("s%d", len(uids)), 1)
				dst := dev.Alloc(fmt.Sprintf("d%d", len(uids)), 1)
				j := &pack.Job{Op: pack.OpPack, Origin: src, Target: dst, Bytes: bytes, Segments: segs, MaxBlock: max}
				uids = append(uids, sched.Enqueue(p, j))
			}
			for i := 0; i < 15; i++ {
				enq(4<<10, 4, 1<<10) // trivial dense requests
			}
			enq(huge.SizeBytes, huge.NumBlocks(), huge.MaxBlockBytes)
			start := p.Now()
			sched.Flush(p)
			for _, u := range uids {
				if ev := sched.DoneEvent(u); ev != nil {
					p.Wait(ev)
				}
				sched.Release(u)
			}
			span = p.Now() - start
		})
		if err := env.Run(); err != nil {
			t.Rows = append(t.Rows, []string{"error", err.Error()})
			continue
		}
		name := "work-proportional (paper)"
		if uniform {
			name = "uniform split"
		}
		t.Rows = append(t.Rows, []string{name, fmtUs(span)})
	}
	return t
}

// AblationRendezvous compares RGET (RTS after packing) against RPUT (RTS
// overlaps packing) for a large dense workload — Section IV-B1.
func AblationRendezvous() *Table {
	t := &Table{
		Title:  "Ablation: rendezvous protocol (NAS_MG dim=128, 8 buffers, Lassen, us)",
		Header: []string{"protocol", "latency_us"},
	}
	for _, mode := range []mpi.RendezvousMode{mpi.RGET, mpi.RPUT} {
		r := RunBulk(BulkOptions{
			System: cluster.Lassen(), Scheme: "Proposed-Tuned",
			Workload: workload.NASMG(), Dim: 128, Buffers: 8,
			MutateMPI: mutRendezvous(mode),
		})
		t.Rows = append(t.Rows, []string{mode.String(), cell(r)})
	}
	return t
}

// AblationLayoutCache compares the cached datatype layouts of [24] against
// re-flattening on every message.
func AblationLayoutCache() *Table {
	wl := workload.Specfem3DCM()
	t := &Table{
		Title:  "Ablation: layout cache (specfem3D_cm dim=32, 16 buffers, Lassen, us)",
		Header: []string{"variant", "latency_us"},
	}
	for _, disabled := range []bool{false, true} {
		r := RunBulk(BulkOptions{
			System: cluster.Lassen(), Scheme: "Proposed-Tuned",
			Workload: wl, Dim: 32, Buffers: 16,
			MutateMPI: func(c *mpi.Config) { c.DisableLayoutCache = disabled },
		})
		name := "cached (paper)"
		if disabled {
			name = "flatten every message"
		}
		t.Rows = append(t.Rows, []string{name, cell(r)})
	}
	return t
}

// Ablations runs every ablation experiment.
func Ablations() []*Table {
	return []*Table{
		AblationSyncVsStatusPoll(),
		AblationFlushPolicy(),
		AblationPartitioning(),
		AblationRendezvous(),
		AblationLayoutCache(),
		AblationPipeline(),
	}
}

// runBulkWithFactory is RunBulk with a custom scheme factory (ablation
// variants that are not in the schemes registry).
func runBulkWithFactory(opt BulkOptions, factory mpi.SchemeFactory) BulkResult {
	opt.defaults()
	env := sim.NewEnv()
	cl := cluster.MustBuild(env, opt.System)
	cfg := mpi.DefaultConfig()
	if opt.MutateMPI != nil {
		opt.MutateMPI(&cfg)
	}
	w := mpi.NewWorld(cl, cfg, factory)
	l := opt.Workload.Layout(opt.Dim)
	a, bPeer := 0, opt.System.GPUsPerNode
	res := BulkResult{Scheme: "custom", MsgBytes: l.SizeBytes, Blocks: l.NumBlocks()}
	sb := make([]*bufPair, opt.Buffers)
	for i := range sb {
		sb[i] = &bufPair{
			as: w.Rank(a).Dev.Alloc(fmt.Sprintf("as%d", i), int(l.ExtentBytes)),
			ar: w.Rank(a).Dev.Alloc(fmt.Sprintf("ar%d", i), int(l.ExtentBytes)),
			bs: w.Rank(bPeer).Dev.Alloc(fmt.Sprintf("bs%d", i), int(l.ExtentBytes)),
			br: w.Rank(bPeer).Dev.Alloc(fmt.Sprintf("br%d", i), int(l.ExtentBytes)),
		}
		workload.FillPattern(sb[i].as.Data, uint64(i+1))
		workload.FillPattern(sb[i].bs.Data, uint64(i+1001))
	}
	var total int64
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		mine := r.ID() == a || r.ID() == bPeer
		for it := 0; it < opt.Warmup+opt.Iterations; it++ {
			w.Barrier(p)
			t0 := p.Now()
			if mine {
				var reqs []*mpi.Request
				for i := 0; i < opt.Buffers; i++ {
					if r.ID() == a {
						reqs = append(reqs, r.Irecv(p, bPeer, i, sb[i].ar, l, 1))
					} else {
						reqs = append(reqs, r.Irecv(p, a, i, sb[i].br, l, 1))
					}
				}
				for i := 0; i < opt.Buffers; i++ {
					if r.ID() == a {
						reqs = append(reqs, r.Isend(p, bPeer, i, sb[i].as, l, 1))
					} else {
						reqs = append(reqs, r.Isend(p, a, i, sb[i].bs, l, 1))
					}
				}
				r.Waitall(p, reqs)
			}
			w.Barrier(p)
			if r.ID() == a && it >= opt.Warmup {
				total += p.Now() - t0
			}
		}
	})
	if err != nil {
		res.VerifyErr = err
		return res
	}
	res.AvgNs = total / int64(opt.Iterations)
	for i := range sb {
		if err := workload.VerifyBlocks(l, 1, sb[i].as.Data, sb[i].br.Data); err != nil {
			res.VerifyErr = err
			return res
		}
		if err := workload.VerifyBlocks(l, 1, sb[i].bs.Data, sb[i].ar.Data); err != nil {
			res.VerifyErr = err
			return res
		}
	}
	return res
}

type bufPair struct{ as, ar, bs, br *gpu.Buffer }

// AblationPipeline measures chunked (pipelined) rendezvous against the
// whole-message path for a large sparse exchange. On the modeled systems
// this is a negative result worth recording: V100-class packing is far
// faster than the EDR wire, so overlapping pack chunks with transfers buys
// almost nothing while the per-chunk control traffic costs a few percent —
// the economics behind the paper's choice to fuse packs rather than
// pipeline them.
func AblationPipeline() *Table {
	wl := workload.Specfem3DCM()
	t := &Table{
		Title:  "Ablation: chunked pipelined rendezvous (specfem3D_cm dim=64, 8 buffers, Lassen, us)",
		Header: []string{"rendezvous", "latency_us"},
	}
	for _, chunk := range []int64{0, 32 << 10} {
		r := RunBulk(BulkOptions{
			System: cluster.Lassen(), Scheme: "Proposed-Tuned",
			Workload: wl, Dim: 64, Buffers: 8,
			MutateMPI: func(c *mpi.Config) { c.PipelineChunkBytes = chunk },
		})
		name := "whole-message (paper)"
		if chunk > 0 {
			name = "chunked 32KB"
		}
		t.Rows = append(t.Rows, []string{name, cell(r)})
	}
	return t
}
