package bench

import (
	"testing"

	"repro/internal/cluster"
)

func TestApproachesAllVerifyAndRank(t *testing.T) {
	tab := Approaches(cluster.Lassen())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(i int) float64 { return mustF(t, tab.Rows[i][2]) }
	alg1, alg2, alg3sync, alg3fused := get(0), get(1), get(2), get(3)

	// Alg. 2's single sync per phase beats Alg. 1's per-message sync.
	if alg2 >= alg1 {
		t.Errorf("app-level (%f) should beat per-message explicit pack (%f)", alg2, alg1)
	}
	// The proposed fusion makes the implicit approach the fastest of all
	// — the paper's thesis: productivity AND performance.
	for i, other := range []float64{alg1, alg2, alg3sync} {
		if alg3fused >= other {
			t.Errorf("fused implicit (%f) should beat approach %d (%f)", alg3fused, i, other)
		}
	}
}
