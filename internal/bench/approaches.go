package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file reproduces the paper's Section III analysis: the three ways an
// application can move bulk non-contiguous GPU data with MPI (Fig. 4 and
// Algorithms 1-3), measured head to head.
//
//	Algorithm 1 — MPI-level explicit: blocking MPI_Pack / MPI_Unpack
//	              around contiguous sends; every pack synchronizes.
//	Algorithm 2 — application-level explicit: the app launches its own
//	              pack/unpack kernels with one synchronization per phase,
//	              then sends contiguous buffers.
//	Algorithm 3 — MPI-level implicit: non-contiguous buffers passed
//	              straight to Isend/Irecv; the runtime's DDT scheme
//	              (including the proposed fusion) handles packing.
type approachFn func(w *mpi.World, l *datatype.Layout, nbuf, it int, sb, rb []*gpu.Buffer, r *mpi.Rank, p *sim.Proc, peer int, sender bool)

// Algorithm 1: MPI-level explicit pack/unpack.
func algorithm1(w *mpi.World, l *datatype.Layout, nbuf, it int, sb, rb []*gpu.Buffer, r *mpi.Rank, p *sim.Proc, peer int, sender bool) {
	packedType := datatype.Commit(datatype.Contiguous(int(l.SizeBytes), datatype.Byte))
	var reqs []*mpi.Request
	if sender {
		for i := 0; i < nbuf; i++ {
			staging := r.Dev.Alloc(fmt.Sprintf("alg1-s%d-%d", it, i), int(l.SizeBytes))
			var pos int64
			r.Pack(p, sb[i], l, 1, staging, &pos) // blocking (red line in Fig. 4a)
			reqs = append(reqs, r.Isend(p, peer, i, staging, packedType, 1))
		}
		r.Waitall(p, reqs)
		return
	}
	stagings := make([]*gpu.Buffer, nbuf)
	for i := 0; i < nbuf; i++ {
		stagings[i] = r.Dev.Alloc(fmt.Sprintf("alg1-r%d-%d", it, i), int(l.SizeBytes))
		reqs = append(reqs, r.Irecv(p, peer, i, stagings[i], packedType, 1))
	}
	r.Waitall(p, reqs)
	for i := 0; i < nbuf; i++ {
		var pos int64
		r.Unpack(p, stagings[i], &pos, rb[i], l, 1) // blocking
	}
}

// Algorithm 2: application-level explicit pack/unpack — custom kernels,
// one synchronization per phase, no overlap with communication.
func algorithm2(w *mpi.World, l *datatype.Layout, nbuf, it int, sb, rb []*gpu.Buffer, r *mpi.Rank, p *sim.Proc, peer int, sender bool) {
	packedType := datatype.Commit(datatype.Contiguous(int(l.SizeBytes), datatype.Byte))
	st := r.Dev.NewStream("app-pack")
	var reqs []*mpi.Request
	if sender {
		stagings := make([]*gpu.Buffer, nbuf)
		for i := 0; i < nbuf; i++ {
			stagings[i] = r.Dev.Alloc(fmt.Sprintf("alg2-s%d-%d", it, i), int(l.SizeBytes))
			job := pack.NewJob(pack.OpPack, sb[i], stagings[i], l.Blocks)
			st.Launch(p, job.KernelSpec())
		}
		st.Synchronize(p) // single sync at the kernel boundary (Alg. 2 line 6)
		for i := 0; i < nbuf; i++ {
			reqs = append(reqs, r.Isend(p, peer, i, stagings[i], packedType, 1))
		}
		r.Waitall(p, reqs)
		return
	}
	stagings := make([]*gpu.Buffer, nbuf)
	for i := 0; i < nbuf; i++ {
		stagings[i] = r.Dev.Alloc(fmt.Sprintf("alg2-r%d-%d", it, i), int(l.SizeBytes))
		reqs = append(reqs, r.Irecv(p, peer, i, stagings[i], packedType, 1))
	}
	r.Waitall(p, reqs)
	for i := 0; i < nbuf; i++ {
		job := pack.NewJob(pack.OpUnpack, stagings[i], rb[i], l.Blocks)
		st.Launch(p, job.KernelSpec())
	}
	st.Synchronize(p) // Alg. 2 line 17
}

// Algorithm 3: MPI-level implicit — the 10-line productive version.
func algorithm3(w *mpi.World, l *datatype.Layout, nbuf, it int, sb, rb []*gpu.Buffer, r *mpi.Rank, p *sim.Proc, peer int, sender bool) {
	var reqs []*mpi.Request
	if sender {
		for i := 0; i < nbuf; i++ {
			reqs = append(reqs, r.Isend(p, peer, i, sb[i], l, 1))
		}
	} else {
		for i := 0; i < nbuf; i++ {
			reqs = append(reqs, r.Irecv(p, peer, i, rb[i], l, 1))
		}
	}
	r.Waitall(p, reqs)
}

// runApproach measures one approach under one underlying scheme.
func runApproach(system cluster.Spec, scheme string, wl workload.Workload, dim, nbuf int, fn approachFn) BulkResult {
	const warmup, iters = 2, 3
	env := sim.NewEnv()
	cl := cluster.MustBuild(env, system)
	w := mpi.NewWorld(cl, mpi.DefaultConfig(), schemes.Factory(scheme))
	l := wl.Layout(dim)
	a, bPeer := 0, system.GPUsPerNode
	sb := make([]*gpu.Buffer, nbuf)
	rb := make([]*gpu.Buffer, nbuf)
	for i := range sb {
		sb[i] = w.Rank(a).Dev.Alloc(fmt.Sprintf("s%d", i), int(l.ExtentBytes))
		rb[i] = w.Rank(bPeer).Dev.Alloc(fmt.Sprintf("r%d", i), int(l.ExtentBytes))
		workload.FillPattern(sb[i].Data, uint64(i+1))
	}
	res := BulkResult{Scheme: scheme, MsgBytes: l.SizeBytes, Blocks: l.NumBlocks()}
	var total int64
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		for it := 0; it < warmup+iters; it++ {
			w.Barrier(p)
			t0 := p.Now()
			switch r.ID() {
			case a:
				fn(w, l, nbuf, it, sb, rb, r, p, bPeer, true)
			case bPeer:
				fn(w, l, nbuf, it, sb, rb, r, p, a, false)
			}
			w.Barrier(p)
			if r.ID() == a && it >= warmup {
				total += p.Now() - t0
			}
		}
	})
	if err != nil {
		res.VerifyErr = err
		return res
	}
	res.AvgNs = total / iters
	for i := range sb {
		if err := workload.VerifyBlocks(l, 1, sb[i].Data, rb[i].Data); err != nil {
			res.VerifyErr = fmt.Errorf("buffer %d: %w", i, err)
			return res
		}
	}
	return res
}

// Approaches compares the three Section III approaches on a sparse
// workload: explicit MPI pack (Alg. 1), application-level kernels (Alg. 2),
// and implicit DDT under both a legacy scheme and the proposed fusion.
func Approaches(system cluster.Spec) *Table {
	wl := workload.Specfem3DCM()
	const dim, nbuf = 32, 16
	t := &Table{
		Title: fmt.Sprintf("Section III approaches: %s dim=%d, %d buffers, %s (us, lower is better)",
			wl.Name, dim, nbuf, system.Name),
		Header: []string{"approach", "ddt_scheme", "latency_us"},
	}
	rows := []struct {
		name   string
		scheme string
		fn     approachFn
	}{
		{"Alg1 MPI explicit pack", "GPU-Sync", algorithm1},
		{"Alg2 app-level kernels", "GPU-Sync", algorithm2},
		{"Alg3 implicit (GPU-Sync)", "GPU-Sync", algorithm3},
		{"Alg3 implicit (Proposed)", "Proposed-Tuned", algorithm3},
	}
	for _, row := range rows {
		r := runApproach(system, row.scheme, wl, dim, nbuf, row.fn)
		t.Rows = append(t.Rows, []string{row.name, row.scheme, cell(r)})
	}
	return t
}
