package bench

import (
	"errors"
	"fmt"

	"runtime"
	"time"

	"repro/internal/ckpt"
	"repro/internal/coll"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// The chaos-scale benchmark is the scale benchmark's fault-tolerant twin:
// the same sparse hierarchical Alltoallw (16 wrap-around peers, 32 KiB
// legs, lazy payloads), but driven through the rank-crash preset — a rank
// dies mid-collective, the failure detector fires, survivors Agree +
// Shrink and retry on the dense survivor communicator, and every retried
// leg must land checksum-exact through the span algebra. Three modes:
//
//   - no-fault:            the collective completes untouched (baseline),
//   - rank-crash:          crash + shrink + verified retry,
//   - rank-crash+restore:  as above, plus each survivor's registered state
//     is rolled back to a pre-run coordinated checkpoint (internal/ckpt)
//     during recovery, and the dead rank's snapshot is re-verified via its
//     buddy.
//
// The point of the table is the wall-time column: recovery at 1024 ranks
// costs seconds, not minutes, because lazy payloads make the crash, the
// retransmissions, and the checkpoint snapshots all O(spans) instead of
// O(bytes).

// chaosScaleSeed fixes the rank-crash preset draw for every table cell:
// rank 2 dies at 27 us, inside the first collective's failure window.
const chaosScaleSeed = 1

// chaosHorizonNs bounds the survivor retry loop: crash time plus the
// detection bound plus slack, same constant the chaos test matrix uses.
const chaosHorizonNs = 400_000

// chaosStateBytes is the per-rank registered state a restore-mode run
// checkpoints and rolls back: 1 MiB, far above the lazy threshold, so the
// snapshot is a span clone.
const chaosStateBytes = 1 << 20

// chaosRetryLayout is the per-leg datatype for the post-shrink retry:
// contiguous 32 KiB, so a delivered leg's span-algebra checksum can be
// compared directly against the sender's without materializing either.
func chaosRetryLayout() *datatype.Layout {
	return datatype.Commit(datatype.Contiguous(32<<10, datatype.Byte))
}

// chaosMeasure extends scaleMeasure with the fault-path observables.
type chaosMeasure struct {
	scaleMeasure
	crashed int
	retrans int64
}

// runChaosScale drives one chaos-scale cell. mode is one of "no-fault",
// "rank-crash", "rank-crash+restore".
func runChaosScale(ranks int, mode string) (chaosMeasure, error) {
	var cm chaosMeasure
	withFaults := mode != "no-fault"
	withRestore := mode == "rank-crash+restore"
	var plan *fault.Plan
	if withFaults {
		var err error
		plan, err = fault.Preset("rank-crash", chaosScaleSeed)
		if err != nil {
			return cm, err
		}
	}
	env, w, err := scaleWorldCfg(ranks, true, func(c *mpi.Config) { c.Faults = plan })
	if err != nil {
		return cm, err
	}
	size := w.Size()
	ops := makeScaleA2AOps(w, collLayout())
	e := coll.New(w, coll.Tuning{Alltoallw: coll.Hierarchical})

	// Dead set and dense survivor re-rank, known up front from the plan.
	dead := make(map[int]bool)
	if withFaults {
		for _, cr := range plan.Proc.Crashes {
			if cr.Rank < size {
				dead[cr.Rank] = true
			}
		}
	}
	nSurv := size - len(dead)
	world2comm := make([]int, size)
	comm2world := make([]int, 0, nSurv)
	for i, cr := 0, 0; i < size; i++ {
		if dead[i] {
			world2comm[i] = -1
			continue
		}
		world2comm[i] = cr
		comm2world = append(comm2world, i)
		cr++
	}

	// Retry state for the survivor comm: the same sparse wrap-around
	// pattern, re-wrapped in comm-rank space with fresh buffers.
	var retry [][]coll.WOp
	if withFaults {
		rl := chaosRetryLayout()
		half := scaleNeighbors / 2
		retry = make([][]coll.WOp, nSurv)
		for cr := 0; cr < nSurv; cr++ {
			dev := w.Rank(comm2world[cr]).Dev
			retry[cr] = make([]coll.WOp, nSurv)
			for d := 1; d <= half; d++ {
				for _, peer := range []int{(cr + d) % nSurv, (cr - d + nSurv) % nSurv} {
					if retry[cr][peer].SendBuf != nil {
						continue
					}
					sb := dev.Alloc(fmt.Sprintf("cx-s-%d-%d", cr, peer), int(rl.ExtentBytes))
					rb := dev.Alloc(fmt.Sprintf("cx-r-%d-%d", cr, peer), int(rl.ExtentBytes))
					sb.FillStream(uint64(cr)<<32 | uint64(peer+1))
					retry[cr][peer] = coll.WOp{SendBuf: sb, SendType: rl, SendCount: 1, RecvBuf: rb, RecvType: rl, RecvCount: 1}
				}
			}
		}
	}

	// Restore mode: register per-rank state and take the coordinated
	// checkpoint before the run, driver-side.
	var st *ckpt.Store
	var state []*gpu.Buffer
	var stateSums []uint64
	if withRestore {
		st = ckpt.NewStore(size)
		state = make([]*gpu.Buffer, size)
		stateSums = make([]uint64, size)
		for r := 0; r < size; r++ {
			state[r] = w.Rank(r).Dev.Alloc(fmt.Sprintf("cx-st-%d", r), chaosStateBytes)
			state[r].FillStream(uint64(0xC0FFEE + r))
			stateSums[r] = state[r].Checksum()
			st.Register(r, state[r])
		}
		if ep := st.CaptureAll(env.Now(), 0); ep == nil || !ep.Committed() {
			return cm, errors.New("bench: chaos-scale checkpoint did not commit")
		}
	}

	var bodyErr error
	fail := func(format string, args ...any) {
		if bodyErr == nil {
			bodyErr = fmt.Errorf(format, args...)
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	runErr := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		me := r.ID()
		if !withFaults {
			if cerr := e.Alltoallw(p, r, ops[me]); cerr != nil {
				fail("rank %d: %w", me, cerr)
			}
			return
		}
		var cerr error
		for cerr == nil && p.Now() < chaosHorizonNs {
			cerr = e.Alltoallw(p, r, ops[me])
		}
		if !errors.Is(cerr, mpi.ErrRankFailed) && !errors.Is(cerr, mpi.ErrCommRevoked) {
			fail("rank %d: expected typed failure, got %v", me, cerr)
			return
		}
		wc := w.WorldComm()
		if _, aerr := wc.Agree(p, r, 0); aerr == nil {
			fail("rank %d: Agree did not surface the failure", me)
			return
		}
		sub, serr := wc.Shrink(p, r)
		if serr != nil {
			fail("rank %d: shrink: %w", me, serr)
			return
		}
		if sub.Size() != nSurv || sub.CommRank(me) != world2comm[me] {
			fail("rank %d: shrunken comm size=%d commRank=%d, want %d/%d",
				me, sub.Size(), sub.CommRank(me), nSurv, world2comm[me])
			return
		}
		if withRestore {
			// The crash invalidated in-progress work: roll the registered
			// state back to the coordinated checkpoint.
			st.MarkDead(firstKey(dead))
			state[me].FillStream(0xBAD)
			if _, _, rerr := st.RestoreRank(me); rerr != nil {
				fail("rank %d: restore: %w", me, rerr)
				return
			}
		}
		if rerr := e.Sub(sub).Alltoallw(p, r, retry[world2comm[me]]); rerr != nil {
			fail("rank %d: retry on shrunken comm: %w", me, rerr)
		}
	})
	cm.wall = time.Since(t0)
	runtime.ReadMemStats(&after)
	cm.virtNs = env.Now()
	cm.allocMB = float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	for i := 0; i < size; i++ {
		cm.kernels += w.Rank(i).Dev.Stats.KernelLaunches
	}
	cm.crashed = len(w.CrashedRanks())
	cm.retrans = w.Injector().Count(fault.Retransmit)
	if runErr != nil {
		return cm, fmt.Errorf("bench: chaos-scale world: %w", runErr)
	}
	if bodyErr != nil {
		return cm, bodyErr
	}
	if withFaults && cm.crashed != len(dead) {
		return cm, fmt.Errorf("bench: %d ranks crashed, plan says %d", cm.crashed, len(dead))
	}

	// Checksum-exact delivery of the retried legs, straight through the
	// span algebra — no materialization at any rank count. (The baseline
	// mode's strided delivery is covered by the conformance suite; here it
	// only has to complete leak-free.)
	if withFaults {
		for cr := 0; cr < nSurv; cr++ {
			for peer := range retry[cr] {
				if retry[cr][peer].SendBuf == nil {
					continue
				}
				if retry[cr][peer].RecvBuf.Checksum() != retry[peer][cr].SendBuf.Checksum() {
					return cm, fmt.Errorf("bench: comm rank %d recv-from-%d not checksum-exact after shrink retry", cr, peer)
				}
			}
		}
	}
	if withRestore {
		for _, i := range comm2world {
			if state[i].Checksum() != stateSums[i] {
				return cm, fmt.Errorf("bench: rank %d state not rolled back to the checkpoint", i)
			}
		}
		// The dead rank's snapshot survives on its buddy.
		d := firstKey(dead)
		if !st.Available(d) {
			return cm, fmt.Errorf("bench: dead rank %d snapshot unavailable despite live buddy", d)
		}
		adopted := w.Rank(st.Buddy(d)).Dev.Alloc("cx-adopt", chaosStateBytes)
		if _, aerr := st.AdoptRank(st.Buddy(d), d, []*gpu.Buffer{adopted}); aerr != nil {
			return cm, fmt.Errorf("bench: buddy adoption: %w", aerr)
		}
		if adopted.Checksum() != stateSums[d] {
			return cm, fmt.Errorf("bench: adopted state differs from rank %d's captured state", d)
		}
	}
	if lk := w.LeakedRequests(); lk != 0 {
		return cm, fmt.Errorf("bench: chaos-scale run leaked %d requests", lk)
	}
	if fj := w.PendingFusedJobs(); fj != 0 {
		return cm, fmt.Errorf("bench: chaos-scale run stranded %d fused jobs", fj)
	}
	if lp := env.LiveProcs(); lp != 0 {
		return cm, fmt.Errorf("bench: chaos-scale run left %d live procs", lp)
	}
	return cm, nil
}

// firstKey returns the single key of a one-element set (the rank-crash
// preset kills exactly one rank).
func firstKey(m map[int]bool) int {
	for k := range m {
		return k
	}
	return -1
}

// chaosScaleModes are the table's columns-worth of scenarios, in order.
var chaosScaleModes = []string{"no-fault", "rank-crash", "rank-crash+restore"}

// chaosScaleRow runs one (ranks, mode) cell and renders it.
func chaosScaleRow(ranks int, mode string) []string {
	m, err := runChaosScale(ranks, mode)
	if err != nil {
		return []string{mode, fmt.Sprint(ranks), fmt.Sprint(ranks / 4), "ERROR: " + err.Error(), "", "", "", ""}
	}
	return []string{
		mode, fmt.Sprint(ranks), fmt.Sprint(ranks / 4),
		fmt.Sprintf("%.1f", float64(m.virtNs)/1e6),
		fmt.Sprintf("%.0f", float64(m.wall.Microseconds())/1000),
		fmt.Sprintf("%.1f", m.allocMB),
		fmt.Sprint(m.kernels),
		fmt.Sprint(m.crashed),
	}
}

// ChaosScale is the chaos-at-scale table (ddtbench -fig chaos-scale):
// wall time for the sparse hierarchical Alltoallw under rank crashes with
// shrink + verified retry, with and without checkpoint/restore, across
// rank counts up to maxRanks. Lazy payload mode throughout.
func ChaosScale(maxRanks int) *Table {
	t := &Table{
		Title: fmt.Sprintf("Chaos at scale: Alltoallw-hier (16 peers x 32 KiB, lazy) under rank-crash preset seed %d, Lassen model, Proposed-Tuned",
			int64(chaosScaleSeed)),
		Header: []string{"mode", "ranks", "nodes", "virt_ms", "wall_ms", "alloc_MB", "kernels", "crashed"},
	}
	for _, ranks := range []int{64, 256, 1024} {
		if ranks > maxRanks {
			continue
		}
		for _, mode := range chaosScaleModes {
			t.Rows = append(t.Rows, chaosScaleRow(ranks, mode))
		}
	}
	return t
}
