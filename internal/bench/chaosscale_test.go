package bench

import (
	"testing"
)

// TestChaosScaleSmoke runs every chaos-scale mode at a CI-sized rank
// count: the crash fires, survivors shrink and retry checksum-exact, the
// restore mode rolls state back, nothing leaks. 256 ranks normally, 64
// under -short.
func TestChaosScaleSmoke(t *testing.T) {
	ranks := 256
	if testing.Short() {
		ranks = 64
	}
	for _, mode := range chaosScaleModes {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			m, err := runChaosScale(ranks, mode)
			if err != nil {
				t.Fatal(err)
			}
			if mode == "no-fault" {
				if m.crashed != 0 {
					t.Fatalf("no-fault run crashed %d ranks", m.crashed)
				}
				return
			}
			if m.crashed != 1 {
				t.Fatalf("crashed = %d, want 1", m.crashed)
			}
			if m.virtNs <= 0 || m.kernels == 0 {
				t.Fatalf("degenerate measurement: virt=%d kernels=%d", m.virtNs, m.kernels)
			}
		})
	}
}

// TestChaosScale1024 is the acceptance run: a 1024-rank lazy-mode
// hierarchical Alltoallw under the rank-crash preset completes after
// Shrink with checksum-exact survivor data, a committed checkpoint rolled
// back on every survivor, and zero leaked requests or fused jobs (all
// asserted inside runChaosScale).
func TestChaosScale1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank chaos run skipped in -short")
	}
	m, err := runChaosScale(1024, "rank-crash+restore")
	if err != nil {
		t.Fatal(err)
	}
	if m.crashed != 1 {
		t.Fatalf("crashed = %d, want 1", m.crashed)
	}
	t.Logf("1024-rank chaos+restore: virt=%.1fms wall=%s alloc=%.1fMB kernels=%d retrans=%d",
		float64(m.virtNs)/1e6, m.wall, m.allocMB, m.kernels, m.retrans)
}

// TestChaosScaleFigureRegistered pins the figure id into the registry
// without paying for the full table (the smoke test covers the cells).
func TestChaosScaleFigureRegistered(t *testing.T) {
	found := false
	for _, id := range Figures() {
		if id == "chaos-scale" {
			found = true
		}
	}
	if !found {
		t.Fatal(`Figures() does not list "chaos-scale"`)
	}
	tab := ChaosScale(0)
	if len(tab.Rows) != 0 || len(tab.Header) == 0 {
		t.Fatalf("ChaosScale(0): %d rows, header %v", len(tab.Rows), tab.Header)
	}
}
