// Package rma is the one-sided (NVSHMEM-style) communication backend,
// layered beside the point-to-point/rendezvous engine of internal/mpi.
// It provides a per-rank symmetric heap (window allocations mirrored
// across every rank at identical offsets), one-sided Put/Get/PutSignal
// verbs, signal wait/poll primitives, and Quiet/Fence completion
// semantics — all on the virtual clock with a one-sided cost model: a
// put pays the NIC doorbell (verb post) plus the wire leg, never the
// RTS/CTS/FIN control round-trip of the rendezvous protocol, and no CPU
// progress engine runs on the target.
//
// PackPut is the fused pack-and-put primitive: a single pack-kernel
// launch whose retirement deposits the packed bytes directly onto the
// wire (GPU-triggered communication), eliminating the stream-sync gap
// between packing and posting that the CPU-driven path pays.
//
// Fault injection extends to the put path through Plan.RMA (drop,
// CRC-reject corrupt, delay, signal loss), rolled at per-endpoint sites
// ("rma:rankN"). Recovery is endpoint-local: every issued op arms a
// deterministic retransmission timer (only when an injector is
// installed, so fault-free runs keep their event streams byte-identical)
// and placement is idempotent — payload and signal application are
// guarded separately, so a put whose signal was lost retransmits without
// double-depositing bytes. Exact and lazy payload modes share one code
// path via gpu.CopyRange.
package rma

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// ErrRetriesExhausted surfaces from Quiet when an op's bounded
// retransmissions all failed.
var ErrRetriesExhausted = errors.New("rma: retries exhausted")

// OpError wraps a failed one-sided operation. Target is a fabric member
// index (identical to the world rank until the fabric is reseated onto a
// survivor communicator).
type OpError struct {
	Verb   string
	Target int
	Tries  int
	Err    error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("rma: %s to rank %d failed after %d tries: %v", e.Verb, e.Target, e.Tries, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// RevokedError reports a one-sided access on a revoked (or superseded)
// fabric epoch: the communicator backing the fabric was revoked, or the
// window/signal belongs to an epoch an intervening Reseat replaced. It
// unwraps to mpi.ErrCommRevoked, so the chaos contract's
// errors.Is(err, mpi.ErrCommRevoked) holds for one-sided survivors too.
type RevokedError struct {
	Epoch int   // the invalidated fabric epoch
	At    int64 // virtual time of revocation (or reseat)
}

func (e *RevokedError) Error() string {
	return fmt.Sprintf("rma: fabric epoch %d revoked at %dns", e.Epoch, e.At)
}

func (e *RevokedError) Unwrap() error { return mpi.ErrCommRevoked }

// Fabric is the one-sided fabric: one symmetric heap and one endpoint
// per rank. It is built over an existing mpi.World and shares its
// cluster, clock, fault injector, and timeline.
//
// A fabric is bound to a communicator epoch. At construction it spans
// the whole world (epoch 0, member index == world rank). After a rank
// failure, Reseat re-rendezvouses the fabric onto a Shrink survivor
// communicator: members are densely re-ranked, the symmetric heap is
// rebuilt from scratch (fresh mirrored offsets), and windows/signals of
// the old epoch are invalidated. Verb targets and window/signal rank
// indices are always member indices of the fabric's current epoch.
type Fabric struct {
	w     *mpi.World
	heap  *Heap
	eps   []*Endpoint
	named map[string]*winRef
	sigs  map[string]*Signal

	// Epoch state (ft.go). members maps member index -> world rank;
	// mindex is the inverse (-1 for non-members).
	comm      *mpi.Comm
	epoch     int
	members   []int
	mindex    []int
	joined    []int // per world rank: last epoch the rank joined (reseat charge dedup)
	revoked   bool
	revokedAt int64
	ft        bool        // world has failure tolerance armed
	fsite     *fault.Site // fabric-level reap/reseat event site (nil without injector)

	nextOp   int64
	nextColl int
}

// New builds the one-sided fabric for a world, spanning every rank at
// epoch 0. Multiple fabrics over one world are independent (separate
// heaps and endpoints) but share the wire and the injector's per-site
// streams. When the world has failure tolerance armed, the fabric
// registers with the heartbeat detector so in-flight deposits involving
// a declared-dead rank are reaped, and with the revocation observer so
// comm revocation invalidates the matching fabric epoch.
func New(w *mpi.World) *Fabric {
	f := &Fabric{
		w:     w,
		named: make(map[string]*winRef),
		sigs:  make(map[string]*Signal),
		ft:    w.FTEnabled(),
	}
	f.heap = &Heap{f: f, align: 64}
	n := w.Size()
	f.members = make([]int, n)
	f.mindex = make([]int, n)
	f.joined = make([]int, n)
	for i := 0; i < n; i++ {
		f.members[i] = i
		f.mindex[i] = i
	}
	inj := w.Injector()
	for i := 0; i < n; i++ {
		ep := &Endpoint{f: f, r: w.Rank(i)}
		if inj != nil {
			ep.site = inj.Site(fmt.Sprintf("rma:rank%d", i))
		}
		f.eps = append(f.eps, ep)
	}
	if inj != nil {
		f.fsite = inj.Site("rma:fabric")
	}
	if f.ft {
		w.OnRankFailed(f.reapDead)
		w.OnCommRevoked(f.commRevoked)
	}
	return f
}

// World returns the underlying two-sided world.
func (f *Fabric) World() *mpi.World { return f.w }

// Heap returns the symmetric heap (allocation state and invariants).
func (f *Fabric) Heap() *Heap { return f.heap }

// Endpoint returns world rank i's one-sided endpoint. Endpoints are
// world-rank addressed across reseats (the NIC belongs to the machine,
// not the epoch); verb targets are member indices.
func (f *Fabric) Endpoint(rank int) *Endpoint { return f.eps[rank] }

// Epoch reports the communicator epoch the fabric currently serves
// (0 = the unshrunk world).
func (f *Fabric) Epoch() int { return f.epoch }

// Size reports the fabric's member count at the current epoch.
func (f *Fabric) Size() int { return len(f.members) }

// Members returns the member world ranks in member-index order (a copy).
func (f *Fabric) Members() []int { return append([]int(nil), f.members...) }

// WorldRank translates a member index to its world rank (-1 if out of
// range).
func (f *Fabric) WorldRank(m int) int {
	if m < 0 || m >= len(f.members) {
		return -1
	}
	return f.members[m]
}

// MemberOf translates a world rank to its member index at the current
// epoch (-1 for non-members).
func (f *Fabric) MemberOf(worldRank int) int {
	if worldRank < 0 || worldRank >= len(f.mindex) {
		return -1
	}
	return f.mindex[worldRank]
}

// Revoked reports whether the fabric's current epoch has been revoked
// (windows unusable until Reseat).
func (f *Fabric) Revoked() bool { return f.revoked }

// NextCollID hands out collective-engine namespace ids so two engines
// over one fabric never collide on window/signal names.
func (f *Fabric) NextCollID() int {
	f.nextColl++
	return f.nextColl
}

// PendingOps sums incomplete operations across all endpoints — the
// leak oracle chaos tests assert reaches zero.
func (f *Fabric) PendingOps() int {
	n := 0
	for _, ep := range f.eps {
		n += ep.pending
	}
	return n
}

// TotalStats aggregates endpoint counters across the fabric.
func (f *Fabric) TotalStats() Stats {
	var s Stats
	for _, ep := range f.eps {
		s.add(ep.Stats)
	}
	return s
}

func (f *Fabric) net() *fabric.Network { return f.w.Cluster.Net }
func (f *Fabric) env() *sim.Env        { return f.w.Env }

// Stats counts one-sided activity on an endpoint.
type Stats struct {
	Puts        int64 // Put/PutSignal ops issued
	Gets        int64 // Get ops issued
	PackPuts    int64 // fused/unfused pack-and-put ops issued
	Doorbells   int64 // NIC verb posts (including doorbell retries)
	Retransmits int64 // timer-driven re-issues
	Polls       int64 // quiet/signal poll sleeps
	CtrlPuts    int64 // zero-payload control SignalPuts (offset exchange etc.)
	Reaped      int64 // in-flight ops completed early because a rank died
	BytesPut    int64
	BytesGot    int64
}

func (s *Stats) add(o Stats) {
	s.Puts += o.Puts
	s.Gets += o.Gets
	s.PackPuts += o.PackPuts
	s.Doorbells += o.Doorbells
	s.Retransmits += o.Retransmits
	s.Polls += o.Polls
	s.CtrlPuts += o.CtrlPuts
	s.Reaped += o.Reaped
	s.BytesPut += o.BytesPut
	s.BytesGot += o.BytesGot
}

// Endpoint is one rank's attachment to the one-sided fabric: the issue
// path for verbs, the completion state Quiet polls, and the per-rank
// fault site.
type Endpoint struct {
	f      *Fabric
	r      *mpi.Rank
	site   *fault.Site // nil without an injector: no timers, no rolls
	stream *gpu.Stream // lazily created pack-and-put stream

	pending  int           // ops issued and not yet complete
	inflight map[int64]*op // op registry for the reaper (only under failure tolerance)
	firstErr error

	Stats Stats
}

// Rank returns the owning rank.
func (ep *Endpoint) Rank() *mpi.Rank { return ep.r }

// Pending reports this endpoint's incomplete op count.
func (ep *Endpoint) Pending() int { return ep.pending }

// charge mirrors a Breakdown charge as an rma-layer timeline span — the
// pairing that keeps timeline sums reconciled with trace.Breakdown.
func (ep *Endpoint) charge(cat trace.Category, name string, start, d int64) {
	ep.r.Trace.Add(cat, d)
	if tl := ep.r.Timeline(); tl != nil {
		tl.Span(timeline.LayerRMA, cat, "", name, start, d)
	}
}
