// Package rma is the one-sided (NVSHMEM-style) communication backend,
// layered beside the point-to-point/rendezvous engine of internal/mpi.
// It provides a per-rank symmetric heap (window allocations mirrored
// across every rank at identical offsets), one-sided Put/Get/PutSignal
// verbs, signal wait/poll primitives, and Quiet/Fence completion
// semantics — all on the virtual clock with a one-sided cost model: a
// put pays the NIC doorbell (verb post) plus the wire leg, never the
// RTS/CTS/FIN control round-trip of the rendezvous protocol, and no CPU
// progress engine runs on the target.
//
// PackPut is the fused pack-and-put primitive: a single pack-kernel
// launch whose retirement deposits the packed bytes directly onto the
// wire (GPU-triggered communication), eliminating the stream-sync gap
// between packing and posting that the CPU-driven path pays.
//
// Fault injection extends to the put path through Plan.RMA (drop,
// CRC-reject corrupt, delay, signal loss), rolled at per-endpoint sites
// ("rma:rankN"). Recovery is endpoint-local: every issued op arms a
// deterministic retransmission timer (only when an injector is
// installed, so fault-free runs keep their event streams byte-identical)
// and placement is idempotent — payload and signal application are
// guarded separately, so a put whose signal was lost retransmits without
// double-depositing bytes. Exact and lazy payload modes share one code
// path via gpu.CopyRange.
package rma

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// ErrRetriesExhausted surfaces from Quiet when an op's bounded
// retransmissions all failed.
var ErrRetriesExhausted = errors.New("rma: retries exhausted")

// OpError wraps a failed one-sided operation.
type OpError struct {
	Verb   string
	Target int
	Tries  int
	Err    error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("rma: %s to rank %d failed after %d tries: %v", e.Verb, e.Target, e.Tries, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// Fabric is the world-level one-sided fabric: one symmetric heap and one
// endpoint per rank. It is built over an existing mpi.World and shares
// its cluster, clock, fault injector, and timeline.
type Fabric struct {
	w     *mpi.World
	heap  *Heap
	eps   []*Endpoint
	named map[string]*winRef
	sigs  map[string]*Signal

	nextOp   int64
	nextColl int
}

// New builds the one-sided fabric for a world. Multiple fabrics over one
// world are independent (separate heaps and endpoints) but share the
// wire and the injector's per-site streams.
func New(w *mpi.World) *Fabric {
	f := &Fabric{
		w:     w,
		named: make(map[string]*winRef),
		sigs:  make(map[string]*Signal),
	}
	f.heap = &Heap{f: f, align: 64}
	inj := w.Injector()
	for i := 0; i < w.Size(); i++ {
		ep := &Endpoint{f: f, r: w.Rank(i)}
		if inj != nil {
			ep.site = inj.Site(fmt.Sprintf("rma:rank%d", i))
		}
		f.eps = append(f.eps, ep)
	}
	return f
}

// World returns the underlying two-sided world.
func (f *Fabric) World() *mpi.World { return f.w }

// Heap returns the symmetric heap (allocation state and invariants).
func (f *Fabric) Heap() *Heap { return f.heap }

// Endpoint returns rank i's one-sided endpoint.
func (f *Fabric) Endpoint(rank int) *Endpoint { return f.eps[rank] }

// NextCollID hands out collective-engine namespace ids so two engines
// over one fabric never collide on window/signal names.
func (f *Fabric) NextCollID() int {
	f.nextColl++
	return f.nextColl
}

// PendingOps sums incomplete operations across all endpoints — the
// leak oracle chaos tests assert reaches zero.
func (f *Fabric) PendingOps() int {
	n := 0
	for _, ep := range f.eps {
		n += ep.pending
	}
	return n
}

// TotalStats aggregates endpoint counters across the fabric.
func (f *Fabric) TotalStats() Stats {
	var s Stats
	for _, ep := range f.eps {
		s.add(ep.Stats)
	}
	return s
}

func (f *Fabric) net() *fabric.Network { return f.w.Cluster.Net }
func (f *Fabric) env() *sim.Env        { return f.w.Env }

// Stats counts one-sided activity on an endpoint.
type Stats struct {
	Puts        int64 // Put/PutSignal ops issued
	Gets        int64 // Get ops issued
	PackPuts    int64 // fused/unfused pack-and-put ops issued
	Doorbells   int64 // NIC verb posts (including doorbell retries)
	Retransmits int64 // timer-driven re-issues
	Polls       int64 // quiet/signal poll sleeps
	BytesPut    int64
	BytesGot    int64
}

func (s *Stats) add(o Stats) {
	s.Puts += o.Puts
	s.Gets += o.Gets
	s.PackPuts += o.PackPuts
	s.Doorbells += o.Doorbells
	s.Retransmits += o.Retransmits
	s.Polls += o.Polls
	s.BytesPut += o.BytesPut
	s.BytesGot += o.BytesGot
}

// Endpoint is one rank's attachment to the one-sided fabric: the issue
// path for verbs, the completion state Quiet polls, and the per-rank
// fault site.
type Endpoint struct {
	f      *Fabric
	r      *mpi.Rank
	site   *fault.Site // nil without an injector: no timers, no rolls
	stream *gpu.Stream // lazily created pack-and-put stream

	pending  int // ops issued and not yet complete
	firstErr error

	Stats Stats
}

// Rank returns the owning rank.
func (ep *Endpoint) Rank() *mpi.Rank { return ep.r }

// Pending reports this endpoint's incomplete op count.
func (ep *Endpoint) Pending() int { return ep.pending }

// charge mirrors a Breakdown charge as an rma-layer timeline span — the
// pairing that keeps timeline sums reconciled with trace.Breakdown.
func (ep *Endpoint) charge(cat trace.Category, name string, start, d int64) {
	ep.r.Trace.Add(cat, d)
	if tl := ep.r.Timeline(); tl != nil {
		tl.Span(timeline.LayerRMA, cat, "", name, start, d)
	}
}
