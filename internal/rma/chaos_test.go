package rma_test

import (
	"fmt"
	"testing"

	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/rma"
	"repro/internal/sim"
)

// chaosRing is the canonical one-sided chaos workload: a ring of
// signalled pack-puts plus raw puts, so drops, CRC rejects, delays, and
// signal losses all hit payload and signal legs. Returns the final
// clock, total fault events, and the checksum over every window.
func chaosRing(t *testing.T, lazy bool, seed uint64) (clock int64, events int, sum uint64) {
	t.Helper()
	plan, err := fault.Preset("rma-flaky", seed)
	if err != nil {
		t.Fatal(err)
	}
	l := datatype.Commit(datatype.Vector(16, 8, 16, datatype.Float64))
	const count = 2
	w := testWorld(2, lazy, plan, false)
	f := rma.New(w)
	runErr := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		id := r.ID()
		entry := r.LayoutEntry(l, count)
		win, err := f.OpenWindow(id, "chaos", 3*entry.Bytes)
		if err != nil {
			t.Errorf("rank %d: %v", id, err)
			return
		}
		sig, err := f.OpenSignal("chaos-sig", 2)
		if err != nil {
			t.Errorf("rank %d: %v", id, err)
			return
		}
		origin := r.Dev.Alloc(fmt.Sprintf("origin%d", id), int(entry.Extent)*count)
		origin.FillStream(uint64(id) + 21)
		raw := r.Dev.Alloc(fmt.Sprintf("raw%d", id), int(entry.Bytes))
		raw.FillStream(uint64(id) + 91)
		ep := f.Endpoint(id)
		right := (id + 1) % w.Size()
		// Fused signalled pack-put into the right neighbour's middle
		// third, plus a raw signalled put into its upper third.
		if err := ep.PackPut(p, win, right, entry.Bytes, origin, l, count, 0, sig, 0, 1, true); err != nil {
			t.Errorf("rank %d packput: %v", id, err)
		}
		if err := ep.PutSignal(p, win, right, 2*entry.Bytes, raw, 0, entry.Bytes, sig, 1, 1); err != nil {
			t.Errorf("rank %d put: %v", id, err)
		}
		ep.WaitSignal(p, sig, 0, 1)
		ep.WaitSignal(p, sig, 1, 1)
		// Signal implies the payload already landed — checksum before
		// Quiet to catch any signal-before-payload reordering under
		// faults.
		left := (id - 1 + w.Size()) % w.Size()
		wantRaw := refChecksum(r, fmt.Sprintf("rref%d", id), uint64(left)+91, entry.Bytes)
		if got := win.Buf(id).ChecksumRange(2*entry.Bytes, entry.Bytes); got != wantRaw {
			t.Errorf("rank %d: raw deposit %#x, want %#x", id, got, wantRaw)
		}
		if err := ep.Quiet(p); err != nil {
			t.Errorf("rank %d quiet: %v", id, err)
		}
		w.Barrier(p)
		sum += win.Buf(id).Checksum()
		f.CloseSignal(sig)
		f.CloseWindow(win)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if f.PendingOps() != 0 {
		t.Fatalf("%d one-sided ops leaked", f.PendingOps())
	}
	if w.LeakedRequests() != 0 {
		t.Fatalf("%d two-sided requests leaked", w.LeakedRequests())
	}
	return w.Env.Now(), len(w.FaultEvents()), sum
}

// TestChaosRMAFlaky is the rma-flaky conformance cell: byte-exact
// delivery and full completion under drops, corruption, delays, and
// signal loss — in exact and lazy payload modes.
func TestChaosRMAFlaky(t *testing.T) {
	seeds := []uint64{1, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, lazy := range []bool{false, true} {
		lazy := lazy
		t.Run(fmt.Sprintf("lazy=%v", lazy), func(t *testing.T) {
			events := 0
			for _, seed := range seeds {
				_, ev, _ := chaosRing(t, lazy, seed)
				events += ev
			}
			if events == 0 {
				t.Fatal("rma-flaky injected no faults across the one-sided sweep")
			}
		})
	}
}

// TestChaosRMAReplay pins same-seed determinism under active injection:
// final clock, fault-event count, and delivered bytes all reproduce.
func TestChaosRMAReplay(t *testing.T) {
	c1, e1, s1 := chaosRing(t, false, 3)
	c2, e2, s2 := chaosRing(t, false, 3)
	if c1 != c2 || e1 != e2 || s1 != s2 {
		t.Fatalf("replay diverged: clock %d vs %d, events %d vs %d, sum %#x vs %#x", c1, c2, e1, e2, s1, s2)
	}
}

// TestChaosRMASeedMatters guards against the rma sites silently not
// drawing: different seeds must produce different runs (same bytes).
func TestChaosRMASeedMatters(t *testing.T) {
	c1, e1, s1 := chaosRing(t, false, 11)
	c2, e2, s2 := chaosRing(t, false, 12)
	if s1 != s2 {
		t.Fatal("delivered bytes must not depend on the fault seed")
	}
	if c1 == c2 && e1 == e2 {
		t.Fatalf("seeds 11 and 12 produced identical runs (clock %d, %d events) — rma sites not drawing?", c1, e1)
	}
}
