// Failure tolerance for the one-sided fabric: reaping in-flight deposits
// that involve a declared-dead rank, invalidating the fabric epoch when
// the backing communicator is revoked, and re-rendezvousing the symmetric
// heap onto a Shrink survivor communicator (dense re-rank, fresh epoch).
//
// The design mirrors ULFM's layering: detection and revocation gossip
// live in internal/mpi; the fabric only *observes* them through the
// OnRankFailed/OnCommRevoked hooks and keeps its own state (windows,
// signals, pending ops) consistent on the same virtual clock. All of it
// is gated on mpi's failure tolerance being armed, so fault-free runs
// keep byte-identical event streams.

package rma

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Modeled CPU cost of the survivor re-rendezvous (virtual ns), charged
// per member to trace.Recovery like mpi's Shrink costs: exchanging the
// new rank order and re-mirroring heap metadata is an O(members)
// collective over the control plane.
const (
	reseatBaseNs      = 1200
	reseatPerMemberNs = 300
)

// observe is the per-poll failure check used by WaitSignal/Quiet: it
// returns a typed error if the fabric epoch the caller is waiting on has
// been revoked or superseded, or if any current member has been declared
// failed by the heartbeat detector. Free when failure tolerance is off.
func (f *Fabric) observe(epoch int) error {
	if !f.ft {
		return nil
	}
	if err := f.checkEpoch(epoch); err != nil {
		return err
	}
	for _, wr := range f.members {
		if f.w.RankFailed(wr) {
			return &mpi.RankFailedError{Rank: wr, DetectedAt: f.w.FailedAt(wr)}
		}
	}
	return nil
}

// checkEpoch rejects use of a handle from a revoked or superseded fabric
// epoch with a typed *RevokedError. Free when failure tolerance is off.
func (f *Fabric) checkEpoch(epoch int) error {
	if !f.ft {
		return nil
	}
	if epoch != f.epoch {
		return &RevokedError{Epoch: epoch, At: f.revokedAt}
	}
	if f.revoked {
		return &RevokedError{Epoch: f.epoch, At: f.revokedAt}
	}
	return nil
}

// checkTarget fail-fasts a verb aimed at a member already declared dead:
// no op is created, the caller gets the same typed *OpError shape a
// reaped in-flight op would produce.
func (f *Fabric) checkTarget(verb string, target int) error {
	if !f.ft || target < 0 || target >= len(f.members) {
		return nil
	}
	wr := f.members[target]
	if f.w.RankFailed(wr) {
		return &OpError{Verb: verb, Target: target,
			Err: &mpi.RankFailedError{Rank: wr, DetectedAt: f.w.FailedAt(wr)}}
	}
	return nil
}

// stallBound mirrors mpi.World.Run's watchdog arming: Config.
// StallTimeoutNs, 0 meaning the 100 ms default, negative disarmed (-1).
func (f *Fabric) stallBound() int64 {
	st := f.w.Cfg.StallTimeoutNs
	if st < 0 {
		return -1
	}
	if st == 0 {
		return 100 * sim.Millisecond
	}
	return st
}

// reapDead runs in scheduler context when the heartbeat detector
// declares a rank failed. Every in-flight op that involves the dead rank
// — issued by it, or targeting it — is completed early with a typed
// failure, so Quiet/Fence drain instead of waiting on deliveries that
// will never be acknowledged. Completion goes through the same
// complete() path as normal landings, so the done/placedData guards make
// reaping idempotent against late wire events that were already
// scheduled.
func (f *Fabric) reapDead(dead int) {
	ferr := &mpi.RankFailedError{Rank: dead, DetectedAt: f.w.FailedAt(dead)}
	for _, ep := range f.eps {
		if len(ep.inflight) == 0 {
			continue
		}
		epDead := ep.r.ID() == dead
		ids := make([]int64, 0, len(ep.inflight))
		for id := range ep.inflight {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			o := ep.inflight[id]
			if o.done || (!epDead && o.twr != dead) {
				continue
			}
			ep.Stats.Reaped++
			ep.site.Recordf(fault.Reap, "%s op=%d target=rank%d dead=rank%d tries=%d",
				o.verb, o.id, o.twr, dead, o.tries)
			ep.complete(o, &OpError{Verb: o.verb, Target: o.target, Tries: o.tries, Err: ferr})
		}
	}
}

// commRevoked runs in scheduler context when any communicator is
// revoked. If it is the communicator epoch this fabric is seated on, the
// whole epoch is poisoned: window checks and signal waits return
// *RevokedError until a survivor Reseats the fabric.
func (f *Fabric) commRevoked(c *mpi.Comm) {
	if c.Epoch() != f.epoch || f.revoked {
		return
	}
	f.revoked = true
	f.revokedAt = f.env().Now()
}

// Reseat re-rendezvouses the fabric onto cm, a survivor communicator
// produced by Shrink (or the world communicator at first use). The first
// caller at a new epoch rebuilds the fabric: members are densely
// re-ranked in cm's order, the symmetric heap restarts empty (fresh
// mirrored offsets), windows and signals of the old epoch are
// invalidated, and any still-pending op is reaped with a *RevokedError.
// Every member that joins the new epoch — first or not — pays the
// modeled O(members) rendezvous cost once; repeat calls by the same rank
// at the same epoch are free no-ops, so collective entry points can call
// it unconditionally.
func (f *Fabric) Reseat(p *sim.Proc, r *mpi.Rank, cm *mpi.Comm) error {
	if cm == nil {
		return fmt.Errorf("rma: Reseat on nil communicator")
	}
	if !cm.Contains(r.ID()) {
		return fmt.Errorf("rma: rank %d is not a member of the reseat communicator (epoch %d)", r.ID(), cm.Epoch())
	}
	if cm.Epoch() < f.epoch {
		return fmt.Errorf("rma: Reseat onto stale epoch %d (fabric at %d)", cm.Epoch(), f.epoch)
	}
	if cm.Epoch() > f.epoch {
		f.rebuild(cm)
	}
	if f.joined[r.ID()] >= f.epoch {
		return nil
	}
	f.joined[r.ID()] = f.epoch
	if p != nil {
		cost := reseatBaseNs + reseatPerMemberNs*int64(len(f.members))
		t0 := p.Now()
		p.Sleep(cost)
		r.ChargeFailure("rma-reseat", t0, cost)
	}
	return nil
}

// rebuild swaps the fabric onto a new epoch. Runs once per epoch, from
// the first surviving caller's proc context.
func (f *Fabric) rebuild(cm *mpi.Comm) {
	now := f.env().Now()
	// Reap everything still in flight under the old epoch: those
	// deposits belong to a failed iteration and must not leak into the
	// pending-op oracle (late deliveries are suppressed by o.done).
	rerr := &RevokedError{Epoch: f.epoch, At: now}
	for _, ep := range f.eps {
		ids := make([]int64, 0, len(ep.inflight))
		for id := range ep.inflight {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			o := ep.inflight[id]
			if o.done {
				continue
			}
			ep.Stats.Reaped++
			ep.site.Recordf(fault.Reap, "%s op=%d target=rank%d epoch=%d reseat", o.verb, o.id, o.twr, f.epoch)
			ep.complete(o, &OpError{Verb: o.verb, Target: o.target, Tries: o.tries, Err: rerr})
		}
	}
	// Invalidate old-epoch windows and signals. Device buffers persist
	// (the machines survive; contents are recovered via ckpt), but the
	// handles are dead: check()/WaitSignal reject them by epoch.
	for _, ref := range f.named {
		ref.win.freed = true
	}
	for _, w := range f.heap.live {
		w.freed = true
	}
	f.named = make(map[string]*winRef)
	f.sigs = make(map[string]*Signal)
	f.heap = &Heap{f: f, align: 64}

	f.comm = cm
	f.epoch = cm.Epoch()
	f.members = cm.Ranks()
	for i := range f.mindex {
		f.mindex[i] = -1
	}
	for m, wr := range f.members {
		f.mindex[wr] = m
	}
	f.revoked = false
	f.revokedAt = now
	for _, wr := range f.members {
		f.eps[wr].firstErr = nil
	}
	f.fsite.Recordf(fault.Reseat, "epoch=%d members=%d heap reset", f.epoch, len(f.members))
}
