package rma_test

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/rma"
	"repro/internal/sim"
)

// replayHeapTape drives one symmetric-heap allocator with the fuzz op
// tape — allocate, free, reallocate — checking after every step that the
// allocator invariants hold: no overlapping live windows, aligned offsets
// inside the break, coalesced free spans, offsets and sizes mirrored
// across every rank, and freed windows rejecting reuse (double free and
// liveness). It returns the heap offset of every allocation in tape
// order, so two replays can be compared for layout determinism.
func replayHeapTape(t *testing.T, fab *rma.Fabric, tape []byte) []int64 {
	t.Helper()
	var live []*rma.Window
	var freed []*rma.Window
	var offs []int64
	next := 0
	for _, b := range tape {
		switch {
		case b%3 != 0 || len(live) == 0:
			// Allocate: size derived from the byte, 1..4033.
			size := int64(b>>2)*63 + 1
			win, err := fab.AllocWindow(fmt.Sprintf("w%d", next), size)
			next++
			if err != nil {
				t.Fatalf("alloc %d: %v", size, err)
			}
			if !win.Symmetric() {
				t.Fatal("heap window not symmetric")
			}
			for i := 0; i < fab.Size(); i++ {
				if win.Size(i) != size {
					t.Fatalf("member %d sees size %d, want %d (not mirrored)", i, win.Size(i), size)
				}
				if win.Buf(i) == nil {
					t.Fatalf("member %d unattached on a symmetric window", i)
				}
			}
			live = append(live, win)
			offs = append(offs, win.Offset())
		default:
			// Free a live window chosen by the byte.
			i := int(b>>2) % len(live)
			win := live[i]
			if err := win.Free(); err != nil {
				t.Fatalf("free: %v", err)
			}
			live = append(live[:i], live[i+1:]...)
			freed = append(freed, win)
		}
		if err := fab.Heap().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// Reuse-after-free rejection: freed windows must refuse both
	// double free and further one-sided access.
	for _, win := range freed {
		if err := win.Free(); err == nil {
			t.Fatal("double free accepted")
		}
		if !win.Freed() {
			t.Fatal("freed window reports live")
		}
	}
	// Live windows must be pairwise disjoint in heap address space.
	for i, a := range live {
		for _, b := range live[i+1:] {
			if a.Offset() < b.Offset()+b.Size(0) && b.Offset() < a.Offset()+a.Size(0) {
				t.Fatalf("windows %q and %q overlap", a.Name(), b.Name())
			}
		}
	}
	return offs
}

// FuzzHeapInvariants replays a random op tape on the symmetric-heap
// allocator twice: once on a fresh epoch-0 fabric, and once on a fabric
// whose heap was rebuilt by a crash → shrink → Reseat re-rendezvous. Both
// replays must uphold every allocator invariant, and the rebuilt heap
// must reproduce the exact same offsets — the heap layout is a pure
// function of the op sequence, so survivor re-rendezvous cannot perturb
// symmetric addressing.
func FuzzHeapInvariants(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x41, 0x85, 0x02, 0x13, 0x06, 0xc1})
	f.Add([]byte{0x01, 0x01, 0x01, 0x02, 0x02, 0x02, 0x03, 0x03})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x10, 0x91, 0x44, 0x04, 0x08, 0x0c})
	f.Fuzz(func(t *testing.T, tape []byte) {
		w := testWorld(1, false, nil, false)
		fab := rma.New(w)
		offs0 := replayHeapTape(t, fab, tape)

		// Re-rendezvous invariant: crash a rank, run the survivor
		// shrink + Reseat dance, and replay the same tape on the rebuilt
		// heap — fresh epoch, dense members, identical layout.
		const victim = 1
		w1 := testWorld(1, false, crashPlan(victim, 20_000), false)
		fab1 := rma.New(w1)
		err := w1.Run(func(r *mpi.Rank, p *sim.Proc) {
			if r.ID() == victim {
				p.Sleep(10_000_000)
				return
			}
			for !w1.RankFailed(victim) {
				p.Sleep(5_000)
			}
			wc := w1.WorldComm()
			if !wc.Revoked(r) {
				wc.Revoke(p, r)
			}
			sub, serr := wc.Shrink(p, r)
			if serr != nil {
				t.Errorf("rank %d: shrink: %v", r.ID(), serr)
				return
			}
			if rerr := fab1.Reseat(p, r, sub); rerr != nil {
				t.Errorf("rank %d: reseat: %v", r.ID(), rerr)
			}
		})
		if err != nil {
			t.Fatalf("re-rendezvous world: %v", err)
		}
		if fab1.Epoch() != 1 {
			t.Fatalf("rebuilt fabric at epoch %d, want 1", fab1.Epoch())
		}
		offs1 := replayHeapTape(t, fab1, tape)
		if len(offs0) != len(offs1) {
			t.Fatalf("replay alloc counts differ: %d vs %d", len(offs0), len(offs1))
		}
		for i := range offs0 {
			if offs0[i] != offs1[i] {
				t.Fatalf("alloc %d: offset %d on the fresh heap, %d after re-rendezvous", i, offs0[i], offs1[i])
			}
		}
	})
}
