package rma_test

import (
	"fmt"
	"testing"

	"repro/internal/rma"
)

// FuzzHeapInvariants drives the symmetric-heap allocator with a random
// op tape — allocate, free, reallocate — and checks after every step
// that the allocator invariants hold: no overlapping live windows,
// aligned offsets inside the break, coalesced free spans, offsets and
// sizes mirrored across every rank, and freed windows rejecting reuse
// (access and double free).
func FuzzHeapInvariants(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x41, 0x85, 0x02, 0x13, 0x06, 0xc1})
	f.Add([]byte{0x01, 0x01, 0x01, 0x02, 0x02, 0x02, 0x03, 0x03})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x10, 0x91, 0x44, 0x04, 0x08, 0x0c})
	f.Fuzz(func(t *testing.T, tape []byte) {
		w := testWorld(1, false, nil, false)
		fab := rma.New(w)
		var live []*rma.Window
		var freed []*rma.Window
		next := 0
		for _, b := range tape {
			switch {
			case b%3 != 0 || len(live) == 0:
				// Allocate: size derived from the byte, 1..4033.
				size := int64(b>>2)*63 + 1
				win, err := fab.AllocWindow(fmt.Sprintf("w%d", next), size)
				next++
				if err != nil {
					t.Fatalf("alloc %d: %v", size, err)
				}
				if !win.Symmetric() {
					t.Fatal("heap window not symmetric")
				}
				for i := 0; i < w.Size(); i++ {
					if win.Size(i) != size {
						t.Fatalf("rank %d sees size %d, want %d (not mirrored)", i, win.Size(i), size)
					}
					if win.Buf(i) == nil {
						t.Fatalf("rank %d unattached on a symmetric window", i)
					}
				}
				live = append(live, win)
			default:
				// Free a live window chosen by the byte.
				i := int(b>>2) % len(live)
				win := live[i]
				if err := win.Free(); err != nil {
					t.Fatalf("free: %v", err)
				}
				live = append(live[:i], live[i+1:]...)
				freed = append(freed, win)
			}
			if err := fab.Heap().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		// Reuse-after-free rejection: freed windows must refuse both
		// double free and further one-sided access.
		for _, win := range freed {
			if err := win.Free(); err == nil {
				t.Fatal("double free accepted")
			}
			if !win.Freed() {
				t.Fatal("freed window reports live")
			}
		}
		// Live windows must be pairwise disjoint in heap address space.
		for i, a := range live {
			for _, b := range live[i+1:] {
				if a.Offset() < b.Offset()+b.Size(0) && b.Offset() < a.Offset()+a.Size(0) {
					t.Fatalf("windows %q and %q overlap", a.Name(), b.Name())
				}
			}
		}
	})
}
