package rma

import (
	"fmt"
	"sort"

	"repro/internal/gpu"
)

// Heap is the symmetric-heap allocator. Offsets are a single shared
// address space: a symmetric window occupies the same [off, off+size)
// range on every rank, so a remote address is always (window, offset)
// with no per-peer translation — the NVSHMEM property that makes
// one-sided addressing possible without an offset-exchange handshake.
//
// The allocator is a first-fit free list over an ever-growing break.
// Backing storage is one gpu.Buffer per rank per window (allocated via
// Device.AllocE, so the device's LazyThreshold gives lazy payloads for
// big windows automatically), which keeps windows independent of rank
// count and lets the fuzzer exercise allocator invariants without
// building devices at all.
type Heap struct {
	f      *Fabric
	align  int64
	brk    int64
	free   []span // sorted by offset, coalesced, never overlapping
	nextID int
	live   []*Window // symmetric windows holding heap regions, by offset
}

type span struct{ off, size int64 }

// Align returns the heap's allocation granularity.
func (h *Heap) Align() int64 { return h.align }

// Brk returns the high-water mark of the symmetric address space.
func (h *Heap) Brk() int64 { return h.brk }

// reserve carves an aligned region, reusing freed space first-fit.
func (h *Heap) reserve(size int64) (off, reserved int64) {
	reserved = (size + h.align - 1) / h.align * h.align
	if reserved == 0 {
		reserved = h.align
	}
	for i, s := range h.free {
		if s.size >= reserved {
			off = s.off
			if s.size == reserved {
				h.free = append(h.free[:i], h.free[i+1:]...)
			} else {
				h.free[i] = span{s.off + reserved, s.size - reserved}
			}
			return off, reserved
		}
	}
	off = h.brk
	h.brk += reserved
	return off, reserved
}

// release returns a region to the free list, coalescing neighbours.
func (h *Heap) release(off, reserved int64) {
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].off >= off })
	h.free = append(h.free, span{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = span{off, reserved}
	// Coalesce with the right neighbour, then the left.
	if i+1 < len(h.free) && h.free[i].off+h.free[i].size == h.free[i+1].off {
		h.free[i].size += h.free[i+1].size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	if i > 0 && h.free[i-1].off+h.free[i-1].size == h.free[i].off {
		h.free[i-1].size += h.free[i].size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
}

// CheckInvariants validates the allocator state: live symmetric windows
// sorted, aligned, non-overlapping, inside the break, and disjoint from
// every free span; free spans sorted, aligned, coalesced. The fuzz
// target calls this after every operation.
func (h *Heap) CheckInvariants() error {
	prevEnd := int64(-1)
	for _, w := range h.live {
		if w.freed {
			return fmt.Errorf("heap: freed window %q still live", w.name)
		}
		if w.off%h.align != 0 {
			return fmt.Errorf("heap: window %q offset %d unaligned", w.name, w.off)
		}
		if w.off < prevEnd {
			return fmt.Errorf("heap: window %q at %d overlaps previous region ending %d", w.name, w.off, prevEnd)
		}
		if w.off+w.reserved > h.brk {
			return fmt.Errorf("heap: window %q [%d,%d) beyond break %d", w.name, w.off, w.off+w.reserved, h.brk)
		}
		for _, s := range h.free {
			if w.off < s.off+s.size && s.off < w.off+w.reserved {
				return fmt.Errorf("heap: window %q [%d,%d) overlaps free span [%d,%d)",
					w.name, w.off, w.off+w.reserved, s.off, s.off+s.size)
			}
		}
		prevEnd = w.off + w.reserved
	}
	prevEnd = -1
	for _, s := range h.free {
		if s.off%h.align != 0 || s.size%h.align != 0 || s.size <= 0 {
			return fmt.Errorf("heap: malformed free span [%d,%d)", s.off, s.off+s.size)
		}
		if s.off == prevEnd {
			return fmt.Errorf("heap: uncoalesced free spans at %d", s.off)
		}
		if s.off < prevEnd {
			return fmt.Errorf("heap: free span at %d overlaps previous ending %d", s.off, prevEnd)
		}
		if s.off+s.size > h.brk {
			return fmt.Errorf("heap: free span [%d,%d) beyond break %d", s.off, s.off+s.size, h.brk)
		}
		prevEnd = s.off + s.size
	}
	return nil
}

func (h *Heap) insertLive(w *Window) {
	i := sort.Search(len(h.live), func(i int) bool { return h.live[i].off >= w.off })
	h.live = append(h.live, nil)
	copy(h.live[i+1:], h.live[i:])
	h.live[i] = w
}

func (h *Heap) removeLive(w *Window) {
	for i, lw := range h.live {
		if lw == w {
			h.live = append(h.live[:i], h.live[i+1:]...)
			return
		}
	}
}

// Window is a remotely accessible allocation. Symmetric windows (off >=
// 0) live on the symmetric heap: every rank holds a same-size region at
// the same offset. Dynamic windows (off == -1) are MPI_Win_create-style:
// each rank attaches its own locally sized region, and peers must learn
// sizes/offsets out of band before putting.
//
// Windows are stamped with the fabric epoch they were allocated under;
// rank indices into a window are member indices of that epoch. A Revoke
// or Reseat invalidates the stamp and every access through check()
// returns a typed *RevokedError.
type Window struct {
	f        *Fabric
	id       int
	name     string
	epoch    int   // fabric epoch at allocation
	off      int64 // symmetric heap offset, or -1 for dynamic windows
	reserved int64 // aligned heap footprint (symmetric only)
	sizes    []int64
	bufs     []*gpu.Buffer
	freed    bool
}

// Name returns the window's SPMD rendezvous name.
func (w *Window) Name() string { return w.name }

// Offset returns the symmetric-heap offset, or -1 for dynamic windows.
func (w *Window) Offset() int64 { return w.off }

// Symmetric reports whether the window is mirrored across all ranks.
func (w *Window) Symmetric() bool { return w.off >= 0 }

// Freed reports whether the window has been released.
func (w *Window) Freed() bool { return w.freed }

// Size returns rank's attached region size (0 if unattached).
func (w *Window) Size(rank int) int64 {
	if rank < 0 || rank >= len(w.sizes) {
		return 0
	}
	return w.sizes[rank]
}

// Buf exposes rank's backing buffer (local packing, unpack jobs, tests).
func (w *Window) Buf(rank int) *gpu.Buffer { return w.bufs[rank] }

// Epoch returns the fabric epoch the window was allocated under.
func (w *Window) Epoch() int { return w.epoch }

// check validates a one-sided access to rank's region of the window.
func (w *Window) check(rank int, off, n int64) error {
	if err := w.f.checkEpoch(w.epoch); err != nil {
		return fmt.Errorf("rma: window %q: %w", w.name, err)
	}
	if w.freed {
		return fmt.Errorf("rma: access to freed window %q", w.name)
	}
	if rank < 0 || rank >= len(w.bufs) {
		return fmt.Errorf("rma: window %q: rank %d out of range", w.name, rank)
	}
	if w.bufs[rank] == nil {
		return fmt.Errorf("rma: window %q not attached on rank %d", w.name, rank)
	}
	if off < 0 || n < 0 || off+n > w.sizes[rank] {
		return fmt.Errorf("rma: window %q rank %d: range [%d,%d) outside [0,%d)",
			w.name, rank, off, off+n, w.sizes[rank])
	}
	return nil
}

// Free releases the window. Further accesses (and double frees) error.
func (w *Window) Free() error {
	if w.freed {
		return fmt.Errorf("rma: window %q already freed", w.name)
	}
	w.freed = true
	if w.off >= 0 {
		w.f.heap.removeLive(w)
		w.f.heap.release(w.off, w.reserved)
	}
	return nil
}

// AllocWindow creates a symmetric window of size bytes: one region per
// rank, all at the same heap offset, all the same size. Backing buffers
// follow each device's payload mode, so exact and lazy runs share the
// allocation path.
func (f *Fabric) AllocWindow(name string, size int64) (*Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rma: window %q: size %d must be positive", name, size)
	}
	if err := f.checkEpoch(f.epoch); err != nil {
		return nil, fmt.Errorf("rma: window %q: %w", name, err)
	}
	w := &Window{f: f, id: f.heap.nextID, name: name, epoch: f.epoch}
	f.heap.nextID++
	w.off, w.reserved = f.heap.reserve(size)
	for _, wr := range f.members {
		b, err := f.w.Rank(wr).Dev.AllocE(f.bufName(name, w.id, wr), int(size))
		if err != nil {
			f.heap.release(w.off, w.reserved)
			return nil, fmt.Errorf("rma: window %q: %w", name, err)
		}
		w.bufs = append(w.bufs, b)
		w.sizes = append(w.sizes, size)
	}
	f.heap.insertLive(w)
	return w, nil
}

// bufName names a window's per-rank backing buffer. Epoch 0 keeps the
// historical format (golden traces stay byte-identical); later epochs
// are qualified so re-rendezvoused windows never collide with their
// pre-failure namesakes on the same device.
func (f *Fabric) bufName(name string, id, worldRank int) string {
	if f.epoch != 0 {
		return fmt.Sprintf("rma:e%d:%s#%d:r%d", f.epoch, name, id, worldRank)
	}
	return fmt.Sprintf("rma:%s#%d:r%d", name, id, worldRank)
}

type winRef struct {
	win   *Window
	opens int
}

// OpenWindow is the SPMD rendezvous on a symmetric window: the first
// caller allocates, later callers join, and sizes must agree. Each rank
// balances its open with one CloseWindow.
func (f *Fabric) OpenWindow(rank int, name string, size int64) (*Window, error) {
	if rank < 0 || rank >= len(f.members) {
		return nil, fmt.Errorf("rma: window %q: rank %d out of member range", name, rank)
	}
	if err := f.checkEpoch(f.epoch); err != nil {
		return nil, fmt.Errorf("rma: window %q: %w", name, err)
	}
	ref := f.named[name]
	if ref == nil {
		win, err := f.AllocWindow(name, size)
		if err != nil {
			return nil, err
		}
		ref = &winRef{win: win}
		f.named[name] = ref
	}
	if !ref.win.Symmetric() {
		return nil, fmt.Errorf("rma: window %q is dynamic, opened symmetric by rank %d", name, rank)
	}
	if ref.win.sizes[rank] != size {
		return nil, fmt.Errorf("rma: window %q: rank %d opened with size %d, allocated %d",
			name, rank, size, ref.win.sizes[rank])
	}
	ref.opens++
	return ref.win, nil
}

// OpenWindowSized is the dynamic-window rendezvous: each rank attaches
// its own locally sized region (MPI_Win_create style). Peers may only
// target a rank after that rank has attached — callers synchronize that
// themselves (the one-sided collectives use an offset-exchange phase).
func (f *Fabric) OpenWindowSized(rank int, name string, localSize int64) (*Window, error) {
	if localSize < 0 {
		return nil, fmt.Errorf("rma: window %q: negative size %d", name, localSize)
	}
	if rank < 0 || rank >= len(f.members) {
		return nil, fmt.Errorf("rma: window %q: rank %d out of member range", name, rank)
	}
	if err := f.checkEpoch(f.epoch); err != nil {
		return nil, fmt.Errorf("rma: window %q: %w", name, err)
	}
	ref := f.named[name]
	if ref == nil {
		w := &Window{
			f: f, id: f.heap.nextID, name: name, epoch: f.epoch, off: -1,
			sizes: make([]int64, len(f.members)),
			bufs:  make([]*gpu.Buffer, len(f.members)),
		}
		f.heap.nextID++
		ref = &winRef{win: w}
		f.named[name] = ref
	}
	w := ref.win
	if w.Symmetric() {
		return nil, fmt.Errorf("rma: window %q is symmetric, opened dynamic by rank %d", name, rank)
	}
	if w.bufs[rank] != nil {
		return nil, fmt.Errorf("rma: window %q: rank %d attached twice", name, rank)
	}
	b, err := f.w.Rank(f.members[rank]).Dev.AllocE(f.bufName(name, w.id, f.members[rank]), int(localSize))
	if err != nil {
		return nil, fmt.Errorf("rma: window %q: %w", name, err)
	}
	w.bufs[rank] = b
	w.sizes[rank] = localSize
	ref.opens++
	return w, nil
}

// CloseWindow balances one OpenWindow/OpenWindowSized; the last close
// frees the window.
func (f *Fabric) CloseWindow(w *Window) error {
	ref := f.named[w.name]
	if ref == nil || ref.win != w {
		return fmt.Errorf("rma: window %q is not open", w.name)
	}
	ref.opens--
	if ref.opens > 0 {
		return nil
	}
	delete(f.named, w.name)
	return w.Free()
}
