package rma

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/pack"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// Bounded-recovery policy for one-sided ops. Timers only exist when a
// fault injector is installed; fault-free runs complete on placement
// with zero extra events, which is what keeps golden traces clean and
// the one-sided path cheaper than rendezvous (no FIN, no ack).
const (
	rmaTimeoutBaseNs = 150_000
	rmaTimeoutMaxNs  = 2_000_000
	rmaMaxTries      = 8
	doorbellMaxTries = 8
)

// op is one in-flight one-sided operation. Placement is idempotent:
// payload deposit and signal application are guarded separately so a
// retransmission after signal loss reapplies only the missing half.
type op struct {
	ep     *Endpoint
	id     int64
	verb   string // "put" or "get"
	win    *Window
	target int // target member index (== world rank until a reseat)
	twr    int // target world rank at issue time (epoch-proof, for node lookup and reaping)

	from    *gpu.Buffer // read side (put: source; get: target window)
	fromOff int64
	to      *gpu.Buffer // write side (put: target window; get: local dst)
	toOff   int64
	n       int64

	sig  *Signal // optional, applied at target after payload
	slot int
	add  uint64

	issueT     int64 // first wire issue, for the machine-view span
	tries      int
	placedData bool
	sigDone    bool
	done       bool
}

func (ep *Endpoint) newOp(verb string, w *Window, target int, from *gpu.Buffer, fromOff int64,
	to *gpu.Buffer, toOff, n int64, sig *Signal, slot int, add uint64) *op {
	ep.f.nextOp++
	ep.pending++
	twr := -1
	if target >= 0 && target < len(ep.f.members) {
		twr = ep.f.members[target]
	}
	o := &op{
		ep: ep, id: ep.f.nextOp, verb: verb, win: w, target: target, twr: twr,
		from: from, fromOff: fromOff, to: to, toOff: toOff, n: n,
		sig: sig, slot: slot, add: add, issueT: -1,
	}
	if ep.f.ft {
		// Registry for the reaper: only maintained under failure
		// tolerance so fault-free fast paths never touch the map.
		if ep.inflight == nil {
			ep.inflight = make(map[int64]*op)
		}
		ep.inflight[o.id] = o
	}
	return o
}

// doorbell posts the verb descriptor to the NIC, charging Comm for the
// post (and any transient-failure retries, with backoff).
func (ep *Endpoint) doorbell(p *sim.Proc) error {
	net := ep.f.net()
	start := p.Now()
	var err error
	for try := 1; ; try++ {
		err = net.PostV(p)
		ep.Stats.Doorbells++
		if err == nil || try >= doorbellMaxTries {
			break
		}
		p.Sleep(int64(try) * net.Spec.PostCostNs)
	}
	ep.charge(trace.Comm, "doorbell", start, p.Now()-start)
	return err
}

// Put deposits n bytes from src[srcOff:] into target's window region at
// dstOff. One-sided: the target's CPU never participates. Local source
// bytes must stay stable until Quiet.
func (ep *Endpoint) Put(p *sim.Proc, w *Window, target int, dstOff int64, src *gpu.Buffer, srcOff, n int64) error {
	return ep.PutSignal(p, w, target, dstOff, src, srcOff, n, nil, 0, 0)
}

// PutSignal is Put plus a remote signal update: after the payload is
// placed, sig[target][slot] += add, in that order (payload-before-signal
// is the ordering guarantee waiters rely on).
func (ep *Endpoint) PutSignal(p *sim.Proc, w *Window, target int, dstOff int64,
	src *gpu.Buffer, srcOff, n int64, sig *Signal, slot int, add uint64) error {
	if err := w.check(target, dstOff, n); err != nil {
		return err
	}
	if err := ep.f.checkTarget("put", target); err != nil {
		return err
	}
	if src != nil && (srcOff < 0 || srcOff+n > int64(src.Len())) {
		return fmt.Errorf("rma: put source range [%d,%d) outside %q[0,%d)", srcOff, srcOff+n, src.Name, src.Len())
	}
	o := ep.newOp("put", w, target, src, srcOff, w.bufs[target], dstOff, n, sig, slot, add)
	if err := ep.doorbell(p); err != nil {
		ep.complete(o, &OpError{Verb: o.verb, Target: target, Tries: 1, Err: err})
		return err
	}
	ep.Stats.Puts++
	ep.Stats.BytesPut += n
	ep.issue(o)
	return nil
}

// SignalPut is a pure signal update: a zero-byte put whose only effect
// at the target is sig[target][slot] += add. The one-sided collectives
// use it to carry small control values (dynamic-window offsets) in the
// signal payload itself, so control metadata never rides in a data
// buffer that lazy mode would refuse to materialize. It pays the same
// doorbell + wire-leg costs as any put and recovers through the same
// retransmission timer.
func (ep *Endpoint) SignalPut(p *sim.Proc, sig *Signal, target, slot int, add uint64) error {
	if target < 0 || target >= len(ep.f.members) {
		return fmt.Errorf("rma: signal-put target rank %d out of range", target)
	}
	if err := ep.f.checkEpoch(sig.epoch); err != nil {
		return err
	}
	if err := ep.f.checkTarget("signal", target); err != nil {
		return err
	}
	o := ep.newOp("signal", nil, target, nil, 0, nil, 0, 0, sig, slot, add)
	if err := ep.doorbell(p); err != nil {
		ep.complete(o, &OpError{Verb: o.verb, Target: target, Tries: 1, Err: err})
		return err
	}
	ep.Stats.Puts++
	ep.Stats.CtrlPuts++
	ep.issue(o)
	return nil
}

// Get reads n bytes from target's window region at srcOff into the local
// dst[dstOff:]. Modeled as an RDMA read: a control leg to the target NIC
// and the payload leg back, no target CPU involvement.
func (ep *Endpoint) Get(p *sim.Proc, w *Window, target int, srcOff int64, dst *gpu.Buffer, dstOff, n int64) error {
	if err := w.check(target, srcOff, n); err != nil {
		return err
	}
	if err := ep.f.checkTarget("get", target); err != nil {
		return err
	}
	if dst == nil || dstOff < 0 || dstOff+n > int64(dst.Len()) {
		return fmt.Errorf("rma: get destination range [%d,%d) invalid", dstOff, dstOff+n)
	}
	o := ep.newOp("get", w, target, w.bufs[target], srcOff, dst, dstOff, n, nil, 0, 0)
	if err := ep.doorbell(p); err != nil {
		ep.complete(o, &OpError{Verb: o.verb, Target: target, Tries: 1, Err: err})
		return err
	}
	ep.Stats.Gets++
	ep.Stats.BytesGot += n
	ep.issue(o)
	return nil
}

// issue starts (or re-starts) an op's wire leg. Runs in proc context on
// first issue, scheduler context on retransmits and fused PackPuts.
func (ep *Endpoint) issue(o *op) {
	env := ep.f.env()
	if o.done {
		return // reaped before the wire leg started (e.g. fused pack of a dead target)
	}
	if o.issueT < 0 {
		o.issueT = env.Now()
	}
	if o.tries > 0 {
		// Timer-driven re-issue: record it and charge the re-post (the
		// first post was charged by the doorbell).
		ep.site.Recordf(fault.Retransmit, "rma %s op=%d try=%d", o.verb, o.id, o.tries+1)
		ep.charge(trace.Retrans, "rma-retransmit", env.Now(), ep.f.net().Spec.PostCostNs)
		ep.Stats.Retransmits++
	}
	o.tries++
	var extraDelay int64
	attemptCorrupt := false
	if s := ep.site; s != nil {
		pl := s.Plan().RMA
		if s.Roll(pl.DropProb) {
			s.Recordf(fault.Drop, "rma %s op=%d", o.verb, o.id)
			ep.armTimer(o)
			return
		}
		if s.Roll(pl.CorruptProb) {
			attemptCorrupt = true
			s.Recordf(fault.Corrupt, "rma %s op=%d", o.verb, o.id)
		}
		if s.Roll(pl.DelayProb) {
			extraDelay = 1 + s.Int63n(pl.DelayMaxNs)
			s.Recordf(fault.Delay, "rma %s op=%d +%dns", o.verb, o.id, extraDelay)
		}
	}
	deliver := func(d fabric.Delivery) {
		apply := func() { ep.place(o, attemptCorrupt || d.Corrupt, d.Dup) }
		if extraDelay > 0 {
			env.At(env.Now()+extraDelay, apply)
			return
		}
		apply()
	}
	me := ep.r.Node()
	tgt := ep.f.w.Rank(o.twr).Node()
	if o.verb == "get" {
		ep.f.net().RDMAReadF(me, tgt, o.n, deliver)
	} else {
		ep.f.net().RDMAWriteF(me, tgt, o.n, deliver)
	}
	ep.armTimer(o)
}

// place applies a delivery at the target (scheduler context).
func (ep *Endpoint) place(o *op, corrupt, dup bool) {
	if o.done {
		return // a retransmission already completed this op
	}
	if corrupt {
		// The target NIC's CRC rejects the deposit: the window is never
		// touched and the retransmission timer recovers.
		return
	}
	if !o.placedData {
		if o.n > 0 {
			gpu.CopyRange(o.to, o.toOff, o.from, o.fromOff, o.n)
		}
		o.placedData = true
	} else if dup {
		return // duplicate of an already-placed payload: drop silently
	}
	if o.sig != nil && !o.sigDone {
		if s := ep.site; s != nil && s.Roll(s.Plan().RMA.SignalLossProb) {
			// Payload landed but the trailing signal update was lost:
			// the retransmission reapplies only the signal (placedData
			// guards the payload).
			s.Recordf(fault.Flap, "rma signal-loss op=%d slot=%d", o.id, o.slot)
			return
		}
		o.sig.add(o.target, o.slot, o.add)
		o.sigDone = true
	}
	ep.completeOK(o)
}

func (ep *Endpoint) completeOK(o *op) { ep.complete(o, nil) }

func (ep *Endpoint) complete(o *op, err error) {
	if o.done {
		return
	}
	o.done = true
	ep.pending--
	delete(ep.inflight, o.id)
	if err != nil && ep.firstErr == nil {
		ep.firstErr = err
	}
	env := ep.f.env()
	if tl := ep.r.Timeline(); tl != nil && o.issueT >= 0 {
		tl.Span(timeline.LayerRMA, timeline.CostNone, "net", o.verb, o.issueT, env.Now()-o.issueT,
			timeline.Arg{Key: "bytes", Val: fmt.Sprint(o.n)},
			timeline.Arg{Key: "target", Val: fmt.Sprint(o.target)})
	}
	env.Beat()
}

// armTimer schedules the bounded retransmission timer for an in-flight
// attempt. Only armed under fault injection: with no injector, every leg
// is reliable and completion is placement itself.
func (ep *Endpoint) armTimer(o *op) {
	if ep.site == nil || o.done {
		return
	}
	t := rmaTimeoutBaseNs*int64(o.tries) + o.n
	if t > rmaTimeoutMaxNs {
		t = rmaTimeoutMaxNs
	}
	env := ep.f.env()
	tries := o.tries
	env.At(env.Now()+t, func() {
		if o.done || o.tries != tries {
			return // completed, or a newer attempt owns the timer
		}
		if o.tries >= rmaMaxTries {
			ep.site.Recordf(fault.GiveUp, "rma %s op=%d after %d tries", o.verb, o.id, o.tries)
			ep.complete(o, &OpError{Verb: o.verb, Target: o.target, Tries: o.tries, Err: ErrRetriesExhausted})
			return
		}
		ep.site.Recordf(fault.Timeout, "rma %s op=%d try=%d", o.verb, o.id, o.tries)
		ep.issue(o)
	})
}

// PackPut packs count elements of layout l from origin into this rank's
// own region of w at packOff, then puts the packed bytes into target's
// region at dstOff, optionally bumping sig[target][slot] by add.
//
// Fused, the transfer is GPU-triggered: the doorbell descriptor is
// enqueued up front and the pack kernel's retirement issues the wire leg
// directly — one launch, no CPU stream-sync between pack and put.
// Unfused, the CPU synchronizes the pack stream (charged to Sync) and
// only then rings the doorbell: same bytes, two extra host steps.
func (ep *Endpoint) PackPut(p *sim.Proc, w *Window, target int, dstOff int64,
	origin *gpu.Buffer, l *datatype.Layout, count int, packOff int64,
	sig *Signal, slot int, add uint64, fused bool) error {
	entry := ep.r.LayoutEntry(l, count)
	self := ep.f.MemberOf(ep.r.ID())
	if self < 0 {
		return fmt.Errorf("rma: pack-put from rank %d, not a member of fabric epoch %d", ep.r.ID(), ep.f.epoch)
	}
	if err := w.check(self, packOff, entry.Bytes); err != nil {
		return err
	}
	if err := w.check(target, dstOff, entry.Bytes); err != nil {
		return err
	}
	if err := ep.f.checkTarget("put", target); err != nil {
		return err
	}
	job := pack.NewJob(pack.OpPack, origin, w.bufs[self], entry.Blocks)
	job.Plan = entry.Plan
	job.TargetOff = packOff
	o := ep.newOp("put", w, target, w.bufs[self], packOff, w.bufs[target], dstOff, job.Bytes, sig, slot, add)
	ep.Stats.PackPuts++
	ep.Stats.BytesPut += job.Bytes
	if fused {
		if err := ep.doorbell(p); err != nil {
			ep.complete(o, &OpError{Verb: o.verb, Target: target, Tries: 1, Err: err})
			return err
		}
		spec := job.KernelSpec()
		spec.Name = "PackPut"
		packExec := spec.Exec
		spec.Exec = func() {
			if packExec != nil {
				packExec()
			}
			ep.issue(o)
		}
		ep.launch(p, spec)
		return nil
	}
	ep.launch(p, job.KernelSpec())
	start := p.Now()
	ep.stream.Synchronize(p)
	ep.charge(trace.Sync, "pack-sync", start, p.Now()-start)
	if err := ep.doorbell(p); err != nil {
		ep.complete(o, &OpError{Verb: o.verb, Target: target, Tries: 1, Err: err})
		return err
	}
	ep.issue(o)
	return nil
}

// launch runs a kernel on the endpoint's pack stream with the standard
// launch-overhead + kernel-span charging, mirrored onto the rma layer.
func (ep *Endpoint) launch(p *sim.Proc, spec gpu.KernelSpec) *gpu.Completion {
	if ep.stream == nil {
		ep.stream = ep.r.Dev.NewStream(fmt.Sprintf("rma%d", ep.r.ID()))
	}
	c := ep.stream.Launch(p, spec)
	over := ep.r.Dev.Arch.LaunchOverheadNs
	ep.charge(trace.Launch, "pack-launch", p.Now()-over, over)
	ep.charge(trace.PackKernel, "pack", c.Start, c.End-c.Start)
	return c
}

// Quiet blocks until every op this endpoint issued has completed, then
// surfaces (and clears) the first failure, if any. Poll sleeps are
// charged to Sync. Crashed peers cannot wedge Quiet: the reaper
// completes every op involving a declared-dead rank, so the drain
// terminates and the typed failure surfaces here. As a last resort the
// loop honors the sim watchdog bound and unwinds with a *StallError one
// poll before the scheduler-side watchdog would abort the run.
func (ep *Endpoint) Quiet(p *sim.Proc) error {
	poll := ep.f.w.Cfg.PollIntervalNs
	stall := ep.f.stallBound()
	env := ep.f.env()
	for ep.pending > 0 {
		if stall >= 0 && p.Now()+poll-env.LastBeat() > stall {
			return &sim.StallError{
				At: p.Now(), LastBeat: env.LastBeat(), TimeoutNs: stall,
				Stuck: []string{fmt.Sprintf("rank%d", ep.r.ID())},
				Diag:  fmt.Sprintf("rma: Quiet on rank %d stuck with %d op(s) pending", ep.r.ID(), ep.pending),
			}
		}
		start := p.Now()
		p.Sleep(poll)
		ep.charge(trace.Sync, "quiet-poll", start, poll)
		ep.Stats.Polls++
	}
	err := ep.firstErr
	ep.firstErr = nil
	return err
}

// Fence orders this endpoint's prior puts before subsequent ones at
// every target. The model is conservative: full remote completion
// (Quiet), which trivially satisfies the ordering.
func (ep *Endpoint) Fence(p *sim.Proc) error { return ep.Quiet(p) }
