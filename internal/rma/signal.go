package rma

import (
	"fmt"

	"repro/internal/trace"

	"repro/internal/sim"
)

// Signal is a slotted completion flag array: one row of uint64 slots per
// rank, remotely bumped by PutSignal/PackPut deposits. Slots let the
// one-sided collectives distinguish arrival rounds — a count-only flag
// would let a later round's deposit satisfy an earlier round's wait when
// deliveries reorder under fault delays, silently forwarding stale
// bytes. Each slot is an independent monotonic counter.
type Signal struct {
	f    *Fabric
	name string
	vals [][]uint64 // [rank][slot]
	refs int
}

// OpenSignal is the SPMD rendezvous on a named signal with the given
// slot count; each rank balances its open with one CloseSignal.
func (f *Fabric) OpenSignal(name string, slots int) (*Signal, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("rma: signal %q: slot count %d must be positive", name, slots)
	}
	s := f.sigs[name]
	if s == nil {
		s = &Signal{f: f, name: name, vals: make([][]uint64, f.w.Size())}
		for i := range s.vals {
			s.vals[i] = make([]uint64, slots)
		}
		f.sigs[name] = s
	}
	if len(s.vals[0]) != slots {
		return nil, fmt.Errorf("rma: signal %q: opened with %d slots, allocated %d", name, slots, len(s.vals[0]))
	}
	s.refs++
	return s, nil
}

// CloseSignal balances one OpenSignal; the last close releases the name.
func (f *Fabric) CloseSignal(s *Signal) {
	s.refs--
	if s.refs <= 0 {
		delete(f.sigs, s.name)
	}
}

// Name returns the signal's SPMD rendezvous name.
func (s *Signal) Name() string { return s.name }

// Value reads rank's slot without blocking.
func (s *Signal) Value(rank, slot int) uint64 { return s.vals[rank][slot] }

// add applies a remote signal update (scheduler context) and beats the
// clock so pollers re-examine their predicates.
func (s *Signal) add(rank, slot int, v uint64) {
	s.vals[rank][slot] += v
	s.f.env().Beat()
}

// WaitSignal blocks until this endpoint's slot reaches atLeast, charging
// poll sleeps to Sync — the one-sided analogue of the progress-engine
// gate, but with no sends or protocol messages behind it.
func (ep *Endpoint) WaitSignal(p *sim.Proc, s *Signal, slot int, atLeast uint64) {
	poll := ep.f.w.Cfg.PollIntervalNs
	me := ep.r.ID()
	for s.vals[me][slot] < atLeast {
		start := p.Now()
		p.Sleep(poll)
		ep.charge(trace.Sync, "signal-poll", start, poll)
		ep.Stats.Polls++
	}
}
