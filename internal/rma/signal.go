package rma

import (
	"fmt"

	"repro/internal/trace"

	"repro/internal/sim"
)

// Signal is a slotted completion flag array: one row of uint64 slots per
// member, remotely bumped by PutSignal/PackPut deposits. Slots let the
// one-sided collectives distinguish arrival rounds — a count-only flag
// would let a later round's deposit satisfy an earlier round's wait when
// deliveries reorder under fault delays, silently forwarding stale
// bytes. Each slot is an independent monotonic counter.
//
// Like windows, signals are stamped with the fabric epoch they were
// opened under; waits on a revoked or superseded epoch unwind with a
// typed error instead of polling forever.
type Signal struct {
	f     *Fabric
	name  string
	epoch int
	vals  [][]uint64 // [member][slot]
	refs  int
}

// OpenSignal is the SPMD rendezvous on a named signal with the given
// slot count; each rank balances its open with one CloseSignal.
func (f *Fabric) OpenSignal(name string, slots int) (*Signal, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("rma: signal %q: slot count %d must be positive", name, slots)
	}
	if err := f.checkEpoch(f.epoch); err != nil {
		return nil, fmt.Errorf("rma: signal %q: %w", name, err)
	}
	s := f.sigs[name]
	if s == nil {
		s = &Signal{f: f, name: name, epoch: f.epoch, vals: make([][]uint64, len(f.members))}
		for i := range s.vals {
			s.vals[i] = make([]uint64, slots)
		}
		f.sigs[name] = s
	}
	if len(s.vals[0]) != slots {
		return nil, fmt.Errorf("rma: signal %q: opened with %d slots, allocated %d", name, slots, len(s.vals[0]))
	}
	s.refs++
	return s, nil
}

// CloseSignal balances one OpenSignal; the last close releases the name.
// Closing a stale handle from a reseated-away epoch never unbinds the
// name's current-epoch successor.
func (f *Fabric) CloseSignal(s *Signal) {
	s.refs--
	if s.refs <= 0 && f.sigs[s.name] == s {
		delete(f.sigs, s.name)
	}
}

// Name returns the signal's SPMD rendezvous name.
func (s *Signal) Name() string { return s.name }

// Epoch returns the fabric epoch the signal was opened under.
func (s *Signal) Epoch() int { return s.epoch }

// Value reads rank's slot without blocking.
func (s *Signal) Value(rank, slot int) uint64 { return s.vals[rank][slot] }

// add applies a remote signal update (scheduler context) and beats the
// clock so pollers re-examine their predicates.
func (s *Signal) add(rank, slot int, v uint64) {
	s.vals[rank][slot] += v
	s.f.env().Beat()
}

// WaitSignal blocks until this endpoint's slot reaches atLeast, charging
// poll sleeps to Sync — the one-sided analogue of the progress-engine
// gate, but with no sends or protocol messages behind it.
//
// The wait observes failures on the virtual clock: if the heartbeat
// detector declares any fabric member dead it returns a
// *mpi.RankFailedError, and if the backing communicator epoch is revoked
// (or the signal belongs to a reseated-away epoch) it returns a
// *RevokedError — in both cases instead of stalling on a deposit that
// can no longer arrive. Independently of failure tolerance, the wait
// honors the sim watchdog bound (Config.StallTimeoutNs): when no
// progress beats land for the watchdog window, it unwinds with a
// *sim.StallError one poll before the scheduler-side watchdog would
// abort the whole run, so a lost signal surfaces as a typed error on the
// waiting rank rather than wedging the scheduler.
func (ep *Endpoint) WaitSignal(p *sim.Proc, s *Signal, slot int, atLeast uint64) error {
	f := ep.f
	me := f.MemberOf(ep.r.ID())
	if me < 0 {
		return fmt.Errorf("rma: wait on signal %q: rank %d is not a member of fabric epoch %d", s.name, ep.r.ID(), f.epoch)
	}
	if slot < 0 || slot >= len(s.vals[me]) {
		return fmt.Errorf("rma: wait on signal %q: slot %d out of range [0,%d)", s.name, slot, len(s.vals[me]))
	}
	poll := f.w.Cfg.PollIntervalNs
	stall := f.stallBound()
	env := f.env()
	for s.vals[me][slot] < atLeast {
		if err := f.observe(s.epoch); err != nil {
			return fmt.Errorf("rma: wait on signal %q slot %d: %w", s.name, slot, err)
		}
		if stall >= 0 && p.Now()+poll-env.LastBeat() > stall {
			return &sim.StallError{
				At: p.Now(), LastBeat: env.LastBeat(), TimeoutNs: stall,
				Stuck: []string{fmt.Sprintf("rank%d", ep.r.ID())},
				Diag: fmt.Sprintf("rma: signal %q slot %d stuck at %d, want >= %d",
					s.name, slot, s.vals[me][slot], atLeast),
			}
		}
		start := p.Now()
		p.Sleep(poll)
		ep.charge(trace.Sync, "signal-poll", start, poll)
		ep.Stats.Polls++
	}
	return nil
}
