package rma_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/rma"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// testWorld builds a nodes×4-GPU world. lazy flips every device to lazy
// payloads so each cell runs in both modes off one code path.
func testWorld(nodes int, lazy bool, plan *fault.Plan, tl bool) *mpi.World {
	env := sim.NewEnv()
	c := cluster.MustBuild(env, cluster.Lassen().WithNodes(nodes))
	if lazy {
		for _, node := range c.Devices {
			for _, d := range node {
				d.LazyThreshold = 1
			}
		}
	}
	cfg := mpi.DefaultConfig()
	cfg.Faults = plan
	if tl {
		cfg.Timeline = &timeline.Options{}
	}
	return mpi.NewWorld(c, cfg, schemes.Factory("Proposed-Tuned"))
}

// refChecksum fills a scratch buffer on r's device with seed and returns
// the checksum of its first n bytes — the mode-correct expected value
// for data that originated as FillStream(seed) on a like device.
func refChecksum(r *mpi.Rank, name string, seed uint64, n int64) uint64 {
	ref := r.Dev.Alloc(name, int(n))
	ref.FillStream(seed)
	return ref.ChecksumRange(0, n)
}

// TestPutRing drives a ring of puts: every rank deposits half its source
// into its right neighbour's window. Byte-exactness is asserted in both
// payload modes against a reference fill.
func TestPutRing(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		lazy := lazy
		t.Run(fmt.Sprintf("lazy=%v", lazy), func(t *testing.T) {
			const n = 2048
			w := testWorld(2, lazy, nil, false)
			f := rma.New(w)
			err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
				id := r.ID()
				win, err := f.OpenWindow(id, "ring", 4096)
				if err != nil {
					t.Errorf("rank %d: %v", id, err)
					return
				}
				src := r.Dev.Alloc(fmt.Sprintf("src%d", id), n)
				src.FillStream(uint64(id) + 1)
				right := (id + 1) % w.Size()
				ep := f.Endpoint(id)
				if err := ep.Put(p, win, right, 0, src, 0, n); err != nil {
					t.Errorf("rank %d put: %v", id, err)
				}
				if err := ep.Quiet(p); err != nil {
					t.Errorf("rank %d quiet: %v", id, err)
				}
				w.Barrier(p)
				left := (id - 1 + w.Size()) % w.Size()
				if lazy && !win.Buf(id).IsLazy() {
					t.Errorf("rank %d: window buffer not lazy in lazy mode", id)
				}
				got := win.Buf(id).ChecksumRange(0, n)
				want := refChecksum(r, fmt.Sprintf("ref%d", id), uint64(left)+1, n)
				if got != want {
					t.Errorf("rank %d: window checksum %#x, want %#x (from rank %d)", id, got, want, left)
				}
				if err := f.CloseWindow(win); err != nil {
					t.Errorf("rank %d close: %v", id, err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if f.PendingOps() != 0 {
				t.Fatalf("%d ops still pending", f.PendingOps())
			}
		})
	}
}

// TestGet reads remote window bytes back one-sided: each rank publishes
// its own fill locally, then gets its right neighbour's region.
func TestGet(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		lazy := lazy
		t.Run(fmt.Sprintf("lazy=%v", lazy), func(t *testing.T) {
			const n = 1536
			w := testWorld(2, lazy, nil, false)
			f := rma.New(w)
			err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
				id := r.ID()
				win, err := f.OpenWindow(id, "pub", n)
				if err != nil {
					t.Errorf("rank %d: %v", id, err)
					return
				}
				win.Buf(id).FillStream(uint64(id) + 100)
				w.Barrier(p) // everyone published before anyone reads
				right := (id + 1) % w.Size()
				dst := r.Dev.Alloc(fmt.Sprintf("dst%d", id), n)
				ep := f.Endpoint(id)
				if err := ep.Get(p, win, right, 0, dst, 0, n); err != nil {
					t.Errorf("rank %d get: %v", id, err)
				}
				if err := ep.Quiet(p); err != nil {
					t.Errorf("rank %d quiet: %v", id, err)
				}
				got := dst.ChecksumRange(0, n)
				want := refChecksum(r, fmt.Sprintf("ref%d", id), uint64(right)+100, n)
				if got != want {
					t.Errorf("rank %d: got %#x, want %#x (rank %d's fill)", id, got, want, right)
				}
				w.Barrier(p) // readers done before windows die
				if err := f.CloseWindow(win); err != nil {
					t.Errorf("rank %d close: %v", id, err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPutSignalOrdering asserts the payload-before-signal guarantee: the
// moment WaitSignal returns, the deposited bytes are readable.
func TestPutSignalOrdering(t *testing.T) {
	const n = 4096
	w := testWorld(2, false, nil, false)
	f := rma.New(w)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		id := r.ID()
		win, err := f.OpenWindow(id, "sig-win", n)
		if err != nil {
			t.Errorf("rank %d: %v", id, err)
			return
		}
		sig, err := f.OpenSignal("sig", 1)
		if err != nil {
			t.Errorf("rank %d: %v", id, err)
			return
		}
		src := r.Dev.Alloc(fmt.Sprintf("src%d", id), n)
		src.FillStream(uint64(id) + 7)
		right := (id + 1) % w.Size()
		ep := f.Endpoint(id)
		if err := ep.PutSignal(p, win, right, 0, src, 0, n, sig, 0, 1); err != nil {
			t.Errorf("rank %d: %v", id, err)
		}
		ep.WaitSignal(p, sig, 0, 1)
		left := (id - 1 + w.Size()) % w.Size()
		got := win.Buf(id).ChecksumRange(0, n)
		want := refChecksum(r, fmt.Sprintf("ref%d", id), uint64(left)+7, n)
		if got != want {
			t.Errorf("rank %d: signal fired before payload landed (checksum %#x, want %#x)", id, got, want)
		}
		if err := ep.Quiet(p); err != nil {
			t.Errorf("rank %d quiet: %v", id, err)
		}
		w.Barrier(p)
		f.CloseSignal(sig)
		if err := f.CloseWindow(win); err != nil {
			t.Errorf("rank %d close: %v", id, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPackPut checks the fused and unfused pack-and-put against a
// host-side reference pack, in both payload modes.
func TestPackPut(t *testing.T) {
	l := datatype.Commit(datatype.Vector(16, 8, 16, datatype.Float64)) // 16×64B blocks, strided
	const count = 2
	for _, lazy := range []bool{false, true} {
		for _, fused := range []bool{false, true} {
			lazy, fused := lazy, fused
			t.Run(fmt.Sprintf("lazy=%v/fused=%v", lazy, fused), func(t *testing.T) {
				w := testWorld(2, lazy, nil, false)
				f := rma.New(w)
				err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
					id := r.ID()
					entry := r.LayoutEntry(l, count)
					win, err := f.OpenWindow(id, "pk", 2*entry.Bytes)
					if err != nil {
						t.Errorf("rank %d: %v", id, err)
						return
					}
					origin := r.Dev.Alloc(fmt.Sprintf("origin%d", id), int(entry.Extent)*count)
					origin.FillStream(uint64(id) + 11)
					right := (id + 1) % w.Size()
					ep := f.Endpoint(id)
					// Pack into own region [0, bytes), deposit into the
					// neighbour's upper half [bytes, 2*bytes).
					if err := ep.PackPut(p, win, right, entry.Bytes, origin, l, count, 0, nil, 0, 0, fused); err != nil {
						t.Errorf("rank %d packput: %v", id, err)
					}
					if err := ep.Quiet(p); err != nil {
						t.Errorf("rank %d quiet: %v", id, err)
					}
					w.Barrier(p)
					// Host-side reference pack of the left neighbour's origin.
					left := (id - 1 + w.Size()) % w.Size()
					lorigin := r.Dev.Alloc(fmt.Sprintf("lorigin%d", id), int(entry.Extent)*count)
					lorigin.FillStream(uint64(left) + 11)
					ref := r.Dev.Alloc(fmt.Sprintf("ref%d", id), int(entry.Bytes))
					job := pack.NewJob(pack.OpPack, lorigin, ref, entry.Blocks)
					job.Execute()
					got := win.Buf(id).ChecksumRange(entry.Bytes, entry.Bytes)
					want := ref.ChecksumRange(0, entry.Bytes)
					if got != want {
						t.Errorf("rank %d: packed deposit %#x, want %#x", id, got, want)
					}
					if err := f.CloseWindow(win); err != nil {
						t.Errorf("rank %d close: %v", id, err)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestWindowErrors covers the misuse surface: freed-window access,
// double free, out-of-bounds ranges, size mismatches on rendezvous.
func TestWindowErrors(t *testing.T) {
	w := testWorld(1, false, nil, false)
	f := rma.New(w)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() != 0 {
			return
		}
		ep := f.Endpoint(0)
		win, err := f.OpenWindow(0, "errs", 1024)
		if err != nil {
			t.Error(err)
			return
		}
		src := r.Dev.Alloc("src", 2048)
		if err := ep.Put(p, win, 1, 512, src, 0, 1024); err == nil {
			t.Error("out-of-bounds put accepted")
		}
		if err := ep.Put(p, win, 99, 0, src, 0, 64); err == nil {
			t.Error("put to out-of-range rank accepted")
		}
		if err := ep.Get(p, win, 1, 0, src, 1536, 1024); err == nil {
			t.Error("out-of-bounds get destination accepted")
		}
		if _, err := f.OpenWindow(0, "errs", 512); err == nil {
			t.Error("mismatched rendezvous size accepted")
		}
		if err := win.Free(); err != nil {
			t.Errorf("free: %v", err)
		}
		if err := win.Free(); err == nil {
			t.Error("double free accepted")
		}
		if err := ep.Put(p, win, 1, 0, src, 0, 64); err == nil {
			t.Error("put to freed window accepted")
		}
		if _, err := f.OpenSignal("s", 0); err == nil {
			t.Error("zero-slot signal accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuietSurfacesFailure forces retries to exhaust on a dead link and
// asserts Quiet returns the typed error.
func TestQuietSurfacesFailure(t *testing.T) {
	plan := &fault.Plan{Seed: 5, RMA: fault.RMAPlan{DropProb: 1}}
	w := testWorld(2, false, plan, false)
	w.Cfg.StallTimeoutNs = -1 // the op fails cleanly; no watchdog needed
	f := rma.New(w)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() != 0 {
			return
		}
		win, err := f.AllocWindow("dead", 256)
		if err != nil {
			t.Error(err)
			return
		}
		src := r.Dev.Alloc("src", 256)
		ep := f.Endpoint(0)
		if err := ep.Put(p, win, 4, 0, src, 0, 256); err != nil { // rank 4 = other node
			t.Errorf("put: %v", err)
		}
		qerr := ep.Quiet(p)
		var oe *rma.OpError
		if !errors.As(qerr, &oe) || !errors.Is(qerr, rma.ErrRetriesExhausted) {
			t.Errorf("quiet error %v, want *OpError wrapping ErrRetriesExhausted", qerr)
		}
		if qerr2 := ep.Quiet(p); qerr2 != nil {
			t.Errorf("second quiet must be clean, got %v", qerr2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.PendingOps() != 0 {
		t.Fatalf("%d ops leaked after failure", f.PendingOps())
	}
}

// TestDeterministicReplay runs the identical scenario twice and demands
// bit-identical outcomes: final clock, wire counters, and checksums.
func TestDeterministicReplay(t *testing.T) {
	run := func() (clock int64, msgs int64, sum uint64) {
		const n = 4096
		w := testWorld(2, false, nil, false)
		f := rma.New(w)
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			id := r.ID()
			win, _ := f.OpenWindow(id, "det", n)
			sig, _ := f.OpenSignal("det-sig", 2)
			src := r.Dev.Alloc(fmt.Sprintf("src%d", id), n)
			src.FillStream(uint64(id) * 3)
			ep := f.Endpoint(id)
			right := (id + 1) % w.Size()
			ep.PutSignal(p, win, right, 0, src, 0, n/2, sig, 0, 1)
			ep.PutSignal(p, win, (id+3)%w.Size(), n/2, src, n/2, n/2, sig, 1, 1)
			ep.WaitSignal(p, sig, 0, 1)
			ep.WaitSignal(p, sig, 1, 1)
			if err := ep.Quiet(p); err != nil {
				t.Errorf("rank %d: %v", id, err)
			}
			w.Barrier(p)
			sum += win.Buf(id).Checksum()
			f.CloseSignal(sig)
			f.CloseWindow(win)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Env.Now(), w.Cluster.Net.TotalMessages(), sum
	}
	c1, m1, s1 := run()
	c2, m2, s2 := run()
	if c1 != c2 || m1 != m2 || s1 != s2 {
		t.Fatalf("replay diverged: clock %d vs %d, msgs %d vs %d, sum %#x vs %#x", c1, c2, m1, m2, s1, s2)
	}
}

// TestReconciliation proves the satellite invariant: with the timeline
// on, every rma-layer Breakdown charge is mirrored as a span, so
// Recorder.Sums() equals the rank's trace.Breakdown exactly — across
// puts, gets, pack-puts (both fusion arms), signal waits, and quiet.
func TestReconciliation(t *testing.T) {
	l := datatype.Commit(datatype.Vector(8, 4, 8, datatype.Float32))
	w := testWorld(2, false, nil, true)
	f := rma.New(w)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		id := r.ID()
		entry := r.LayoutEntry(l, 4)
		win, err := f.OpenWindow(id, "rec", 4*entry.Bytes)
		if err != nil {
			t.Errorf("rank %d: %v", id, err)
			return
		}
		sig, _ := f.OpenSignal("rec-sig", 1)
		origin := r.Dev.Alloc(fmt.Sprintf("origin%d", id), int(entry.Extent)*4)
		origin.FillStream(uint64(id))
		ep := f.Endpoint(id)
		right := (id + 1) % w.Size()
		ep.PackPut(p, win, right, entry.Bytes, origin, l, 4, 0, sig, 0, 1, id%2 == 0)
		ep.WaitSignal(p, sig, 0, 1)
		if err := ep.Quiet(p); err != nil {
			t.Errorf("rank %d: %v", id, err)
		}
		dst := r.Dev.Alloc(fmt.Sprintf("dst%d", id), int(entry.Bytes))
		ep.Get(p, win, right, 0, dst, 0, entry.Bytes)
		if err := ep.Quiet(p); err != nil {
			t.Errorf("rank %d: %v", id, err)
		}
		w.Barrier(p)
		f.CloseSignal(sig)
		f.CloseWindow(win)
	})
	if err != nil {
		t.Fatal(err)
	}
	rmaEvents := 0
	for i := 0; i < w.Size(); i++ {
		r := w.Rank(i)
		rec := r.Timeline()
		sums := rec.Sums()
		for _, c := range trace.Categories() {
			if got, want := sums.Get(c), r.Trace.Get(c); got != want {
				t.Errorf("rank %d %v: timeline sum %d != breakdown %d", i, c, got, want)
			}
		}
		for _, e := range rec.Events() {
			if e.Layer == timeline.LayerRMA {
				rmaEvents++
			}
		}
	}
	if rmaEvents == 0 {
		t.Fatal("no rma-layer events recorded")
	}
}

// TestHeapReuse checks first-fit reuse: freeing a window and allocating
// an equal-size one hands back the same offset, and the allocator
// invariants hold throughout.
func TestHeapReuse(t *testing.T) {
	w := testWorld(1, false, nil, false)
	f := rma.New(w)
	a, err := f.AllocWindow("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AllocWindow("b", 500)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offset() == b.Offset() {
		t.Fatal("distinct windows share an offset")
	}
	if err := f.Heap().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	off := a.Offset()
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	c, err := f.AllocWindow("c", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Offset() != off {
		t.Fatalf("freed region not reused: got offset %d, want %d", c.Offset(), off)
	}
	if err := f.Heap().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, win := range []*rma.Window{b, c} {
		if err := win.Free(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Heap().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
