package rma_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/rma"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// crashPlan plans the deterministic death of one rank.
func crashPlan(victim int, atNs int64) *fault.Plan {
	return &fault.Plan{
		Seed: 7,
		Proc: fault.ProcPlan{Crashes: []fault.Crash{{Rank: victim, AtNs: atNs}}},
	}
}

// TestReapInFlightPut: a put whose wire leg is still in flight when the
// target is declared dead must be reaped — Quiet drains with a typed
// *OpError wrapping *mpi.RankFailedError instead of waiting out the wire
// leg, and the late delivery is suppressed idempotently.
func TestReapInFlightPut(t *testing.T) {
	const (
		victim  = 5
		crashAt = 20_000
		n       = 32 << 20 // ~670 µs on the IB leg, far beyond the detection bound
	)
	w := testWorld(2, true, crashPlan(victim, crashAt), false)
	f := rma.New(w)
	var putErr error
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			win, err := f.OpenWindow(0, "reap", n)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			src := r.Dev.Alloc("reap-src", n)
			src.FillStream(99)
			p.Sleep(crashAt + 5_000 - p.Now()) // issue after the crash, before detection
			ep := f.Endpoint(0)
			if err := ep.Put(p, win, victim, 0, src, 0, n); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			putErr = ep.Quiet(p)
		case victim:
			p.Sleep(10_000_000) // killed mid-sleep at crashAt
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	var oe *rma.OpError
	if !errors.As(putErr, &oe) || !errors.Is(putErr, mpi.ErrRankFailed) {
		t.Fatalf("Quiet returned %v, want *OpError wrapping ErrRankFailed", putErr)
	}
	var rf *mpi.RankFailedError
	if !errors.As(putErr, &rf) || rf.Rank != victim {
		t.Fatalf("Quiet error %v, want RankFailedError{Rank:%d}", putErr, victim)
	}
	if f.PendingOps() != 0 {
		t.Fatalf("%d ops still pending after reap", f.PendingOps())
	}
	if got := f.TotalStats().Reaped; got != 1 {
		t.Fatalf("Reaped = %d, want 1", got)
	}
}

// TestWaitSignalObservesFailure: a signal wait whose producer died returns
// the typed failure on the virtual clock instead of stalling.
func TestWaitSignalObservesFailure(t *testing.T) {
	const victim = 3
	w := testWorld(2, false, crashPlan(victim, 20_000), false)
	f := rma.New(w)
	var waitErr error
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			sig, err := f.OpenSignal("never", 2)
			if err != nil {
				t.Errorf("signal: %v", err)
				return
			}
			waitErr = f.Endpoint(0).WaitSignal(p, sig, 0, 1)
		case victim:
			p.Sleep(10_000_000)
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	var rf *mpi.RankFailedError
	if !errors.As(waitErr, &rf) || rf.Rank != victim {
		t.Fatalf("WaitSignal returned %v, want *RankFailedError{Rank:%d}", waitErr, victim)
	}
	if rf.DetectedAt <= 20_000 {
		t.Fatalf("DetectedAt = %d, want after the crash", rf.DetectedAt)
	}
}

// TestWaitSignalStall: with no injector and no failure tolerance, a signal
// that never arrives must surface the sim watchdog bound as a graceful
// per-rank *sim.StallError — one poll before the scheduler-side watchdog
// would abort the whole run.
func TestWaitSignalStall(t *testing.T) {
	env := sim.NewEnv()
	c := cluster.MustBuild(env, cluster.Lassen())
	cfg := mpi.DefaultConfig()
	cfg.StallTimeoutNs = 50_000
	w := mpi.NewWorld(c, cfg, schemes.Factory("Proposed-Tuned"))
	f := rma.New(w)
	var waitErr error
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() != 0 {
			return
		}
		sig, serr := f.OpenSignal("lost", 1)
		if serr != nil {
			t.Errorf("signal: %v", serr)
			return
		}
		waitErr = f.Endpoint(0).WaitSignal(p, sig, 0, 1)
	})
	if err != nil {
		t.Fatalf("world aborted instead of the graceful per-rank unwind: %v", err)
	}
	var se *sim.StallError
	if !errors.As(waitErr, &se) {
		t.Fatalf("WaitSignal returned %v, want *sim.StallError", waitErr)
	}
	if se.TimeoutNs != 50_000 {
		t.Fatalf("StallError.TimeoutNs = %d, want 50000", se.TimeoutNs)
	}
}

// TestFailFastToDeclaredDead: once the detector has declared a rank, every
// verb aimed at it fails fast with the same typed shape a reaped op would
// produce — no op is created, nothing is left pending.
func TestFailFastToDeclaredDead(t *testing.T) {
	const victim = 2
	w := testWorld(2, false, crashPlan(victim, 20_000), false)
	f := rma.New(w)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			win, err := f.OpenWindow(0, "ff", 4096)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			sig, err := f.OpenSignal("ff-sig", 1)
			if err != nil {
				t.Errorf("signal: %v", err)
				return
			}
			for !w.RankFailed(victim) {
				p.Sleep(5_000)
			}
			src := r.Dev.Alloc("ff-src", 4096)
			ep := f.Endpoint(0)
			for verb, call := range map[string]func() error{
				"put":    func() error { return ep.Put(p, win, victim, 0, src, 0, 128) },
				"get":    func() error { return ep.Get(p, win, victim, 0, src, 0, 128) },
				"signal": func() error { return ep.SignalPut(p, sig, victim, 0, 1) },
			} {
				err := call()
				var oe *rma.OpError
				if !errors.As(err, &oe) || !errors.Is(err, mpi.ErrRankFailed) {
					t.Errorf("%s to dead rank: %v, want *OpError wrapping ErrRankFailed", verb, err)
				}
			}
			if err := ep.Quiet(p); err != nil {
				t.Errorf("quiet after fail-fast: %v", err)
			}
		case victim:
			p.Sleep(10_000_000)
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	if f.PendingOps() != 0 {
		t.Fatalf("%d ops pending after fail-fast verbs", f.PendingOps())
	}
}

// TestReseatRebuild drives the full survivor re-rendezvous: crash →
// detect → revoke → shrink → Reseat, then asserts the dense re-rank, the
// invalidation of old-epoch handles, and a byte-exact put ring among the
// survivors on the rebuilt symmetric heap.
func TestReseatRebuild(t *testing.T) {
	const (
		victim = 1
		n      = 2048
	)
	w := testWorld(2, false, crashPlan(victim, 20_000), false)
	f := rma.New(w)
	size := w.Size()
	nSurv := size - 1
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		id := r.ID()
		if id == victim {
			p.Sleep(10_000_000)
			return
		}
		// Epoch 0: everyone opens a window and completes a clean put.
		win0, err := f.OpenWindow(id, "epoch0", 4096)
		if err != nil {
			t.Errorf("rank %d: open: %v", id, err)
			return
		}
		src := r.Dev.Alloc(fmt.Sprintf("e0-src-%d", id), n)
		src.FillStream(uint64(id) + 1)
		ep := f.Endpoint(id)
		if err := ep.Put(p, win0, id, 0, src, 0, n); err != nil {
			t.Errorf("rank %d: self put: %v", id, err)
			return
		}
		if err := ep.Quiet(p); err != nil {
			t.Errorf("rank %d: quiet: %v", id, err)
			return
		}
		// Wait out detection, revoke, shrink.
		for !w.RankFailed(victim) {
			p.Sleep(5_000)
		}
		wc := w.WorldComm()
		if !wc.Revoked(r) {
			wc.Revoke(p, r)
		}
		sub, serr := wc.Shrink(p, r)
		if serr != nil {
			t.Errorf("rank %d: shrink: %v", id, serr)
			return
		}
		if err := f.Reseat(p, r, sub); err != nil {
			t.Errorf("rank %d: reseat: %v", id, err)
			return
		}
		// Old-epoch handles are poison now.
		var re *rma.RevokedError
		err = ep.Put(p, win0, 0, 0, src, 0, 64)
		if !errors.As(err, &re) || !errors.Is(err, mpi.ErrCommRevoked) {
			t.Errorf("rank %d: put on old window: %v, want *RevokedError", id, err)
		}
		// Reseating back onto a stale epoch is rejected.
		if err := f.Reseat(p, r, wc); err == nil {
			t.Errorf("rank %d: Reseat onto the revoked world comm succeeded", id)
		}
		// Fresh epoch: dense members, mirrored heap, byte-exact ring.
		m := f.MemberOf(id)
		if m < 0 || f.WorldRank(m) != id {
			t.Errorf("rank %d: member index %d does not round-trip", id, m)
			return
		}
		win1, err := f.OpenWindow(m, "ring1", 4096)
		if err != nil {
			t.Errorf("rank %d: open epoch1: %v", id, err)
			return
		}
		sig, err := f.OpenSignal("ring1-sig", 1)
		if err != nil {
			t.Errorf("rank %d: signal epoch1: %v", id, err)
			return
		}
		src.FillStream(uint64(100 + id))
		right := (m + 1) % nSurv
		if err := ep.PutSignal(p, win1, right, 0, src, 0, n, sig, 0, 1); err != nil {
			t.Errorf("rank %d: epoch1 put: %v", id, err)
			return
		}
		if err := ep.WaitSignal(p, sig, 0, 1); err != nil {
			t.Errorf("rank %d: epoch1 wait: %v", id, err)
			return
		}
		if err := ep.Quiet(p); err != nil {
			t.Errorf("rank %d: epoch1 quiet: %v", id, err)
			return
		}
		leftWorld := f.WorldRank((m - 1 + nSurv) % nSurv)
		got := win1.Buf(m).ChecksumRange(0, n)
		want := refChecksum(r, fmt.Sprintf("ref1-%d", id), uint64(100+leftWorld), n)
		if got != want {
			t.Errorf("rank %d: epoch1 window checksum %#x, want %#x (from rank %d)", id, got, want, leftWorld)
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	if f.Epoch() != 1 {
		t.Fatalf("fabric epoch %d, want 1", f.Epoch())
	}
	if f.Size() != nSurv {
		t.Fatalf("fabric size %d, want %d", f.Size(), nSurv)
	}
	if f.MemberOf(victim) != -1 {
		t.Fatalf("dead rank still a member (index %d)", f.MemberOf(victim))
	}
	for m, wr := range f.Members() {
		if f.MemberOf(wr) != m {
			t.Fatalf("member table not dense: member %d world %d maps back to %d", m, wr, f.MemberOf(wr))
		}
	}
	if f.PendingOps() != 0 {
		t.Fatalf("%d ops pending after reseat", f.PendingOps())
	}
	// The reseat itself must have been recorded for replay comparison.
	found := false
	for _, ev := range w.FaultEvents() {
		if ev.Kind == fault.Reseat {
			found = true
		}
	}
	if !found {
		t.Fatal("no reseat fault event recorded")
	}
}
