package mpi_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
)

func TestCartCreate2x2x2(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	cart := w.CartCreate([]int{2, 2, 2}, []bool{true, true, true})
	if cart.Size() != 8 {
		t.Fatalf("size = %d", cart.Size())
	}
	// Coords round-trip.
	for r := 0; r < 8; r++ {
		if got := cart.RankOf(cart.Coords(r)); got != r {
			t.Fatalf("rank %d -> %v -> %d", r, cart.Coords(r), got)
		}
	}
	// Periodic shift wraps: with dims of 2, +1 and -1 reach the same peer.
	src, dst := cart.Shift(0, 0, 1)
	if src != dst || src != 4 {
		t.Fatalf("shift(0, axis0) = %d,%d want 4,4", src, dst)
	}
}

func TestCartNonPeriodicBoundary(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	cart := w.CartCreate([]int{4, 2}, []bool{false, true})
	src, dst := cart.Shift(0, 0, 1) // row 0 of 4
	if src != -1 {
		t.Fatalf("top boundary should have PROC_NULL source, got %d", src)
	}
	if dst != 2 {
		t.Fatalf("down neighbor = %d, want 2", dst)
	}
	n := cart.Neighbors(0)
	// rank 0 at (0,0): -x none, +x rank 2; y periodic with dim 2: both = rank 1.
	if len(n) != 3 {
		t.Fatalf("neighbors = %v", n)
	}
}

func TestCartTooBigPanics(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.CartCreate([]int{3, 3}, []bool{false, false})
}

func TestBcastAllRoots(t *testing.T) {
	l := datatype.Commit(datatype.Contiguous(256, datatype.Float64))
	for root := 0; root < 8; root += 3 {
		w := newWorld("Proposed-Tuned", nil)
		bufs := make([]*gpu.Buffer, 8)
		for i := range bufs {
			bufs[i] = w.Rank(i).Dev.Alloc("b", int(l.ExtentBytes))
		}
		for i := range bufs[root].Data {
			bufs[root].Data[i] = byte(i*7 + root)
		}
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			r.Bcast(p, root, bufs[r.ID()], l, 1)
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		for i := range bufs {
			if !bytes.Equal(bufs[i].Data, bufs[root].Data) {
				t.Fatalf("root %d: rank %d data mismatch", root, i)
			}
		}
	}
}

func TestBcastNoncontiguousType(t *testing.T) {
	l := datatype.Commit(datatype.Vector(64, 2, 5, datatype.Float32))
	w := newWorld("Proposed-Tuned", nil)
	bufs := make([]*gpu.Buffer, 8)
	for i := range bufs {
		bufs[i] = w.Rank(i).Dev.Alloc("b", int(l.ExtentBytes))
	}
	for i := range bufs[0].Data {
		bufs[0].Data[i] = byte(i)
	}
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		r.Bcast(p, 0, bufs[r.ID()], l, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		for _, b := range l.Blocks {
			if !bytes.Equal(bufs[i].Data[b.Offset:b.Offset+b.Len], bufs[0].Data[b.Offset:b.Offset+b.Len]) {
				t.Fatalf("rank %d block %+v mismatch", i, b)
			}
		}
	}
}

func TestAllreduceSumF64(t *testing.T) {
	const n = 32
	w := newWorld("Proposed-Tuned", nil)
	bufs := make([]*gpu.Buffer, 8)
	for i := range bufs {
		bufs[i] = w.Rank(i).Dev.Alloc("v", n*8)
		for j := 0; j < n; j++ {
			binary.LittleEndian.PutUint64(bufs[i].Data[j*8:], math.Float64bits(float64(i*100+j)))
		}
	}
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if aerr := r.AllreduceSumF64(p, bufs[r.ID()], n); aerr != nil {
			t.Errorf("rank %d: %v", r.ID(), aerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		for j := 0; j < n; j++ {
			got := math.Float64frombits(binary.LittleEndian.Uint64(bufs[i].Data[j*8:]))
			want := float64(0)
			for k := 0; k < 8; k++ {
				want += float64(k*100 + j)
			}
			if got != want {
				t.Fatalf("rank %d elem %d = %f, want %f", i, j, got, want)
			}
		}
	}
}

func TestAllreduceSumF64NonPowerOfTwo(t *testing.T) {
	// Binary-blocks fallback: 3 nodes x 2 GPUs = 6 ranks (not a power of
	// two). Every rank must end with the full sum.
	const n = 17
	spec := cluster.Lassen()
	spec.Nodes = 3
	spec.GPUsPerNode = 2
	c := cluster.MustBuild(sim.NewEnv(), spec)
	w := mpi.NewWorld(c, mpi.DefaultConfig(), schemes.Factory("Proposed-Tuned"))
	size := w.Size()
	bufs := make([]*gpu.Buffer, size)
	for i := range bufs {
		bufs[i] = w.Rank(i).Dev.Alloc("v", n*8)
		for j := 0; j < n; j++ {
			binary.LittleEndian.PutUint64(bufs[i].Data[j*8:], math.Float64bits(float64(i*100+j)))
		}
	}
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if aerr := r.AllreduceSumF64(p, bufs[r.ID()], n); aerr != nil {
			t.Errorf("rank %d: %v", r.ID(), aerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		for j := 0; j < n; j++ {
			got := math.Float64frombits(binary.LittleEndian.Uint64(bufs[i].Data[j*8:]))
			want := float64(0)
			for k := 0; k < size; k++ {
				want += float64(k*100 + j)
			}
			if got != want {
				t.Fatalf("rank %d elem %d = %f, want %f", i, j, got, want)
			}
		}
	}
}

func TestAllreduceSumF64BufferTooSmall(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	small := w.Rank(0).Dev.Alloc("small", 8)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() != 0 {
			return
		}
		if aerr := r.AllreduceSumF64(p, small, 4); aerr == nil {
			t.Error("expected an error for an undersized buffer")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReservedTagGuard(t *testing.T) {
	// User pt2pt traffic in [CollTagBase, ∞) fails with a typed error and
	// leaks nothing; the raw collective entry points still work there.
	w := newWorld("GPU-Sync", nil)
	l := datatype.Commit(datatype.Contiguous(16, datatype.Byte))
	buf := w.Rank(0).Dev.Alloc("b", int(l.ExtentBytes))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() != 0 {
			return
		}
		sq := r.Isend(p, 4, mpi.CollTagBase, buf, l, 1)
		serr := r.Wait(p, sq)
		var te *mpi.TagError
		if !errors.As(serr, &te) || !errors.Is(serr, mpi.ErrTagReserved) {
			t.Errorf("Isend tag guard: got %v, want *TagError wrapping ErrTagReserved", serr)
		}
		if te != nil && (!te.IsSend || te.Tag != mpi.CollTagBase) {
			t.Errorf("TagError fields: %+v", te)
		}
		rq := r.Irecv(p, 4, mpi.CollTagBase+77, buf, l, 1)
		if rerr := r.Wait(p, rq); !errors.Is(rerr, mpi.ErrTagReserved) {
			t.Errorf("Irecv tag guard: got %v", rerr)
		}
		// Below the base is untouched (AnyTag too).
		if q := r.Irecv(p, mpi.AnySource, mpi.AnyTag, buf, l, 1); q.Failed() {
			t.Error("AnyTag receive must not trip the guard")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaked := w.LeakedRequests(); leaked != 1 { // only the AnyTag recv stays posted
		t.Fatalf("leaked = %d, want 1 (the deliberately unmatched AnyTag recv)", leaked)
	}
}

func TestNeighborExchange3DHalo(t *testing.T) {
	// A full 2x2x2 periodic halo exchange via NeighborExchange with
	// per-axis face datatypes — MPI_Neighbor_alltoallw on the paper's
	// Fig. 3 pattern generalized to 3D.
	n := 8
	w := newWorld("Proposed-Tuned", nil)
	cart := w.CartCreate([]int{2, 2, 2}, []bool{true, true, true})
	face := func(axis int) *datatype.Layout {
		sizes := []int{n, n, n}
		sub := []int{n, n, n}
		sub[axis] = 1
		return datatype.Commit(datatype.Subarray(sizes, sub, []int{0, 0, 0}, datatype.Float64))
	}
	faces := []*datatype.Layout{face(0), face(1), face(2)}
	grids := make([]*gpu.Buffer, 8)
	halos := make([][]*gpu.Buffer, 8)
	for i := range grids {
		grids[i] = w.Rank(i).Dev.Alloc("g", n*n*n*8)
		for a := 0; a < 3; a++ {
			halos[i] = append(halos[i], w.Rank(i).Dev.Alloc(fmt.Sprintf("h%d", a), n*n*n*8))
		}
		for j := range grids[i].Data {
			grids[i].Data[j] = byte((i + 1) * (j%127 + 1))
		}
	}
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		var ops []mpi.NeighborOp
		for a := 0; a < 3; a++ {
			_, peer := cart.Shift(r.ID(), a, 1) // dim 2: ±1 is the same peer
			ops = append(ops, mpi.NeighborOp{
				Peer:    peer,
				SendBuf: grids[r.ID()], SendType: faces[a],
				RecvBuf: halos[r.ID()][a], RecvType: faces[a],
			})
		}
		r.NeighborExchange(p, ops)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for a := 0; a < 3; a++ {
			_, peer := cart.Shift(i, a, 1)
			for _, b := range faces[a].Blocks {
				if !bytes.Equal(halos[i][a].Data[b.Offset:b.Offset+b.Len], grids[peer].Data[b.Offset:b.Offset+b.Len]) {
					t.Fatalf("rank %d axis %d: halo mismatch at %+v", i, a, b)
				}
			}
		}
	}
}

func TestNeighborExchangeMultipleLegsSamePeer(t *testing.T) {
	// Two different datatypes to the same peer: FIFO matching must pair
	// them in posting order on both sides.
	w := newWorld("GPU-Sync", nil)
	la := datatype.Commit(datatype.Vector(16, 1, 2, datatype.Float64))
	lb := datatype.Commit(datatype.Contiguous(64, datatype.Float32))
	mk := func(rk int, seed byte) (a, b, ra, rb *gpu.Buffer) {
		a = w.Rank(rk).Dev.Alloc("a", int(la.ExtentBytes))
		b = w.Rank(rk).Dev.Alloc("b", int(lb.ExtentBytes))
		ra = w.Rank(rk).Dev.Alloc("ra", int(la.ExtentBytes))
		rb = w.Rank(rk).Dev.Alloc("rb", int(lb.ExtentBytes))
		for i := range a.Data {
			a.Data[i] = seed
		}
		for i := range b.Data {
			b.Data[i] = seed + 1
		}
		return
	}
	a0, b0, ra0, rb0 := mk(0, 0x10)
	a4, b4, ra4, rb4 := mk(4, 0x40)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.NeighborExchange(p, []mpi.NeighborOp{
				{Peer: 4, SendBuf: a0, SendType: la, RecvBuf: ra0, RecvType: la},
				{Peer: 4, SendBuf: b0, SendType: lb, RecvBuf: rb0, RecvType: lb},
			})
		case 4:
			r.NeighborExchange(p, []mpi.NeighborOp{
				{Peer: 0, SendBuf: a4, SendType: la, RecvBuf: ra4, RecvType: la},
				{Peer: 0, SendBuf: b4, SendType: lb, RecvBuf: rb4, RecvType: lb},
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ra0.Data[0] != 0x40 || rb0.Data[0] != 0x41 || ra4.Data[0] != 0x10 || rb4.Data[0] != 0x11 {
		t.Fatalf("legs crossed: %x %x %x %x", ra0.Data[0], rb0.Data[0], ra4.Data[0], rb4.Data[0])
	}
}

func TestPackUnpackExplicitAPI(t *testing.T) {
	// Algorithm 1 usage: blocking MPI_Pack into a staging buffer, ship
	// it as bytes, blocking MPI_Unpack on the receiver.
	for _, scheme := range []string{"GPU-Sync", "Proposed-Tuned", "CPU-GPU-Hybrid"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			w := newWorld(scheme, nil)
			l := datatype.Commit(datatype.Vector(128, 2, 5, datatype.Float32))
			packedType := datatype.Commit(datatype.Contiguous(int(l.SizeBytes), datatype.Byte))
			src := w.Rank(0).Dev.Alloc("src", int(l.ExtentBytes))
			spacked := w.Rank(0).Dev.Alloc("spacked", int(l.SizeBytes))
			rpacked := w.Rank(4).Dev.Alloc("rpacked", int(l.SizeBytes))
			dst := w.Rank(4).Dev.Alloc("dst", int(l.ExtentBytes))
			for i := range src.Data {
				src.Data[i] = byte(i % 251)
			}
			err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
				switch r.ID() {
				case 0:
					var pos int64
					r.Pack(p, src, l, 1, spacked, &pos)
					if pos != l.SizeBytes {
						t.Errorf("position = %d, want %d", pos, l.SizeBytes)
					}
					r.Wait(p, r.Isend(p, 4, 0, spacked, packedType, 1))
				case 4:
					r.Wait(p, r.Irecv(p, 0, 0, rpacked, packedType, 1))
					var pos int64
					r.Unpack(p, rpacked, &pos, dst, l, 1)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range l.Blocks {
				if !bytes.Equal(dst.Data[b.Offset:b.Offset+b.Len], src.Data[b.Offset:b.Offset+b.Len]) {
					t.Fatalf("block %+v mismatch", b)
				}
			}
		})
	}
}

func TestPackPositionAdvancesAcrossCalls(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	l := datatype.Commit(datatype.Vector(4, 1, 2, datatype.Byte))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() != 0 {
			return
		}
		src1 := r.Dev.Alloc("s1", int(l.ExtentBytes))
		src2 := r.Dev.Alloc("s2", int(l.ExtentBytes))
		out := r.Dev.Alloc("o", int(2*l.SizeBytes))
		for i := range src1.Data {
			src1.Data[i] = 0xA0
			src2.Data[i] = 0xB0
		}
		var pos int64
		r.Pack(p, src1, l, 1, out, &pos)
		r.Pack(p, src2, l, 1, out, &pos)
		if pos != 2*l.SizeBytes {
			t.Errorf("pos = %d", pos)
		}
		if out.Data[0] != 0xA0 || out.Data[l.SizeBytes] != 0xB0 {
			t.Errorf("packed order wrong: % x", out.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackOverflowPanics(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	l := datatype.Commit(datatype.Contiguous(64, datatype.Byte))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() != 0 {
			return
		}
		src := r.Dev.Alloc("s", 64)
		out := r.Dev.Alloc("o", 8) // too small
		var pos int64
		r.Pack(p, src, l, 1, out, &pos)
	})
}

func TestPackSize(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	l := datatype.Commit(datatype.Vector(4, 2, 5, datatype.Float64))
	if got := w.Rank(0).PackSize(l, 3); got != 3*l.SizeBytes {
		t.Fatalf("PackSize = %d", got)
	}
}

func TestSendRecvBlocking(t *testing.T) {
	w := newWorld("Proposed-Tuned", nil)
	l := datatype.Commit(datatype.Vector(32, 1, 2, datatype.Float64))
	sbuf := w.Rank(0).Dev.Alloc("s", int(l.ExtentBytes))
	rbuf := w.Rank(4).Dev.Alloc("r", int(l.ExtentBytes))
	for i := range sbuf.Data {
		sbuf.Data[i] = byte(i * 3)
	}
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 4, 0, sbuf, l, 1)
		case 4:
			r.Recv(p, 0, 0, rbuf, l, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range l.Blocks {
		if !bytes.Equal(rbuf.Data[b.Offset:b.Offset+b.Len], sbuf.Data[b.Offset:b.Offset+b.Len]) {
			t.Fatalf("block %+v mismatch", b)
		}
	}
}

func TestSendrecvBothDirections(t *testing.T) {
	w := newWorld("Proposed-Tuned", nil)
	l := datatype.Commit(datatype.Contiguous(512, datatype.Float32))
	s0 := w.Rank(0).Dev.Alloc("s0", int(l.ExtentBytes))
	r0 := w.Rank(0).Dev.Alloc("r0", int(l.ExtentBytes))
	s4 := w.Rank(4).Dev.Alloc("s4", int(l.ExtentBytes))
	r4 := w.Rank(4).Dev.Alloc("r4", int(l.ExtentBytes))
	s0.Data[0], s4.Data[0] = 0xAA, 0xBB
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Sendrecv(p, 4, 1, s0, l, 1, 4, 1, r0, l, 1)
		case 4:
			r.Sendrecv(p, 0, 1, s4, l, 1, 0, 1, r4, l, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r0.Data[0] != 0xBB || r4.Data[0] != 0xAA {
		t.Fatalf("sendrecv wrong: %x %x", r0.Data[0], r4.Data[0])
	}
}

func TestWaitanyReturnsFirstCompletion(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	l := datatype.Commit(datatype.Contiguous(256, datatype.Float64))
	fast := w.Rank(0).Dev.Alloc("fast", int(l.ExtentBytes))
	slowS := w.Rank(5).Dev.Alloc("slow", int(l.ExtentBytes))
	fastR := w.Rank(4).Dev.Alloc("fr", int(l.ExtentBytes))
	slowR := w.Rank(4).Dev.Alloc("sr", int(l.ExtentBytes))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 4, 1, fast, l, 1)
		case 5:
			p.Sleep(5 * sim.Millisecond)
			r.Send(p, 4, 2, slowS, l, 1)
		case 4:
			slow := r.Irecv(p, 5, 2, slowR, l, 1)
			quick := r.Irecv(p, 0, 1, fastR, l, 1)
			idx := r.Waitany(p, []*mpi.Request{slow, quick})
			if idx != 1 {
				t.Errorf("Waitany = %d, want the fast request (1)", idx)
			}
			if !r.Testall(p, []*mpi.Request{slow, quick}) {
				r.Waitall(p, []*mpi.Request{slow, quick})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
