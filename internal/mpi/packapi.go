package mpi

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/pack"
	"repro/internal/sim"
)

// This file implements the MPI-level *explicit* pack/unpack API
// (MPI_Pack / MPI_Unpack) analyzed in Section III-A of the paper
// (Algorithm 1): blocking routines that must complete the datatype
// processing before returning, which forbids any overlap between
// packing and communication. They are provided both for API completeness
// and so the Section III approach comparison can be reproduced.

// PackSize returns the buffer size MPI_Pack needs for count elements of l
// (MPI_Pack_size).
func (r *Rank) PackSize(l *datatype.Layout, count int) int64 {
	return l.SizeBytes * int64(count)
}

// Pack packs count elements of layout l from inbuf into outbuf starting at
// *position, advancing *position by the packed bytes. It blocks until the
// packing has completed on the device (the MPI semantic the paper's red
// dotted line in Fig. 4(a) depicts).
func (r *Rank) Pack(p *sim.Proc, inbuf *gpu.Buffer, l *datatype.Layout, count int, outbuf *gpu.Buffer, position *int64) {
	e := r.lookupLayout(p, l, count)
	if *position+e.Bytes > int64(outbuf.Len()) {
		panic(fmt.Sprintf("mpi: Pack overflow: position %d + %d bytes > buffer %d", *position, e.Bytes, outbuf.Len()))
	}
	job := pack.NewJob(pack.OpPack, inbuf, outbuf, e.Blocks)
	job.Plan = e.Plan
	job.TargetOff = *position
	h := r.scheme.Pack(p, job)
	r.blockOn(p, h)
	*position += e.Bytes
}

// Unpack is the inverse of Pack: it scatters packed bytes from inbuf at
// *position into outbuf according to l, blocking until completion.
func (r *Rank) Unpack(p *sim.Proc, inbuf *gpu.Buffer, position *int64, outbuf *gpu.Buffer, l *datatype.Layout, count int) {
	e := r.lookupLayout(p, l, count)
	if *position+e.Bytes > int64(inbuf.Len()) {
		panic(fmt.Sprintf("mpi: Unpack underflow: position %d + %d bytes > buffer %d", *position, e.Bytes, inbuf.Len()))
	}
	job := pack.NewJob(pack.OpUnpack, inbuf, outbuf, e.Blocks)
	job.Plan = e.Plan
	job.OriginOff = *position
	h := r.scheme.Unpack(p, job)
	r.blockOn(p, h)
	*position += e.Bytes
}

// blockOn drives a scheme handle to completion synchronously: the blocking
// pack/unpack semantic. Fused work must be launched immediately (the
// blocking call is itself a synchronization point).
func (r *Rank) blockOn(p *sim.Proc, h Handle) {
	if h.Done(p) {
		return
	}
	r.scheme.Flush(p)
	if ev := h.DoneEv(); ev != nil {
		p.Wait(ev)
		h.Done(p) // release scheme bookkeeping
		return
	}
	for !h.Done(p) {
		p.Sleep(r.world.Cfg.PollIntervalNs)
	}
}
