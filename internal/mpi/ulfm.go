// ULFM-style rank-failure tolerance for the MPI runtime, modeled on MPI's
// User-Level Failure Mitigation proposal (MPI_Comm_revoke / _shrink /
// _agree, MPICH and Open MPI's ULFM implementations):
//
//   - Planned crashes (fault.Plan.Proc.Crashes) kill a rank's proc at a
//     deterministic virtual time; the dead rank goes silent (no acks, no
//     progress), exactly like a node loss under InfiniBand RC.
//   - A heartbeat failure detector — driven purely by the virtual clock and
//     piggybacked on the progress engine (every progress call refreshes the
//     caller's heartbeat; a scheduler-side tick refreshes idle-but-live
//     ranks and checks for silence) — converts silence beyond
//     Heartbeat.TimeoutNs into a typed *RankFailedError on every pending
//     operation that involves the dead rank.
//   - Comm is the communicator object: Revoke floods an in-band revocation
//     (gossip with receiver-side dedup) so pending Wait/Waitall on the comm
//     fail fast with ErrCommRevoked; Shrink is a rendezvous of the live
//     members that returns a dense re-ranked survivor communicator; Agree
//     is a fault-tolerant agreement (bitwise AND over live contributions,
//     MPIX_Comm_agree-style) that still reports a member death.
//
// Everything here is gated behind ftOn (a crash plan or an explicit
// heartbeat config): fault-free runs and crash-free chaos runs execute
// byte-identically to a build without this file.
package mpi

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// HeartbeatConfig tunes the rank-failure detector. Zero values select the
// defaults when a crash plan activates the detector; setting TimeoutNs > 0
// activates it explicitly even without planned crashes.
type HeartbeatConfig struct {
	// IntervalNs is the detector tick period (default 25 µs).
	IntervalNs int64
	// TimeoutNs is how long a rank may stay silent before it is declared
	// failed (default 150 µs). Must stay well under StallTimeoutNs so
	// detection beats the watchdog.
	TimeoutNs int64
}

func (h HeartbeatConfig) normalized() HeartbeatConfig {
	if h.IntervalNs <= 0 {
		h.IntervalNs = 25_000
	}
	if h.TimeoutNs <= 0 {
		h.TimeoutNs = 150_000
	}
	return h
}

// Typed failure-tolerance sentinels.
var (
	// ErrRankFailed: a peer rank was declared dead by the failure detector.
	ErrRankFailed = errors.New("mpi: rank failed")
	// ErrCommRevoked: the communicator was revoked (ULFM MPI_ERR_REVOKED).
	ErrCommRevoked = errors.New("mpi: communicator revoked")
)

// RankFailedError is the typed error attached to every operation that
// involved a rank the failure detector declared dead. It unwraps to
// ErrRankFailed; operations surface it wrapped in *OpError.
type RankFailedError struct {
	Rank       int   // the dead rank
	DetectedAt int64 // virtual time of detection
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed (detected at %dns)", e.Rank, e.DetectedAt)
}

func (e *RankFailedError) Unwrap() error { return ErrRankFailed }

// Modeled CPU costs of the recovery operations (virtual ns). They are
// charged to trace.Recovery and mirrored as failure-layer timeline spans.
const (
	revokePerMemberNs = 200
	shrinkBaseNs      = 1500
	shrinkPerLiveNs   = 400
	agreeBaseNs       = 800
	agreePerLiveNs    = 250
)

// ChargeFailure accrues a recovery cost (revoke flood, shrink consensus,
// agreement) to trace.Recovery and mirrors it as a failure-layer timeline
// span, keeping timeline per-category sums reconciled with the Breakdown.
func (r *Rank) ChargeFailure(name string, start, d int64) {
	if d <= 0 {
		return
	}
	r.Trace.Add(trace.Recovery, d)
	if r.tl != nil {
		r.tl.Span(timeline.LayerFailure, trace.Recovery, "", name, start, d)
	}
}

// initFT wires the failure-tolerance state when a crash plan or heartbeat
// config asks for it. Called from NewWorld after ranks exist.
func (w *World) initFT() {
	if w.inj == nil {
		// No injector means no crash plan can exist; a heartbeat detector
		// with nothing to detect would only perturb the event heap.
		return
	}
	plan := w.inj.Plan()
	if !plan.HasCrashes() && w.Cfg.Heartbeat.TimeoutNs <= 0 {
		return
	}
	w.ftOn = true
	w.hb = w.Cfg.Heartbeat.normalized()
	n := len(w.ranks)
	w.crashed = make([]bool, n)
	w.rankFailed = make([]bool, n)
	w.failedAt = make([]int64, n)
	w.hbLast = make([]int64, n)
	w.psite = w.inj.Site("proc")
	w.dsite = w.inj.Site("detector")
	w.usite = w.inj.Site("ulfm")
	for _, cr := range plan.Proc.Crashes {
		if cr.Rank < n && cr.AtNs > w.maxCrashAt {
			w.maxCrashAt = cr.AtNs
		}
	}
}

// scheduleCrashes arms the planned rank deaths and the detector tick.
// Called from World.Run, once the procs are being spawned.
func (w *World) scheduleCrashes() {
	if !w.ftOn {
		return
	}
	for _, cr := range w.inj.Plan().Proc.Crashes {
		if cr.Rank >= len(w.ranks) {
			continue // plan written for a larger world
		}
		cr := cr
		w.Env.At(cr.AtNs, func() { w.crash(cr.Rank) })
	}
	w.Env.After(w.hb.IntervalNs, w.hbTick)
}

// crash kills rank i at the current virtual time (scheduler context). A rank
// whose proc already finished cannot crash — the process exited first.
func (w *World) crash(i int) {
	r := w.ranks[i]
	if w.crashed[i] || r.proc == nil || r.proc.Finished() {
		return
	}
	w.crashed[i] = true
	w.psite.Recordf(fault.RankCrash, "rank%d killed", i)
	r.proc.Kill()
}

// isCrashed reports whether rank i's process is dead (ground truth; the
// detector's declared view is rankFailed).
func (w *World) isCrashed(i int) bool {
	return w.ftOn && w.crashed[i]
}

// IsCrashed is the exported ground-truth liveness probe for rank i.
func (w *World) IsCrashed(i int) bool { return w.isCrashed(i) }

// heartbeat refreshes rank r's liveness stamp; piggybacked on every
// progress-engine call.
func (w *World) heartbeat(r *Rank) {
	if w.ftOn && !w.crashed[r.id] {
		w.hbLast[r.id] = w.Env.Now()
	}
}

// hbTick is the recurring detector tick (scheduler context). Live ranks'
// stamps are refreshed (the per-node heartbeat thread a real ULFM detector
// runs); crashed ranks' stamps freeze, and once their silence exceeds the
// timeout they are declared failed. The tick stops re-arming when nothing
// is left to detect, so the event heap can drain.
func (w *World) hbTick() {
	if w.allProcsFinished() {
		return
	}
	now := w.Env.Now()
	for i := range w.ranks {
		if !w.crashed[i] {
			w.hbLast[i] = now
			continue
		}
		if !w.rankFailed[i] && now-w.hbLast[i] >= w.hb.TimeoutNs {
			w.declareFailed(i)
		}
	}
	if w.pendingDetections() || now <= w.maxCrashAt+w.hb.TimeoutNs {
		w.Env.After(w.hb.IntervalNs, w.hbTick)
	}
}

func (w *World) allProcsFinished() bool {
	for _, r := range w.ranks {
		if r.proc == nil || !r.proc.Finished() {
			return false
		}
	}
	return true
}

func (w *World) pendingDetections() bool {
	for i := range w.ranks {
		if w.crashed[i] && !w.rankFailed[i] {
			return true
		}
	}
	return false
}

// declareFailed converts rank f's silence into typed errors (scheduler
// context): every live rank's pending operation involving f — including
// wildcard receives, which can no longer be satisfied safely — fails with a
// *RankFailedError, and any rendezvous (barrier, shrink, agree) blocked on
// f is re-evaluated.
func (w *World) declareFailed(f int) {
	if w.rankFailed[f] {
		return
	}
	w.rankFailed[f] = true
	now := w.Env.Now()
	w.failedAt[f] = now
	w.dsite.Recordf(fault.Detect, "rank%d silent %dns", f, now-w.hbLast[f])
	ferr := &RankFailedError{Rank: f, DetectedAt: now}
	for _, lr := range w.ranks {
		if w.crashed[lr.id] {
			continue
		}
		snapshot := append([]*Request(nil), lr.active...)
		for _, q := range snapshot {
			if q.settled() {
				continue
			}
			if q.peer == f || (!q.isSend && q.peer == AnySource) {
				lr.dropPosted(q)
				lr.fail(nil, q, "rank-failed", 0, ferr)
			}
		}
	}
	w.recheckBarrier()
	for _, c := range w.comms {
		c.maybeFinishShrink()
		c.maybeFinishAgree()
	}
	for _, fn := range w.onRankFailed {
		fn(f)
	}
}

// OnRankFailed registers an observer invoked (scheduler context) each time
// the detector declares a rank dead, after the runtime's own pending
// operations have been failed. The one-sided fabric uses it to reap
// in-flight deposits targeting the dead rank.
func (w *World) OnRankFailed(fn func(dead int)) {
	w.onRankFailed = append(w.onRankFailed, fn)
}

// OnCommRevoked registers an observer invoked exactly once per
// communicator, when the first rank's view of it becomes revoked (whether
// by an explicit Revoke, the self-healing auto-revocation, or an in-band
// flood arrival). The one-sided fabric uses it to invalidate the windows
// of the matching epoch, so waiters observing the fabric unblock with
// ErrCommRevoked instead of stalling out the watchdog.
func (w *World) OnCommRevoked(fn func(c *Comm)) {
	w.onCommRevoked = append(w.onCommRevoked, fn)
}

// FailedAt returns the virtual time at which rank i was declared dead, or
// -1 when it has not been declared.
func (w *World) FailedAt(i int) int64 {
	if !w.ftOn || i < 0 || i >= len(w.rankFailed) || !w.rankFailed[i] {
		return -1
	}
	return w.failedAt[i]
}

// dropPosted removes q from the posted-receive queue (it is about to fail,
// and a failed request must never match a late arrival).
func (r *Rank) dropPosted(q *Request) {
	for i, pq := range r.posted {
		if pq == q {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return
		}
	}
}

// failedPeerRequest builds an already-failed request for a post that targets
// a declared-dead peer or a revoked communicator: it never enters the active
// list, settles immediately, and surfaces its typed error from Wait/Waitall.
func (r *Rank) failedPeerRequest(isSend bool, peer, tag int, phase string, err error) *Request {
	q := &Request{
		rank: r, isSend: isSend, peer: peer, tag: tag,
		state: stFailed,
		err: &OpError{
			Rank: r.id, Peer: peer, Tag: tag, IsSend: isSend,
			Phase: phase, Err: err,
		},
		doneEv:  r.world.Env.NewEvent("ft-guard"),
		DoneAt:  r.world.Env.Now(),
		emitted: true,
		errSent: true,
	}
	q.doneEv.Fire()
	return q
}

// postGuard returns a pre-failed request when ft is on and peer is declared
// dead; nil means the post may proceed.
func (r *Rank) postGuard(isSend bool, peer, tag int) *Request {
	if !r.world.ftOn || peer < 0 || !r.world.rankFailed[peer] {
		return nil
	}
	return r.failedPeerRequest(isSend, peer, tag, "post",
		&RankFailedError{Rank: peer, DetectedAt: r.world.failedAt[peer]})
}

// --- communicators ---

// Comm is a communicator: an ordered set of world ranks with ULFM-style
// revoke/shrink/agree. The world communicator contains every rank at epoch
// 0; Shrink builds dense re-ranked survivor communicators with fresh epochs
// (the collective engine folds the epoch into its tags, so traffic from a
// failed collective can never match a post-shrink retry).
//
// Comm is a shared SPMD object, like the simulation's other cross-rank
// state: revocation is still propagated in-band (an mkRevoke gossip flood),
// and each rank acts only on its own local view (revokedAt).
type Comm struct {
	w     *World
	epoch int
	ranks []int // comm rank -> world rank
	index []int // world rank -> comm rank (-1 non-member)

	revokedAt []bool // per world rank: local view of revocation
	notified  bool   // world-level OnCommRevoked observers fired
	shr       *shrinkState
	agr       *agreeState
	agreeSeq  int
}

// WorldComm returns the communicator containing every rank (epoch 0).
func (w *World) WorldComm() *Comm {
	if w.worldComm == nil {
		w.worldComm = w.newComm(identityRanks(len(w.ranks)))
	}
	return w.worldComm
}

func identityRanks(n int) []int {
	rk := make([]int, n)
	for i := range rk {
		rk[i] = i
	}
	return rk
}

// newComm builds a communicator over the given world ranks at the next
// epoch and registers it for detector rechecks.
func (w *World) newComm(ranks []int) *Comm {
	c := &Comm{
		w:         w,
		epoch:     w.epochSeq,
		ranks:     ranks,
		index:     make([]int, len(w.ranks)),
		revokedAt: make([]bool, len(w.ranks)),
	}
	w.epochSeq++
	for i := range c.index {
		c.index[i] = -1
	}
	for cr, wr := range ranks {
		c.index[wr] = cr
	}
	w.comms = append(w.comms, c)
	return c
}

// Size reports the number of members.
func (c *Comm) Size() int { return len(c.ranks) }

// Epoch reports the communicator's epoch (world = 0; each Shrink result
// gets a fresh one).
func (c *Comm) Epoch() int { return c.epoch }

// WorldRank translates a comm rank to its world rank.
func (c *Comm) WorldRank(cr int) int { return c.ranks[cr] }

// CommRank translates a world rank to its comm rank (-1 if not a member).
func (c *Comm) CommRank(wr int) int {
	if wr < 0 || wr >= len(c.index) {
		return -1
	}
	return c.index[wr]
}

// Contains reports whether world rank wr is a member.
func (c *Comm) Contains(wr int) bool { return c.CommRank(wr) >= 0 }

// Ranks returns the member world ranks in comm-rank order (a copy).
func (c *Comm) Ranks() []int { return append([]int(nil), c.ranks...) }

// Revoked reports rank r's local view of the communicator's revocation.
func (c *Comm) Revoked(r *Rank) bool { return c.revokedAt[r.id] }

// IsWorld reports whether this is the (unshrunk) world communicator.
func (c *Comm) IsWorld() bool { return c.epoch == 0 }

// FailedRequest builds a pre-failed request surfacing ErrCommRevoked — the
// fail-fast path for posts on a locally-revoked communicator.
func (c *Comm) FailedRequest(r *Rank, isSend bool, peer, tag int) *Request {
	return r.failedPeerRequest(isSend, peer, tag, "revoked", ErrCommRevoked)
}

// Bind stamps q as belonging to this communicator, so a revocation fails it
// in place. Pre-settled requests are left alone. Binding to an already
// locally-revoked comm fails the request immediately — raw posts issued by
// collective internals after a revocation arrived must not re-enter a dead
// epoch and wedge.
func (c *Comm) Bind(q *Request) {
	if q == nil {
		return
	}
	if q.settled() {
		// A post that came back pre-failed (fail-fast guard against a
		// declared-dead peer) is a failure observation too: trigger the
		// self-healing revocation just like an in-flight failure would.
		if q.err != nil {
			c.maybeAutoRevoke(q.rank, q.err)
		}
		return
	}
	q.comm = c
	if c.revokedAt[q.rank.id] {
		q.rank.dropPosted(q)
		q.errSent = true
		q.rank.fail(nil, q, "revoked", 0, ErrCommRevoked)
	}
}

// Revoke marks the communicator revoked at rank r and floods the revocation
// in-band to every other member (gossip; receivers re-flood once, so a
// single lost frame cannot partition the view). Every pending operation
// bound to the comm fails with ErrCommRevoked; a revoked comm still supports
// Shrink and Agree, which is how survivors recover. p may be nil when the
// revocation originates in scheduler context (the failure detector); the
// NIC-level flood still goes out, only the local CPU cost goes uncharged.
func (c *Comm) Revoke(p *sim.Proc, r *Rank) {
	if !c.w.ftOn {
		return
	}
	if c.revokedAt[r.id] {
		return
	}
	t0 := c.w.Env.Now()
	c.w.usite.Recordf(fault.Revoke, "epoch%d by rank%d", c.epoch, r.id)
	c.markRevoked(r)
	c.flood(r)
	cost := int64(revokePerMemberNs * (len(c.ranks) - 1))
	if cost > 0 && p != nil {
		p.Sleep(cost)
		r.ChargeFailure("revoke", t0, cost)
	}
}

// maybeAutoRevoke is the self-healing trigger: the first comm-bound
// operation at this rank to fail because a member died revokes the
// communicator immediately. Waiting for the collective's final Waitall
// would be too late — that Waitall itself can be blocked on legs to live
// peers who are in turn blocked on the dead rank, so the revocation must
// fire at the moment of observation to restore liveness. Requests not
// bound to a communicator (plain point-to-point) keep exact ULFM
// semantics: a failure notification, no automatic revocation.
func (c *Comm) maybeAutoRevoke(r *Rank, err error) {
	var rf *RankFailedError
	if errors.As(err, &rf) && !c.revokedAt[r.id] {
		c.Revoke(nil, r)
	}
}

// markRevoked applies the revocation at rank r's view: every unsettled
// request bound to the comm fails in place with ErrCommRevoked. The peers
// fail their own halves via the flood, so no cross-notification is sent
// (errSent suppresses notifyPeer).
func (c *Comm) markRevoked(r *Rank) {
	c.revokedAt[r.id] = true
	if !c.notified {
		c.notified = true
		for _, fn := range c.w.onCommRevoked {
			fn(c)
		}
	}
	snapshot := append([]*Request(nil), r.active...)
	for _, q := range snapshot {
		if q.settled() || q.comm != c {
			continue
		}
		r.dropPosted(q)
		q.errSent = true
		r.fail(nil, q, "revoked", 0, ErrCommRevoked)
	}
}

// flood sends an untracked mkRevoke to every other member (from rank r).
// Like mkErr, revocations are NIC-firmware-level: no CPU post cost, lost or
// corrupted frames are recovered by the gossip re-flood.
func (c *Comm) flood(r *Rank) {
	w := c.w
	net := w.Cluster.Net
	for _, wr := range c.ranks {
		if wr == r.id || w.crashed[wr] {
			continue
		}
		m := &message{kind: mkRevoke, from: r.id, to: wr, comm: c}
		net.SendF(r.node, w.ranks[wr].node, net.Spec.CtrlBytes, func(d fabric.Delivery) {
			w.ranks[m.to].arriveD(m, d)
		})
	}
}

// revokeArrived handles an in-band revocation at rank r (scheduler
// context): first receipt applies it locally and re-floods once.
func (c *Comm) revokeArrived(r *Rank) {
	if c.revokedAt[r.id] {
		return
	}
	c.markRevoked(r)
	c.flood(r)
}

// --- Shrink ---

// shrinkState is the rendezvous of one Shrink call over a comm.
type shrinkState struct {
	ev      *sim.Event
	arrived []bool // world-indexed
	result  *Comm
}

// Shrink is the ULFM MPI_Comm_shrink analogue: a rendezvous of the live
// members that returns a dense re-ranked communicator of the survivors at a
// fresh epoch. Members that die mid-rendezvous are excluded when the
// detector declares them (the rendezvous is re-evaluated on detection), so
// Shrink completes within the heartbeat bound. Calling Shrink again after
// it completed returns the same communicator.
func (c *Comm) Shrink(p *sim.Proc, r *Rank) (*Comm, error) {
	w := c.w
	if !w.ftOn {
		return nil, errors.New("mpi: Shrink requires failure tolerance (crash plan or heartbeat config)")
	}
	if !c.Contains(r.id) {
		return nil, fmt.Errorf("mpi: rank %d is not a member of the communicator", r.id)
	}
	t0 := p.Now()
	if c.shr == nil {
		c.shr = &shrinkState{
			ev:      w.Env.NewEvent(fmt.Sprintf("shrink-epoch%d", c.epoch)),
			arrived: make([]bool, len(w.ranks)),
		}
	}
	st := c.shr
	if !st.ev.Fired() {
		cost := shrinkBaseNs + int64(shrinkPerLiveNs*c.liveMembers())
		p.Sleep(cost)
		r.ChargeFailure("shrink", t0, cost)
		st.arrived[r.id] = true
		c.maybeFinishShrink()
		if !st.ev.Fired() {
			p.Wait(st.ev)
		}
	}
	return st.result, nil
}

func (c *Comm) liveMembers() int {
	n := 0
	for _, wr := range c.ranks {
		if !c.w.crashed[wr] {
			n++
		}
	}
	return n
}

// maybeFinishShrink completes the rendezvous once every live member has
// arrived. Called from Shrink (proc context) and from the failure detector
// (scheduler context) when a member dies mid-rendezvous.
func (c *Comm) maybeFinishShrink() {
	st := c.shr
	if st == nil || st.ev.Fired() {
		return
	}
	var survivors []int
	for _, wr := range c.ranks {
		if c.w.crashed[wr] {
			continue
		}
		if !st.arrived[wr] {
			return
		}
		survivors = append(survivors, wr)
	}
	if len(survivors) == 0 {
		return
	}
	st.result = c.w.newComm(survivors)
	c.w.usite.Recordf(fault.Shrink, "epoch%d -> epoch%d (%d of %d ranks)",
		c.epoch, st.result.epoch, len(survivors), len(c.ranks))
	st.ev.Fire()
}

// --- Agree ---

// agreeState is one agreement round over a comm.
type agreeState struct {
	ev      *sim.Event
	arrived []bool
	flags   uint64
	result  uint64
	err     error
}

// Agree is the MPIX_Comm_agree analogue: a fault-tolerant agreement that
// returns the bitwise AND of the live members' flags. If any member of the
// communicator is dead when the agreement completes, the agreed flag is
// still returned together with a *RankFailedError — exactly ULFM's
// contract (the flag is consistent among survivors; the error tells them a
// failure happened). Each completed round resets the state, so Agree may be
// called repeatedly.
func (c *Comm) Agree(p *sim.Proc, r *Rank, flag uint64) (uint64, error) {
	w := c.w
	if !w.ftOn {
		return 0, errors.New("mpi: Agree requires failure tolerance (crash plan or heartbeat config)")
	}
	if !c.Contains(r.id) {
		return 0, fmt.Errorf("mpi: rank %d is not a member of the communicator", r.id)
	}
	t0 := p.Now()
	if c.agr == nil {
		c.agr = &agreeState{
			ev:      w.Env.NewEvent(fmt.Sprintf("agree-epoch%d-%d", c.epoch, c.agreeSeq)),
			arrived: make([]bool, len(w.ranks)),
			flags:   ^uint64(0),
		}
		c.agreeSeq++
	}
	st := c.agr
	cost := agreeBaseNs + int64(agreePerLiveNs*c.liveMembers())
	p.Sleep(cost)
	r.ChargeFailure("agree", t0, cost)
	st.arrived[r.id] = true
	st.flags &= flag
	c.maybeFinishAgree()
	if !st.ev.Fired() {
		p.Wait(st.ev)
	}
	return st.result, st.err
}

// maybeFinishAgree completes the round once every live member contributed.
func (c *Comm) maybeFinishAgree() {
	st := c.agr
	if st == nil || st.ev.Fired() {
		return
	}
	anyDead := false
	for _, wr := range c.ranks {
		if c.w.crashed[wr] {
			anyDead = true
			continue
		}
		if !st.arrived[wr] {
			return
		}
	}
	st.result = st.flags
	if anyDead {
		for _, wr := range c.ranks {
			if c.w.crashed[wr] {
				st.err = &RankFailedError{Rank: wr, DetectedAt: c.w.Env.Now()}
				break
			}
		}
	}
	c.w.usite.Recordf(fault.Agree, "epoch%d flag=%#x dead=%v", c.epoch, st.result, anyDead)
	c.agr = nil // next Agree starts a fresh round; waiters hold st
	st.ev.Fire()
}

// rankOfProc resolves the rank running on proc p (the barrier API predates
// failure tolerance and carries no rank identity).
func (w *World) rankOfProc(p *sim.Proc) int {
	for _, r := range w.ranks {
		if r.proc == p {
			return r.id
		}
	}
	panic("mpi: Barrier called from a proc that is not a rank")
}

// ftBarrier is the failure-aware barrier: per-rank arrival flags, completed
// when every live rank has arrived (either here or when the detector
// declares the missing rank dead).
func (w *World) ftBarrier(p *sim.Proc) {
	id := w.rankOfProc(p)
	if w.barrierArrived == nil {
		w.barrierArrived = make([]bool, len(w.ranks))
	}
	if w.barrierEv == nil {
		w.barrierEv = w.Env.NewEvent("barrier")
	}
	w.barrierArrived[id] = true
	if w.barrierSatisfied() {
		w.fireBarrier()
		return
	}
	ev := w.barrierEv
	p.Wait(ev)
}

// recheckBarrier re-evaluates a pending barrier after a failure declaration:
// if every live rank already arrived, the barrier completes among survivors.
func (w *World) recheckBarrier() {
	if w.barrierEv == nil {
		return
	}
	if w.barrierSatisfied() {
		w.fireBarrier()
	}
}

// barrierSatisfied reports whether every live rank has arrived (ft mode).
func (w *World) barrierSatisfied() bool {
	any := false
	for i := range w.ranks {
		if w.crashed[i] {
			continue
		}
		if !w.barrierArrived[i] {
			return false
		}
		any = true
	}
	return any
}

func (w *World) fireBarrier() {
	ev := w.barrierEv
	w.barrierEv = nil
	for i := range w.barrierArrived {
		w.barrierArrived[i] = false
	}
	ev.Fire()
}

// --- world-level accessors ---

// FTEnabled reports whether rank-failure tolerance is active.
func (w *World) FTEnabled() bool { return w.ftOn }

// RankFailed reports whether rank i was declared dead by the detector.
func (w *World) RankFailed(i int) bool {
	return w.ftOn && i >= 0 && i < len(w.rankFailed) && w.rankFailed[i]
}

// FailedRanks lists the ranks declared dead, sorted.
func (w *World) FailedRanks() []int {
	var out []int
	if !w.ftOn {
		return out
	}
	for i, f := range w.rankFailed {
		if f {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// CrashedRanks lists the ranks whose procs were killed (ground truth;
// a superset of FailedRanks until detection catches up), sorted.
func (w *World) CrashedRanks() []int {
	var out []int
	if !w.ftOn {
		return out
	}
	for i, c := range w.crashed {
		if c {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Survivors lists the ranks that were never crashed, sorted.
func (w *World) Survivors() []int {
	out := make([]int, 0, len(w.ranks))
	for i := range w.ranks {
		if !w.isCrashed(i) {
			out = append(out, i)
		}
	}
	return out
}

// fusedPending is implemented by schemes whose scheduler can hold fused
// jobs back (the fusion scheme); PendingFusedJobs uses it for leak checks.
type fusedPending interface{ PendingFused() int }

// PendingFusedJobs counts fused pack/unpack jobs still queued (neither
// launched nor dropped) across the surviving ranks' schemes. Zero after any
// run that tears its fusion windows down properly — the error-path leak
// oracle of the conformance suite.
func (w *World) PendingFusedJobs() int {
	n := 0
	for _, r := range w.ranks {
		if w.isCrashed(r.id) {
			continue
		}
		if fp, ok := r.scheme.(fusedPending); ok {
			n += fp.PendingFused()
		}
	}
	return n
}
