package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// CollTagBase is the first tag of the reserved collective range. Every tag
// in [CollTagBase, ∞) belongs to the runtime's collective machinery (this
// file's legacy collectives and internal/coll); user Isend/Irecv with a
// tag in the range fails with a *TagError instead of silently colliding
// with collective envelopes. User code must stay below CollTagBase.
const CollTagBase = 1 << 20

// collTagBase is the historical internal name.
const collTagBase = CollTagBase

// Legacy collective tag assignments (all within the reserved range):
//
//	collTagBase+1              Bcast binomial tree
//	collTagBase+64..+127       AllreduceSumF64 phases
//	collTagBase+100            NeighborExchange shared tag
//
// internal/coll derives its tags from CollTagBase+4096 upward.
const (
	allreduceTagFold  = collTagBase + 64 // non-pow2 pre-fold / post-bcast
	allreduceTagPhase = collTagBase + 65 // + log2 step index
)

// Bcast broadcasts count elements of layout l from root's buf to every
// rank's buf using a binomial tree. Every rank must call it with the same
// arguments (SPMD style).
func (r *Rank) Bcast(p *sim.Proc, root int, buf *gpu.Buffer, l *datatype.Layout, count int) {
	size := r.world.Size()
	// Rotate so the root is virtual rank 0; classic binomial tree.
	vrank := (r.id - root + size) % size
	toReal := func(v int) int { return (v + root) % size }
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := toReal(vrank - mask)
			r.Wait(p, r.IrecvRaw(p, parent, collTagBase+1, buf, l, count))
			break
		}
		mask <<= 1
	}
	// mask is now the received bit (or >= size for the root); forward to
	// children at vrank+mask/2, vrank+mask/4, ...
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < size {
			child := toReal(vrank + mask)
			r.Wait(p, r.IsendRaw(p, child, collTagBase+1, buf, l, count))
		}
	}
}

// AllreduceSumF64 sums n float64 values element-wise across all ranks into
// every rank's buf. Power-of-two worlds run pure recursive doubling; other
// sizes use the binary-blocks fallback: the size-2^k remainder ranks fold
// their vectors into partners inside the largest power-of-two core, the
// core runs recursive doubling, and the result is sent back out. Errors
// (undersized buffer, failed underlying transfers) are returned — the old
// power-of-two-only panic path is gone.
func (r *Rank) AllreduceSumF64(p *sim.Proc, buf *gpu.Buffer, n int) error {
	size := r.world.Size()
	bytes := n * 8
	if n < 0 || buf.Len() < bytes {
		return fmt.Errorf("mpi: AllreduceSumF64: buffer holds %d bytes, need %d", buf.Len(), bytes)
	}
	if n == 0 || size == 1 {
		return nil
	}
	l := datatype.Commit(datatype.Contiguous(n, datatype.Float64))
	tmp := r.stagingBuf(int64(bytes))
	// Element-wise arithmetic needs real bytes whatever the payload mode:
	// a sum is not expressible in the lazy span algebra.
	buf.Materialize()
	tmp.Materialize()
	reduceInto := func(dst *gpu.Buffer, src *gpu.Buffer) {
		for i := 0; i < n; i++ {
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst.Data[i*8:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src.Data[i*8:]))
			binary.LittleEndian.PutUint64(dst.Data[i*8:], math.Float64bits(a+b))
		}
	}

	// Largest power-of-two core; rem ranks at the top fold downward.
	core := 1
	for core*2 <= size {
		core *= 2
	}
	rem := size - core
	if r.id >= core {
		// Extra rank: fold into partner, then wait for the result.
		partner := r.id - core
		if err := r.Wait(p, r.IsendRaw(p, partner, allreduceTagFold, buf, l, 1)); err != nil {
			return err
		}
		return r.Wait(p, r.IrecvRaw(p, partner, allreduceTagFold, buf, l, 1))
	}
	if r.id < rem {
		// Core partner of an extra rank: fold its vector in first.
		if err := r.Wait(p, r.IrecvRaw(p, r.id+core, allreduceTagFold, tmp, l, 1)); err != nil {
			return err
		}
		reduceInto(buf, tmp)
	}
	step := 0
	for mask := 1; mask < core; mask <<= 1 {
		peer := r.id ^ mask
		rq := r.IrecvRaw(p, peer, allreduceTagPhase+step, tmp, l, 1)
		sq := r.IsendRaw(p, peer, allreduceTagPhase+step, buf, l, 1)
		if err := r.Waitall(p, []*Request{rq, sq}); err != nil {
			return err
		}
		reduceInto(buf, tmp)
		step++
	}
	if r.id < rem {
		// Send the finished vector back out to the extra rank.
		return r.Wait(p, r.IsendRaw(p, r.id+core, allreduceTagFold, buf, l, 1))
	}
	return nil
}

// NeighborOp describes one leg of a neighborhood exchange: what to send to
// and receive from one peer, with per-peer datatypes — the shape of
// MPI_Neighbor_alltoallw, which is exactly the paper's "bulk
// non-contiguous data transfer".
type NeighborOp struct {
	Peer     int
	SendBuf  *gpu.Buffer
	SendType *datatype.Layout
	RecvBuf  *gpu.Buffer
	RecvType *datatype.Layout
	Count    int
}

// NeighborExchange posts all receives, then all sends, then waits — the
// MPI-level implicit approach of Algorithm 3, giving the runtime (and the
// fusion scheduler) maximal freedom to batch the datatype processing.
//
// Deprecated: internal/coll's NeighborAlltoallw supersedes this with
// collective-scope fusion windows; this path is kept for its tests and as
// the naive per-message reference.
func (r *Rank) NeighborExchange(p *sim.Proc, ops []NeighborOp) {
	// All legs share one tag: the k-th send to a peer matches the k-th
	// posted receive from that peer (FIFO matching), so both sides only
	// need to order their per-peer legs consistently, as
	// MPI_Neighbor_alltoallw's topology ordering guarantees.
	reqs := make([]*Request, 0, 2*len(ops))
	for _, op := range ops {
		count := op.Count
		if count == 0 {
			count = 1
		}
		reqs = append(reqs, r.IrecvRaw(p, op.Peer, collTagBase+100, op.RecvBuf, op.RecvType, count))
	}
	for _, op := range ops {
		count := op.Count
		if count == 0 {
			count = 1
		}
		reqs = append(reqs, r.IsendRaw(p, op.Peer, collTagBase+100, op.SendBuf, op.SendType, count))
	}
	r.Waitall(p, reqs)
}
