package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// Collective operations built on the point-to-point layer. Tags above
// collTagBase are reserved for collectives; applications should stay below.
const collTagBase = 1 << 20

// Bcast broadcasts count elements of layout l from root's buf to every
// rank's buf using a binomial tree. Every rank must call it with the same
// arguments (SPMD style).
func (r *Rank) Bcast(p *sim.Proc, root int, buf *gpu.Buffer, l *datatype.Layout, count int) {
	size := r.world.Size()
	// Rotate so the root is virtual rank 0; classic binomial tree.
	vrank := (r.id - root + size) % size
	toReal := func(v int) int { return (v + root) % size }
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := toReal(vrank - mask)
			r.Wait(p, r.Irecv(p, parent, collTagBase+1, buf, l, count))
			break
		}
		mask <<= 1
	}
	// mask is now the received bit (or >= size for the root); forward to
	// children at vrank+mask/2, vrank+mask/4, ...
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < size {
			child := toReal(vrank + mask)
			r.Wait(p, r.Isend(p, child, collTagBase+1, buf, l, count))
		}
	}
}

// AllreduceSumF64 sums n float64 values element-wise across all ranks into
// every rank's buf (recursive doubling; world size must be a power of
// two, which holds for the modeled systems).
func (r *Rank) AllreduceSumF64(p *sim.Proc, buf *gpu.Buffer, n int) {
	size := r.world.Size()
	if size&(size-1) != 0 {
		panic("mpi: AllreduceSumF64 requires power-of-two world")
	}
	bytes := n * 8
	if buf.Len() < bytes {
		panic("mpi: AllreduceSumF64 buffer too small")
	}
	l := datatype.Commit(datatype.Contiguous(n, datatype.Float64))
	tmp := r.Dev.Alloc(fmt.Sprintf("allreduce-tmp-%d", r.id), bytes)
	for mask := 1; mask < size; mask <<= 1 {
		peer := r.id ^ mask
		rq := r.Irecv(p, peer, collTagBase+2+mask, tmp, l, 1)
		sq := r.Isend(p, peer, collTagBase+2+mask, buf, l, 1)
		r.Waitall(p, []*Request{rq, sq})
		for i := 0; i < n; i++ {
			a := math.Float64frombits(binary.LittleEndian.Uint64(buf.Data[i*8:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(tmp.Data[i*8:]))
			binary.LittleEndian.PutUint64(buf.Data[i*8:], math.Float64bits(a+b))
		}
	}
}

// NeighborOp describes one leg of a neighborhood exchange: what to send to
// and receive from one peer, with per-peer datatypes — the shape of
// MPI_Neighbor_alltoallw, which is exactly the paper's "bulk
// non-contiguous data transfer".
type NeighborOp struct {
	Peer     int
	SendBuf  *gpu.Buffer
	SendType *datatype.Layout
	RecvBuf  *gpu.Buffer
	RecvType *datatype.Layout
	Count    int
}

// NeighborExchange posts all receives, then all sends, then waits — the
// MPI-level implicit approach of Algorithm 3, giving the runtime (and the
// fusion scheduler) maximal freedom to batch the datatype processing.
func (r *Rank) NeighborExchange(p *sim.Proc, ops []NeighborOp) {
	// All legs share one tag: the k-th send to a peer matches the k-th
	// posted receive from that peer (FIFO matching), so both sides only
	// need to order their per-peer legs consistently, as
	// MPI_Neighbor_alltoallw's topology ordering guarantees.
	reqs := make([]*Request, 0, 2*len(ops))
	for _, op := range ops {
		count := op.Count
		if count == 0 {
			count = 1
		}
		reqs = append(reqs, r.Irecv(p, op.Peer, collTagBase+100, op.RecvBuf, op.RecvType, count))
	}
	for _, op := range ops {
		count := op.Count
		if count == 0 {
			count = 1
		}
		reqs = append(reqs, r.Isend(p, op.Peer, collTagBase+100, op.SendBuf, op.SendType, count))
	}
	r.Waitall(p, reqs)
}
