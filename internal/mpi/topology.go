package mpi

import "fmt"

// CartComm is a Cartesian process topology (MPI_Cart_create) over the
// first prod(dims) ranks of the world, row-major. It provides the neighbor
// arithmetic multi-dimensional domain decompositions need (Section II-B).
type CartComm struct {
	world   *World
	dims    []int
	periods []bool
	size    int
}

// CartCreate builds a Cartesian topology. The product of dims must not
// exceed the world size.
func (w *World) CartCreate(dims []int, periods []bool) *CartComm {
	if len(dims) == 0 || len(dims) != len(periods) {
		panic("mpi: CartCreate dims/periods mismatch")
	}
	size := 1
	for _, d := range dims {
		if d <= 0 {
			panic("mpi: CartCreate non-positive dimension")
		}
		size *= d
	}
	if size > w.Size() {
		panic(fmt.Sprintf("mpi: CartCreate needs %d ranks, world has %d", size, w.Size()))
	}
	return &CartComm{
		world:   w,
		dims:    append([]int(nil), dims...),
		periods: append([]bool(nil), periods...),
		size:    size,
	}
}

// Size returns the number of ranks in the topology.
func (c *CartComm) Size() int { return c.size }

// Dims returns a copy of the grid dimensions.
func (c *CartComm) Dims() []int { return append([]int(nil), c.dims...) }

// Member reports whether world rank r participates in the topology.
func (c *CartComm) Member(r int) bool { return r >= 0 && r < c.size }

// Coords returns the Cartesian coordinates of world rank r
// (MPI_Cart_coords).
func (c *CartComm) Coords(r int) []int {
	if !c.Member(r) {
		panic(fmt.Sprintf("mpi: rank %d not in topology", r))
	}
	out := make([]int, len(c.dims))
	for i := len(c.dims) - 1; i >= 0; i-- {
		out[i] = r % c.dims[i]
		r /= c.dims[i]
	}
	return out
}

// RankOf returns the world rank at coords (MPI_Cart_rank), applying
// periodicity; it returns -1 (MPI_PROC_NULL) for out-of-range coordinates
// on non-periodic axes.
func (c *CartComm) RankOf(coords []int) int {
	if len(coords) != len(c.dims) {
		panic("mpi: RankOf dimension mismatch")
	}
	r := 0
	for i, v := range coords {
		if v < 0 || v >= c.dims[i] {
			if !c.periods[i] {
				return -1
			}
			v = ((v % c.dims[i]) + c.dims[i]) % c.dims[i]
		}
		r = r*c.dims[i] + v
	}
	return r
}

// Shift returns the source and destination ranks for a displacement along
// an axis (MPI_Cart_shift): src sends to the caller, the caller sends to
// dst. Either may be -1 on a non-periodic boundary.
func (c *CartComm) Shift(rank, axis, disp int) (src, dst int) {
	coords := c.Coords(rank)
	up := append([]int(nil), coords...)
	up[axis] += disp
	down := append([]int(nil), coords...)
	down[axis] -= disp
	return c.RankOf(down), c.RankOf(up)
}

// Neighbors lists the distinct valid face neighbors (±1 along every axis)
// of rank in axis order: -x, +x, -y, +y, ... (skipping PROC_NULL).
func (c *CartComm) Neighbors(rank int) []int {
	var out []int
	for a := range c.dims {
		src, dst := c.Shift(rank, a, 1)
		if src >= 0 {
			out = append(out, src)
		}
		if dst >= 0 {
			out = append(out, dst)
		}
	}
	return out
}
