package mpi_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// crashPlan schedules the death of rank at atNs.
func crashPlan(seed uint64, rank int, atNs int64) *fault.Plan {
	return &fault.Plan{
		Seed: seed,
		Proc: fault.ProcPlan{Crashes: []fault.Crash{{Rank: rank, AtNs: atNs}}},
	}
}

// ftOnlyPlan activates failure tolerance without any reachable crash (the
// planned crash targets a rank number the world doesn't have).
func ftOnlyPlan(seed uint64) *fault.Plan {
	return &fault.Plan{
		Seed: seed,
		Proc: fault.ProcPlan{Crashes: []fault.Crash{{Rank: 1 << 20, AtNs: 1}}},
	}
}

func TestRankCrashDetectedWithTypedErrors(t *testing.T) {
	w := newWorld("Proposed-Tuned", func(c *mpi.Config) {
		c.Faults = crashPlan(1, 1, 20_000)
	})
	l := datatype.Commit(datatype.Contiguous(256, datatype.Float64))
	errs := make([]error, w.Size())
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 1:
			// Victim: sit in a long sleep; the kill lands mid-sleep.
			p.Sleep(10 * sim.Millisecond)
		default:
			// Every survivor waits on a receive from the victim that can
			// never be satisfied.
			buf := r.Dev.Alloc(fmt.Sprintf("rb%d", r.ID()), int(l.ExtentBytes))
			errs[r.ID()] = r.Wait(p, r.Irecv(p, 1, 5, buf, l, 1))
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := w.CrashedRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("crashed = %v", got)
	}
	if got := w.FailedRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("failed = %v", got)
	}
	for id, e := range errs {
		if id == 1 {
			continue
		}
		var rf *mpi.RankFailedError
		if !errors.As(e, &rf) || rf.Rank != 1 {
			t.Fatalf("rank %d error = %v, want *RankFailedError{Rank:1}", id, e)
		}
		if !errors.Is(e, mpi.ErrRankFailed) {
			t.Fatalf("rank %d error does not unwrap to ErrRankFailed: %v", id, e)
		}
		var op *mpi.OpError
		if !errors.As(e, &op) {
			t.Fatalf("rank %d error not wrapped in *OpError: %v", id, e)
		}
	}
	if n := w.LeakedRequests(); n != 0 {
		t.Fatalf("leaked requests = %d", n)
	}
	// Detection must complete within the heartbeat bound, far under the
	// watchdog stall timeout.
	bound := int64(20_000 + 150_000 + 2*25_000)
	for id, e := range errs {
		if id == 1 || e == nil {
			continue
		}
		var rf *mpi.RankFailedError
		errors.As(e, &rf)
		if rf.DetectedAt > bound {
			t.Fatalf("rank %d detected at %dns, beyond bound %dns", id, rf.DetectedAt, bound)
		}
	}
}

func TestCrashIsDeterministic(t *testing.T) {
	run := func() (int64, []string) {
		w := newWorld("Proposed", func(c *mpi.Config) {
			c.Faults = crashPlan(3, 2, 30_000)
		})
		l := datatype.Commit(datatype.Vector(32, 64, 128, datatype.Float32))
		w.Run(func(r *mpi.Rank, p *sim.Proc) {
			buf := r.Dev.Alloc(fmt.Sprintf("b%d", r.ID()), int(l.ExtentBytes))
			next := (r.ID() + 1) % w.Size()
			prev := (r.ID() + w.Size() - 1) % w.Size()
			rq := r.Irecv(p, prev, 9, buf, l, 1)
			sq := r.Isend(p, next, 9, buf, l, 1)
			r.Waitall(p, []*mpi.Request{rq, sq})
		})
		var evs []string
		for _, ev := range w.FaultEvents() {
			evs = append(evs, fmt.Sprintf("%d %s %s %s", ev.At, ev.Site, ev.Kind, ev.Detail))
		}
		return w.Env.Now(), evs
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 {
		t.Fatalf("final clock differs: %d vs %d", c1, c2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs:\n%s\n%s", i, e1[i], e2[i])
		}
	}
}

func TestRevokeFailsPendingAndPropagatesInBand(t *testing.T) {
	w := newWorld("Proposed-Tuned", func(c *mpi.Config) {
		c.Faults = ftOnlyPlan(1)
	})
	l := datatype.Commit(datatype.Contiguous(64, datatype.Float64))
	c := w.WorldComm()
	errs := make([]error, w.Size())
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() == 0 {
			p.Sleep(5_000)
			c.Revoke(p, r)
			return
		}
		// Every other rank parks a receive (bound to the world comm) that
		// nothing will ever match; the revocation must fail it in place.
		buf := r.Dev.Alloc(fmt.Sprintf("rb%d", r.ID()), int(l.ExtentBytes))
		q := r.Irecv(p, 0, 11, buf, l, 1)
		c.Bind(q)
		errs[r.ID()] = r.Wait(p, q)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for id, e := range errs {
		if id == 0 {
			continue
		}
		if !errors.Is(e, mpi.ErrCommRevoked) {
			t.Fatalf("rank %d error = %v, want ErrCommRevoked", id, e)
		}
	}
	if !c.Revoked(w.Rank(0)) || !c.Revoked(w.Rank(3)) {
		t.Fatal("revocation did not propagate to all ranks")
	}
	if n := w.LeakedRequests(); n != 0 {
		t.Fatalf("leaked requests = %d", n)
	}
}

func TestShrinkAndAgreeAfterCrash(t *testing.T) {
	w := newWorld("Proposed-Tuned", func(c *mpi.Config) {
		c.Faults = crashPlan(2, 1, 20_000)
	})
	c := w.WorldComm()
	type res struct {
		flag  uint64
		aerr  error
		shrnk *mpi.Comm
	}
	out := make([]res, w.Size())
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() == 1 {
			p.Sleep(10 * sim.Millisecond)
			return
		}
		flag, aerr := c.Agree(p, r, uint64(2+r.ID()%2)) // 2 or 3: AND has bit 1 iff all contribute it
		sc, serr := c.Shrink(p, r)
		if serr != nil {
			t.Errorf("rank %d shrink: %v", r.ID(), serr)
		}
		out[r.ID()] = res{flag: flag, aerr: aerr, shrnk: sc}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := out[0].flag
	for id, o := range out {
		if id == 1 {
			continue
		}
		if o.flag != want {
			t.Fatalf("rank %d agreed flag %#x, rank 0 agreed %#x", id, o.flag, want)
		}
		// A member died: ULFM's Agree still returns the flag but reports
		// the failure.
		var rf *mpi.RankFailedError
		if !errors.As(o.aerr, &rf) || rf.Rank != 1 {
			t.Fatalf("rank %d agree error = %v, want *RankFailedError{Rank:1}", id, o.aerr)
		}
		if o.shrnk == nil {
			t.Fatalf("rank %d got nil shrunken comm", id)
		}
		if o.shrnk != out[0].shrnk {
			t.Fatalf("ranks got different shrunken comms")
		}
	}
	sc := out[0].shrnk
	if sc.Size() != w.Size()-1 {
		t.Fatalf("shrunken size = %d, want %d", sc.Size(), w.Size()-1)
	}
	if sc.Epoch() == 0 {
		t.Fatal("shrunken comm kept epoch 0")
	}
	if sc.Contains(1) {
		t.Fatal("shrunken comm still contains the dead rank")
	}
	// Dense re-ranking: world ranks 0,2,3,... become comm ranks 0,1,2,...
	wantCR := 0
	for wr := 0; wr < w.Size(); wr++ {
		if wr == 1 {
			if sc.CommRank(wr) != -1 {
				t.Fatalf("dead rank has comm rank %d", sc.CommRank(wr))
			}
			continue
		}
		if sc.CommRank(wr) != wantCR || sc.WorldRank(wantCR) != wr {
			t.Fatalf("world rank %d -> comm rank %d, want %d", wr, sc.CommRank(wr), wantCR)
		}
		wantCR++
	}
}

// TestWaitallErrorOrderDeterministic locks in the deterministic error
// selection of a mixed failure batch: errors come back in request index
// order, never in failure-time order. Request 0 fails late (its peer's
// death is detected after ~175 µs); request 1 fails almost immediately
// (truncation at match time). The joined error must still list request 0's
// failure first.
func TestWaitallErrorOrderDeterministic(t *testing.T) {
	w := newWorld("Proposed-Tuned", func(c *mpi.Config) {
		c.Faults = crashPlan(1, 1, 20_000)
	})
	small := datatype.Commit(datatype.Contiguous(64, datatype.Float64))
	big := datatype.Commit(datatype.Contiguous(128, datatype.Float64))
	var joined error
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			rb0 := r.Dev.Alloc("rb0", int(small.ExtentBytes))
			rb1 := r.Dev.Alloc("rb1", int(small.ExtentBytes))
			q0 := r.Irecv(p, 1, 5, rb0, small, 1) // fails at detection (late)
			q1 := r.Irecv(p, 2, 6, rb1, small, 1) // fails by truncation (early)
			joined = r.Waitall(p, []*mpi.Request{q0, q1})
		case 1:
			p.Sleep(10 * sim.Millisecond)
		case 2:
			sb := r.Dev.Alloc("sb", int(big.ExtentBytes))
			r.Wait(p, r.Isend(p, 0, 6, sb, big, 1)) // oversized: truncates
		default:
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	u, ok := joined.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("joined error %T does not unwrap to a list: %v", joined, joined)
	}
	errs := u.Unwrap()
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2: %v", len(errs), joined)
	}
	if !errors.Is(errs[0], mpi.ErrRankFailed) {
		t.Fatalf("errs[0] = %v, want request 0's rank-failure first", errs[0])
	}
	if !errors.Is(errs[1], mpi.ErrTruncate) {
		t.Fatalf("errs[1] = %v, want request 1's truncation second", errs[1])
	}
	// The failure times prove the order is by index, not by time.
	var rf *mpi.RankFailedError
	errors.As(errs[0], &rf)
	if rf == nil || rf.DetectedAt < 20_000 {
		t.Fatalf("request 0 should have failed late (detection), got %v", errs[0])
	}
}

func TestPostToFailedPeerFailsFast(t *testing.T) {
	w := newWorld("Proposed-Tuned", func(c *mpi.Config) {
		c.Faults = crashPlan(1, 1, 10_000)
	})
	l := datatype.Commit(datatype.Contiguous(64, datatype.Float64))
	var postErr error
	var postedAt, settledAt int64
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			// Outwait detection, then post to the dead rank: the request
			// must fail immediately, not after a retransmit storm.
			p.Sleep(400_000)
			sb := r.Dev.Alloc("sb", int(l.ExtentBytes))
			postedAt = p.Now()
			q := r.Isend(p, 1, 5, sb, l, 1)
			postErr = r.Wait(p, q)
			settledAt = p.Now()
		case 1:
			p.Sleep(10 * sim.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(postErr, mpi.ErrRankFailed) {
		t.Fatalf("post error = %v, want ErrRankFailed", postErr)
	}
	if settledAt != postedAt {
		t.Fatalf("fail-fast post still took %dns", settledAt-postedAt)
	}
}

func TestFTBarrierCompletesAmongSurvivors(t *testing.T) {
	w := newWorld("Proposed-Tuned", func(c *mpi.Config) {
		c.Faults = crashPlan(1, 2, 15_000)
	})
	reached := make([]bool, w.Size())
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() == 2 {
			p.Sleep(10 * sim.Millisecond)
			return
		}
		w.Barrier(p)
		reached[r.ID()] = true
	})
	if err != nil {
		t.Fatalf("run: %v (barrier must not deadlock on a dead rank)", err)
	}
	for id, ok := range reached {
		if id != 2 && !ok {
			t.Fatalf("rank %d never passed the barrier", id)
		}
	}
}

func TestShrinkCommCarriesTraffic(t *testing.T) {
	// After a crash + shrink, point-to-point traffic between survivors must
	// still work (the shrunken comm is translation-only at the p2p layer,
	// but the ranks must not be poisoned by the earlier failure).
	w := newWorld("Proposed-Tuned", func(c *mpi.Config) {
		c.Faults = crashPlan(1, 1, 10_000)
	})
	c := w.WorldComm()
	l := datatype.Commit(datatype.Contiguous(64, datatype.Float64))
	var relayed error
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() == 1 {
			p.Sleep(10 * sim.Millisecond)
			return
		}
		sc, serr := c.Shrink(p, r)
		if serr != nil {
			t.Errorf("shrink: %v", serr)
			return
		}
		// Comm ranks 0 and 1 of the shrunken comm exchange one message.
		switch sc.CommRank(r.ID()) {
		case 0:
			sb := r.Dev.Alloc("sb", int(l.ExtentBytes))
			relayed = r.Wait(p, r.Isend(p, sc.WorldRank(1), 7, sb, l, 1))
		case 1:
			rb := r.Dev.Alloc("rb", int(l.ExtentBytes))
			r.Wait(p, r.Irecv(p, sc.WorldRank(0), 7, rb, l, 1))
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if relayed != nil {
		t.Fatalf("survivor exchange failed: %v", relayed)
	}
	if n := w.LeakedRequests(); n != 0 {
		t.Fatalf("leaked requests = %d", n)
	}
}
