// Package mpi implements a CUDA-aware-MPI-style runtime on the simulated
// cluster: ranks, non-blocking point-to-point operations with tag matching
// (posted-receive and unexpected-message queues), eager and rendezvous
// (RGET/RPUT) protocols over the RDMA fabric, and a polled progress engine.
//
// Derived-datatype processing is delegated to a pluggable Scheme — this is
// the seam where the paper's proposal and every baseline plug in: GPU-Sync,
// GPU-Async, CPU-GPU-Hybrid, the naive per-block memcpy of production
// libraries, and the proposed dynamic kernel fusion.
package mpi

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/layoutcache"
	"repro/internal/pack"
	"repro/internal/payload"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// AnyTag matches any tag in a receive.
const AnyTag = -1

// AnySource matches any source rank in a receive.
const AnySource = -1

// RendezvousMode selects the large-message sub-protocol (Section IV-B1).
type RendezvousMode int

const (
	// RGET: the sender sends RTS after packing completes; the receiver
	// RDMA-READs the packed data.
	RGET RendezvousMode = iota
	// RPUT: the sender sends RTS immediately, overlapping the
	// handshake with packing; on CTS it RDMA-WRITEs the packed data.
	RPUT
)

func (m RendezvousMode) String() string {
	if m == RGET {
		return "RGET"
	}
	return "RPUT"
}

// Config tunes the runtime.
type Config struct {
	// EagerLimitBytes: payloads at or below travel eagerly.
	EagerLimitBytes int64
	// Rendezvous selects RGET or RPUT for large payloads.
	Rendezvous RendezvousMode
	// PollIntervalNs is the progress-engine poll period while blocked.
	PollIntervalNs int64
	// CacheCapacity bounds each rank's layout cache (0 = unbounded).
	CacheCapacity int
	// CacheCost prices layout-cache interactions.
	CacheCost layoutcache.CostModel
	// StallTimeoutNs bounds how long the simulation may run without any
	// request completing before the sim-level watchdog declares a
	// deadlock: World.Run then returns a *sim.StallError naming the stuck
	// procs and dumping per-rank request states. Zero selects the default
	// (100 ms of virtual time); negative disables the watchdog.
	StallTimeoutNs int64
	// Faults, when non-nil, threads a deterministic fault injector through
	// the fabric, NIC, and GPU layers AND activates the reliability layer
	// (reliable.go): acked + checksummed transport with timeout/backoff
	// retransmission and typed request errors. Nil keeps every fault-free
	// fast path byte-identical to a build without the layer.
	Faults *fault.Plan
	// Retry tunes the reliability layer; zero values select defaults.
	// Ignored when Faults is nil.
	Retry RetryPolicy
	// Heartbeat tunes the rank-failure detector (ulfm.go). The detector
	// activates automatically when the fault plan schedules rank crashes;
	// setting TimeoutNs > 0 activates it explicitly. Zero values select
	// defaults. Ignored when Faults is nil.
	Heartbeat HeartbeatConfig
	// DisableIPC turns off the DirectIPC fast path even when the scheme
	// supports it (for ablations).
	DisableIPC bool
	// DisableLayoutCache makes every datatype lookup pay the full
	// flattening cost (ablation of the layout cache of [24]).
	DisableLayoutCache bool
	// DisablePackPlans forces the legacy block-list pack/unpack loops
	// instead of the compiled per-canonical-form plans (the control arm of
	// the plans-on/plans-off differential oracle). Plans never change
	// virtual-time charges, only host execution, so results must be
	// bit-identical either way.
	DisablePackPlans bool
	// PipelineChunkBytes enables chunked (pipelined) rendezvous for
	// non-contiguous RGET sends larger than this: each chunk packs as
	// its own request and transfers as soon as it is ready. Zero
	// disables pipelining.
	PipelineChunkBytes int64
	// Timeline, when non-nil, enables per-rank event tracing: every rank
	// gets a ring-buffered recorder wired through the sim, gpu, mpi, and
	// fusion layers. Nil (the default) keeps the hot paths allocation-free.
	Timeline *timeline.Options
}

// DefaultConfig mirrors common GPU-aware MPI settings.
func DefaultConfig() Config {
	return Config{
		EagerLimitBytes: 16 << 10,
		Rendezvous:      RGET,
		PollIntervalNs:  200,
		CacheCost:       layoutcache.DefaultCostModel,
	}
}

// Handle tracks one in-flight datatype-processing operation owned by a
// Scheme. Done may charge the polling proc (event queries, scheduler
// queries); DoneEv may return nil if the scheme is poll-only. Err reports a
// terminal processing failure (fused launch degraded and still failed);
// the progress engine converts it into a typed request error. Fault-free
// schemes return nil forever.
type Handle interface {
	Done(p *sim.Proc) bool
	DoneEv() *sim.Event
	Err() error
}

// Scheme processes derived datatypes for one rank. Implementations decide
// where packing runs (GPU kernel, fused kernel, CPU window) and how
// completion is detected — exactly the design space of the paper's Table I.
type Scheme interface {
	Name() string
	// Pack starts packing job (origin non-contiguous -> target packed).
	Pack(p *sim.Proc, job *pack.Job) Handle
	// Unpack starts unpacking job (origin packed -> target scattered).
	Unpack(p *sim.Proc, job *pack.Job) Handle
	// DirectIPC starts a zero-copy device-to-device non-contiguous
	// transfer; ok=false means unsupported and the caller falls back to
	// pack/send/unpack.
	DirectIPC(p *sim.Proc, job *pack.Job) (h Handle, ok bool)
	// Flush tells the scheme no more operations are coming before a
	// synchronization point (MPI_Waitall); fusion launches here.
	Flush(p *sim.Proc)
}

// SchemeFactory builds the per-rank scheme instance.
type SchemeFactory func(r *Rank) Scheme

// World is a set of ranks bound to a simulated cluster, one rank per GPU.
type World struct {
	Env     *sim.Env
	Cluster *cluster.Cluster
	Cfg     Config
	ranks   []*Rank
	tl      *timeline.Timeline

	// inj is the fault injector (nil without a fault plan); its presence
	// is what switches the reliability layer on.
	inj       *fault.Injector
	retry     RetryPolicy
	nextMsgID int64 // world-unique reliable-message ids

	barrierEv    *sim.Event
	barrierCount int

	// Rank-failure tolerance state (ulfm.go); inert unless the fault plan
	// schedules crashes or Config.Heartbeat is set.
	ftOn           bool
	hb             HeartbeatConfig
	crashed        []bool  // ground truth: proc killed
	rankFailed     []bool  // detector's view: declared dead
	failedAt       []int64 // detection time per declared-dead rank
	hbLast         []int64 // last heartbeat per rank
	maxCrashAt     int64   // latest planned crash time
	psite          *fault.Site
	dsite          *fault.Site
	usite          *fault.Site
	epochSeq       int
	worldComm      *Comm
	comms          []*Comm
	barrierArrived []bool
	onRankFailed   []func(dead int) // observers notified after declareFailed
	onCommRevoked  []func(c *Comm)  // observers notified on first revocation per comm
}

// Timeline returns the world's event timeline, or nil when tracing is off.
func (w *World) Timeline() *timeline.Timeline { return w.tl }

// NewWorld creates one rank per GPU of the cluster, each with its own
// layout cache, trace breakdown, and scheme instance.
func NewWorld(c *cluster.Cluster, cfg Config, factory SchemeFactory) *World {
	if cfg.PollIntervalNs <= 0 {
		cfg.PollIntervalNs = DefaultConfig().PollIntervalNs
	}
	w := &World{Env: c.Env, Cluster: c, Cfg: cfg}
	if cfg.Timeline != nil {
		w.tl = timeline.New(c.Spec.Nodes*c.Spec.GPUsPerNode, cfg.Timeline.Capacity)
	}
	inj, err := fault.NewInjector(cfg.Faults, c.Env.Now)
	if err != nil {
		// Configuration front doors (dkf.NewSession) validate the plan
		// first and surface this as an error.
		panic("mpi: invalid fault plan: " + err.Error())
	}
	w.inj = inj
	if inj != nil {
		w.retry = cfg.Retry.normalized()
		c.Net.InjectFaults(inj)
		if w.tl != nil {
			cap := 0
			if cfg.Timeline != nil {
				cap = cfg.Timeline.Capacity
			}
			rec := w.tl.ExtraTrack("faults", cap)
			inj.SetHook(func(ev fault.Event) {
				layer := timeline.LayerFault
				switch ev.Kind {
				case fault.RankCrash, fault.Detect, fault.Revoke, fault.Shrink, fault.Agree:
					layer = timeline.LayerFailure
				}
				rec.Instant(layer, ev.Site, ev.Kind.String(), ev.At,
					timeline.Arg{Key: "detail", Val: ev.Detail})
			})
		}
	}
	id := 0
	for n := 0; n < c.Spec.Nodes; n++ {
		for g := 0; g < c.Spec.GPUsPerNode; g++ {
			r := &Rank{
				world:     w,
				id:        id,
				node:      n,
				Dev:       c.Device(n, g),
				cache:     layoutcache.New(cfg.CacheCapacity),
				plancache: layoutcache.New(cfg.CacheCapacity),
				Trace:     &trace.Breakdown{},
				tl:        w.tl.Rank(id),
			}
			r.cache.DisablePlans = cfg.DisablePackPlans
			r.plancache.DisablePlans = cfg.DisablePackPlans
			r.Dev.TL = r.tl
			if inj != nil {
				r.fsite = inj.Site(fmt.Sprintf("mpi:rank%d", id))
				r.Dev.Faults = inj.Site(fmt.Sprintf("gpu:rank%d", id))
				r.seen = make(map[int64]bool)
			}
			w.ranks = append(w.ranks, r)
			id++
		}
	}
	// Scheme construction happens after all ranks exist so factories may
	// inspect the world.
	for _, r := range w.ranks {
		r.scheme = factory(r)
	}
	w.initFT()
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Run spawns one proc per rank executing body and drives the simulation to
// completion. It returns the sim error: deadlocks surface here as a
// *sim.StallError from the watchdog (armed from Config.StallTimeoutNs),
// carrying per-rank request-state diagnostics.
func (w *World) Run(body func(r *Rank, p *sim.Proc)) error {
	if stall := w.Cfg.StallTimeoutNs; stall >= 0 {
		if stall == 0 {
			stall = 100 * sim.Millisecond
		}
		w.Env.SetWatchdog(stall, w.stallDiag)
	}
	for _, r := range w.ranks {
		r := r
		w.Env.Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			r.proc = p
			p.SetTimeline(r.tl)
			body(r, p)
		})
	}
	w.scheduleCrashes()
	return w.Env.Run()
}

// stallDiag renders the per-rank request states (plus fault counters, when
// injecting) for the watchdog's StallError.
func (w *World) stallDiag() string {
	var b strings.Builder
	for _, r := range w.ranks {
		if len(r.active) == 0 {
			continue
		}
		fmt.Fprintf(&b, "rank%d:", r.id)
		for _, q := range r.active {
			dir := "recv"
			if q.isSend {
				dir = "send"
			}
			fmt.Fprintf(&b, " [%s peer=%d tag=%d state=%s]", dir, q.peer, q.tag, q.state)
		}
		b.WriteString("\n")
	}
	if w.inj != nil {
		fmt.Fprintf(&b, "faults injected: %v\n", w.inj.Counts())
		fmt.Fprintf(&b, "fabric faults: %v\n", w.Cluster.Net.FaultCounts())
	}
	if w.ftOn {
		fmt.Fprintf(&b, "crashed ranks: %v declared failed: %v\n", w.CrashedRanks(), w.FailedRanks())
	}
	return b.String()
}

// Rank is one MPI process bound to one GPU.
type Rank struct {
	world *World
	id    int
	node  int
	Dev   *gpu.Device
	proc  *sim.Proc
	cache *layoutcache.Cache
	// plancache serves uncharged lookups (LayoutEntry): collective
	// engines fetch compiled plans through it without perturbing the
	// charged cache's hit pattern, keeping virtual-time charges identical
	// to the pre-plan runtime.
	plancache *layoutcache.Cache
	scheme    Scheme

	// Trace accrues the Fig. 11 cost taxonomy for this rank.
	Trace *trace.Breakdown
	// tl is the rank's timeline recorder; nil when tracing is disabled.
	tl *timeline.Recorder

	posted     []*Request // posted receives awaiting a match
	unexpected []*message // arrived messages with no posted receive
	active     []*Request // all incomplete requests this rank owns

	// Envelope-ordering state: MPI's non-overtaking rule requires that
	// the matchable envelopes (eager data or RTS) of sends to the same
	// destination hit the wire in Isend order, even when an earlier
	// send's packing finishes later. sendSeq numbers sends per
	// destination; emitNext/emitWait implement the FIFO send queue a
	// real NIC channel provides.
	sendSeq  map[int]int64
	emitNext map[int]int64
	emitWait map[int]map[int64]func(*sim.Proc)

	// orphanChunks parks pipelined chunk announcements that arrived
	// before their envelope matched.
	orphanChunks []*message

	// Reliability-layer state (reliable.go); all nil/false without a
	// fault plan.
	fsite     *fault.Site    // this rank's recovery-event site
	seen      map[int64]bool // receiver-side duplicate suppression
	pending   []*pendingMsg  // sender-side unacked messages
	needDrain bool           // envelope FIFO advanced from scheduler context

	stagingSeq int
}

// assignSeq stamps a send request with its per-destination sequence.
func (r *Rank) assignSeq(q *Request) {
	if r.sendSeq == nil {
		r.sendSeq = make(map[int]int64)
	}
	q.seq = r.sendSeq[q.peer]
	r.sendSeq[q.peer]++
}

// emitInOrder queues q's envelope emission and drains every emission that
// is now in sequence for q's destination. The closure runs on the calling
// proc (this rank's own thread), so its costs are charged correctly.
func (r *Rank) emitInOrder(p *sim.Proc, q *Request, emit func(p *sim.Proc)) {
	dest := q.peer
	if r.emitWait == nil {
		r.emitWait = make(map[int]map[int64]func(*sim.Proc))
	}
	if r.emitNext == nil {
		r.emitNext = make(map[int]int64)
	}
	if r.emitWait[dest] == nil {
		r.emitWait[dest] = make(map[int64]func(*sim.Proc))
	}
	q.emitted = true
	r.emitWait[dest][q.seq] = emit
	r.drainEmits(p, dest)
}

// drainEmits runs every emission that is now in sequence for dest.
func (r *Rank) drainEmits(p *sim.Proc, dest int) {
	for {
		fn, ok := r.emitWait[dest][r.emitNext[dest]]
		if !ok {
			return
		}
		delete(r.emitWait[dest], r.emitNext[dest])
		r.emitNext[dest]++
		fn(p)
	}
}

// ID returns the rank number; Node its node; World the owning world.
func (r *Rank) ID() int       { return r.id }
func (r *Rank) Node() int     { return r.node }
func (r *Rank) World() *World { return r.world }

// Timeline returns the rank's recorder (nil when tracing is disabled). A nil
// recorder is valid and fully disabled, so callers may use it unguarded for
// emission — but must guard any event-name/arg construction behind Enabled.
func (r *Rank) Timeline() *timeline.Recorder { return r.tl }

// Charge accrues d nanoseconds of category cat to the rank's Breakdown and,
// when tracing is on, mirrors it as a cost-carrying timeline span starting at
// start. All Breakdown charges in the runtime and the schemes route through
// here (or through the fusion scheduler's equivalent), which is what makes
// timeline per-category sums reconcile exactly with TraceOf.
func (r *Rank) Charge(cat trace.Category, name string, start, d int64) {
	r.Trace.Add(cat, d)
	if r.tl != nil {
		r.tl.Span(timeline.LayerMPI, cat, "", name, start, d)
	}
}

// SchemeName reports the active DDT scheme.
func (r *Rank) SchemeName() string { return r.scheme.Name() }

// Scheme exposes the rank's DDT scheme (tests, ablations).
func (r *Rank) Scheme() Scheme { return r.scheme }

// Cache exposes the rank's layout cache (stats, tests).
func (r *Rank) Cache() *layoutcache.Cache { return r.cache }

// reqState is the request state machine position.
type reqState int

const (
	stPacking     reqState = iota // send: waiting for pack handle
	stReadyToSend                 // send: packed, transfer not started
	stRTSSent                     // send rendezvous: waiting CTS (RPUT) or FIN (RGET)
	stWriting                     // send RPUT: RDMA write in flight
	stWaitFin                     // send: data gone, waiting FIN
	stWaitMatch                   // recv: waiting for a matching message
	stWaitData                    // recv: matched, waiting for payload
	stUnpacking                   // recv: waiting for unpack handle
	stIPC                         // recv: DirectIPC in flight
	stDone
	stFailed // terminal failure (reliability layer); Request.err is set
)

var reqStateNames = [...]string{
	"packing", "ready-to-send", "rts-sent", "writing", "wait-fin",
	"wait-match", "wait-data", "unpacking", "ipc", "done", "failed",
}

func (s reqState) String() string {
	if int(s) < len(reqStateNames) {
		return reqStateNames[s]
	}
	return "state?"
}

// msgKind tags control/data messages.
type msgKind int

const (
	mkEager msgKind = iota
	mkRTS
	mkRTSChunk
	mkCTS
	mkFIN
	mkAck    // reliability layer: firmware-level acknowledgment
	mkErr    // reliability layer: best-effort peer-abort notification
	mkRevoke // failure tolerance: in-band communicator revocation (gossip)
)

var msgKindNames = [...]string{"eager", "rts", "rts-chunk", "cts", "fin", "ack", "err", "revoke"}

func (m msgKind) String() string {
	if int(m) < len(msgKindNames) {
		return msgKindNames[m]
	}
	return "msg?"
}

// message is an in-flight or queued wire message.
type message struct {
	kind     msgKind
	from, to int
	tag      int
	bytes    int64 // payload size (data description for RTS)
	// sender is the originating send request (control messages carry a
	// pointer — the simulation-level stand-in for rkeys/addresses).
	sender *Request
	// receiver is set on CTS/FIN destined for a specific request.
	receiver *Request
	// payload holds eager data bytes (already packed). In lazy-bytes mode
	// lazy carries the same logical bytes as a span snapshot instead and
	// payload stays nil.
	payload []byte
	lazy    *payload.Content
	// ipc marks an RTS offering a same-node zero-copy transfer.
	ipc bool
	// chunks > 0 marks a pipelined-rendezvous envelope; chunkOff and
	// chunkBytes describe one chunk on mkRTSChunk messages.
	chunks     int
	chunkOff   int64
	chunkBytes int64
	// id is the reliability-layer message id (nonzero only for tracked
	// messages; acks echo the id they acknowledge). sum is the payload
	// checksum the receiver verifies.
	id  int64
	sum uint64
	// comm identifies the revoked communicator on mkRevoke messages.
	comm *Comm
}

// Request is a non-blocking operation handle (MPI_Request).
type Request struct {
	rank   *Rank
	isSend bool
	peer   int
	tag    int
	state  reqState

	buf    *gpu.Buffer
	entry  *layoutcache.Entry
	bytes  int64
	contig bool

	seq           int64       // send: per-destination envelope sequence
	packed        *gpu.Buffer // staging (send: packed output; recv: packed input)
	chunks        []sendChunk // send: pipelined-rendezvous chunk states
	remoteRecv    *Request    // send: matched receive (set by the receiver)
	pendingChunks []*message  // recv: announced, not yet pulled chunks
	pulledChunks  int         // recv: chunks whose RDMA read was issued
	recvdBytes    int64       // recv: pipelined bytes landed so far
	handle        Handle      // pack or unpack handle
	matched       *message    // recv: matched message
	dataHere      bool        // recv: payload landed in staging
	finHere       bool        // send: FIN arrived (or local RDMA write done)
	ctsHere       bool        // send RPUT: CTS arrived
	ctsFrom       *Request    // send RPUT: the receive that issued the CTS
	rtsSent       bool        // send rendezvous: RTS already posted
	rdmaStarted   bool        // recv: RDMA/CTS/IPC already initiated
	ipcDone       bool
	finSent       bool // recv: rendezvous FIN already posted (one-shot)

	// Reliability-layer state (reliable.go); inert without a fault plan.
	err           error     // terminal *OpError once state == stFailed
	unacked       int       // emitted reliable messages not yet acked
	wantDone      bool      // protocol done, waiting for last acks
	emitted       bool      // send: envelope FIFO slot consumed
	errSent       bool      // peer-abort notification already sent
	reads         []*readOp // recv RGET: checksummed read spans
	writeDeadline int64     // send RPUT: rewrite deadline
	writeAttempts int       // send RPUT: write issues so far

	// comm binds the request to a communicator (ulfm.go): a revocation
	// fails every bound request in place. Nil for plain point-to-point.
	comm *Comm

	doneEv *sim.Event
	// DoneAt is the completion/failure time (valid once settled).
	DoneAt int64
}

// Done reports successful completion without charging any cost.
func (q *Request) Done() bool { return q.state == stDone }

// Failed reports terminal failure; Err carries the typed cause.
func (q *Request) Failed() bool { return q.state == stFailed }

// Err returns the request's terminal error: nil while in flight or on
// success, a *OpError after the reliability layer gave up.
func (q *Request) Err() error { return q.err }

// settled reports that q reached a terminal state (done or failed).
func (q *Request) settled() bool { return q.state == stDone || q.state == stFailed }

// --- posting operations ---

// lookupLayout charges the layout-cache cost and returns the entry.
func (r *Rank) lookupLayout(p *sim.Proc, l *datatype.Layout, count int) *layoutcache.Entry {
	e, hit := r.cache.Get(l, count)
	if r.world.Cfg.DisableLayoutCache {
		hit = false // always pay the full flattening cost
	}
	c := r.world.Cfg.CacheCost.Lookup(hit, e.Segments)
	t0 := p.Now()
	p.Sleep(c)
	r.Charge(trace.Other, "layout-lookup", t0, c)
	return e
}

// LayoutEntry returns the cached flattened layout + compiled plan for
// (l, count) WITHOUT charging virtual time. Collective engines use it to
// reach the compiled pack plans; point-to-point posting keeps charging
// through lookupLayout. The uncharged lookups go to a separate per-rank
// cache so the charged cache's hit pattern (and therefore every
// virtual-time trace) is unchanged from the pre-plan runtime.
func (r *Rank) LayoutEntry(l *datatype.Layout, count int) *layoutcache.Entry {
	e, _ := r.plancache.Get(l, count)
	return e
}

// CacheStats aggregates this rank's charged and plan-cache counters.
func (r *Rank) CacheStats() layoutcache.Stats {
	s := r.cache.Stats()
	s.Add(r.plancache.Stats())
	return s
}

// TagError is the typed configuration error returned (through
// Request.Err and Wait/Waitall) when a user point-to-point operation uses
// a tag inside the reserved collective range [CollTagBase, ∞). It unwraps
// to ErrTagReserved for errors.Is checks.
type TagError struct {
	Rank   int
	Tag    int
	IsSend bool
}

func (e *TagError) Error() string {
	dir := "Irecv"
	if e.IsSend {
		dir = "Isend"
	}
	return fmt.Sprintf("mpi: rank %d: %s tag %d is inside the reserved collective range [%d, ∞)",
		e.Rank, dir, e.Tag, CollTagBase)
}

// Unwrap lets errors.Is(err, ErrTagReserved) match a *TagError.
func (e *TagError) Unwrap() error { return ErrTagReserved }

// ErrTagReserved is the sentinel wrapped by every *TagError.
var ErrTagReserved = errors.New("mpi: tag in reserved collective range")

// failedTagRequest builds an already-failed request for a guarded tag: it
// never enters the active list (so it cannot leak), settles immediately,
// and surfaces a *TagError from Wait/Waitall.
func (r *Rank) failedTagRequest(isSend bool, peer, tag int) *Request {
	q := &Request{
		rank: r, isSend: isSend, peer: peer, tag: tag,
		state:  stFailed,
		err:    &TagError{Rank: r.id, Tag: tag, IsSend: isSend},
		doneEv: r.world.Env.NewEvent("tag-guard"),
		DoneAt: r.world.Env.Now(),
	}
	q.doneEv.Fire()
	return q
}

// Isend posts a non-blocking send of count elements of layout l from buf.
// Tags at or above CollTagBase are reserved for collective traffic: such a
// send fails immediately with a *TagError instead of silently colliding
// with collective envelopes.
func (r *Rank) Isend(p *sim.Proc, dest, tag int, buf *gpu.Buffer, l *datatype.Layout, count int) *Request {
	if tag >= CollTagBase {
		return r.failedTagRequest(true, dest, tag)
	}
	return r.IsendRaw(p, dest, tag, buf, l, count)
}

// IsendRaw is Isend without the reserved-tag guard. It exists for the
// collective engine (internal/coll), which owns the reserved range; user
// code should always go through Isend.
func (r *Rank) IsendRaw(p *sim.Proc, dest, tag int, buf *gpu.Buffer, l *datatype.Layout, count int) *Request {
	if fq := r.postGuard(true, dest, tag); fq != nil {
		return fq // peer declared dead: fail fast (ULFM semantics)
	}
	e := r.lookupLayout(p, l, count)
	q := &Request{
		rank: r, isSend: true, peer: dest, tag: tag,
		buf: buf, entry: e, bytes: e.Bytes,
		contig: e.Segments == 1,
		doneEv: r.world.Env.NewEvent(fmt.Sprintf("send-%d->%d-tag%d", r.id, dest, tag)),
	}
	r.active = append(r.active, q)
	r.assignSeq(q)
	if r.tl != nil {
		r.tl.Instant(timeline.LayerMPI, "", "isend", p.Now(),
			timeline.Arg{Key: "dst", Val: strconv.Itoa(dest)},
			timeline.Arg{Key: "tag", Val: strconv.Itoa(tag)},
			timeline.Arg{Key: "bytes", Val: strconv.FormatInt(e.Bytes, 10)})
	}

	destRank := r.world.ranks[dest]
	if !r.world.Cfg.DisableIPC && destRank.node == r.node && dest != r.id {
		// Same-node: offer DirectIPC. No packing; the receiver drives
		// a zero-copy gather/scatter kernel and FINs us.
		q.state = stWaitFin
		r.emitInOrder(p, q, func(p *sim.Proc) {
			r.postCtrl(p, q, &message{kind: mkRTS, from: r.id, to: dest, tag: tag, bytes: e.Bytes, sender: q, ipc: true})
		})
		return q
	}

	if q.contig {
		// Contiguous payloads skip packing entirely.
		q.state = stReadyToSend
		r.startTransfer(p, q)
		return q
	}

	if r.wantsPipeline(q) {
		r.startPipelinedSend(p, q, buf)
		return q
	}

	q.packed = r.stagingBuf(e.Bytes)
	job := pack.NewJob(pack.OpPack, buf, q.packed, e.Blocks)
	job.Plan = e.Plan
	q.handle = r.scheme.Pack(p, job)
	q.state = stPacking
	if r.world.Cfg.Rendezvous == RPUT && q.bytes > r.world.Cfg.EagerLimitBytes {
		// RPUT sends RTS before packing finishes: the handshake
		// overlaps the pack kernel (Section IV-B1).
		q.rtsSent = true
		r.emitInOrder(p, q, func(p *sim.Proc) {
			r.postCtrl(p, q, &message{kind: mkRTS, from: r.id, to: dest, tag: tag, bytes: e.Bytes, sender: q})
		})
	}
	return q
}

// Irecv posts a non-blocking receive into buf. Tags at or above
// CollTagBase are reserved for collective traffic and fail immediately
// with a *TagError (AnyTag is always allowed).
func (r *Rank) Irecv(p *sim.Proc, src, tag int, buf *gpu.Buffer, l *datatype.Layout, count int) *Request {
	if tag >= CollTagBase {
		return r.failedTagRequest(false, src, tag)
	}
	return r.IrecvRaw(p, src, tag, buf, l, count)
}

// IrecvRaw is Irecv without the reserved-tag guard, for the collective
// engine (internal/coll); user code should always go through Irecv.
func (r *Rank) IrecvRaw(p *sim.Proc, src, tag int, buf *gpu.Buffer, l *datatype.Layout, count int) *Request {
	if fq := r.postGuard(false, src, tag); fq != nil {
		return fq // peer declared dead: fail fast (ULFM semantics)
	}
	e := r.lookupLayout(p, l, count)
	q := &Request{
		rank: r, isSend: false, peer: src, tag: tag,
		buf: buf, entry: e, bytes: e.Bytes,
		contig: e.Segments == 1,
		state:  stWaitMatch,
		doneEv: r.world.Env.NewEvent(fmt.Sprintf("recv-%d<-%d-tag%d", r.id, src, tag)),
	}
	r.active = append(r.active, q)
	if r.tl != nil {
		r.tl.Instant(timeline.LayerMPI, "", "irecv", p.Now(),
			timeline.Arg{Key: "src", Val: strconv.Itoa(src)},
			timeline.Arg{Key: "tag", Val: strconv.Itoa(tag)},
			timeline.Arg{Key: "bytes", Val: strconv.FormatInt(e.Bytes, 10)})
	}
	// Check the unexpected queue first (arrival order preserved).
	for i, m := range r.unexpected {
		if q.matches(m) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			r.deliver(q, m)
			return q
		}
	}
	r.posted = append(r.posted, q)
	return q
}

func (q *Request) matches(m *message) bool {
	if q.peer != AnySource && q.peer != m.from {
		return false
	}
	if q.tag != AnyTag && q.tag != m.tag {
		return false
	}
	return m.kind == mkEager || m.kind == mkRTS || m.kind == mkErr
}

// stagingBuf allocates a packed staging buffer on the rank's device.
func (r *Rank) stagingBuf(n int64) *gpu.Buffer {
	r.stagingSeq++
	return r.Dev.Alloc(fmt.Sprintf("staging-%d-%d", r.id, r.stagingSeq), int(n))
}

// postCtrl sends a small control message on behalf of owner, charging NIC
// post cost. Under the reliability layer it is tracked, checksummed, and
// retransmitted until acked.
func (r *Rank) postCtrl(p *sim.Proc, owner *Request, m *message) {
	net := r.world.Cluster.Net
	if r.reliable() {
		r.sendReliable(p, owner, m, net.Spec.CtrlBytes)
		return
	}
	net.Post(p)
	fromNode, toNode := r.node, r.world.ranks[m.to].node
	t0 := p.Now()
	arrive := net.Send(fromNode, toNode, net.Spec.CtrlBytes, func() {
		r.world.ranks[m.to].arrive(m)
	})
	if r.tl != nil {
		r.tl.Span(timeline.LayerMPI, timeline.CostNone, "net", "ctrl:"+m.kind.String(), t0, arrive-t0,
			timeline.Arg{Key: "peer", Val: strconv.Itoa(m.to)},
			timeline.Arg{Key: "tag", Val: strconv.Itoa(m.tag)})
	}
}

// arrive runs in scheduler context when a message lands at this rank.
func (r *Rank) arrive(m *message) { r.arriveD(m, fabric.Delivery{}) }

// arriveD is arrive with the fabric's delivery verdict. The reliability
// prologue discards corrupted frames (the checksum rejects them), re-acks
// duplicates, and acks + dedups tracked messages before they take effect.
func (r *Rank) arriveD(m *message, d fabric.Delivery) {
	if r.world.isCrashed(r.id) {
		// A dead rank is silent: no acks, no matching, no progress. The
		// sender's retransmissions go unanswered until the failure
		// detector converts the silence into typed errors.
		return
	}
	if r.reliable() {
		if m.kind == mkAck {
			r.handleAck(m)
			return
		}
		if m.id != 0 {
			if d.Corrupt {
				// Damaged frame: header/payload CRC rejects it; the
				// sender's retransmission recovers.
				if msgCorruptionUndetected(m) {
					panic("mpi: corruption not detected by checksum")
				}
				return
			}
			if r.seen[m.id] {
				r.sendAck(m) // retransmission or duplicate: re-ack only
				return
			}
			r.seen[m.id] = true
			r.sendAck(m)
		} else if d.Corrupt || (d.Dup && (m.kind == mkErr || m.kind == mkRevoke)) {
			return // untracked frame damaged or duplicated: drop
		}
	}
	switch m.kind {
	case mkRevoke:
		m.comm.revokeArrived(r)
	case mkCTS:
		m.receiver.ctsHere = true
	case mkFIN:
		m.receiver.finHere = true
	case mkRTSChunk:
		r.acceptChunk(m)
	case mkErr:
		if m.receiver != nil {
			r.fail(nil, m.receiver, "peer-abort", 0, ErrPeerAborted)
			return
		}
		// Unmatched abort: fail a matching posted receive, or park it
		// like an envelope for a future Irecv.
		for i, q := range r.posted {
			if q.matches(m) {
				r.posted = append(r.posted[:i], r.posted[i+1:]...)
				r.fail(nil, q, "peer-abort", 0, ErrPeerAborted)
				return
			}
		}
		r.unexpected = append(r.unexpected, m)
	default: // eager data or RTS: needs matching
		for i, q := range r.posted {
			if q.matches(m) {
				r.posted = append(r.posted[:i], r.posted[i+1:]...)
				r.deliver(q, m)
				return
			}
		}
		r.unexpected = append(r.unexpected, m)
	}
}

// deliver attaches message m to matched receive q (scheduler or proc
// context; must not block).
func (r *Rank) deliver(q *Request, m *message) {
	if m.kind == mkErr {
		// The matching send on the peer already failed.
		r.fail(nil, q, "peer-abort", 0, ErrPeerAborted)
		return
	}
	if m.bytes > q.bytes {
		// MPI_ERR_TRUNCATE: the matched message is larger than the
		// posted receive. Under the reliability layer this is a typed
		// request error; without it, a programming-error panic.
		if r.reliable() {
			q.matched = m // lets the abort notification target the sender
			r.fail(nil, q, "match", 0, ErrTruncate)
			return
		}
		panic(fmt.Sprintf("mpi: message truncation: rank %d recv (src=%d tag=%d) posted %d bytes, message carries %d",
			r.id, q.peer, q.tag, q.bytes, m.bytes))
	}
	q.matched = m
	switch m.kind {
	case mkEager:
		// Payload came with the envelope.
		if q.contig {
			b := q.entry.Blocks[0]
			writeWire(q.buf, b.Offset, m)
			q.dataHere = true
			q.state = stWaitData // progress completes it
			return
		}
		q.packed = r.stagingBuf(q.bytes)
		writeWire(q.packed, 0, m)
		q.dataHere = true
		q.state = stWaitData
	case mkRTS:
		q.state = stWaitData
		if m.chunks > 0 {
			// Pipelined envelope: remember the cross link and adopt
			// chunks that raced ahead of the match.
			m.sender.remoteRecv = q
			q.packed = r.stagingBuf(q.bytes)
			r.adoptOrphanChunks(q)
		}
		// progress() drives RDMA read / CTS / IPC — those charge the
		// receiving proc, so they cannot run here.
	}
}

// --- transfer initiation (sender side) ---

// srcBuf returns the buffer and base offset holding a send's wire bytes,
// independent of payload mode. The reliability layer checksums the range
// through Buffer.ChecksumRange (real FNV in exact mode, the composable
// span algebra in lazy mode) and lands it with gpu.CopyRange, so every
// reliable path works identically on byte-exact and lazy payloads.
func (q *Request) srcBuf() (*gpu.Buffer, int64) {
	if q.contig {
		return q.buf, q.entry.Blocks[0].Offset
	}
	return q.packed, 0
}

// snapshotWire captures a send's q.bytes wire bytes into an eager message:
// a cloned []byte in exact mode, a span snapshot in lazy mode.
func snapshotWire(m *message, q *Request) {
	sb, so := q.srcBuf()
	if sb.IsLazy() {
		m.lazy = sb.Lazy.Slice(so, q.bytes)
		return
	}
	m.payload = append([]byte(nil), sb.Data[so:so+q.bytes]...)
}

// writeWire lands an eager message's bytes at dst[off:], whatever mode
// either side is in.
func writeWire(dst *gpu.Buffer, off int64, m *message) {
	if m.lazy != nil {
		if dst.IsLazy() {
			dst.Lazy.CopyFrom(off, m.lazy, 0, m.lazy.Len())
			return
		}
		m.lazy.ReadAt(dst.Data[off:off+m.lazy.Len()], 0)
		return
	}
	if dst.IsLazy() {
		dst.Lazy.WriteBytes(off, m.payload)
		return
	}
	copy(dst.Data[off:off+int64(len(m.payload))], m.payload)
}

// startTransfer moves a packed/contiguous payload toward the peer. The
// matchable envelope is emitted through the per-destination FIFO so sends
// cannot overtake each other.
func (r *Rank) startTransfer(p *sim.Proc, q *Request) {
	net := r.world.Cluster.Net
	toNode := r.world.ranks[q.peer].node
	if q.bytes <= r.world.Cfg.EagerLimitBytes {
		// Eager: payload rides along; sender completes once the message
		// is handed to the NIC (reliable mode: once it is acked).
		r.emitInOrder(p, q, func(p *sim.Proc) {
			m := &message{kind: mkEager, from: r.id, to: q.peer, tag: q.tag, bytes: q.bytes}
			snapshotWire(m, q)
			if r.reliable() {
				q.state = stWaitFin // resolved by the ack, not a FIN
				r.sendReliable(p, q, m, q.bytes+64)
				r.maybeComplete(q)
				return
			}
			net.Post(p)
			t0 := p.Now()
			arrive := net.Send(r.node, toNode, q.bytes+64, func() {
				r.world.ranks[q.peer].arrive(m)
			})
			if r.tl != nil {
				r.tl.Span(timeline.LayerMPI, timeline.CostNone, "net", "eager", t0, arrive-t0,
					timeline.Arg{Key: "peer", Val: strconv.Itoa(q.peer)},
					timeline.Arg{Key: "bytes", Val: strconv.FormatInt(q.bytes, 10)})
			}
			r.complete(q)
		})
		return
	}
	switch r.world.Cfg.Rendezvous {
	case RGET:
		q.state = stRTSSent
		q.rtsSent = true
		r.emitInOrder(p, q, func(p *sim.Proc) {
			r.postCtrl(p, q, &message{kind: mkRTS, from: r.id, to: q.peer, tag: q.tag, bytes: q.bytes, sender: q})
		})
	case RPUT:
		q.state = stRTSSent
		if !q.rtsSent { // contiguous sends reach here without an RTS
			q.rtsSent = true
			r.emitInOrder(p, q, func(p *sim.Proc) {
				r.postCtrl(p, q, &message{kind: mkRTS, from: r.id, to: q.peer, tag: q.tag, bytes: q.bytes, sender: q})
			})
		}
	}
}

// complete finishes a request successfully.
func (r *Rank) complete(q *Request) {
	q.state = stDone
	q.DoneAt = r.world.Env.Now()
	q.doneEv.Fire()
	for i, a := range r.active {
		if a == q {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	r.world.Env.Beat()
}

// --- progress engine ---

// progress advances every active request one step; called from Wait/Test.
func (r *Rank) progress(p *sim.Proc) {
	// A progressing rank is a live rank: refresh its heartbeat (the
	// failure detector piggybacks on the progress engine).
	r.world.heartbeat(r)
	if r.needDrain {
		// A failure from scheduler context advanced the envelope FIFO;
		// drain now that a proc is available (sorted for determinism).
		r.needDrain = false
		dests := make([]int, 0, len(r.emitWait))
		for d := range r.emitWait {
			dests = append(dests, d)
		}
		sort.Ints(dests)
		for _, d := range dests {
			r.drainEmits(p, d)
		}
	}
	if r.reliable() {
		r.retransmitScan(p)
	}
	// Iterate over a snapshot: completions mutate r.active.
	snapshot := append([]*Request(nil), r.active...)
	for _, q := range snapshot {
		if q.settled() {
			continue
		}
		if q.isSend {
			r.progressSend(p, q)
		} else {
			r.progressRecv(p, q)
		}
	}
}

func (r *Rank) progressSend(p *sim.Proc, q *Request) {
	switch q.state {
	case stPacking:
		if q.chunks != nil {
			r.progressPipelinedSend(p, q)
			return
		}
		if err := q.handle.Err(); err != nil {
			r.fail(p, q, "pack", 0, err)
			return
		}
		if !q.handle.Done(p) {
			return
		}
		q.state = stReadyToSend
		r.startTransfer(p, q)
	case stRTSSent:
		if q.handle != nil {
			if err := q.handle.Err(); err != nil {
				r.fail(p, q, "pack", 0, err)
				return
			}
		}
		if r.world.Cfg.Rendezvous == RPUT {
			if q.ctsHere && (q.contig || q.handle == nil || q.handle.Done(p)) {
				q.state = stWriting
				if r.reliable() {
					r.issueWrite(p, q, q.matchedRecv(), false)
					return
				}
				net := r.world.Cluster.Net
				net.Post(p)
				peer := r.world.ranks[q.peer]
				recvReq := q.matchedRecv()
				t0 := p.Now()
				net.RDMAWrite(r.node, peer.node, q.bytes, func() {
					if recvReq != nil {
						sb, so := q.srcBuf()
						gpu.CopyRange(recvReq.packed, 0, sb, so, q.bytes)
						recvReq.dataHere = true
					}
					q.finHere = true // local write completion
					if r.tl != nil {
						r.tl.Span(timeline.LayerMPI, timeline.CostNone, "net", "rdma-write", t0, r.world.Env.Now()-t0,
							timeline.Arg{Key: "peer", Val: strconv.Itoa(q.peer)},
							timeline.Arg{Key: "bytes", Val: strconv.FormatInt(q.bytes, 10)})
					}
				})
			}
			return
		}
		// RGET: wait for FIN after the receiver's read.
		if q.finHere {
			r.maybeComplete(q)
		}
	case stWriting, stWaitFin:
		if q.finHere {
			r.maybeComplete(q)
			return
		}
		if q.state == stWriting && r.reliable() {
			r.scanWrite(p, q)
		}
	}
}

// matchedRecv finds the peer receive this send's RPUT CTS came from.
func (q *Request) matchedRecv() *Request {
	return q.ctsFrom
}

func (r *Rank) progressRecv(p *sim.Proc, q *Request) {
	switch q.state {
	case stWaitData:
		m := q.matched
		if m != nil && m.kind == mkRTS && m.chunks > 0 {
			if !r.progressPipelinedRecv(p, q) {
				if r.reliable() && !q.settled() {
					r.scanReads(p, q)
				}
				return
			}
			// fall through to the completion handling below
		} else if m != nil && m.kind == mkRTS && !q.rdmaStarted {
			q.rdmaStarted = true
			if m.ipc {
				r.startIPC(p, q, m)
				return
			}
			if r.world.Cfg.Rendezvous == RPUT {
				// Tell the sender where to put the data.
				q.packed = r.stagingBuf(q.bytes)
				m.sender.ctsFrom = q
				r.postCtrl(p, q, &message{kind: mkCTS, from: r.id, to: m.from, tag: q.tag, receiver: m.sender})
				return
			}
			// RGET: pull the packed payload from the sender.
			q.packed = r.stagingBuf(q.bytes)
			if r.reliable() {
				op := &readOp{off: 0, bytes: q.bytes}
				q.reads = append(q.reads, op)
				r.issueRead(p, q, op, false)
				return
			}
			net := r.world.Cluster.Net
			net.Post(p)
			sender := m.sender
			t0 := p.Now()
			net.RDMARead(r.node, r.world.ranks[m.from].node, q.bytes, func() {
				sb, so := sender.srcBuf()
				gpu.CopyRange(q.packed, 0, sb, so, q.bytes)
				q.dataHere = true
				if r.tl != nil {
					r.tl.Span(timeline.LayerMPI, timeline.CostNone, "net", "rdma-read", t0, r.world.Env.Now()-t0,
						timeline.Arg{Key: "peer", Val: strconv.Itoa(m.from)},
						timeline.Arg{Key: "bytes", Val: strconv.FormatInt(q.bytes, 10)})
				}
			})
			return
		}
		if !q.dataHere {
			if r.reliable() && len(q.reads) > 0 {
				r.scanReads(p, q)
			}
			return
		}
		// Payload landed. Under RGET the sender still waits for a
		// FIN; under RPUT its local write completion already fired.
		// finSent guards the reliable path, where an unacked FIN keeps
		// the request un-settled and this state re-entered each poll.
		if m != nil && m.kind == mkRTS && r.world.Cfg.Rendezvous == RGET && !q.finSent {
			q.finSent = true
			r.postCtrl(p, q, &message{kind: mkFIN, from: r.id, to: m.from, tag: q.tag, receiver: m.sender})
		}
		if q.contig {
			if m != nil && m.kind == mkRTS {
				b := q.entry.Blocks[0]
				gpu.CopyRange(q.buf, b.Offset, q.packed, 0, q.bytes)
			}
			r.maybeComplete(q)
			return
		}
		job := pack.NewJob(pack.OpUnpack, q.packed, q.buf, q.entry.Blocks)
		job.Plan = q.entry.Plan
		q.handle = r.scheme.Unpack(p, job)
		q.state = stUnpacking
	case stUnpacking:
		if err := q.handle.Err(); err != nil {
			r.fail(p, q, "unpack", 0, err)
			return
		}
		if q.handle.Done(p) {
			r.maybeComplete(q)
		}
	case stIPC:
		if err := q.handle.Err(); err != nil {
			r.fail(p, q, "ipc", 0, err)
			return
		}
		if q.handle.Done(p) {
			if !q.ipcDone {
				q.ipcDone = true
				m := q.matched
				r.postCtrl(p, q, &message{kind: mkFIN, from: r.id, to: m.from, tag: q.tag, receiver: m.sender})
			}
			r.maybeComplete(q)
		}
	}
}

// startIPC launches the zero-copy same-node path, falling back to the
// packed path if the scheme cannot fuse DirectIPC.
func (r *Rank) startIPC(p *sim.Proc, q *Request, m *message) {
	sender := m.sender
	job := pack.NewJob(pack.OpDirectIPC, sender.buf, q.buf, sender.entry.Blocks)
	job.TargetBlocks = q.entry.Blocks
	spec := r.world.Cluster.Spec
	job.PeerBWBytesPerNs = spec.GPUPeerBWBytesPerNs
	job.PeerLatencyNs = spec.GPUPeerLatencyNs
	if h, ok := r.scheme.DirectIPC(p, job); ok {
		q.handle = h
		q.state = stIPC
		return
	}
	// Fallback: receiver pulls via staging as if inter-node; the sender
	// has no packed buffer, so stream the gather on the receiver's GPU
	// as an IPC job with identical layouts through a staging hop. For
	// simplicity (and matching MVAPICH2's behaviour when IPC is off) we
	// unpack directly from the sender's buffer with a plain kernel.
	h, _ := alwaysIPCFallback{r}.run(p, job)
	q.handle = h
	q.state = stIPC
}

// alwaysIPCFallback runs DirectIPC as a plain (unfused) kernel when the
// scheme declines it.
type alwaysIPCFallback struct{ r *Rank }

func (f alwaysIPCFallback) run(p *sim.Proc, job *pack.Job) (Handle, bool) {
	st := f.r.Dev.NewStream("ipc-fallback")
	c := st.Launch(p, job.KernelSpec())
	over := f.r.Dev.Arch.LaunchOverheadNs
	f.r.Charge(trace.Launch, "ipc-fallback-launch", p.Now()-over, over)
	return completionHandle{c}, true
}

// completionHandle adapts a gpu.Completion to Handle with zero query cost
// (used only by the fallback path).
type completionHandle struct{ c *gpu.Completion }

func (h completionHandle) Done(p *sim.Proc) bool { return h.c.Done() }
func (h completionHandle) DoneEv() *sim.Event    { return h.c.Ev }
func (h completionHandle) Err() error            { return nil }

// --- waiting ---

// Progress drives the progress engine one step without flushing the
// scheme. The collective engine's batched wait uses it to advance protocol
// state (matching, RDMA, FINs, retransmissions) while a fusion window is
// holding pack/unpack launches back.
func (r *Rank) Progress(p *sim.Proc) { r.progress(p) }

// Processing reports that a receive's datatype processing (unpack or
// DirectIPC) has been handed to the scheme — the point at which a
// collective-scope fusion window has seen all of the receive's GPU work
// and may close. Settled requests report false; pair with Done/Failed.
func (q *Request) Processing() bool {
	return q.state == stUnpacking || q.state == stIPC
}

// Test advances progress once and reports whether q settled (completed or
// failed; check q.Err to distinguish).
func (r *Rank) Test(p *sim.Proc, q *Request) bool {
	r.progress(p)
	return q.settled()
}

// Wait blocks until q settles and returns its terminal error (nil on
// success).
func (r *Rank) Wait(p *sim.Proc, q *Request) error {
	return r.Waitall(p, []*Request{q})
}

// Waitall drives the progress engine until every request settles. It
// first flushes the scheme — the progress engine "has no more operations
// to request and reaches the synchronization point" (Section IV-C
// scenario 1) — then polls, attributing otherwise-idle waiting to Comm.
// The joined typed errors of failed requests are returned; nil means every
// request completed successfully. Deadlocks are the sim watchdog's job
// (Config.StallTimeoutNs), not Waitall's.
func (r *Rank) Waitall(p *sim.Proc, reqs []*Request) error {
	for {
		// Flush first: the progress engine has nothing further to
		// enqueue before this synchronization point, so any pending
		// fused work (including unpacks enqueued by the previous
		// poll iteration) must launch now.
		r.scheme.Flush(p)
		r.progress(p)
		done := 0
		for _, q := range reqs {
			if q.settled() {
				done++
			}
		}
		if done == len(reqs) {
			// Collect errors strictly in request index order — never in
			// settle order. In a mixed batch the caller sees the first
			// failed request's typed error first (e.g. request 0's
			// *OpError before request 1's ErrPeerAborted), regardless of
			// which one failed first on the virtual clock. This keeps
			// multi-error reports deterministic and is locked in by
			// TestWaitallErrorOrderDeterministic.
			var errs []error
			for _, q := range reqs {
				if q.err != nil {
					errs = append(errs, q.err)
				}
			}
			return errors.Join(errs...)
		}
		// Attribute the idle poll: if some request is still inside a
		// pack/unpack handle the CPU is effectively synchronizing with
		// the GPU; otherwise it is observing communication.
		cat := trace.Comm
		for _, q := range reqs {
			if !q.settled() && (q.state == stPacking || q.state == stUnpacking || q.state == stIPC) {
				cat = trace.Sync
				break
			}
		}
		r.Charge(cat, "poll", p.Now(), r.world.Cfg.PollIntervalNs)
		p.Sleep(r.world.Cfg.PollIntervalNs)
	}
}

// Barrier synchronizes all ranks (linear counter barrier; the experiments
// only use it between iterations, so its cost shape is irrelevant). Under
// failure tolerance it synchronizes the *live* ranks: per-rank arrival
// tracking (not a bare counter) guards against a rank that arrived and then
// died inflating the count, and the failure detector re-evaluates the
// barrier when it declares a death.
func (w *World) Barrier(p *sim.Proc) {
	if w.ftOn {
		w.ftBarrier(p)
		return
	}
	if w.barrierEv == nil {
		w.barrierEv = w.Env.NewEvent("barrier")
	}
	w.barrierCount++
	if w.barrierCount == len(w.ranks) {
		w.barrierCount = 0
		ev := w.barrierEv
		w.barrierEv = nil
		ev.Fire()
		return
	}
	ev := w.barrierEv
	p.Wait(ev)
}
