package mpi_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// newWorld builds a Lassen-shaped world with the named scheme.
func newWorld(scheme string, mut func(*mpi.Config)) *mpi.World {
	env := sim.NewEnv()
	c := cluster.MustBuild(env, cluster.Lassen())
	cfg := mpi.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	return mpi.NewWorld(c, cfg, schemes.Factory(scheme))
}

// exchange runs a single send from rank `src` to rank `dst` with the given
// layout/count and verifies the received bytes. It returns the receive
// completion time.
func exchange(t *testing.T, scheme string, src, dst int, l *datatype.Layout, count int, mut func(*mpi.Config)) int64 {
	t.Helper()
	w := newWorld(scheme, mut)
	sbuf := w.Rank(src).Dev.Alloc("send", int(l.ExtentBytes)*count)
	rbuf := w.Rank(dst).Dev.Alloc("recv", int(l.ExtentBytes)*count)
	rng := rand.New(rand.NewSource(42))
	rng.Read(sbuf.Data)
	var recvDone int64
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case src:
			q := r.Isend(p, dst, 7, sbuf, l, count)
			r.Wait(p, q)
		case dst:
			q := r.Irecv(p, src, 7, rbuf, l, count)
			r.Wait(p, q)
			recvDone = p.Now()
		}
	})
	if err != nil {
		t.Fatalf("%s: %v", scheme, err)
	}
	for _, b := range l.Repeat(count) {
		if !bytes.Equal(rbuf.Data[b.Offset:b.Offset+b.Len], sbuf.Data[b.Offset:b.Offset+b.Len]) {
			t.Fatalf("%s: block %+v corrupted", scheme, b)
		}
	}
	return recvDone
}

func sparseLayout() *datatype.Layout {
	lens := make([]int, 1500)
	displs := make([]int, 1500)
	for i := range lens {
		lens[i] = 1
		displs[i] = i * 3
	}
	return datatype.Commit(datatype.Indexed(lens, displs, datatype.Float32))
}

func denseLayout() *datatype.Layout {
	return datatype.Commit(datatype.Vector(64, 128, 256, datatype.Float64))
}

func TestEagerContiguousInterNode(t *testing.T) {
	l := datatype.Commit(datatype.Contiguous(512, datatype.Float64)) // 4 KiB, eager
	for _, s := range schemes.Names() {
		exchange(t, s, 0, 4, l, 1, nil)
	}
}

func TestRendezvousContiguousInterNode(t *testing.T) {
	l := datatype.Commit(datatype.Contiguous(1<<17, datatype.Float64)) // 1 MiB
	for _, mode := range []mpi.RendezvousMode{mpi.RGET, mpi.RPUT} {
		mode := mode
		exchange(t, "Proposed-Tuned", 0, 4, l, 1, func(c *mpi.Config) { c.Rendezvous = mode })
	}
}

func TestNoncontiguousAllSchemesSparse(t *testing.T) {
	l := sparseLayout()
	for _, s := range schemes.Names() {
		s := s
		t.Run(s, func(t *testing.T) {
			exchange(t, s, 0, 4, l, 1, nil)
		})
	}
}

func TestNoncontiguousAllSchemesDense(t *testing.T) {
	l := denseLayout()
	for _, s := range schemes.Names() {
		s := s
		t.Run(s, func(t *testing.T) {
			exchange(t, s, 0, 4, l, 1, nil)
		})
	}
}

func TestNoncontiguousRPUTAllSchemes(t *testing.T) {
	l := denseLayout()
	for _, s := range schemes.Names() {
		s := s
		t.Run(s, func(t *testing.T) {
			exchange(t, s, 0, 4, l, 1, func(c *mpi.Config) { c.Rendezvous = mpi.RPUT })
		})
	}
}

func TestIntraNodeDirectIPC(t *testing.T) {
	l := denseLayout()
	for _, s := range schemes.Names() {
		s := s
		t.Run(s, func(t *testing.T) {
			exchange(t, s, 0, 1, l, 1, nil) // ranks 0,1 share node 0
		})
	}
}

func TestIntraNodeWithIPCDisabled(t *testing.T) {
	l := denseLayout()
	exchange(t, "Proposed-Tuned", 0, 1, l, 1, func(c *mpi.Config) { c.DisableIPC = true })
}

func TestSendBeforeRecvPosted(t *testing.T) {
	// Unexpected-message path: receiver posts late.
	w := newWorld("Proposed-Tuned", nil)
	l := sparseLayout()
	sbuf := w.Rank(0).Dev.Alloc("send", int(l.ExtentBytes))
	rbuf := w.Rank(4).Dev.Alloc("recv", int(l.ExtentBytes))
	for i := range sbuf.Data {
		sbuf.Data[i] = byte(i % 251)
	}
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			q := r.Isend(p, 4, 3, sbuf, l, 1)
			r.Wait(p, q)
		case 4:
			p.Sleep(2 * sim.Millisecond) // let RTS arrive unexpected
			q := r.Irecv(p, 0, 3, rbuf, l, 1)
			r.Wait(p, q)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range l.Blocks {
		if !bytes.Equal(rbuf.Data[b.Offset:b.Offset+b.Len], sbuf.Data[b.Offset:b.Offset+b.Len]) {
			t.Fatalf("unexpected-path block %+v corrupted", b)
		}
	}
}

func TestTagMatchingSelectsRightMessage(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	l := datatype.Commit(datatype.Contiguous(256, datatype.Float64))
	sb1 := w.Rank(0).Dev.Alloc("s1", int(l.ExtentBytes))
	sb2 := w.Rank(0).Dev.Alloc("s2", int(l.ExtentBytes))
	rb1 := w.Rank(4).Dev.Alloc("r1", int(l.ExtentBytes))
	rb2 := w.Rank(4).Dev.Alloc("r2", int(l.ExtentBytes))
	for i := range sb1.Data {
		sb1.Data[i] = 0x11
		sb2.Data[i] = 0x22
	}
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			q1 := r.Isend(p, 4, 1, sb1, l, 1)
			q2 := r.Isend(p, 4, 2, sb2, l, 1)
			r.Waitall(p, []*mpi.Request{q1, q2})
		case 4:
			// Post in reverse tag order: matching must go by tag.
			q2 := r.Irecv(p, 0, 2, rb2, l, 1)
			q1 := r.Irecv(p, 0, 1, rb1, l, 1)
			r.Waitall(p, []*mpi.Request{q1, q2})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rb1.Data[0] != 0x11 || rb2.Data[0] != 0x22 {
		t.Fatalf("tag matching crossed wires: %x %x", rb1.Data[0], rb2.Data[0])
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	l := datatype.Commit(datatype.Contiguous(64, datatype.Byte))
	sbuf := w.Rank(5).Dev.Alloc("s", 64)
	rbuf := w.Rank(0).Dev.Alloc("r", 64)
	sbuf.Data[0] = 0x5A
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 5:
			r.Wait(p, r.Isend(p, 0, 99, sbuf, l, 1))
		case 0:
			r.Wait(p, r.Irecv(p, mpi.AnySource, mpi.AnyTag, rbuf, l, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rbuf.Data[0] != 0x5A {
		t.Fatal("wildcard recv got wrong data")
	}
}

func TestBidirectionalExchange(t *testing.T) {
	// Both directions at once (halo-exchange shape) for every scheme.
	l := sparseLayout()
	for _, s := range schemes.Names() {
		s := s
		t.Run(s, func(t *testing.T) {
			w := newWorld(s, nil)
			buf := func(rk int, name string) *gpu.Buffer {
				return w.Rank(rk).Dev.Alloc(name, int(l.ExtentBytes))
			}
			s0, r0 := buf(0, "s0"), buf(0, "r0")
			s4, r4 := buf(4, "s4"), buf(4, "r4")
			for i := range s0.Data {
				s0.Data[i] = byte(i)
				s4.Data[i] = byte(i * 7)
			}
			err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
				var sb, rb *gpu.Buffer
				var peer int
				switch r.ID() {
				case 0:
					sb, rb, peer = s0, r0, 4
				case 4:
					sb, rb, peer = s4, r4, 0
				default:
					return
				}
				rq := r.Irecv(p, peer, 0, rb, l, 1)
				sq := r.Isend(p, peer, 0, sb, l, 1)
				r.Waitall(p, []*mpi.Request{rq, sq})
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range l.Blocks {
				if !bytes.Equal(r0.Data[b.Offset:b.Offset+b.Len], s4.Data[b.Offset:b.Offset+b.Len]) {
					t.Fatal("rank0 recv corrupted")
				}
				if !bytes.Equal(r4.Data[b.Offset:b.Offset+b.Len], s0.Data[b.Offset:b.Offset+b.Len]) {
					t.Fatal("rank4 recv corrupted")
				}
			}
		})
	}
}

func TestBulkManyBuffersAllSchemes(t *testing.T) {
	// 8 concurrent non-blocking sends per direction — the paper's "bulk"
	// scenario — must complete and verify under every scheme.
	l := sparseLayout()
	const nbuf = 8
	for _, s := range schemes.Names() {
		s := s
		t.Run(s, func(t *testing.T) {
			w := newWorld(s, nil)
			var sbufs, rbufs [nbuf]*gpu.Buffer
			for i := 0; i < nbuf; i++ {
				sbufs[i] = w.Rank(0).Dev.Alloc(fmt.Sprintf("s%d", i), int(l.ExtentBytes))
				rbufs[i] = w.Rank(4).Dev.Alloc(fmt.Sprintf("r%d", i), int(l.ExtentBytes))
				rng := rand.New(rand.NewSource(int64(i)))
				rng.Read(sbufs[i].Data)
			}
			err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
				var reqs []*mpi.Request
				switch r.ID() {
				case 0:
					for i := 0; i < nbuf; i++ {
						reqs = append(reqs, r.Isend(p, 4, i, sbufs[i], l, 1))
					}
				case 4:
					for i := 0; i < nbuf; i++ {
						reqs = append(reqs, r.Irecv(p, 0, i, rbufs[i], l, 1))
					}
				default:
					return
				}
				r.Waitall(p, reqs)
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < nbuf; i++ {
				for _, b := range l.Blocks {
					if !bytes.Equal(rbufs[i].Data[b.Offset:b.Offset+b.Len], sbufs[i].Data[b.Offset:b.Offset+b.Len]) {
						t.Fatalf("buffer %d block %+v corrupted", i, b)
					}
				}
			}
		})
	}
}

func TestFusionBeatsSyncOnBulkSparse(t *testing.T) {
	// The headline: for bulk sparse transfers the proposed scheme's
	// receive completes far earlier than GPU-Sync's.
	l := sparseLayout()
	run := func(scheme string) int64 {
		w := newWorld(scheme, nil)
		const nbuf = 16
		var sbufs, rbufs [nbuf]*gpu.Buffer
		for i := 0; i < nbuf; i++ {
			sbufs[i] = w.Rank(0).Dev.Alloc(fmt.Sprintf("s%d", i), int(l.ExtentBytes))
			rbufs[i] = w.Rank(4).Dev.Alloc(fmt.Sprintf("r%d", i), int(l.ExtentBytes))
		}
		var done int64
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			var reqs []*mpi.Request
			switch r.ID() {
			case 0:
				for i := 0; i < nbuf; i++ {
					reqs = append(reqs, r.Isend(p, 4, i, sbufs[i], l, 1))
				}
				r.Waitall(p, reqs)
			case 4:
				for i := 0; i < nbuf; i++ {
					reqs = append(reqs, r.Irecv(p, 0, i, rbufs[i], l, 1))
				}
				r.Waitall(p, reqs)
				done = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	sync := run("GPU-Sync")
	fused := run("Proposed-Tuned")
	if fused*2 >= sync {
		t.Fatalf("fusion %dns vs sync %dns: want >=2x win", fused, sync)
	}
}

func TestLayoutCacheHitsOnRepeatedSends(t *testing.T) {
	w := newWorld("Proposed-Tuned", nil)
	l := denseLayout()
	sbuf := w.Rank(0).Dev.Alloc("s", int(l.ExtentBytes))
	rbuf := w.Rank(4).Dev.Alloc("r", int(l.ExtentBytes))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		for it := 0; it < 5; it++ {
			switch r.ID() {
			case 0:
				r.Wait(p, r.Isend(p, 4, it, sbuf, l, 1))
			case 4:
				r.Wait(p, r.Irecv(p, 0, it, rbuf, l, 1))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := w.Rank(0).Cache()
	if c.Misses != 1 || c.Hits != 4 {
		t.Fatalf("cache: %d hits %d misses, want 4/1", c.Hits, c.Misses)
	}
}

func TestBarrier(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	var maxBefore, minAfter int64 = -1, 1 << 62
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		p.Sleep(int64(r.ID()) * sim.Microsecond)
		if p.Now() > maxBefore {
			maxBefore = p.Now()
		}
		w.Barrier(p)
		if p.Now() < minAfter {
			minAfter = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if minAfter < maxBefore {
		t.Fatalf("rank left barrier at %d before last entered at %d", minAfter, maxBefore)
	}
}

func TestTraceAccumulates(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	l := sparseLayout()
	sbuf := w.Rank(0).Dev.Alloc("s", int(l.ExtentBytes))
	rbuf := w.Rank(4).Dev.Alloc("r", int(l.ExtentBytes))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Wait(p, r.Isend(p, 4, 0, sbuf, l, 1))
		case 4:
			r.Wait(p, r.Irecv(p, 0, 0, rbuf, l, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Rank(0).Trace.Total() == 0 || w.Rank(4).Trace.Total() == 0 {
		t.Fatal("trace breakdowns empty")
	}
}

// Property: for random vector layouts, counts, schemes, and protocols, the
// exchange always delivers exactly the layout-covered bytes.
func TestPropertyExchangeIntegrity(t *testing.T) {
	names := schemes.Names()
	f := func(seed int64, schemeIdx, count, blocklen, extra uint8, rput bool) bool {
		scheme := names[int(schemeIdx)%len(names)]
		cnt := int(count%4) + 1
		bl := int(blocklen%16) + 1
		l := datatype.Commit(datatype.Vector(20, bl, bl+int(extra%16), datatype.Float32))
		w := newWorld(scheme, func(c *mpi.Config) {
			if rput {
				c.Rendezvous = mpi.RPUT
			}
		})
		sbuf := w.Rank(0).Dev.Alloc("s", int(l.ExtentBytes)*cnt)
		rbuf := w.Rank(4).Dev.Alloc("r", int(l.ExtentBytes)*cnt)
		rand.New(rand.NewSource(seed)).Read(sbuf.Data)
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			switch r.ID() {
			case 0:
				r.Wait(p, r.Isend(p, 4, 0, sbuf, l, cnt))
			case 4:
				r.Wait(p, r.Irecv(p, 0, 0, rbuf, l, cnt))
			}
		})
		if err != nil {
			return false
		}
		for _, b := range l.Repeat(cnt) {
			if !bytes.Equal(rbuf.Data[b.Offset:b.Offset+b.Len], sbuf.Data[b.Offset:b.Offset+b.Len]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: propertyRuns(t, 40)}); err != nil {
		t.Fatal(err)
	}
}

// Property: MPI non-overtaking — N same-tag sends with randomly mixed
// layouts (contiguous, sparse, eager-sized, rendezvous-sized) must match
// the receiver's posted receives strictly in posting order, even though
// packing delays differ wildly between messages.
func TestPropertyNonOvertakingMixedSends(t *testing.T) {
	mkLayout := func(rng *rand.Rand) *datatype.Layout {
		switch rng.Intn(4) {
		case 0: // small contiguous (eager, no packing)
			return datatype.Commit(datatype.Contiguous(rng.Intn(200)+8, datatype.Float64))
		case 1: // large contiguous (rendezvous, no packing)
			return datatype.Commit(datatype.Contiguous(4096+rng.Intn(4096), datatype.Float64))
		case 2: // sparse small (eager after packing)
			return datatype.Commit(datatype.Vector(rng.Intn(100)+10, 1, 3, datatype.Float32))
		default: // sparse large (rendezvous after packing)
			return datatype.Commit(datatype.Vector(rng.Intn(500)+600, 8, 17, datatype.Float64))
		}
	}
	f := func(seed int64, schemeIdx uint8, rput bool) bool {
		names := schemes.Names()
		scheme := names[int(schemeIdx)%len(names)]
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		w := newWorld(scheme, func(c *mpi.Config) {
			if rput {
				c.Rendezvous = mpi.RPUT
			}
		})
		layouts := make([]*datatype.Layout, n)
		sbufs := make([]*gpu.Buffer, n)
		rbufs := make([]*gpu.Buffer, n)
		for i := 0; i < n; i++ {
			layouts[i] = mkLayout(rng)
			sbufs[i] = w.Rank(0).Dev.Alloc(fmt.Sprintf("s%d", i), int(layouts[i].ExtentBytes))
			rbufs[i] = w.Rank(4).Dev.Alloc(fmt.Sprintf("r%d", i), int(layouts[i].ExtentBytes))
			rand.New(rand.NewSource(seed + int64(i))).Read(sbufs[i].Data)
		}
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			var reqs []*mpi.Request
			switch r.ID() {
			case 0:
				for i := 0; i < n; i++ {
					reqs = append(reqs, r.Isend(p, 4, 7, sbufs[i], layouts[i], 1))
				}
			case 4:
				for i := 0; i < n; i++ {
					reqs = append(reqs, r.Irecv(p, 0, 7, rbufs[i], layouts[i], 1))
				}
			default:
				return
			}
			r.Waitall(p, reqs)
		})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for _, b := range layouts[i].Blocks {
				if !bytes.Equal(rbufs[i].Data[b.Offset:b.Offset+b.Len], sbufs[i].Data[b.Offset:b.Offset+b.Len]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: propertyRuns(t, 30)}); err != nil {
		t.Fatal(err)
	}
}

func TestDisableLayoutCacheChargesEveryMessage(t *testing.T) {
	run := func(disable bool) int64 {
		w := newWorld("Proposed-Tuned", func(c *mpi.Config) { c.DisableLayoutCache = disable })
		l := sparseLayout()
		sbuf := w.Rank(0).Dev.Alloc("s", int(l.ExtentBytes))
		rbuf := w.Rank(4).Dev.Alloc("r", int(l.ExtentBytes))
		var done int64
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			for it := 0; it < 4; it++ {
				switch r.ID() {
				case 0:
					r.Wait(p, r.Isend(p, 4, it, sbuf, l, 1))
				case 4:
					r.Wait(p, r.Irecv(p, 0, it, rbuf, l, 1))
					done = p.Now()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	cached, uncached := run(false), run(true)
	if cached >= uncached {
		t.Fatalf("cached (%d) should beat uncached (%d)", cached, uncached)
	}
}

func TestEagerLimitBoundary(t *testing.T) {
	// A payload exactly at the eager limit travels eagerly (sender
	// completes locally); one byte past it goes rendezvous.
	limit := mpi.DefaultConfig().EagerLimitBytes
	for _, extra := range []int64{0, 8} {
		l := datatype.Commit(datatype.Contiguous(int((limit+extra*8)/8), datatype.Byte))
		_ = l
	}
	lEager := datatype.Commit(datatype.Contiguous(int(limit), datatype.Byte))
	lRend := datatype.Commit(datatype.Contiguous(int(limit)+1, datatype.Byte))
	run := func(l *datatype.Layout) (senderDone, recvDone int64) {
		w := newWorld("GPU-Sync", nil)
		sbuf := w.Rank(0).Dev.Alloc("s", int(l.ExtentBytes))
		rbuf := w.Rank(4).Dev.Alloc("r", int(l.ExtentBytes))
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			switch r.ID() {
			case 0:
				r.Wait(p, r.Isend(p, 4, 0, sbuf, l, 1))
				senderDone = p.Now()
			case 4:
				p.Sleep(50 * sim.Microsecond) // recv posted late
				r.Wait(p, r.Irecv(p, 0, 0, rbuf, l, 1))
				recvDone = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return
	}
	es, _ := run(lEager)
	rs, _ := run(lRend)
	// Eager sender completes long before the late receiver posts;
	// rendezvous sender must wait for the handshake.
	if es >= 50*sim.Microsecond {
		t.Fatalf("eager sender blocked until recv posted: %d", es)
	}
	if rs < 50*sim.Microsecond {
		t.Fatalf("rendezvous sender completed without handshake: %d", rs)
	}
}

func TestMessageTruncationPanics(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	big := datatype.Commit(datatype.Contiguous(128, datatype.Byte))
	small := datatype.Commit(datatype.Contiguous(64, datatype.Byte))
	sbuf := w.Rank(0).Dev.Alloc("s", 128)
	rbuf := w.Rank(4).Dev.Alloc("r", 64)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected truncation panic")
		}
		if !strings.Contains(fmt.Sprint(r), "truncation") {
			t.Fatalf("panic %v not a truncation error", r)
		}
	}()
	_ = w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Send(p, 4, 0, sbuf, big, 1)
		case 4:
			r.Recv(p, 0, 0, rbuf, small, 1)
		}
	})
	t.Fatal("run returned despite truncation")
}

func TestPipelinedRendezvousCorrectness(t *testing.T) {
	// Large sparse message through the chunked path, for all schemes.
	lens := make([]int, 3000)
	displs := make([]int, 3000)
	for i := range lens {
		lens[i] = 64 // 256B blocks -> ~750KB message
		displs[i] = i * 70
	}
	l := datatype.Commit(datatype.Indexed(lens, displs, datatype.Float32))
	for _, s := range schemes.Names() {
		s := s
		t.Run(s, func(t *testing.T) {
			exchange(t, s, 0, 4, l, 1, func(c *mpi.Config) {
				c.PipelineChunkBytes = 128 << 10
			})
		})
	}
}

func TestPipelinedChunkCountsAndFusion(t *testing.T) {
	lens := make([]int, 2048)
	displs := make([]int, 2048)
	for i := range lens {
		lens[i] = 128 // 512B blocks -> 1MB message
		displs[i] = i * 130
	}
	l := datatype.Commit(datatype.Indexed(lens, displs, datatype.Float32))
	w := newWorld("Proposed-Tuned", func(c *mpi.Config) { c.PipelineChunkBytes = 256 << 10 })
	sbuf := w.Rank(0).Dev.Alloc("s", int(l.ExtentBytes))
	rbuf := w.Rank(4).Dev.Alloc("r", int(l.ExtentBytes))
	for i := range sbuf.Data {
		sbuf.Data[i] = byte(i % 255)
	}
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Wait(p, r.Isend(p, 4, 0, sbuf, l, 1))
		case 4:
			r.Wait(p, r.Irecv(p, 0, 0, rbuf, l, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range l.Blocks {
		if !bytes.Equal(rbuf.Data[b.Offset:b.Offset+b.Len], sbuf.Data[b.Offset:b.Offset+b.Len]) {
			t.Fatalf("block %+v corrupted", b)
		}
	}
	// ~1MB at 256KB chunks -> 4 chunk pack requests, fused on the sender.
	if got := w.Rank(0).Dev.Stats.FusedRequests; got < 3 {
		t.Fatalf("sender fused requests = %d, want chunked packs", got)
	}
}

func TestPipelinedOverheadBounded(t *testing.T) {
	// A single large sparse message. On V100-class GPUs packing is so
	// much faster than the EDR wire that chunk-pipelining the pack phase
	// cannot win — the paper fuses packs instead of pipelining them, and
	// this experiment shows why. The chunked path must still stay within
	// ~10% of the whole-message rendezvous (its per-chunk control
	// traffic is bounded).
	lens := make([]int, 20000)
	displs := make([]int, 20000)
	for i := range lens {
		lens[i] = 16 // 64B blocks -> 1.28MB, segment-bound packing
		displs[i] = i * 20
	}
	l := datatype.Commit(datatype.Indexed(lens, displs, datatype.Float32))
	plain := exchange(t, "Proposed-Tuned", 0, 4, l, 1, nil)
	piped := exchange(t, "Proposed-Tuned", 0, 4, l, 1, func(c *mpi.Config) {
		c.PipelineChunkBytes = 128 << 10
	})
	if float64(piped) > float64(plain)*1.10 {
		t.Fatalf("pipelined (%d) pays more than 10%% over whole-message rendezvous (%d)", piped, plain)
	}
}

func TestPipelineLateReceiverOrphanChunks(t *testing.T) {
	// Chunk announcements arrive before the receive is posted: they must
	// park and be adopted at match time.
	lens := make([]int, 2000)
	displs := make([]int, 2000)
	for i := range lens {
		lens[i] = 64
		displs[i] = i * 70
	}
	l := datatype.Commit(datatype.Indexed(lens, displs, datatype.Float32))
	w := newWorld("GPU-Sync", func(c *mpi.Config) { c.PipelineChunkBytes = 64 << 10 })
	sbuf := w.Rank(0).Dev.Alloc("s", int(l.ExtentBytes))
	rbuf := w.Rank(4).Dev.Alloc("r", int(l.ExtentBytes))
	for i := range sbuf.Data {
		sbuf.Data[i] = byte(i % 253)
	}
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Wait(p, r.Isend(p, 4, 0, sbuf, l, 1))
		case 4:
			p.Sleep(3 * sim.Millisecond) // all chunks announced before posting
			r.Wait(p, r.Irecv(p, 0, 0, rbuf, l, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range l.Blocks {
		if !bytes.Equal(rbuf.Data[b.Offset:b.Offset+b.Len], sbuf.Data[b.Offset:b.Offset+b.Len]) {
			t.Fatalf("block %+v corrupted", b)
		}
	}
}

// propertyRuns scales a property test's case count: the full matrix in CI,
// a fast sample under `go test -short`.
func propertyRuns(t *testing.T, full int) int {
	t.Helper()
	if testing.Short() {
		if full > 5 {
			return full / 5
		}
		return full
	}
	return full
}
