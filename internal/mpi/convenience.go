package mpi

import (
	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Blocking and combined point-to-point conveniences layered on the
// non-blocking core, mirroring the MPI API surface applications expect.

// Send is blocking MPI_Send.
func (r *Rank) Send(p *sim.Proc, dest, tag int, buf *gpu.Buffer, l *datatype.Layout, count int) {
	r.Wait(p, r.Isend(p, dest, tag, buf, l, count))
}

// Recv is blocking MPI_Recv.
func (r *Rank) Recv(p *sim.Proc, src, tag int, buf *gpu.Buffer, l *datatype.Layout, count int) {
	r.Wait(p, r.Irecv(p, src, tag, buf, l, count))
}

// Sendrecv is MPI_Sendrecv: simultaneous send and receive, deadlock-free.
func (r *Rank) Sendrecv(p *sim.Proc,
	dest, sendTag int, sbuf *gpu.Buffer, sendType *datatype.Layout, sendCount int,
	src, recvTag int, rbuf *gpu.Buffer, recvType *datatype.Layout, recvCount int) {
	rq := r.Irecv(p, src, recvTag, rbuf, recvType, recvCount)
	sq := r.Isend(p, dest, sendTag, sbuf, sendType, sendCount)
	r.Waitall(p, []*Request{rq, sq})
}

// Waitany blocks until at least one request completes and returns its
// index (MPI_Waitany). Completed requests keep reporting Done, so callers
// should track which indices they have consumed.
func (r *Rank) Waitany(p *sim.Proc, reqs []*Request) int {
	if len(reqs) == 0 {
		panic("mpi: Waitany on empty request list")
	}
	for {
		r.scheme.Flush(p)
		r.progress(p)
		for i, q := range reqs {
			if q.Done() {
				return i
			}
		}
		r.Charge(trace.Comm, "poll", p.Now(), r.world.Cfg.PollIntervalNs)
		p.Sleep(r.world.Cfg.PollIntervalNs)
	}
}

// Testall advances progress once and reports whether every request is
// complete (MPI_Testall).
func (r *Rank) Testall(p *sim.Proc, reqs []*Request) bool {
	r.progress(p)
	for _, q := range reqs {
		if !q.Done() {
			return false
		}
	}
	return true
}
