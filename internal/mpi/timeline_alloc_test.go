package mpi_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// TestChargeZeroAllocWhenTracingDisabled pins the zero-cost disabled path:
// the Charge helper sits on the Isend/Waitall progress loop, and with no
// timeline configured it must not allocate at all.
func TestChargeZeroAllocWhenTracingDisabled(t *testing.T) {
	w := newWorld("GPU-Sync", nil)
	r := w.Rank(0)
	if r.Timeline() != nil {
		t.Fatal("default config must not enable tracing")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Charge(trace.Comm, "poll", 0, 5)
	})
	if allocs != 0 {
		t.Fatalf("Charge with tracing disabled allocates %v per call, want 0", allocs)
	}
}

// TestWorldTimelineRecordsAndReconciles checks the wired-up path: enabling
// Config.Timeline yields per-rank recorders whose cost sums equal the
// rank's Breakdown exactly.
func TestWorldTimelineRecordsAndReconciles(t *testing.T) {
	env := sim.NewEnv()
	c := cluster.MustBuild(env, cluster.Lassen())
	cfg := mpi.DefaultConfig()
	cfg.Timeline = &timeline.Options{}
	w := mpi.NewWorld(c, cfg, schemes.Factory("Proposed-Tuned"))
	l := sparseLayout()
	sbuf := w.Rank(0).Dev.Alloc("s", int(l.ExtentBytes))
	rbuf := w.Rank(4).Dev.Alloc("r", int(l.ExtentBytes))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			r.Wait(p, r.Isend(p, 4, 0, sbuf, l, 1))
		case 4:
			r.Wait(p, r.Irecv(p, 0, 0, rbuf, l, 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Timeline() == nil {
		t.Fatal("world must expose its timeline")
	}
	for rk := 0; rk < w.Size(); rk++ {
		rec := w.Rank(rk).Timeline()
		if rec == nil {
			t.Fatalf("rank %d has no recorder", rk)
		}
		sums := rec.Sums()
		for _, cat := range trace.Categories() {
			if got, want := sums.Get(cat), w.Rank(rk).Trace.Get(cat); got != want {
				t.Errorf("rank %d %s: timeline sum %d != breakdown %d", rk, cat, got, want)
			}
		}
	}
	if len(w.Rank(0).Timeline().Events()) == 0 {
		t.Fatal("sender rank recorded no events")
	}
}
