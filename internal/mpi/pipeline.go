package mpi

import (
	"strconv"

	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/pack"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// Chunked (pipelined) rendezvous: large non-contiguous RGET sends are
// packed chunk by chunk, each chunk a separate datatype-processing request
// (so chunks fuse with other pending work under the proposed scheme), and
// each chunk's RDMA read starts as soon as that chunk is packed — packing
// overlaps the wire transfer instead of fully preceding it, the pipelining
// style of GDR-class MPI runtimes.
//
// Protocol (RGET only; RPUT and contiguous sends use the plain path):
//
//	sender: Isend -> envelope RTS (matchable, carries chunk count)
//	        per chunk packed -> RTS-chunk {offset, bytes}
//	receiver: match envelope; per RTS-chunk -> RDMA-READ that span;
//	          when all spans landed -> FIN + unpack (whole message)

// sendChunk tracks one pipeline chunk on the sender.
type sendChunk struct {
	handle    Handle
	off       int64
	bytes     int64
	announced bool
}

// splitChunks greedily groups blocks so each group carries at least
// chunkBytes (except the last).
func splitChunks(blocks []datatype.Block, chunkBytes int64) [][]datatype.Block {
	var out [][]datatype.Block
	var cur []datatype.Block
	var acc int64
	for _, b := range blocks {
		cur = append(cur, b)
		acc += b.Len
		if acc >= chunkBytes {
			out = append(out, cur)
			cur, acc = nil, 0
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// wantsPipeline reports whether a send should take the chunked path.
func (r *Rank) wantsPipeline(q *Request) bool {
	cfg := r.world.Cfg
	return cfg.PipelineChunkBytes > 0 &&
		cfg.Rendezvous == RGET &&
		!q.contig &&
		q.bytes > cfg.EagerLimitBytes &&
		q.bytes > cfg.PipelineChunkBytes
}

// startPipelinedSend sets up chunked packing and emits the envelope RTS.
// Called from Isend in place of the whole-message pack.
func (r *Rank) startPipelinedSend(p *sim.Proc, q *Request, buf *gpu.Buffer) {
	groups := splitChunks(q.entry.Blocks, r.world.Cfg.PipelineChunkBytes)
	q.packed = r.stagingBuf(q.bytes)
	var off int64
	for _, g := range groups {
		job := pack.NewJob(pack.OpPack, buf, q.packed, g)
		job.TargetOff = off
		var bytes int64
		for _, b := range g {
			bytes += b.Len
		}
		q.chunks = append(q.chunks, sendChunk{
			handle: r.scheme.Pack(p, job),
			off:    off,
			bytes:  bytes,
		})
		off += bytes
	}
	q.state = stPacking
	// Envelope goes out immediately (ordered): the receiver needs it to
	// match before any chunk can be pulled.
	r.emitInOrder(p, q, func(p *sim.Proc) {
		r.postCtrl(p, q, &message{
			kind: mkRTS, from: r.id, to: q.peer, tag: q.tag,
			bytes: q.bytes, sender: q, chunks: len(q.chunks),
		})
	})
}

// progressPipelinedSend announces packed chunks; returns true while the
// send still has work (caller should not fall through to the plain path).
func (r *Rank) progressPipelinedSend(p *sim.Proc, q *Request) {
	allDone := true
	for i := range q.chunks {
		c := &q.chunks[i]
		if c.announced {
			continue
		}
		if err := c.handle.Err(); err != nil {
			r.fail(p, q, "pack-chunk", 0, err)
			return
		}
		if !c.handle.Done(p) {
			allDone = false
			continue
		}
		c.announced = true
		r.postCtrl(p, q, &message{
			kind: mkRTSChunk, from: r.id, to: q.peer, tag: q.tag,
			sender: q, chunkOff: c.off, chunkBytes: c.bytes,
		})
	}
	if allDone {
		q.state = stWaitFin
	}
}

// acceptChunk records an RTS-chunk at the receiver (scheduler context).
func (r *Rank) acceptChunk(m *message) {
	if q := m.sender.remoteRecv; q != nil {
		q.pendingChunks = append(q.pendingChunks, m)
		return
	}
	// Envelope not matched yet: park the chunk.
	r.orphanChunks = append(r.orphanChunks, m)
}

// adoptOrphanChunks moves parked chunks belonging to q's sender onto q.
func (r *Rank) adoptOrphanChunks(q *Request) {
	sender := q.matched.sender
	keep := r.orphanChunks[:0]
	for _, m := range r.orphanChunks {
		if m.sender == sender {
			q.pendingChunks = append(q.pendingChunks, m)
		} else {
			keep = append(keep, m)
		}
	}
	r.orphanChunks = keep
}

// progressPipelinedRecv pulls announced chunks; returns true once the full
// payload has landed.
func (r *Rank) progressPipelinedRecv(p *sim.Proc, q *Request) bool {
	net := r.world.Cluster.Net
	sender := q.matched.sender
	fromNode := r.world.ranks[q.matched.from].node
	// Snapshot and clear first: net.Post yields the proc, and chunk
	// announcements arriving during the yield append to pendingChunks —
	// they must land on the fresh slice, not be lost to the post-loop
	// clear.
	chunks := q.pendingChunks
	q.pendingChunks = nil
	if r.reliable() {
		// Each announced chunk becomes a checksummed, retried read span.
		for _, m := range chunks {
			op := &readOp{off: m.chunkOff, bytes: m.chunkBytes}
			q.reads = append(q.reads, op)
			q.pulledChunks++
			r.issueRead(p, q, op, false)
			if q.settled() {
				return false
			}
		}
		return q.dataHere
	}
	for _, m := range chunks {
		m := m
		net.Post(p)
		t0 := p.Now()
		net.RDMARead(r.node, fromNode, m.chunkBytes, func() {
			gpu.CopyRange(q.packed, m.chunkOff, sender.packed, m.chunkOff, m.chunkBytes)
			q.recvdBytes += m.chunkBytes
			if q.recvdBytes == q.bytes {
				q.dataHere = true
			}
			if r.tl != nil {
				r.tl.Span(timeline.LayerMPI, timeline.CostNone, "net", "rdma-read-chunk", t0, r.world.Env.Now()-t0,
					timeline.Arg{Key: "off", Val: strconv.FormatInt(m.chunkOff, 10)},
					timeline.Arg{Key: "bytes", Val: strconv.FormatInt(m.chunkBytes, 10)})
			}
		})
		q.pulledChunks++
	}
	return q.dataHere
}
