// Reliability layer for the MPI runtime, activated when Config.Faults is
// non-nil: every control and eager message travels over an acked,
// checksummed, retransmitting transport, and RDMA transfers get
// checksum-verified completion with bounded re-issue — the recovery half of
// the fault-injection story (package fault supplies the failure half).
//
// Design notes:
//
//   - Acks are modeled at the NIC firmware level (InfiniBand RC hardware
//     acks): they are emitted from scheduler context with no CPU post cost
//     and are themselves unacknowledged. A lost ack is recovered by the
//     sender's retransmission plus the receiver's duplicate suppression.
//   - Retransmission timers are pure virtual-clock deadlines scanned by the
//     polled progress engine; no extra simulation events exist, so a
//     fault-free run (Config.Faults == nil) is byte-identical to one built
//     before this layer existed.
//   - Every retransmission charges its CPU time to trace.Retrans through
//     Rank.ChargeFault, which mirrors the charge as a fault-layer timeline
//     span — timeline sums therefore reconcile exactly with the Breakdown.
//   - A request completes only when its protocol finished AND every message
//     it emitted was acked (unacked == 0): no request leaks an in-flight
//     message, which the chaos conformance suite asserts.
//   - Exhausted retries surface as *OpError (wrapping ErrRetriesExhausted)
//     on the request; Wait/Waitall return them. A best-effort mkErr notifies
//     the peer so its matching request fails fast with ErrPeerAborted
//     instead of stalling until the sim watchdog fires.
package mpi

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// RetryPolicy bounds the reliability layer's retransmission behaviour.
// Zero values select the defaults.
type RetryPolicy struct {
	// MaxRetries bounds re-issues per message or RDMA operation (default 8).
	MaxRetries int
	// BaseTimeoutNs pads the size-derived retransmission timeout and is the
	// NIC verb-retry backoff unit (default 10 µs).
	BaseTimeoutNs int64
	// BackoffCapNs caps the exponential backoff added per attempt
	// (default 2 ms).
	BackoffCapNs int64
}

func (rp RetryPolicy) normalized() RetryPolicy {
	if rp.MaxRetries <= 0 {
		rp.MaxRetries = 8
	}
	if rp.BaseTimeoutNs <= 0 {
		rp.BaseTimeoutNs = 10_000
	}
	if rp.BackoffCapNs <= 0 {
		rp.BackoffCapNs = 2 * sim.Millisecond
	}
	return rp
}

// Typed failure sentinels; inspect with errors.Is through the *OpError that
// Wait/Waitall return.
var (
	// ErrRetriesExhausted: bounded retransmission gave up.
	ErrRetriesExhausted = errors.New("mpi: retries exhausted")
	// ErrPeerAborted: the matching request on the peer rank failed.
	ErrPeerAborted = errors.New("mpi: peer aborted operation")
	// ErrTruncate: a matched message was larger than the posted receive.
	ErrTruncate = errors.New("mpi: message truncation")
)

// OpError is the typed terminal error of a failed request.
type OpError struct {
	Rank, Peer, Tag int
	IsSend          bool
	// Phase names the protocol step that failed ("eager", "rts", "fin",
	// "rdma-read", "rdma-write", "nic-post", "pack", "unpack", ...).
	Phase string
	// Attempts counts issues of the failing message/operation.
	Attempts int
	Err      error
}

func (e *OpError) Error() string {
	dir := "recv"
	if e.IsSend {
		dir = "send"
	}
	return fmt.Sprintf("mpi: rank %d %s (peer=%d tag=%d) failed in %s after %d attempt(s): %v",
		e.Rank, dir, e.Peer, e.Tag, e.Phase, e.Attempts, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// checksum is FNV-1a over a payload — the simulation stand-in for the wire
// CRC the reliability layer verifies before accepting data.
func checksum(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// verifyDamaged simulates the receiver checksumming a payload corrupted in
// flight: it flips one byte of a copy and reports whether the checksum
// still (wrongly) matches the sender's.
func verifyDamaged(payload []byte, sum uint64) bool {
	dam := append([]byte(nil), payload...)
	if len(dam) > 0 {
		dam[len(dam)/2] ^= 0xa5
	}
	return checksum(dam) == sum
}

// msgCorruptionUndetected models a damaged eager frame in either payload
// mode and reports whether the receiver's CRC would (impossibly) still
// accept it. Exact mode flips one real byte; lazy mode applies the
// deterministic PRF corrupt splice to a span clone. Either way the FNV-1a
// single-byte-change bijection makes an undetected corruption unreachable,
// which arriveD turns into a sanity panic.
func msgCorruptionUndetected(m *message) bool {
	if m.lazy != nil {
		dam := m.lazy.Slice(0, m.lazy.Len())
		dam.CorruptSplice(0, dam.Len(), m.sum)
		return dam.Checksum() == m.sum
	}
	if m.payload != nil {
		return verifyDamaged(m.payload, m.sum)
	}
	return false // header-only control frame: nothing to mis-verify
}

// corruptionUndetected is the RDMA-side twin of msgCorruptionUndetected: it
// damages a copy of buffer range [off, off+n) — one byte flip in exact
// mode, the PRF corrupt splice on a span clone in lazy mode — and reports
// whether the damaged range still checksums to want.
func corruptionUndetected(b *gpu.Buffer, off, n int64, want uint64) bool {
	if b.IsLazy() {
		dam := b.Lazy.Slice(off, n)
		dam.CorruptSplice(0, n, want)
		return dam.Checksum() == want
	}
	dam := append([]byte(nil), b.Data[off:off+n]...)
	if len(dam) > 0 {
		dam[len(dam)/2] ^= 0xa5
	}
	return checksum(dam) == want
}

// pendingMsg tracks one unacked reliable message on the sender.
type pendingMsg struct {
	m        *message
	owner    *Request // whose unacked count this message holds
	wire     int64    // wire size for resend + timeout derivation
	deadline int64
	attempts int
	acked    bool
}

// reliable reports whether the reliability layer is active (a fault plan is
// installed, even an all-zero one — reliable transport is an explicit
// opt-in so fault-free runs stay byte-identical).
func (r *Rank) reliable() bool { return r.world.inj != nil }

// ChargeFault accrues a recovery cost (retransmission CPU time, retry
// backoff) to trace.Retrans and mirrors it as a fault-layer timeline span,
// keeping timeline per-category sums reconciled with the Breakdown.
func (r *Rank) ChargeFault(name string, start, d int64) {
	if d <= 0 {
		return
	}
	r.Trace.Add(trace.Retrans, d)
	if r.tl != nil {
		r.tl.Span(timeline.LayerFault, trace.Retrans, "", name, start, d)
	}
}

// timeoutFor derives a retransmission timeout from the wire size: one
// round trip (request + ack) at link speed plus scheduling slack.
func (r *Rank) timeoutFor(wire int64) int64 {
	ls := r.world.Cluster.Net.Spec.Link
	est := ls.LatencyNs + ls.PerMessageNs + int64(float64(wire)/ls.BWBytesPerNs)
	return 2*est + r.world.retry.BaseTimeoutNs
}

// backoffExtra is the capped exponential deadline extension for a retry.
func (r *Rank) backoffExtra(est int64, attempts int) int64 {
	if attempts <= 0 {
		return 0
	}
	if attempts > 20 {
		attempts = 20
	}
	extra := est << uint(attempts)
	if cap := r.world.retry.BackoffCapNs; extra > cap {
		extra = cap
	}
	return extra
}

// postRetry posts a NIC work request, retrying transient verb failures with
// capped exponential backoff. Without the reliability layer it is exactly
// Network.Post.
func (r *Rank) postRetry(p *sim.Proc) error {
	net := r.world.Cluster.Net
	if !r.reliable() {
		net.Post(p)
		return nil
	}
	pol := r.world.retry
	for attempt := 0; ; attempt++ {
		err := net.PostV(p)
		if err == nil {
			return nil
		}
		if attempt >= pol.MaxRetries {
			r.fsite.Record(fault.GiveUp, "nic-post")
			return err
		}
		back := pol.BaseTimeoutNs << uint(attempt)
		if back > pol.BackoffCapNs {
			back = pol.BackoffCapNs
		}
		p.Sleep(back)
	}
}

// sendReliable stamps m with a world-unique id (and payload checksum),
// registers it for ack tracking against owner, and transmits it.
func (r *Rank) sendReliable(p *sim.Proc, owner *Request, m *message, wire int64) {
	r.world.nextMsgID++
	m.id = r.world.nextMsgID
	if m.payload != nil {
		m.sum = checksum(m.payload)
	} else if m.lazy != nil {
		m.sum = m.lazy.Checksum()
	}
	owner.unacked++
	pm := &pendingMsg{m: m, owner: owner, wire: wire}
	r.pending = append(r.pending, pm)
	r.transmit(p, pm, false)
}

// transmit posts one (re)transmission of pm and arms its deadline.
func (r *Rank) transmit(p *sim.Proc, pm *pendingMsg, retrans bool) {
	t0 := p.Now()
	if err := r.postRetry(p); err != nil {
		pm.acked = true // dead entry; stop scanning it
		r.fail(p, pm.owner, "nic-post", pm.attempts+1, err)
		return
	}
	net := r.world.Cluster.Net
	m := pm.m
	toNode := r.world.ranks[m.to].node
	arrive := net.SendF(r.node, toNode, pm.wire, func(d fabric.Delivery) {
		r.world.ranks[m.to].arriveD(m, d)
	})
	est := r.timeoutFor(pm.wire)
	pm.deadline = p.Now() + est + r.backoffExtra(est, pm.attempts)
	if retrans {
		r.ChargeFault("retransmit:"+m.kind.String(), t0, p.Now()-t0)
		return
	}
	if r.tl != nil {
		name := "ctrl:" + m.kind.String()
		if m.kind == mkEager {
			name = "eager"
		}
		r.tl.Span(timeline.LayerMPI, timeline.CostNone, "net", name, t0, arrive-t0,
			timeline.Arg{Key: "peer", Val: strconv.Itoa(m.to)},
			timeline.Arg{Key: "bytes", Val: strconv.FormatInt(m.bytes, 10)})
	}
}

// sendAck acknowledges m back to its sender. Scheduler context: acks are
// NIC-firmware-level (IB RC hardware acks) and cost the CPU nothing.
func (r *Rank) sendAck(m *message) {
	net := r.world.Cluster.Net
	ack := &message{kind: mkAck, from: r.id, to: m.from, tag: m.tag, id: m.id}
	net.SendF(r.node, r.world.ranks[m.from].node, net.Spec.CtrlBytes, func(d fabric.Delivery) {
		if d.Corrupt {
			return // damaged ack: sender retransmits, receiver re-acks
		}
		r.world.ranks[ack.to].arriveD(ack, d)
	})
}

// handleAck resolves an arriving ack against the pending list (scheduler
// context). Unknown ids (already acked and pruned, or a duplicated ack) are
// ignored.
func (r *Rank) handleAck(m *message) {
	for _, pm := range r.pending {
		if pm.m.id != m.id || pm.acked {
			continue
		}
		pm.acked = true
		q := pm.owner
		q.unacked--
		if q.unacked == 0 && q.wantDone && !q.settled() {
			r.complete(q)
		}
		return
	}
}

// retransmitScan walks the pending list from the progress engine: prunes
// resolved entries, re-transmits expired ones with backoff, and fails the
// owning request when retries are exhausted.
func (r *Rank) retransmitScan(p *sim.Proc) {
	if len(r.pending) == 0 {
		return
	}
	// Prune first — no yields here, so the in-place compaction cannot race
	// an ack arriving mid-scan.
	keep := r.pending[:0]
	for _, pm := range r.pending {
		if pm.acked || pm.owner.settled() {
			continue
		}
		keep = append(keep, pm)
	}
	for i := len(keep); i < len(r.pending); i++ {
		r.pending[i] = nil
	}
	r.pending = keep
	// Deadline scan. transmit yields (NIC post), so acks may land mid-scan;
	// they only flip per-entry fields, never the slice.
	for _, pm := range r.pending {
		if pm.acked || pm.owner.settled() || p.Now() < pm.deadline {
			continue
		}
		pm.attempts++
		r.fsite.Record(fault.Timeout, pm.m.kind.String())
		if pm.attempts > r.world.retry.MaxRetries {
			r.fsite.Record(fault.GiveUp, pm.m.kind.String())
			r.fail(p, pm.owner, pm.m.kind.String(), pm.attempts, ErrRetriesExhausted)
			continue
		}
		r.fsite.Record(fault.Retransmit, pm.m.kind.String())
		r.transmit(p, pm, true)
	}
}

// maybeComplete finishes q once its protocol is done AND every message it
// emitted was acked. Without the reliability layer unacked is always zero,
// so this is exactly complete.
func (r *Rank) maybeComplete(q *Request) {
	if q.settled() {
		return
	}
	if q.unacked > 0 {
		q.wantDone = true
		return
	}
	r.complete(q)
}

// fail terminates q with a typed error, fires its completion event, frees
// its active-list slot, advances the envelope FIFO past it, beats the
// watchdog, and best-effort notifies the peer. p may be nil (scheduler
// context); FIFO draining is then deferred to the next progress call.
func (r *Rank) fail(p *sim.Proc, q *Request, phase string, attempts int, err error) {
	if q.settled() {
		return
	}
	q.err = &OpError{
		Rank: r.id, Peer: q.peer, Tag: q.tag, IsSend: q.isSend,
		Phase: phase, Attempts: attempts, Err: err,
	}
	q.state = stFailed
	q.DoneAt = r.world.Env.Now()
	if q.isSend && !q.emitted {
		// The envelope never went out; emit a no-op in its FIFO slot so
		// later sends to the same destination are not wedged forever
		// behind a request that will never emit.
		q.emitted = true
		if r.emitWait == nil {
			r.emitWait = make(map[int]map[int64]func(*sim.Proc))
		}
		if r.emitWait[q.peer] == nil {
			r.emitWait[q.peer] = make(map[int64]func(*sim.Proc))
		}
		if r.emitNext == nil {
			// A send can fail before emitInOrder ever ran (e.g. its
			// peer was declared dead while the send was still packing),
			// so the drain-side map may not exist yet.
			r.emitNext = make(map[int]int64)
		}
		r.emitWait[q.peer][q.seq] = func(*sim.Proc) {}
		if p != nil {
			r.drainEmits(p, q.peer)
		} else {
			r.needDrain = true
		}
	}
	q.doneEv.Fire()
	for i, a := range r.active {
		if a == q {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	r.world.Env.Beat()
	r.notifyPeer(q)
	if q.comm != nil {
		// Self-healing hook: a comm-bound op failing on a dead member
		// revokes the communicator at the moment of observation.
		q.comm.maybeAutoRevoke(r, err)
	}
}

// notifyPeer sends a best-effort, untracked mkErr so the peer's matching
// request fails with ErrPeerAborted instead of waiting for the watchdog. It
// may itself be lost — then the peer's own timeouts or the sim watchdog
// take over.
func (r *Rank) notifyPeer(q *Request) {
	if !r.reliable() || q.errSent || q.peer < 0 || q.peer == r.id {
		return
	}
	q.errSent = true
	var target *Request
	if q.isSend {
		if q.ctsFrom != nil {
			target = q.ctsFrom
		} else {
			target = q.remoteRecv
		}
	} else if q.matched != nil {
		target = q.matched.sender
	}
	m := &message{kind: mkErr, from: r.id, to: q.peer, tag: q.tag, receiver: target, bytes: q.bytes}
	net := r.world.Cluster.Net
	net.SendF(r.node, r.world.ranks[q.peer].node, net.Spec.CtrlBytes, func(d fabric.Delivery) {
		if d.Corrupt || d.Dup {
			return
		}
		r.world.ranks[m.to].arriveD(m, d)
	})
}

// readOp tracks one checksummed RDMA-read span (whole message or one
// pipeline chunk) on the receiver.
type readOp struct {
	off, bytes int64
	attempts   int
	deadline   int64
	done       bool
}

// issueRead posts one (re)issue of op's RDMA read with checksum-verified
// completion. Corrupted or duplicated payloads are discarded — the deadline
// scan re-reads them.
func (r *Rank) issueRead(p *sim.Proc, q *Request, op *readOp, retrans bool) {
	t0 := p.Now()
	if err := r.postRetry(p); err != nil {
		r.fail(p, q, "rdma-read-post", op.attempts+1, err)
		return
	}
	net := r.world.Cluster.Net
	sender := q.matched.sender
	fromNode := r.world.ranks[q.matched.from].node
	off, n := op.off, op.bytes
	sb, so := sender.srcBuf()
	want := sb.ChecksumRange(so+off, n)
	net.RDMAReadF(r.node, fromNode, n, func(d fabric.Delivery) {
		if op.done || d.Dup || q.settled() {
			return
		}
		if d.Corrupt {
			// CRC reject: discard, re-read on timeout. An undetected
			// corruption is impossible (one-byte FNV flip always changes
			// the sum), so surviving the check is a simulator bug.
			if corruptionUndetected(sb, so+off, n, want) {
				panic("mpi: rdma-read corruption not detected by checksum")
			}
			return
		}
		gpu.CopyRange(q.packed, off, sb, so+off, n)
		op.done = true
		q.recvdBytes += n
		if q.recvdBytes == q.bytes {
			q.dataHere = true
		}
		if r.tl != nil {
			r.tl.Span(timeline.LayerMPI, timeline.CostNone, "net", "rdma-read", t0, r.world.Env.Now()-t0,
				timeline.Arg{Key: "peer", Val: strconv.Itoa(q.matched.from)},
				timeline.Arg{Key: "bytes", Val: strconv.FormatInt(n, 10)})
		}
	})
	est := r.timeoutFor(n)
	op.deadline = p.Now() + est + r.backoffExtra(est, op.attempts)
	if retrans {
		r.ChargeFault("rdma-reread", t0, p.Now()-t0)
	}
}

// scanReads re-issues expired RDMA reads and fails q when one exhausts its
// retries.
func (r *Rank) scanReads(p *sim.Proc, q *Request) {
	for _, op := range q.reads {
		if op.done || p.Now() < op.deadline {
			continue
		}
		op.attempts++
		r.fsite.Record(fault.Timeout, "rdma-read")
		if op.attempts > r.world.retry.MaxRetries {
			r.fsite.Record(fault.GiveUp, "rdma-read")
			r.fail(p, q, "rdma-read", op.attempts, ErrRetriesExhausted)
			return
		}
		r.fsite.Record(fault.Retransmit, "rdma-read")
		r.issueRead(p, q, op, true)
		if q.settled() {
			return // postRetry exhausted inside issueRead
		}
	}
}

// issueWrite posts one (re)issue of q's RPUT RDMA write. The receiver
// verifies the checksum before accepting; a corrupted or dropped write
// leaves finHere unset and the deadline scan rewrites.
func (r *Rank) issueWrite(p *sim.Proc, q *Request, recvReq *Request, retrans bool) {
	t0 := p.Now()
	if err := r.postRetry(p); err != nil {
		r.fail(p, q, "rdma-write-post", q.writeAttempts+1, err)
		return
	}
	net := r.world.Cluster.Net
	peerNode := r.world.ranks[q.peer].node
	sb, so := q.srcBuf()
	want := sb.ChecksumRange(so, q.bytes)
	net.RDMAWriteF(r.node, peerNode, q.bytes, func(d fabric.Delivery) {
		if q.finHere || d.Dup || q.settled() {
			return
		}
		if d.Corrupt {
			// Receiver-side CRC reject: sender rewrites on timeout.
			if corruptionUndetected(sb, so, q.bytes, want) {
				panic("mpi: rdma-write corruption not detected by checksum")
			}
			return
		}
		if recvReq != nil {
			gpu.CopyRange(recvReq.packed, 0, sb, so, q.bytes)
			recvReq.dataHere = true
		}
		q.finHere = true // local write completion
		if r.tl != nil {
			r.tl.Span(timeline.LayerMPI, timeline.CostNone, "net", "rdma-write", t0, r.world.Env.Now()-t0,
				timeline.Arg{Key: "peer", Val: strconv.Itoa(q.peer)},
				timeline.Arg{Key: "bytes", Val: strconv.FormatInt(q.bytes, 10)})
		}
	})
	est := r.timeoutFor(q.bytes)
	q.writeDeadline = p.Now() + est + r.backoffExtra(est, q.writeAttempts)
	if retrans {
		r.ChargeFault("rdma-rewrite", t0, p.Now()-t0)
	}
}

// scanWrite rewrites an expired RPUT and fails q when retries exhaust.
func (r *Rank) scanWrite(p *sim.Proc, q *Request) {
	if p.Now() < q.writeDeadline {
		return
	}
	q.writeAttempts++
	r.fsite.Record(fault.Timeout, "rdma-write")
	if q.writeAttempts > r.world.retry.MaxRetries {
		r.fsite.Record(fault.GiveUp, "rdma-write")
		r.fail(p, q, "rdma-write", q.writeAttempts, ErrRetriesExhausted)
		return
	}
	r.fsite.Record(fault.Retransmit, "rdma-write")
	r.issueWrite(p, q, q.matchedRecv(), true)
}

// --- world-level fault/robustness accessors ---

// Injector returns the world's fault injector (nil when Config.Faults is
// nil).
func (w *World) Injector() *fault.Injector { return w.inj }

// FaultEvents returns the injected-fault/recovery log in event order (nil
// without a fault plan).
func (w *World) FaultEvents() []fault.Event { return w.inj.Events() }

// LeakedRequests counts requests still registered as in-flight on any
// surviving rank. After a clean run — even a chaotic one — it is zero; the
// chaos suite asserts this. Crashed ranks are excluded: a killed proc
// abandons its requests mid-protocol by design, exactly as a dead MPI
// process abandons its queue pairs.
func (w *World) LeakedRequests() int {
	n := 0
	for _, r := range w.ranks {
		if w.isCrashed(r.id) {
			continue
		}
		n += len(r.active)
	}
	return n
}

// PendingMessages counts unresolved reliability-layer messages still being
// tracked for retransmission across the surviving ranks.
func (w *World) PendingMessages() int {
	n := 0
	for _, r := range w.ranks {
		if w.isCrashed(r.id) {
			continue
		}
		for _, pm := range r.pending {
			if !pm.acked && !pm.owner.settled() {
				n++
			}
		}
	}
	return n
}
