package mpi_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// chaosExchange runs one src->dst transfer under a fault plan and asserts
// byte-exact delivery plus zero leaked requests. It returns the world for
// further inspection.
func chaosExchange(t *testing.T, scheme string, plan *fault.Plan, src, dst int,
	l *datatype.Layout, count int, mut func(*mpi.Config)) *mpi.World {
	t.Helper()
	w := newWorld(scheme, func(cfg *mpi.Config) {
		cfg.Faults = plan
		if mut != nil {
			mut(cfg)
		}
	})
	sbuf := w.Rank(src).Dev.Alloc("send", int(l.ExtentBytes)*count)
	rbuf := w.Rank(dst).Dev.Alloc("recv", int(l.ExtentBytes)*count)
	rng := rand.New(rand.NewSource(7))
	rng.Read(sbuf.Data)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case src:
			if err := r.Wait(p, r.Isend(p, dst, 3, sbuf, l, count)); err != nil {
				t.Errorf("send: %v", err)
			}
		case dst:
			if err := r.Wait(p, r.Irecv(p, src, 3, rbuf, l, count)); err != nil {
				t.Errorf("recv: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatalf("%s under %s: %v", scheme, w.Injector().Counts(), err)
	}
	for _, b := range l.Repeat(count) {
		if !bytes.Equal(rbuf.Data[b.Offset:b.Offset+b.Len], sbuf.Data[b.Offset:b.Offset+b.Len]) {
			t.Fatalf("%s: block %+v corrupted after recovery (%s)", scheme, b, w.Injector().Counts())
		}
	}
	if n := w.LeakedRequests(); n != 0 {
		t.Fatalf("%s: %d leaked requests", scheme, n)
	}
	return w
}

// eagerStorm pushes nmsg eager messages 0->4 under plan and verifies each
// payload; enough independent drop/corrupt rolls that the plan reliably
// fires. Returns the world for fault-counter assertions.
func eagerStorm(t *testing.T, plan *fault.Plan, nmsg int) *mpi.World {
	t.Helper()
	l := datatype.Commit(datatype.Contiguous(512, datatype.Float64)) // 4 KiB, eager
	w := newWorld("GPU-Sync", func(cfg *mpi.Config) { cfg.Faults = plan })
	sb := make([]*gpu.Buffer, nmsg)
	rb := make([]*gpu.Buffer, nmsg)
	for i := range sb {
		sb[i] = w.Rank(0).Dev.Alloc(fmt.Sprintf("s%d", i), int(l.ExtentBytes))
		rb[i] = w.Rank(4).Dev.Alloc(fmt.Sprintf("r%d", i), int(l.ExtentBytes))
		rng := rand.New(rand.NewSource(int64(i + 1)))
		rng.Read(sb[i].Data)
	}
	if err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		var qs []*mpi.Request
		switch r.ID() {
		case 0:
			for i := 0; i < nmsg; i++ {
				qs = append(qs, r.Isend(p, 4, i, sb[i], l, 1))
			}
		case 4:
			for i := 0; i < nmsg; i++ {
				qs = append(qs, r.Irecv(p, 0, i, rb[i], l, 1))
			}
		default:
			return
		}
		if err := r.Waitall(p, qs); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	}); err != nil {
		t.Fatalf("run under %s: %v", w.Injector().Counts(), err)
	}
	for i := range rb {
		if !bytes.Equal(rb[i].Data, sb[i].Data) {
			t.Fatalf("msg %d corrupted after recovery (%s)", i, w.Injector().Counts())
		}
	}
	if n := w.LeakedRequests(); n != 0 {
		t.Fatalf("%d leaked requests", n)
	}
	return w
}

func TestReliableEagerSurvivesDrops(t *testing.T) {
	plan := &fault.Plan{Seed: 11, Link: fault.LinkPlan{DropProb: 0.3, DupProb: 0.1}}
	w := eagerStorm(t, plan, 12)
	inj := w.Injector()
	if inj.Count(fault.Drop) == 0 {
		t.Fatal("plan injected no drops; test proves nothing")
	}
	if inj.Count(fault.Retransmit) == 0 {
		t.Fatalf("drops recovered without retransmission? %s", inj.Counts())
	}
}

func TestReliableEagerSurvivesCorruption(t *testing.T) {
	plan := &fault.Plan{Seed: 5, Link: fault.LinkPlan{CorruptProb: 0.3}}
	w := eagerStorm(t, plan, 12)
	if w.Injector().Count(fault.Corrupt) == 0 {
		t.Fatal("plan injected no corruption; test proves nothing")
	}
}

func TestReliableRendezvousRGETSurvivesFaults(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Link: fault.LinkPlan{DropProb: 0.2, CorruptProb: 0.2}}
	w := chaosExchange(t, "Proposed-Tuned", plan, 0, 4, denseLayout(), 1, nil)
	if w.Injector().Total() == 0 {
		t.Fatal("no faults injected on rendezvous path")
	}
}

func TestReliableRendezvousRPUTSurvivesFaults(t *testing.T) {
	plan := &fault.Plan{Seed: 9, Link: fault.LinkPlan{DropProb: 0.2, CorruptProb: 0.1}}
	chaosExchange(t, "Proposed-Tuned", plan, 0, 4, denseLayout(), 1, func(cfg *mpi.Config) {
		cfg.Rendezvous = mpi.RPUT
	})
}

func TestReliableSurvivesNICPostErrors(t *testing.T) {
	plan := &fault.Plan{Seed: 2, NIC: fault.NICPlan{PostErrorProb: 0.4}}
	w := chaosExchange(t, "GPU-Sync", plan, 0, 4, denseLayout(), 1, nil)
	if w.Injector().Count(fault.NICError) == 0 {
		t.Fatal("plan injected no NIC errors; test proves nothing")
	}
}

func TestReliableSurvivesFlappyLink(t *testing.T) {
	plan, err := fault.Preset("flappy-link", 4)
	if err != nil {
		t.Fatal(err)
	}
	chaosExchange(t, "GPU-Sync", plan, 0, 4, sparseLayout(), 1, nil)
}

func TestReliablePipelinedChunksSurviveFaults(t *testing.T) {
	plan := &fault.Plan{Seed: 21, Link: fault.LinkPlan{DropProb: 0.15, CorruptProb: 0.1}}
	chaosExchange(t, "Proposed-Tuned", plan, 0, 4, denseLayout(), 1, func(cfg *mpi.Config) {
		cfg.PipelineChunkBytes = 8 << 10
	})
}

func TestReliableIntraNodeNeverFaults(t *testing.T) {
	// IPC/loopback paths bypass the fabric; even an extreme plan must not
	// touch an intra-node transfer.
	plan := &fault.Plan{Seed: 1, Link: fault.LinkPlan{DropProb: 0.9, CorruptProb: 0.9}}
	w := chaosExchange(t, "GPU-Sync", plan, 0, 1, denseLayout(), 1, nil)
	if n := w.Injector().Total(); n != 0 {
		t.Fatalf("intra-node transfer recorded %d fault events: %s", n, w.Injector().Counts())
	}
}

func TestRetriesExhaustedSurfacesTypedError(t *testing.T) {
	// A link that drops everything: the sender must give up with a typed
	// *OpError after its bounded retries, and the receiver — which can never
	// learn of the failure, since the error notification is dropped too —
	// must be caught by the watchdog rather than hanging forever.
	l := datatype.Commit(datatype.Contiguous(512, datatype.Float64))
	w := newWorld("GPU-Sync", func(cfg *mpi.Config) {
		cfg.Faults = &fault.Plan{Seed: 1, Link: fault.LinkPlan{DropProb: 1}}
		cfg.Retry = mpi.RetryPolicy{MaxRetries: 3}
		cfg.StallTimeoutNs = 20 * sim.Millisecond
	})
	sbuf := w.Rank(0).Dev.Alloc("send", int(l.ExtentBytes))
	rbuf := w.Rank(4).Dev.Alloc("recv", int(l.ExtentBytes))
	var sendErr error
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		switch r.ID() {
		case 0:
			sendErr = r.Waitall(p, []*mpi.Request{r.Isend(p, 4, 3, sbuf, l, 1)})
		case 4:
			r.Wait(p, r.Irecv(p, 0, 3, rbuf, l, 1))
		}
	})
	var stall *sim.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("Run() = %v, want *StallError for the orphaned receiver", err)
	}
	var op *mpi.OpError
	if !errors.As(sendErr, &op) {
		t.Fatalf("send error %v, want *OpError", sendErr)
	}
	if !errors.Is(sendErr, mpi.ErrRetriesExhausted) {
		t.Fatalf("send error %v does not wrap ErrRetriesExhausted", sendErr)
	}
	if op.Attempts < 4 { // initial try + MaxRetries
		t.Fatalf("gave up after %d attempts, want >= 4", op.Attempts)
	}
	if w.Injector().Count(fault.GiveUp) == 0 {
		t.Fatalf("no give-up event recorded: %s", w.Injector().Counts())
	}
}

func TestTruncationIsTypedUnderReliability(t *testing.T) {
	// With a fault plan active, a too-small receive surfaces as a typed
	// error instead of the fault-free panic. Eager: the sender has already
	// completed (fire-and-forget) when the receiver detects the mismatch,
	// so only the receiver errors. Rendezvous: truncation is detected at
	// RTS-match time, before any payload moves, and the abort notification
	// fails the still-waiting sender with ErrPeerAborted.
	small := datatype.Commit(datatype.Contiguous(8, datatype.Float64))
	for _, tc := range []struct {
		name     string
		elems    int
		wantSend error // nil = sender must succeed
	}{
		{"eager", 512, nil},
		{"rendezvous", 64 << 10, mpi.ErrPeerAborted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			big := datatype.Commit(datatype.Contiguous(tc.elems, datatype.Float64))
			w := newWorld("GPU-Sync", func(cfg *mpi.Config) {
				cfg.Faults = &fault.Plan{Seed: 1} // enables the layer, injects nothing
			})
			sbuf := w.Rank(0).Dev.Alloc("send", int(big.ExtentBytes))
			rbuf := w.Rank(4).Dev.Alloc("recv", int(big.ExtentBytes))
			var sendErr, recvErr error
			if err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
				switch r.ID() {
				case 0:
					sendErr = r.Wait(p, r.Isend(p, 4, 3, sbuf, big, 1))
				case 4:
					recvErr = r.Wait(p, r.Irecv(p, 0, 3, rbuf, small, 1))
				}
			}); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !errors.Is(recvErr, mpi.ErrTruncate) {
				t.Fatalf("recv error %v, want ErrTruncate", recvErr)
			}
			if tc.wantSend == nil {
				if sendErr != nil {
					t.Fatalf("send error %v, want nil (eager completes before the mismatch)", sendErr)
				}
			} else if !errors.Is(sendErr, tc.wantSend) {
				t.Fatalf("send error %v, want %v", sendErr, tc.wantSend)
			}
			if w.LeakedRequests() != 0 {
				t.Fatalf("%d leaked requests after abort", w.LeakedRequests())
			}
		})
	}
}

func TestReliableDeterministicReplay(t *testing.T) {
	plan := &fault.Plan{Seed: 13, Link: fault.LinkPlan{
		DropProb: 0.2, DupProb: 0.05, CorruptProb: 0.15, DelayProb: 0.1}}
	run := func() (int64, string, []fault.Event) {
		w := newWorld("Proposed-Tuned", func(cfg *mpi.Config) { cfg.Faults = plan })
		l := denseLayout()
		sbuf := w.Rank(0).Dev.Alloc("send", int(l.ExtentBytes))
		rbuf := w.Rank(4).Dev.Alloc("recv", int(l.ExtentBytes))
		rng := rand.New(rand.NewSource(1))
		rng.Read(sbuf.Data)
		if err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			switch r.ID() {
			case 0:
				r.Wait(p, r.Isend(p, 4, 3, sbuf, l, 1))
			case 4:
				r.Wait(p, r.Irecv(p, 0, 3, rbuf, l, 1))
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Env.Now(), w.Injector().Counts(), w.Injector().Events()
	}
	c1, s1, e1 := run()
	c2, s2, e2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("nondeterministic replay: clock %d vs %d, counts %q vs %q", c1, c2, s1, s2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("event logs differ: %d vs %d entries", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestFaultFreePlanKeepsTimingsIdentical(t *testing.T) {
	// An enabled-but-empty plan activates the reliability layer; a nil plan
	// keeps the classic path. The delivered bytes must match either way, and
	// the nil-plan run must also exactly reproduce its own timings (the
	// golden-trace property is asserted separately by the bench goldens).
	run := func(plan *fault.Plan) (int64, []byte) {
		w := newWorld("GPU-Sync", func(cfg *mpi.Config) { cfg.Faults = plan })
		l := denseLayout()
		sbuf := w.Rank(0).Dev.Alloc("send", int(l.ExtentBytes))
		rbuf := w.Rank(4).Dev.Alloc("recv", int(l.ExtentBytes))
		rng := rand.New(rand.NewSource(2))
		rng.Read(sbuf.Data)
		if err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			switch r.ID() {
			case 0:
				r.Wait(p, r.Isend(p, 4, 3, sbuf, l, 1))
			case 4:
				r.Wait(p, r.Irecv(p, 0, 3, rbuf, l, 1))
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w.Env.Now(), append([]byte(nil), rbuf.Data...)
	}
	cNil1, bNil1 := run(nil)
	cNil2, bNil2 := run(nil)
	_, bEmpty := run(&fault.Plan{Seed: 99})
	if cNil1 != cNil2 || !bytes.Equal(bNil1, bNil2) {
		t.Fatal("nil-plan runs are not reproducible")
	}
	if !bytes.Equal(bNil1, bEmpty) {
		t.Fatal("reliability layer changed delivered bytes")
	}
}

func TestManyRequestsUnderMixedChaos(t *testing.T) {
	// A bidirectional multi-message pattern under the mixed preset: the
	// reliability layer must keep per-(peer,tag) ordering and deliver every
	// payload byte-exactly.
	plan, err := fault.Preset("mixed", 17)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld("Proposed-Tuned", func(cfg *mpi.Config) { cfg.Faults = plan })
	l := datatype.Commit(datatype.Contiguous(1024, datatype.Float32))
	const nmsg = 6
	sbufs := map[int][]*gpu.Buffer{} // sbufs[rank][i] holds msg i sent by rank
	rbufs := map[int][]*gpu.Buffer{}
	for i := 0; i < nmsg; i++ {
		for _, id := range []int{0, 4} {
			s := w.Rank(id).Dev.Alloc(fmt.Sprintf("s%d_%d", id, i), int(l.ExtentBytes))
			r := w.Rank(id).Dev.Alloc(fmt.Sprintf("r%d_%d", id, i), int(l.ExtentBytes))
			rng := rand.New(rand.NewSource(int64(100*id + i)))
			rng.Read(s.Data)
			sbufs[id] = append(sbufs[id], s)
			rbufs[id] = append(rbufs[id], r)
		}
	}
	if err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		if r.ID() != 0 && r.ID() != 4 {
			return
		}
		peer := 4 - r.ID() // 0 <-> 4
		var qs []*mpi.Request
		for i := 0; i < nmsg; i++ {
			qs = append(qs,
				r.Irecv(p, peer, i, rbufs[r.ID()][i], l, 1),
				r.Isend(p, peer, i, sbufs[r.ID()][i], l, 1))
		}
		if err := r.Waitall(p, qs); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	}); err != nil {
		t.Fatalf("run under %s: %v", w.Injector().Counts(), err)
	}
	for i := 0; i < nmsg; i++ {
		if !bytes.Equal(rbufs[4][i].Data, sbufs[0][i].Data) {
			t.Fatalf("msg %d 0->4 corrupted (%s)", i, w.Injector().Counts())
		}
		if !bytes.Equal(rbufs[0][i].Data, sbufs[4][i].Data) {
			t.Fatalf("msg %d 4->0 corrupted (%s)", i, w.Injector().Counts())
		}
	}
	if w.LeakedRequests() != 0 {
		t.Fatalf("%d leaked requests", w.LeakedRequests())
	}
}
