package timeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

func TestNilRecorderIsDisabledAndFree(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder must report disabled")
	}
	r.Span(LayerMPI, trace.Comm, "", "x", 0, 10)
	r.Instant(LayerMPI, "", "x", 0)
	r.Reset()
	if r.Events() != nil || r.Dropped() != 0 || r.Count(trace.Comm) != 0 {
		t.Fatal("nil recorder must be empty")
	}
	if r.Sums().Total() != 0 {
		t.Fatal("nil recorder sums must be zero")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		r.Span(LayerMPI, trace.Comm, "", "x", 0, 10)
	}); allocs != 0 {
		t.Fatalf("nil recorder Span allocates %v per run, want 0", allocs)
	}
}

func TestSpanSumsAndCounts(t *testing.T) {
	r := NewRecorder(3, 16)
	r.Span(LayerMPI, trace.Comm, "", "a", 0, 10)
	r.Span(LayerGPU, trace.PackKernel, "s0", "k", 20, 5)
	r.Span(LayerMPI, trace.Comm, "net", "b", 30, 7)
	r.Span(LayerSim, CostNone, "sched", "sleep", 40, 100) // no cost
	if got := r.Sums().Get(trace.Comm); got != 17 {
		t.Fatalf("Comm sum = %d, want 17", got)
	}
	if got := r.Sums().Get(trace.PackKernel); got != 5 {
		t.Fatalf("PackKernel sum = %d, want 5", got)
	}
	if got := r.Sums().Total(); got != 22 {
		t.Fatalf("total = %d, want 22 (CostNone must not count)", got)
	}
	if r.Count(trace.Comm) != 2 || r.Count(trace.PackKernel) != 1 {
		t.Fatalf("counts wrong: comm=%d pack=%d", r.Count(trace.Comm), r.Count(trace.PackKernel))
	}
	if r.Rank() != 3 {
		t.Fatalf("rank = %d", r.Rank())
	}
}

func TestCoalescingMergesAbuttingIdenticalSpans(t *testing.T) {
	r := NewRecorder(0, 16)
	r.Span(LayerMPI, trace.Comm, "", "poll", 0, 10)
	r.Span(LayerMPI, trace.Comm, "", "poll", 10, 10) // abuts: coalesce
	r.Span(LayerMPI, trace.Comm, "", "poll", 25, 10) // gap: new event
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2 (coalesced)", len(ev))
	}
	if ev[0].Dur != 20 || ev[1].Start != 25 {
		t.Fatalf("bad coalesce: %+v", ev)
	}
	// Cost still accrues per emission.
	if got := r.Sums().Get(trace.Comm); got != 30 {
		t.Fatalf("Comm sum = %d, want 30", got)
	}
	if r.Count(trace.Comm) != 3 {
		t.Fatalf("count = %d, want 3", r.Count(trace.Comm))
	}
	// Args suppress coalescing.
	r.Span(LayerMPI, trace.Comm, "", "poll", 35, 10, Arg{Key: "k", Val: "v"})
	if len(r.Events()) != 3 {
		t.Fatal("event with args must not coalesce")
	}
}

func TestRingEvictionKeepsSums(t *testing.T) {
	r := NewRecorder(0, 4)
	for i := 0; i < 10; i++ {
		// Distinct names prevent coalescing.
		name := string(rune('a' + i))
		r.Span(LayerMPI, trace.Comm, "", name, int64(i*10), 5)
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained = %d, want 4", len(ev))
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	// Oldest retained first, emission order preserved.
	for i := 1; i < len(ev); i++ {
		if ev[i].Start <= ev[i-1].Start {
			t.Fatalf("events out of order: %+v", ev)
		}
	}
	if ev[len(ev)-1].Start != 90 {
		t.Fatalf("newest start = %d, want 90", ev[len(ev)-1].Start)
	}
	// Sums survive eviction: all 10 emissions counted.
	if got := r.Sums().Get(trace.Comm); got != 50 {
		t.Fatalf("Comm sum = %d, want 50", got)
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on negative duration")
		}
	}()
	NewRecorder(0, 4).Span(LayerMPI, trace.Comm, "", "x", 0, -1)
}

func TestReset(t *testing.T) {
	r := NewRecorder(0, 4)
	r.Span(LayerMPI, trace.Comm, "", "x", 0, 10)
	r.Reset()
	if len(r.Events()) != 0 || r.Sums().Total() != 0 || r.Count(trace.Comm) != 0 {
		t.Fatal("reset must clear events, sums, and counts")
	}
	r.Span(LayerMPI, trace.Comm, "", "y", 5, 3)
	if len(r.Events()) != 1 || r.Sums().Get(trace.Comm) != 3 {
		t.Fatal("recorder must keep working after reset")
	}
}

func TestTimelineRankAccess(t *testing.T) {
	tl := New(2, 8)
	if tl.Ranks() != 2 {
		t.Fatalf("ranks = %d", tl.Ranks())
	}
	if tl.Rank(0) == nil || tl.Rank(1) == nil {
		t.Fatal("in-range ranks must have recorders")
	}
	if tl.Rank(-1) != nil || tl.Rank(2) != nil {
		t.Fatal("out-of-range ranks must return nil (disabled) recorders")
	}
	var nilTL *Timeline
	if nilTL.Rank(0) != nil || nilTL.Ranks() != 0 {
		t.Fatal("nil timeline must be fully disabled")
	}
	nilTL.Reset() // must not panic
}

// chromeFile mirrors the trace-event JSON shape for parsing in tests.
type chromeFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args,omitempty"`
	} `json:"traceEvents"`
}

func TestWriteChromeParsesAndIsDeterministic(t *testing.T) {
	mk := func() *Timeline {
		tl := New(2, 32)
		tl.Rank(0).Span(LayerMPI, trace.Comm, "", "eager", 0, 100, Arg{Key: "dst", Val: "1"})
		tl.Rank(0).Span(LayerGPU, CostNone, "s0", "kernel", 50, 200)
		tl.Rank(0).Instant(LayerFusion, "", "flush", 300, Arg{Key: "pending", Val: "4"})
		tl.Rank(1).Span(LayerSim, CostNone, "sched", "sleep", 10, 90)
		return tl
	}
	var b1, b2 bytes.Buffer
	if err := mk().WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("WriteChrome must be byte-deterministic")
	}
	var cf chromeFile
	if err := json.Unmarshal(b1.Bytes(), &cf); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b1.String())
	}
	var spans, instants, metas int
	pids := map[int]bool{}
	for _, e := range cf.TraceEvents {
		pids[e.Pid] = true
		switch e.Ph {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			metas++
		default:
			t.Fatalf("unknown phase %q", e.Ph)
		}
	}
	if spans != 3 || instants != 1 {
		t.Fatalf("spans=%d instants=%d, want 3/1", spans, instants)
	}
	if !pids[0] || !pids[1] {
		t.Fatalf("want one pid per rank, got %v", pids)
	}
	if metas == 0 {
		t.Fatal("want process/thread metadata events")
	}
	// ns precision survives the µs encoding: 100ns span -> 0.100.
	if !bytes.Contains(b1.Bytes(), []byte(`"dur":0.100`)) {
		t.Fatalf("want ns-precise dur 0.100 in output:\n%s", b1.String())
	}
}

func TestCollectorMultipleTimelines(t *testing.T) {
	c := NewCollector()
	if !c.Empty() {
		t.Fatal("fresh collector must be empty")
	}
	t1 := New(1, 8)
	t1.Rank(0).Span(LayerMPI, trace.Comm, "", "a", 0, 10)
	t2 := New(1, 8)
	t2.Rank(0).Span(LayerMPI, trace.Comm, "", "b", 0, 10)
	c.Add("first", t1)
	c.Add("second", t2)
	c.Add("nil-ignored", nil)
	var b bytes.Buffer
	if err := c.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var cf chromeFile
	if err := json.Unmarshal(b.Bytes(), &cf); err != nil {
		t.Fatalf("collector output not valid JSON: %v", err)
	}
	names := map[string]bool{}
	pids := map[int]bool{}
	for _, e := range cf.TraceEvents {
		pids[e.Pid] = true
		if e.Name == "process_name" {
			if n, ok := e.Args["name"].(string); ok {
				names[n] = true
			}
		}
	}
	if !names["first/rank0"] || !names["second/rank0"] {
		t.Fatalf("want labeled process names, got %v", names)
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 distinct pids, got %v", pids)
	}
}

func TestWriteSummaryReconcilesWithSums(t *testing.T) {
	tl := New(1, 8)
	tl.Rank(0).Span(LayerMPI, trace.Comm, "", "a", 0, 123)
	tl.Rank(0).Span(LayerGPU, trace.PackKernel, "", "k", 0, 77)
	var b bytes.Buffer
	if err := tl.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	for _, want := range []string{"rank0", "total=200ns", "Comm=123ns/1", "(Un)Pack=77ns/1"} {
		if !bytes.Contains(b.Bytes(), []byte(want)) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
