package timeline

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/trace"
)

// Options configures timeline recording for a world/session.
type Options struct {
	// Capacity is the per-rank ring-buffer size in events
	// (<= 0 selects DefaultCapacity).
	Capacity int
}

// Timeline aggregates one Recorder per rank of a world, plus optional
// named auxiliary tracks (e.g. the fault injector's event log, which
// belongs to the fabric rather than to any rank).
type Timeline struct {
	recs       []*Recorder
	extras     []*Recorder
	extraNames []string
}

// New builds a Timeline with one enabled Recorder per rank.
func New(ranks, capacity int) *Timeline {
	t := &Timeline{recs: make([]*Recorder, ranks)}
	for i := range t.recs {
		t.recs[i] = NewRecorder(i, capacity)
	}
	return t
}

// Rank returns rank i's recorder. A nil Timeline (tracing disabled) or an
// out-of-range rank yields a nil — i.e. disabled — Recorder.
func (t *Timeline) Rank(i int) *Recorder {
	if t == nil || i < 0 || i >= len(t.recs) {
		return nil
	}
	return t.recs[i]
}

// Ranks reports the number of ranks.
func (t *Timeline) Ranks() int {
	if t == nil {
		return 0
	}
	return len(t.recs)
}

// ExtraTrack returns the named auxiliary recorder, creating it on first
// use. Nil Timeline yields a nil (disabled) Recorder. The recorder's rank
// is -1; it renders as its own process named after the track.
func (t *Timeline) ExtraTrack(name string, capacity int) *Recorder {
	if t == nil {
		return nil
	}
	for i, n := range t.extraNames {
		if n == name {
			return t.extras[i]
		}
	}
	r := NewRecorder(-1, capacity)
	t.extras = append(t.extras, r)
	t.extraNames = append(t.extraNames, name)
	return r
}

// Reset resets every rank's recorder and every auxiliary track.
func (t *Timeline) Reset() {
	if t == nil {
		return
	}
	for _, r := range t.recs {
		r.Reset()
	}
	for _, r := range t.extras {
		r.Reset()
	}
}

// WriteChrome emits the whole timeline as Chrome trace-event JSON
// (chrome://tracing, Perfetto): one process per rank, one thread per
// sub-track (cpu, sched, net, GPU streams). Output is deterministic —
// byte-identical across runs of the same simulation.
func (t *Timeline) WriteChrome(w io.Writer) error {
	c := &Collector{}
	c.Add("", t)
	return c.WriteChrome(w)
}

// WriteSummary emits the plain-text per-rank summary.
func (t *Timeline) WriteSummary(w io.Writer) error {
	c := &Collector{}
	c.Add("", t)
	return c.WriteSummary(w)
}

// Collector merges timelines from several worlds (a benchmark sweep runs one
// world per configuration) into a single trace, assigning globally unique
// pids and labeling each world's ranks with its label.
type Collector struct {
	labels []string
	tls    []*Timeline
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add registers a world's timeline under label. Nil timelines are ignored.
func (c *Collector) Add(label string, t *Timeline) {
	if t == nil {
		return
	}
	c.labels = append(c.labels, label)
	c.tls = append(c.tls, t)
}

// Empty reports whether anything was collected.
func (c *Collector) Empty() bool { return len(c.tls) == 0 }

func procName(label string, rank int) string {
	if label == "" {
		return fmt.Sprintf("rank%d", rank)
	}
	return fmt.Sprintf("%s/rank%d", label, rank)
}

// trackOrder lists a recorder's sub-tracks in order of first appearance,
// with "" (the rank's CPU thread) always first.
func trackOrder(rec *Recorder) []string {
	order := []string{""}
	seen := map[string]bool{"": true}
	for _, ev := range rec.Events() {
		if !seen[ev.Track] {
			seen[ev.Track] = true
			order = append(order, ev.Track)
		}
	}
	return order
}

// usFmt renders virtual ns as trace-event microseconds with ns precision.
func usFmt(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// WriteChrome emits all collected timelines as one Chrome trace-event JSON
// document. Deterministic: iteration follows insertion and event order only.
func (c *Collector) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if first {
			bw.WriteString("\n")
			first = false
		} else {
			bw.WriteString(",\n")
		}
		bw.WriteString(s)
	}
	pid := 0
	emitRec := func(rec *Recorder, pname string) {
		tracks := trackOrder(rec)
		tid := make(map[string]int, len(tracks))
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, strconv.Quote(pname)))
		emit(fmt.Sprintf(`{"name":"process_sort_index","ph":"M","pid":%d,"tid":0,"args":{"sort_index":%d}}`,
			pid, pid))
		for i, tr := range tracks {
			tid[tr] = i
			name := tr
			if name == "" {
				name = "cpu"
			}
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				pid, i, strconv.Quote(name)))
			emit(fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
				pid, i, i))
		}
		for _, ev := range rec.Events() {
			var args string
			if ev.Cost != CostNone {
				args = `"cost":` + strconv.Quote(ev.Cost.String())
			}
			for _, a := range ev.Args {
				if args != "" {
					args += ","
				}
				args += strconv.Quote(a.Key) + ":" + strconv.Quote(a.Val)
			}
			if args != "" {
				args = `,"args":{` + args + `}`
			}
			if ev.Dur == 0 {
				emit(fmt.Sprintf(`{"name":%s,"cat":"%s","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s%s}`,
					strconv.Quote(ev.Name), ev.Layer, pid, tid[ev.Track], usFmt(ev.Start), args))
				continue
			}
			emit(fmt.Sprintf(`{"name":%s,"cat":"%s","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s%s}`,
				strconv.Quote(ev.Name), ev.Layer, pid, tid[ev.Track], usFmt(ev.Start), usFmt(ev.Dur), args))
		}
		pid++
	}
	for wi, tl := range c.tls {
		for ri := 0; ri < tl.Ranks(); ri++ {
			emitRec(tl.Rank(ri), procName(c.labels[wi], ri))
		}
		for ei, rec := range tl.extras {
			emitRec(rec, extraName(c.labels[wi], tl.extraNames[ei]))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// extraName labels an auxiliary track's process.
func extraName(label, track string) string {
	if label == "" {
		return track
	}
	return label + "/" + track
}

// WriteSummary emits a plain-text per-rank account of where time went. The
// per-category sums come from Recorder.Sums, which accrues at emission and
// therefore reconciles exactly with the rank's trace.Breakdown regardless of
// ring eviction.
func (c *Collector) WriteSummary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	line := func(rec *Recorder, pname string) {
		b := rec.Sums()
		fmt.Fprintf(bw, "%s: total=%dns", pname, b.Total())
		for _, cat := range trace.Categories() {
			if v := b.Get(cat); v != 0 {
				fmt.Fprintf(bw, "  %s=%dns/%d", cat, v, rec.Count(cat))
			}
		}
		fmt.Fprintf(bw, "  events=%d dropped=%d\n", len(rec.Events()), rec.Dropped())
	}
	for wi, tl := range c.tls {
		for ri := 0; ri < tl.Ranks(); ri++ {
			line(tl.Rank(ri), procName(c.labels[wi], ri))
		}
		for ei, rec := range tl.extras {
			line(rec, extraName(c.labels[wi], tl.extraNames[ei]))
		}
	}
	return bw.Flush()
}
