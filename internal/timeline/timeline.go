// Package timeline records per-rank event traces on the deterministic
// virtual clock. Where internal/trace answers "how much time went to each
// cost category" (the paper's Fig. 11 breakdown), timeline answers *when* —
// every kernel launch, fused flush, rendezvous handshake, RDMA transfer, and
// scheduler sleep becomes a span with {rank, layer, category, name, start,
// duration, args}.
//
// The recorder is designed for a zero-cost disabled path: a nil *Recorder is
// a valid, fully disabled recorder, every method is a nil-safe no-op, and
// instrumentation sites guard any allocation (name formatting, arg
// construction) behind an explicit nil check. Memory is bounded by a ring
// buffer; cost sums are accumulated at emit time and survive ring eviction,
// so the per-category totals always reconcile with trace.Breakdown even when
// old events have been dropped.
package timeline

import (
	"repro/internal/trace"
)

// Layer identifies which simulation subsystem emitted an event.
type Layer uint8

const (
	// LayerSim is the discrete-event kernel: proc lifetimes, sleeps, waits.
	LayerSim Layer = iota
	// LayerGPU is the device model: kernels, copies, stream/event waits.
	LayerGPU
	// LayerMPI is the message runtime: eager/rendezvous protocol phases,
	// progress-engine polls, pipeline chunks.
	LayerMPI
	// LayerFusion is the dynamic kernel-fusion scheduler: enqueues,
	// threshold trips, flushes.
	LayerFusion
	// LayerFault is the fault injector and reliability layer: injected
	// drops/flaps/corruptions and the recovery actions (timeouts,
	// retransmissions, fallbacks) they trigger.
	LayerFault
	// LayerFailure is the rank-failure tolerance machinery: crashes,
	// heartbeat detections, communicator revoke/shrink/agree.
	LayerFailure
	// LayerColl is the collective-communication engine: per-collective
	// windows, schedule passes, and phase markers.
	LayerColl
	// LayerRMA is the one-sided backend: symmetric-heap windows, put/get
	// doorbells, wire legs, signal waits, and quiet/fence polls.
	LayerRMA

	numLayers
)

var layerNames = [numLayers]string{"sim", "gpu", "mpi", "fusion", "fault", "failure", "coll", "rma"}

func (l Layer) String() string {
	if l >= numLayers {
		return "layer?"
	}
	return layerNames[l]
}

// CostNone marks an event that carries no Breakdown cost — a machine-view
// span (GPU stream occupancy, wire time) or a protocol marker. Events with
// Cost != CostNone mirror exactly one trace.Breakdown.Add call; summing their
// durations per category reproduces the breakdown.
const CostNone trace.Category = -1

// Arg is one key/value annotation on an event.
type Arg struct {
	Key string
	Val string
}

// Event is one recorded span (Dur > 0) or instant (Dur == 0).
type Event struct {
	Layer Layer
	// Cost is the Breakdown category this event's duration was charged to,
	// or CostNone for machine-view/protocol events.
	Cost  trace.Category
	Track string // sub-track within the rank: "" = cpu, else stream/net/sched
	Name  string
	Start int64 // virtual ns
	Dur   int64 // virtual ns
	Args  []Arg
}

// End returns the event's end time.
func (e Event) End() int64 { return e.Start + e.Dur }

// DefaultCapacity bounds the ring buffer when the caller doesn't choose.
const DefaultCapacity = 1 << 16

// Recorder collects events for one rank. A nil Recorder is disabled: every
// method no-ops, costs nothing, and allocates nothing.
type Recorder struct {
	rank    int
	max     int
	buf     []Event // grows to max, then becomes a ring
	head    int     // oldest element once len(buf) == max
	last    int     // index of most recently written event, -1 if none
	dropped int64
	sums    []int64 // per-category emitted cost, never evicted
	counts  []int64 // per-category event counts, never evicted
}

// NewRecorder builds an enabled recorder for rank with the given ring
// capacity (<= 0 selects DefaultCapacity).
func NewRecorder(rank, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		rank:   rank,
		max:    capacity,
		last:   -1,
		sums:   make([]int64, trace.NumCategories()),
		counts: make([]int64, trace.NumCategories()),
	}
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Rank returns the rank this recorder belongs to.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// Span records an event. Consecutive events with identical layer, cost,
// track, and name that abut exactly (prev end == next start) and carry no
// args are coalesced into one span — this keeps progress-engine poll loops
// from flooding the ring — but their cost still accrues per emission, so
// Sums stays exact.
func (r *Recorder) Span(layer Layer, cost trace.Category, track, name string, start, dur int64, args ...Arg) {
	if r == nil {
		return
	}
	if dur < 0 {
		panic("timeline: negative duration for " + name)
	}
	if cost >= 0 {
		if int(cost) >= len(r.sums) {
			panic("timeline: bad cost category for " + name)
		}
		r.sums[cost] += dur
		r.counts[cost]++
	}
	if len(args) == 0 && r.last >= 0 {
		le := &r.buf[r.last]
		if le.Layer == layer && le.Cost == cost && le.Track == track &&
			le.Name == name && len(le.Args) == 0 && le.End() == start && dur > 0 {
			le.Dur += dur
			return
		}
	}
	ev := Event{Layer: layer, Cost: cost, Track: track, Name: name, Start: start, Dur: dur, Args: args}
	if len(r.buf) < r.max {
		r.buf = append(r.buf, ev)
		r.last = len(r.buf) - 1
		return
	}
	// Ring is full: overwrite the oldest.
	r.buf[r.head] = ev
	r.last = r.head
	r.head++
	if r.head == r.max {
		r.head = 0
	}
	r.dropped++
}

// Instant records a zero-duration marker.
func (r *Recorder) Instant(layer Layer, track, name string, at int64, args ...Arg) {
	if r == nil {
		return
	}
	r.Span(layer, CostNone, track, name, at, 0, args...)
}

// Events returns the retained events in emission order. The slice aliases
// internal storage only when no eviction has occurred; treat it as read-only.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if len(r.buf) < r.max || r.head == 0 {
		return r.buf
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Dropped reports how many events were evicted from the ring.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Sums returns the per-category cost totals across every emitted event —
// including evicted ones — as a Breakdown. By construction this equals the
// rank's trace.Breakdown for all instrumented charges.
func (r *Recorder) Sums() *trace.Breakdown {
	b := &trace.Breakdown{}
	if r == nil {
		return b
	}
	for i, v := range r.sums {
		b.Add(trace.Category(i), v)
	}
	return b
}

// Count reports how many cost-carrying events were emitted for category c.
func (r *Recorder) Count(c trace.Category) int64 {
	if r == nil || c < 0 || int(c) >= len(r.counts) {
		return 0
	}
	return r.counts[c]
}

// Reset discards all recorded events and zeroes the cost sums. Callers that
// reset a paired trace.Breakdown (benchmark warmup) must reset the recorder
// too, or reconciliation breaks.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.buf = r.buf[:0]
	r.head = 0
	r.last = -1
	r.dropped = 0
	for i := range r.sums {
		r.sums[i] = 0
		r.counts[i] = 0
	}
}
