// Package pack implements the datatype-processing engines that move
// non-contiguous GPU-resident data: GPU packing/unpacking kernels (one
// kernel per operation, or folded into fused kernels), the CPU GDRCopy
// path used by the CPU-GPU-Hybrid baseline, and DirectIPC — the zero-copy
// non-contiguous transfer over NVLink of Chu et al. (HiPC 2019) that the
// fusion framework supports as a third request operation.
//
// A Job carries both the cost-model inputs (bytes, segments) and the real
// buffers, so executing a job actually moves bytes.
package pack

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// Op is the requested operation, matching the request types of the paper's
// Section IV-A1.
type Op int

const (
	// OpPack gathers a non-contiguous origin into a contiguous target.
	OpPack Op = iota
	// OpUnpack scatters a contiguous origin into a non-contiguous
	// target.
	OpUnpack
	// OpDirectIPC streams a non-contiguous origin directly into a
	// (possibly non-contiguous) peer-GPU target without staging.
	OpDirectIPC
)

func (o Op) String() string {
	switch o {
	case OpPack:
		return "Pack"
	case OpUnpack:
		return "Unpack"
	default:
		return "DirectIPC"
	}
}

// Job is one datatype-processing operation over real buffers.
type Job struct {
	Op Op
	// Origin and Target follow the request-object naming of the paper:
	// Origin is the buffer read, Target the buffer written.
	Origin, Target *gpu.Buffer
	// OriginOff/TargetOff shift the contiguous side (packed buffers are
	// often suballocated from a staging pool).
	OriginOff, TargetOff int64
	// Blocks is the non-contiguous block list: the origin's layout for
	// OpPack/OpDirectIPC, the target's for OpUnpack.
	Blocks []datatype.Block
	// TargetBlocks is the destination layout for OpDirectIPC only; nil
	// means same layout as Blocks.
	TargetBlocks []datatype.Block
	// Plan is the compiled pack routine for Blocks' canonical form, when
	// the owning rank's layout cache has one (OpPack/OpUnpack only; nil
	// falls back to the legacy block-list loops). Plans change host
	// execution speed only — Bytes/Segments/MaxBlock stay block-derived,
	// so kernel specs and virtual-time charges are identical either way.
	Plan *datatype.Plan
	// Aggregates for the cost model.
	Bytes    int64
	Segments int
	MaxBlock int64
	// PeerBWBytesPerNs and PeerLatencyNs describe the GPU-GPU link a
	// DirectIPC job crosses (zero for pack/unpack).
	PeerBWBytesPerNs float64
	PeerLatencyNs    int64
}

// NewJob builds a job from a flattened block list, computing aggregates.
func NewJob(op Op, origin, target *gpu.Buffer, blocks []datatype.Block) *Job {
	j := &Job{Op: op, Origin: origin, Target: target, Blocks: blocks, Segments: len(blocks)}
	for _, b := range blocks {
		j.Bytes += b.Len
		if b.Len > j.MaxBlock {
			j.MaxBlock = b.Len
		}
	}
	return j
}

// Execute performs the byte movement. It is designed to run as a kernel's
// Exec callback (scheduler context) but is also usable directly for
// CPU-driven packing. When either buffer is lazy the per-block copies go
// through gpu.CopyRange (span bookkeeping instead of real bytes); the
// byte-exact fast paths are untouched when both buffers are real.
func (j *Job) Execute() {
	lazy := j.Origin.IsLazy() || j.Target.IsLazy()
	switch j.Op {
	case OpPack:
		if lazy {
			w := j.TargetOff
			if j.Plan != nil {
				// Lazy-aware plan variant: iterate the compiled runs
				// and emit the same span sequence as the block list.
				j.Plan.Canon.EachBlock(func(off, n int64) {
					gpu.CopyRange(j.Target, w, j.Origin, off, n)
					w += n
				})
				return
			}
			for _, b := range j.Blocks {
				gpu.CopyRange(j.Target, w, j.Origin, b.Offset, b.Len)
				w += b.Len
			}
			return
		}
		if j.Plan != nil {
			j.Plan.Pack(j.Origin.Data, j.Target.Data[j.TargetOff:])
			return
		}
		gather(j.Origin.Data, j.Blocks, j.Target.Data[j.TargetOff:])
	case OpUnpack:
		if lazy {
			r := j.OriginOff
			if j.Plan != nil {
				j.Plan.Canon.EachBlock(func(off, n int64) {
					gpu.CopyRange(j.Target, off, j.Origin, r, n)
					r += n
				})
				return
			}
			for _, b := range j.Blocks {
				gpu.CopyRange(j.Target, b.Offset, j.Origin, r, b.Len)
				r += b.Len
			}
			return
		}
		if j.Plan != nil {
			j.Plan.Unpack(j.Origin.Data[j.OriginOff:], j.Target.Data)
			return
		}
		scatter(j.Origin.Data[j.OriginOff:], j.Target.Data, j.Blocks)
	case OpDirectIPC:
		dstBlocks := j.TargetBlocks
		if dstBlocks == nil {
			dstBlocks = j.Blocks
		}
		if lazy {
			lazyCopyBlocks(j.Origin, j.Blocks, j.Target, dstBlocks)
			return
		}
		copyBlocks(j.Origin.Data, j.Blocks, j.Target.Data, dstBlocks)
	default:
		panic(fmt.Sprintf("pack: unknown op %d", j.Op))
	}
}

// gather packs src's blocks into contiguous dst.
func gather(src []byte, blocks []datatype.Block, dst []byte) {
	var w int64
	for _, b := range blocks {
		copy(dst[w:w+b.Len], src[b.Offset:b.Offset+b.Len])
		w += b.Len
	}
}

// scatter unpacks contiguous src into dst's blocks.
func scatter(src []byte, dst []byte, blocks []datatype.Block) {
	var r int64
	for _, b := range blocks {
		copy(dst[b.Offset:b.Offset+b.Len], src[r:r+b.Len])
		r += b.Len
	}
}

// copyBlocks streams srcBlocks of src into dstBlocks of dst; the two block
// lists must cover the same number of bytes but may be cut differently.
func copyBlocks(src []byte, srcBlocks []datatype.Block, dst []byte, dstBlocks []datatype.Block) {
	si, di := 0, 0
	var so, do int64
	for si < len(srcBlocks) && di < len(dstBlocks) {
		sb, db := srcBlocks[si], dstBlocks[di]
		n := sb.Len - so
		if rem := db.Len - do; rem < n {
			n = rem
		}
		copy(dst[db.Offset+do:db.Offset+do+n], src[sb.Offset+so:sb.Offset+so+n])
		so += n
		do += n
		if so == sb.Len {
			si, so = si+1, 0
		}
		if do == db.Len {
			di, do = di+1, 0
		}
	}
	if si < len(srcBlocks) || di < len(dstBlocks) {
		panic("pack: block lists cover different byte counts")
	}
}

// lazyCopyBlocks is copyBlocks over gpu.CopyRange, for when either side is
// a lazy buffer.
func lazyCopyBlocks(src *gpu.Buffer, srcBlocks []datatype.Block, dst *gpu.Buffer, dstBlocks []datatype.Block) {
	si, di := 0, 0
	var so, do int64
	for si < len(srcBlocks) && di < len(dstBlocks) {
		sb, db := srcBlocks[si], dstBlocks[di]
		n := sb.Len - so
		if rem := db.Len - do; rem < n {
			n = rem
		}
		gpu.CopyRange(dst, db.Offset+do, src, sb.Offset+so, n)
		so += n
		do += n
		if so == sb.Len {
			si, so = si+1, 0
		}
		if do == db.Len {
			di, do = di+1, 0
		}
	}
	if si < len(srcBlocks) || di < len(dstBlocks) {
		panic("pack: block lists cover different byte counts")
	}
}

// KernelSpec converts the job into a single-kernel launch description.
func (j *Job) KernelSpec() gpu.KernelSpec {
	return gpu.KernelSpec{
		Name:            j.Op.String(),
		Bytes:           j.Bytes,
		Segments:        j.Segments,
		MaxSegmentBytes: j.MaxBlock,
		MinDurationNs:   j.ipcFloor(),
		Exec:            j.Execute,
	}
}

// FusedWork converts the job into a fused-kernel request; onComplete is the
// GPU-side response-status update.
func (j *Job) FusedWork(name string, onComplete func(end int64)) gpu.FusedWork {
	return gpu.FusedWork{
		Name:            name,
		Bytes:           j.Bytes,
		Segments:        j.Segments,
		MaxSegmentBytes: j.MaxBlock,
		MinDurationNs:   j.ipcFloor(),
		Exec:            j.Execute,
		OnComplete:      onComplete,
	}
}

// ipcFloor returns the GPU-GPU link crossing time for DirectIPC jobs.
func (j *Job) ipcFloor() int64 {
	if j.Op != OpDirectIPC || j.PeerBWBytesPerNs <= 0 {
		return 0
	}
	return j.PeerLatencyNs + int64(float64(j.Bytes)/j.PeerBWBytesPerNs)
}

// GPUEngine launches one kernel per job on a dedicated stream — the
// GPU-Sync / GPU-Async building block.
type GPUEngine struct {
	Stream *gpu.Stream
}

// Run launches the job's kernel; the caller pays launch overhead and
// receives the completion handle.
func (e *GPUEngine) Run(p *sim.Proc, j *Job) *gpu.Completion {
	return e.Stream.Launch(p, j.KernelSpec())
}

// CPUEngine packs/unpacks on the host CPU through a GDRCopy-style mapped
// window: the calling proc blocks for the whole operation (it IS the copy
// loop), but there is zero driver involvement — no launch, no sync.
type CPUEngine struct {
	Dev *gpu.Device
}

// CostNs models the CPU copy loop duration for a job.
func (e *CPUEngine) CostNs(j *Job) int64 {
	a := e.Dev.Arch
	return a.GdrCopyLatencyNs +
		int64(a.GdrSegmentFixedNs*float64(j.Segments)) +
		int64(float64(j.Bytes)/a.GdrCopyBWBytesPerNs)
}

// Run performs the job synchronously on the calling proc.
func (e *CPUEngine) Run(p *sim.Proc, j *Job) {
	p.Sleep(e.CostNs(j))
	j.Execute()
}
