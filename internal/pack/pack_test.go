package pack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func newDev() (*sim.Env, *gpu.Device) {
	env := sim.NewEnv()
	return env, gpu.NewDevice(env, cluster.VoltaV100NVLink(), 0, 0)
}

func fillPattern(b *gpu.Buffer, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Read(b.Data)
}

func TestNewJobAggregates(t *testing.T) {
	_, d := newDev()
	l := datatype.Commit(datatype.Vector(4, 2, 5, datatype.Float64))
	src := d.Alloc("src", int(l.ExtentBytes))
	dst := d.Alloc("dst", int(l.SizeBytes))
	j := NewJob(OpPack, src, dst, l.Blocks)
	if j.Bytes != l.SizeBytes || j.Segments != 4 || j.MaxBlock != 16 {
		t.Fatalf("aggregates wrong: %+v", j)
	}
}

func TestPackExecuteGathers(t *testing.T) {
	_, d := newDev()
	l := datatype.Commit(datatype.Indexed([]int{2, 1, 3}, []int{0, 4, 8}, datatype.Float64))
	src := d.Alloc("src", int(l.ExtentBytes))
	dst := d.Alloc("dst", int(l.SizeBytes))
	fillPattern(src, 1)
	NewJob(OpPack, src, dst, l.Blocks).Execute()
	ref := make([]byte, l.SizeBytes)
	l.Pack(src.Data, ref)
	if !bytes.Equal(dst.Data, ref) {
		t.Fatal("gather result differs from reference Pack")
	}
}

func TestUnpackExecuteScatters(t *testing.T) {
	_, d := newDev()
	l := datatype.Commit(datatype.Vector(3, 2, 4, datatype.Int32))
	packed := d.Alloc("packed", int(l.SizeBytes))
	dst := d.Alloc("dst", int(l.ExtentBytes))
	fillPattern(packed, 2)
	NewJob(OpUnpack, packed, dst, l.Blocks).Execute()
	ref := make([]byte, l.ExtentBytes)
	l.Unpack(packed.Data, ref)
	if !bytes.Equal(dst.Data, ref) {
		t.Fatal("scatter result differs from reference Unpack")
	}
}

func TestPackWithTargetOffset(t *testing.T) {
	_, d := newDev()
	l := datatype.Commit(datatype.Vector(2, 1, 2, datatype.Byte))
	src := d.Alloc("src", int(l.ExtentBytes))
	dst := d.Alloc("dst", 16)
	src.Data[0], src.Data[2] = 0xAA, 0xBB
	j := NewJob(OpPack, src, dst, l.Blocks)
	j.TargetOff = 8
	j.Execute()
	if dst.Data[8] != 0xAA || dst.Data[9] != 0xBB {
		t.Fatalf("offset pack wrong: %v", dst.Data)
	}
}

func TestUnpackWithOriginOffset(t *testing.T) {
	_, d := newDev()
	l := datatype.Commit(datatype.Vector(2, 1, 2, datatype.Byte))
	packed := d.Alloc("packed", 16)
	dst := d.Alloc("dst", int(l.ExtentBytes))
	packed.Data[4], packed.Data[5] = 0x11, 0x22
	j := NewJob(OpUnpack, packed, dst, l.Blocks)
	j.OriginOff = 4
	j.Execute()
	if dst.Data[0] != 0x11 || dst.Data[2] != 0x22 {
		t.Fatalf("offset unpack wrong: %v", dst.Data)
	}
}

func TestDirectIPCDifferentLayouts(t *testing.T) {
	_, d := newDev()
	// Source: two blocks of 3; destination: three blocks of 2.
	src := d.Alloc("src", 32)
	dst := d.Alloc("dst", 32)
	for i := range src.Data {
		src.Data[i] = byte(i)
	}
	j := NewJob(OpDirectIPC, src, dst, []datatype.Block{{Offset: 0, Len: 3}, {Offset: 10, Len: 3}})
	j.TargetBlocks = []datatype.Block{{Offset: 0, Len: 2}, {Offset: 8, Len: 2}, {Offset: 16, Len: 2}}
	j.Execute()
	want := []byte{0, 1, 2, 10, 11, 12}
	got := []byte{dst.Data[0], dst.Data[1], dst.Data[8], dst.Data[9], dst.Data[16], dst.Data[17]}
	if !bytes.Equal(got, want) {
		t.Fatalf("IPC copy got %v want %v", got, want)
	}
}

func TestDirectIPCMismatchedBytesPanics(t *testing.T) {
	_, d := newDev()
	src := d.Alloc("src", 32)
	dst := d.Alloc("dst", 32)
	j := NewJob(OpDirectIPC, src, dst, []datatype.Block{{Offset: 0, Len: 4}})
	j.TargetBlocks = []datatype.Block{{Offset: 0, Len: 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	j.Execute()
}

func TestKernelSpecCarriesIPCFloor(t *testing.T) {
	_, d := newDev()
	src := d.Alloc("src", 1<<20)
	dst := d.Alloc("dst", 1<<20)
	j := NewJob(OpDirectIPC, src, dst, []datatype.Block{{Offset: 0, Len: 1 << 20}})
	j.PeerBWBytesPerNs = 50
	j.PeerLatencyNs = 700
	spec := j.KernelSpec()
	wantFloor := int64(700 + (1<<20)/50)
	if spec.MinDurationNs != wantFloor {
		t.Fatalf("floor = %d, want %d", spec.MinDurationNs, wantFloor)
	}
	// Pack jobs have no floor.
	if NewJob(OpPack, src, dst, []datatype.Block{{Offset: 0, Len: 64}}).KernelSpec().MinDurationNs != 0 {
		t.Fatal("pack job must not carry an IPC floor")
	}
}

func TestGPUEngineMovesBytesAtKernelCompletion(t *testing.T) {
	env, d := newDev()
	e := &GPUEngine{Stream: d.NewStream("pack")}
	l := datatype.Commit(datatype.Vector(8, 4, 8, datatype.Float32))
	src := d.Alloc("src", int(l.ExtentBytes))
	dst := d.Alloc("dst", int(l.SizeBytes))
	fillPattern(src, 3)
	env.Spawn("host", func(p *sim.Proc) {
		c := e.Run(p, NewJob(OpPack, src, dst, l.Blocks))
		if c.Done() {
			t.Error("kernel retired instantly")
		}
		e.Stream.Synchronize(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	ref := make([]byte, l.SizeBytes)
	l.Pack(src.Data, ref)
	if !bytes.Equal(dst.Data, ref) {
		t.Fatal("GPU engine pack wrong")
	}
}

func TestCPUEngineBlocksForCostAndMoves(t *testing.T) {
	env, d := newDev()
	e := &CPUEngine{Dev: d}
	l := datatype.Commit(datatype.Vector(4, 2, 4, datatype.Float64))
	src := d.Alloc("src", int(l.ExtentBytes))
	dst := d.Alloc("dst", int(l.SizeBytes))
	fillPattern(src, 4)
	j := NewJob(OpPack, src, dst, l.Blocks)
	var took int64
	env.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		e.Run(p, j)
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if took != e.CostNs(j) {
		t.Fatalf("blocked %dns, want %dns", took, e.CostNs(j))
	}
	ref := make([]byte, l.SizeBytes)
	l.Pack(src.Data, ref)
	if !bytes.Equal(dst.Data, ref) {
		t.Fatal("CPU engine pack wrong")
	}
	if d.Stats.KernelLaunches != 0 {
		t.Fatal("CPU engine must not touch the GPU driver")
	}
}

func TestCPUBeatsGPUForTinyDenseAndLosesForLarge(t *testing.T) {
	// The hybrid baseline's rationale (paper Fig. 10): GDRCopy wins for
	// small dense layouts because it skips launch+sync, loses at scale
	// because its bandwidth is tiny.
	_, d := newDev()
	cpu := &CPUEngine{Dev: d}
	small := &Job{Op: OpPack, Bytes: 4 << 10, Segments: 8, MaxBlock: 512}
	gpuSmall := d.EstimateKernelNs(small.Bytes, small.Segments, small.MaxBlock) +
		d.Arch.LaunchOverheadNs + d.Arch.StreamSyncBaseNs
	if cpu.CostNs(small) >= gpuSmall {
		t.Fatalf("CPU small (%d) should beat GPU small (%d)", cpu.CostNs(small), gpuSmall)
	}
	large := &Job{Op: OpPack, Bytes: 8 << 20, Segments: 64, MaxBlock: 128 << 10}
	gpuLarge := d.EstimateKernelNs(large.Bytes, large.Segments, large.MaxBlock) +
		d.Arch.LaunchOverheadNs + d.Arch.StreamSyncBaseNs
	if cpu.CostNs(large) <= gpuLarge {
		t.Fatalf("CPU large (%d) should lose to GPU large (%d)", cpu.CostNs(large), gpuLarge)
	}
}

// Property: pack followed by unpack through jobs restores all covered bytes
// for arbitrary vector shapes.
func TestPropertyJobRoundTrip(t *testing.T) {
	f := func(count, blocklen, extra uint8, seed int64) bool {
		c := int(count%16) + 1
		bl := int(blocklen%8) + 1
		st := bl + int(extra%8)
		l := datatype.Commit(datatype.Vector(c, bl, st, datatype.Float32))
		_, d := newDev()
		src := d.Alloc("src", int(l.ExtentBytes))
		packed := d.Alloc("packed", int(l.SizeBytes))
		out := d.Alloc("out", int(l.ExtentBytes))
		fillPattern(src, seed)
		NewJob(OpPack, src, packed, l.Blocks).Execute()
		NewJob(OpUnpack, packed, out, l.Blocks).Execute()
		for _, b := range l.Blocks {
			if !bytes.Equal(out.Data[b.Offset:b.Offset+b.Len], src.Data[b.Offset:b.Offset+b.Len]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: copyBlocks is a permutation-preserving stream copy — the
// concatenated payload read equals the concatenated payload written — for
// random compatible cuts.
func TestPropertyCopyBlocksStreamEquality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := rng.Intn(200) + 1
		cut := func() []datatype.Block {
			var blocks []datatype.Block
			var off int64
			rem := total
			for rem > 0 {
				n := rng.Intn(rem) + 1
				blocks = append(blocks, datatype.Block{Offset: off, Len: int64(n)})
				off += int64(n) + int64(rng.Intn(5))
				rem -= n
			}
			return blocks
		}
		srcBlocks, dstBlocks := cut(), cut()
		need := func(blocks []datatype.Block) int {
			var max int64
			for _, b := range blocks {
				if end := b.Offset + b.Len; end > max {
					max = end
				}
			}
			return int(max)
		}
		src := make([]byte, need(srcBlocks))
		dst := make([]byte, need(dstBlocks))
		rng.Read(src)
		copyBlocks(src, srcBlocks, dst, dstBlocks)
		read := make([]byte, 0, total)
		for _, b := range srcBlocks {
			read = append(read, src[b.Offset:b.Offset+b.Len]...)
		}
		written := make([]byte, 0, total)
		for _, b := range dstBlocks {
			written = append(written, dst[b.Offset:b.Offset+b.Len]...)
		}
		return bytes.Equal(read, written)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
