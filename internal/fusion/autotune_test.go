package fusion

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestPredictThresholdInBounds(t *testing.T) {
	for _, arch := range cluster.FigureOneArchs() {
		for _, in := range []ModelInput{
			{AvgRequestBytes: 4 << 10, AvgSegments: 2000, NetBWBytesPerNs: 25},  // very sparse
			{AvgRequestBytes: 64 << 10, AvgSegments: 64, NetBWBytesPerNs: 25},   // dense
			{AvgRequestBytes: 1 << 20, AvgSegments: 256, NetBWBytesPerNs: 25},   // large dense
			{AvgRequestBytes: 32 << 10, AvgSegments: 4096, NetBWBytesPerNs: 25}, // paper sparse
		} {
			th := PredictThreshold(arch, in)
			if th < minThreshold || th > maxThreshold {
				t.Errorf("%s %+v: threshold %d out of bounds", arch.Name, in, th)
			}
			if th&(th-1) != 0 {
				t.Errorf("threshold %d not a power of two", th)
			}
		}
	}
}

func TestPredictThresholdSparserNeedsLess(t *testing.T) {
	// Sparse requests have higher per-byte kernel cost, so fewer bytes
	// already outweigh the launch overhead: the predicted threshold must
	// not be larger than for dense traffic.
	arch := cluster.VoltaV100NVLink()
	sparse := PredictThreshold(arch, ModelInput{AvgRequestBytes: 32 << 10, AvgSegments: 8192, NetBWBytesPerNs: 25})
	dense := PredictThreshold(arch, ModelInput{AvgRequestBytes: 32 << 10, AvgSegments: 16, NetBWBytesPerNs: 25})
	if sparse > dense {
		t.Fatalf("sparse threshold %d > dense %d", sparse, dense)
	}
}

func TestPredictThresholdDegenerateInput(t *testing.T) {
	th := PredictThreshold(cluster.VoltaV100NVLink(), ModelInput{})
	if th != 512<<10 {
		t.Fatalf("degenerate input should return the paper default, got %d", th)
	}
}

func TestAutoTunerStartsNearInitial(t *testing.T) {
	tuner := NewAutoTuner(500 << 10)
	if got := tuner.Threshold(); got != 512<<10 {
		t.Fatalf("start = %d, want 512KB", got)
	}
	tuner = NewAutoTuner(1)
	if got := tuner.Threshold(); got != minThreshold {
		t.Fatalf("start = %d, want min", got)
	}
}

func TestAutoTunerClimbsTowardOptimum(t *testing.T) {
	// Synthetic objective: per-byte latency is minimized at 256 KiB;
	// feed the tuner latencies derived from its own current threshold
	// and check it converges near the optimum.
	tuner := NewAutoTuner(16 << 10)
	tuner.Window = 4
	cost := func(th int64) int64 {
		// V-shaped objective around 256 KiB (per-request latency).
		d := th - 256<<10
		if d < 0 {
			d = -d
		}
		return 10_000 + d/16
	}
	for round := 0; round < 60; round++ {
		th := tuner.Threshold()
		for i := 0; i < tuner.Window; i++ {
			tuner.Record(cost(th), 32<<10)
		}
	}
	got := tuner.Threshold()
	if got < 128<<10 || got > 512<<10 {
		t.Fatalf("tuner settled at %d, want near 256KB", got)
	}
	if tuner.Moves == 0 {
		t.Fatal("tuner never moved")
	}
}

func TestAutoTunerStaysInLadder(t *testing.T) {
	f := func(latencies []uint32) bool {
		tuner := NewAutoTuner(64 << 10)
		tuner.Window = 2
		for _, l := range latencies {
			tuner.Record(int64(l%1_000_000)+1, 4096)
			th := tuner.Threshold()
			if th < minThreshold || th > maxThreshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerAutoTuneAdjustsThreshold(t *testing.T) {
	env, dev, s := newSched(Config{ThresholdBytes: 16 << 10})
	tuner := NewAutoTuner(16 << 10)
	tuner.Window = 8
	s.EnableAutoTune(tuner)
	if s.Config().ThresholdBytes != tuner.Threshold() {
		t.Fatal("EnableAutoTune must adopt the tuner's threshold")
	}
	env.Spawn("pe", func(p *sim.Proc) {
		for round := 0; round < 10; round++ {
			var uids []int64
			for i := 0; i < 8; i++ {
				j, _ := mkPackJob(dev, int64(round*10+i), 200, 1)
				uids = append(uids, s.Enqueue(p, j))
			}
			s.Flush(p)
			for _, u := range uids {
				if ev := s.DoneEvent(u); ev != nil {
					p.Wait(ev)
				}
				s.Release(u)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if tuner.Moves == 0 {
		t.Fatal("tuner never moved under live traffic")
	}
	if s.Config().ThresholdBytes != tuner.Threshold() {
		t.Fatal("scheduler threshold out of sync with tuner")
	}
}
