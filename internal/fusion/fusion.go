// Package fusion implements the paper's primary contribution: a dynamic
// kernel-fusion framework for bulk non-contiguous data transfer (Section
// IV). It provides
//
//   - a circular request list whose entries carry a UID, the requested
//     operation (Pack / Unpack / DirectIPC), origin and target buffers, the
//     cached data layout, and separate request/response status words
//     (Section IV-A1);
//   - a scheduler with the four functions of Fig. 5 — ① enqueue requests
//     from the progress engine, ② launch a fused kernel with the pending
//     request array, ③ accept per-request completion signals written by
//     the GPU (no kernel-boundary synchronization), and ④ answer status
//     queries from the progress engine;
//   - flush policies implementing the design considerations of Section
//     IV-C: launch when the progress engine reaches a synchronization point
//     (explicit Flush), or when enough work has accumulated that the fused
//     kernel outweighs its launch overhead (bytes threshold / request cap).
package fusion

import (
	"fmt"
	"strconv"

	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/pack"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// Status is a request-list status word. The scheduler owns the request
// status; only the GPU (the fused kernel's completion path) writes the
// response status.
type Status int

const (
	// StatusIdle marks a free request-list entry.
	StatusIdle Status = iota
	// StatusPending marks an enqueued entry not yet in a fused kernel.
	StatusPending
	// StatusBusy marks an entry inside an in-flight fused kernel.
	StatusBusy
	// StatusCompleted marks a finished entry (response side).
	StatusCompleted
)

func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "IDLE"
	case StatusPending:
		return "PENDING"
	case StatusBusy:
		return "BUSY"
	default:
		return "COMPLETED"
	}
}

// ErrQueueFull is the sentinel UID returned by Enqueue when the request
// list has no free entry; the progress engine must fall back (paper:
// "the UID can be a negative number to notify the progress engine").
const ErrQueueFull int64 = -1

// Config tunes the scheduler.
type Config struct {
	// QueueCapacity is the circular request-list size.
	QueueCapacity int
	// ThresholdBytes triggers a fused launch once pending payload
	// reaches it. The paper's heuristic lands around 512 KiB on both
	// evaluation systems; too low under-fuses (launch storms), too high
	// over-fuses (delayed communication, lost overlap).
	ThresholdBytes int64
	// MaxPending, if positive, triggers a fused launch once that many
	// requests are pending regardless of bytes.
	MaxPending int
	// EnqueueCostNs and QueryCostNs are the CPU costs of scheduler
	// interactions (the paper reports total scheduling overhead of at
	// most ~2 µs per message).
	EnqueueCostNs int64
	QueryCostNs   int64
	// LaunchRetries bounds retries of a failed (fused or unfused) kernel
	// launch under a GPU fault plan before the scheduler degrades — a
	// failed fused batch is re-issued as unfused per-request launches;
	// a request whose unfused launches also exhaust retries fails with a
	// typed error surfaced through Done. Zero selects the default (3).
	// Irrelevant without fault injection: launches then never fail.
	LaunchRetries int
}

// DefaultConfig mirrors the tuned settings used for "Proposed-Tuned".
func DefaultConfig() Config {
	return Config{
		QueueCapacity:  512,
		ThresholdBytes: 512 << 10,
		MaxPending:     0,
		EnqueueCostNs:  350,
		QueryCostNs:    60,
		LaunchRetries:  3,
	}
}

// Stats counts scheduler activity.
type Stats struct {
	Enqueued         int64
	Rejected         int64 // queue-full fallbacks
	FusedLaunches    int64
	FusedRequests    int64
	ThresholdFlushes int64
	CapFlushes       int64
	ExplicitFlushes  int64
	EmptyFlushes     int64
	WindowFlushes    int64 // launches triggered by CloseWindow
	HeldFlushes      int64 // flush triggers suppressed by an open window
	MaxBatch         int
	// Fault-recovery counters (all zero without a GPU fault plan).
	FailedLaunches    int64 // kernel launches that returned ErrLaunchFailed
	DegradedBatches   int64 // fused batches re-issued as unfused launches
	UnfusedRecoveries int64 // requests recovered by an unfused launch
	FailedRequests    int64 // requests that failed even unfused
}

// entry is one request-list slot.
type entry struct {
	uid        int64
	job        *pack.Job
	reqStatus  Status
	respStatus Status
	enqueuedAt int64
	doneAt     int64
	doneEv     *sim.Event
	// err marks a permanently failed request (degraded launch also
	// exhausted its retries); surfaced through Done.
	err error
}

// Scheduler is the fusion scheduler of Fig. 5. One scheduler serves one
// GPU; in this implementation it runs on the caller's (progress engine's)
// proc, the common deployment the paper evaluates.
type Scheduler struct {
	env    *sim.Env
	dev    *gpu.Device
	stream *gpu.Stream
	cfg    Config

	ring         []entry
	byUID        map[int64]*entry
	pending      []*entry // insertion-ordered pending entries
	pendingBytes int64
	nextUID      int64
	windows      int // open collective-scope fusion windows (nest depth)

	Stats Stats
	// Trace, if non-nil, accrues Scheduling/Launch/PackKernel costs.
	Trace *trace.Breakdown
	// TL, if non-nil, records fusion-layer timeline events (enqueues,
	// threshold trips, flushes, fused launches) mirroring every Trace charge.
	TL *timeline.Recorder
	// tuner, if set, adapts ThresholdBytes online from observed request
	// latencies (the model-based prediction of the paper's future work).
	tuner *AutoTuner
}

// EnableAutoTune attaches an online threshold tuner; the scheduler starts
// from the tuner's current recommendation.
func (s *Scheduler) EnableAutoTune(t *AutoTuner) {
	s.tuner = t
	s.cfg.ThresholdBytes = t.Threshold()
}

// NewScheduler builds a scheduler that launches fused kernels on the given
// stream of dev.
func NewScheduler(dev *gpu.Device, stream *gpu.Stream, cfg Config) *Scheduler {
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = DefaultConfig().QueueCapacity
	}
	if cfg.EnqueueCostNs <= 0 {
		cfg.EnqueueCostNs = DefaultConfig().EnqueueCostNs
	}
	if cfg.QueryCostNs <= 0 {
		cfg.QueryCostNs = DefaultConfig().QueryCostNs
	}
	if cfg.LaunchRetries <= 0 {
		cfg.LaunchRetries = DefaultConfig().LaunchRetries
	}
	return &Scheduler{
		env:    dev.Env(),
		dev:    dev,
		stream: stream,
		cfg:    cfg,
		ring:   make([]entry, cfg.QueueCapacity),
		byUID:  make(map[int64]*entry),
	}
}

// Config returns the active configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// PendingBytes reports the payload waiting to be fused.
func (s *Scheduler) PendingBytes() int64 { return s.pendingBytes }

// PendingCount reports how many requests await fusion.
func (s *Scheduler) PendingCount() int { return len(s.pending) }

// Enqueue (① in Fig. 5) inserts a request for job and returns its UID, or
// ErrQueueFull when the request list is exhausted — the caller must then
// fall back to a non-fused path. Enqueue may trigger a fused launch when a
// flush policy fires (scenario 2 of Section IV-C); the launch overhead is
// charged to the calling proc, exactly like the real runtime.
func (s *Scheduler) Enqueue(p *sim.Proc, job *pack.Job) int64 {
	t0 := p.Now()
	p.Sleep(s.cfg.EnqueueCostNs)
	s.addTraceAt(trace.Scheduling, "enqueue", t0, s.cfg.EnqueueCostNs)
	e := s.freeEntry()
	if e == nil {
		s.Stats.Rejected++
		return ErrQueueFull
	}
	s.nextUID++
	*e = entry{
		uid:        s.nextUID,
		job:        job,
		reqStatus:  StatusPending,
		respStatus: StatusIdle,
		enqueuedAt: s.env.Now(),
		doneEv:     s.env.NewEvent(fmt.Sprintf("fusion-req-%d", s.nextUID)),
	}
	s.byUID[e.uid] = e
	s.pending = append(s.pending, e)
	s.pendingBytes += job.Bytes
	s.Stats.Enqueued++

	if s.windows > 0 {
		// An open collective-scope window defers every flush policy: the
		// whole window's worth of requests launches as one fused kernel at
		// CloseWindow (the collective analogue of the paper's Algorithm 3
		// batching window).
		return e.uid
	}
	if s.cfg.ThresholdBytes > 0 && s.pendingBytes >= s.cfg.ThresholdBytes {
		s.Stats.ThresholdFlushes++
		if s.TL != nil {
			s.TL.Instant(timeline.LayerFusion, "", "threshold-trip", s.env.Now(),
				timeline.Arg{Key: "pending", Val: strconv.Itoa(len(s.pending))},
				timeline.Arg{Key: "bytes", Val: strconv.FormatInt(s.pendingBytes, 10)})
		}
		s.launch(p)
	} else if s.cfg.MaxPending > 0 && len(s.pending) >= s.cfg.MaxPending {
		s.Stats.CapFlushes++
		if s.TL != nil {
			s.TL.Instant(timeline.LayerFusion, "", "cap-trip", s.env.Now(),
				timeline.Arg{Key: "pending", Val: strconv.Itoa(len(s.pending))})
		}
		s.launch(p)
	}
	return e.uid
}

// Flush (② on demand) launches a fused kernel over everything pending. The
// progress engine calls it when it has no more operations to enqueue and
// reaches a synchronization point (scenario 1 of Section IV-C).
func (s *Scheduler) Flush(p *sim.Proc) {
	if s.windows > 0 {
		// A collective window is accumulating this batch; CloseWindow
		// will launch it.
		s.Stats.HeldFlushes++
		return
	}
	if len(s.pending) == 0 {
		s.Stats.EmptyFlushes++
		return
	}
	s.Stats.ExplicitFlushes++
	if s.TL != nil {
		s.TL.Instant(timeline.LayerFusion, "", "flush", s.env.Now(),
			timeline.Arg{Key: "pending", Val: strconv.Itoa(len(s.pending))},
			timeline.Arg{Key: "bytes", Val: strconv.FormatInt(s.pendingBytes, 10)})
	}
	s.launch(p)
}

// OpenWindow opens a collective-scope fusion window: every flush trigger —
// bytes threshold, request cap, and explicit Flush — is deferred until the
// matching CloseWindow, which launches everything accumulated as a single
// fused kernel. The collective engine brackets each schedule phase (all
// peers' packs, then all peers' unpacks) with a window so per-message
// launches collapse into per-phase launches. Windows nest; only the
// outermost CloseWindow launches.
func (s *Scheduler) OpenWindow() {
	s.windows++
	if s.TL != nil {
		s.TL.Instant(timeline.LayerFusion, "", "window-open", s.env.Now(),
			timeline.Arg{Key: "depth", Val: strconv.Itoa(s.windows)})
	}
}

// CloseWindow closes the innermost window; closing the outermost one
// launches all pending requests as one fused kernel. Calling it with no
// open window is a no-op.
func (s *Scheduler) CloseWindow(p *sim.Proc) {
	if s.windows == 0 {
		return
	}
	s.windows--
	if s.windows > 0 {
		return
	}
	if len(s.pending) == 0 {
		return
	}
	s.Stats.WindowFlushes++
	if s.TL != nil {
		s.TL.Instant(timeline.LayerFusion, "", "window-close", s.env.Now(),
			timeline.Arg{Key: "pending", Val: strconv.Itoa(len(s.pending))},
			timeline.Arg{Key: "bytes", Val: strconv.FormatInt(s.pendingBytes, 10)})
	}
	s.launch(p)
}

// WindowOpen reports whether a collective-scope window is currently open.
func (s *Scheduler) WindowOpen() bool { return s.windows > 0 }

// launch fuses all pending requests into a single kernel.
func (s *Scheduler) launch(p *sim.Proc) {
	batch := s.pending
	s.pending = nil
	s.pendingBytes = 0

	works := make([]gpu.FusedWork, len(batch))
	for i, e := range batch {
		e := e
		e.reqStatus = StatusBusy
		bytes := e.job.Bytes
		works[i] = e.job.FusedWork(fmt.Sprintf("req-%d", e.uid), func(end int64) {
			// ③: the GPU thread block signals completion by
			// updating the response status — no CPU sync at the
			// kernel boundary.
			e.respStatus = StatusCompleted
			e.doneAt = end
			e.doneEv.Fire()
			if s.tuner != nil && s.tuner.Record(end-e.enqueuedAt, bytes) {
				s.cfg.ThresholdBytes = s.tuner.Threshold()
			}
		})
	}
	s.Stats.FusedLaunches++
	s.Stats.FusedRequests += int64(len(batch))
	if len(batch) > s.Stats.MaxBatch {
		s.Stats.MaxBatch = len(batch)
	}
	name := fmt.Sprintf("batch-%d", s.Stats.FusedLaunches)
	var fc *gpu.FusedCompletion
	for attempt := 0; ; attempt++ {
		t0 := s.env.Now()
		var err error
		fc, err = s.stream.LaunchFusedE(p, name, works)
		if err == nil {
			break
		}
		// The failed launch still burned the driver overhead; charge
		// it to the recovery category.
		s.Stats.FailedLaunches++
		s.chargeRetrans("fused-relaunch", t0)
		if attempt >= s.cfg.LaunchRetries {
			s.degrade(p, batch)
			return
		}
	}
	s.addTraceAt(trace.Launch, "fused-launch", s.env.Now()-s.dev.Arch.LaunchOverheadNs, s.dev.Arch.LaunchOverheadNs)
	s.addTraceAt(trace.PackKernel, "fused-kernel", fc.Start, fc.End-fc.Start)
}

// degrade re-issues a persistently failing fused batch as unfused
// per-request launches — graceful degradation: the batch loses the fusion
// win but the transfers still happen. Each unfused launch itself retries
// under the fault plan; a request whose unfused launches also exhaust
// retries fails permanently with a typed error surfaced through Done.
func (s *Scheduler) degrade(p *sim.Proc, batch []*entry) {
	s.Stats.DegradedBatches++
	if s.dev.Faults != nil {
		s.dev.Faults.Recordf(fault.Fallback, "batch of %d re-issued unfused", len(batch))
	}
	if s.TL != nil {
		s.TL.Instant(timeline.LayerFault, "", "degrade-unfused", s.env.Now(),
			timeline.Arg{Key: "requests", Val: strconv.Itoa(len(batch))})
	}
	for _, e := range batch {
		e := e
		var c *gpu.Completion
		var err error
		for attempt := 0; ; attempt++ {
			t0 := s.env.Now()
			c, err = s.stream.LaunchE(p, e.job.KernelSpec())
			if err == nil {
				break
			}
			s.Stats.FailedLaunches++
			s.chargeRetrans("unfused-relaunch", t0)
			if attempt >= s.cfg.LaunchRetries {
				break
			}
		}
		if err != nil {
			s.Stats.FailedRequests++
			e.err = fmt.Errorf("fusion: request %d: unfused fallback failed after %d attempts: %w",
				e.uid, s.cfg.LaunchRetries+1, err)
			e.doneAt = s.env.Now()
			e.doneEv.Fire()
			continue
		}
		s.Stats.UnfusedRecoveries++
		s.addTraceAt(trace.Launch, "unfused-launch", s.env.Now()-s.dev.Arch.LaunchOverheadNs, s.dev.Arch.LaunchOverheadNs)
		s.addTraceAt(trace.PackKernel, "unfused-kernel", c.Start, c.End-c.Start)
		end := c.End
		s.env.At(end, func() {
			e.respStatus = StatusCompleted
			e.doneAt = end
			e.doneEv.Fire()
		})
	}
}

// chargeRetrans accrues a failed-launch cost to trace.Retrans, mirrored as
// a fault-layer timeline span (reconciling with timeline sums).
func (s *Scheduler) chargeRetrans(name string, t0 int64) {
	d := s.env.Now() - t0
	if s.Trace == nil || d <= 0 {
		return
	}
	s.Trace.Add(trace.Retrans, d)
	if s.TL != nil {
		s.TL.Span(timeline.LayerFault, trace.Retrans, "", name, t0, d)
	}
}

// Done (④) answers a status query for uid: the scheduler compares the
// request status with the response status. A true return releases the
// request-list entry. Unknown UIDs (already released) report true. A
// non-nil error reports a permanently failed request (fused launch
// degraded and the unfused fallback also failed); the entry is released
// and the error is terminal.
func (s *Scheduler) Done(p *sim.Proc, uid int64) (bool, error) {
	t0 := p.Now()
	p.Sleep(s.cfg.QueryCostNs)
	s.addTraceAt(trace.Scheduling, "query", t0, s.cfg.QueryCostNs)
	e, ok := s.byUID[uid]
	if !ok {
		return true, nil
	}
	if e.err != nil {
		err := e.err
		s.release(e)
		return false, err
	}
	if e.respStatus == StatusCompleted {
		s.release(e)
		return true, nil
	}
	return false, nil
}

// DoneEvent returns an event that fires when uid's request completes, or
// nil if the UID is unknown (already released). Waiting on the event does
// not release the entry; pair with Done or Release.
func (s *Scheduler) DoneEvent(uid int64) *sim.Event {
	e, ok := s.byUID[uid]
	if !ok {
		return nil
	}
	return e.doneEv
}

// SyncStream explicitly synchronizes the fused-kernel stream — the
// kernel-boundary synchronization the paper's design avoids; exposed for
// the ablation that reintroduces it.
func (s *Scheduler) SyncStream(p *sim.Proc) {
	s.stream.Synchronize(p)
}

// Release frees uid's entry without a status query (used after waiting on
// DoneEvent).
func (s *Scheduler) Release(uid int64) {
	if e, ok := s.byUID[uid]; ok {
		s.release(e)
	}
}

func (s *Scheduler) release(e *entry) {
	delete(s.byUID, e.uid)
	e.reqStatus = StatusIdle
	e.respStatus = StatusIdle
	e.job = nil
	e.uid = 0
	e.err = nil
}

// freeEntry scans the ring for an idle slot.
func (s *Scheduler) freeEntry() *entry {
	for i := range s.ring {
		if s.ring[i].reqStatus == StatusIdle && s.ring[i].uid == 0 {
			return &s.ring[i]
		}
	}
	return nil
}

// RequestLatency reports enqueue→completion time for a finished entry that
// has not been released yet; ok is false otherwise.
func (s *Scheduler) RequestLatency(uid int64) (int64, bool) {
	e, found := s.byUID[uid]
	if !found || e.respStatus != StatusCompleted {
		return 0, false
	}
	return e.doneAt - e.enqueuedAt, true
}

// addTraceAt accrues a cost to the Breakdown and mirrors it as a
// fusion-layer timeline span — the pairing that keeps timeline sums equal to
// the Breakdown.
func (s *Scheduler) addTraceAt(c trace.Category, name string, start, d int64) {
	if s.Trace != nil {
		s.Trace.Add(c, d)
		if s.TL != nil {
			s.TL.Span(timeline.LayerFusion, c, "", name, start, d)
		}
	}
}
