package fusion

import (
	"math"

	"repro/internal/gpu"
)

// This file implements the paper's stated future work (Sections IV-C and
// VII): "a model-based prediction method to automatically optimize the
// parameters for the kernel fusion framework". Two pieces:
//
//   - PredictThreshold derives a starting flush threshold from the device
//     cost model and the expected request shape, applying the Section IV-C
//     principle that the fused kernel must run longer than its launch
//     overhead (under-fusion bound) without delaying communication past
//     the point where it could have overlapped (over-fusion bound);
//   - AutoTuner refines the threshold online by hill-climbing on the
//     observed per-byte request latency (enqueue to GPU completion), which
//     rises under both failure modes: launch-overhead amortization is poor
//     when batches are too small, queueing delay dominates when batches
//     are too large.

// ModelInput describes the expected traffic for threshold prediction.
type ModelInput struct {
	// AvgRequestBytes and AvgSegments describe a typical request.
	AvgRequestBytes int64
	AvgSegments     int
	// NetBWBytesPerNs is the bandwidth of the link the packed data will
	// cross afterwards (bounds the over-fusion cap).
	NetBWBytesPerNs float64
}

// Threshold bounds; the paper's heuristic search also lands inside them.
const (
	minThreshold = 16 << 10
	maxThreshold = 4 << 20
)

// PredictThreshold returns a flush threshold in bytes for the given
// architecture and traffic shape.
func PredictThreshold(a gpu.Arch, in ModelInput) int64 {
	if in.AvgRequestBytes <= 0 || in.AvgSegments <= 0 {
		return 512 << 10
	}
	avgBlock := float64(in.AvgRequestBytes) / float64(in.AvgSegments)
	if avgBlock < 1 {
		avgBlock = 1
	}
	p := float64(a.MaxResidentBlocks())
	// Fused-kernel execution cost per pending byte: the work term of the
	// kernel model ((segments*segFixed + bytes/blockBW)/P), floored by
	// aggregate memory bandwidth.
	perByte := (a.SegmentFixedNs/avgBlock + 1/a.BlockCopyBWBytesPerNs) / p
	if hbm := 1 / a.MemBWBytesPerNs; perByte < hbm {
		perByte = hbm
	}
	// Under-fusion bound: exec(B) >= launch overhead.
	bmin := float64(a.LaunchOverheadNs-a.KernelStartupNs) / perByte
	// Over-fusion bound: while the fused kernel runs, B bytes of already
	// packed data could have been on the wire; cap the batch so the
	// kernel span does not exceed its own wire time (past that point
	// fusing more only delays communication).
	bmax := float64(maxThreshold)
	if in.NetBWBytesPerNs > 0 {
		wirePerByte := 1 / in.NetBWBytesPerNs
		if perByte > wirePerByte {
			bmax = float64(a.LaunchOverheadNs) / (perByte - wirePerByte)
		}
	}
	b := bmin * 2 // headroom: amortize the launch well past break-even
	if b > bmax {
		b = bmax
	}
	// Round to the nearest power of two inside the clamp.
	th := int64(minThreshold)
	for th < int64(b) && th < maxThreshold {
		th <<= 1
	}
	if th > maxThreshold {
		th = maxThreshold
	}
	return th
}

// AutoTuner adjusts the threshold online. It is deterministic: after every
// Window completed requests it compares the mean per-byte latency against
// the previous window and keeps moving along the candidate ladder while
// things improve, reversing direction when they get worse.
type AutoTuner struct {
	ladder []int64
	idx    int
	dir    int
	// Window is the number of completed requests per evaluation.
	Window int

	sumLatency int64
	sumBytes   int64
	count      int
	lastScore  float64

	// Moves counts ladder steps taken (for tests/metrics).
	Moves int
}

// NewAutoTuner starts at the ladder entry nearest to initial.
func NewAutoTuner(initial int64) *AutoTuner {
	t := &AutoTuner{dir: 1, Window: 64}
	for th := int64(minThreshold); th <= maxThreshold; th <<= 1 {
		t.ladder = append(t.ladder, th)
	}
	best := 0
	for i, th := range t.ladder {
		if abs64(th-initial) < abs64(t.ladder[best]-initial) {
			best = i
		}
	}
	t.idx = best
	return t
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Threshold returns the current recommendation.
func (t *AutoTuner) Threshold() int64 { return t.ladder[t.idx] }

// Record feeds one completed request: its enqueue-to-completion latency
// and payload size. It returns true when the threshold changed.
func (t *AutoTuner) Record(latencyNs, bytes int64) bool {
	t.sumLatency += latencyNs
	t.sumBytes += bytes
	t.count++
	if t.count < t.Window {
		return false
	}
	score := float64(t.sumLatency) / math.Max(1, float64(t.sumBytes))
	t.sumLatency, t.sumBytes, t.count = 0, 0, 0
	if t.lastScore > 0 && score > t.lastScore {
		t.dir = -t.dir // got worse: reverse
	}
	t.lastScore = score
	next := t.idx + t.dir
	if next < 0 || next >= len(t.ladder) {
		t.dir = -t.dir
		next = t.idx + t.dir
	}
	if next == t.idx {
		return false
	}
	t.idx = next
	t.Moves++
	return true
}
