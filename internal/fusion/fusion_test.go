package fusion

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/pack"
	"repro/internal/sim"
	"repro/internal/trace"
)

func newSched(cfg Config) (*sim.Env, *gpu.Device, *Scheduler) {
	env := sim.NewEnv()
	dev := gpu.NewDevice(env, cluster.VoltaV100NVLink(), 0, 0)
	return env, dev, NewScheduler(dev, dev.NewStream("fusion"), cfg)
}

// jobSeq makes buffer names unique across mkPackJob calls on one device
// (the device rejects duplicate names).
var jobSeq int

// mkPackJob builds a sparse pack job with real buffers and returns the job
// plus a verifier closure.
func mkPackJob(dev *gpu.Device, seed int64, blocks, blockLen int) (*pack.Job, func() error) {
	lens := make([]int, blocks)
	displs := make([]int, blocks)
	for i := range lens {
		lens[i] = blockLen
		displs[i] = i * (blockLen + 3)
	}
	l := datatype.Commit(datatype.Indexed(lens, displs, datatype.Float32))
	jobSeq++
	src := dev.Alloc(fmt.Sprintf("src%d", jobSeq), int(l.ExtentBytes))
	dst := dev.Alloc(fmt.Sprintf("dst%d", jobSeq), int(l.SizeBytes))
	rng := rand.New(rand.NewSource(seed))
	rng.Read(src.Data)
	job := pack.NewJob(pack.OpPack, src, dst, l.Blocks)
	verify := func() error {
		ref := make([]byte, l.SizeBytes)
		l.Pack(src.Data, ref)
		if !bytes.Equal(dst.Data, ref) {
			return fmt.Errorf("packed bytes wrong for job seed %d", seed)
		}
		return nil
	}
	return job, verify
}

func TestEnqueueReturnsIncreasingUIDs(t *testing.T) {
	env, dev, s := newSched(Config{ThresholdBytes: 1 << 30})
	env.Spawn("pe", func(p *sim.Proc) {
		j1, _ := mkPackJob(dev, 1, 100, 2)
		j2, _ := mkPackJob(dev, 2, 100, 2)
		u1 := s.Enqueue(p, j1)
		u2 := s.Enqueue(p, j2)
		if u1 <= 0 || u2 <= u1 {
			t.Errorf("uids not increasing: %d %d", u1, u2)
		}
		if s.PendingCount() != 2 {
			t.Errorf("pending = %d", s.PendingCount())
		}
		s.Flush(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitFlushRunsAllAndSignalsCompletion(t *testing.T) {
	env, dev, s := newSched(Config{ThresholdBytes: 1 << 30})
	var verifiers []func() error
	env.Spawn("pe", func(p *sim.Proc) {
		var uids []int64
		for i := 0; i < 8; i++ {
			j, v := mkPackJob(dev, int64(i), 200, 1)
			verifiers = append(verifiers, v)
			uids = append(uids, s.Enqueue(p, j))
		}
		s.Flush(p)
		for _, uid := range uids {
			ev := s.DoneEvent(uid)
			if ev == nil {
				t.Errorf("uid %d unknown", uid)
				continue
			}
			p.Wait(ev)
			if ok, _ := s.Done(p, uid); !ok {
				t.Errorf("uid %d not done after event", uid)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, v := range verifiers {
		if err := v(); err != nil {
			t.Error(err)
		}
	}
	if dev.Stats.KernelLaunches != 1 {
		t.Fatalf("launches = %d, want exactly 1 fused", dev.Stats.KernelLaunches)
	}
	if s.Stats.FusedRequests != 8 || s.Stats.ExplicitFlushes != 1 {
		t.Fatalf("stats: %+v", s.Stats)
	}
}

func TestThresholdFlushFires(t *testing.T) {
	env, dev, s := newSched(Config{ThresholdBytes: 4 << 10})
	env.Spawn("pe", func(p *sim.Proc) {
		// Each job is 200 blocks * 4B = 800B; the 6th crosses 4 KiB.
		for i := 0; i < 6; i++ {
			j, _ := mkPackJob(dev, int64(i), 200, 1)
			s.Enqueue(p, j)
		}
		if s.Stats.ThresholdFlushes != 1 {
			t.Errorf("threshold flushes = %d", s.Stats.ThresholdFlushes)
		}
		if s.PendingCount() != 0 {
			t.Errorf("pending after threshold flush = %d", s.PendingCount())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.Stats.FusedKernels != 1 {
		t.Fatalf("fused kernels = %d", dev.Stats.FusedKernels)
	}
}

func TestMaxPendingCapFlush(t *testing.T) {
	env, dev, s := newSched(Config{ThresholdBytes: 1 << 40, MaxPending: 4})
	env.Spawn("pe", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			j, _ := mkPackJob(dev, int64(i), 10, 1)
			s.Enqueue(p, j)
		}
		if s.Stats.CapFlushes != 1 {
			t.Errorf("cap flushes = %d", s.Stats.CapFlushes)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFullFallback(t *testing.T) {
	env, dev, s := newSched(Config{QueueCapacity: 2, ThresholdBytes: 1 << 40})
	env.Spawn("pe", func(p *sim.Proc) {
		j1, _ := mkPackJob(dev, 1, 10, 1)
		j2, _ := mkPackJob(dev, 2, 10, 1)
		j3, _ := mkPackJob(dev, 3, 10, 1)
		if s.Enqueue(p, j1) <= 0 || s.Enqueue(p, j2) <= 0 {
			t.Error("first two enqueues must succeed")
		}
		if got := s.Enqueue(p, j3); got != ErrQueueFull {
			t.Errorf("third enqueue = %d, want ErrQueueFull", got)
		}
		if s.Stats.Rejected != 1 {
			t.Errorf("rejected = %d", s.Stats.Rejected)
		}
		s.Flush(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesRecycleAfterRelease(t *testing.T) {
	env, dev, s := newSched(Config{QueueCapacity: 2, ThresholdBytes: 1 << 40})
	env.Spawn("pe", func(p *sim.Proc) {
		for round := 0; round < 5; round++ {
			j1, _ := mkPackJob(dev, int64(round), 10, 1)
			j2, _ := mkPackJob(dev, int64(round+100), 10, 1)
			u1, u2 := s.Enqueue(p, j1), s.Enqueue(p, j2)
			if u1 <= 0 || u2 <= 0 {
				t.Fatalf("round %d: queue full despite releases", round)
			}
			s.Flush(p)
			p.Wait(s.DoneEvent(u1))
			p.Wait(s.DoneEvent(u2))
			s.Release(u1)
			s.Release(u2)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoneOnUnknownUIDIsTrue(t *testing.T) {
	env, _, s := newSched(Config{})
	env.Spawn("pe", func(p *sim.Proc) {
		if ok, _ := s.Done(p, 9999); !ok {
			t.Error("unknown uid should report done")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFlushIsCheapNoop(t *testing.T) {
	env, dev, s := newSched(Config{})
	env.Spawn("pe", func(p *sim.Proc) {
		s.Flush(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.Stats.KernelLaunches != 0 || s.Stats.EmptyFlushes != 1 {
		t.Fatalf("empty flush launched something: %+v %+v", dev.Stats, s.Stats)
	}
}

func TestNoKernelBoundarySync(t *testing.T) {
	// Completion arrives via response-status update, never via stream
	// synchronize: the device sync counter must stay zero.
	env, dev, s := newSched(Config{ThresholdBytes: 1 << 40})
	env.Spawn("pe", func(p *sim.Proc) {
		j, _ := mkPackJob(dev, 7, 500, 2)
		uid := s.Enqueue(p, j)
		s.Flush(p)
		for {
			if ok, _ := s.Done(p, uid); ok {
				break
			}
			p.Sleep(500)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.Stats.StreamSyncs != 0 || dev.Stats.EventRecords != 0 {
		t.Fatalf("fusion used explicit sync: %+v", dev.Stats)
	}
}

func TestRequestLatencyVisible(t *testing.T) {
	env, dev, s := newSched(Config{ThresholdBytes: 1 << 40})
	env.Spawn("pe", func(p *sim.Proc) {
		j, _ := mkPackJob(dev, 3, 500, 2)
		uid := s.Enqueue(p, j)
		if _, ok := s.RequestLatency(uid); ok {
			t.Error("latency available before completion")
		}
		s.Flush(p)
		p.Wait(s.DoneEvent(uid))
		lat, ok := s.RequestLatency(uid)
		if !ok || lat <= 0 {
			t.Errorf("latency = %d ok=%v", lat, ok)
		}
		s.Release(uid)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceAccrual(t *testing.T) {
	env, dev, s := newSched(Config{ThresholdBytes: 1 << 40})
	var bd trace.Breakdown
	s.Trace = &bd
	env.Spawn("pe", func(p *sim.Proc) {
		j, _ := mkPackJob(dev, 3, 100, 2)
		uid := s.Enqueue(p, j)
		s.Flush(p)
		p.Wait(s.DoneEvent(uid))
		s.Done(p, uid)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if bd.Get(trace.Scheduling) == 0 || bd.Get(trace.Launch) != dev.Arch.LaunchOverheadNs || bd.Get(trace.PackKernel) == 0 {
		t.Fatalf("trace wrong: %s", bd.String())
	}
}

func TestFusionVsSerialLatency(t *testing.T) {
	// End-to-end: 16 sparse packs via fusion vs 16 sync'd kernel
	// launches. Fusion must win by a wide margin (paper: up to 8X).
	arch := cluster.VoltaV100NVLink()

	envA := sim.NewEnv()
	devA := gpu.NewDevice(envA, arch, 0, 0)
	stA := devA.NewStream("s")
	var serial int64
	envA.Spawn("pe", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			j, _ := mkPackJob(devA, int64(i), 2000, 1)
			stA.Launch(p, j.KernelSpec())
			stA.Synchronize(p)
		}
		serial = p.Now()
	})
	if err := envA.Run(); err != nil {
		t.Fatal(err)
	}

	envB := sim.NewEnv()
	devB := gpu.NewDevice(envB, arch, 0, 0)
	sB := NewScheduler(devB, devB.NewStream("s"), Config{ThresholdBytes: 1 << 40})
	var fused int64
	envB.Spawn("pe", func(p *sim.Proc) {
		var uids []int64
		for i := 0; i < 16; i++ {
			j, _ := mkPackJob(devB, int64(i), 2000, 1)
			uids = append(uids, sB.Enqueue(p, j))
		}
		sB.Flush(p)
		for _, u := range uids {
			p.Wait(sB.DoneEvent(u))
			sB.Release(u)
		}
		fused = p.Now()
	})
	if err := envB.Run(); err != nil {
		t.Fatal(err)
	}
	if fused*4 >= serial {
		t.Fatalf("fusion end-to-end %dns, serial %dns: want >=4x win", fused, serial)
	}
}

// Property: after any sequence of enqueues and a final flush, every UID
// completes, every payload byte is correct, and exactly
// (threshold+cap+explicit) launches happened.
func TestPropertyAllRequestsComplete(t *testing.T) {
	f := func(seed int64, nRaw uint8, thrRaw uint16) bool {
		n := int(nRaw%24) + 1
		threshold := int64(thrRaw)*64 + 1024
		env, dev, s := func() (*sim.Env, *gpu.Device, *Scheduler) {
			env := sim.NewEnv()
			dev := gpu.NewDevice(env, cluster.VoltaV100NVLink(), 0, 0)
			return env, dev, NewScheduler(dev, dev.NewStream("f"), Config{ThresholdBytes: threshold})
		}()
		rng := rand.New(rand.NewSource(seed))
		ok := true
		var verifiers []func() error
		env.Spawn("pe", func(p *sim.Proc) {
			var uids []int64
			for i := 0; i < n; i++ {
				j, v := mkPackJob(dev, rng.Int63(), rng.Intn(300)+1, rng.Intn(3)+1)
				verifiers = append(verifiers, v)
				uid := s.Enqueue(p, j)
				if uid <= 0 {
					ok = false
					return
				}
				uids = append(uids, uid)
			}
			s.Flush(p)
			for _, u := range uids {
				if ev := s.DoneEvent(u); ev != nil {
					p.Wait(ev)
				}
				if done, _ := s.Done(p, u); !done {
					ok = false
				}
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		for _, v := range verifiers {
			if v() != nil {
				return false
			}
		}
		launches := s.Stats.ThresholdFlushes + s.Stats.CapFlushes + s.Stats.ExplicitFlushes
		return ok && dev.Stats.KernelLaunches == launches && s.Stats.FusedRequests == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
