package sim

import (
	"fmt"
	"testing"
)

// TestEqualTimestampStableOrder schedules 10k+ events across a handful of
// timestamps, interleaving pushes, and requires every equal-timestamp group
// to run in exact insertion order — the tie-break invariant the golden
// traces depend on.
func TestEqualTimestampStableOrder(t *testing.T) {
	e := NewEnv()
	const perTime = 4000
	times := []int64{50, 10, 50, 10, 0} // deliberately unsorted pushes
	type rec struct {
		at  int64
		seq int
	}
	var got []rec
	seqs := map[int64]int{}
	for round := 0; round < perTime; round++ {
		for _, at := range times {
			at := at
			seq := seqs[at]
			seqs[at]++
			e.At(at, func() {
				got = append(got, rec{at, seq})
			})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != perTime*len(times) {
		t.Fatalf("ran %d events, want %d", len(got), perTime*len(times))
	}
	lastAt := int64(-1)
	next := map[int64]int{}
	for i, r := range got {
		if r.at < lastAt {
			t.Fatalf("event %d: time went backwards (%d after %d)", i, r.at, lastAt)
		}
		lastAt = r.at
		if r.seq != next[r.at] {
			t.Fatalf("event %d at t=%d: ran insertion #%d, want #%d (tie-break not stable)", i, r.at, r.seq, next[r.at])
		}
		next[r.at]++
	}
}

// TestSameInstantCascadeOrder: an event that pushes more work at the
// current instant must see that work run after everything already queued
// at the same instant — even when its bucket was drained and recreated.
func TestSameInstantCascadeOrder(t *testing.T) {
	e := NewEnv()
	var got []string
	e.At(5, func() {
		got = append(got, "a")
		e.At(5, func() { got = append(got, "c") })
	})
	e.At(5, func() { got = append(got, "b") })
	// Drain-and-recreate case: t=7's bucket holds exactly one event which
	// re-pushes at t=7.
	e.At(7, func() {
		got = append(got, "d")
		e.At(7, func() { got = append(got, "e") })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "abcde"
	var s string
	for _, g := range got {
		s += g
	}
	if s != want {
		t.Fatalf("cascade order %q, want %q", s, want)
	}
}

// TestWorkerReuse proves pooling: many sequentially-finishing procs must
// share a small set of worker goroutines, and a clean run must end with
// every live-proc and pinned-worker counter at zero.
func TestWorkerReuse(t *testing.T) {
	e := NewEnv()
	const n = 500
	ran := 0
	var prev *Proc
	for i := 0; i < n; i++ {
		p := e.SpawnAt(int64(i), fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(1)
			ran++
		})
		_ = p
		prev = p
	}
	_ = prev
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != n {
		t.Fatalf("ran %d bodies, want %d", ran, n)
	}
	_, _, total := e.WorkerStats()
	if total >= n/2 {
		t.Fatalf("spawned %d worker goroutines for %d sequential procs; pool is not recycling", total, n)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("%d live procs after clean run, want 0", e.LiveProcs())
	}
	idle, alive, _ := e.WorkerStats()
	if idle != 0 || alive != 0 {
		t.Fatalf("worker pool not drained after clean run: idle=%d alive=%d", idle, alive)
	}
	if e.QueueLen() != 0 {
		t.Fatalf("%d events still queued after clean run", e.QueueLen())
	}
}

// TestWorkerReuseAfterKill: killed procs (blocked, running, and
// never-started) must all release their workers back to the pool, and a
// killed-before-start proc must not consume a worker at all.
func TestWorkerReuseAfterKill(t *testing.T) {
	e := NewEnv()
	var killedUnstartedRan bool
	blocked := e.Spawn("blocked", func(p *Proc) { p.Sleep(Second) })
	self := e.Spawn("self", func(p *Proc) {
		p.Kill() // current proc: dies at next blocking call
		p.Sleep(1)
		t.Error("self proc survived its own kill")
	})
	_ = self
	unstarted := e.SpawnAt(Second, "unstarted", func(p *Proc) { killedUnstartedRan = true })
	e.At(10, func() {
		blocked.Kill()
		unstarted.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if killedUnstartedRan {
		t.Fatal("killed-before-start proc body ran")
	}
	for _, p := range []*Proc{blocked, self, unstarted} {
		if !p.Finished() {
			t.Fatalf("proc %s not finished after kill", p.Name())
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("%d live procs after kills, want 0", e.LiveProcs())
	}
	_, _, total := e.WorkerStats()
	if total > 2 {
		t.Fatalf("spawned %d workers; the never-started kill must not consume one", total)
	}
}

// TestWorkerSurvivesProcPanic: a panicking proc aborts the run, but its
// worker must be recycled, and the Env must stay usable for a fresh run.
func TestWorkerSurvivesProcPanic(t *testing.T) {
	e := NewEnv()
	e.Spawn("boom", func(p *Proc) { panic("bang") })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected proc panic to propagate out of Run")
			}
		}()
		_ = e.Run()
	}()
	if e.LiveProcs() != 0 {
		t.Fatalf("%d live procs after panic, want 0", e.LiveProcs())
	}
	// The Env stays usable and reuses pool machinery.
	ran := false
	e.Spawn("after", func(p *Proc) { p.Sleep(1); ran = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("post-panic proc did not run")
	}
}

// TestKillUnderWatchdog: the stall path must report only genuinely stuck
// procs and killed procs must not pin workers when the watchdog aborts.
func TestKillUnderWatchdog(t *testing.T) {
	e := NewEnv()
	stuck := e.Spawn("stuck", func(p *Proc) { p.Wait(e.NewEvent("never")) })
	victim := e.Spawn("victim", func(p *Proc) { p.Sleep(Second) })
	e.SetWatchdog(Millisecond, nil)
	e.At(10, func() { victim.Kill() })
	// Keep the clock moving so the watchdog can observe it.
	var tick func()
	tick = func() {
		if e.Now() < 10*Millisecond {
			e.After(Millisecond/2, tick)
		}
	}
	e.After(Millisecond/2, tick)
	err := e.Run()
	se, ok := err.(*StallError)
	if !ok {
		t.Fatalf("want *StallError, got %v", err)
	}
	if len(se.Stuck) != 1 || se.Stuck[0] != "stuck" {
		t.Fatalf("stuck = %v, want [stuck]", se.Stuck)
	}
	if !victim.Killed() || !victim.Finished() {
		t.Fatal("killed proc should be finished before the stall fired")
	}
	if e.LiveProcs() != 1 {
		t.Fatalf("live procs = %d, want 1 (only the stuck one)", e.LiveProcs())
	}
	_ = stuck
}

// TestFinishedProcReleasesState is the zero-leak oracle: after a Proc
// finishes, the scheduler must not retain its body closure, timeline
// recorder, or worker binding, no matter how the body ended.
func TestFinishedProcReleasesState(t *testing.T) {
	e := NewEnv()
	normal := e.Spawn("normal", func(p *Proc) { p.Sleep(5) })
	killedBlocked := e.Spawn("killedBlocked", func(p *Proc) { p.Sleep(Second) })
	killedUnstarted := e.SpawnAt(Second, "killedUnstarted", func(p *Proc) {})
	e.At(1, func() {
		killedBlocked.Kill()
		killedUnstarted.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Proc{normal, killedBlocked, killedUnstarted} {
		if !p.Finished() {
			t.Fatalf("%s not finished", p.Name())
		}
		if p.w != nil {
			t.Fatalf("%s retains a worker binding after Finished()", p.Name())
		}
		if p.body != nil {
			t.Fatalf("%s retains its body closure after Finished()", p.Name())
		}
		if p.tl != nil {
			t.Fatalf("%s retains a timeline recorder after Finished()", p.Name())
		}
	}
	if e.LiveProcs() != 0 || e.QueueLen() != 0 {
		t.Fatalf("leak: live=%d queued=%d", e.LiveProcs(), e.QueueLen())
	}
}

// TestQueueBucketRecycling: repeated bursts at fresh timestamps must not
// grow the queue's retained state without bound (free-list reuse).
func TestQueueBucketRecycling(t *testing.T) {
	e := NewEnv()
	ran := 0
	for round := 0; round < 50; round++ {
		base := int64(round) * 100
		for i := int64(0); i < 10; i++ {
			e.At(base+i, func() { ran++ })
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if ran != 500 {
		t.Fatalf("ran %d, want 500", ran)
	}
	if got := len(e.q.free); got > 16 {
		t.Fatalf("free list grew to %d buckets; recycling is broken", got)
	}
}
