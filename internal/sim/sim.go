// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// An Env owns a virtual clock measured in integer nanoseconds and a heap of
// pending events. Simulation actors are Procs: each runs in its own
// goroutine but the scheduler resumes exactly one Proc at a time, so the
// simulation is fully deterministic — ties in the event heap are broken by
// an ever-increasing sequence number.
//
// Procs interact with virtual time through blocking calls (Sleep, Wait,
// Acquire); while a Proc is running, virtual time does not advance.
// Callbacks scheduled with Env.At run in the scheduler context and must not
// block.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/timeline"
)

// Handy duration constants, in virtual nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000
	Millisecond int64 = 1000 * 1000
	Second      int64 = 1000 * 1000 * 1000
)

// FmtDuration renders a virtual duration in engineering units for logs and
// experiment tables.
func FmtDuration(ns int64) string {
	switch {
	case ns >= Second:
		return fmt.Sprintf("%.3fs", float64(ns)/float64(Second))
	case ns >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(ns)/float64(Millisecond))
	case ns >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(ns)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// Env is a simulation environment: a virtual clock plus the machinery to
// schedule callbacks and cooperatively run Procs.
type Env struct {
	now     int64
	seq     uint64
	heap    eventHeap
	procs   []*Proc
	current *Proc
	running bool
	stopped bool
	panicv  any // re-panicked out of Run

	// No-progress watchdog (SetWatchdog). Zero timeout = disarmed.
	wdTimeout int64
	wdLast    int64
	wdDiag    func() string
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{}
}

// Now returns the current virtual time in nanoseconds.
func (e *Env) Now() int64 { return e.now }

// At schedules fn to run at absolute virtual time t (>= Now). fn runs in the
// scheduler context: it must not block and must not call Proc methods.
func (e *Env) At(t int64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%d) is in the past (now=%d)", t, e.now))
	}
	e.push(t, fn)
}

// After schedules fn to run d nanoseconds from now.
func (e *Env) After(d int64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: After(%d) negative delay", d))
	}
	e.push(e.now+d, fn)
}

func (e *Env) push(t int64, fn func()) {
	e.seq++
	heap.Push(&e.heap, &schedItem{at: t, seq: e.seq, fn: fn})
}

// Stop halts the simulation after the current event finishes. Blocked Procs
// are left in place; Run returns without error.
func (e *Env) Stop() { e.stopped = true }

// StallError reports that the no-progress watchdog fired: virtual time kept
// advancing (the event heap was not empty — e.g. progress engines were still
// polling) but nothing Beat the watchdog for longer than the timeout.
type StallError struct {
	At        int64    // virtual time the watchdog fired
	LastBeat  int64    // virtual time of the last recorded progress
	TimeoutNs int64    // armed timeout
	Stuck     []string // started, unfinished procs (sorted)
	Diag      string   // subsystem diagnostic (request states, recent events)
}

func (s *StallError) Error() string {
	msg := fmt.Sprintf("sim: stalled: no progress for %s (watchdog timeout %s, last progress at %s, now %s); %d proc(s) incomplete: %v",
		FmtDuration(s.At-s.LastBeat), FmtDuration(s.TimeoutNs), FmtDuration(s.LastBeat), FmtDuration(s.At), len(s.Stuck), s.Stuck)
	if s.Diag != "" {
		msg += "\n" + s.Diag
	}
	return msg
}

// SetWatchdog arms (or, with timeoutNs <= 0, disarms) a no-progress
// watchdog: if virtual time advances more than timeoutNs past the last
// Beat while some Proc is still unfinished, Run aborts and returns a
// *StallError carrying diag's output. The watchdog only observes the clock
// of events already scheduled, so arming it perturbs neither event order
// nor timings — fault-free runs stay byte-identical.
func (e *Env) SetWatchdog(timeoutNs int64, diag func() string) {
	if timeoutNs <= 0 {
		e.wdTimeout = 0
		e.wdDiag = nil
		return
	}
	e.wdTimeout = timeoutNs
	e.wdDiag = diag
	e.wdLast = e.now
}

// Beat records progress for the watchdog (a request completed, useful work
// happened). Cheap and safe to call with the watchdog disarmed.
func (e *Env) Beat() { e.wdLast = e.now }

// stalled builds the watchdog error at the current virtual time.
func (e *Env) stalled() *StallError {
	se := &StallError{At: e.now, LastBeat: e.wdLast, TimeoutNs: e.wdTimeout}
	for _, p := range e.procs {
		if !p.done && p.started {
			se.Stuck = append(se.Stuck, p.name)
		}
	}
	sort.Strings(se.Stuck)
	if e.wdDiag != nil {
		se.Diag = e.wdDiag()
	}
	return se
}

// Run executes scheduled events in time order until the heap drains, Stop is
// called, or every Proc has finished. It returns an error if any Proc is
// still blocked when the event heap drains (a deadlock in the modeled
// system) and names the stuck Procs.
func (e *Env) Run() error {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && e.heap.Len() > 0 {
		it := heap.Pop(&e.heap).(*schedItem)
		if it.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = it.at
		if e.wdTimeout > 0 && e.now-e.wdLast > e.wdTimeout {
			if se := e.stalled(); len(se.Stuck) > 0 {
				return se
			}
			e.wdLast = e.now // all procs done; trailing timers are not a stall
		}
		it.fn()
		if e.panicv != nil {
			v := e.panicv
			e.panicv = nil
			panic(v)
		}
	}
	if e.stopped {
		return nil
	}
	var stuck []string
	for _, p := range e.procs {
		if !p.done && p.started {
			stuck = append(stuck, p.name)
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return fmt.Errorf("sim: deadlock, %d proc(s) still blocked: %v", len(stuck), stuck)
	}
	return nil
}

// RunUntil runs the simulation but stops once virtual time would exceed t.
func (e *Env) RunUntil(t int64) error {
	e.push(t, func() { e.Stop() })
	return e.Run()
}

// schedItem is a single heap entry.
type schedItem struct {
	at  int64
	seq uint64
	fn  func()
}

type eventHeap []*schedItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*schedItem)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Proc is a simulated sequential process (for example, a CPU thread of one
// MPI rank). Its body function runs in a dedicated goroutine; the scheduler
// guarantees at most one Proc executes at a time.
type Proc struct {
	env     *Env
	name    string
	id      int
	resume  chan struct{}
	yielded chan yieldKind
	done    bool
	started bool
	killed  bool
	startAt int64
	tl      *timeline.Recorder
}

// killSentinel unwinds a killed Proc's goroutine via panic. It is recognized
// by the Spawn recover handler and never escapes the simulation.
type killSentinel struct{}

// Kill marks the Proc dead (a simulated process crash). The Proc's body is
// unwound at its next scheduling point and never runs again; a Proc blocked
// in Sleep/Wait/Acquire is woken immediately so the unwind happens at the
// current virtual time. Killing a finished or already-killed Proc is a no-op.
// Must be called from scheduler context (an Env.At callback), like every
// other scheduler-side mutation.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if p == p.env.current {
		return // dies at its next blocking call
	}
	p.env.push(p.env.now, func() { p.env.dispatch(p) })
}

// Killed reports whether the Proc was killed.
func (p *Proc) Killed() bool { return p.killed }

// Finished reports whether the Proc's body has completed (normally, or by
// being killed).
func (p *Proc) Finished() bool { return p.done }

// SetTimeline attaches a timeline recorder to the Proc. A nil recorder (the
// default) disables tracing: the hot paths then skip all event construction.
func (p *Proc) SetTimeline(tl *timeline.Recorder) { p.tl = tl }

type yieldKind int

const (
	yieldBlocked yieldKind = iota
	yieldFinished
	yieldPanicked
)

// Spawn creates a Proc named name whose body starts at the current virtual
// time. The body receives the Proc for time-consuming calls.
func (e *Env) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		env:     e,
		name:    name,
		id:      len(e.procs),
		resume:  make(chan struct{}),
		yielded: make(chan yieldKind),
	}
	p.startAt = e.now
	e.procs = append(e.procs, p)
	go p.bodyLoop(body)
	e.push(e.now, func() { e.dispatch(p) })
	return p
}

// bodyLoop runs a Proc's body in its own goroutine, translating panics into
// scheduler yields. A killSentinel unwind (Kill) finishes the Proc cleanly
// without surfacing a panic.
func (p *Proc) bodyLoop(body func(p *Proc)) {
	e := p.env
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			if _, isKill := r.(killSentinel); !isKill {
				p.done = true
				e.panicv = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
				p.yielded <- yieldPanicked
				return
			}
		}
		p.done = true
		if p.tl != nil {
			p.tl.Span(timeline.LayerSim, timeline.CostNone, "sched", "proc:"+p.name, p.startAt, e.now-p.startAt)
		}
		p.yielded <- yieldFinished
	}()
	if p.killed {
		panic(killSentinel{})
	}
	body(p)
}

// SpawnAt is Spawn with the body delayed until absolute time t.
func (e *Env) SpawnAt(t int64, name string, body func(p *Proc)) *Proc {
	if t < e.now {
		panic("sim: SpawnAt in the past")
	}
	p := &Proc{
		env:     e,
		name:    name,
		id:      len(e.procs),
		resume:  make(chan struct{}),
		yielded: make(chan yieldKind),
	}
	p.startAt = t
	e.procs = append(e.procs, p)
	go p.bodyLoop(body)
	e.push(t, func() { e.dispatch(p) })
	return p
}

// dispatch resumes p and waits for it to block or finish. Runs in scheduler
// context.
func (e *Env) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.started = true
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-p.yielded
	e.current = prev
}

// yield suspends the calling Proc until the scheduler resumes it again.
// Must be called from within the Proc's own goroutine. A killed Proc unwinds
// here instead of resuming.
func (p *Proc) yield() {
	p.yielded <- yieldBlocked
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// Name returns the Proc's name.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() int64 { return p.env.now }

// Sleep advances the Proc by d nanoseconds of virtual time. d == 0 yields
// the processor to other work scheduled at the same instant.
func (p *Proc) Sleep(d int64) {
	if d < 0 {
		panic("sim: Sleep negative duration")
	}
	if p.tl != nil && d > 0 {
		p.tl.Span(timeline.LayerSim, timeline.CostNone, "sched", "sleep", p.env.now, d)
	}
	p.env.push(p.env.now+d, func() { p.env.dispatch(p) })
	p.yield()
}

// Wait blocks the Proc until ev fires. If ev already fired, Wait returns
// immediately without advancing time.
func (p *Proc) Wait(ev *Event) {
	if ev.fired {
		return
	}
	t0 := p.env.now
	ev.waiters = append(ev.waiters, p)
	p.yield()
	if p.tl != nil && p.env.now > t0 {
		p.tl.Span(timeline.LayerSim, timeline.CostNone, "sched", "wait:"+ev.name, t0, p.env.now-t0)
	}
}

// Event is a one-shot level-triggered signal. Once fired it stays fired;
// waiters arriving afterwards do not block. Fire may be called from either
// a Proc or a scheduler callback.
type Event struct {
	env     *Env
	name    string
	fired   bool
	at      int64 // time of firing, valid once fired
	waiters []*Proc
	hooks   []func()
}

// NewEvent creates an unfired event.
func (e *Env) NewEvent(name string) *Event {
	return &Event{env: e, name: name}
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// FiredAt returns the virtual time the event fired; it panics if unfired.
func (ev *Event) FiredAt() int64 {
	if !ev.fired {
		panic("sim: FiredAt on unfired event " + ev.name)
	}
	return ev.at
}

// OnFire registers fn to run (in scheduler context) when the event fires.
// If the event already fired, fn is scheduled to run at the current time.
func (ev *Event) OnFire(fn func()) {
	if ev.fired {
		ev.env.push(ev.env.now, fn)
		return
	}
	ev.hooks = append(ev.hooks, fn)
}

// Fire marks the event fired at the current virtual time and wakes all
// waiters. Firing twice panics: one-shot semantics are load-bearing for the
// request/response status protocol built on top.
func (ev *Event) Fire() {
	if ev.fired {
		panic("sim: event fired twice: " + ev.name)
	}
	ev.fired = true
	ev.at = ev.env.now
	waiters := ev.waiters
	ev.waiters = nil
	for _, w := range waiters {
		w := w
		ev.env.push(ev.env.now, func() { ev.env.dispatch(w) })
	}
	hooks := ev.hooks
	ev.hooks = nil
	for _, h := range hooks {
		ev.env.push(ev.env.now, h)
	}
}

// FireAt schedules the event to fire at absolute time t.
func (ev *Event) FireAt(t int64) {
	ev.env.At(t, func() { ev.Fire() })
}

// FireAfter schedules the event to fire d nanoseconds from now.
func (ev *Event) FireAfter(d int64) {
	ev.env.After(d, func() { ev.Fire() })
}

// WaitAll blocks p until every event in evs has fired.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// Resource is a FIFO-ordered counted resource (a DMA engine, a driver
// serialization point, ...). Procs Acquire a unit, possibly queueing, and
// must Release it afterwards.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	queue    []*Proc
}

// NewResource creates a resource with the given number of units.
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: e, name: name, capacity: capacity}
}

// Acquire takes one unit, blocking in FIFO order until one is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.yield()
}

// Release returns one unit and wakes the head of the queue, if any.
// The woken Proc owns the unit immediately (no re-check race: the scheduler
// is single-threaded).
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire on " + r.name)
	}
	if len(r.queue) > 0 {
		head := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		// Unit transfers directly to head; inUse stays the same.
		r.env.push(r.env.now, func() { r.env.dispatch(head) })
		return
	}
	r.inUse--
}

// InUse reports how many units are currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports how many Procs are waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }
