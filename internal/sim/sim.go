// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// An Env owns a virtual clock measured in integer nanoseconds and a queue of
// pending events. Simulation actors are Procs: each body runs on a pooled
// worker goroutine, but the scheduler resumes exactly one Proc at a time, so
// the simulation is fully deterministic — events at equal timestamps run in
// insertion order.
//
// The event queue is sharded by timestamp: a min-heap orders the distinct
// pending times while each time's events live in a FIFO bucket. Discrete
// simulations schedule overwhelmingly at the current instant (wakeups,
// event fans, zero-cost callbacks), so the common push/pop is an O(1)
// bucket append/advance instead of an O(log n) heap rotation — at thousands
// of in-flight events per tick this is what keeps dispatch near O(1).
//
// Worker goroutines are recycled: when a Proc finishes (normally, killed,
// or panicked) its worker returns to an idle pool and picks up the next
// spawned Proc, and all per-Proc state is released — an idle or finished
// rank costs O(1) memory, which is what makes 1024-rank runs tractable.
//
// Procs interact with virtual time through blocking calls (Sleep, Wait,
// Acquire); while a Proc is running, virtual time does not advance.
// Callbacks scheduled with Env.At run in the scheduler context and must not
// block.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/timeline"
)

// Handy duration constants, in virtual nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000
	Millisecond int64 = 1000 * 1000
	Second      int64 = 1000 * 1000 * 1000
)

// FmtDuration renders a virtual duration in engineering units for logs and
// experiment tables.
func FmtDuration(ns int64) string {
	switch {
	case ns >= Second:
		return fmt.Sprintf("%.3fs", float64(ns)/float64(Second))
	case ns >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(ns)/float64(Millisecond))
	case ns >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(ns)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// Env is a simulation environment: a virtual clock plus the machinery to
// schedule callbacks and cooperatively run Procs.
type Env struct {
	now      int64
	q        timeQueue
	live     map[*Proc]struct{}
	nspawned int
	current  *Proc
	running  bool
	stopped  bool
	panicv   any // re-panicked out of Run

	idle         []*worker // workers with no Proc bound, ready for reuse
	workersAlive int       // goroutines currently parked or running
	workersTotal int       // goroutines ever started (reuse oracle)

	// No-progress watchdog (SetWatchdog). Zero timeout = disarmed.
	wdTimeout int64
	wdLast    int64
	wdDiag    func() string
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{live: make(map[*Proc]struct{})}
}

// Now returns the current virtual time in nanoseconds.
func (e *Env) Now() int64 { return e.now }

// At schedules fn to run at absolute virtual time t (>= Now). fn runs in the
// scheduler context: it must not block and must not call Proc methods.
func (e *Env) At(t int64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%d) is in the past (now=%d)", t, e.now))
	}
	e.q.push(t, fn)
}

// After schedules fn to run d nanoseconds from now.
func (e *Env) After(d int64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: After(%d) negative delay", d))
	}
	e.q.push(e.now+d, fn)
}

// Stop halts the simulation after the current event finishes. Blocked Procs
// are left in place; Run returns without error.
func (e *Env) Stop() { e.stopped = true }

// QueueLen reports how many events are pending (for leak oracles).
func (e *Env) QueueLen() int { return e.q.len() }

// LiveProcs reports how many spawned Procs have not yet finished. A clean
// run ends at zero: every Proc's scheduler state has been released.
func (e *Env) LiveProcs() int { return len(e.live) }

// WorkerStats reports the pooled-worker counters: idle workers ready for
// reuse, worker goroutines currently alive, and goroutines ever started.
// total < procs-spawned proves recycling; alive == idle after a clean Run
// proves no worker is pinned by a leaked Proc.
func (e *Env) WorkerStats() (idle, alive, total int) {
	return len(e.idle), e.workersAlive, e.workersTotal
}

// StallError reports that the no-progress watchdog fired: virtual time kept
// advancing (the event queue was not empty — e.g. progress engines were
// still polling) but nothing Beat the watchdog for longer than the timeout.
type StallError struct {
	At        int64    // virtual time the watchdog fired
	LastBeat  int64    // virtual time of the last recorded progress
	TimeoutNs int64    // armed timeout
	Stuck     []string // started, unfinished procs (sorted)
	Diag      string   // subsystem diagnostic (request states, recent events)
}

func (s *StallError) Error() string {
	msg := fmt.Sprintf("sim: stalled: no progress for %s (watchdog timeout %s, last progress at %s, now %s); %d proc(s) incomplete: %v",
		FmtDuration(s.At-s.LastBeat), FmtDuration(s.TimeoutNs), FmtDuration(s.LastBeat), FmtDuration(s.At), len(s.Stuck), s.Stuck)
	if s.Diag != "" {
		msg += "\n" + s.Diag
	}
	return msg
}

// SetWatchdog arms (or, with timeoutNs <= 0, disarms) a no-progress
// watchdog: if virtual time advances more than timeoutNs past the last
// Beat while some Proc is still unfinished, Run aborts and returns a
// *StallError carrying diag's output. The watchdog only observes the clock
// of events already scheduled, so arming it perturbs neither event order
// nor timings — fault-free runs stay byte-identical.
func (e *Env) SetWatchdog(timeoutNs int64, diag func() string) {
	if timeoutNs <= 0 {
		e.wdTimeout = 0
		e.wdDiag = nil
		return
	}
	e.wdTimeout = timeoutNs
	e.wdDiag = diag
	e.wdLast = e.now
}

// Beat records progress for the watchdog (a request completed, useful work
// happened). Cheap and safe to call with the watchdog disarmed.
func (e *Env) Beat() { e.wdLast = e.now }

// LastBeat reports the virtual time of the most recent Beat — the floor
// the watchdog measures stalls against. Blocking primitives that poll a
// shared flag (rma.WaitSignal) use it to unwind gracefully with a
// *StallError one poll before the scheduler-side watchdog would abort
// the whole run.
func (e *Env) LastBeat() int64 { return e.wdLast }

// stuckNames lists started-but-unfinished Procs, sorted for determinism.
func (e *Env) stuckNames() []string {
	var stuck []string
	for p := range e.live {
		if p.started {
			stuck = append(stuck, p.name)
		}
	}
	sort.Strings(stuck)
	return stuck
}

// stalled builds the watchdog error at the current virtual time.
func (e *Env) stalled() *StallError {
	se := &StallError{At: e.now, LastBeat: e.wdLast, TimeoutNs: e.wdTimeout, Stuck: e.stuckNames()}
	if e.wdDiag != nil {
		se.Diag = e.wdDiag()
	}
	return se
}

// Run executes scheduled events in time order until the queue drains, Stop
// is called, or every Proc has finished. It returns an error if any Proc is
// still blocked when the event queue drains (a deadlock in the modeled
// system) and names the stuck Procs.
func (e *Env) Run() error {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() {
		e.running = false
		if len(e.live) == 0 {
			e.drainIdleWorkers()
		}
	}()
	for !e.stopped && e.q.len() > 0 {
		t, fn := e.q.pop()
		if t < e.now {
			panic("sim: time went backwards")
		}
		e.now = t
		if e.wdTimeout > 0 && e.now-e.wdLast > e.wdTimeout {
			if se := e.stalled(); len(se.Stuck) > 0 {
				return se
			}
			e.wdLast = e.now // all procs done; trailing timers are not a stall
		}
		fn()
		if e.panicv != nil {
			v := e.panicv
			e.panicv = nil
			panic(v)
		}
	}
	if e.stopped {
		return nil
	}
	if stuck := e.stuckNames(); len(stuck) > 0 {
		return fmt.Errorf("sim: deadlock, %d proc(s) still blocked: %v", len(stuck), stuck)
	}
	return nil
}

// RunUntil runs the simulation but stops once virtual time would exceed t.
func (e *Env) RunUntil(t int64) error {
	e.q.push(t, func() { e.Stop() })
	return e.Run()
}

// --- timestamp-sharded event queue ---

// bucket holds the FIFO of events pending at one timestamp. next is the
// read cursor; executed slots are nilled so closures release promptly.
type bucket struct {
	fns  []func()
	next int
}

// timeQueue orders events by (timestamp, insertion order): a min-heap of
// the distinct pending timestamps plus a FIFO bucket per timestamp.
// Drained buckets are recycled through a free list, so steady-state
// scheduling allocates nothing.
type timeQueue struct {
	times   []int64
	buckets map[int64]*bucket
	free    []*bucket
	n       int
}

func (q *timeQueue) len() int { return q.n }

func (q *timeQueue) push(t int64, fn func()) {
	b := q.buckets[t]
	if b == nil {
		if k := len(q.free); k > 0 {
			b = q.free[k-1]
			q.free[k-1] = nil
			q.free = q.free[:k-1]
		} else {
			b = &bucket{}
		}
		if q.buckets == nil {
			q.buckets = make(map[int64]*bucket)
		}
		q.buckets[t] = b
		q.heapPush(t)
	}
	b.fns = append(b.fns, fn)
	q.n++
}

// pop removes and returns the earliest pending event. The caller must have
// checked len() > 0. If the popped event empties its bucket, the bucket is
// retired immediately — a push at the same timestamp from inside the
// returned fn recreates it, and that timestamp (== now) is still the heap
// minimum, so ordering is preserved.
func (q *timeQueue) pop() (int64, func()) {
	t := q.times[0]
	b := q.buckets[t]
	fn := b.fns[b.next]
	b.fns[b.next] = nil
	b.next++
	q.n--
	if b.next == len(b.fns) {
		q.heapPop()
		delete(q.buckets, t)
		b.fns = b.fns[:0]
		b.next = 0
		q.free = append(q.free, b)
	}
	return t, fn
}

func (q *timeQueue) heapPush(t int64) {
	q.times = append(q.times, t)
	i := len(q.times) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.times[parent] <= q.times[i] {
			break
		}
		q.times[parent], q.times[i] = q.times[i], q.times[parent]
		i = parent
	}
}

func (q *timeQueue) heapPop() {
	last := len(q.times) - 1
	q.times[0] = q.times[last]
	q.times = q.times[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && q.times[l] < q.times[small] {
			small = l
		}
		if r < last && q.times[r] < q.times[small] {
			small = r
		}
		if small == i {
			return
		}
		q.times[i], q.times[small] = q.times[small], q.times[i]
		i = small
	}
}

// --- pooled workers ---

// worker is a reusable goroutine that hosts Proc bodies one after another.
// The scheduler hands it a Proc on assign; the rendezvous channels carry
// the run/yield ping-pong for whichever Proc is currently bound.
type worker struct {
	assign  chan *Proc
	resume  chan struct{}
	yielded chan yieldKind
}

func (w *worker) loop() {
	for p := range w.assign {
		w.runProc(p)
	}
}

// runProc executes one Proc body to completion, translating panics into
// scheduler yields. A killSentinel unwind (Kill) finishes the Proc cleanly
// without surfacing a panic. Pool bookkeeping happens scheduler-side in
// dispatch; this goroutine only runs bodies.
func (w *worker) runProc(p *Proc) {
	e := p.env
	body := p.body
	p.body = nil
	defer func() {
		if r := recover(); r != nil {
			if _, isKill := r.(killSentinel); !isKill {
				p.done = true
				e.panicv = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
				w.yielded <- yieldPanicked
				return
			}
		}
		p.done = true
		if p.tl != nil {
			p.tl.Span(timeline.LayerSim, timeline.CostNone, "sched", "proc:"+p.name, p.startAt, e.now-p.startAt)
		}
		w.yielded <- yieldFinished
	}()
	if p.killed {
		panic(killSentinel{})
	}
	body(p)
}

// acquireWorker pops an idle worker or starts a fresh goroutine.
func (e *Env) acquireWorker() *worker {
	if k := len(e.idle); k > 0 {
		w := e.idle[k-1]
		e.idle[k-1] = nil
		e.idle = e.idle[:k-1]
		return w
	}
	w := &worker{
		assign:  make(chan *Proc),
		resume:  make(chan struct{}),
		yielded: make(chan yieldKind),
	}
	e.workersAlive++
	e.workersTotal++
	go w.loop()
	return w
}

// drainIdleWorkers terminates parked worker goroutines. Called when a Run
// ends with no live Procs so an Env (and its test process) does not strand
// goroutines; the next Spawn simply starts fresh workers.
func (e *Env) drainIdleWorkers() {
	for _, w := range e.idle {
		close(w.assign)
		e.workersAlive--
	}
	e.idle = e.idle[:0]
}

// finishProc releases all scheduler state bound to a completed Proc: its
// worker returns to the idle pool and the live registry, timeline recorder,
// and body reference are dropped. After this, a finished Proc costs O(1)
// memory no matter how long the simulation keeps running.
func (e *Env) finishProc(p *Proc) {
	if p.w != nil {
		e.idle = append(e.idle, p.w)
		p.w = nil
	}
	p.body = nil
	p.tl = nil
	delete(e.live, p)
}

// Proc is a simulated sequential process (for example, a CPU thread of one
// MPI rank). Bodies run on pooled worker goroutines; the scheduler
// guarantees at most one Proc executes at a time.
type Proc struct {
	env     *Env
	name    string
	id      int
	w       *worker       // bound while started and unfinished
	body    func(p *Proc) // held until first dispatch
	done    bool
	started bool
	killed  bool
	startAt int64
	tl      *timeline.Recorder
}

// killSentinel unwinds a killed Proc's body via panic. It is recognized by
// the worker recover handler and never escapes the simulation.
type killSentinel struct{}

// Kill marks the Proc dead (a simulated process crash). The Proc's body is
// unwound at its next scheduling point and never runs again; a Proc blocked
// in Sleep/Wait/Acquire is woken immediately so the unwind happens at the
// current virtual time. Killing a finished or already-killed Proc is a no-op.
// Must be called from scheduler context (an Env.At callback), like every
// other scheduler-side mutation.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if p == p.env.current {
		return // dies at its next blocking call
	}
	p.env.q.push(p.env.now, func() { p.env.dispatch(p) })
}

// Killed reports whether the Proc was killed.
func (p *Proc) Killed() bool { return p.killed }

// Finished reports whether the Proc's body has completed (normally, or by
// being killed).
func (p *Proc) Finished() bool { return p.done }

// SetTimeline attaches a timeline recorder to the Proc. A nil recorder (the
// default) disables tracing: the hot paths then skip all event construction.
func (p *Proc) SetTimeline(tl *timeline.Recorder) { p.tl = tl }

type yieldKind int

const (
	yieldBlocked yieldKind = iota
	yieldFinished
	yieldPanicked
)

func (e *Env) newProc(name string, startAt int64, body func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, id: e.nspawned, body: body, startAt: startAt}
	e.nspawned++
	if e.live == nil {
		e.live = make(map[*Proc]struct{})
	}
	e.live[p] = struct{}{}
	return p
}

// Spawn creates a Proc named name whose body starts at the current virtual
// time. The body receives the Proc for time-consuming calls. No worker is
// bound until the first dispatch: a Proc that is spawned and killed before
// it starts never costs a goroutine.
func (e *Env) Spawn(name string, body func(p *Proc)) *Proc {
	p := e.newProc(name, e.now, body)
	e.q.push(e.now, func() { e.dispatch(p) })
	return p
}

// SpawnAt is Spawn with the body delayed until absolute time t.
func (e *Env) SpawnAt(t int64, name string, body func(p *Proc)) *Proc {
	if t < e.now {
		panic("sim: SpawnAt in the past")
	}
	p := e.newProc(name, t, body)
	e.q.push(t, func() { e.dispatch(p) })
	return p
}

// dispatch resumes p and waits for it to block or finish. Runs in scheduler
// context. The first dispatch binds a pooled worker; a Proc killed before
// it ever ran finishes inline without consuming one (still recording its
// timeline span, so traces are identical either way).
func (e *Env) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	var kind yieldKind
	if p.w == nil {
		p.started = true
		if p.killed {
			p.done = true
			if p.tl != nil {
				p.tl.Span(timeline.LayerSim, timeline.CostNone, "sched", "proc:"+p.name, p.startAt, e.now-p.startAt)
			}
			e.current = prev
			e.finishProc(p)
			return
		}
		w := e.acquireWorker()
		p.w = w
		w.assign <- p
		kind = <-w.yielded
	} else {
		p.w.resume <- struct{}{}
		kind = <-p.w.yielded
	}
	e.current = prev
	if kind != yieldBlocked {
		e.finishProc(p)
	}
}

// yield suspends the calling Proc until the scheduler resumes it again.
// Must be called from within the Proc's body. A killed Proc unwinds here
// instead of resuming.
func (p *Proc) yield() {
	w := p.w
	w.yielded <- yieldBlocked
	<-w.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// Name returns the Proc's name.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() int64 { return p.env.now }

// Sleep advances the Proc by d nanoseconds of virtual time. d == 0 yields
// the processor to other work scheduled at the same instant.
func (p *Proc) Sleep(d int64) {
	if d < 0 {
		panic("sim: Sleep negative duration")
	}
	if p.tl != nil && d > 0 {
		p.tl.Span(timeline.LayerSim, timeline.CostNone, "sched", "sleep", p.env.now, d)
	}
	p.env.q.push(p.env.now+d, func() { p.env.dispatch(p) })
	p.yield()
}

// Wait blocks the Proc until ev fires. If ev already fired, Wait returns
// immediately without advancing time.
func (p *Proc) Wait(ev *Event) {
	if ev.fired {
		return
	}
	t0 := p.env.now
	ev.waiters = append(ev.waiters, p)
	p.yield()
	if p.tl != nil && p.env.now > t0 {
		p.tl.Span(timeline.LayerSim, timeline.CostNone, "sched", "wait:"+ev.name, t0, p.env.now-t0)
	}
}

// Event is a one-shot level-triggered signal. Once fired it stays fired;
// waiters arriving afterwards do not block. Fire may be called from either
// a Proc or a scheduler callback.
type Event struct {
	env     *Env
	name    string
	fired   bool
	at      int64 // time of firing, valid once fired
	waiters []*Proc
	hooks   []func()
}

// NewEvent creates an unfired event.
func (e *Env) NewEvent(name string) *Event {
	return &Event{env: e, name: name}
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// FiredAt returns the virtual time the event fired; it panics if unfired.
func (ev *Event) FiredAt() int64 {
	if !ev.fired {
		panic("sim: FiredAt on unfired event " + ev.name)
	}
	return ev.at
}

// OnFire registers fn to run (in scheduler context) when the event fires.
// If the event already fired, fn is scheduled to run at the current time.
func (ev *Event) OnFire(fn func()) {
	if ev.fired {
		ev.env.q.push(ev.env.now, fn)
		return
	}
	ev.hooks = append(ev.hooks, fn)
}

// Fire marks the event fired at the current virtual time and wakes all
// waiters. Firing twice panics: one-shot semantics are load-bearing for the
// request/response status protocol built on top.
func (ev *Event) Fire() {
	if ev.fired {
		panic("sim: event fired twice: " + ev.name)
	}
	ev.fired = true
	ev.at = ev.env.now
	waiters := ev.waiters
	ev.waiters = nil
	for _, w := range waiters {
		w := w
		ev.env.q.push(ev.env.now, func() { ev.env.dispatch(w) })
	}
	hooks := ev.hooks
	ev.hooks = nil
	for _, h := range hooks {
		ev.env.q.push(ev.env.now, h)
	}
}

// FireAt schedules the event to fire at absolute time t.
func (ev *Event) FireAt(t int64) {
	ev.env.At(t, func() { ev.Fire() })
}

// FireAfter schedules the event to fire d nanoseconds from now.
func (ev *Event) FireAfter(d int64) {
	ev.env.After(d, func() { ev.Fire() })
}

// WaitAll blocks p until every event in evs has fired.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// Resource is a FIFO-ordered counted resource (a DMA engine, a driver
// serialization point, ...). Procs Acquire a unit, possibly queueing, and
// must Release it afterwards.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	queue    []*Proc
}

// NewResource creates a resource with the given number of units.
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: e, name: name, capacity: capacity}
}

// Acquire takes one unit, blocking in FIFO order until one is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.yield()
}

// Release returns one unit and wakes the head of the queue, if any.
// The woken Proc owns the unit immediately (no re-check race: the scheduler
// is single-threaded).
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire on " + r.name)
	}
	if len(r.queue) > 0 {
		head := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		// Unit transfers directly to head; inUse stays the same.
		r.env.push(r.env.now, func() { r.env.dispatch(head) })
		return
	}
	r.inUse--
}

// push keeps the old internal name alive for Resource above.
func (e *Env) push(t int64, fn func()) { e.q.push(t, fn) }

// InUse reports how many units are currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports how many Procs are waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }
