package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestSleepAdvancesTime(t *testing.T) {
	e := NewEnv()
	var end int64
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(3 * Microsecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 8*Microsecond {
		t.Fatalf("end = %d, want %d", end, 8*Microsecond)
	}
}

func TestZeroSleepYields(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSpawnOrderIsDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var order []string
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("p%d", i)
			e.Spawn(name, func(p *Proc) {
				order = append(order, p.Name())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("run %d: order %v differs from %v", i, got, first)
		}
	}
	if !sort.StringsAreSorted(first) {
		t.Fatalf("spawn order not preserved: %v", first)
	}
}

func TestEventWakesWaiters(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("go")
	var woke []int64
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(ev)
			woke = append(woke, p.Now())
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		ev.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 7*Microsecond {
			t.Fatalf("waiter woke at %d, want %d", w, 7*Microsecond)
		}
	}
	if !ev.Fired() || ev.FiredAt() != 7*Microsecond {
		t.Fatalf("event state wrong: fired=%v at=%d", ev.Fired(), ev.at)
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("early")
	var at int64 = -1
	e.Spawn("firer", func(p *Proc) { ev.Fire() })
	e.Spawn("late", func(p *Proc) {
		p.Sleep(4 * Microsecond)
		p.Wait(ev)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 4*Microsecond {
		t.Fatalf("late waiter resumed at %d, want %d", at, 4*Microsecond)
	}
}

func TestEventDoubleFirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double fire")
		}
	}()
	e := NewEnv()
	ev := e.NewEvent("x")
	e.Spawn("p", func(p *Proc) {
		ev.Fire()
		ev.Fire()
	})
	_ = e.Run()
}

func TestOnFireHookRuns(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("x")
	var hookAt int64 = -1
	ev.OnFire(func() { hookAt = e.Now() })
	ev.FireAt(9 * Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hookAt != 9*Microsecond {
		t.Fatalf("hook ran at %d, want %d", hookAt, 9*Microsecond)
	}
}

func TestOnFireAfterFiredRunsImmediately(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("x")
	var ran bool
	e.Spawn("p", func(p *Proc) {
		ev.Fire()
		ev.OnFire(func() { ran = true })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("hook registered after fire never ran")
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent("never")
	e.Spawn("stuck", func(p *Proc) { p.Wait(ev) })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("error %q does not name the stuck proc", err)
	}
}

func TestAtCallbackOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v want %v", order, want)
	}
}

func TestAtInPastPanics(t *testing.T) {
	e := NewEnv()
	e.At(5, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(1, func() {})
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEnv()
	var last int64
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Microsecond)
			last = p.Now()
		}
	})
	if err := e.RunUntil(10 * Microsecond); err != nil {
		t.Fatal(err)
	}
	if last > 10*Microsecond {
		t.Fatalf("ran past the stop time: last=%d", last)
	}
	if e.Now() != 10*Microsecond {
		t.Fatalf("clock = %d, want %d", e.Now(), 10*Microsecond)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from Run")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("panic %v does not carry cause", r)
		}
	}()
	e := NewEnv()
	e.Spawn("bad", func(p *Proc) { panic("boom") })
	_ = e.Run()
}

func TestResourceSerializes(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("dma", 1)
	var spans [][2]int64
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("user%d", i), func(p *Proc) {
			r.Acquire(p)
			start := p.Now()
			p.Sleep(10 * Microsecond)
			spans = append(spans, [2]int64{start, p.Now()})
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Fatalf("span %d overlaps previous: %v", i, spans)
		}
	}
}

func TestResourceCapacityTwoAllowsOverlap(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("dma", 2)
	var maxConc, conc int
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprintf("user%d", i), func(p *Proc) {
			r.Acquire(p)
			conc++
			if conc > maxConc {
				maxConc = conc
			}
			p.Sleep(10 * Microsecond)
			conc--
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConc != 2 {
		t.Fatalf("max concurrency = %d, want 2", maxConc)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("q", 1)
	var order []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("u%d", i)
		e.Spawn(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, p.Name())
			p.Sleep(Microsecond)
			r.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(order) {
		t.Fatalf("not FIFO: %v", order)
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEnv()
	r := e.NewResource("r", 1)
	r.Release()
}

func TestSpawnAt(t *testing.T) {
	e := NewEnv()
	var start int64 = -1
	e.SpawnAt(42*Microsecond, "late", func(p *Proc) { start = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if start != 42*Microsecond {
		t.Fatalf("started at %d, want %d", start, 42*Microsecond)
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEnv()
	evs := []*Event{e.NewEvent("a"), e.NewEvent("b"), e.NewEvent("c")}
	evs[0].FireAt(5 * Microsecond)
	evs[1].FireAt(15 * Microsecond)
	evs[2].FireAt(10 * Microsecond)
	var done int64
	e.Spawn("joiner", func(p *Proc) {
		p.WaitAll(evs...)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 15*Microsecond {
		t.Fatalf("joined at %d, want %d", done, 15*Microsecond)
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := FmtDuration(c.ns); got != c.want {
			t.Errorf("FmtDuration(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

// Property: with a single resource of capacity 1, total busy time equals the
// sum of individual hold times (perfect serialization, no lost time).
func TestPropertyResourceConservation(t *testing.T) {
	f := func(holdsRaw []uint16) bool {
		if len(holdsRaw) == 0 || len(holdsRaw) > 50 {
			return true
		}
		e := NewEnv()
		r := e.NewResource("r", 1)
		var total int64
		var finish int64
		for i, h := range holdsRaw {
			d := int64(h%1000) + 1
			total += d
			e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
				r.Acquire(p)
				p.Sleep(d)
				r.Release()
				if p.Now() > finish {
					finish = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return finish == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: propertyRuns(t, 50)}); err != nil {
		t.Fatal(err)
	}
}

// Property: events fired at random times wake waiters exactly at those
// times, and the maximum observed wake time equals the maximum fire time.
func TestPropertyEventTiming(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEnv()
		times := make([]int64, n)
		evs := make([]*Event, n)
		for i := range evs {
			times[i] = int64(rng.Intn(1_000_000))
			evs[i] = e.NewEvent(fmt.Sprintf("e%d", i))
			evs[i].FireAt(times[i])
		}
		ok := true
		for i := range evs {
			i := i
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				p.Wait(evs[i])
				if p.Now() != times[i] {
					ok = false
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: propertyRuns(t, 40)}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpawnRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEnv()
		for j := 0; j < 100; j++ {
			e.Spawn("p", func(p *Proc) { p.Sleep(10) })
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// propertyRuns scales a property test's case count: the full matrix in CI,
// a fast sample under `go test -short`.
func propertyRuns(t *testing.T, full int) int {
	t.Helper()
	if testing.Short() {
		if full > 5 {
			return full / 5
		}
		return full
	}
	return full
}

func TestWatchdogFiresOnStall(t *testing.T) {
	e := NewEnv()
	e.SetWatchdog(1000, func() string { return "diag-detail" })
	ev := e.NewEvent("never")
	e.Spawn("stuck", func(p *Proc) { p.Wait(ev) })
	// A polling proc keeps the event heap non-empty so the classic
	// drained-heap deadlock detector never triggers; only the watchdog can
	// catch this stall.
	e.Spawn("poller", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(100)
		}
	})
	err := e.Run()
	se, ok := err.(*StallError)
	if !ok {
		t.Fatalf("Run() = %v, want *StallError", err)
	}
	if se.TimeoutNs != 1000 || se.At-se.LastBeat <= 1000 {
		t.Fatalf("stall window: %+v", se)
	}
	if len(se.Stuck) == 0 || se.Stuck[0] != "poller" {
		t.Fatalf("stuck procs: %v", se.Stuck)
	}
	if !strings.Contains(err.Error(), "stalled") || !strings.Contains(err.Error(), "diag-detail") {
		t.Fatalf("error %q missing diagnostics", err)
	}
}

func TestWatchdogBeatDefersFiring(t *testing.T) {
	e := NewEnv()
	e.SetWatchdog(1000, nil)
	e.Spawn("worker", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Sleep(900) // under the timeout each step...
			e.Beat()     // ...and progress recorded each step
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("beating run stalled: %v", err)
	}
}

func TestWatchdogDisarm(t *testing.T) {
	e := NewEnv()
	e.SetWatchdog(10, nil)
	e.SetWatchdog(0, nil) // disarm
	e.Spawn("slow", func(p *Proc) { p.Sleep(1_000_000) })
	if err := e.Run(); err != nil {
		t.Fatalf("disarmed watchdog fired: %v", err)
	}
}

func TestWatchdogIgnoresTrailingTimers(t *testing.T) {
	// Events scheduled far in the future with every proc already finished
	// are not a stall: the run must end cleanly.
	e := NewEnv()
	e.SetWatchdog(1000, nil)
	e.Spawn("quick", func(p *Proc) { p.Sleep(10) })
	e.At(5_000_000, func() {})
	if err := e.Run(); err != nil {
		t.Fatalf("trailing timer tripped watchdog: %v", err)
	}
}

func TestWatchdogDoesNotPerturbTimings(t *testing.T) {
	run := func(arm bool) int64 {
		e := NewEnv()
		if arm {
			e.SetWatchdog(1_000_000, nil)
		}
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(777)
			}
		})
		e.Spawn("b", func(p *Proc) { p.Sleep(3000) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	if with, without := run(true), run(false); with != without {
		t.Fatalf("watchdog perturbed the clock: %d vs %d", with, without)
	}
}
