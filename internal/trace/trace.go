// Package trace accumulates per-category virtual time, matching the cost
// taxonomy of the paper's Fig. 11: (Un)Pack kernels, kernel Launching,
// Scheduling, CPU-GPU Sync, and observed Communication.
package trace

import (
	"fmt"
	"strings"
)

// Category labels one cost bucket.
type Category int

const (
	// PackKernel is GPU time in packing/unpacking kernels.
	PackKernel Category = iota
	// Launch is CPU time burned launching kernels/copies (driver).
	Launch
	// Scheduling is CPU time enqueueing/dequeueing requests (fusion
	// scheduler) or managing events (GPU-Async).
	Scheduling
	// Sync is CPU time waiting on or querying GPU completion.
	Sync
	// Comm is observed communication time (not hidden behind kernels).
	Comm
	// Other is everything else (layout cache, matching, bookkeeping).
	Other
	// Retrans is CPU time spent on reliability-layer recovery: re-posting
	// timed-out messages, re-issuing RDMA transfers, and retrying failed
	// launches. Zero unless fault injection is enabled.
	Retrans
	// Recovery is CPU time spent on rank-failure tolerance: revoking,
	// shrinking, and agreeing on communicators after a peer death. Zero
	// unless a rank crash is planned.
	Recovery

	numCategories
)

var names = [numCategories]string{"(Un)Pack", "Launching", "Scheduling", "Sync", "Comm", "Other", "Retrans", "Recovery"}

// NumCategories reports how many cost categories exist. Consumers that keep
// per-category tallies of their own (the timeline recorder) size their arrays
// with it.
func NumCategories() int { return int(numCategories) }

// Categories lists all categories in display order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

func (c Category) String() string {
	if c < 0 || c >= numCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return names[c]
}

// Breakdown is a per-category tally of virtual nanoseconds. The zero value
// is ready to use.
type Breakdown struct {
	ns [numCategories]int64
}

// Add accrues d nanoseconds to category c.
func (b *Breakdown) Add(c Category, d int64) {
	if c < 0 || c >= numCategories {
		panic("trace: bad category")
	}
	b.ns[c] += d
}

// Get returns the accrued time for c.
func (b *Breakdown) Get(c Category) int64 {
	if c < 0 || c >= numCategories {
		panic("trace: bad category")
	}
	return b.ns[c]
}

// Total sums all categories.
func (b *Breakdown) Total() int64 {
	var sum int64
	for _, v := range b.ns {
		sum += v
	}
	return sum
}

// Merge adds other's tallies into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b.ns {
		b.ns[i] += other.ns[i]
	}
}

// Reset zeroes the breakdown.
func (b *Breakdown) Reset() { b.ns = [numCategories]int64{} }

// Scale divides every bucket by n (for per-iteration averages).
func (b *Breakdown) Scale(n int64) Breakdown {
	if n <= 0 {
		panic("trace: Scale by non-positive n")
	}
	var out Breakdown
	for i, v := range b.ns {
		out.ns[i] = v / n
	}
	return out
}

// String renders "cat=val" pairs for non-zero buckets.
func (b *Breakdown) String() string {
	var parts []string
	for i, v := range b.ns {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%dns", names[i], v))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}
