package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddGetTotal(t *testing.T) {
	var b Breakdown
	b.Add(PackKernel, 100)
	b.Add(Launch, 200)
	b.Add(Launch, 50)
	if b.Get(PackKernel) != 100 || b.Get(Launch) != 250 {
		t.Fatalf("get wrong: %s", b.String())
	}
	if b.Total() != 350 {
		t.Fatalf("total = %d", b.Total())
	}
}

func TestMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(Sync, 10)
	b.Add(Sync, 5)
	b.Add(Comm, 7)
	a.Merge(&b)
	if a.Get(Sync) != 15 || a.Get(Comm) != 7 {
		t.Fatalf("merge wrong: %s", a.String())
	}
}

func TestResetAndScale(t *testing.T) {
	var b Breakdown
	b.Add(Comm, 1000)
	b.Add(Other, 501)
	s := b.Scale(500)
	if s.Get(Comm) != 2 || s.Get(Other) != 1 {
		t.Fatalf("scale wrong: %s", s.String())
	}
	b.Reset()
	if b.Total() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestStringNamesCategories(t *testing.T) {
	var b Breakdown
	b.Add(Scheduling, 42)
	if !strings.Contains(b.String(), "Scheduling=42ns") {
		t.Fatalf("string = %q", b.String())
	}
	var empty Breakdown
	if empty.String() != "(empty)" {
		t.Fatalf("empty string = %q", empty.String())
	}
}

func TestCategoriesComplete(t *testing.T) {
	cats := Categories()
	if len(cats) != 8 {
		t.Fatalf("got %d categories", len(cats))
	}
	seen := map[string]bool{}
	for _, c := range cats {
		if seen[c.String()] {
			t.Fatalf("duplicate name %s", c)
		}
		seen[c.String()] = true
	}
}

func TestBadCategoryPanics(t *testing.T) {
	var b Breakdown
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Add(Category(99), 1)
}

// Property: Total always equals the sum over Categories of Get.
func TestPropertyTotalConsistent(t *testing.T) {
	f := func(vals [6]uint32) bool {
		var b Breakdown
		var want int64
		for i, v := range vals {
			b.Add(Category(i), int64(v))
			want += int64(v)
		}
		return b.Total() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
