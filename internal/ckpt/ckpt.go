// Package ckpt is the epoch-consistent in-memory checkpoint/restore
// subsystem: a buddy-style store of registered GPU buffers that lets
// survivors roll back to the last globally-consistent snapshot after a
// rank failure and Shrink.
//
// Model:
//
//   - Each rank registers the buffers that constitute its recoverable
//     state. A checkpoint epoch opens when the first rank captures and
//     commits once every live registered rank has contributed — the
//     "coordinated checkpoint" consistency rule: no epoch ever mixes
//     pre- and post-collective state across ranks.
//   - Snapshots are cheap span clones in lazy payload mode (O(spans),
//     no byte materialization) and byte copies in exact mode, so the
//     same rollback story scales from 4-rank conformance runs to
//     1024-rank chaos runs.
//   - Buddy placement models where the redundant copy physically lives:
//     rank r's snapshot is mirrored on buddy (r+1) mod n. r's state is
//     recoverable iff r itself or its buddy is still alive; a live rank
//     can adopt a dead rank's snapshot only if it is that rank's buddy.
//   - The store is driver-side bookkeeping: captures and restores cost
//     no virtual time here. Callers that want the simulated machine to
//     pay for the memcpy (the facade's RankCtx.Checkpoint does) charge
//     it themselves from the buffer byte counts this package reports.
package ckpt

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/payload"
)

// snap is one buffer's frozen content inside an epoch.
type snap struct {
	buf  *gpu.Buffer
	data []byte           // exact mode: private byte copy
	lazy *payload.Content // lazy mode: immutable span clone
	sum  uint64           // content checksum at capture time
}

func takeSnap(b *gpu.Buffer) snap {
	s := snap{buf: b, sum: b.Checksum()}
	if b.IsLazy() {
		s.lazy = b.Lazy.Slice(0, b.Lazy.Len())
	} else {
		s.data = append([]byte(nil), b.Data...)
	}
	return s
}

func (s snap) bytes() int64 {
	if s.lazy != nil {
		return s.lazy.Len()
	}
	return int64(len(s.data))
}

// restoreInto writes the frozen content back into dst, which must have the
// same length and payload mode as the captured buffer.
func (s snap) restoreInto(dst *gpu.Buffer) error {
	if dst.IsLazy() != (s.lazy != nil) {
		return fmt.Errorf("ckpt: payload-mode mismatch restoring %s", dst.Name)
	}
	if s.lazy != nil {
		if dst.Lazy.Len() != s.lazy.Len() {
			return fmt.Errorf("ckpt: size mismatch restoring %s: have %d want %d",
				dst.Name, dst.Lazy.Len(), s.lazy.Len())
		}
		dst.Lazy.CopyFrom(0, s.lazy, 0, s.lazy.Len())
		return nil
	}
	if int64(len(dst.Data)) != int64(len(s.data)) {
		return fmt.Errorf("ckpt: size mismatch restoring %s: have %d want %d",
			dst.Name, len(dst.Data), len(s.data))
	}
	copy(dst.Data, s.data)
	return nil
}

// Epoch is one committed (or still-collecting) coordinated checkpoint.
type Epoch struct {
	// Seq numbers epochs 1, 2, ... in commit order.
	Seq int
	// CommEpoch records the communicator epoch the checkpoint was taken
	// under, so a restore after Shrink can tell which world it rolls
	// back to.
	CommEpoch int
	// TakenAt is the virtual time of the last contribution.
	TakenAt int64
	// Bytes is the total logical snapshot size across all ranks.
	Bytes int64

	snaps    [][]snap
	captured []bool
	want     int // live registered ranks still to contribute
}

// Committed reports whether every live registered rank has contributed.
func (e *Epoch) Committed() bool { return e != nil && e.want == 0 }

// RankBytes is the logical snapshot size rank holds in this epoch.
func (e *Epoch) RankBytes(rank int) int64 {
	var n int64
	for _, s := range e.snaps[rank] {
		n += s.bytes()
	}
	return n
}

// RankSum folds the per-buffer capture checksums of rank into one value —
// a fingerprint tests compare across capture/scribble/restore cycles.
func (e *Epoch) RankSum(rank int) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range e.snaps[rank] {
		h ^= s.sum
		h *= 1099511628211
	}
	return h
}

// Store owns the registrations and the epoch history for one world.
type Store struct {
	n    int
	regs [][]*gpu.Buffer
	dead []bool
	open *Epoch
	last *Epoch // most recent committed epoch
	seq  int
}

// NewStore creates a store for a world of n ranks.
func NewStore(n int) *Store {
	return &Store{
		n:    n,
		regs: make([][]*gpu.Buffer, n),
		dead: make([]bool, n),
	}
}

// Buddy is the rank holding the mirror copy of rank's snapshots.
func (st *Store) Buddy(rank int) int { return (rank + 1) % st.n }

// Register adds bufs to rank's recoverable state. Registration order is
// restore order; register before the first capture.
func (st *Store) Register(rank int, bufs ...*gpu.Buffer) {
	st.regs[rank] = append(st.regs[rank], bufs...)
}

// Registered is the number of buffers rank has registered.
func (st *Store) Registered(rank int) int { return len(st.regs[rank]) }

// Rebind swaps rank's registration of old for replacement in place,
// preserving registration (and therefore restore) order. Snapshots taken
// from the old buffer stay restorable — a restore targets the
// registration slot, which now points at the replacement. This is how
// window-backed state survives a fabric re-rendezvous: reopening a
// window after Shrink allocates a fresh device buffer, and the rebind
// lets the pre-failure snapshot roll into it. Reports whether old was
// found.
func (st *Store) Rebind(rank int, old, replacement *gpu.Buffer) bool {
	if rank < 0 || rank >= st.n {
		return false
	}
	for i, b := range st.regs[rank] {
		if b == old {
			st.regs[rank][i] = replacement
			return true
		}
	}
	return false
}

// RestoreBuffer rolls a single registered buffer of rank back to the
// latest committed epoch, returning the bytes logically copied. The
// buffer is matched by registration slot, so it also restores snapshots
// captured from a since-Rebind-replaced predecessor.
func (st *Store) RestoreBuffer(rank int, b *gpu.Buffer) (int64, error) {
	e := st.last
	if e == nil || !e.captured[rank] {
		return 0, fmt.Errorf("ckpt: no committed snapshot for rank %d", rank)
	}
	if !st.Available(rank) {
		return 0, fmt.Errorf("ckpt: rank %d snapshot lost (rank and buddy %d both dead)",
			rank, st.Buddy(rank))
	}
	for i, reg := range st.regs[rank] {
		if reg != b {
			continue
		}
		if i >= len(e.snaps[rank]) {
			return 0, fmt.Errorf("ckpt: buffer %s registered after epoch %d was captured", b.Name, e.Seq)
		}
		s := e.snaps[rank][i]
		if err := s.restoreInto(b); err != nil {
			return 0, err
		}
		return s.bytes(), nil
	}
	return 0, fmt.Errorf("ckpt: buffer %s is not registered for rank %d", b.Name, rank)
}

// RegisteredBytes is the total logical size of rank's registered buffers —
// what a capture or restore of the rank logically moves, in either payload
// mode (callers charging simulated memcpy time use this so lazy and exact
// runs stay clock-identical).
func (st *Store) RegisteredBytes(rank int) int64 {
	var n int64
	for _, b := range st.regs[rank] {
		n += int64(b.Len())
	}
	return n
}

// participants counts live ranks with at least one registration.
func (st *Store) participants() int {
	n := 0
	for r := 0; r < st.n; r++ {
		if !st.dead[r] && len(st.regs[r]) > 0 {
			n++
		}
	}
	return n
}

// CaptureRank contributes rank's registered buffers to the open epoch,
// opening one if needed. When the last live registered rank contributes
// the epoch commits and becomes Latest(). Returns the epoch (committed or
// not) and whether this call committed it.
func (st *Store) CaptureRank(rank int, now int64, commEpoch int) (*Epoch, bool) {
	if st.dead[rank] || len(st.regs[rank]) == 0 {
		return st.open, false
	}
	if st.open == nil {
		st.open = &Epoch{
			CommEpoch: commEpoch,
			snaps:     make([][]snap, st.n),
			captured:  make([]bool, st.n),
			want:      st.participants(),
		}
	}
	e := st.open
	if e.captured[rank] {
		return e, false // duplicate contribution to the same epoch
	}
	e.captured[rank] = true
	e.snaps[rank] = e.snaps[rank][:0]
	for _, b := range st.regs[rank] {
		s := takeSnap(b)
		e.snaps[rank] = append(e.snaps[rank], s)
		e.Bytes += s.bytes()
	}
	if now > e.TakenAt {
		e.TakenAt = now
	}
	if commEpoch > e.CommEpoch {
		e.CommEpoch = commEpoch
	}
	e.want--
	if e.want == 0 {
		st.seq++
		e.Seq = st.seq
		st.last = e
		st.open = nil
		return e, true
	}
	return e, false
}

// CaptureAll captures every live registered rank in one call — the
// driver-side coordinated checkpoint. Returns the committed epoch, or nil
// if nothing is registered.
func (st *Store) CaptureAll(now int64, commEpoch int) *Epoch {
	var last *Epoch
	for r := 0; r < st.n; r++ {
		if e, committed := st.CaptureRank(r, now, commEpoch); committed {
			last = e
		}
	}
	return last
}

// Latest is the most recent committed epoch (nil before the first commit).
func (st *Store) Latest() *Epoch { return st.last }

// MarkDead excludes rank from the capture quorum and from restores. If an
// epoch is open and rank had not yet contributed, the quorum shrinks — a
// checkpoint in progress when a rank dies still commits from the
// survivors, which is exactly the state they will roll back to.
func (st *Store) MarkDead(rank int) {
	if rank < 0 || rank >= st.n || st.dead[rank] {
		return
	}
	st.dead[rank] = true
	if e := st.open; e != nil && !e.captured[rank] && len(st.regs[rank]) > 0 {
		e.want--
		if e.want == 0 {
			st.seq++
			e.Seq = st.seq
			st.last = e
			st.open = nil
		}
	}
}

// Available reports whether rank's latest snapshot is recoverable under
// the buddy model: the rank itself or its buddy must be alive.
func (st *Store) Available(rank int) bool {
	if st.last == nil || !st.last.captured[rank] {
		return false
	}
	return !st.dead[rank] || !st.dead[st.Buddy(rank)]
}

// RestoreRank rolls rank's registered buffers back to the latest committed
// epoch. Returns the bytes logically copied and the restored epoch, or an
// error if no recoverable snapshot exists.
func (st *Store) RestoreRank(rank int) (int64, *Epoch, error) {
	e := st.last
	if e == nil || !e.captured[rank] {
		return 0, nil, fmt.Errorf("ckpt: no committed snapshot for rank %d", rank)
	}
	if !st.Available(rank) {
		return 0, nil, fmt.Errorf("ckpt: rank %d snapshot lost (rank and buddy %d both dead)",
			rank, st.Buddy(rank))
	}
	var n int64
	for i, s := range e.snaps[rank] {
		if err := s.restoreInto(st.regs[rank][i]); err != nil {
			return n, e, err
		}
		n += s.bytes()
	}
	return n, e, nil
}

// AdoptRank copies dead's latest snapshot into the caller-supplied buffers
// (same count, sizes, and payload modes as dead's registrations) — the
// buddy takeover path after a Shrink redistributes a lost rank's work.
// Only dead's buddy holds the mirror, so adopter must be that buddy.
func (st *Store) AdoptRank(adopter, dead int, into []*gpu.Buffer) (int64, error) {
	e := st.last
	if e == nil || !e.captured[dead] {
		return 0, fmt.Errorf("ckpt: no committed snapshot for rank %d", dead)
	}
	if adopter != st.Buddy(dead) {
		return 0, fmt.Errorf("ckpt: rank %d is not the buddy of rank %d (buddy is %d)",
			adopter, dead, st.Buddy(dead))
	}
	if st.dead[adopter] {
		return 0, fmt.Errorf("ckpt: adopter rank %d is dead", adopter)
	}
	if len(into) != len(e.snaps[dead]) {
		return 0, fmt.Errorf("ckpt: adopt buffer count mismatch: have %d want %d",
			len(into), len(e.snaps[dead]))
	}
	var n int64
	for i, s := range e.snaps[dead] {
		if err := s.restoreInto(into[i]); err != nil {
			return n, err
		}
		n += s.bytes()
	}
	return n, nil
}
