package ckpt

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/payload"
)

func exactBuf(name string, n int, seed uint64) *gpu.Buffer {
	b := gpu.HostAlloc(name, n)
	payload.FillBytes(b.Data, seed)
	return b
}

func lazyBuf(name string, n int64, seed uint64) *gpu.Buffer {
	c := payload.New(n)
	c.Fill(seed)
	return &gpu.Buffer{Name: name, Lazy: c}
}

func scribble(b *gpu.Buffer) {
	if b.IsLazy() {
		b.Lazy.Fill(0xbad)
		b.Lazy.WriteBytes(0, []byte{0xde, 0xad})
	} else {
		for i := range b.Data {
			b.Data[i] = 0xcc
		}
	}
}

// TestCaptureRestoreRoundTrip checks the basic contract in both payload
// modes: capture, scribble, restore, byte-identical content and matching
// capture checksums.
func TestCaptureRestoreRoundTrip(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		name := map[bool]string{false: "exact", true: "lazy"}[lazy]
		t.Run(name, func(t *testing.T) {
			const n = 4
			st := NewStore(n)
			bufs := make([][]*gpu.Buffer, n)
			sums := make([][]uint64, n)
			for r := 0; r < n; r++ {
				for j := 0; j < 2; j++ {
					var b *gpu.Buffer
					if lazy {
						b = lazyBuf("g", 4096, uint64(r*10+j))
					} else {
						b = exactBuf("g", 4096, uint64(r*10+j))
					}
					bufs[r] = append(bufs[r], b)
					sums[r] = append(sums[r], b.Checksum())
					st.Register(r, b)
				}
			}
			e := st.CaptureAll(1000, 1)
			if e == nil || !e.Committed() || e.Seq != 1 {
				t.Fatalf("CaptureAll did not commit epoch 1: %+v", e)
			}
			if e.Bytes != int64(n*2*4096) {
				t.Fatalf("epoch bytes = %d, want %d", e.Bytes, n*2*4096)
			}
			for r := 0; r < n; r++ {
				for _, b := range bufs[r] {
					scribble(b)
				}
			}
			for r := 0; r < n; r++ {
				got, re, err := st.RestoreRank(r)
				if err != nil {
					t.Fatalf("restore rank %d: %v", r, err)
				}
				if re != e || got != 2*4096 {
					t.Fatalf("restore rank %d: epoch %p bytes %d", r, re, got)
				}
				for j, b := range bufs[r] {
					if b.Checksum() != sums[r][j] {
						t.Fatalf("rank %d buf %d not restored", r, j)
					}
				}
			}
		})
	}
}

// TestEpochQuorum checks the coordinated-commit rule: the epoch commits
// only once every live registered rank has contributed, duplicates are
// ignored, and a second epoch rolls Latest() forward.
func TestEpochQuorum(t *testing.T) {
	st := NewStore(3)
	bufs := make([]*gpu.Buffer, 3)
	for r := 0; r < 3; r++ {
		bufs[r] = exactBuf("g", 64, uint64(r))
		st.Register(r, bufs[r])
	}
	if _, committed := st.CaptureRank(0, 10, 1); committed {
		t.Fatal("epoch committed after one of three contributions")
	}
	if _, committed := st.CaptureRank(0, 11, 1); committed {
		t.Fatal("duplicate contribution advanced the quorum")
	}
	if st.Latest() != nil {
		t.Fatal("Latest non-nil before commit")
	}
	st.CaptureRank(1, 20, 1)
	e, committed := st.CaptureRank(2, 30, 1)
	if !committed || !e.Committed() || st.Latest() != e {
		t.Fatal("final contribution did not commit the epoch")
	}
	if e.TakenAt != 30 || e.CommEpoch != 1 {
		t.Fatalf("epoch stamps = (%d, %d), want (30, 1)", e.TakenAt, e.CommEpoch)
	}
	e2 := st.CaptureAll(100, 2)
	if e2 == nil || e2.Seq != 2 || st.Latest() != e2 {
		t.Fatal("second CaptureAll did not become Latest")
	}
}

// TestMarkDeadShrinksQuorum: a rank dying mid-checkpoint must not wedge
// the epoch — the survivors' contributions commit without it.
func TestMarkDeadShrinksQuorum(t *testing.T) {
	st := NewStore(3)
	for r := 0; r < 3; r++ {
		st.Register(r, exactBuf("g", 64, uint64(r)))
	}
	st.CaptureRank(0, 10, 1)
	st.CaptureRank(1, 20, 1)
	st.MarkDead(2)
	e := st.Latest()
	if e == nil || !e.Committed() {
		t.Fatal("epoch did not commit when the missing rank died")
	}
	if e.RankBytes(2) != 0 || e.RankBytes(0) != 64 {
		t.Fatal("committed epoch has wrong per-rank contents")
	}
}

// TestBuddyAvailability: a dead rank's snapshot survives while its buddy
// lives and is lost when both die.
func TestBuddyAvailability(t *testing.T) {
	st := NewStore(4)
	for r := 0; r < 4; r++ {
		st.Register(r, exactBuf("g", 64, uint64(r)))
	}
	st.CaptureAll(10, 1)
	st.MarkDead(1)
	if !st.Available(1) {
		t.Fatal("snapshot of dead rank 1 should survive via buddy 2")
	}
	st.MarkDead(2)
	if st.Available(1) {
		t.Fatal("snapshot of rank 1 should be lost: rank and buddy both dead")
	}
	if _, _, err := st.RestoreRank(1); err == nil {
		t.Fatal("RestoreRank succeeded on a lost snapshot")
	}
	if !st.Available(2) {
		t.Fatal("snapshot of dead rank 2 should survive via buddy 3")
	}
}

// TestAdoptRank: only the buddy may take over a dead rank's snapshot, and
// the adopted bytes match the capture exactly (lazy mode).
func TestAdoptRank(t *testing.T) {
	st := NewStore(4)
	bufs := make([]*gpu.Buffer, 4)
	for r := 0; r < 4; r++ {
		bufs[r] = lazyBuf("g", 2048, uint64(r+7))
		st.Register(r, bufs[r])
	}
	e := st.CaptureAll(10, 1)
	want := bufs[3].Checksum()
	st.MarkDead(3)
	into := []*gpu.Buffer{lazyBuf("adopt", 2048, 0)}
	if _, err := st.AdoptRank(1, 3, into); err == nil {
		t.Fatal("non-buddy adoption succeeded")
	}
	n, err := st.AdoptRank(st.Buddy(3), 3, into)
	if err != nil || n != 2048 {
		t.Fatalf("buddy adoption failed: n=%d err=%v", n, err)
	}
	if into[0].Checksum() != want || into[0].Checksum() != e.RankSum(3)^want^e.RankSum(3) {
		t.Fatal("adopted content does not match the capture")
	}
}

// TestRestoreErrors: restoring before any commit, and with no snapshot
// for the rank, must fail with a useful error rather than corrupting.
func TestRestoreErrors(t *testing.T) {
	st := NewStore(2)
	st.Register(0, exactBuf("g", 8, 1))
	if _, _, err := st.RestoreRank(0); err == nil {
		t.Fatal("restore before first commit succeeded")
	}
	st.CaptureAll(5, 1)
	if _, _, err := st.RestoreRank(1); err == nil {
		t.Fatal("restore of unregistered rank succeeded")
	}
	if _, committed := st.CaptureRank(1, 6, 1); committed {
		t.Fatal("capture of unregistered rank committed an epoch")
	}
}

// TestRebindRestoreBuffer covers the window-recovery path: a snapshot
// captured from one buffer rolls into a replacement that took over its
// registration slot (the fresh window buffer a post-Shrink reopen
// allocates), in both payload modes.
func TestRebindRestoreBuffer(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		name := map[bool]string{false: "exact", true: "lazy"}[lazy]
		t.Run(name, func(t *testing.T) {
			const n = 1024
			st := NewStore(2)
			mk := func(bname string, seed uint64) *gpu.Buffer {
				if lazy {
					return lazyBuf(bname, n, seed)
				}
				return exactBuf(bname, n, seed)
			}
			old := mk("win-e0", 7)
			other := mk("grid", 8)
			st.Register(0, old, other)
			st.Register(1, mk("peer", 9))
			if st.CaptureAll(100, 0) == nil {
				t.Fatal("capture did not commit")
			}
			want := old.Checksum()

			// The reopened window is a fresh buffer with junk content.
			fresh := mk("win-e1", 0xbad)
			if !st.Rebind(0, old, fresh) {
				t.Fatal("Rebind did not find the old buffer")
			}
			if st.Rebind(0, old, fresh) {
				t.Fatal("Rebind found an already-replaced buffer")
			}
			got, err := st.RestoreBuffer(0, fresh)
			if err != nil {
				t.Fatalf("RestoreBuffer: %v", err)
			}
			if got != n {
				t.Fatalf("RestoreBuffer moved %d bytes, want %d", got, n)
			}
			if fresh.Checksum() != want {
				t.Fatal("restored replacement does not match the captured content")
			}

			// Single-buffer restore leaves the other registration alone.
			scribble(other)
			junk := other.Checksum()
			if _, err := st.RestoreBuffer(0, fresh); err != nil {
				t.Fatalf("second RestoreBuffer: %v", err)
			}
			if other.Checksum() != junk {
				t.Fatal("RestoreBuffer touched an unrelated registration")
			}

			// Unknown buffers and late registrations are typed errors.
			if _, err := st.RestoreBuffer(0, old); err == nil {
				t.Fatal("RestoreBuffer on the replaced buffer succeeded")
			}
			late := mk("late", 3)
			st.Register(0, late)
			if _, err := st.RestoreBuffer(0, late); err == nil {
				t.Fatal("RestoreBuffer on a post-capture registration succeeded")
			}
		})
	}
}
