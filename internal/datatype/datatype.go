// Package datatype implements an MPI derived-datatype (DDT) engine: type
// constructors mirroring MPI_Type_create_* (contiguous, vector, hvector,
// indexed, hindexed, indexed-block, struct, subarray), arbitrary nesting,
// and commit-time flattening to a canonical list of contiguous byte blocks
// — the representation the GPU packing kernels and the layout cache consume
// (the "flattening on the fly" lineage the paper builds on).
package datatype

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrInvalidType is the sentinel every *InvalidTypeError unwraps to:
// errors.Is(err, ErrInvalidType) matches any malformed-constructor error.
var ErrInvalidType = errors.New("datatype: invalid constructor input")

// InvalidTypeError is the typed validation error CommitE returns for a
// malformed constructor input (negative counts, mismatched slice lengths,
// out-of-range subarray bounds). Constructors defer the report — they
// return a poisoned Type carrying the error — so building a type never
// panics; Commit (the panicking wrapper) and CommitE (the typed-error
// form) surface it, mirroring the Alloc/AllocE convention of the facade.
type InvalidTypeError struct {
	// Constructor names the offending MPI-style constructor.
	Constructor string
	// Reason describes what was malformed.
	Reason string
}

func (e *InvalidTypeError) Error() string {
	return fmt.Sprintf("datatype: %s: %s", e.Constructor, e.Reason)
}

// Unwrap lets errors.Is(err, ErrInvalidType) match.
func (e *InvalidTypeError) Unwrap() error { return ErrInvalidType }

// invalidType is the poisoned Type a constructor returns for malformed
// input. It is inert (zero size and extent, no blocks) so accidental use
// before Commit cannot corrupt anything; Commit/CommitE report the error.
type invalidType struct {
	err *InvalidTypeError
}

func invalid(constructor, format string, args ...any) Type {
	return invalidType{&InvalidTypeError{Constructor: constructor, Reason: fmt.Sprintf(format, args...)}}
}

func (t invalidType) Size() int64                      { return 0 }
func (t invalidType) Extent() int64                    { return 0 }
func (t invalidType) TypeName() string                 { return fmt.Sprintf("invalid(%s)", t.err.Constructor) }
func (t invalidType) flatten(base int64, out *[]Block) {}
func (t invalidType) check() *InvalidTypeError         { return t.err }

// Block is one contiguous span of a flattened layout: Offset bytes from the
// buffer base, Len bytes long.
type Block struct {
	Offset int64
	Len    int64
}

// Type is an uncommitted datatype description. Types are immutable once
// built; Commit produces the flattened Layout used everywhere else.
type Type interface {
	// Size is the number of bytes of actual data in one element.
	Size() int64
	// Extent is the span one element covers in memory, including holes
	// (lb..ub in MPI terms; we assume lb = 0).
	Extent() int64
	// TypeName is a human-readable constructor description.
	TypeName() string
	// flatten appends the element's blocks, shifted by base, to out.
	flatten(base int64, out *[]Block)
	// check reports a deferred constructor-validation error (nil when the
	// type tree is well-formed). CommitE surfaces it as a typed error;
	// Commit panics on it.
	check() *InvalidTypeError
}

// --- primitives ---

type primitive struct {
	name string
	size int64
}

func (p primitive) Size() int64      { return p.size }
func (p primitive) Extent() int64    { return p.size }
func (p primitive) TypeName() string { return p.name }
func (p primitive) flatten(base int64, out *[]Block) {
	*out = append(*out, Block{Offset: base, Len: p.size})
}
func (p primitive) check() *InvalidTypeError { return nil }

// Predefined primitive types (sizes per the usual MPI bindings).
var (
	Byte       Type = primitive{"MPI_BYTE", 1}
	Char       Type = primitive{"MPI_CHAR", 1}
	Int32      Type = primitive{"MPI_INT32", 4}
	Int64      Type = primitive{"MPI_INT64", 8}
	Float32    Type = primitive{"MPI_FLOAT", 4}
	Float64    Type = primitive{"MPI_DOUBLE", 8}
	Complex64  Type = primitive{"MPI_COMPLEX", 8}
	Complex128 Type = primitive{"MPI_DOUBLE_COMPLEX", 16}
)

// --- contiguous ---

type contiguous struct {
	count int
	base  Type
}

// Contiguous replicates base count times back to back
// (MPI_Type_contiguous).
func Contiguous(count int, base Type) Type {
	if count < 0 {
		return invalid("Contiguous", "negative count %d", count)
	}
	return contiguous{count, base}
}

func (c contiguous) Size() int64   { return int64(c.count) * c.base.Size() }
func (c contiguous) Extent() int64 { return int64(c.count) * c.base.Extent() }
func (c contiguous) TypeName() string {
	return fmt.Sprintf("contiguous(%d,%s)", c.count, c.base.TypeName())
}
func (c contiguous) check() *InvalidTypeError { return c.base.check() }
func (c contiguous) flatten(base int64, out *[]Block) {
	// Dense composition (gap-free primitives back to back) flattens to one
	// block in O(1) instead of one block per element — contiguous byte
	// layouts over megabyte staging bundles are committed on hot paths.
	if d := denseLen(c); d > 0 {
		*out = append(*out, Block{Offset: base, Len: d})
		return
	}
	ext := c.base.Extent()
	for i := 0; i < c.count; i++ {
		c.base.flatten(base+int64(i)*ext, out)
	}
}

// denseLen reports the length of t when it flattens to exactly one block
// covering its whole extent (a primitive, or a contiguous composition of
// dense types with no padding), 0 otherwise.
func denseLen(t Type) int64 {
	switch v := t.(type) {
	case primitive:
		return v.size
	case contiguous:
		if v.count == 0 {
			return 0
		}
		if d := denseLen(v.base); d > 0 && d == v.base.Extent() {
			return int64(v.count) * d
		}
	}
	return 0
}

// --- vector / hvector ---

type vector struct {
	count, blocklen int
	strideBytes     int64 // between block starts
	base            Type
}

// Vector is MPI_Type_vector: count blocks of blocklen base elements whose
// starts are stride base-extents apart.
func Vector(count, blocklen, stride int, base Type) Type {
	return vector{count, blocklen, int64(stride) * base.Extent(), base}
}

// Hvector is MPI_Type_create_hvector: stride given directly in bytes.
func Hvector(count, blocklen int, strideBytes int64, base Type) Type {
	return vector{count, blocklen, strideBytes, base}
}

func (v vector) Size() int64 { return int64(v.count) * int64(v.blocklen) * v.base.Size() }
func (v vector) Extent() int64 {
	if v.count <= 0 || v.strideBytes < 0 {
		// Invalid shapes (check reports them) stay inert: a negative
		// stride would span from before the base, which the engine
		// refuses — the workloads never need it.
		return 0
	}
	return int64(v.count-1)*v.strideBytes + int64(v.blocklen)*v.base.Extent()
}
func (v vector) check() *InvalidTypeError {
	switch {
	case v.count < 0:
		return &InvalidTypeError{Constructor: "Vector", Reason: fmt.Sprintf("negative count %d", v.count)}
	case v.blocklen < 0:
		return &InvalidTypeError{Constructor: "Vector", Reason: fmt.Sprintf("negative blocklen %d", v.blocklen)}
	case v.strideBytes < 0:
		return &InvalidTypeError{Constructor: "Vector", Reason: fmt.Sprintf("negative stride %d bytes unsupported", v.strideBytes)}
	}
	return v.base.check()
}
func (v vector) TypeName() string {
	return fmt.Sprintf("hvector(%d,%d,%d,%s)", v.count, v.blocklen, v.strideBytes, v.base.TypeName())
}
func (v vector) flatten(base int64, out *[]Block) {
	inner := Contiguous(v.blocklen, v.base)
	for i := 0; i < v.count; i++ {
		inner.flatten(base+int64(i)*v.strideBytes, out)
	}
}

// --- indexed family ---

type hindexed struct {
	blocklens []int
	displs    []int64 // bytes
	base      Type
}

// Indexed is MPI_Type_indexed: displacements counted in base extents.
func Indexed(blocklens, displs []int, base Type) Type {
	if len(blocklens) != len(displs) {
		return invalid("Indexed", "%d blocklens vs %d displacements", len(blocklens), len(displs))
	}
	d := make([]int64, len(displs))
	for i, v := range displs {
		d[i] = int64(v) * base.Extent()
	}
	return hindexed{appendCopy(blocklens), d, base}
}

// Hindexed is MPI_Type_create_hindexed: displacements in bytes.
func Hindexed(blocklens []int, displsBytes []int64, base Type) Type {
	if len(blocklens) != len(displsBytes) {
		return invalid("Hindexed", "%d blocklens vs %d displacements", len(blocklens), len(displsBytes))
	}
	return hindexed{appendCopy(blocklens), append([]int64(nil), displsBytes...), base}
}

// IndexedBlock is MPI_Type_create_indexed_block: constant block length.
func IndexedBlock(blocklen int, displs []int, base Type) Type {
	lens := make([]int, len(displs))
	for i := range lens {
		lens[i] = blocklen
	}
	return Indexed(lens, displs, base)
}

func appendCopy(s []int) []int { return append([]int(nil), s...) }

func (h hindexed) Size() int64 {
	var n int64
	for _, l := range h.blocklens {
		n += int64(l)
	}
	return n * h.base.Size()
}
func (h hindexed) Extent() int64 {
	var ub int64
	for i, l := range h.blocklens {
		end := h.displs[i] + int64(l)*h.base.Extent()
		if end > ub {
			ub = end
		}
	}
	return ub
}
func (h hindexed) TypeName() string {
	return fmt.Sprintf("hindexed(%d blocks,%s)", len(h.blocklens), h.base.TypeName())
}
func (h hindexed) check() *InvalidTypeError {
	for i, l := range h.blocklens {
		if l < 0 {
			return &InvalidTypeError{Constructor: "Indexed", Reason: fmt.Sprintf("negative blocklen %d at block %d", l, i)}
		}
	}
	return h.base.check()
}
func (h hindexed) flatten(base int64, out *[]Block) {
	for i, l := range h.blocklens {
		Contiguous(l, h.base).flatten(base+h.displs[i], out)
	}
}

// --- struct ---

type structT struct {
	blocklens []int
	displs    []int64
	types     []Type
}

// Struct is MPI_Type_create_struct: heterogeneous fields at byte
// displacements.
func Struct(blocklens []int, displsBytes []int64, types []Type) Type {
	if len(blocklens) != len(displsBytes) || len(blocklens) != len(types) {
		return invalid("Struct", "%d blocklens vs %d displacements vs %d types",
			len(blocklens), len(displsBytes), len(types))
	}
	return structT{appendCopy(blocklens), append([]int64(nil), displsBytes...), append([]Type(nil), types...)}
}

func (s structT) Size() int64 {
	var n int64
	for i, l := range s.blocklens {
		n += int64(l) * s.types[i].Size()
	}
	return n
}
func (s structT) Extent() int64 {
	var ub int64
	for i, l := range s.blocklens {
		end := s.displs[i] + int64(l)*s.types[i].Extent()
		if end > ub {
			ub = end
		}
	}
	return ub
}
func (s structT) TypeName() string {
	return fmt.Sprintf("struct(%d fields)", len(s.blocklens))
}
func (s structT) check() *InvalidTypeError {
	for i, l := range s.blocklens {
		if l < 0 {
			return &InvalidTypeError{Constructor: "Struct", Reason: fmt.Sprintf("negative blocklen %d at field %d", l, i)}
		}
		if err := s.types[i].check(); err != nil {
			return err
		}
	}
	return nil
}
func (s structT) flatten(base int64, out *[]Block) {
	for i, l := range s.blocklens {
		Contiguous(l, s.types[i]).flatten(base+s.displs[i], out)
	}
}

// --- subarray ---

type subarray struct {
	sizes, subsizes, starts []int
	base                    Type
}

// Subarray is MPI_Type_create_subarray with C (row-major) order: the last
// dimension is contiguous in memory.
func Subarray(sizes, subsizes, starts []int, base Type) Type {
	if len(sizes) == 0 || len(sizes) != len(subsizes) || len(sizes) != len(starts) {
		return invalid("Subarray", "dimension mismatch: %d sizes, %d subsizes, %d starts",
			len(sizes), len(subsizes), len(starts))
	}
	for d := range sizes {
		if subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			return invalid("Subarray", "dim %d out of range: start %d + subsize %d vs size %d",
				d, starts[d], subsizes[d], sizes[d])
		}
	}
	return subarray{appendCopy(sizes), appendCopy(subsizes), appendCopy(starts), base}
}

func (s subarray) Size() int64 {
	n := int64(1)
	for _, v := range s.subsizes {
		n *= int64(v)
	}
	return n * s.base.Size()
}
func (s subarray) Extent() int64 {
	n := int64(1)
	for _, v := range s.sizes {
		n *= int64(v)
	}
	return n * s.base.Extent()
}
func (s subarray) TypeName() string {
	return fmt.Sprintf("subarray(%v of %v)", s.subsizes, s.sizes)
}
func (s subarray) check() *InvalidTypeError { return s.base.check() }
func (s subarray) flatten(base int64, out *[]Block) {
	for _, v := range s.subsizes {
		if v == 0 {
			return // empty slab in any dimension: zero payload, no blocks
		}
	}
	ext := s.base.Extent()
	nd := len(s.sizes)
	// Row-major strides in elements.
	stride := make([]int64, nd)
	stride[nd-1] = 1
	for d := nd - 2; d >= 0; d-- {
		stride[d] = stride[d+1] * int64(s.sizes[d+1])
	}
	// Iterate all but the innermost dimension; the innermost run is a
	// contiguous span of subsizes[nd-1] elements.
	idx := make([]int, nd-1)
	for {
		var off int64
		for d := 0; d < nd-1; d++ {
			off += int64(s.starts[d]+idx[d]) * stride[d]
		}
		off += int64(s.starts[nd-1]) * stride[nd-1]
		Contiguous(s.subsizes[nd-1], s.base).flatten(base+off*ext, out)
		// advance odometer
		d := nd - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < s.subsizes[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
}

// --- resized ---

type resized struct {
	base   Type
	extent int64
}

// Resized overrides a type's extent (MPI_Type_create_resized with lb = 0):
// the payload is unchanged but consecutive elements are laid out
// `extent` bytes apart, which is how applications space strided sends.
func Resized(base Type, extent int64) Type {
	if extent < 0 {
		return invalid("Resized", "negative extent %d", extent)
	}
	return resized{base: base, extent: extent}
}

func (r resized) Size() int64   { return r.base.Size() }
func (r resized) Extent() int64 { return r.extent }
func (r resized) TypeName() string {
	return fmt.Sprintf("resized(%s,%d)", r.base.TypeName(), r.extent)
}
func (r resized) check() *InvalidTypeError         { return r.base.check() }
func (r resized) flatten(base int64, out *[]Block) { r.base.flatten(base, out) }

// --- commit / layout ---

var uidCounter atomic.Int64

// Layout is a committed datatype: the canonical flattened block list for
// one element, with adjacent blocks coalesced. It is immutable.
type Layout struct {
	// UID is unique per Commit call. Identity for caching is the
	// canonical signature, not the UID: distinct commits of equivalent
	// spellings share one cache entry.
	UID int64
	// Name echoes the constructor tree.
	Name string
	// Blocks are sorted by offset and non-overlapping for well-formed
	// types; adjacent blocks are merged.
	Blocks []Block
	// SizeBytes is the payload (sum of block lengths).
	SizeBytes int64
	// ExtentBytes is the memory span of one element.
	ExtentBytes int64
	// MaxBlockBytes is the largest single block.
	MaxBlockBytes int64

	canon *Canonical
}

// CommitE flattens t into a Layout (MPI_Type_commit), returning a typed
// *InvalidTypeError (unwrapping to ErrInvalidType) when any constructor in
// the tree was given malformed input — negative counts, mismatched slice
// lengths, out-of-range subarray bounds. Commit is the panicking wrapper,
// mirroring the Alloc/AllocE convention on the facade.
func CommitE(t Type) (*Layout, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	var raw []Block
	t.flatten(0, &raw)
	blocks := Coalesce(raw)
	l := &Layout{
		UID:         uidCounter.Add(1),
		Name:        t.TypeName(),
		Blocks:      blocks,
		ExtentBytes: t.Extent(),
	}
	for _, b := range blocks {
		l.SizeBytes += b.Len
		if b.Len > l.MaxBlockBytes {
			l.MaxBlockBytes = b.Len
		}
	}
	if l.SizeBytes != t.Size() {
		panic(fmt.Sprintf("datatype: flatten lost bytes for %s: %d != %d", t.TypeName(), l.SizeBytes, t.Size()))
	}
	l.canon = Canonicalize(blocks, l.ExtentBytes)
	return l, nil
}

// Commit flattens t into a Layout and panics on malformed constructor
// input. Use CommitE for the error-returning variant.
func Commit(t Type) *Layout {
	l, err := CommitE(t)
	if err != nil {
		panic(err.Error())
	}
	return l
}

// CanonicalForm is the stride-run normal form computed at commit.
func (l *Layout) CanonicalForm() *Canonical { return l.canon }

// Canonical is the canonical identity string: equivalent spellings of the
// same memory access pattern (at equal extent) return equal strings.
func (l *Layout) Canonical() string { return l.canon.Signature() }

// String names the layout for debug output: the spelling plus the family.
func (l *Layout) String() string {
	return fmt.Sprintf("%s %s", l.Name, l.canon.String())
}

// Equivalent reports whether two type spellings commit to the same
// canonical form (same pack sequence, same extent). Malformed types are
// equivalent to nothing, including themselves.
func Equivalent(a, b Type) bool {
	la, err := CommitE(a)
	if err != nil {
		return false
	}
	lb, err := CommitE(b)
	if err != nil {
		return false
	}
	return la.canon.Equal(lb.canon)
}

// Coalesce merges blocks that are exactly adjacent (b.Offset == prev end).
// Input order is preserved — MPI pack order is definition order, and for
// the supported constructors that is also ascending offset per element.
func Coalesce(raw []Block) []Block {
	out := make([]Block, 0, len(raw))
	for _, b := range raw {
		if b.Len == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Offset+out[n-1].Len == b.Offset {
			out[n-1].Len += b.Len
			continue
		}
		out = append(out, b)
	}
	return out
}

// NumBlocks returns the contiguous-segment count of one element.
func (l *Layout) NumBlocks() int { return len(l.Blocks) }

// Density is payload bytes divided by extent — the paper's sparse layouts
// (specfem) have low density and thousands of blocks; dense layouts
// (NAS_MG, MILC) have few, fatter blocks.
func (l *Layout) Density() float64 {
	if l.ExtentBytes == 0 {
		return 1
	}
	return float64(l.SizeBytes) / float64(l.ExtentBytes)
}

// Repeat returns the block list for `count` consecutive elements laid out
// at extent stride, coalescing across element boundaries.
func (l *Layout) Repeat(count int) []Block {
	if count < 0 {
		panic("datatype: negative repeat count")
	}
	raw := make([]Block, 0, count*len(l.Blocks))
	for i := 0; i < count; i++ {
		base := int64(i) * l.ExtentBytes
		for _, b := range l.Blocks {
			raw = append(raw, Block{Offset: base + b.Offset, Len: b.Len})
		}
	}
	return Coalesce(raw)
}

// Pack gathers one element's payload from src (a buffer at least
// ExtentBytes long) into dst (at least SizeBytes long), returning the bytes
// written. This is the reference CPU implementation the simulated kernels
// execute.
func (l *Layout) Pack(src, dst []byte) int64 {
	var w int64
	for _, b := range l.Blocks {
		copy(dst[w:w+b.Len], src[b.Offset:b.Offset+b.Len])
		w += b.Len
	}
	return w
}

// Unpack scatters a packed payload from src back into dst according to the
// layout, returning the bytes read.
func (l *Layout) Unpack(src, dst []byte) int64 {
	var r int64
	for _, b := range l.Blocks {
		copy(dst[b.Offset:b.Offset+b.Len], src[r:r+b.Len])
		r += b.Len
	}
	return r
}

// PackN packs count consecutive elements.
func (l *Layout) PackN(src, dst []byte, count int) int64 {
	var w int64
	for i := 0; i < count; i++ {
		w += l.Pack(src[int64(i)*l.ExtentBytes:], dst[w:])
	}
	return w
}

// UnpackN unpacks count consecutive elements.
func (l *Layout) UnpackN(src, dst []byte, count int) int64 {
	var r int64
	for i := 0; i < count; i++ {
		r += l.Unpack(src[r:], dst[int64(i)*l.ExtentBytes:])
	}
	return r
}
