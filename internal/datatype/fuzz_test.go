package datatype_test

// Fuzzing lives in an external test package so it can reuse the bounded
// type decoder from internal/conformance without an import cycle.

import (
	"sort"
	"testing"

	"repro/internal/conformance"
	"repro/internal/datatype"
)

// FuzzFlattenRoundTrip decodes arbitrary bytes into a bounded nested
// datatype and checks the flattening invariants Commit relies on:
//
//   - Commit itself must not panic ("flatten lost bytes" fires when a
//     constructor's flatten disagrees with its Size — the exact failure
//     mode of the subarray empty-slab bug);
//   - coalescing is canonical: no zero-length blocks, no two sequentially
//     adjacent blocks left unmerged, sum of lengths equals SizeBytes,
//     MaxBlockBytes is the true maximum;
//   - Repeat(n) carries exactly n times the payload;
//   - for layouts without overlapping blocks, gather followed by scatter
//     followed by gather reproduces the wire stream bit-for-bit.
func FuzzFlattenRoundTrip(f *testing.F) {
	for _, in := range conformance.SeedInputs {
		f.Add(in)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("bounded decoder input")
		}
		typ := conformance.DecodeType(data)
		l := datatype.Commit(typ)

		var sum, max int64
		for i, b := range l.Blocks {
			if b.Len <= 0 {
				t.Fatalf("%s: block %d has non-positive length %d", typ.TypeName(), i, b.Len)
			}
			if b.Offset < 0 {
				t.Fatalf("%s: block %d has negative offset %d", typ.TypeName(), i, b.Offset)
			}
			if i > 0 && l.Blocks[i-1].Offset+l.Blocks[i-1].Len == b.Offset {
				t.Fatalf("%s: blocks %d,%d are adjacent but uncoalesced", typ.TypeName(), i-1, i)
			}
			sum += b.Len
			if b.Len > max {
				max = b.Len
			}
		}
		if sum != l.SizeBytes {
			t.Fatalf("%s: block lengths sum to %d, SizeBytes is %d", typ.TypeName(), sum, l.SizeBytes)
		}
		if max != l.MaxBlockBytes {
			t.Fatalf("%s: max block %d, MaxBlockBytes %d", typ.TypeName(), max, l.MaxBlockBytes)
		}

		const count = 3
		rep := l.Repeat(count)
		var repSum int64
		span := l.ExtentBytes * count
		for _, b := range rep {
			repSum += b.Len
			if end := b.Offset + b.Len; end > span {
				span = end
			}
		}
		if repSum != count*l.SizeBytes {
			t.Fatalf("%s: Repeat(%d) carries %d bytes, want %d",
				typ.TypeName(), count, repSum, count*l.SizeBytes)
		}

		if overlaps(rep) {
			return // gather/scatter is not invertible over overlapping extents
		}
		src := make([]byte, span)
		for i := range src {
			src[i] = byte(i*131 + 17)
		}
		var wire []byte
		for _, b := range rep {
			wire = append(wire, src[b.Offset:b.Offset+b.Len]...)
		}
		dst := make([]byte, span)
		var pos int64
		for _, b := range rep {
			copy(dst[b.Offset:b.Offset+b.Len], wire[pos:pos+b.Len])
			pos += b.Len
		}
		pos = 0
		for _, b := range rep {
			for i := int64(0); i < b.Len; i++ {
				if dst[b.Offset+i] != wire[pos+i] {
					t.Fatalf("%s: round-trip mismatch at block offset %d byte %d",
						typ.TypeName(), b.Offset, i)
				}
			}
			pos += b.Len
		}
	})
}

// overlaps reports whether any two blocks share a byte.
func overlaps(blocks []datatype.Block) bool {
	s := make([]datatype.Block, len(blocks))
	copy(s, blocks)
	sort.Slice(s, func(i, j int) bool { return s[i].Offset < s[j].Offset })
	for i := 1; i < len(s); i++ {
		if s[i-1].Offset+s[i-1].Len > s[i].Offset {
			return true
		}
	}
	return false
}
