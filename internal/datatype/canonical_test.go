package datatype

import (
	"testing"
)

func TestCanonicalizeContig(t *testing.T) {
	c := Canonicalize([]Block{{0, 64}}, 64)
	if len(c.Runs) != 1 || c.Runs[0] != (Run{Offset: 0, Len: 64, Stride: 0, Count: 1}) {
		t.Fatalf("runs = %+v", c.Runs)
	}
	if c.SizeBytes != 64 || c.ExtentBytes != 64 {
		t.Fatalf("size=%d extent=%d", c.SizeBytes, c.ExtentBytes)
	}
}

func TestCanonicalizeStrided(t *testing.T) {
	// 4 blocks of 8 bytes, 32 apart: one run.
	blocks := []Block{{0, 8}, {32, 8}, {64, 8}, {96, 8}}
	c := Canonicalize(blocks, 128)
	if len(c.Runs) != 1 {
		t.Fatalf("runs = %+v, want 1 run", c.Runs)
	}
	r := c.Runs[0]
	if r.Stride != 32 || r.Count != 4 || r.Len != 8 {
		t.Fatalf("run = %+v", r)
	}
	if c.NumBlocks() != 4 || c.SizeBytes != 32 {
		t.Fatalf("blocks=%d size=%d", c.NumBlocks(), c.SizeBytes)
	}
}

func TestCanonicalizeIrregular(t *testing.T) {
	// Mixed lengths break runs; irregular strides break runs.
	blocks := []Block{{0, 8}, {32, 8}, {50, 4}, {60, 4}, {70, 4}}
	c := Canonicalize(blocks, 128)
	if len(c.Runs) != 2 {
		t.Fatalf("runs = %+v, want 2", c.Runs)
	}
	if c.Runs[0].Count != 2 || c.Runs[1].Count != 3 || c.Runs[1].Stride != 10 {
		t.Fatalf("runs = %+v", c.Runs)
	}
}

func TestCanonicalizeDescendingPreservesOrder(t *testing.T) {
	// Indexed displacements may descend; pack order is semantic and the
	// canonical form must preserve it (negative stride run).
	blocks := []Block{{64, 4}, {32, 4}, {0, 4}}
	c := Canonicalize(blocks, 128)
	if len(c.Runs) != 1 || c.Runs[0].Stride != -32 {
		t.Fatalf("runs = %+v, want one descending run", c.Runs)
	}
	exp := c.Expand()
	for i, b := range blocks {
		if exp[i] != b {
			t.Fatalf("expand[%d] = %+v, want %+v", i, exp[i], b)
		}
	}
}

func TestCanonicalExpandRoundTrip(t *testing.T) {
	for _, blocks := range [][]Block{
		nil,
		{{0, 16}},
		{{0, 4}, {8, 4}, {16, 4}},
		{{0, 4}, {8, 8}, {16, 4}, {40, 4}, {64, 4}},
		{{100, 2}, {50, 2}, {0, 2}, {7, 3}},
	} {
		c := Canonicalize(blocks, 256)
		exp := c.Expand()
		if len(exp) != len(blocks) {
			t.Fatalf("expand len %d, want %d (%+v)", len(exp), len(blocks), c.Runs)
		}
		for i := range blocks {
			if exp[i] != blocks[i] {
				t.Fatalf("expand[%d] = %+v, want %+v", i, exp[i], blocks[i])
			}
		}
	}
}

func TestExtentIsPartOfIdentity(t *testing.T) {
	a := Canonicalize([]Block{{0, 8}}, 8)
	b := Canonicalize([]Block{{0, 8}}, 64)
	if a.Equal(b) || a.Hash() == b.Hash() {
		t.Fatal("extent must distinguish canonical forms (Repeat semantics)")
	}
}

func TestEquivalentSpellings(t *testing.T) {
	cases := []struct {
		name string
		a, b Type
	}{
		{"vector-vs-hindexed",
			Vector(4, 2, 8, Byte),
			Hindexed([]int{2, 2, 2, 2}, []int64{0, 8, 16, 24}, Byte)},
		{"vector-vs-hvector",
			Vector(3, 2, 5, Int32),
			Hvector(3, 2, 20, Int32)},
		{"contig-vs-vector-stride-eq-blocklen",
			Contiguous(6, Float64),
			Vector(3, 2, 2, Float64)},
		{"subarray-vs-indexed",
			Subarray([]int{4, 4}, []int{2, 4}, []int{1, 0}, Byte),
			Resized(Indexed([]int{8}, []int{4}, Byte), 16)},
		{"indexedblock-vs-indexed",
			IndexedBlock(2, []int{0, 4, 8}, Int32),
			Indexed([]int{2, 2, 2}, []int{0, 4, 8}, Int32)},
	}
	for _, c := range cases {
		if !Equivalent(c.a, c.b) {
			la, lb := Commit(c.a), Commit(c.b)
			t.Errorf("%s: not equivalent:\n a: %s\n b: %s", c.name, la.Canonical(), lb.Canonical())
		}
		la, lb := Commit(c.a), Commit(c.b)
		if la.CanonicalForm().Hash() != lb.CanonicalForm().Hash() {
			t.Errorf("%s: hashes differ", c.name)
		}
	}
}

func TestNotEquivalent(t *testing.T) {
	cases := []struct {
		name string
		a, b Type
	}{
		{"different-payload", Vector(4, 2, 8, Byte), Vector(4, 3, 8, Byte)},
		{"different-stride", Vector(4, 2, 8, Byte), Vector(4, 2, 9, Byte)},
		// Same blocks, different extent: Repeat lays them out differently.
		{"different-extent", Vector(2, 1, 4, Byte), Resized(Vector(2, 1, 4, Byte), 16)},
		// Same byte set, different pack order: wire streams differ.
		{"different-order",
			Hindexed([]int{4, 4}, []int64{0, 8}, Byte),
			Hindexed([]int{4, 4}, []int64{8, 0}, Byte)},
		{"invalid-vs-self", Contiguous(-1, Byte), Contiguous(-1, Byte)},
	}
	for _, c := range cases {
		if Equivalent(c.a, c.b) {
			t.Errorf("%s: spuriously equivalent", c.name)
		}
	}
}

func TestPlanKinds(t *testing.T) {
	cases := []struct {
		name string
		t    Type
		kind PlanKind
	}{
		{"empty", Contiguous(0, Byte), PlanEmpty},
		{"contig", Contiguous(64, Byte), PlanContig},
		{"strided", Vector(8, 2, 4, Float64), PlanStrided},
		{"gather", Struct([]int{1, 1}, []int64{0, 10}, []Type{Int64, Int32}), PlanGather},
	}
	for _, c := range cases {
		l := Commit(c.t)
		p := CompilePlan(l.CanonicalForm())
		if p.Kind != c.kind {
			t.Errorf("%s: kind = %s, want %s (canon %s)", c.name, p.Kind, c.kind, l.Canonical())
		}
	}
}

func TestPlanPackUnpackMatchesLayout(t *testing.T) {
	types := []Type{
		Contiguous(32, Byte),
		Vector(7, 3, 11, Int32),
		Vector(9, 1, 2, Float64), // 8-byte fast path
		Vector(5, 1, 3, Int32),   // 4-byte fast path
		Vector(4, 1, 2, Complex128),
		Hindexed([]int{3, 1, 5, 2}, []int64{40, 0, 17, 90}, Byte),
		Struct([]int{2, 1, 3}, []int64{0, 32, 48}, []Type{Float64, Int32, Byte}),
		Indexed([]int{3, 1, 3}, []int{0, 7, 12}, Int32),   // mixed 12/4-byte flat gather
		IndexedBlock(9, []int{0, 10, 40}, Int32),          // uniform 36-byte flat gather
		Hindexed([]int{4, 4}, []int64{0, 64}, Complex128), // uniform 64-byte flat gather
	}
	for _, typ := range types {
		l := Commit(typ)
		c := l.CanonicalForm()
		p := CompilePlan(c)
		span := l.ExtentBytes
		for _, b := range l.Blocks {
			if end := b.Offset + b.Len; end > span {
				span = end
			}
		}
		src := make([]byte, span)
		for i := range src {
			src[i] = byte(i*37 + 5)
		}
		want := make([]byte, l.SizeBytes)
		l.Pack(src, want)
		got := make([]byte, l.SizeBytes)
		if n := p.Pack(src, got); n != l.SizeBytes {
			t.Fatalf("%s: plan packed %d, want %d", typ.TypeName(), n, l.SizeBytes)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: pack byte %d: plan %d legacy %d", typ.TypeName(), i, got[i], want[i])
			}
		}
		// Unpack round trip into a poisoned buffer.
		dstPlan := make([]byte, span)
		dstRef := make([]byte, span)
		for i := range dstPlan {
			dstPlan[i] = 0xEE
			dstRef[i] = 0xEE
		}
		l.Unpack(want, dstRef)
		if n := p.Unpack(want, dstPlan); n != l.SizeBytes {
			t.Fatalf("%s: plan unpacked %d, want %d", typ.TypeName(), n, l.SizeBytes)
		}
		for i := range dstRef {
			if dstPlan[i] != dstRef[i] {
				t.Fatalf("%s: unpack byte %d: plan %d legacy %d", typ.TypeName(), i, dstPlan[i], dstRef[i])
			}
		}
	}
}

func TestLayoutStringNamesFamily(t *testing.T) {
	l := Commit(Vector(4, 2, 8, Byte))
	s := l.String()
	if s == "" || s == l.Name {
		t.Fatalf("String() = %q should append the canonical family", s)
	}
}
