package datatype

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimitiveSizes(t *testing.T) {
	cases := []struct {
		ty   Type
		size int64
	}{
		{Byte, 1}, {Char, 1}, {Int32, 4}, {Int64, 8},
		{Float32, 4}, {Float64, 8}, {Complex64, 8}, {Complex128, 16},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size || c.ty.Extent() != c.size {
			t.Errorf("%s: size=%d extent=%d, want %d", c.ty.TypeName(), c.ty.Size(), c.ty.Extent(), c.size)
		}
	}
}

func TestContiguousFlattensToOneBlock(t *testing.T) {
	l := Commit(Contiguous(16, Float64))
	if l.NumBlocks() != 1 {
		t.Fatalf("contiguous committed to %d blocks, want 1", l.NumBlocks())
	}
	if l.SizeBytes != 128 || l.ExtentBytes != 128 || l.MaxBlockBytes != 128 {
		t.Fatalf("bad layout: %+v", l)
	}
}

func TestVectorLayout(t *testing.T) {
	// 4 blocks of 2 doubles, stride 5 doubles.
	l := Commit(Vector(4, 2, 5, Float64))
	if l.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", l.NumBlocks())
	}
	if l.SizeBytes != 4*2*8 {
		t.Fatalf("size = %d, want 64", l.SizeBytes)
	}
	if l.ExtentBytes != (3*5+2)*8 {
		t.Fatalf("extent = %d, want %d", l.ExtentBytes, (3*5+2)*8)
	}
	for i, b := range l.Blocks {
		if b.Offset != int64(i)*40 || b.Len != 16 {
			t.Fatalf("block %d = %+v", i, b)
		}
	}
}

func TestVectorStrideEqualsBlocklenCoalesces(t *testing.T) {
	l := Commit(Vector(8, 3, 3, Float32))
	if l.NumBlocks() != 1 {
		t.Fatalf("fully dense vector should coalesce to 1 block, got %d", l.NumBlocks())
	}
}

func TestHvectorByteStride(t *testing.T) {
	l := Commit(Hvector(3, 1, 100, Int32))
	want := []Block{{0, 4}, {100, 4}, {200, 4}}
	if len(l.Blocks) != len(want) {
		t.Fatalf("blocks = %v", l.Blocks)
	}
	for i := range want {
		if l.Blocks[i] != want[i] {
			t.Fatalf("block %d = %+v, want %+v", i, l.Blocks[i], want[i])
		}
	}
}

func TestIndexedLayout(t *testing.T) {
	l := Commit(Indexed([]int{2, 1, 3}, []int{0, 4, 8}, Float64))
	want := []Block{{0, 16}, {32, 8}, {64, 24}}
	if len(l.Blocks) != 3 {
		t.Fatalf("blocks = %v", l.Blocks)
	}
	for i := range want {
		if l.Blocks[i] != want[i] {
			t.Fatalf("block %d = %+v, want %+v", i, l.Blocks[i], want[i])
		}
	}
	if l.MaxBlockBytes != 24 {
		t.Fatalf("max block = %d, want 24", l.MaxBlockBytes)
	}
}

func TestIndexedBlockConstantLens(t *testing.T) {
	l := Commit(IndexedBlock(2, []int{0, 3, 6}, Int32))
	if l.NumBlocks() != 3 || l.SizeBytes != 24 {
		t.Fatalf("layout: %+v", l)
	}
}

func TestIndexedAdjacentCoalesce(t *testing.T) {
	l := Commit(Indexed([]int{2, 2}, []int{0, 2}, Int32))
	if l.NumBlocks() != 1 || l.SizeBytes != 16 {
		t.Fatalf("adjacent indexed blocks should merge: %+v", l)
	}
}

func TestStructLayout(t *testing.T) {
	// struct { 3 int32 at 0; 2 float64 at 16 }
	l := Commit(Struct([]int{3, 2}, []int64{0, 16}, []Type{Int32, Float64}))
	if l.SizeBytes != 3*4+2*8 {
		t.Fatalf("size = %d", l.SizeBytes)
	}
	if l.ExtentBytes != 32 {
		t.Fatalf("extent = %d, want 32", l.ExtentBytes)
	}
	want := []Block{{0, 12}, {16, 16}}
	for i := range want {
		if l.Blocks[i] != want[i] {
			t.Fatalf("block %d = %+v, want %+v", i, l.Blocks[i], want[i])
		}
	}
}

func TestStructOfIndexedNesting(t *testing.T) {
	// The specfem3D_cm shape: a struct of indexed types.
	idx := Indexed([]int{1, 1}, []int{0, 2}, Float32)
	l := Commit(Struct([]int{1, 1}, []int64{0, 64}, []Type{idx, idx}))
	if l.NumBlocks() != 4 {
		t.Fatalf("blocks = %v", l.Blocks)
	}
	if l.SizeBytes != 16 {
		t.Fatalf("size = %d, want 16", l.SizeBytes)
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x6 array, take the 2x3 corner starting at (1,2); row-major.
	l := Commit(Subarray([]int{4, 6}, []int{2, 3}, []int{1, 2}, Float64))
	if l.NumBlocks() != 2 {
		t.Fatalf("blocks = %v", l.Blocks)
	}
	want := []Block{{(1*6 + 2) * 8, 24}, {(2*6 + 2) * 8, 24}}
	for i := range want {
		if l.Blocks[i] != want[i] {
			t.Fatalf("block %d = %+v, want %+v", i, l.Blocks[i], want[i])
		}
	}
	if l.ExtentBytes != 4*6*8 {
		t.Fatalf("extent = %d", l.ExtentBytes)
	}
}

func TestSubarray3DColumnCount(t *testing.T) {
	// A z-face of an n^3 grid: n*n blocks of 1 element each.
	n := 8
	l := Commit(Subarray([]int{n, n, n}, []int{n, n, 1}, []int{0, 0, 0}, Float64))
	if l.NumBlocks() != n*n {
		t.Fatalf("blocks = %d, want %d", l.NumBlocks(), n*n)
	}
	// An x-face (contiguous innermost plane) coalesces fully.
	lx := Commit(Subarray([]int{n, n, n}, []int{1, n, n}, []int{0, 0, 0}, Float64))
	if lx.NumBlocks() != 1 {
		t.Fatalf("x-face blocks = %d, want 1", lx.NumBlocks())
	}
}

func TestSubarrayOutOfRangePanics(t *testing.T) {
	// Construction is total: the error surfaces at commit time.
	tt := Subarray([]int{4}, []int{3}, []int{2}, Byte)
	if _, err := CommitE(tt); !errors.Is(err, ErrInvalidType) {
		t.Fatalf("CommitE err = %v, want ErrInvalidType", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Commit(tt)
}

func TestNestedVectorOfVector(t *testing.T) {
	// MILC-like: vector of vectors.
	inner := Vector(2, 3, 4, Float32) // extent 11 floats? (1*4+3)*4 = 28 bytes... compute: (2-1)*4*4+3*4 = 16+12 = 28
	if inner.Extent() != 28 {
		t.Fatalf("inner extent = %d", inner.Extent())
	}
	outer := Commit(Vector(3, 1, 2, inner))
	if outer.SizeBytes != 3*inner.Size() {
		t.Fatalf("outer size = %d", outer.SizeBytes)
	}
	if outer.NumBlocks() != 6 {
		t.Fatalf("outer blocks = %d, want 6", outer.NumBlocks())
	}
}

func TestCommitUIDsUnique(t *testing.T) {
	a := Commit(Contiguous(1, Byte))
	b := Commit(Contiguous(1, Byte))
	if a.UID == b.UID {
		t.Fatal("UIDs must be unique per commit")
	}
}

func TestDensity(t *testing.T) {
	dense := Commit(Contiguous(64, Byte))
	if dense.Density() != 1 {
		t.Fatalf("dense density = %f", dense.Density())
	}
	sparse := Commit(Vector(4, 1, 16, Byte))
	if d := sparse.Density(); d >= 0.5 {
		t.Fatalf("sparse density = %f, want < 0.5", d)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	l := Commit(Vector(4, 2, 5, Float64))
	src := make([]byte, l.ExtentBytes)
	for i := range src {
		src[i] = byte(i + 1)
	}
	packed := make([]byte, l.SizeBytes)
	if w := l.Pack(src, packed); w != l.SizeBytes {
		t.Fatalf("packed %d bytes, want %d", w, l.SizeBytes)
	}
	dst := make([]byte, l.ExtentBytes)
	if r := l.Unpack(packed, dst); r != l.SizeBytes {
		t.Fatalf("unpacked %d bytes, want %d", r, l.SizeBytes)
	}
	// Every byte inside a block must round-trip; holes stay zero.
	for _, b := range l.Blocks {
		for off := b.Offset; off < b.Offset+b.Len; off++ {
			if dst[off] != src[off] {
				t.Fatalf("byte %d: got %d want %d", off, dst[off], src[off])
			}
		}
	}
}

func TestRepeatCoalescesAcrossElements(t *testing.T) {
	l := Commit(Contiguous(4, Byte))
	blocks := l.Repeat(3)
	if len(blocks) != 1 || blocks[0].Len != 12 {
		t.Fatalf("repeat of contiguous should fuse: %v", blocks)
	}
	// Vector(2,1,2,Byte) has extent 3, so the second element's first
	// block ({3,1}) merges with the first element's last block ({2,1}).
	lv := Commit(Vector(2, 1, 2, Byte))
	bv := lv.Repeat(2)
	want2 := []Block{{0, 1}, {2, 2}, {5, 1}}
	if len(bv) != len(want2) {
		t.Fatalf("vector repeat blocks = %v, want %v", bv, want2)
	}
	for i := range want2 {
		if bv[i] != want2[i] {
			t.Fatalf("vector repeat blocks = %v, want %v", bv, want2)
		}
	}
}

func TestPackNUnpackN(t *testing.T) {
	l := Commit(Indexed([]int{1, 2}, []int{0, 2}, Int32))
	count := 5
	src := make([]byte, int(l.ExtentBytes)*count)
	rng := rand.New(rand.NewSource(7))
	rng.Read(src)
	packed := make([]byte, int(l.SizeBytes)*count)
	if w := l.PackN(src, packed, count); w != l.SizeBytes*int64(count) {
		t.Fatalf("PackN wrote %d", w)
	}
	dst := make([]byte, len(src))
	if r := l.UnpackN(packed, dst, count); r != l.SizeBytes*int64(count) {
		t.Fatalf("UnpackN read %d", r)
	}
	for e := 0; e < count; e++ {
		base := int64(e) * l.ExtentBytes
		for _, b := range l.Blocks {
			got := dst[base+b.Offset : base+b.Offset+b.Len]
			want := src[base+b.Offset : base+b.Offset+b.Len]
			if !bytes.Equal(got, want) {
				t.Fatalf("element %d block %+v mismatch", e, b)
			}
		}
	}
}

func TestCoalesceDropsEmpty(t *testing.T) {
	out := Coalesce([]Block{{0, 0}, {0, 4}, {4, 4}, {10, 0}, {12, 2}})
	want := []Block{{0, 8}, {12, 2}}
	if len(out) != 2 || out[0] != want[0] || out[1] != want[1] {
		t.Fatalf("coalesce = %v, want %v", out, want)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	// Constructors are total; CommitE surfaces the typed error and Commit
	// panics with it.
	for _, tt := range []Type{
		Indexed([]int{1}, []int{0, 1}, Byte),
		Hindexed([]int{1, 2}, []int64{0}, Byte),
		Struct([]int{1}, []int64{0, 8}, []Type{Byte}),
	} {
		if _, err := CommitE(tt); !errors.Is(err, ErrInvalidType) {
			t.Errorf("CommitE(%s) err = %v, want ErrInvalidType", tt.TypeName(), err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			Commit(tt)
		}()
	}
}

// randomType builds a random nested datatype from a seed (bounded depth).
func randomType(rng *rand.Rand, depth int) Type {
	prims := []Type{Byte, Int32, Float64}
	if depth <= 0 || rng.Intn(3) == 0 {
		return prims[rng.Intn(len(prims))]
	}
	base := randomType(rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return Contiguous(rng.Intn(4)+1, base)
	case 1:
		bl := rng.Intn(3) + 1
		return Vector(rng.Intn(4)+1, bl, bl+rng.Intn(4), base)
	case 2:
		n := rng.Intn(4) + 1
		lens := make([]int, n)
		displs := make([]int, n)
		pos := 0
		for i := range lens {
			lens[i] = rng.Intn(3) + 1
			displs[i] = pos
			pos += lens[i] + rng.Intn(3)
		}
		return Indexed(lens, displs, base)
	default:
		n := rng.Intn(3) + 1
		lens := make([]int, n)
		displs := make([]int64, n)
		types := make([]Type, n)
		var pos int64
		for i := range lens {
			lens[i] = rng.Intn(2) + 1
			types[i] = randomType(rng, depth-1)
			displs[i] = pos
			pos += int64(lens[i])*types[i].Extent() + int64(rng.Intn(16))
		}
		return Struct(lens, displs, types)
	}
}

// Property: for any supported nested type, pack→unpack restores exactly the
// bytes covered by the layout, and the flattened size equals Type.Size().
func TestPropertyPackUnpackIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := randomType(rng, 3)
		l := Commit(ty)
		if l.SizeBytes != ty.Size() {
			return false
		}
		if l.ExtentBytes == 0 {
			return l.SizeBytes == 0
		}
		src := make([]byte, l.ExtentBytes)
		rng.Read(src)
		packed := make([]byte, l.SizeBytes)
		l.Pack(src, packed)
		dst := make([]byte, l.ExtentBytes)
		l.Unpack(packed, dst)
		for _, b := range l.Blocks {
			if !bytes.Equal(dst[b.Offset:b.Offset+b.Len], src[b.Offset:b.Offset+b.Len]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: blocks never overlap and stay within the extent for the random
// type family above (which constructs non-overlapping displacements).
func TestPropertyBlocksWithinExtent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := Commit(randomType(rng, 3))
		var prevEnd int64 = -1
		for _, b := range l.Blocks {
			if b.Offset < 0 || b.Offset+b.Len > l.ExtentBytes {
				return false
			}
			if b.Offset <= prevEnd { // coalesced ⇒ strictly increasing with gaps
				return false
			}
			prevEnd = b.Offset + b.Len
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCommitSparseIndexed(b *testing.B) {
	n := 4000
	lens := make([]int, n)
	displs := make([]int, n)
	for i := range lens {
		lens[i] = 1
		displs[i] = i * 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Commit(Indexed(lens, displs, Float32))
	}
}

func BenchmarkPack1MBVector(b *testing.B) {
	l := Commit(Vector(1024, 128, 256, Float64))
	src := make([]byte, l.ExtentBytes)
	dst := make([]byte, l.SizeBytes)
	b.SetBytes(l.SizeBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Pack(src, dst)
	}
}

func TestResizedChangesExtentOnly(t *testing.T) {
	base := Vector(2, 1, 3, Int32) // size 8, extent 16
	r := Resized(base, 64)
	if r.Size() != base.Size() {
		t.Fatalf("size changed: %d", r.Size())
	}
	if r.Extent() != 64 {
		t.Fatalf("extent = %d", r.Extent())
	}
	l := Commit(r)
	if l.ExtentBytes != 64 || l.SizeBytes != 8 {
		t.Fatalf("layout: %+v", l)
	}
	// Repeat spaces elements at the resized extent.
	blocks := l.Repeat(2)
	if blocks[len(blocks)-1].Offset < 64 {
		t.Fatalf("second element not spaced by resized extent: %v", blocks)
	}
}

func TestResizedNegativePanics(t *testing.T) {
	tt := Resized(Byte, -1)
	var ite *InvalidTypeError
	if _, err := CommitE(tt); !errors.As(err, &ite) {
		t.Fatalf("CommitE err = %v, want *InvalidTypeError", err)
	} else if ite.Constructor != "Resized" {
		t.Fatalf("constructor = %q, want Resized", ite.Constructor)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Commit(tt)
}
