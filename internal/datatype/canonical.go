package datatype

// Canonical datatype representation, after TEMPI (PAPERS.md): a committed
// layout's flattened block list is normalized into a minimal sequence of
// *stride runs* — maximal arithmetic progressions of equal-length blocks —
// so that distinct spellings of the same memory access pattern (a
// Vector(4,2,8,Byte) and the equivalent Hindexed, a Subarray face and the
// hand-rolled Indexed it matches) collapse to one identity. The canonical
// form carries a stable hash and a compact signature string; the layout
// cache keys on the signature, so one cached flatten + one compiled pack
// plan serve the whole family of equivalent types.
//
// Canonicalization never reorders blocks: MPI pack order is definition
// order, and for indexed types with unordered displacements that order is
// part of the wire semantics. A run therefore encodes a *consecutive*
// stretch of the pack sequence, and Expand reproduces the original
// coalesced block list byte-for-byte.

import (
	"fmt"
	"strings"
)

// Run is one stride run of a canonical form: Count blocks of Len bytes
// whose starts are Stride bytes apart, the first at Offset. Count == 1
// runs carry Stride 0. Stride may be negative (descending indexed
// displacements) or smaller than Len (overlapping blocks); both are
// preserved exactly.
type Run struct {
	Offset int64
	Len    int64
	Stride int64
	Count  int64
}

// Canonical is the minimal stride-run description of a committed layout:
// the normal form under which equivalent DDT spellings compare equal.
type Canonical struct {
	// Runs cover the pack sequence in order.
	Runs []Run
	// SizeBytes is the payload (sum over runs of Count*Len).
	SizeBytes int64
	// ExtentBytes is the memory span of one element — part of the
	// identity, because Repeat lays elements out at extent stride.
	ExtentBytes int64

	hash uint64
	sig  string
}

// Canonicalize normalizes a coalesced block list (pack order, as produced
// by Commit or Layout.Repeat) plus its extent into the canonical form.
func Canonicalize(blocks []Block, extent int64) *Canonical {
	c := &Canonical{ExtentBytes: extent}
	for i := 0; i < len(blocks); {
		b := blocks[i]
		run := Run{Offset: b.Offset, Len: b.Len, Count: 1}
		j := i + 1
		if j < len(blocks) && blocks[j].Len == b.Len {
			stride := blocks[j].Offset - b.Offset
			run.Stride = stride
			run.Count = 2
			for j+1 < len(blocks) &&
				blocks[j+1].Len == b.Len &&
				blocks[j+1].Offset-blocks[j].Offset == stride {
				run.Count++
				j++
			}
			j++
		}
		if run.Count == 1 {
			run.Stride = 0
		}
		c.SizeBytes += run.Count * run.Len
		c.Runs = append(c.Runs, run)
		i += int(run.Count)
	}
	c.sig = c.buildSig()
	c.hash = fnv1a64(c.sig)
	return c
}

// buildSig renders the canonical identity as a compact stable string:
// "e<extent>|<off>+<len>x<count>@<stride>;...". Single-block runs elide
// the xCount@Stride suffix.
func (c *Canonical) buildSig() string {
	var b strings.Builder
	fmt.Fprintf(&b, "e%d", c.ExtentBytes)
	for _, r := range c.Runs {
		if r.Count == 1 {
			fmt.Fprintf(&b, "|%d+%d", r.Offset, r.Len)
		} else {
			fmt.Fprintf(&b, "|%d+%dx%d@%d", r.Offset, r.Len, r.Count, r.Stride)
		}
	}
	return b.String()
}

// fnv1a64 hashes a string with FNV-1a (the repo's checksum lineage).
func fnv1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Hash is the stable 64-bit identity hash; equal canonical forms hash
// equal across processes and sessions.
func (c *Canonical) Hash() uint64 { return c.hash }

// Signature is the collision-free identity string the layout cache keys
// on.
func (c *Canonical) Signature() string { return c.sig }

// String renders the form for debug output and test-failure naming:
// the family, not the spelling.
func (c *Canonical) String() string {
	return fmt.Sprintf("canon{%d runs, %dB/%dB, %#x}", len(c.Runs), c.SizeBytes, c.ExtentBytes, c.hash)
}

// NumBlocks is the contiguous-segment count the runs expand to.
func (c *Canonical) NumBlocks() int {
	var n int64
	for _, r := range c.Runs {
		n += r.Count
	}
	return int(n)
}

// Equal reports structural identity — the equivalence relation over
// committed datatypes.
func (c *Canonical) Equal(o *Canonical) bool {
	if c == nil || o == nil {
		return c == o
	}
	return c.sig == o.sig
}

// EachBlock visits the expanded block sequence in pack order without
// materializing it — the lazy-payload plan variants iterate runs this way
// and emit one span copy per block.
func (c *Canonical) EachBlock(fn func(off, length int64)) {
	for _, r := range c.Runs {
		off := r.Offset
		for i := int64(0); i < r.Count; i++ {
			fn(off, r.Len)
			off += r.Stride
		}
	}
}

// Expand reconstructs the coalesced block list the form was built from —
// the round-trip the conformance property test asserts byte-for-byte.
func (c *Canonical) Expand() []Block {
	out := make([]Block, 0, c.NumBlocks())
	c.EachBlock(func(off, length int64) {
		out = append(out, Block{Offset: off, Len: length})
	})
	return out
}
