package datatype

// Compiled pack plans: per-canonical-form block-copy loops specialized by
// stride structure, the TEMPI move of turning "interpret a block list" into
// "run the routine compiled for this family". A Plan is compiled once per
// (canonical form, count) cache entry and then serves every equivalent
// datatype spelling; the simulated cost model is untouched (plans change
// how fast the host executes the byte movement, not the virtual-time
// charges), which is what keeps the plans-enabled and legacy block-list
// paths bit-identical on the simulated clock.

// PlanKind classifies the specialization a canonical form compiled to.
type PlanKind int

const (
	// PlanEmpty is a zero-payload layout: pack/unpack are no-ops.
	PlanEmpty PlanKind = iota
	// PlanContig is a single contiguous block: one memmove.
	PlanContig
	// PlanStrided is one constant-stride run: a tight 2D loop with the
	// inner copy specialized for power-of-two block lengths.
	PlanStrided
	// PlanGather is the irregular form: a loop over stride runs.
	PlanGather

	// NumPlanKinds bounds per-kind counters.
	NumPlanKinds = int(PlanGather) + 1
)

func (k PlanKind) String() string {
	switch k {
	case PlanEmpty:
		return "empty"
	case PlanContig:
		return "contig"
	case PlanStrided:
		return "strided"
	default:
		return "gather"
	}
}

// Plan is a compiled pack/unpack routine for one canonical form.
type Plan struct {
	Kind  PlanKind
	Canon *Canonical
	// Bytes is the payload the plan moves per execution.
	Bytes int64

	// flat is the flattened-gather specialization: compilation expands the
	// runs into one source offset per block so pack/unpack is a single
	// loop with no per-run dispatch. The sparse workloads are dominated by
	// tiny blocks (specfem3D packs thousands of 4-12 byte blocks), where
	// fixed-size array assignments beat a memmove call per block.
	flat []int64
	// flatLen is the uniform block length (all runs agree); 0 means mixed
	// lengths, recorded per block in flatLens.
	flatLen  int64
	flatLens []int32
}

// flatGatherMax bounds the compiled offset-array size (~12 B per block).
const flatGatherMax = 1 << 18

// CompilePlan selects the specialization for a canonical form.
func CompilePlan(c *Canonical) *Plan {
	p := &Plan{Canon: c, Bytes: c.SizeBytes}
	switch {
	case len(c.Runs) == 0 || c.SizeBytes == 0:
		p.Kind = PlanEmpty
	case len(c.Runs) == 1 && c.Runs[0].Count == 1:
		p.Kind = PlanContig
	case len(c.Runs) == 1:
		p.Kind = PlanStrided
	default:
		p.Kind = PlanGather
		p.compileFlat()
	}
	return p
}

// compileFlat builds the flattened-gather arrays when the block count is
// bounded. Uniform-length forms record only the offsets; mixed-length
// forms also record a per-block length.
func (p *Plan) compileFlat() {
	c := p.Canon
	ln := c.Runs[0].Len
	uniform := true
	var n int64
	for _, r := range c.Runs {
		if r.Len != ln {
			uniform = false
		}
		if r.Len > 1<<30 {
			return // keep per-block lengths in int32 range
		}
		n += r.Count
	}
	if n > flatGatherMax {
		return
	}
	flat := make([]int64, 0, n)
	var lens []int32
	if !uniform {
		lens = make([]int32, 0, n)
	}
	for _, r := range c.Runs {
		o := r.Offset
		for i := int64(0); i < r.Count; i++ {
			flat = append(flat, o)
			if !uniform {
				lens = append(lens, int32(r.Len))
			}
			o += r.Stride
		}
	}
	p.flat, p.flatLens = flat, lens
	if uniform {
		p.flatLen = ln
	}
}

// Pack gathers the plan's blocks from src into contiguous dst, returning
// the bytes written. Byte-identical to the legacy block-list gather by
// construction (the runs expand to the same sequence in the same order).
func (p *Plan) Pack(src, dst []byte) int64 {
	switch p.Kind {
	case PlanEmpty:
		return 0
	case PlanContig:
		r := p.Canon.Runs[0]
		copy(dst[:r.Len], src[r.Offset:r.Offset+r.Len])
		return r.Len
	}
	if p.flat != nil {
		return p.packFlat(src, dst)
	}
	var w int64
	for _, r := range p.Canon.Runs {
		w += packRun(r, src, dst[w:])
	}
	return w
}

// packFlat is the flattened-gather fast path: one loop over per-block
// source offsets, with the inner copy specialized for the tiny block
// lengths that dominate the sparse workloads.
func (p *Plan) packFlat(src, dst []byte) int64 {
	w := int64(0)
	switch p.flatLen {
	case 0: // mixed lengths
		for i, o := range p.flat {
			switch l := int64(p.flatLens[i]); l {
			case 4:
				*(*[4]byte)(dst[w:]) = *(*[4]byte)(src[o:])
				w += 4
			case 8:
				*(*[8]byte)(dst[w:]) = *(*[8]byte)(src[o:])
				w += 8
			case 12:
				*(*[12]byte)(dst[w:]) = *(*[12]byte)(src[o:])
				w += 12
			case 16:
				*(*[16]byte)(dst[w:]) = *(*[16]byte)(src[o:])
				w += 16
			default:
				copy(dst[w:w+l], src[o:o+l])
				w += l
			}
		}
	case 4:
		for _, o := range p.flat {
			*(*[4]byte)(dst[w:]) = *(*[4]byte)(src[o:])
			w += 4
		}
	case 8:
		for _, o := range p.flat {
			*(*[8]byte)(dst[w:]) = *(*[8]byte)(src[o:])
			w += 8
		}
	case 16:
		for _, o := range p.flat {
			*(*[16]byte)(dst[w:]) = *(*[16]byte)(src[o:])
			w += 16
		}
	default: // uniform larger blocks: flat loop of memmoves
		l := p.flatLen
		for _, o := range p.flat {
			copy(dst[w:w+l], src[o:o+l])
			w += l
		}
	}
	return w
}

func (p *Plan) unpackFlat(src, dst []byte) int64 {
	rd := int64(0)
	switch p.flatLen {
	case 0: // mixed lengths
		for i, o := range p.flat {
			switch l := int64(p.flatLens[i]); l {
			case 4:
				*(*[4]byte)(dst[o:]) = *(*[4]byte)(src[rd:])
				rd += 4
			case 8:
				*(*[8]byte)(dst[o:]) = *(*[8]byte)(src[rd:])
				rd += 8
			case 12:
				*(*[12]byte)(dst[o:]) = *(*[12]byte)(src[rd:])
				rd += 12
			case 16:
				*(*[16]byte)(dst[o:]) = *(*[16]byte)(src[rd:])
				rd += 16
			default:
				copy(dst[o:o+l], src[rd:rd+l])
				rd += l
			}
		}
	case 4:
		for _, o := range p.flat {
			*(*[4]byte)(dst[o:]) = *(*[4]byte)(src[rd:])
			rd += 4
		}
	case 8:
		for _, o := range p.flat {
			*(*[8]byte)(dst[o:]) = *(*[8]byte)(src[rd:])
			rd += 8
		}
	case 16:
		for _, o := range p.flat {
			*(*[16]byte)(dst[o:]) = *(*[16]byte)(src[rd:])
			rd += 16
		}
	default:
		l := p.flatLen
		for _, o := range p.flat {
			copy(dst[o:o+l], src[rd:rd+l])
			rd += l
		}
	}
	return rd
}

// Unpack scatters contiguous src through the plan's blocks into dst,
// returning the bytes read.
func (p *Plan) Unpack(src, dst []byte) int64 {
	switch p.Kind {
	case PlanEmpty:
		return 0
	case PlanContig:
		r := p.Canon.Runs[0]
		copy(dst[r.Offset:r.Offset+r.Len], src[:r.Len])
		return r.Len
	}
	if p.flat != nil {
		return p.unpackFlat(src, dst)
	}
	var rd int64
	for _, r := range p.Canon.Runs {
		rd += unpackRun(r, src[rd:], dst)
	}
	return rd
}

// packRun copies one stride run into contiguous dst. The inner copy is
// specialized for the tiny power-of-two block lengths that dominate the
// sparse workloads (specfem3D packs thousands of 4- and 8-byte blocks):
// a fixed-size array assignment compiles to direct loads/stores instead
// of a memmove call per block.
func packRun(r Run, src, dst []byte) int64 {
	o, w := r.Offset, int64(0)
	switch r.Len {
	case 4:
		for i := int64(0); i < r.Count; i++ {
			*(*[4]byte)(dst[w:]) = *(*[4]byte)(src[o:])
			w += 4
			o += r.Stride
		}
	case 8:
		for i := int64(0); i < r.Count; i++ {
			*(*[8]byte)(dst[w:]) = *(*[8]byte)(src[o:])
			w += 8
			o += r.Stride
		}
	case 16:
		for i := int64(0); i < r.Count; i++ {
			*(*[16]byte)(dst[w:]) = *(*[16]byte)(src[o:])
			w += 16
			o += r.Stride
		}
	default:
		for i := int64(0); i < r.Count; i++ {
			copy(dst[w:w+r.Len], src[o:o+r.Len])
			w += r.Len
			o += r.Stride
		}
	}
	return w
}

// unpackRun scatters contiguous src through one stride run of dst.
func unpackRun(r Run, src, dst []byte) int64 {
	o, rd := r.Offset, int64(0)
	switch r.Len {
	case 4:
		for i := int64(0); i < r.Count; i++ {
			*(*[4]byte)(dst[o:]) = *(*[4]byte)(src[rd:])
			rd += 4
			o += r.Stride
		}
	case 8:
		for i := int64(0); i < r.Count; i++ {
			*(*[8]byte)(dst[o:]) = *(*[8]byte)(src[rd:])
			rd += 8
			o += r.Stride
		}
	case 16:
		for i := int64(0); i < r.Count; i++ {
			*(*[16]byte)(dst[o:]) = *(*[16]byte)(src[rd:])
			rd += 16
			o += r.Stride
		}
	default:
		for i := int64(0); i < r.Count; i++ {
			copy(dst[o:o+r.Len], src[rd:rd+r.Len])
			rd += r.Len
			o += r.Stride
		}
	}
	return rd
}
