package datatype_test

// FuzzCanonicalize lives in the external test package so it can reuse the
// bounded type decoder from internal/conformance without an import cycle
// (the same arrangement as FuzzFlattenRoundTrip).

import (
	"testing"

	"repro/internal/conformance"
	"repro/internal/datatype"
)

// FuzzCanonicalize decodes arbitrary bytes into a bounded nested datatype
// and checks the canonicalization invariants the layout cache and the
// compiled pack plans rely on:
//
//   - Canonicalize never reorders or resizes: Expand() reproduces the
//     committed block list element-for-element (pack order is semantic);
//   - the canonical aggregates (SizeBytes, ExtentBytes, NumBlocks) agree
//     with the layout's;
//   - the signature is self-consistent: re-canonicalizing the expanded
//     blocks yields the identical signature and hash (a fixed point);
//   - the compiled plan moves exactly SizeBytes and agrees byte-for-byte
//     with the legacy block-list gather, for every generated shape
//     including overlapping and descending displacements.
func FuzzCanonicalize(f *testing.F) {
	for _, in := range conformance.SeedInputs {
		f.Add(in)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("bounded decoder input")
		}
		typ := conformance.DecodeType(data)
		l := datatype.Commit(typ)
		c := l.CanonicalForm()

		if c.SizeBytes != l.SizeBytes {
			t.Fatalf("%s: canon size %d != layout %d", typ.TypeName(), c.SizeBytes, l.SizeBytes)
		}
		if c.ExtentBytes != l.ExtentBytes {
			t.Fatalf("%s: canon extent %d != layout %d", typ.TypeName(), c.ExtentBytes, l.ExtentBytes)
		}
		if c.NumBlocks() != len(l.Blocks) {
			t.Fatalf("%s: canon expands to %d blocks, layout has %d", typ.TypeName(), c.NumBlocks(), len(l.Blocks))
		}
		exp := c.Expand()
		for i, b := range l.Blocks {
			if exp[i] != b {
				t.Fatalf("%s: expand[%d] = %+v, want %+v (runs %+v)", typ.TypeName(), i, exp[i], b, c.Runs)
			}
		}

		// Fixed point: the canonical form of the expansion is the form.
		again := datatype.Canonicalize(exp, l.ExtentBytes)
		if !c.Equal(again) || c.Hash() != again.Hash() {
			t.Fatalf("%s: canonicalization not a fixed point:\n %s\n %s",
				typ.TypeName(), c.Signature(), again.Signature())
		}

		// The compiled plan's gather agrees with the block-list gather.
		plan := datatype.CompilePlan(c)
		span := l.ExtentBytes
		for _, b := range l.Blocks {
			if end := b.Offset + b.Len; end > span {
				span = end
			}
		}
		if span < 1 {
			span = 1
		}
		src := make([]byte, span)
		for i := range src {
			src[i] = byte(i*131 + 17)
		}
		want := make([]byte, l.SizeBytes)
		l.Pack(src, want)
		got := make([]byte, l.SizeBytes)
		if n := plan.Pack(src, got); n != l.SizeBytes {
			t.Fatalf("%s: plan packed %d bytes, want %d", typ.TypeName(), n, l.SizeBytes)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: plan/legacy pack diverge at wire byte %d (%d vs %d)",
					typ.TypeName(), i, got[i], want[i])
			}
		}
	})
}
