// Package fabric models the cluster interconnect: point-to-point links with
// latency, bandwidth, and per-message processing cost, and NIC verbs (send,
// RDMA read, RDMA write) layered on top. Links serialize payloads — two
// messages on the same directional link share its bandwidth by queueing —
// while latency pipelines.
//
// The model corresponds to the systems in the paper's Table II: dual-rail
// InfiniBand EDR between nodes, NVLink2 or PCIe Gen3 between CPU and GPU,
// and NVLink2 between GPUs inside a node.
package fabric

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// LinkSpec describes one directional channel.
type LinkSpec struct {
	Name         string
	LatencyNs    int64   // propagation + switch latency
	BWBytesPerNs float64 // serialization bandwidth
	PerMessageNs int64   // per-message NIC/DMA processing cost
}

// Validate panics on nonsense parameters.
func (s LinkSpec) Validate() {
	if s.BWBytesPerNs <= 0 {
		panic("fabric: link bandwidth must be positive: " + s.Name)
	}
	if s.LatencyNs < 0 || s.PerMessageNs < 0 {
		panic("fabric: negative link costs: " + s.Name)
	}
}

// Link is a directional channel instance with an occupancy cursor.
type Link struct {
	Spec      LinkSpec
	env       *sim.Env
	busyUntil int64

	// Stats
	Messages int64
	Bytes    int64
}

// NewLink builds a link on the simulation environment.
func NewLink(env *sim.Env, spec LinkSpec) *Link {
	spec.Validate()
	return &Link{Spec: spec, env: env}
}

// Transfer schedules bytes onto the link. The payload occupies the link for
// its serialization time starting when the link frees up; onArrive runs (in
// scheduler context) one latency after serialization completes. Transfer
// itself costs the caller nothing — callers model their own CPU posting
// cost. It returns the arrival time.
func (l *Link) Transfer(bytes int64, onArrive func()) int64 {
	now := l.env.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	ser := l.Spec.PerMessageNs + int64(math.Ceil(float64(bytes)/l.Spec.BWBytesPerNs))
	l.busyUntil = start + ser
	arrive := start + ser + l.Spec.LatencyNs
	l.Messages++
	l.Bytes += bytes
	if onArrive != nil {
		l.env.At(arrive, onArrive)
	}
	return arrive
}

// BusyUntil reports when the link's serialization queue drains.
func (l *Link) BusyUntil() int64 { return l.busyUntil }

// NetworkSpec configures an inter-node network.
type NetworkSpec struct {
	Nodes int
	// Link is the spec used for every directional node pair.
	Link LinkSpec
	// PostCostNs is the CPU cost of posting one work request to the NIC
	// (ibv_post_send and friends).
	PostCostNs int64
	// CtrlBytes is the size charged for control packets (RTS/CTS/FIN).
	CtrlBytes int64
}

// Network is a full crossbar of directional links between nodes.
type Network struct {
	Spec  NetworkSpec
	env   *sim.Env
	links map[[2]int]*Link
}

// NewNetwork builds the crossbar.
func NewNetwork(env *sim.Env, spec NetworkSpec) *Network {
	if spec.Nodes <= 0 {
		panic("fabric: network needs at least one node")
	}
	spec.Link.Validate()
	if spec.CtrlBytes <= 0 {
		spec.CtrlBytes = 64
	}
	n := &Network{Spec: spec, env: env, links: make(map[[2]int]*Link)}
	for i := 0; i < spec.Nodes; i++ {
		for j := 0; j < spec.Nodes; j++ {
			if i == j {
				continue
			}
			ls := spec.Link
			ls.Name = fmt.Sprintf("%s[%d->%d]", ls.Name, i, j)
			n.links[[2]int{i, j}] = NewLink(env, ls)
		}
	}
	return n
}

// LinkBetween returns the directional link from node a to node b.
func (n *Network) LinkBetween(a, b int) *Link {
	l, ok := n.links[[2]int{a, b}]
	if !ok {
		panic(fmt.Sprintf("fabric: no link %d->%d", a, b))
	}
	return l
}

// Post charges the calling proc the NIC posting cost.
func (n *Network) Post(p *sim.Proc) {
	p.Sleep(n.Spec.PostCostNs)
}

// Send ships bytes from node `from` to node `to`. deliver runs at the
// receiver when the message arrives. The caller should have paid Post.
// Loopback (from == to) delivers after a small constant memcpy-like delay.
func (n *Network) Send(from, to int, bytes int64, deliver func()) int64 {
	if from == to {
		arrive := n.env.Now() + n.Spec.Link.PerMessageNs
		if deliver != nil {
			n.env.At(arrive, deliver)
		}
		return arrive
	}
	return n.LinkBetween(from, to).Transfer(bytes, deliver)
}

// RDMARead issues a one-sided read of `bytes` from node `target` into node
// `reader`: a control request travels reader->target, then the payload
// travels target->reader. onDone runs at the reader when data lands.
func (n *Network) RDMARead(reader, target int, bytes int64, onDone func()) {
	if reader == target {
		arrive := n.env.Now() + n.Spec.Link.PerMessageNs
		if onDone != nil {
			n.env.At(arrive, onDone)
		}
		return
	}
	n.LinkBetween(reader, target).Transfer(n.Spec.CtrlBytes, func() {
		n.LinkBetween(target, reader).Transfer(bytes, onDone)
	})
}

// RDMAWrite issues a one-sided write of `bytes` from node `writer` to node
// `target`. onPlaced runs at the target when data lands.
func (n *Network) RDMAWrite(writer, target int, bytes int64, onPlaced func()) {
	if writer == target {
		arrive := n.env.Now() + n.Spec.Link.PerMessageNs
		if onPlaced != nil {
			n.env.At(arrive, onPlaced)
		}
		return
	}
	n.LinkBetween(writer, target).Transfer(bytes, onPlaced)
}

// TotalBytes sums payload bytes across all links (for tests/metrics).
func (n *Network) TotalBytes() int64 {
	var sum int64
	for _, l := range n.links {
		sum += l.Bytes
	}
	return sum
}

// TotalMessages sums message counts across all links.
func (n *Network) TotalMessages() int64 {
	var sum int64
	for _, l := range n.links {
		sum += l.Messages
	}
	return sum
}
