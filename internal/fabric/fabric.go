// Package fabric models the cluster interconnect: point-to-point links with
// latency, bandwidth, and per-message processing cost, and NIC verbs (send,
// RDMA read, RDMA write) layered on top. Links serialize payloads — two
// messages on the same directional link share its bandwidth by queueing —
// while latency pipelines.
//
// The model corresponds to the systems in the paper's Table II: dual-rail
// InfiniBand EDR between nodes, NVLink2 or PCIe Gen3 between CPU and GPU,
// and NVLink2 between GPUs inside a node.
//
// Fault injection: InjectFaults threads a fault.Injector through the
// crossbar. Each directional link owns an independent draw site; every
// transfer then rolls (in fixed order) flap, degrade, drop, corrupt, delay,
// and duplicate faults per the plan. A link with no site installed keeps
// the exact fault-free arithmetic, so fault-free runs are byte-identical to
// builds without the injector.
package fabric

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/sim"
)

// LinkSpec describes one directional channel.
type LinkSpec struct {
	Name         string
	LatencyNs    int64   // propagation + switch latency
	BWBytesPerNs float64 // serialization bandwidth
	PerMessageNs int64   // per-message NIC/DMA processing cost
}

// Validate reports an error on nonsense parameters.
func (s LinkSpec) Validate() error {
	if s.BWBytesPerNs <= 0 {
		return fmt.Errorf("fabric: link bandwidth must be positive: %s", s.Name)
	}
	if s.LatencyNs < 0 || s.PerMessageNs < 0 {
		return fmt.Errorf("fabric: negative link costs: %s", s.Name)
	}
	return nil
}

// Delivery describes how one message actually arrived.
type Delivery struct {
	// Corrupt marks the payload as damaged in flight; receivers that
	// checksum must discard and rely on retransmission.
	Corrupt bool
	// Dup marks the second arrival of a duplicated message.
	Dup bool
}

// Link is a directional channel instance with an occupancy cursor.
type Link struct {
	Spec      LinkSpec
	env       *sim.Env
	busyUntil int64

	// Fault state (nil site = fault-free fast path).
	faults        *fault.Site
	downUntil     int64 // link flapped; serialization queues behind this
	degradedUntil int64 // bandwidth divided by DegradeFactor until this

	// Stats
	Messages int64
	Bytes    int64
	Drops    int64
	Dups     int64
	Corrupts int64
	Delays   int64
	Flaps    int64
	Degrades int64
}

// NewLink builds a link on the simulation environment.
func NewLink(env *sim.Env, spec LinkSpec) (*Link, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Link{Spec: spec, env: env}, nil
}

// MustLink is NewLink panicking on an invalid spec, for callers whose spec
// is statically known-good (tests, table-driven benchmarks).
func MustLink(env *sim.Env, spec LinkSpec) *Link {
	l, err := NewLink(env, spec)
	if err != nil {
		panic(err.Error())
	}
	return l
}

// InjectFaults installs the link's draw site. Nil restores the fault-free
// fast path.
func (l *Link) InjectFaults(site *fault.Site) { l.faults = site }

// Transfer schedules bytes onto the link. The payload occupies the link for
// its serialization time starting when the link frees up; onArrive runs (in
// scheduler context) one latency after serialization completes. Transfer
// itself costs the caller nothing — callers model their own CPU posting
// cost. It returns the arrival time.
func (l *Link) Transfer(bytes int64, onArrive func()) int64 {
	var deliver func(Delivery)
	if onArrive != nil {
		deliver = func(Delivery) { onArrive() }
	}
	return l.TransferF(bytes, deliver)
}

// TransferF is Transfer with fault visibility: deliver receives a Delivery
// describing corruption and duplication. Under an installed fault site the
// message may be dropped (deliver never runs), duplicated (deliver runs
// twice, the second with Dup set), delayed, or corrupted; the link itself
// may flap (traffic queues until it returns) or degrade (reduced bandwidth
// window). Returns the nominal arrival time.
func (l *Link) TransferF(bytes int64, deliver func(Delivery)) int64 {
	now := l.env.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	bw := l.Spec.BWBytesPerNs
	if s := l.faults; s != nil {
		lp := &s.Plan().Link
		if s.Roll(lp.FlapProb) {
			l.downUntil = now + lp.FlapDownNs
			l.Flaps++
			s.Recordf(fault.Flap, "down for %dns", lp.FlapDownNs)
		}
		if l.downUntil > start {
			// Link-layer retransmission: traffic queues behind the outage
			// rather than vanishing.
			start = l.downUntil
		}
		if s.Roll(lp.DegradeProb) {
			l.degradedUntil = now + lp.DegradeNs
			l.Degrades++
			s.Recordf(fault.Degrade, "bw/%g for %dns", lp.DegradeFactor, lp.DegradeNs)
		}
		if start < l.degradedUntil {
			bw /= lp.DegradeFactor
		}
	}
	ser := l.Spec.PerMessageNs + int64(math.Ceil(float64(bytes)/bw))
	l.busyUntil = start + ser
	arrive := start + ser + l.Spec.LatencyNs
	l.Messages++
	l.Bytes += bytes
	d := Delivery{}
	dup := false
	if s := l.faults; s != nil {
		lp := &s.Plan().Link
		if s.Roll(lp.DropProb) {
			l.Drops++
			s.Recordf(fault.Drop, "%dB", bytes)
			return arrive
		}
		if s.Roll(lp.CorruptProb) {
			d.Corrupt = true
			l.Corrupts++
			s.Recordf(fault.Corrupt, "%dB", bytes)
		}
		if s.Roll(lp.DelayProb) {
			extra := 1 + s.Int63n(lp.DelayMaxNs)
			arrive += extra
			l.Delays++
			s.Recordf(fault.Delay, "+%dns", extra)
		}
		dup = s.Roll(lp.DupProb)
	}
	if deliver != nil {
		l.env.At(arrive, func() { deliver(d) })
		if dup {
			l.Dups++
			l.faults.Recordf(fault.Duplicate, "%dB", bytes)
			d2 := d
			d2.Dup = true
			l.env.At(arrive+l.Spec.PerMessageNs, func() { deliver(d2) })
		}
	}
	return arrive
}

// BusyUntil reports when the link's serialization queue drains.
func (l *Link) BusyUntil() int64 { return l.busyUntil }

// NetworkSpec configures an inter-node network.
type NetworkSpec struct {
	Nodes int
	// Link is the spec used for every directional node pair.
	Link LinkSpec
	// PostCostNs is the CPU cost of posting one work request to the NIC
	// (ibv_post_send and friends).
	PostCostNs int64
	// CtrlBytes is the size charged for control packets (RTS/CTS/FIN).
	CtrlBytes int64
}

// Validate reports an error on nonsense parameters.
func (s NetworkSpec) Validate() error {
	if s.Nodes <= 0 {
		return errors.New("fabric: network needs at least one node")
	}
	if err := s.Link.Validate(); err != nil {
		return err
	}
	if s.PostCostNs < 0 || s.CtrlBytes < 0 {
		return errors.New("fabric: negative network costs")
	}
	return nil
}

// ErrNICPost is the transient verb-post failure injected by a NIC fault
// plan; callers retry with backoff.
var ErrNICPost = errors.New("fabric: transient NIC verb post failure")

// Network is a full crossbar of directional links between nodes.
type Network struct {
	Spec  NetworkSpec
	env   *sim.Env
	links map[[2]int]*Link
	nic   *fault.Site // verb-post fault site (nil = fault-free)
}

// NewNetwork builds the crossbar.
func NewNetwork(env *sim.Env, spec NetworkSpec) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.CtrlBytes <= 0 {
		spec.CtrlBytes = 64
	}
	n := &Network{Spec: spec, env: env, links: make(map[[2]int]*Link)}
	for i := 0; i < spec.Nodes; i++ {
		for j := 0; j < spec.Nodes; j++ {
			if i == j {
				continue
			}
			ls := spec.Link
			ls.Name = fmt.Sprintf("%s[%d->%d]", ls.Name, i, j)
			l, err := NewLink(env, ls)
			if err != nil {
				return nil, err
			}
			n.links[[2]int{i, j}] = l
		}
	}
	return n, nil
}

// MustNetwork is NewNetwork panicking on an invalid spec.
func MustNetwork(env *sim.Env, spec NetworkSpec) *Network {
	n, err := NewNetwork(env, spec)
	if err != nil {
		panic(err.Error())
	}
	return n
}

// InjectFaults installs per-link and NIC draw sites from inj (nil removes
// them). Links are wired in sorted order so site creation order — and hence
// nothing at all, since sites are independently seeded — cannot perturb
// determinism.
func (n *Network) InjectFaults(inj *fault.Injector) {
	if inj == nil {
		n.nic = nil
		for _, l := range n.links {
			l.InjectFaults(nil)
		}
		return
	}
	n.nic = inj.Site("nic")
	for _, l := range n.sortedLinks() {
		l.InjectFaults(inj.Site("link:" + l.Spec.Name))
	}
}

// sortedLinks returns the crossbar's links ordered by (from, to).
func (n *Network) sortedLinks() []*Link {
	keys := make([][2]int, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]*Link, len(keys))
	for i, k := range keys {
		out[i] = n.links[k]
	}
	return out
}

// Links returns all directional links in deterministic order.
func (n *Network) Links() []*Link { return n.sortedLinks() }

// LinkBetween returns the directional link from node a to node b.
func (n *Network) LinkBetween(a, b int) *Link {
	l, ok := n.links[[2]int{a, b}]
	if !ok {
		panic(fmt.Sprintf("fabric: no link %d->%d", a, b))
	}
	return l
}

// Post charges the calling proc the NIC posting cost.
func (n *Network) Post(p *sim.Proc) {
	p.Sleep(n.Spec.PostCostNs)
}

// PostV charges the posting cost and, under a NIC fault plan, may fail
// transiently with ErrNICPost (the cost is paid either way, as a rejected
// verb still burns the CPU round trip).
func (n *Network) PostV(p *sim.Proc) error {
	p.Sleep(n.Spec.PostCostNs)
	if s := n.nic; s != nil && s.Roll(s.Plan().NIC.PostErrorProb) {
		s.Record(fault.NICError, "post")
		return ErrNICPost
	}
	return nil
}

// Send ships bytes from node `from` to node `to`. deliver runs at the
// receiver when the message arrives. The caller should have paid Post.
// Loopback (from == to) delivers after a small constant memcpy-like delay.
func (n *Network) Send(from, to int, bytes int64, deliver func()) int64 {
	var df func(Delivery)
	if deliver != nil {
		df = func(Delivery) { deliver() }
	}
	return n.SendF(from, to, bytes, df)
}

// SendF is Send with fault visibility (see Link.TransferF). Loopback is a
// shared-memory copy and never faults.
func (n *Network) SendF(from, to int, bytes int64, deliver func(Delivery)) int64 {
	if from == to {
		arrive := n.env.Now() + n.Spec.Link.PerMessageNs
		if deliver != nil {
			n.env.At(arrive, func() { deliver(Delivery{}) })
		}
		return arrive
	}
	return n.LinkBetween(from, to).TransferF(bytes, deliver)
}

// RDMARead issues a one-sided read of `bytes` from node `target` into node
// `reader`: a control request travels reader->target, then the payload
// travels target->reader. onDone runs at the reader when data lands.
func (n *Network) RDMARead(reader, target int, bytes int64, onDone func()) {
	var df func(Delivery)
	if onDone != nil {
		df = func(Delivery) { onDone() }
	}
	n.RDMAReadF(reader, target, bytes, df)
}

// RDMAReadF is RDMARead with fault visibility. A dropped or corrupted
// control leg silently aborts the read (the HCA's CRC rejects the request);
// payload-leg faults surface through the Delivery.
func (n *Network) RDMAReadF(reader, target int, bytes int64, onDone func(Delivery)) {
	if reader == target {
		arrive := n.env.Now() + n.Spec.Link.PerMessageNs
		if onDone != nil {
			n.env.At(arrive, func() { onDone(Delivery{}) })
		}
		return
	}
	n.LinkBetween(reader, target).TransferF(n.Spec.CtrlBytes, func(d Delivery) {
		if d.Corrupt || d.Dup {
			return // corrupted ctrl request rejected; dup ctrl ignored
		}
		n.LinkBetween(target, reader).TransferF(bytes, onDone)
	})
}

// RDMAWrite issues a one-sided write of `bytes` from node `writer` to node
// `target`. onPlaced runs at the target when data lands.
func (n *Network) RDMAWrite(writer, target int, bytes int64, onPlaced func()) {
	var df func(Delivery)
	if onPlaced != nil {
		df = func(Delivery) { onPlaced() }
	}
	n.RDMAWriteF(writer, target, bytes, df)
}

// RDMAWriteF is RDMAWrite with fault visibility.
func (n *Network) RDMAWriteF(writer, target int, bytes int64, onPlaced func(Delivery)) {
	if writer == target {
		arrive := n.env.Now() + n.Spec.Link.PerMessageNs
		if onPlaced != nil {
			n.env.At(arrive, func() { onPlaced(Delivery{}) })
		}
		return
	}
	n.LinkBetween(writer, target).TransferF(bytes, onPlaced)
}

// TotalBytes sums payload bytes across all links (for tests/metrics).
func (n *Network) TotalBytes() int64 {
	var sum int64
	for _, l := range n.links {
		sum += l.Bytes
	}
	return sum
}

// TotalMessages sums message counts across all links.
func (n *Network) TotalMessages() int64 {
	var sum int64
	for _, l := range n.links {
		sum += l.Messages
	}
	return sum
}

// FaultCounts sums per-link fault stats across the crossbar, rendered as
// "drops=N dups=N corrupts=N delays=N flaps=N degrades=N" (zeros included),
// for diagnostics.
func (n *Network) FaultCounts() string {
	var dr, du, co, de, fl, dg int64
	for _, l := range n.links {
		dr += l.Drops
		du += l.Dups
		co += l.Corrupts
		de += l.Delays
		fl += l.Flaps
		dg += l.Degrades
	}
	return fmt.Sprintf("drops=%d dups=%d corrupts=%d delays=%d flaps=%d degrades=%d", dr, du, co, de, fl, dg)
}
