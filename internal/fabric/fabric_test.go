package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func edrSpec() LinkSpec {
	return LinkSpec{Name: "IB-EDR", LatencyNs: 1000, BWBytesPerNs: 25, PerMessageNs: 300}
}

func TestLinkTransferTiming(t *testing.T) {
	env := sim.NewEnv()
	l := MustLink(env, edrSpec())
	var arrived int64 = -1
	env.Spawn("sender", func(p *sim.Proc) {
		l.Transfer(25_000, func() { arrived = env.Now() })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// serialization = 300 + 25000/25 = 1300; + latency 1000 = 2300
	if arrived != 2300 {
		t.Fatalf("arrived at %d, want 2300", arrived)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	env := sim.NewEnv()
	l := MustLink(env, edrSpec())
	var first, second int64
	env.Spawn("sender", func(p *sim.Proc) {
		l.Transfer(25_000, func() { first = env.Now() })
		l.Transfer(25_000, func() { second = env.Now() })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if second-first != 1300 {
		t.Fatalf("second arrived %d after first, want one serialization time 1300", second-first)
	}
}

func TestLatencyPipelines(t *testing.T) {
	// Two small messages: the second's latency overlaps the first's.
	env := sim.NewEnv()
	l := MustLink(env, LinkSpec{Name: "x", LatencyNs: 10_000, BWBytesPerNs: 25, PerMessageNs: 100})
	var a1, a2 int64
	env.Spawn("sender", func(p *sim.Proc) {
		l.Transfer(25, func() { a1 = env.Now() })
		l.Transfer(25, func() { a2 = env.Now() })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if a2-a1 >= 10_000 {
		t.Fatalf("latency did not pipeline: gap %d", a2-a1)
	}
}

func TestBadLinkSpecPanics(t *testing.T) {
	if err := (LinkSpec{Name: "bad", BWBytesPerNs: 0}).Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected MustLink panic")
		}
	}()
	MustLink(sim.NewEnv(), LinkSpec{Name: "bad", BWBytesPerNs: 0})
}

func newTestNetwork(t *testing.T) (*sim.Env, *Network) {
	t.Helper()
	env := sim.NewEnv()
	n := MustNetwork(env, NetworkSpec{
		Nodes:      3,
		Link:       edrSpec(),
		PostCostNs: 200,
		CtrlBytes:  64,
	})
	return env, n
}

func TestNetworkSendDelivers(t *testing.T) {
	env, n := newTestNetwork(t)
	var at int64 = -1
	env.Spawn("s", func(p *sim.Proc) {
		n.Post(p)
		n.Send(0, 1, 1000, func() { at = env.Now() })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// post 200 + (300 + 40) + 1000 latency = 1540+... = 200+340+1000
	want := int64(200 + 300 + 40 + 1000)
	if at != want {
		t.Fatalf("delivered at %d, want %d", at, want)
	}
}

func TestNetworkLoopback(t *testing.T) {
	env, n := newTestNetwork(t)
	var at int64 = -1
	env.Spawn("s", func(p *sim.Proc) {
		n.Send(2, 2, 1<<20, func() { at = env.Now() })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 300 {
		t.Fatalf("loopback delivered at %d, want per-message cost only", at)
	}
}

func TestRDMAReadRoundTrip(t *testing.T) {
	env, n := newTestNetwork(t)
	var at int64 = -1
	env.Spawn("r", func(p *sim.Proc) {
		n.RDMARead(0, 1, 25_000, func() { at = env.Now() })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// ctrl: 300 + 64/25(=3) + 1000 = 1303(ceil 1303?) then data: 300+1000+1000
	// = two latencies + two serializations; just assert both directions paid.
	oneWay := int64(300 + 1000 + 1000) // data only
	if at <= oneWay {
		t.Fatalf("RDMA read at %d, should include request leg (> %d)", at, oneWay)
	}
}

func TestRDMAWriteOneWay(t *testing.T) {
	env, n := newTestNetwork(t)
	var readAt, writeAt int64
	env.Spawn("r", func(p *sim.Proc) {
		n.RDMARead(0, 1, 25_000, func() { readAt = env.Now() })
	})
	env.Spawn("w", func(p *sim.Proc) {
		n.RDMAWrite(2, 1, 25_000, func() { writeAt = env.Now() })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if writeAt >= readAt {
		t.Fatalf("one-way write (%d) should beat read round trip (%d)", writeAt, readAt)
	}
}

func TestDistinctDirectionsDoNotContend(t *testing.T) {
	env, n := newTestNetwork(t)
	var a01, a10 int64
	env.Spawn("s", func(p *sim.Proc) {
		n.Send(0, 1, 250_000, func() { a01 = env.Now() })
		n.Send(1, 0, 250_000, func() { a10 = env.Now() })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if a01 != a10 {
		t.Fatalf("opposite directions should not serialize: %d vs %d", a01, a10)
	}
}

func TestSameDirectionContends(t *testing.T) {
	env, n := newTestNetwork(t)
	var a1, a2 int64
	env.Spawn("s", func(p *sim.Proc) {
		n.Send(0, 1, 250_000, func() { a1 = env.Now() })
		n.Send(0, 1, 250_000, func() { a2 = env.Now() })
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if a2 <= a1 {
		t.Fatalf("same direction should serialize: %d then %d", a1, a2)
	}
}

func TestNetworkStats(t *testing.T) {
	env, n := newTestNetwork(t)
	env.Spawn("s", func(p *sim.Proc) {
		n.Send(0, 1, 100, nil)
		n.Send(1, 2, 200, nil)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if n.TotalMessages() != 2 || n.TotalBytes() != 300 {
		t.Fatalf("stats: msgs=%d bytes=%d", n.TotalMessages(), n.TotalBytes())
	}
}

func TestMissingLinkPanics(t *testing.T) {
	_, n := newTestNetwork(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.LinkBetween(0, 7)
}

// Property: arrival time is monotone in message size, and total link
// occupancy equals the sum of serialization times.
func TestPropertyTransferMonotone(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 30 {
			return true
		}
		env := sim.NewEnv()
		l := MustLink(env, edrSpec())
		var expected int64
		for _, s := range sizes {
			b := int64(s) + 1
			expected += l.Spec.PerMessageNs + (b+int64(l.Spec.BWBytesPerNs)-1)/int64(l.Spec.BWBytesPerNs)
			l.Transfer(b, nil)
		}
		if err := env.Run(); err != nil {
			return false
		}
		// ceil in the model vs integer arithmetic here: allow exact match
		// by recomputing with the same formula.
		return l.BusyUntil() == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
