package gpu

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/timeline"
)

// FusedWork is one request folded into a fused kernel: an independent
// pack/unpack/DirectIPC operation executed by its own cooperative group of
// thread blocks (paper Fig. 6).
type FusedWork struct {
	// Name identifies the request for events/debugging.
	Name string
	// Bytes and Segments describe the payload exactly as in KernelSpec.
	Bytes           int64
	Segments        int
	MaxSegmentBytes int64
	// MinDurationNs floors this request's group duration (DirectIPC
	// link crossing).
	MinDurationNs int64
	// Exec performs the real data movement when this request's group
	// finishes (scheduler context, must not block).
	Exec func()
	// OnComplete, if non-nil, runs right after Exec at the request's own
	// completion time — this is the GPU thread updating the response
	// status in the request list (step ③ in paper Fig. 5), which is what
	// lets the scheduler skip kernel-boundary synchronization.
	OnComplete func(end int64)
}

// FusedCompletion reports the timing of a fused kernel and of each request
// inside it.
type FusedCompletion struct {
	// Ev fires when the whole fused kernel retires.
	Ev *sim.Event
	// Start and End bound the kernel.
	Start, End int64
	// ReqEnd[i] is the completion time of request i; requests signal
	// completion individually, before kernel end for all but the slowest
	// group.
	ReqEnd []int64
}

// LaunchFused launches one kernel that executes all requests concurrently
// using cooperative-group partitioning: the resident thread blocks are
// divided among requests in proportion to their work, each group completing
// (and signalling) independently. The caller pays exactly one launch
// overhead regardless of len(reqs) — the entire point of the design.
func (s *Stream) LaunchFused(p *sim.Proc, name string, reqs []FusedWork) *FusedCompletion {
	fc, _ := s.launchFused(p, name, reqs, false)
	return fc
}

// LaunchFusedE is LaunchFused with transient-fault visibility: under a GPU
// fault plan the fused launch may fail with ErrLaunchFailed after burning
// the driver overhead. The fusion scheduler retries and then degrades to
// unfused per-request launches.
func (s *Stream) LaunchFusedE(p *sim.Proc, name string, reqs []FusedWork) (*FusedCompletion, error) {
	return s.launchFused(p, name, reqs, true)
}

func (s *Stream) launchFused(p *sim.Proc, name string, reqs []FusedWork, faultable bool) (*FusedCompletion, error) {
	if len(reqs) == 0 {
		panic("gpu: LaunchFused with no requests")
	}
	d := s.dev
	if err := s.launchFault(p, "fused:"+name, faultable); err != nil {
		return nil, err
	}
	d.Stats.KernelLaunches++
	d.Stats.FusedKernels++
	d.Stats.FusedRequests += int64(len(reqs))

	durs := d.fusedDurations(reqs)

	now := d.env.Now()
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	var kernelDur int64
	var totalBytes int64
	var totalSegs int
	for i, r := range reqs {
		if durs[i] > kernelDur {
			kernelDur = durs[i]
		}
		totalBytes += r.Bytes
		totalSegs += r.Segments
	}
	end := start + kernelDur
	s.busyUntil = end
	d.Stats.KernelBusyNs += kernelDur
	d.Stats.BytesMoved += totalBytes
	d.Stats.SegmentsMoved += int64(totalSegs)

	fc := &FusedCompletion{
		Ev:     d.env.NewEvent(fmt.Sprintf("fused:%s@%s", name, s.name)),
		Start:  start,
		End:    end,
		ReqEnd: make([]int64, len(reqs)),
	}
	if d.TL != nil {
		d.TL.Span(timeline.LayerGPU, timeline.CostNone, s.name, "fused:"+name, start, kernelDur,
			timeline.Arg{Key: "requests", Val: fmt.Sprintf("%d", len(reqs))},
			timeline.Arg{Key: "bytes", Val: fmt.Sprintf("%d", totalBytes)})
	}
	for i, r := range reqs {
		i, r := i, r
		reqEnd := start + durs[i]
		fc.ReqEnd[i] = reqEnd
		if d.TL != nil {
			d.TL.Span(timeline.LayerGPU, timeline.CostNone, s.name, "fused-req:"+r.Name, start, durs[i])
		}
		d.env.At(reqEnd, func() {
			if r.Exec != nil {
				r.Exec()
			}
			if r.OnComplete != nil {
				r.OnComplete(reqEnd)
			}
		})
	}
	d.env.At(end, func() { fc.Ev.Fire() })
	return fc, nil
}

// EstimateFusedNs returns the modeled span of a fused kernel over the given
// requests without launching anything (used by flush heuristics and
// benchmarks).
func (d *Device) EstimateFusedNs(reqs []FusedWork) int64 {
	if len(reqs) == 0 {
		return 0
	}
	var max int64
	for _, dur := range d.fusedDurations(reqs) {
		if dur > max {
			max = dur
		}
	}
	return max
}

// fusedDurations partitions the device's resident thread blocks among the
// requests in proportion to each request's serial work (cooperative-group
// partition phase), computes each group's duration with the per-kernel cost
// model, and then stretches all durations uniformly if the aggregate
// payload exceeds what device memory bandwidth allows — groups share one
// HBM.
func (d *Device) fusedDurations(reqs []FusedWork) []int64 {
	a := d.Arch
	total := 0.0
	work := make([]float64, len(reqs))
	for i, r := range reqs {
		w := float64(r.Segments)*a.SegmentFixedNs + float64(r.Bytes)/a.BlockCopyBWBytesPerNs
		if w <= 0 {
			w = 1
		}
		work[i] = w
		total += w
	}
	budget := a.MaxResidentBlocks()
	durs := make([]int64, len(reqs))
	var maxDur int64
	var totalBytes int64
	for i, r := range reqs {
		var share int
		if a.UniformFusedPartition {
			share = budget / len(reqs)
		} else {
			share = int(math.Floor(float64(budget) * work[i] / total))
		}
		if share < 1 {
			share = 1
		}
		if units := a.workUnits(r.Bytes, r.Segments); share > units {
			share = units // a group never holds more blocks than work units
		}
		durs[i] = a.kernelCost(r.Bytes, r.Segments, share, r.MaxSegmentBytes)
		if durs[i] < r.MinDurationNs {
			durs[i] = r.MinDurationNs
		}
		if durs[i] > maxDur {
			maxDur = durs[i]
		}
		totalBytes += r.Bytes
	}
	// Shared-HBM floor: if the sum of payloads needs longer than the
	// slowest group's modeled time, stretch everything proportionally so
	// ordering is preserved but bandwidth is respected.
	floor := int64(math.Ceil(float64(totalBytes) / a.MemBWBytesPerNs))
	if floor > maxDur && maxDur > 0 {
		scale := float64(floor) / float64(maxDur)
		for i := range durs {
			durs[i] = int64(math.Ceil(float64(durs[i]) * scale))
		}
	}
	return durs
}
