package gpu

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFusedSingleLaunchOverhead(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	reqs := make([]FusedWork, 16)
	for i := range reqs {
		reqs[i] = FusedWork{Name: fmt.Sprintf("r%d", i), Bytes: 32 << 10, Segments: 1000}
	}
	var afterLaunch int64
	env.Spawn("host", func(p *sim.Proc) {
		st.LaunchFused(p, "fused16", reqs)
		afterLaunch = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if afterLaunch != d.Arch.LaunchOverheadNs {
		t.Fatalf("fused launch CPU cost = %d, want one launch overhead %d", afterLaunch, d.Arch.LaunchOverheadNs)
	}
	if d.Stats.KernelLaunches != 1 || d.Stats.FusedKernels != 1 || d.Stats.FusedRequests != 16 {
		t.Fatalf("stats wrong: %+v", d.Stats)
	}
}

func TestFusedBeatsSerialLaunches(t *testing.T) {
	// The headline claim: N small packing operations fused into one
	// kernel finish far sooner than N individually launched kernels.
	arch := testArch()
	mkReqs := func() []FusedWork {
		reqs := make([]FusedWork, 16)
		for i := range reqs {
			reqs[i] = FusedWork{Name: fmt.Sprintf("r%d", i), Bytes: 24 << 10, Segments: 2000}
		}
		return reqs
	}

	envA := sim.NewEnv()
	dA := NewDevice(envA, arch, 0, 0)
	stA := dA.NewStream("s")
	var serialEnd int64
	envA.Spawn("host", func(p *sim.Proc) {
		for _, r := range mkReqs() {
			stA.Launch(p, KernelSpec{Name: r.Name, Bytes: r.Bytes, Segments: r.Segments})
		}
		stA.Synchronize(p)
		serialEnd = p.Now()
	})
	if err := envA.Run(); err != nil {
		t.Fatal(err)
	}

	envB := sim.NewEnv()
	dB := NewDevice(envB, arch, 0, 0)
	stB := dB.NewStream("s")
	var fusedEnd int64
	envB.Spawn("host", func(p *sim.Proc) {
		fc := stB.LaunchFused(p, "fused", mkReqs())
		p.Wait(fc.Ev)
		fusedEnd = p.Now()
	})
	if err := envB.Run(); err != nil {
		t.Fatal(err)
	}

	if fusedEnd*3 >= serialEnd {
		t.Fatalf("fused (%d) not at least 3x faster than serial (%d)", fusedEnd, serialEnd)
	}
}

func TestFusedPerRequestCompletionSignalling(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	// One tiny request and one huge one: the tiny one must signal
	// completion well before the kernel retires.
	var tinyEnd int64 = -1
	reqs := []FusedWork{
		{Name: "tiny", Bytes: 512, Segments: 4, OnComplete: func(end int64) { tinyEnd = end }},
		{Name: "huge", Bytes: 256 << 20, Segments: 4096},
	}
	var fc *FusedCompletion
	env.Spawn("host", func(p *sim.Proc) {
		fc = st.LaunchFused(p, "mix", reqs)
		p.Wait(fc.Ev)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if tinyEnd < 0 {
		t.Fatal("tiny request never signalled completion")
	}
	if tinyEnd >= fc.End {
		t.Fatalf("tiny completed at %d, not before kernel end %d", tinyEnd, fc.End)
	}
	if fc.ReqEnd[0] != tinyEnd {
		t.Fatalf("ReqEnd[0] = %d, want %d", fc.ReqEnd[0], tinyEnd)
	}
}

func TestFusedExecMovesBytesPerRequest(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	src := d.Alloc("src", 256)
	dst := d.Alloc("dst", 256)
	for i := range src.Data {
		src.Data[i] = byte(255 - i)
	}
	reqs := []FusedWork{
		{Name: "lo", Bytes: 128, Segments: 2, Exec: func() { copy(dst.Data[:128], src.Data[:128]) }},
		{Name: "hi", Bytes: 128, Segments: 2, Exec: func() { copy(dst.Data[128:], src.Data[128:]) }},
	}
	env.Spawn("host", func(p *sim.Proc) {
		fc := st.LaunchFused(p, "two", reqs)
		p.Wait(fc.Ev)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst.Data {
		if dst.Data[i] != byte(255-i) {
			t.Fatalf("dst[%d] = %d, want %d", i, dst.Data[i], byte(255-i))
		}
	}
}

func TestFusedEmptyPanics(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env.Spawn("host", func(p *sim.Proc) { st.LaunchFused(p, "none", nil) })
	_ = env.Run()
}

func TestFusedSpanCloseToSingleKernel(t *testing.T) {
	// Paper Section IV: with enough SMs, the fused kernel's execution
	// time stays close to a single kernel's. 8 identical small requests
	// should cost far less than 8x one request.
	_, d := newTestDevice(t)
	one := d.EstimateFusedNs([]FusedWork{{Bytes: 16 << 10, Segments: 500}})
	reqs := make([]FusedWork, 8)
	for i := range reqs {
		reqs[i] = FusedWork{Bytes: 16 << 10, Segments: 500}
	}
	eight := d.EstimateFusedNs(reqs)
	if eight >= 4*one {
		t.Fatalf("8 fused requests cost %d, want < 4x single (%d)", eight, one)
	}
}

func TestFusedRespectsBandwidthFloor(t *testing.T) {
	_, d := newTestDevice(t)
	// Aggregate payload so large that HBM bandwidth must bound the span.
	reqs := make([]FusedWork, 16)
	var total int64
	for i := range reqs {
		reqs[i] = FusedWork{Bytes: 64 << 20, Segments: 64}
		total += reqs[i].Bytes
	}
	span := d.EstimateFusedNs(reqs)
	floor := int64(float64(total) / d.Arch.MemBWBytesPerNs)
	if span < floor {
		t.Fatalf("span %d below bandwidth floor %d", span, floor)
	}
}

// Property: the fused span is never shorter than the largest individual
// request's modeled duration, and never longer than the sum of all
// individually-launched kernel durations.
func TestPropertyFusedSpanBounds(t *testing.T) {
	d := NewDevice(sim.NewEnv(), testArch(), 0, 0)
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 24 {
			return true
		}
		reqs := make([]FusedWork, len(sizes))
		var sum int64
		var maxOne int64
		for i, s := range sizes {
			bytes := int64(s)*64 + 64
			segs := int(s%300) + 1
			reqs[i] = FusedWork{Bytes: bytes, Segments: segs}
			one := d.Arch.kernelCost(bytes, segs, d.gridFor(bytes, segs, 0), 0)
			sum += one
			if one > maxOne {
				maxOne = one
			}
		}
		span := d.EstimateFusedNs(reqs)
		// The fused model gives each request at least 1 block, so a
		// request can run slower than solo; bound loosely below by
		// the max single-request solo time divided is not sound —
		// instead check the hard invariants:
		return span >= d.Arch.KernelStartupNs && span <= sum+d.Arch.KernelStartupNs*int64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFusedMinDurationFloor(t *testing.T) {
	_, d := newTestDevice(t)
	withFloor := d.EstimateFusedNs([]FusedWork{{Bytes: 1024, Segments: 2, MinDurationNs: 500_000}})
	if withFloor < 500_000 {
		t.Fatalf("floor ignored: %d", withFloor)
	}
	without := d.EstimateFusedNs([]FusedWork{{Bytes: 1024, Segments: 2}})
	if without >= 500_000 {
		t.Fatalf("baseline unexpectedly slow: %d", without)
	}
}

func TestUniformPartitionHurtsHeterogeneousBatches(t *testing.T) {
	mixed := []FusedWork{
		{Bytes: 2 << 20, Segments: 20_000}, // huge sparse request
	}
	for i := 0; i < 15; i++ {
		mixed = append(mixed, FusedWork{Bytes: 4 << 10, Segments: 4})
	}
	arch := testArch()
	prop := NewDevice(sim.NewEnv(), arch, 0, 0).EstimateFusedNs(mixed)
	arch.UniformFusedPartition = true
	uniform := NewDevice(sim.NewEnv(), arch, 0, 0).EstimateFusedNs(mixed)
	if prop >= uniform {
		t.Fatalf("work-proportional (%d) should beat uniform (%d) on skewed batches", prop, uniform)
	}
}
