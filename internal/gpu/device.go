package gpu

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/payload"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// Space says where a buffer's bytes live.
type Space int

const (
	// SpaceHost is pageable/pinned host memory.
	SpaceHost Space = iota
	// SpaceDevice is GPU global memory.
	SpaceDevice
)

func (s Space) String() string {
	if s == SpaceHost {
		return "host"
	}
	return "device"
}

// Buffer is a named span of simulated memory. In byte-exact mode (the
// default) Data is real: kernels and copy engines move bytes between
// buffers so correctness is observable. In lazy-bytes mode large buffers
// instead carry a payload.Content span algebra (Data is nil, Lazy is set):
// the same copies become O(spans) bookkeeping and correctness is observed
// through checksums, which match the byte-exact run exactly.
type Buffer struct {
	Name  string
	Space Space
	Data  []byte
	// Lazy, when non-nil, is the buffer's lazy-bytes representation; Data
	// is nil for the buffer's whole life unless Materialize is called.
	Lazy *payload.Content
	// Dev is the owning device for SpaceDevice buffers, nil for host.
	Dev *Device
}

// Len returns the buffer length in bytes.
func (b *Buffer) Len() int {
	if b.Lazy != nil {
		return int(b.Lazy.Len())
	}
	return len(b.Data)
}

// IsLazy reports whether the buffer carries lazy-bytes content.
func (b *Buffer) IsLazy() bool { return b.Lazy != nil }

// Materialize converts a lazy buffer to real bytes in place and returns
// them; on a byte-exact buffer it just returns Data. It is the escape
// hatch for code that must address real bytes (size-table headers,
// reductions) regardless of payload mode.
func (b *Buffer) Materialize() []byte {
	if b.Lazy != nil {
		data := make([]byte, b.Lazy.Len())
		b.Lazy.ReadAt(data, 0)
		b.Data = data
		b.Lazy = nil
	}
	return b.Data
}

// FillStream sets the buffer's whole content to PRF stream `seed`,
// regardless of payload mode — the mode-independent way to seed test and
// benchmark data so exact and lazy runs see identical logical bytes.
func (b *Buffer) FillStream(seed uint64) {
	if b.Lazy != nil {
		b.Lazy.Fill(seed)
		return
	}
	payload.FillBytes(b.Data, seed)
}

// Checksum returns the FNV-1a 64 hash of the buffer's logical content,
// identical between a lazy buffer and a byte-exact buffer holding the same
// bytes.
func (b *Buffer) Checksum() uint64 {
	if b.Lazy != nil {
		return b.Lazy.Checksum()
	}
	return payload.Checksum(b.Data)
}

// ChecksumRange hashes buffer range [off, off+n) the same way Checksum
// hashes the whole buffer: FNV-1a over real bytes in exact mode, the
// composable span-algebra checksum in lazy mode — identical values for
// identical logical content. The reliability layer uses it to stamp and
// verify wire CRCs without ever materializing lazy payloads.
func (b *Buffer) ChecksumRange(off, n int64) uint64 {
	if b.Lazy != nil {
		return b.Lazy.ChecksumRange(off, n)
	}
	return payload.Checksum(b.Data[off : off+n])
}

// CopyRange copies n bytes from src at srcOff into dst at dstOff, handling
// every real/lazy combination. It is the single copy primitive the pack
// kernels and MPI runtime use once lazy mode is in play.
func CopyRange(dst *Buffer, dstOff int64, src *Buffer, srcOff, n int64) {
	if n == 0 {
		return
	}
	switch {
	case dst.Lazy != nil && src.Lazy != nil:
		dst.Lazy.CopyFrom(dstOff, src.Lazy, srcOff, n)
	case dst.Lazy != nil:
		dst.Lazy.WriteBytes(dstOff, src.Data[srcOff:srcOff+n])
	case src.Lazy != nil:
		src.Lazy.ReadAt(dst.Data[dstOff:dstOff+n], srcOff)
	default:
		copy(dst.Data[dstOff:dstOff+n], src.Data[srcOff:srcOff+n])
	}
}

// HostAlloc allocates a host buffer.
func HostAlloc(name string, n int) *Buffer {
	return &Buffer{Name: name, Space: SpaceHost, Data: make([]byte, n)}
}

// Stats counts device activity; all counters are monotonically increasing.
type Stats struct {
	KernelLaunches int64 // kernels launched (fused counts once)
	FusedKernels   int64 // fused launches (subset of KernelLaunches)
	FusedRequests  int64 // requests folded into fused kernels
	KernelBusyNs   int64 // GPU time spent in kernels
	LaunchCPUNs    int64 // CPU time burned in launch overhead
	MemcpyCalls    int64
	MemcpyBytes    int64
	EventRecords   int64
	EventQueries   int64
	StreamSyncs    int64
	BytesMoved     int64 // bytes moved by kernels
	SegmentsMoved  int64 // contiguous segments processed by kernels
	FailedLaunches int64 // transient launch failures injected by a fault plan
}

// Device is one simulated GPU.
type Device struct {
	Arch Arch
	// ID is unique within a cluster; Node is the owning node index.
	ID   int
	Node int
	// TL, when non-nil, receives machine-view timeline events (kernel and
	// copy occupancy per stream, sync waits).
	TL *timeline.Recorder
	// Faults, when non-nil, injects transient launch failures into the
	// fault-aware launch paths (LaunchE, LaunchFusedE). The plain Launch
	// variants never fail, so baseline schemes without a retry story keep
	// their fault-free semantics.
	Faults *fault.Site
	// LazyThreshold, when positive, switches allocations of at least that
	// many bytes to lazy-bytes content (see Buffer.Lazy). Zero keeps every
	// buffer byte-exact.
	LazyThreshold int64

	env   *sim.Env
	alloc int64
	names map[string]struct{}
	bufs  []*Buffer
	Stats Stats
}

// NewDevice creates a device with the given architecture on the simulation
// environment.
func NewDevice(env *sim.Env, arch Arch, id, node int) *Device {
	arch.Validate()
	return &Device{Arch: arch, ID: id, Node: node, env: env}
}

// Env returns the simulation environment the device is bound to.
func (d *Device) Env() *sim.Env { return d.env }

// Alloc allocates device global memory. It panics on a negative size or a
// duplicate buffer name; see AllocE for the error-returning variant.
func (d *Device) Alloc(name string, n int) *Buffer {
	b, err := d.AllocE(name, n)
	if err != nil {
		panic(err.Error())
	}
	return b
}

// AllocE allocates device global memory, returning an error (naming the
// device and buffer) on a negative size or a duplicate name. Zero-size
// buffers are legal: empty datatypes produce them.
func (d *Device) AllocE(name string, n int) (*Buffer, error) {
	if n < 0 {
		return nil, fmt.Errorf("gpu: negative allocation of %d bytes for buffer %q on device %d (node %d)",
			n, name, d.ID, d.Node)
	}
	if _, dup := d.names[name]; dup {
		return nil, fmt.Errorf("gpu: duplicate buffer name %q on device %d (node %d)",
			name, d.ID, d.Node)
	}
	if d.names == nil {
		d.names = make(map[string]struct{})
	}
	d.names[name] = struct{}{}
	d.alloc += int64(n)
	b := &Buffer{Name: name, Space: SpaceDevice, Dev: d}
	if d.LazyThreshold > 0 && int64(n) >= d.LazyThreshold {
		b.Lazy = payload.New(int64(n))
	} else {
		b.Data = make([]byte, n)
	}
	d.bufs = append(d.bufs, b)
	return b, nil
}

// FreeAll releases every buffer allocated on the device: backing storage is
// dropped and all names become available again. Buffers handed out earlier
// must not be used afterwards.
func (d *Device) FreeAll() {
	for _, b := range d.bufs {
		b.Data = nil
		b.Lazy = nil
	}
	d.bufs = nil
	d.names = nil
	d.alloc = 0
}

// AllocatedBytes reports the total device memory allocated so far.
func (d *Device) AllocatedBytes() int64 { return d.alloc }

// NewStream creates an in-order execution queue on the device.
func (d *Device) NewStream(name string) *Stream {
	return &Stream{dev: d, name: name}
}

// Stream is an in-order work queue: kernels and async copies issued to the
// same stream execute back to back; distinct streams proceed concurrently
// (the model does not charge cross-stream contention beyond the shared
// memory-bandwidth floor inside each kernel).
type Stream struct {
	dev       *Device
	name      string
	busyUntil int64
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// Device returns the owning device.
func (s *Stream) Device() *Device { return s.dev }

// BusyUntil reports the virtual time at which all currently enqueued work
// retires.
func (s *Stream) BusyUntil() int64 { return s.busyUntil }

// Idle reports whether the stream has no pending work at the current time.
func (s *Stream) Idle() bool { return s.busyUntil <= s.dev.env.Now() }

// Completion describes one retired (or in-flight) stream operation.
type Completion struct {
	// Ev fires when the operation retires.
	Ev *sim.Event
	// Start and End bound the operation's execution on the device.
	Start, End int64
}

// Done reports whether the operation has retired.
func (c *Completion) Done() bool { return c.Ev.Fired() }

// KernelSpec describes one packing/unpacking kernel to launch.
type KernelSpec struct {
	// Name is used for events and debugging.
	Name string
	// Bytes is the total payload the kernel moves.
	Bytes int64
	// Segments is the number of contiguous spans the payload is split
	// into; sparse layouts have thousands of tiny segments.
	Segments int
	// MaxSegmentBytes is the largest single contiguous span. Zero means
	// assume Bytes/Segments.
	MaxSegmentBytes int64
	// ThreadBlocks requests a specific grid size; zero sizes the grid to
	// one block per segment, capped at device residency.
	ThreadBlocks int
	// MinDurationNs floors the kernel's execution time; DirectIPC
	// kernels use it to model the GPU-GPU link their load/stores cross.
	MinDurationNs int64
	// Exec performs the real data movement. It runs in scheduler context
	// when the kernel retires and must not block.
	Exec func()
}

// chunk returns the intra-segment parallelization granularity.
func (a Arch) chunk() int64 {
	if a.ChunkBytes > 0 {
		return a.ChunkBytes
	}
	return 16 << 10
}

// workUnits is the number of independently schedulable pieces a payload
// splits into: at least one per contiguous segment, and large segments are
// chunked so a dense layout still fills the machine.
func (a Arch) workUnits(bytes int64, segments int) int {
	units := segments
	if byChunk := int((bytes + a.chunk() - 1) / a.chunk()); byChunk > units {
		units = byChunk
	}
	if units < 1 {
		units = 1
	}
	return units
}

// kernelCost returns the GPU-side execution time of a kernel processing
// `bytes` across `segments` spans with `blocks` concurrent thread blocks.
// The model is the max of three lower bounds:
//
//	bandwidth:  bytes / device memory bandwidth
//	work:       (per-segment fixed cost + streaming time) / parallelism
//	critical:   the largest single work unit at one block's bandwidth
//
// plus the fixed kernel startup.
func (a Arch) kernelCost(bytes int64, segments, blocks int, maxSeg int64) int64 {
	if bytes == 0 || segments == 0 {
		return a.KernelStartupNs
	}
	if blocks <= 0 {
		blocks = 1
	}
	if maxSeg <= 0 {
		maxSeg = bytes / int64(segments)
		if maxSeg == 0 {
			maxSeg = 1
		}
	}
	if maxSeg > a.chunk() {
		maxSeg = a.chunk() // large segments are chunked across blocks
	}
	bw := float64(bytes) / a.MemBWBytesPerNs
	work := (float64(segments)*a.SegmentFixedNs + float64(bytes)/a.BlockCopyBWBytesPerNs) / float64(blocks)
	crit := a.SegmentFixedNs + float64(maxSeg)/a.BlockCopyBWBytesPerNs
	return a.KernelStartupNs + int64(math.Ceil(math.Max(bw, math.Max(work, crit))))
}

// EstimateKernelNs exposes the kernel cost model (used by the fusion
// scheduler's flush heuristics and by tests).
func (d *Device) EstimateKernelNs(bytes int64, segments int, maxSeg int64) int64 {
	blocks := d.gridFor(bytes, segments, 0)
	return d.Arch.kernelCost(bytes, segments, blocks, maxSeg)
}

// gridFor sizes the grid: requested blocks if given, else one block per
// work unit, always within [1, MaxResidentBlocks].
func (d *Device) gridFor(bytes int64, segments, requested int) int {
	blocks := requested
	if blocks <= 0 {
		blocks = d.Arch.workUnits(bytes, segments)
	}
	if max := d.Arch.MaxResidentBlocks(); blocks > max {
		blocks = max
	}
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// ErrLaunchFailed is the transient kernel-launch failure injected by a GPU
// fault plan; callers retry or degrade.
var ErrLaunchFailed = errors.New("gpu: transient kernel-launch failure")

// launchFault pays the driver overhead and rolls the device's launch-fault
// site when faultable. Returns ErrLaunchFailed on an injected failure (the
// overhead is burned either way, as a rejected launch still makes the
// driver round trip).
func (s *Stream) launchFault(p *sim.Proc, name string, faultable bool) error {
	d := s.dev
	p.Sleep(d.Arch.LaunchOverheadNs)
	d.Stats.LaunchCPUNs += d.Arch.LaunchOverheadNs
	if faultable && d.Faults != nil && d.Faults.Roll(d.Faults.Plan().GPU.LaunchFailProb) {
		d.Stats.FailedLaunches++
		d.Faults.Record(fault.LaunchFail, name)
		return ErrLaunchFailed
	}
	return nil
}

// Launch issues one kernel from proc p. The calling proc pays the driver
// launch overhead; the kernel then executes in stream order. Exec runs when
// the kernel retires.
func (s *Stream) Launch(p *sim.Proc, spec KernelSpec) *Completion {
	c, _ := s.launch(p, spec, false)
	return c
}

// LaunchE is Launch with transient-fault visibility: under a GPU fault plan
// the launch may fail with ErrLaunchFailed after burning the driver
// overhead, and the caller is expected to retry or fall back.
func (s *Stream) LaunchE(p *sim.Proc, spec KernelSpec) (*Completion, error) {
	return s.launch(p, spec, true)
}

func (s *Stream) launch(p *sim.Proc, spec KernelSpec, faultable bool) (*Completion, error) {
	d := s.dev
	if err := s.launchFault(p, spec.Name, faultable); err != nil {
		return nil, err
	}
	d.Stats.KernelLaunches++
	blocks := d.gridFor(spec.Bytes, spec.Segments, spec.ThreadBlocks)
	dur := d.Arch.kernelCost(spec.Bytes, spec.Segments, blocks, spec.MaxSegmentBytes)
	if dur < spec.MinDurationNs {
		dur = spec.MinDurationNs
	}
	return s.enqueue(p, spec.Name, dur, spec.Bytes, spec.Segments, spec.Exec), nil
}

// enqueue places one operation of duration dur at the stream tail.
func (s *Stream) enqueue(p *sim.Proc, name string, dur, bytes int64, segments int, exec func()) *Completion {
	d := s.dev
	now := d.env.Now()
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end := start + dur
	s.busyUntil = end
	d.Stats.KernelBusyNs += dur
	d.Stats.BytesMoved += bytes
	d.Stats.SegmentsMoved += int64(segments)
	if d.TL != nil {
		d.TL.Span(timeline.LayerGPU, timeline.CostNone, s.name, name, start, dur)
	}
	c := &Completion{
		Ev:    d.env.NewEvent(fmt.Sprintf("%s@%s", name, s.name)),
		Start: start,
		End:   end,
	}
	d.env.At(end, func() {
		if exec != nil {
			exec()
		}
		c.Ev.Fire()
	})
	return c
}

// CopyKind distinguishes the path a cudaMemcpyAsync takes.
type CopyKind int

const (
	// CopyD2D stays in device memory.
	CopyD2D CopyKind = iota
	// CopyH2D crosses the CPU-GPU link into the device.
	CopyH2D
	// CopyD2H crosses the CPU-GPU link out of the device.
	CopyD2H
)

func (k CopyKind) String() string {
	switch k {
	case CopyD2D:
		return "D2D"
	case CopyH2D:
		return "H2D"
	default:
		return "D2H"
	}
}

// MemcpyAsync issues a copy-engine transfer on the stream. The calling proc
// pays the per-call driver overhead. Exec performs the real byte movement
// when the transfer retires.
func (s *Stream) MemcpyAsync(p *sim.Proc, kind CopyKind, bytes int64, exec func()) *Completion {
	d := s.dev
	p.Sleep(d.Arch.MemcpyAsyncOverheadNs)
	d.Stats.LaunchCPUNs += d.Arch.MemcpyAsyncOverheadNs
	d.Stats.MemcpyCalls++
	d.Stats.MemcpyBytes += bytes
	bw := d.Arch.MemBWBytesPerNs
	if kind != CopyD2D {
		bw = d.Arch.CPUGPULinkBWBytesPerNs
	}
	dur := d.Arch.CopyEngineLatencyNs + int64(math.Ceil(float64(bytes)/bw))
	return s.enqueue(p, fmt.Sprintf("memcpy-%s", kind), dur, bytes, 1, exec)
}

// Event is a CUDA-event analogue: a marker recorded at a point in a stream.
type Event struct {
	dev *Device
	ev  *sim.Event
	at  int64
}

// Record places an event after all work currently enqueued on the stream.
// The calling proc pays the cudaEventRecord cost.
func (s *Stream) Record(p *sim.Proc, name string) *Event {
	d := s.dev
	p.Sleep(d.Arch.EventRecordNs)
	d.Stats.EventRecords++
	at := d.env.Now()
	if s.busyUntil > at {
		at = s.busyUntil
	}
	e := &Event{dev: d, ev: d.env.NewEvent("gpuev:" + name), at: at}
	if at <= d.env.Now() {
		e.ev.Fire()
	} else {
		e.ev.FireAt(at)
	}
	return e
}

// Query polls the event (cudaEventQuery): the calling proc pays the query
// cost; the return value reflects the state after that cost.
func (e *Event) Query(p *sim.Proc) bool {
	p.Sleep(e.dev.Arch.EventQueryNs)
	e.dev.Stats.EventQueries++
	return e.ev.Fired()
}

// Synchronize blocks until the event fires (cudaEventSynchronize).
func (e *Event) Synchronize(p *sim.Proc) {
	p.Sleep(e.dev.Arch.StreamSyncBaseNs)
	e.dev.Stats.StreamSyncs++
	p.Wait(e.ev)
}

// Done reports the event state without any API cost (for assertions).
func (e *Event) Done() bool { return e.ev.Fired() }

// Synchronize blocks the proc until all work enqueued on the stream at call
// time retires (cudaStreamSynchronize).
func (s *Stream) Synchronize(p *sim.Proc) {
	d := s.dev
	p.Sleep(d.Arch.StreamSyncBaseNs)
	d.Stats.StreamSyncs++
	until := s.busyUntil
	if until <= d.env.Now() {
		return
	}
	if d.TL != nil {
		d.TL.Span(timeline.LayerGPU, timeline.CostNone, s.name, "sync-wait", d.env.Now(), until-d.env.Now())
	}
	ev := d.env.NewEvent("streamsync:" + s.name)
	ev.FireAt(until)
	p.Wait(ev)
}
