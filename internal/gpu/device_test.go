package gpu

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// testArch is a V100-like parameter set used across the package tests.
func testArch() Arch {
	return Arch{
		Name:                   "testV100",
		LaunchOverheadNs:       6500,
		KernelStartupNs:        1200,
		SMCount:                80,
		MaxBlocksPerSM:         16,
		MemBWBytesPerNs:        900,
		BlockCopyBWBytesPerNs:  12,
		SegmentFixedNs:         180,
		EventRecordNs:          900,
		EventQueryNs:           600,
		StreamSyncBaseNs:       1100,
		MemcpyAsyncOverheadNs:  4200,
		CopyEngineLatencyNs:    1300,
		CPUGPULinkBWBytesPerNs: 75,
		GdrCopyLatencyNs:       400,
		GdrCopyBWBytesPerNs:    6,
		GdrSegmentFixedNs:      90,
	}
}

func newTestDevice(t *testing.T) (*sim.Env, *Device) {
	t.Helper()
	env := sim.NewEnv()
	return env, NewDevice(env, testArch(), 0, 0)
}

func TestArchValidatePanicsOnBadParams(t *testing.T) {
	bad := testArch()
	bad.LaunchOverheadNs = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad.Validate()
}

func TestLaunchChargesCPUOverhead(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	var afterLaunch int64
	env.Spawn("host", func(p *sim.Proc) {
		st.Launch(p, KernelSpec{Name: "k", Bytes: 1024, Segments: 4})
		afterLaunch = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if afterLaunch != d.Arch.LaunchOverheadNs {
		t.Fatalf("launch returned at %d, want %d", afterLaunch, d.Arch.LaunchOverheadNs)
	}
	if d.Stats.KernelLaunches != 1 || d.Stats.LaunchCPUNs != d.Arch.LaunchOverheadNs {
		t.Fatalf("stats wrong: %+v", d.Stats)
	}
}

func TestKernelExecMovesRealBytes(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	src := d.Alloc("src", 64)
	dst := d.Alloc("dst", 64)
	for i := range src.Data {
		src.Data[i] = byte(i * 3)
	}
	env.Spawn("host", func(p *sim.Proc) {
		c := st.Launch(p, KernelSpec{
			Name: "copy", Bytes: 64, Segments: 1,
			Exec: func() { copy(dst.Data, src.Data) },
		})
		if c.Done() {
			t.Error("kernel done immediately after launch")
		}
		if dst.Data[10] != 0 {
			t.Error("bytes moved before kernel retired")
		}
		st.Synchronize(p)
		if !c.Done() {
			t.Error("kernel not done after stream sync")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range dst.Data {
		if dst.Data[i] != byte(i*3) {
			t.Fatalf("dst[%d] = %d, want %d", i, dst.Data[i], byte(i*3))
		}
	}
}

func TestStreamFIFOOrdering(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	var c1, c2 *Completion
	env.Spawn("host", func(p *sim.Proc) {
		c1 = st.Launch(p, KernelSpec{Name: "k1", Bytes: 1 << 20, Segments: 64})
		c2 = st.Launch(p, KernelSpec{Name: "k2", Bytes: 1 << 10, Segments: 2})
		st.Synchronize(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if c2.Start < c1.End {
		t.Fatalf("k2 started (%d) before k1 ended (%d)", c2.Start, c1.End)
	}
}

func TestSeparateStreamsOverlap(t *testing.T) {
	env, d := newTestDevice(t)
	s1 := d.NewStream("s1")
	s2 := d.NewStream("s2")
	var c1, c2 *Completion
	env.Spawn("host", func(p *sim.Proc) {
		// Kernels long enough to outlast the second launch's CPU cost.
		c1 = s1.Launch(p, KernelSpec{Name: "k1", Bytes: 64 << 20, Segments: 64})
		c2 = s2.Launch(p, KernelSpec{Name: "k2", Bytes: 64 << 20, Segments: 64})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if c2.Start >= c1.End {
		t.Fatalf("streams serialized: k2 start %d >= k1 end %d", c2.Start, c1.End)
	}
}

func TestKernelCostSparseDominatedBySegments(t *testing.T) {
	d := NewDevice(sim.NewEnv(), testArch(), 0, 0)
	// Same bytes, wildly different segment counts.
	dense := d.EstimateKernelNs(1<<20, 8, 0)
	sparse := d.EstimateKernelNs(1<<20, 50_000, 0)
	if sparse <= dense {
		t.Fatalf("sparse (%d) should cost more than dense (%d)", sparse, dense)
	}
}

func TestKernelCostScalesWithBytes(t *testing.T) {
	d := NewDevice(sim.NewEnv(), testArch(), 0, 0)
	small := d.EstimateKernelNs(1<<14, 16, 0)
	big := d.EstimateKernelNs(1<<26, 16, 0)
	if big <= small {
		t.Fatalf("64MB (%d) should cost more than 16KB (%d)", big, small)
	}
}

func TestLaunchOverheadDominatesSmallKernels(t *testing.T) {
	// The paper's Fig. 1 phenomenon: for representative packing shapes,
	// launch overhead exceeds kernel execution time on modern GPUs.
	d := NewDevice(sim.NewEnv(), testArch(), 0, 0)
	kernel := d.EstimateKernelNs(96<<10, 4000, 32) // specfem-like sparse
	if kernel >= d.Arch.LaunchOverheadNs {
		t.Fatalf("kernel %dns not dominated by launch %dns", kernel, d.Arch.LaunchOverheadNs)
	}
}

func TestEventRecordQuerySync(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	env.Spawn("host", func(p *sim.Proc) {
		c := st.Launch(p, KernelSpec{Name: "k", Bytes: 1 << 22, Segments: 128})
		ev := st.Record(p, "after-k")
		if ev.Query(p) {
			t.Error("event fired while kernel still running")
		}
		ev.Synchronize(p)
		if !ev.Query(p) {
			t.Error("event not fired after synchronize")
		}
		if p.Now() < c.End {
			t.Errorf("sync returned at %d before kernel end %d", p.Now(), c.End)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.EventRecords != 1 || d.Stats.EventQueries != 2 {
		t.Fatalf("event stats wrong: %+v", d.Stats)
	}
}

func TestRecordOnIdleStreamFiresImmediately(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	env.Spawn("host", func(p *sim.Proc) {
		ev := st.Record(p, "idle")
		if !ev.Done() {
			t.Error("event on idle stream should fire immediately")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemcpyAsyncPaths(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	var d2d, h2d *Completion
	env.Spawn("host", func(p *sim.Proc) {
		d2d = st.MemcpyAsync(p, CopyD2D, 1<<20, nil)
		h2d = st.MemcpyAsync(p, CopyH2D, 1<<20, nil)
		st.Synchronize(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	d2dDur := d2d.End - d2d.Start
	h2dDur := h2d.End - h2d.Start
	if h2dDur <= d2dDur {
		t.Fatalf("H2D (%d) should be slower than D2D (%d): link slower than HBM", h2dDur, d2dDur)
	}
	if d.Stats.MemcpyCalls != 2 || d.Stats.MemcpyBytes != 2<<20 {
		t.Fatalf("memcpy stats wrong: %+v", d.Stats)
	}
}

func TestStreamSynchronizeIdleIsCheap(t *testing.T) {
	env, d := newTestDevice(t)
	st := d.NewStream("s0")
	var took int64
	env.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		st.Synchronize(p)
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if took != d.Arch.StreamSyncBaseNs {
		t.Fatalf("idle sync took %d, want just the base cost %d", took, d.Arch.StreamSyncBaseNs)
	}
}

func TestAllocTracksBytes(t *testing.T) {
	_, d := newTestDevice(t)
	d.Alloc("a", 100)
	d.Alloc("b", 28)
	if d.AllocatedBytes() != 128 {
		t.Fatalf("allocated = %d, want 128", d.AllocatedBytes())
	}
	b := HostAlloc("h", 16)
	if b.Space != SpaceHost || b.Len() != 16 || b.Dev != nil {
		t.Fatalf("host alloc wrong: %+v", b)
	}
}

// Property: kernel cost is monotone in bytes and in segments.
func TestPropertyKernelCostMonotone(t *testing.T) {
	d := NewDevice(sim.NewEnv(), testArch(), 0, 0)
	f := func(b1, b2 uint32, s1, s2 uint16) bool {
		bytes1, bytes2 := int64(b1%(1<<24))+1, int64(b2%(1<<24))+1
		if bytes1 > bytes2 {
			bytes1, bytes2 = bytes2, bytes1
		}
		segs1, segs2 := int(s1%5000)+1, int(s2%5000)+1
		if segs1 > segs2 {
			segs1, segs2 = segs2, segs1
		}
		// more bytes, same segments
		if d.EstimateKernelNs(bytes2, segs1, 0) < d.EstimateKernelNs(bytes1, segs1, 0) {
			return false
		}
		// more segments, same bytes: cost may only grow once the
		// grid saturates; with one block per segment below the cap
		// it can shrink, so compare at the same grid saturation.
		if segs1 >= d.Arch.MaxResidentBlocks() {
			if d.EstimateKernelNs(bytes1, segs2, 0) < d.EstimateKernelNs(bytes1, segs1, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
