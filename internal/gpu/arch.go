// Package gpu models a CUDA-class GPU device on the simulated clock: the
// CPU-side driver cost of launching work, FIFO streams, events, copy
// engines, SM occupancy, and a memory-bandwidth execution model for packing
// kernels. Kernels move real bytes (their Exec closure runs when the kernel
// retires), so data correctness is testable while time is fully virtual.
//
// The model is deliberately a *latency algebra*, not a cycle-accurate
// simulator: the paper's phenomenon is that a fixed several-microsecond
// per-launch driver overhead dominates packing kernels that themselves take
// only a microsecond or two, and that fusing N kernels pays the launch cost
// once while the fused kernel's span stays close to a single kernel's. The
// parameters below are calibrated to reproduce that algebra (Fig. 1 of the
// paper), not absolute device timings.
package gpu

import "errors"

// Arch holds the performance parameters of one GPU generation.
//
// All times are virtual nanoseconds; all bandwidths are bytes per
// nanosecond (1 B/ns == 1 GB/s is off by ~7%; we use the decimal
// convention 1 GB/s == 1 byte/ns for readability).
type Arch struct {
	Name string

	// LaunchOverheadNs is the CPU-side driver cost of launching one
	// kernel (cudaLaunchKernel): the calling thread is busy for this
	// long. This is the paper's central villain.
	LaunchOverheadNs int64

	// KernelStartupNs is the GPU-side fixed cost of a kernel: scheduling
	// thread blocks onto SMs before useful work begins.
	KernelStartupNs int64

	// SMCount and MaxBlocksPerSM bound the number of concurrently
	// resident thread blocks; their product is the parallelism available
	// to a (fused) packing kernel.
	SMCount        int
	MaxBlocksPerSM int

	// MemBWBytesPerNs is the aggregate device-memory bandwidth.
	MemBWBytesPerNs float64

	// BlockCopyBWBytesPerNs is the streaming copy bandwidth a single
	// thread block achieves on contiguous data.
	BlockCopyBWBytesPerNs float64

	// SegmentFixedNs is the per-contiguous-segment overhead inside a
	// packing kernel (address computation plus uncoalesced first/last
	// transactions). Sparse layouts with thousands of tiny segments are
	// dominated by this term.
	SegmentFixedNs float64

	// ChunkBytes is the granularity at which a packing kernel splits a
	// large contiguous segment across thread blocks; zero selects the
	// 16 KiB default. Without chunking a dense few-segment layout would
	// be bottlenecked on single-block copy bandwidth, which real pack
	// kernels avoid by parallelizing within segments.
	ChunkBytes int64

	// UniformFusedPartition switches the fused kernel's cooperative-
	// group partitioning from work-proportional to a naive equal split
	// (ablation of the Partition phase in the paper's Fig. 6).
	UniformFusedPartition bool

	// CUDA API costs on the calling CPU thread.
	EventRecordNs         int64 // cudaEventRecord
	EventQueryNs          int64 // cudaEventQuery
	StreamSyncBaseNs      int64 // cudaStreamSynchronize fixed part
	MemcpyAsyncOverheadNs int64 // cudaMemcpyAsync driver cost per call

	// Copy-engine (DMA) characteristics for H2D/D2H transfers; the
	// bandwidth itself comes from the CPU-GPU link.
	CopyEngineLatencyNs int64

	// CPUGPULinkBWBytesPerNs is the host<->device interconnect bandwidth
	// (NVLink2: 75, PCIe3 x16: 32 in the systems of the paper).
	CPUGPULinkBWBytesPerNs float64

	// GDRCopy window: CPU load/store directly into device memory. Very
	// low latency, modest bandwidth — the CPU-GPU-Hybrid baseline's
	// weapon for small dense layouts.
	GdrCopyLatencyNs    int64
	GdrCopyBWBytesPerNs float64
	// GdrSegmentFixedNs is the CPU per-segment cost when packing through
	// the window.
	GdrSegmentFixedNs float64
}

// MaxResidentBlocks returns the number of thread blocks that can execute
// concurrently.
func (a Arch) MaxResidentBlocks() int {
	return a.SMCount * a.MaxBlocksPerSM
}

// Check reports an error for an unusable parameter set; configuration
// paths (cluster.Spec.Validate, dkf.NewSession) surface it instead of
// panicking.
func (a Arch) Check() error {
	switch {
	case a.Name == "":
		return errors.New("gpu: Arch.Name empty")
	case a.LaunchOverheadNs <= 0:
		return errors.New("gpu: LaunchOverheadNs must be positive: " + a.Name)
	case a.SMCount <= 0 || a.MaxBlocksPerSM <= 0:
		return errors.New("gpu: SM geometry must be positive: " + a.Name)
	case a.MemBWBytesPerNs <= 0 || a.BlockCopyBWBytesPerNs <= 0:
		return errors.New("gpu: bandwidths must be positive: " + a.Name)
	case a.CPUGPULinkBWBytesPerNs <= 0:
		return errors.New("gpu: CPU-GPU link bandwidth must be positive: " + a.Name)
	}
	return nil
}

// Validate panics on an unusable parameter set (see Check for the
// error-returning variant). Building a Device validates implicitly.
func (a Arch) Validate() {
	if err := a.Check(); err != nil {
		panic(err.Error())
	}
}
