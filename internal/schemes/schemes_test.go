package schemes_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/fusion"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/schemes"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rig builds a 1-node world so we can drive a scheme directly on rank 0.
func rig(factory mpi.SchemeFactory) (*mpi.World, *mpi.Rank) {
	env := sim.NewEnv()
	spec := cluster.Lassen()
	spec.Nodes = 1
	c := cluster.MustBuild(env, spec)
	w := mpi.NewWorld(c, mpi.DefaultConfig(), factory)
	return w, w.Rank(0)
}

// jobSeq makes buffer names unique across sparseJob calls on one device
// (the device rejects duplicate names).
var jobSeq int

// sparseJob returns a pack job with the given segment geometry.
func sparseJob(r *mpi.Rank, segments, blockBytes int) *pack.Job {
	lens := make([]int, segments)
	displs := make([]int, segments)
	for i := range lens {
		lens[i] = blockBytes
		displs[i] = i * (blockBytes + 5)
	}
	l := datatype.Commit(datatype.Indexed(lens, displs, datatype.Byte))
	jobSeq++
	src := r.Dev.Alloc(fmt.Sprintf("src%d", jobSeq), int(l.ExtentBytes))
	dst := r.Dev.Alloc(fmt.Sprintf("dst%d", jobSeq), int(l.SizeBytes))
	return pack.NewJob(pack.OpPack, src, dst, l.Blocks)
}

func TestGPUSyncHandleImmediatelyDone(t *testing.T) {
	w, r := rig(schemes.Factory("GPU-Sync"))
	var launches, syncs int64
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		h := r.Scheme().Pack(p, sparseJob(r, 100, 4))
		if !h.Done(p) {
			t.Error("GPU-Sync handle must be done at return")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	launches, syncs = r.Dev.Stats.KernelLaunches, r.Dev.Stats.StreamSyncs
	if launches != 1 || syncs != 1 {
		t.Fatalf("launches=%d syncs=%d, want 1/1", launches, syncs)
	}
	if r.Trace.Get(trace.Sync) == 0 {
		t.Fatal("GPU-Sync must charge Sync time")
	}
}

func TestGPUAsyncQueriesCostSyncTime(t *testing.T) {
	w, r := rig(schemes.Factory("GPU-Async"))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		h := r.Scheme().Pack(p, sparseJob(r, 3000, 2))
		polls := 0
		for !h.Done(p) {
			polls++
			p.Sleep(200)
		}
		if polls == 0 {
			t.Error("kernel finished before any poll — test shape too small")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dev.Stats.EventRecords != 1 {
		t.Fatalf("event records = %d, want 1", r.Dev.Stats.EventRecords)
	}
	if r.Dev.Stats.EventQueries < 2 {
		t.Fatalf("event queries = %d, want >= 2", r.Dev.Stats.EventQueries)
	}
	if r.Dev.Stats.StreamSyncs != 0 {
		t.Fatal("GPU-Async must not stream-synchronize")
	}
	if r.Trace.Get(trace.Sync) == 0 || r.Trace.Get(trace.Scheduling) == 0 {
		t.Fatalf("trace: %s", r.Trace.String())
	}
}

func TestHybridRoutesSmallDenseToCPU(t *testing.T) {
	w, r := rig(schemes.Factory("CPU-GPU-Hybrid"))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		s := r.Scheme().(*schemes.CPUGPUHybrid)
		// Small dense: 64 blocks x 256B = 16KB, avg block 256 >= 32.
		s.Pack(p, sparseJob(r, 64, 256))
		if s.UsedCPU != 1 || s.UsedGPU != 0 {
			t.Errorf("small dense: cpu=%d gpu=%d", s.UsedCPU, s.UsedGPU)
		}
		// Sparse: avg block 2 < 32 -> GPU.
		s.Pack(p, sparseJob(r, 2000, 2))
		if s.UsedGPU != 1 {
			t.Errorf("sparse should go to GPU: cpu=%d gpu=%d", s.UsedCPU, s.UsedGPU)
		}
		// Large dense: 4MB > MaxBytes -> GPU.
		s.Pack(p, sparseJob(r, 64, 64<<10))
		if s.UsedGPU != 2 {
			t.Errorf("large should go to GPU: cpu=%d gpu=%d", s.UsedCPU, s.UsedGPU)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dev.Stats.KernelLaunches != 2 {
		t.Fatalf("kernel launches = %d, want 2", r.Dev.Stats.KernelLaunches)
	}
}

func TestNaiveMemcpyOneDriverCallPerBlock(t *testing.T) {
	w, r := rig(schemes.Factory("SpectrumMPI"))
	const blocks = 500
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		r.Scheme().Pack(p, sparseJob(r, blocks, 4))
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dev.Stats.MemcpyCalls != blocks {
		t.Fatalf("memcpy calls = %d, want %d", r.Dev.Stats.MemcpyCalls, blocks)
	}
	if r.Dev.Stats.KernelLaunches != 0 {
		t.Fatal("naive path must not launch kernels")
	}
}

func TestNaiveOrdersOfMagnitudeSlowerThanFusion(t *testing.T) {
	run := func(name string, segments int) int64 {
		w, _ := rig(schemes.Factory(name))
		var took int64
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			h := r.Scheme().Pack(p, sparseJob(r, segments, 4))
			r.Scheme().Flush(p)
			for !h.Done(p) {
				p.Sleep(200)
			}
			took = p.Now()
		})
		if err != nil {
			t.Fatal(err)
		}
		return took
	}
	naive := run("SpectrumMPI", 2000)
	fused := run("Proposed-Tuned", 2000)
	if fused*100 >= naive {
		t.Fatalf("naive %dns vs fused %dns: want >=100x gap", naive, fused)
	}
}

func TestFusionFallbackOnQueueFull(t *testing.T) {
	factory := func(r *mpi.Rank) mpi.Scheme {
		cfg := fusion.DefaultConfig()
		cfg.QueueCapacity = 1
		cfg.ThresholdBytes = 1 << 40
		return schemes.NewFusionWith(r, cfg)
	}
	w, r := rig(factory)
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		s := r.Scheme().(*schemes.Fusion)
		h1 := s.Pack(p, sparseJob(r, 50, 4))
		h2 := s.Pack(p, sparseJob(r, 50, 4)) // queue full -> unfused fallback
		if s.Fallbacks != 1 {
			t.Errorf("fallbacks = %d, want 1", s.Fallbacks)
		}
		if !h2.Done(p) {
			t.Error("fallback handle must be synchronous")
		}
		s.Flush(p)
		for !h1.Done(p) {
			p.Sleep(200)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dev.Stats.FusedKernels != 1 || r.Dev.Stats.KernelLaunches != 2 {
		t.Fatalf("stats: %+v", r.Dev.Stats)
	}
}

func TestFactoryNamesAndUnknownPanics(t *testing.T) {
	for _, n := range schemes.Names() {
		if schemes.Factory(n) == nil {
			t.Fatalf("factory %q nil", n)
		}
	}
	for _, alias := range []string{"MVAPICH2-GDR", "SpectrumMPI", "OpenMPI"} {
		if schemes.Factory(alias) == nil {
			t.Fatalf("alias %q nil", alias)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown scheme")
		}
	}()
	schemes.Factory("nope")
}

func TestSchemeNamesMatchLegends(t *testing.T) {
	w, _ := rig(schemes.Factory("Proposed-Tuned"))
	if got := w.Rank(0).SchemeName(); got != "Proposed-Fusion" {
		t.Fatalf("name = %q", got)
	}
}

func TestStagedHostPaysTwoLinkCrossings(t *testing.T) {
	w, r := rig(schemes.Factory("StagedHost"))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		r.Scheme().Pack(p, sparseJob(r, 100, 64))
		r.Scheme().Unpack(p, sparseJob(r, 100, 64))
	})
	if err != nil {
		t.Fatal(err)
	}
	// One pack kernel + one unpack kernel, plus one staging memcpy each.
	if r.Dev.Stats.KernelLaunches != 2 || r.Dev.Stats.MemcpyCalls != 2 {
		t.Fatalf("stats: %+v", r.Dev.Stats)
	}
	if _, ok := r.Scheme().DirectIPC(nil, nil); ok {
		t.Fatal("StagedHost must not claim a GPUDirect peer path")
	}
}

func TestStagedHostSlowerThanGPUSync(t *testing.T) {
	run := func(name string) int64 {
		w, _ := rig(schemes.Factory(name))
		var took int64
		err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
			h := r.Scheme().Pack(p, sparseJob(r, 500, 64))
			for !h.Done(p) {
				p.Sleep(200)
			}
			took = p.Now()
		})
		if err != nil {
			t.Fatal(err)
		}
		return took
	}
	if staged, sync := run("StagedHost"), run("GPU-Sync"); staged <= sync {
		t.Fatalf("staging (%d) should cost more than GPUDirect (%d)", staged, sync)
	}
}

func TestHybridDirectIPCSupported(t *testing.T) {
	w, r := rig(schemes.Factory("CPU-GPU-Hybrid"))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		h, ok := r.Scheme().DirectIPC(p, sparseJob(r, 16, 64))
		if !ok {
			t.Error("hybrid scheme should support DirectIPC (the zero-copy path of [24])")
		}
		if !h.Done(p) {
			t.Error("hybrid IPC runs synchronously")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestGPUAsyncDirectIPCAndUnpack(t *testing.T) {
	w, r := rig(schemes.Factory("GPU-Async"))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		h1, ok := r.Scheme().DirectIPC(p, sparseJob(r, 1000, 8))
		if !ok {
			t.Fatal("async IPC unsupported")
		}
		h2 := r.Scheme().Unpack(p, sparseJob(r, 1000, 8))
		r.Scheme().Flush(p) // no-op, but exercises the path
		for !h1.Done(p) || !h2.Done(p) {
			p.Sleep(500)
		}
		if h1.DoneEv() != nil {
			t.Error("async handles are poll-only")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dev.Stats.KernelLaunches != 2 || r.Dev.Stats.EventRecords != 2 {
		t.Fatalf("stats: %+v", r.Dev.Stats)
	}
}

func TestFusionHandleDoneEvAndSyncStream(t *testing.T) {
	w, r := rig(schemes.Factory("Proposed-Tuned"))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		s := r.Scheme().(*schemes.Fusion)
		h := s.Pack(p, sparseJob(r, 200, 8))
		if h.DoneEv() == nil {
			t.Fatal("fusion handles expose completion events")
		}
		s.Flush(p)
		p.Wait(h.DoneEv())
		s.SyncStream(p) // stream already drained: cheap
		if !h.Done(p) {
			t.Fatal("handle not done after event")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestNaiveMemcpyUnpackAndEmptyJob(t *testing.T) {
	w, r := rig(schemes.Factory("OpenMPI"))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		h := r.Scheme().Unpack(p, sparseJob(r, 64, 4))
		if !h.Done(p) {
			t.Error("naive unpack is synchronous")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dev.Stats.MemcpyCalls != 64 {
		t.Fatalf("memcpy calls = %d", r.Dev.Stats.MemcpyCalls)
	}
}

func TestProposedAutoSeedsFromModel(t *testing.T) {
	w, r := rig(schemes.Factory("Proposed-Auto"))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		s := r.Scheme().(*schemes.Fusion)
		th := s.Sched.Config().ThresholdBytes
		if th < 16<<10 || th > 4<<20 {
			t.Errorf("auto seed threshold %d out of model bounds", th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestStagedHostUnpackDirection(t *testing.T) {
	w, r := rig(schemes.Factory("StagedHost"))
	err := w.Run(func(r *mpi.Rank, p *sim.Proc) {
		h := r.Scheme().Unpack(p, sparseJob(r, 32, 16))
		if !h.Done(p) {
			t.Error("staged unpack is synchronous")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dev.Stats.MemcpyCalls != 1 || r.Dev.Stats.KernelLaunches != 1 {
		t.Fatalf("stats: %+v", r.Dev.Stats)
	}
}
