// Package schemes implements every DDT-processing scheme the paper
// evaluates (Section V-A), all behind the mpi.Scheme interface:
//
//	GPUSync       — GPU kernels with explicit cudaStreamSynchronize [8,22]
//	GPUAsync      — GPU kernels with cudaEventRecord/Query polling [23]
//	CPUGPUHybrid  — adaptive GDRCopy CPU path for small dense layouts,
//	                GPU-Sync otherwise [24]; also models MVAPICH2-GDR
//	NaiveMemcpy   — one cudaMemcpyAsync per contiguous block, the
//	                SpectrumMPI / OpenMPI production-library behaviour
//	Fusion        — the proposed dynamic kernel fusion (internal/fusion)
package schemes

import (
	"repro/internal/fusion"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/sim"
	"repro/internal/trace"
)

// doneHandle is an already-complete operation (blocking schemes).
type doneHandle struct{}

func (doneHandle) Done(*sim.Proc) bool { return true }
func (doneHandle) DoneEv() *sim.Event  { return nil }
func (doneHandle) Err() error          { return nil }

// --- GPU-Sync ---

// GPUSync launches one kernel per operation and synchronizes the stream
// before returning: zero overlap, maximal synchronization cost.
type GPUSync struct {
	r  *mpi.Rank
	st *gpu.Stream
}

// NewGPUSync builds the scheme for one rank.
func NewGPUSync(r *mpi.Rank) mpi.Scheme {
	return &GPUSync{r: r, st: r.Dev.NewStream("gpusync")}
}

// Name implements mpi.Scheme.
func (s *GPUSync) Name() string { return "GPU-Sync" }

func (s *GPUSync) run(p *sim.Proc, job *pack.Job) mpi.Handle {
	c := s.st.Launch(p, job.KernelSpec())
	over := s.r.Dev.Arch.LaunchOverheadNs
	s.r.Charge(trace.Launch, "launch", p.Now()-over, over)
	s.r.Charge(trace.PackKernel, "kernel", c.Start, c.End-c.Start)
	before := p.Now()
	s.st.Synchronize(p)
	s.r.Charge(trace.Sync, "stream-sync", before, p.Now()-before)
	return doneHandle{}
}

// Pack implements mpi.Scheme.
func (s *GPUSync) Pack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// Unpack implements mpi.Scheme.
func (s *GPUSync) Unpack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// DirectIPC implements mpi.Scheme: supported, as a synchronous kernel.
func (s *GPUSync) DirectIPC(p *sim.Proc, job *pack.Job) (mpi.Handle, bool) {
	return s.run(p, job), true
}

// Flush implements mpi.Scheme (nothing is deferred).
func (s *GPUSync) Flush(*sim.Proc) {}

// --- GPU-Async ---

// GPUAsync launches kernels asynchronously and tracks completion with
// events, polled via cudaEventQuery — the multi-stream asynchronous design
// of [23]. The extra event traffic is exactly the "Scheduling"/"Sync" cost
// Fig. 11 charges this scheme.
type GPUAsync struct {
	r       *mpi.Rank
	streams []*gpu.Stream
	next    int
}

// NewGPUAsync builds the scheme with a small stream pool.
func NewGPUAsync(r *mpi.Rank) mpi.Scheme {
	s := &GPUAsync{r: r}
	for i := 0; i < 4; i++ {
		s.streams = append(s.streams, r.Dev.NewStream("gpuasync"))
	}
	return s
}

// Name implements mpi.Scheme.
func (s *GPUAsync) Name() string { return "GPU-Async" }

type asyncHandle struct {
	r  *mpi.Rank
	ev *gpu.Event
}

func (h asyncHandle) Done(p *sim.Proc) bool {
	before := p.Now()
	fired := h.ev.Query(p)
	h.r.Charge(trace.Sync, "event-query", before, p.Now()-before)
	return fired
}

func (h asyncHandle) DoneEv() *sim.Event { return nil }
func (h asyncHandle) Err() error         { return nil }

func (s *GPUAsync) run(p *sim.Proc, job *pack.Job) mpi.Handle {
	st := s.streams[s.next%len(s.streams)]
	s.next++
	c := st.Launch(p, job.KernelSpec())
	over := s.r.Dev.Arch.LaunchOverheadNs
	s.r.Charge(trace.Launch, "launch", p.Now()-over, over)
	s.r.Charge(trace.PackKernel, "kernel", c.Start, c.End-c.Start)
	before := p.Now()
	ev := st.Record(p, job.Op.String())
	s.r.Charge(trace.Scheduling, "event-record", before, p.Now()-before)
	return asyncHandle{r: s.r, ev: ev}
}

// Pack implements mpi.Scheme.
func (s *GPUAsync) Pack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// Unpack implements mpi.Scheme.
func (s *GPUAsync) Unpack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// DirectIPC implements mpi.Scheme.
func (s *GPUAsync) DirectIPC(p *sim.Proc, job *pack.Job) (mpi.Handle, bool) {
	return s.run(p, job), true
}

// Flush implements mpi.Scheme.
func (s *GPUAsync) Flush(*sim.Proc) {}

// --- CPU-GPU-Hybrid ---

// HybridConfig controls when the hybrid scheme prefers the CPU window.
type HybridConfig struct {
	// MaxBytes is the largest payload handled on the CPU.
	MaxBytes int64
	// MinAvgBlock is the minimum average contiguous-block size (dense
	// layouts have fat blocks; GDRCopy over tiny strided blocks is
	// hopeless).
	MinAvgBlock int64
}

// DefaultHybridConfig matches the behaviour in [24]: CPU for small dense
// messages, GPU otherwise.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{MaxBytes: 256 << 10, MinAvgBlock: 32}
}

// CPUGPUHybrid adaptively packs on the CPU through a GDRCopy window (small
// dense layouts: zero driver overhead) or falls back to GPU-Sync. This is
// both the "CPU-GPU-Hybrid" baseline and the optimized MVAPICH2-GDR
// behaviour in Fig. 14.
type CPUGPUHybrid struct {
	r   *mpi.Rank
	gpu *GPUSync
	cpu pack.CPUEngine
	cfg HybridConfig
	// UsedCPU / UsedGPU count routing decisions (for tests).
	UsedCPU, UsedGPU int64
}

// NewCPUGPUHybrid builds the scheme with default thresholds.
func NewCPUGPUHybrid(r *mpi.Rank) mpi.Scheme {
	return NewCPUGPUHybridWith(r, DefaultHybridConfig())
}

// NewCPUGPUHybridWith builds the scheme with explicit thresholds.
func NewCPUGPUHybridWith(r *mpi.Rank, cfg HybridConfig) mpi.Scheme {
	return &CPUGPUHybrid{
		r:   r,
		gpu: &GPUSync{r: r, st: r.Dev.NewStream("hybrid-gpu")},
		cpu: pack.CPUEngine{Dev: r.Dev},
		cfg: cfg,
	}
}

// Name implements mpi.Scheme.
func (s *CPUGPUHybrid) Name() string { return "CPU-GPU-Hybrid" }

func (s *CPUGPUHybrid) wantsCPU(job *pack.Job) bool {
	if job.Bytes > s.cfg.MaxBytes || job.Segments == 0 {
		return false
	}
	return job.Bytes/int64(job.Segments) >= s.cfg.MinAvgBlock
}

func (s *CPUGPUHybrid) run(p *sim.Proc, job *pack.Job) mpi.Handle {
	if s.wantsCPU(job) {
		s.UsedCPU++
		before := p.Now()
		s.cpu.Run(p, job)
		s.r.Charge(trace.PackKernel, "gdrcopy", before, p.Now()-before)
		return doneHandle{}
	}
	s.UsedGPU++
	return s.gpu.run(p, job)
}

// Pack implements mpi.Scheme.
func (s *CPUGPUHybrid) Pack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// Unpack implements mpi.Scheme.
func (s *CPUGPUHybrid) Unpack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// DirectIPC implements mpi.Scheme: the zero-copy scheme of [24].
func (s *CPUGPUHybrid) DirectIPC(p *sim.Proc, job *pack.Job) (mpi.Handle, bool) {
	return s.gpu.run(p, job), true
}

// Flush implements mpi.Scheme.
func (s *CPUGPUHybrid) Flush(*sim.Proc) {}

// --- NaiveMemcpy (SpectrumMPI / OpenMPI) ---

// NaiveMemcpy issues one cudaMemcpyAsync per contiguous block, then a
// stream synchronize — the unoptimized production-library datatype path
// the paper measures as "thousands of times slower" in Fig. 14.
type NaiveMemcpy struct {
	r  *mpi.Rank
	st *gpu.Stream
}

// NewNaiveMemcpy builds the scheme.
func NewNaiveMemcpy(r *mpi.Rank) mpi.Scheme {
	return &NaiveMemcpy{r: r, st: r.Dev.NewStream("naive")}
}

// Name implements mpi.Scheme.
func (s *NaiveMemcpy) Name() string { return "NaiveMemcpy" }

func (s *NaiveMemcpy) run(p *sim.Proc, job *pack.Job) mpi.Handle {
	// One driver call per block; bytes move when the last copy retires.
	n := job.Segments
	if n == 0 {
		n = 1
	}
	var last *gpu.Completion
	for i := 0; i < n; i++ {
		var exec func()
		if i == n-1 {
			exec = job.Execute
		}
		var bytes int64
		if i < len(job.Blocks) {
			bytes = job.Blocks[i].Len
		} else {
			bytes = job.Bytes
		}
		before := p.Now()
		last = s.st.MemcpyAsync(p, gpu.CopyD2D, bytes, exec)
		s.r.Charge(trace.Launch, "memcpy-post", before, p.Now()-before)
	}
	before := p.Now()
	s.st.Synchronize(p)
	s.r.Charge(trace.Sync, "stream-sync", before, p.Now()-before)
	if last != nil {
		s.r.Charge(trace.PackKernel, "memcpy", last.Start, last.End-last.Start)
	}
	return doneHandle{}
}

// Pack implements mpi.Scheme.
func (s *NaiveMemcpy) Pack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// Unpack implements mpi.Scheme.
func (s *NaiveMemcpy) Unpack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// DirectIPC implements mpi.Scheme: production libraries have no zero-copy
// DDT path.
func (s *NaiveMemcpy) DirectIPC(*sim.Proc, *pack.Job) (mpi.Handle, bool) { return nil, false }

// Flush implements mpi.Scheme.
func (s *NaiveMemcpy) Flush(*sim.Proc) {}

// --- Proposed: dynamic kernel fusion ---

// Fusion is the proposed scheme: operations are enqueued into the fusion
// scheduler; fused kernels launch on threshold or at Waitall flush; the
// progress engine polls the request list's response status.
type Fusion struct {
	r     *mpi.Rank
	Sched *fusion.Scheduler
	// Fallbacks counts queue-full unfused launches.
	Fallbacks int64
	fallback  *GPUSync
}

// NewFusion builds the scheme with the tuned default configuration.
func NewFusion(r *mpi.Rank) mpi.Scheme {
	return NewFusionWith(r, fusion.DefaultConfig())
}

// NewFusionWith builds the scheme with an explicit fusion configuration.
func NewFusionWith(r *mpi.Rank, cfg fusion.Config) mpi.Scheme {
	sched := fusion.NewScheduler(r.Dev, r.Dev.NewStream("fusion"), cfg)
	sched.Trace = r.Trace
	sched.TL = r.Timeline()
	return &Fusion{
		r:        r,
		Sched:    sched,
		fallback: &GPUSync{r: r, st: r.Dev.NewStream("fusion-fallback")},
	}
}

// Name implements mpi.Scheme.
func (s *Fusion) Name() string { return "Proposed-Fusion" }

type fusionHandle struct {
	sched *fusion.Scheduler
	uid   int64
	// err caches a terminal scheduler failure (degraded launch also
	// failed); the progress engine reads it via Err.
	err error
}

func (h *fusionHandle) Done(p *sim.Proc) bool {
	if h.err != nil {
		return false
	}
	done, err := h.sched.Done(p, h.uid)
	if err != nil {
		h.err = err
		return false
	}
	return done
}
func (h *fusionHandle) DoneEv() *sim.Event { return h.sched.DoneEvent(h.uid) }
func (h *fusionHandle) Err() error         { return h.err }

func (s *Fusion) run(p *sim.Proc, job *pack.Job) mpi.Handle {
	uid := s.Sched.Enqueue(p, job)
	if uid == fusion.ErrQueueFull {
		// Negative UID: the progress engine takes the fallback path
		// (paper Section IV-A2).
		s.Fallbacks++
		return s.fallback.run(p, job)
	}
	return &fusionHandle{sched: s.Sched, uid: uid}
}

// Pack implements mpi.Scheme.
func (s *Fusion) Pack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// Unpack implements mpi.Scheme.
func (s *Fusion) Unpack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job) }

// DirectIPC implements mpi.Scheme: IPC requests fuse with pack/unpack
// requests in the same kernel (paper Fig. 6).
func (s *Fusion) DirectIPC(p *sim.Proc, job *pack.Job) (mpi.Handle, bool) {
	return s.run(p, job), true
}

// Flush implements mpi.Scheme: Waitall reached, launch whatever is pending.
func (s *Fusion) Flush(p *sim.Proc) { s.Sched.Flush(p) }

// OpenBatch opens a collective-scope fusion window (see
// fusion.Scheduler.OpenWindow); the collective engine discovers this hook
// by interface assertion, so only fusion-capable schemes batch.
func (s *Fusion) OpenBatch() { s.Sched.OpenWindow() }

// CloseBatch closes the window, launching the accumulated requests as one
// fused kernel.
func (s *Fusion) CloseBatch(p *sim.Proc) { s.Sched.CloseWindow(p) }

// SyncStream blocks until the fused-kernel stream drains (ablation use
// only; the paper's design never does this).
func (s *Fusion) SyncStream(p *sim.Proc) { s.Sched.SyncStream(p) }

// PendingFused reports requests still parked in the fusion scheduler —
// the leak observable the error-path teardown invariant asserts on
// (mpi.World.PendingFusedJobs sums it across live ranks).
func (s *Fusion) PendingFused() int { return s.Sched.PendingCount() }

// --- factories ---

// Factory returns a SchemeFactory for a named scheme. Names follow the
// paper's legends: "GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid",
// "NaiveMemcpy", "Proposed", "Proposed-Tuned".
func Factory(name string) mpi.SchemeFactory {
	switch name {
	case "GPU-Sync":
		return NewGPUSync
	case "GPU-Async":
		return NewGPUAsync
	case "CPU-GPU-Hybrid", "MVAPICH2-GDR":
		return NewCPUGPUHybrid
	case "NaiveMemcpy", "SpectrumMPI", "OpenMPI":
		return NewNaiveMemcpy
	case "Proposed":
		return func(r *mpi.Rank) mpi.Scheme {
			cfg := fusion.DefaultConfig()
			cfg.ThresholdBytes = 256 << 10 // untuned default
			return NewFusionWith(r, cfg)
		}
	case "Proposed-Tuned":
		return NewFusion
	case "Proposed-Auto":
		return NewFusionAuto
	case "StagedHost":
		return NewStagedHost
	default:
		panic("schemes: unknown scheme " + name)
	}
}

// NewFusionAuto builds the fusion scheme with the model-based threshold
// predictor seeding an online auto-tuner — the paper's future-work design
// (Section VII).
func NewFusionAuto(r *mpi.Rank) mpi.Scheme {
	cfg := fusion.DefaultConfig()
	// Seed the prediction with a representative sparse shape; the tuner
	// adapts from there as real traffic flows.
	seed := fusion.PredictThreshold(r.Dev.Arch, fusion.ModelInput{
		AvgRequestBytes: 32 << 10,
		AvgSegments:     2048,
		NetBWBytesPerNs: 25,
	})
	cfg.ThresholdBytes = seed
	s := NewFusionWith(r, cfg).(*Fusion)
	tuner := fusion.NewAutoTuner(seed)
	tuner.Window = 32
	s.Sched.EnableAutoTune(tuner)
	return s
}

// Names lists the factory-known scheme names in display order.
func Names() []string {
	return []string{"GPU-Sync", "GPU-Async", "CPU-GPU-Hybrid", "NaiveMemcpy", "StagedHost", "Proposed", "Proposed-Tuned", "Proposed-Auto"}
}

// --- StagedHost (no GPUDirect) ---

// StagedHost is the classic pre-GPUDirect path: pack on the GPU, stage the
// packed buffer to host memory over the CPU-GPU link, and hand the NIC
// host memory (reverse on the receive side). Two extra link crossings and
// a synchronization per operation — the baseline GPUDirect-era work
// eliminated, kept for systems without peer DMA.
type StagedHost struct {
	r  *mpi.Rank
	st *gpu.Stream
}

// NewStagedHost builds the scheme.
func NewStagedHost(r *mpi.Rank) mpi.Scheme {
	return &StagedHost{r: r, st: r.Dev.NewStream("staged")}
}

// Name implements mpi.Scheme.
func (s *StagedHost) Name() string { return "StagedHost" }

func (s *StagedHost) run(p *sim.Proc, job *pack.Job, toHost bool) mpi.Handle {
	kind := gpu.CopyD2H
	if !toHost {
		kind = gpu.CopyH2D
	}
	over := s.r.Dev.Arch.LaunchOverheadNs
	if toHost {
		// Pack on device, then stage the packed bytes down to host.
		c := s.st.Launch(p, job.KernelSpec())
		s.r.Charge(trace.Launch, "launch", p.Now()-over, over)
		s.r.Charge(trace.PackKernel, "kernel", c.Start, c.End-c.Start)
		before := p.Now()
		s.st.MemcpyAsync(p, kind, job.Bytes, nil)
		s.r.Charge(trace.Launch, "stage-copy", before, p.Now()-before)
	} else {
		// Stage up to device, then unpack.
		before := p.Now()
		s.st.MemcpyAsync(p, kind, job.Bytes, nil)
		s.r.Charge(trace.Launch, "stage-copy", before, p.Now()-before)
		c := s.st.Launch(p, job.KernelSpec())
		s.r.Charge(trace.Launch, "launch", p.Now()-over, over)
		s.r.Charge(trace.PackKernel, "kernel", c.Start, c.End-c.Start)
	}
	before := p.Now()
	s.st.Synchronize(p)
	s.r.Charge(trace.Sync, "stream-sync", before, p.Now()-before)
	return doneHandle{}
}

// Pack implements mpi.Scheme.
func (s *StagedHost) Pack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job, true) }

// Unpack implements mpi.Scheme.
func (s *StagedHost) Unpack(p *sim.Proc, job *pack.Job) mpi.Handle { return s.run(p, job, false) }

// DirectIPC implements mpi.Scheme: without GPUDirect there is no peer path.
func (s *StagedHost) DirectIPC(*sim.Proc, *pack.Job) (mpi.Handle, bool) { return nil, false }

// Flush implements mpi.Scheme.
func (s *StagedHost) Flush(*sim.Proc) {}
