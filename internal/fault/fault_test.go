package fault

import (
	"strings"
	"testing"
)

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []Plan{
		{Link: LinkPlan{DropProb: -0.1}},
		{Link: LinkPlan{CorruptProb: 1.5}},
		{NIC: NICPlan{PostErrorProb: 2}},
		{GPU: GPUPlan{LaunchFailProb: -1}},
		{Link: LinkPlan{DelayMaxNs: -1}},
		{Link: LinkPlan{DegradeFactor: 0.5}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: plan %+v validated", i, p)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	if nilPlan.Enabled() {
		t.Error("nil plan enabled")
	}
	if (&Plan{Seed: 7}).Enabled() {
		t.Error("all-zero plan enabled")
	}
}

func TestNewInjectorNilAndInvalid(t *testing.T) {
	inj, err := NewInjector(nil, nil)
	if inj != nil || err != nil {
		t.Fatalf("nil plan: (%v, %v)", inj, err)
	}
	if _, err := NewInjector(&Plan{Link: LinkPlan{DropProb: 9}}, nil); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestNilSafety(t *testing.T) {
	// Every call a fault-free lower layer can make on nil handles must be
	// a no-op: this is the "no plan, no perturbation" contract.
	var inj *Injector
	var site *Site
	if inj.Site("x") != nil || inj.Events() != nil || inj.Total() != 0 {
		t.Fatal("nil injector not inert")
	}
	if inj.Counts() != "(no faults)" || inj.Count(Drop) != 0 || inj.SortedSiteNames() != nil {
		t.Fatal("nil injector counters not inert")
	}
	inj.SetHook(func(Event) {})
	if site.Roll(1) || site.Int63n(100) != 0 || site.Name() != "" || site.Plan() != nil {
		t.Fatal("nil site not inert")
	}
	site.Record(Drop, "x")
	site.Recordf(Drop, "x%d", 1)
}

func TestPerSiteStreamsAreIndependentAndDeterministic(t *testing.T) {
	plan := &Plan{Seed: 42, Link: LinkPlan{DropProb: 0.5}}
	draw := func(consumeOther int) []bool {
		var now int64
		inj, err := NewInjector(plan, func() int64 { return now })
		if err != nil {
			t.Fatal(err)
		}
		other := inj.Site("link:other")
		for i := 0; i < consumeOther; i++ {
			other.Roll(0.5)
		}
		s := inj.Site("link:a")
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Roll(0.5)
		}
		return out
	}
	base := draw(0)
	interleaved := draw(17)
	for i := range base {
		if base[i] != interleaved[i] {
			t.Fatalf("draw %d differs when another site consumed entropy: streams not independent", i)
		}
	}
}

func TestDegenerateProbabilitiesConsumeNoDraws(t *testing.T) {
	inj, _ := NewInjector(&Plan{Seed: 5, Link: LinkPlan{DropProb: 0.5}}, func() int64 { return 0 })
	a := inj.Site("a")
	b := inj.Site("b") // same draws expected modulo seed; compare a to itself pattern
	_ = b
	var withNoise, plain []bool
	for i := 0; i < 32; i++ {
		a.Roll(0)   // disabled class: no draw
		a.Roll(1.0) // certain class: no draw
		withNoise = append(withNoise, a.Roll(0.5))
	}
	a2 := &Site{inj: inj, name: "a", state: inj.plan.Seed ^ fnv64a("a")}
	a2.next()
	for i := 0; i < 32; i++ {
		plain = append(plain, a2.Roll(0.5))
	}
	for i := range plain {
		if plain[i] != withNoise[i] {
			t.Fatalf("draw %d perturbed by degenerate-probability rolls", i)
		}
	}
}

func TestEventsRecordedWithClockAndHook(t *testing.T) {
	now := int64(100)
	inj, _ := NewInjector(&Plan{Seed: 1, Link: LinkPlan{DropProb: 1}}, func() int64 { return now })
	var hooked []Event
	inj.SetHook(func(e Event) { hooked = append(hooked, e) })
	s := inj.Site("link:x")
	s.Record(Drop, "msg 3")
	now = 250
	s.Recordf(Retransmit, "attempt %d", 2)
	evs := inj.Events()
	if len(evs) != 2 || len(hooked) != 2 {
		t.Fatalf("events = %d, hooked = %d", len(evs), len(hooked))
	}
	if evs[0].At != 100 || evs[1].At != 250 || evs[1].Detail != "attempt 2" {
		t.Fatalf("events: %v", evs)
	}
	if inj.Count(Drop) != 1 || inj.Count(Retransmit) != 1 || inj.Total() != 2 {
		t.Fatalf("counts: %s", inj.Counts())
	}
	if got := inj.Counts(); !strings.Contains(got, "drop=1") || !strings.Contains(got, "retransmit=1") {
		t.Fatalf("Counts() = %q", got)
	}
	if evs[0].String() == "" || Kind(200).String() != "Kind(200)" {
		t.Fatal("string forms broken")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Seed != 9 || !p.Enabled() {
			t.Fatalf("%s: seed=%d enabled=%v", name, p.Seed, p.Enabled())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := Preset("bogus", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("drop-heavy,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Link.DropProb != 0.12 {
		t.Fatalf("parsed %+v", p)
	}
	p, err = ParsePlan("drop=0.05, corrupt=0.02, seed=42, delaymax=5000, degradefactor=4")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Link.DropProb != 0.05 || p.Link.CorruptProb != 0.02 ||
		p.Link.DelayMaxNs != 5000 || p.Link.DegradeFactor != 4 {
		t.Fatalf("parsed %+v", p)
	}
	for _, bad := range []string{"nope", "drop=x", "seed=-1", "zzz=1", "drop=2"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestInt63nRange(t *testing.T) {
	inj, _ := NewInjector(&Plan{Seed: 3, Link: LinkPlan{DelayProb: 1}}, func() int64 { return 0 })
	s := inj.Site("d")
	for i := 0; i < 1000; i++ {
		if v := s.Int63n(17); v < 0 || v >= 17 {
			t.Fatalf("Int63n(17) = %d", v)
		}
	}
	if s.Int63n(0) != 0 || s.Int63n(-5) != 0 {
		t.Fatal("degenerate Int63n")
	}
}
