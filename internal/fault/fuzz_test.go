package fault

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseFaultPlan drives the CLI plan-spec grammar with arbitrary
// input. Whatever the spec, ParsePlan must never panic, and on success the
// returned plan must uphold the parser's contract:
//
//   - it passes Validate (the parser never hands out an invalid plan),
//   - parsing is deterministic (same spec twice ⇒ deeply equal plans),
//   - a successfully parsed "crash=" key is reflected in HasCrashes, so a
//     crash request can never be silently dropped,
//   - a successfully parsed one-sided key (rmadrop, rmacorrupt, rmadelay,
//     siglost) lands in the plan's RMA section — mixed crash + rma plans
//     drive the ULFM chaos matrix, so neither half may vanish.
func FuzzParseFaultPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"flaky-ib",
		"drop-heavy,seed=7",
		"mixed,seed=42",
		"degraded-link",
		"kernel-failure,seed=9",
		"rank-crash",
		"rank-crash,seed=3",
		"drop=0.05,corrupt=0.02,seed=42",
		"crash=2@20000,seed=3",
		"crash=0@0,crash=5@90000",
		"delay=0.3,delaymax=50000",
		"degrade=0.25,degradefactor=4,degradens=200000",
		"flap=0.01,flapdown=1000000",
		"nic=0.001,launchfail=0.002",
		"rma-flaky",
		"rma-flaky,seed=2",
		"rma-flaky,crash=3@25000",
		"crash=1@20000,rmadrop=0.02,siglost=0.01,seed=5",
		"crash=2@18000,rmacorrupt=0.03,rmadelay=0.1,rmadelaymax=40000",
		"rank-crash,siglost=0.05,seed=4",
		"crash=1@10000,rmadrop=0.5,rmadrop=0", // later key overrides
		"rmadrop=1.5",                         // out-of-range probability must be rejected
		"siglost=-0.1",                        // negative probability must be rejected
		"rmadelaymax=-5",                      // negative duration must be rejected
		"rmadelay=0.1,rmadelaymax=notanumber",
		"drop=1.5",      // out-of-range probability must be rejected
		"crash=-1@5000", // negative rank must be rejected
		"crash=2@-1",    // negative time must be rejected
		"seed=notanumber",
		"crash=2",
		"bogus-preset",
		"=,=,=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			if p != nil {
				t.Fatalf("ParsePlan(%q) returned both a plan and error %v", spec, err)
			}
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParsePlan(%q) accepted a plan Validate rejects: %v", spec, verr)
		}
		p2, err2 := ParsePlan(spec)
		if err2 != nil {
			t.Fatalf("ParsePlan(%q) nondeterministic: second parse failed: %v", spec, err2)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("ParsePlan(%q) nondeterministic:\n%+v\n%+v", spec, p, p2)
		}
		for _, part := range strings.Split(spec, ",") {
			if strings.HasPrefix(strings.TrimSpace(part), "crash=") && !p.HasCrashes() {
				t.Fatalf("ParsePlan(%q) accepted a crash key but HasCrashes is false", spec)
			}
		}
		// Mixed crash + rma plans: the last accepted occurrence of each
		// one-sided key must be reflected in the RMA plan section.
		rmaKeys := map[string]func(*Plan) float64{
			"rmadrop":    func(p *Plan) float64 { return p.RMA.DropProb },
			"rmacorrupt": func(p *Plan) float64 { return p.RMA.CorruptProb },
			"rmadelay":   func(p *Plan) float64 { return p.RMA.DelayProb },
			"siglost":    func(p *Plan) float64 { return p.RMA.SignalLossProb },
		}
		last := map[string]string{}
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if !strings.Contains(part, "=") {
				// A later preset token replaces the whole plan (parse
				// succeeded, so it was valid) — earlier keys are gone.
				last = map[string]string{}
				continue
			}
			kv := strings.SplitN(part, "=", 2)
			key := strings.TrimSpace(kv[0])
			if _, ok := rmaKeys[key]; ok {
				last[key] = strings.TrimSpace(kv[1])
			}
		}
		for k, raw := range last {
			v, perr := strconv.ParseFloat(raw, 64)
			if perr != nil || v <= 0 {
				continue // the parser rejected or zeroed it; Validate covered range errors above
			}
			if got := rmaKeys[k](p); got != v {
				t.Fatalf("ParsePlan(%q) accepted %s=%s but the RMA plan holds %g", spec, k, raw, got)
			}
		}
	})
}

// The crash-plan Validate rejections the fuzzer's seed corpus pins down,
// asserted directly so a regression names the exact rule that broke (the
// probability-range rules are covered by TestValidateRejectsBadPlans).
func TestValidateRejectsBadCrashPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"negative crash rank", Plan{Proc: ProcPlan{Crashes: []Crash{{Rank: -1, AtNs: 10}}}}},
		{"negative crash time", Plan{Proc: ProcPlan{Crashes: []Crash{{Rank: 1, AtNs: -10}}}}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid plan", tc.name)
		}
	}
}
