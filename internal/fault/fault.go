// Package fault is a deterministic, seeded fault injector for the simulated
// cluster. A Plan declares per-layer fault probabilities (link drops,
// duplication, corruption, extra delay, degradation windows, flaps; NIC verb
// post errors; transient fused-launch failures); an Injector turns a Plan
// into per-site pseudo-random streams and a global fault-event log.
//
// Determinism contract: every draw site (one link direction, the NIC verb
// path, one GPU's launch path) owns an independent splitmix64 stream seeded
// from (Plan.Seed, site name). Draws at one site therefore depend only on
// the sequence of prior draws at that same site, never on cross-site
// interleaving, so a run with a given (seed, plan) injects byte-identical
// faults every time — the property the chaos conformance suite asserts.
//
// A nil *Plan (or a plan whose probabilities are all zero) injects nothing;
// the lower layers keep their fault-free fast paths when no Site is
// installed, preserving the byte-identical golden traces of fault-free runs.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind labels one fault or recovery event.
type Kind uint8

const (
	// Drop: a fabric message was discarded in flight.
	Drop Kind = iota
	// Duplicate: a fabric message was delivered twice.
	Duplicate
	// Corrupt: a payload was delivered with flipped bytes.
	Corrupt
	// Delay: a message was held back beyond the link's natural latency.
	Delay
	// Degrade: a link entered a reduced-bandwidth window.
	Degrade
	// Flap: a link went down transiently; traffic queues until it returns.
	Flap
	// NICError: an ibv-style verb post failed transiently.
	NICError
	// LaunchFail: a fused kernel launch failed transiently.
	LaunchFail
	// Timeout: a reliability-layer retransmission timer fired.
	Timeout
	// Retransmit: a message or RDMA transfer was re-issued.
	Retransmit
	// Fallback: the fusion scheduler degraded a batch to unfused launches.
	Fallback
	// GiveUp: bounded retries were exhausted and a typed error surfaced.
	GiveUp
	// RankCrash: a simulated process died at a planned virtual time.
	RankCrash
	// Detect: the heartbeat failure detector declared a silent rank dead.
	Detect
	// Revoke: a communicator was revoked (ULFM MPI_Comm_revoke analogue).
	Revoke
	// Shrink: survivors built a dense re-ranked communicator.
	Shrink
	// Agree: survivors completed a fault-tolerant agreement.
	Agree
	// Reap: an in-flight one-sided op involving a dead rank was completed
	// early with a typed failure instead of being left pending.
	Reap
	// Reseat: the one-sided fabric re-rendezvoused onto a survivor
	// communicator (fresh epoch, rebuilt symmetric heap).
	Reseat

	numKinds
)

var kindNames = [numKinds]string{
	"drop", "dup", "corrupt", "delay", "degrade", "flap",
	"nic-error", "launch-fail", "timeout", "retransmit", "fallback", "give-up",
	"rank-crash", "detect", "revoke", "shrink", "agree", "reap", "reseat",
}

func (k Kind) String() string {
	if k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// NumKinds reports how many event kinds exist (for tally arrays).
func NumKinds() int { return int(numKinds) }

// LinkPlan holds per-transfer fault probabilities for every fabric link.
// All probabilities are independent per message and clamped to [0,1] by
// Validate. The zero value injects nothing.
type LinkPlan struct {
	DropProb    float64 // message vanishes in flight
	DupProb     float64 // message delivered twice
	CorruptProb float64 // payload delivered with a flipped byte
	DelayProb   float64 // extra delivery delay, uniform in [1, DelayMaxNs]
	DegradeProb float64 // link bandwidth divided by DegradeFactor for DegradeNs
	FlapProb    float64 // link down for FlapDownNs; traffic queues behind it

	DelayMaxNs    int64   // default 20µs
	DegradeNs     int64   // default 50µs
	DegradeFactor float64 // default 8
	FlapDownNs    int64   // default 100µs
}

// NICPlan holds NIC verb-layer fault probabilities.
type NICPlan struct {
	PostErrorProb float64 // ibv_post_send-style transient failure
}

// GPUPlan holds GPU-side fault probabilities.
type GPUPlan struct {
	LaunchFailProb float64 // transient fused-launch failure
}

// RMAPlan holds one-sided (put/get) fault probabilities, rolled at the
// issuing endpoint's site ("rma:rankN"). They model HCA-side loss on the
// one-sided deposit path: a dropped put vanishes before the wire, a
// corrupted one is rejected by the target's CRC without touching the
// window, a delayed one is held back at the target, and a lost signal
// places the payload but drops the completion flag — each recovered by
// the endpoint's retransmission timer. The zero value injects nothing.
type RMAPlan struct {
	DropProb       float64 // one-sided deposit vanishes in flight
	CorruptProb    float64 // deposit rejected by target CRC (never placed)
	DelayProb      float64 // extra placement delay, uniform in [1, DelayMaxNs]
	SignalLossProb float64 // payload placed but the signal update is lost

	DelayMaxNs int64 // default 20µs
}

// Crash schedules the death of one simulated rank at a virtual time. Unlike
// the probabilistic classes, crashes are planned events: the same plan kills
// the same rank at the same instant in every run.
type Crash struct {
	Rank int   // world rank to kill
	AtNs int64 // virtual time of death
}

// ProcPlan holds process-level (whole-rank) fault events.
type ProcPlan struct {
	Crashes []Crash
}

// Plan is a complete fault-injection configuration. The zero value (or a
// nil pointer) disables injection entirely.
type Plan struct {
	// Seed keys every per-site random stream. Two runs with the same
	// (Seed, Plan) inject identical faults.
	Seed uint64
	Link LinkPlan
	NIC  NICPlan
	GPU  GPUPlan
	RMA  RMAPlan
	Proc ProcPlan
}

// probs lists every probability field for validation and Enabled.
func (p *Plan) probs() []float64 {
	return []float64{
		p.Link.DropProb, p.Link.DupProb, p.Link.CorruptProb,
		p.Link.DelayProb, p.Link.DegradeProb, p.Link.FlapProb,
		p.NIC.PostErrorProb, p.GPU.LaunchFailProb,
		p.RMA.DropProb, p.RMA.CorruptProb, p.RMA.DelayProb, p.RMA.SignalLossProb,
	}
}

// Validate reports an error for out-of-range probabilities or negative
// durations/factors.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, v := range p.probs() {
		if v < 0 || v > 1 {
			return fmt.Errorf("fault: probability %g outside [0,1]", v)
		}
	}
	if p.Link.DelayMaxNs < 0 || p.Link.DegradeNs < 0 || p.Link.FlapDownNs < 0 || p.RMA.DelayMaxNs < 0 {
		return fmt.Errorf("fault: negative fault duration")
	}
	if p.Link.DegradeFactor < 0 || (p.Link.DegradeFactor > 0 && p.Link.DegradeFactor < 1) {
		return fmt.Errorf("fault: DegradeFactor must be >= 1 (got %g)", p.Link.DegradeFactor)
	}
	for _, c := range p.Proc.Crashes {
		if c.Rank < 0 {
			return fmt.Errorf("fault: crash rank %d is negative", c.Rank)
		}
		if c.AtNs < 0 {
			return fmt.Errorf("fault: crash time %dns is negative", c.AtNs)
		}
	}
	return nil
}

// Enabled reports whether the plan can inject any fault at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	for _, v := range p.probs() {
		if v > 0 {
			return true
		}
	}
	return len(p.Proc.Crashes) > 0
}

// HasCrashes reports whether the plan kills any rank. Crash plans are not
// delivery-recoverable: survivors see typed failures instead of byte-exact
// delivery, so recoverable-chaos sweeps must treat them separately.
func (p *Plan) HasCrashes() bool {
	return p != nil && len(p.Proc.Crashes) > 0
}

// normalized returns a copy with duration/factor defaults filled in.
func (p *Plan) normalized() *Plan {
	c := *p
	if c.Link.DelayMaxNs == 0 {
		c.Link.DelayMaxNs = 20_000
	}
	if c.Link.DegradeNs == 0 {
		c.Link.DegradeNs = 50_000
	}
	if c.Link.DegradeFactor == 0 {
		c.Link.DegradeFactor = 8
	}
	if c.Link.FlapDownNs == 0 {
		c.Link.FlapDownNs = 100_000
	}
	if c.RMA.DelayMaxNs == 0 {
		c.RMA.DelayMaxNs = 20_000
	}
	return &c
}

// Event is one injected fault or recovery action, in virtual time.
type Event struct {
	At     int64  // virtual ns
	Site   string // draw site, e.g. "link:IB[0->1]", "nic", "gpu:rank2"
	Kind   Kind
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%dns %s %s %s", e.At, e.Site, e.Kind, e.Detail)
}

// Injector owns the per-site streams and the fault log for one simulated
// world. Not safe for concurrent use; the simulation is single-threaded.
type Injector struct {
	plan   *Plan
	clock  func() int64
	sites  map[string]*Site
	events []Event
	counts [numKinds]int64
	hook   func(Event)
}

// NewInjector validates plan and builds an injector whose event timestamps
// come from clock (normally env.Now). A nil plan yields a nil injector.
func NewInjector(plan *Plan, clock func() int64) (*Injector, error) {
	if plan == nil {
		return nil, nil
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan.normalized(), clock: clock, sites: make(map[string]*Site)}, nil
}

// Plan returns the normalized plan (defaults filled in).
func (i *Injector) Plan() *Plan { return i.plan }

// Site returns the named draw site, creating it on first use. The site's
// stream is keyed by (Plan.Seed, name) only.
func (i *Injector) Site(name string) *Site {
	if i == nil {
		return nil
	}
	if s, ok := i.sites[name]; ok {
		return s
	}
	s := &Site{inj: i, name: name, state: i.plan.Seed ^ fnv64a(name)}
	s.next() // decorrelate similar seeds
	i.sites[name] = s
	return s
}

// SetHook installs a callback invoked on every recorded event (for
// mirroring into the timeline). Nil removes it.
func (i *Injector) SetHook(fn func(Event)) {
	if i != nil {
		i.hook = fn
	}
}

// Events returns the fault log in injection order.
func (i *Injector) Events() []Event {
	if i == nil {
		return nil
	}
	return i.events
}

// Count reports how many events of kind k were recorded.
func (i *Injector) Count(k Kind) int64 {
	if i == nil || k >= numKinds {
		return 0
	}
	return i.counts[k]
}

// Total reports the total recorded event count.
func (i *Injector) Total() int64 {
	if i == nil {
		return 0
	}
	return int64(len(i.events))
}

// Counts renders the non-zero per-kind tallies, e.g. "drop=3 retransmit=3".
func (i *Injector) Counts() string {
	if i == nil {
		return "(no faults)"
	}
	var parts []string
	for k, n := range i.counts {
		if n != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", Kind(k), n))
		}
	}
	if len(parts) == 0 {
		return "(no faults)"
	}
	return strings.Join(parts, " ")
}

func (i *Injector) record(e Event) {
	i.events = append(i.events, e)
	i.counts[e.Kind]++
	if i.hook != nil {
		i.hook(e)
	}
}

// Site is one independent draw stream plus a recording handle.
type Site struct {
	inj   *Injector
	name  string
	state uint64
}

// Name returns the site's name. Nil-safe.
func (s *Site) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Plan returns the owning injector's normalized plan. Nil-safe (nil plan).
func (s *Site) Plan() *Plan {
	if s == nil {
		return nil
	}
	return s.inj.plan
}

// next advances the splitmix64 stream.
func (s *Site) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Roll draws once and reports whether an event with probability prob fires.
// Degenerate probabilities (<=0, >=1) consume no draw, so a plan that
// leaves a fault class disabled does not perturb the stream consumed by the
// classes it enables.
func (s *Site) Roll(prob float64) bool {
	if s == nil || prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return float64(s.next()>>11)/(1<<53) < prob
}

// Int63n draws a uniform integer in [0, n). n <= 0 returns 0 without a draw.
func (s *Site) Int63n(n int64) int64 {
	if s == nil || n <= 0 {
		return 0
	}
	return int64(s.next() % uint64(n))
}

// Record logs one event at the current virtual time.
func (s *Site) Record(k Kind, detail string) {
	if s == nil {
		return
	}
	s.inj.record(Event{At: s.inj.clock(), Site: s.name, Kind: k, Detail: detail})
}

// Recordf logs one event with a formatted detail string.
func (s *Site) Recordf(k Kind, format string, args ...any) {
	if s == nil {
		return
	}
	s.Record(k, fmt.Sprintf(format, args...))
}

// fnv64a hashes a site name (FNV-1a).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// PresetNames lists the named fault plans of the chaos test table.
func PresetNames() []string {
	return []string{"drop-heavy", "corrupt-heavy", "flappy-link", "kernel-failure", "mixed", "flaky-ib", "degraded-link", "rank-crash", "rma-flaky"}
}

// Preset builds one of the named chaos plans with the given seed.
func Preset(name string, seed uint64) (*Plan, error) {
	p := &Plan{Seed: seed}
	switch name {
	case "drop-heavy":
		p.Link.DropProb = 0.12
		p.Link.DupProb = 0.02
	case "corrupt-heavy":
		p.Link.CorruptProb = 0.12
		p.Link.DropProb = 0.02
	case "flappy-link":
		p.Link.FlapProb = 0.05
		p.Link.DegradeProb = 0.10
		p.Link.DelayProb = 0.20
	case "kernel-failure":
		p.GPU.LaunchFailProb = 0.35
	case "mixed":
		p.Link.DropProb = 0.04
		p.Link.DupProb = 0.02
		p.Link.CorruptProb = 0.04
		p.Link.DelayProb = 0.08
		p.Link.DegradeProb = 0.03
		p.Link.FlapProb = 0.01
		p.NIC.PostErrorProb = 0.05
		p.GPU.LaunchFailProb = 0.10
	case "flaky-ib":
		// A lossy but recoverable inter-node fabric: occasional drops,
		// duplicate deliveries, and jittered delays — the collective
		// chaos-conformance profile.
		p.Link.DropProb = 0.05
		p.Link.DupProb = 0.03
		p.Link.DelayProb = 0.15
	case "degraded-link":
		// Bandwidth brownouts dominate: long stretches of degraded link
		// speed with rare flaps, no loss — stresses latency modeling and
		// retransmit timers rather than recovery.
		p.Link.DegradeProb = 0.25
		p.Link.DelayProb = 0.10
		p.Link.FlapProb = 0.01
	case "rma-flaky":
		// A lossy one-sided fabric: puts vanish, arrive late, get CRC-
		// rejected, or land without their signal — the RMA chaos-
		// conformance profile. All recovery runs through the endpoint's
		// retransmission timers, never the two-sided ack path.
		p.RMA.DropProb = 0.06
		p.RMA.CorruptProb = 0.03
		p.RMA.DelayProb = 0.15
		p.RMA.SignalLossProb = 0.05
	case "rank-crash":
		// Kill one mid-world rank at a deterministic virtual time. The
		// victim and instant vary with the seed so a seed sweep exercises
		// different ranks dying at different points of the schedule.
		p.Proc.Crashes = []Crash{{Rank: 1 + int(seed%3), AtNs: 18_000 + int64(seed%4)*9_000}}
	default:
		return nil, fmt.Errorf("fault: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
	}
	return p, nil
}

// ParsePlan parses a CLI fault-plan spec: either a preset name or a
// comma-separated key=value list, with the two freely mixed — later keys
// override. Keys: seed, drop, dup, corrupt, delay, degrade, flap, nic,
// launchfail, rmadrop, rmacorrupt, rmadelay, siglost (probabilities),
// delaymax, degradens, flapdown, rmadelaymax (ns), degradefactor,
// crash=RANK@TIMENS (repeatable; each adds one planned rank death).
//
//	"drop-heavy"
//	"drop-heavy,seed=7"
//	"drop=0.05,corrupt=0.02,seed=42"
//	"crash=2@20000,seed=3"
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{Seed: 1}
	// Seed-dependent presets (rank-crash places its victim by seed) must see
	// the final seed regardless of key order, so resolve seed= up front.
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			p.Seed = n
		}
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "=") {
			pr, err := Preset(part, p.Seed)
			if err != nil {
				return nil, err
			}
			seed := p.Seed
			*p = *pr
			p.Seed = seed
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
			p.Seed = n
		case "crash":
			at := strings.SplitN(val, "@", 2)
			if len(at) != 2 {
				return nil, fmt.Errorf("fault: bad crash spec %q (want RANK@TIMENS)", val)
			}
			rank, err := strconv.Atoi(strings.TrimSpace(at[0]))
			if err != nil {
				return nil, fmt.Errorf("fault: bad crash rank %q: %v", at[0], err)
			}
			t, err := strconv.ParseInt(strings.TrimSpace(at[1]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad crash time %q: %v", at[1], err)
			}
			p.Proc.Crashes = append(p.Proc.Crashes, Crash{Rank: rank, AtNs: t})
		case "delaymax", "degradens", "flapdown", "rmadelaymax":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad %s %q: %v", key, val, err)
			}
			switch key {
			case "delaymax":
				p.Link.DelayMaxNs = n
			case "degradens":
				p.Link.DegradeNs = n
			case "flapdown":
				p.Link.FlapDownNs = n
			case "rmadelaymax":
				p.RMA.DelayMaxNs = n
			}
		default:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad value %q for %s: %v", val, key, err)
			}
			switch key {
			case "drop":
				p.Link.DropProb = f
			case "dup":
				p.Link.DupProb = f
			case "corrupt":
				p.Link.CorruptProb = f
			case "delay":
				p.Link.DelayProb = f
			case "degrade":
				p.Link.DegradeProb = f
			case "flap":
				p.Link.FlapProb = f
			case "degradefactor":
				p.Link.DegradeFactor = f
			case "nic":
				p.NIC.PostErrorProb = f
			case "launchfail":
				p.GPU.LaunchFailProb = f
			case "rmadrop":
				p.RMA.DropProb = f
			case "rmacorrupt":
				p.RMA.CorruptProb = f
			case "rmadelay":
				p.RMA.DelayProb = f
			case "siglost":
				p.RMA.SignalLossProb = f
			default:
				return nil, fmt.Errorf("fault: unknown plan key %q", key)
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SortedSiteNames returns the injector's site names in sorted order (for
// deterministic diagnostics).
func (i *Injector) SortedSiteNames() []string {
	if i == nil {
		return nil
	}
	names := make([]string, 0, len(i.sites))
	for n := range i.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
