// Package coll is the topology-aware collective-communication subsystem,
// layered on the point-to-point/rendezvous engine of internal/mpi. It
// provides DDT-aware Alltoallw, Allgatherv, Gatherv/Scatterv, and
// NeighborAlltoallw, each with pluggable algorithms (linear post-all,
// pairwise exchange, ring, Bruck-style dissemination for small messages,
// recursive doubling) plus hierarchical two-level variants that aggregate
// on a node leader over the NVLink-class intra-node fabric before crossing
// the inter-node IB link.
//
// The headline mechanism is collective-scope kernel fusion: a schedule
// pass walks every leg of the collective and brackets each communication
// phase with a fusion window (fusion.Scheduler.OpenWindow/CloseWindow via
// the scheme's OpenBatch/CloseBatch hooks), so every outgoing peer's pack
// blocks launch as ONE fused kernel per phase, and every incoming peer's
// unpack/DirectIPC blocks launch as ONE fused kernel per phase — the
// paper's Algorithm 3 batching window extended from per-message to
// per-collective granularity. Schemes without the batch hooks (GPU-Sync,
// NaiveMemcpy, ...) run the same schedules with per-message launches.
//
// Every collective is SPMD: all ranks must call the same collectives in
// the same order with signature-matching arguments. Displacements are in
// bytes. Tags are drawn from the reserved range above mpi.CollTagBase and
// sequence-stamped per call, so back-to-back collectives never cross-match.
package coll

import (
	"errors"
	"fmt"

	"repro/internal/datatype"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/rma"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// Algorithm selects how a collective is scheduled.
type Algorithm int

const (
	// Auto picks per call from message size and cluster topology.
	Auto Algorithm = iota
	// Linear posts every leg at once in one fused phase.
	Linear
	// Pairwise exchanges with one peer per step (alltoallw).
	Pairwise
	// Ring circulates blocks neighbor-to-neighbor (allgatherv).
	Ring
	// Bruck runs log-round dissemination, the small-message winner
	// (allgatherv).
	Bruck
	// RecursiveDoubling exchanges doubling block sets; power-of-two
	// worlds only (allgatherv).
	RecursiveDoubling
	// Hierarchical aggregates on a node leader over NVLink, crosses IB
	// once per node pair, then scatters locally.
	Hierarchical
	// OneSidedRing runs the ring schedule over one-sided puts into a
	// symmetric window with slotted-signal sync — no rendezvous
	// round-trips, no target-side progress (allgatherv, alltoallw).
	OneSidedRing
	// OneSidedBruck runs log-round dissemination over one-sided puts
	// (allgatherv), or a power-of-two-phased direct-put schedule
	// (alltoallw).
	OneSidedBruck
)

var algorithmNames = [...]string{
	"auto", "linear", "pairwise", "ring", "bruck", "recursive-doubling", "hierarchical",
	"onesided-ring", "onesided-bruck",
}

// oneSided reports whether alg runs over the rma backend.
func oneSided(alg Algorithm) bool { return alg == OneSidedRing || alg == OneSidedBruck }

func (a Algorithm) String() string {
	if int(a) < len(algorithmNames) {
		return algorithmNames[a]
	}
	return "alg?"
}

// ParseAlgorithm resolves a name from the CLI/tuning surface.
func ParseAlgorithm(s string) (Algorithm, error) {
	for i, n := range algorithmNames {
		if n == s {
			return Algorithm(i), nil
		}
	}
	return Auto, fmt.Errorf("coll: unknown algorithm %q (have %v)", s, algorithmNames)
}

// Tuning overrides the selection policy; the zero value means full Auto.
type Tuning struct {
	// Per-collective algorithm overrides (Auto = size/topology policy).
	Alltoallw  Algorithm
	Allgatherv Algorithm
	Gatherv    Algorithm
	Scatterv   Algorithm
	Neighbor   Algorithm
	// SmallMsgBytes is the per-leg payload below which log-round
	// algorithms (Bruck) and plain linear post-all win over bandwidth
	// algorithms. Zero selects 8 KiB.
	SmallMsgBytes int64
	// HierMinRanks gates the hierarchical variants: below this world
	// size the two-level overhead is not worth it. Zero selects 8.
	HierMinRanks int
	// DisableFusionWindow turns off collective-scope fusion windows;
	// every launch decision falls back to the scheme's per-message
	// policy (for ablations and the "unfused" benchmark baseline).
	DisableFusionWindow bool
}

func (t Tuning) withDefaults() Tuning {
	if t.SmallMsgBytes <= 0 {
		t.SmallMsgBytes = 8 << 10
	}
	if t.HierMinRanks <= 0 {
		t.HierMinRanks = 8
	}
	return t
}

// Schedule-pass CPU cost: walking the legs and building the fused phase
// plan. Charged to trace.Scheduling on the coll timeline layer.
const (
	schedBaseNs   = 400
	schedPerLegNs = 90
)

// tagSpace is where internal/coll's tags start inside the reserved range;
// everything below (CollTagBase..tagSpace) belongs to the legacy mpi
// collectives.
const tagSpace = mpi.CollTagBase + 4096

// Tag purposes within one collective call.
const (
	tagData   = 0 // flat algorithms' payload legs
	tagSizes  = 1 // hierarchical: per-peer size tables to the leader
	tagGather = 2 // hierarchical: local contribution -> leader bundle
	tagBundle = 3 // hierarchical: leader <-> leader node bundles
	tagSlice  = 4 // hierarchical: leader -> local forwarded slices
	tagDirect = 5 // hierarchical: same-node direct legs (and self legs)
)

// batchScheme is implemented by fusion-capable schemes
// (schemes.Fusion.OpenBatch/CloseBatch); discovered by assertion so the
// mpi.Scheme interface stays unchanged.
type batchScheme interface {
	OpenBatch()
	CloseBatch(p *sim.Proc)
}

// Engine is the per-world collective engine. One engine serves all ranks;
// per-rank state is indexed by world rank ID. All collectives are SPMD
// calls: every member rank calls the same sequence.
//
// An engine is bound to a communicator (the world communicator by
// default). Sub derives an engine over a shrunken survivor communicator:
// algorithms then run in comm-rank space (peers are translated at the post
// boundary), tags carry the communicator epoch so traffic from a failed
// pre-shrink collective can never match a post-shrink retry, and the
// hierarchical two-level variants — whose leader layout is a world-rank
// property — are never selected.
type Engine struct {
	w      *mpi.World
	comm   *mpi.Comm // nil = world communicator
	tuning Tuning
	ranks  []*rankState

	rmaF *rma.Fabric // lazily created; shared by UseRMA with the facade
	osID int         // window/signal namespace id within the fabric
}

type shiftKey struct {
	uid   int64
	count int
	off   int64
}

type rankState struct {
	seq     int // collective-call sequence (tag derivation)
	staging int // unique staging-buffer names
	shifted map[shiftKey]*datatype.Layout
	contig  map[[2]int64]*datatype.Layout
	a2a     *a2aState // persistent one-sided Alltoallw negotiation (onesided.go)
}

// New builds the engine for a world.
func New(w *mpi.World, t Tuning) *Engine {
	e := &Engine{w: w, tuning: t.withDefaults()}
	for i := 0; i < w.Size(); i++ {
		e.ranks = append(e.ranks, &rankState{
			shifted: make(map[shiftKey]*datatype.Layout),
			contig:  make(map[[2]int64]*datatype.Layout),
		})
	}
	return e
}

// Tuning returns the engine's effective tuning.
func (e *Engine) Tuning() Tuning { return e.tuning }

// UseRMA points the engine at an existing one-sided fabric (the facade
// shares one fabric between user verbs and the put-based collectives).
// Without it, the first one-sided collective lazily builds a private
// fabric over the world.
func (e *Engine) UseRMA(f *rma.Fabric) {
	e.rmaF = f
	e.osID = f.NextCollID()
}

// rmaFabric returns the engine's one-sided fabric, building one on
// first use.
func (e *Engine) rmaFabric() *rma.Fabric {
	if e.rmaF == nil {
		e.UseRMA(rma.New(e.w))
	}
	return e.rmaF
}

// Sub derives an engine running over comm (typically a Shrink survivor
// communicator), inheriting the parent's tuning and one-sided fabric.
// Only members may call its collectives; ranks/roots/peer indices are
// comm ranks. The first one-sided collective on the sub-engine reseats
// the shared fabric onto comm (fresh epoch, rebuilt symmetric heap).
func (e *Engine) Sub(cm *mpi.Comm) *Engine {
	sub := &Engine{w: e.w, comm: cm, tuning: e.tuning, rmaF: e.rmaF, osID: e.osID}
	for i := 0; i < e.w.Size(); i++ {
		sub.ranks = append(sub.ranks, &rankState{
			shifted: make(map[shiftKey]*datatype.Layout),
			contig:  make(map[[2]int64]*datatype.Layout),
		})
	}
	return sub
}

// size is the number of collective participants (comm size).
func (e *Engine) size() int {
	if e.comm != nil {
		return e.comm.Size()
	}
	return e.w.Size()
}

// worldScope reports whether this engine runs over the full, unshrunk
// world — the only scope where the node-leader topology of the
// hierarchical algorithms is valid.
func (e *Engine) worldScope() bool {
	return e.comm == nil || e.comm.IsWorld()
}

// flatten downgrades topology-bound algorithm choices on a shrunken
// communicator: Hierarchical needs the world-rank node-leader layout, so
// sub-comm calls run Linear instead. The one-sided algorithms survive
// the downgrade since PR 10: the fabric reseats onto the survivor
// communicator and windows/signals address densely re-ranked members.
func (e *Engine) flatten(alg Algorithm) Algorithm {
	if alg == Hierarchical && !e.worldScope() {
		return Linear
	}
	return alg
}

// leg is one posted operation of a schedule phase.
type leg struct {
	peer  int
	tag   int
	buf   *gpu.Buffer
	l     *datatype.Layout
	count int
}

func (lg leg) empty() bool {
	return lg.count == 0 || lg.l.SizeBytes == 0
}

// call tracks one in-flight collective on one rank.
type call struct {
	e       *Engine
	r       *mpi.Rank
	p       *sim.Proc
	st      *rankState
	cm      *mpi.Comm // never nil: world comm when the engine has none
	seq     int
	batch   batchScheme // nil when windows are off for this call
	winOpen int         // fusion windows currently open (see openWin)
	all     []*mpi.Request
	t0      int64
	bytes   int64 // payload posted (sends), for the wrapper span
}

// rank is the calling rank's position in the collective's communicator.
func (c *call) rank() int { return c.cm.CommRank(c.r.ID()) }

// size is the number of participants.
func (c *call) size() int { return c.cm.Size() }

// begin runs the schedule pass: bump the call sequence, resolve the batch
// hook, and charge the plan-building cost.
func (e *Engine) begin(r *mpi.Rank, p *sim.Proc, legs int) *call {
	st := e.ranks[r.ID()]
	st.seq++
	cm := e.comm
	if cm == nil {
		cm = e.w.WorldComm()
	}
	if cm.CommRank(r.ID()) < 0 {
		panic(fmt.Sprintf("coll: rank %d is not a member of the collective's communicator (epoch %d)", r.ID(), cm.Epoch()))
	}
	c := &call{e: e, r: r, p: p, st: st, cm: cm, seq: st.seq, t0: p.Now()}
	if !e.tuning.DisableFusionWindow && r.World().Cfg.PipelineChunkBytes == 0 {
		// Pipelined rendezvous enqueues chunk packs across many progress
		// calls; holding a window open would starve them, so batching is
		// only engaged when pipelining is off.
		c.batch, _ = r.Scheme().(batchScheme)
	}
	cost := int64(schedBaseNs + schedPerLegNs*legs)
	start := p.Now()
	p.Sleep(cost)
	collCharge(r, trace.Scheduling, "schedule", start, cost)
	return c
}

// finish emits the collective's wrapper span and settles every posted
// request, joining any intermediate error with the final Waitall errors.
// Two failure-tolerance duties live here because finish is on every exit
// path: any fusion window the aborted schedule left open is force-closed
// (so pending fused pack/unpack jobs launch or drain instead of being
// stranded), and a detected peer death revokes the collective's
// communicator so every other member's pending operations fail fast
// instead of waiting out their own timeouts.
func (c *call) finish(kind string, alg Algorithm, stageErr error) error {
	for c.winOpen > 0 {
		c.closeWin()
	}
	err := c.r.Waitall(c.p, c.all)
	if stageErr != nil {
		if err != nil {
			err = fmt.Errorf("%w; %w", stageErr, err)
		} else {
			err = stageErr
		}
	}
	if err != nil && c.r.World().FTEnabled() {
		var rf *mpi.RankFailedError
		if errors.As(err, &rf) && !c.cm.Revoked(c.r) {
			c.cm.Revoke(c.p, c.r)
		}
	}
	if tl := c.r.Timeline(); tl != nil {
		tl.Span(timeline.LayerColl, timeline.CostNone, "", kind+":"+alg.String(), c.t0, c.p.Now()-c.t0,
			timeline.Arg{Key: "seq", Val: fmt.Sprint(c.seq)},
			timeline.Arg{Key: "bytes", Val: fmt.Sprint(c.bytes)},
			timeline.Arg{Key: "reqs", Val: fmt.Sprint(len(c.all))})
	}
	return err
}

// tag derives a wire tag for this call and purpose. The per-rank sequence
// is SPMD-consistent, so both endpoints of every leg agree. The
// communicator epoch is folded in so that a retry on a shrunken comm can
// never match traffic stranded by the failed pre-shrink collective.
func (c *call) tag(purpose int) int {
	return tagSpace + c.cm.Epoch()*(1<<15) + (c.seq%4096)*8 + purpose
}

// openWin opens a fusion window (no-op for non-batching schemes) and
// tracks the depth so finish can force-close windows an error-path return
// left open — an open window would otherwise strand its pending fused
// pack/unpack jobs forever.
func (c *call) openWin() {
	if c.batch == nil {
		return
	}
	c.batch.OpenBatch()
	c.winOpen++
}

// closeWin closes the innermost open fusion window, launching the fused
// work it held back.
func (c *call) closeWin() {
	if c.batch == nil || c.winOpen == 0 {
		return
	}
	c.batch.CloseBatch(c.p)
	c.winOpen--
}

// bind stamps a raw-posted request as belonging to this call's
// communicator and returns it: an in-band revocation fails it in place,
// and a post that raced past an already-arrived revocation settles
// immediately. The hierarchical bodies (which post world-rank raw legs
// directly instead of going through post) wrap every IsendRaw/IrecvRaw
// in it.
func (c *call) bind(q *mpi.Request) *mpi.Request {
	c.cm.Bind(q)
	return q
}

// post issues receives then sends (skipping empty legs identically on
// both endpoints) and returns the receive requests for gating. Leg peers
// are comm ranks; the world translation happens here, as does the
// failure-tolerance fail-fast: posts on a locally-revoked communicator
// settle immediately with ErrCommRevoked (posts to a declared-dead peer
// fail fast inside the mpi layer), and every request is bound to the
// communicator so an in-band revocation fails it in place.
func (c *call) post(recvs, sends []leg) []*mpi.Request {
	var rr []*mpi.Request
	for _, lg := range recvs {
		if lg.empty() {
			continue
		}
		peer := c.cm.WorldRank(lg.peer)
		var q *mpi.Request
		if c.cm.Revoked(c.r) {
			q = c.cm.FailedRequest(c.r, false, peer, lg.tag)
		} else {
			q = c.r.IrecvRaw(c.p, peer, lg.tag, lg.buf, lg.l, lg.count)
			c.cm.Bind(q)
		}
		c.all = append(c.all, q)
		rr = append(rr, q)
	}
	for _, lg := range sends {
		if lg.empty() {
			continue
		}
		c.bytes += lg.l.SizeBytes * int64(lg.count)
		peer := c.cm.WorldRank(lg.peer)
		var q *mpi.Request
		if c.cm.Revoked(c.r) {
			q = c.cm.FailedRequest(c.r, true, peer, lg.tag)
		} else {
			q = c.r.IsendRaw(c.p, peer, lg.tag, lg.buf, lg.l, lg.count)
			c.cm.Bind(q)
		}
		c.all = append(c.all, q)
	}
	return rr
}

// gate drives the progress engine until every listed receive has either
// settled or handed its unpack/DirectIPC work to the scheme — the point
// where the open fusion window has seen all of the phase's incoming GPU
// work and can close. Sends are never gated (their completion may depend
// on the peer's window, which would deadlock).
func (c *call) gate(reqs []*mpi.Request) {
	poll := c.r.World().Cfg.PollIntervalNs
	for {
		// With an open fusion window this is held (CloseBatch launches);
		// without one it launches packs the peers' envelopes depend on,
		// exactly as Waitall would.
		c.r.Scheme().Flush(c.p)
		c.r.Progress(c.p)
		ready := true
		for _, q := range reqs {
			if !q.Done() && !q.Failed() && !q.Processing() {
				ready = false
				break
			}
		}
		if ready {
			return
		}
		start := c.p.Now()
		c.p.Sleep(poll)
		collCharge(c.r, trace.Comm, "gate-poll", start, poll)
	}
}

// / exchangePhase runs one self-contained fused phase: window around the
// posts (one fused pack launch), window around the arrivals (one fused
// unpack/IPC launch), then settle the phase's requests.
func (c *call) exchangePhase(recvs, sends []leg) error {
	if c.batch != nil {
		c.openWin()
	}
	first := len(c.all)
	rr := c.post(recvs, sends)
	if c.batch != nil {
		c.closeWin() // fused pack launch for the phase
		c.openWin()
		c.gate(rr)
		c.closeWin() // fused unpack/IPC launch for the phase
	}
	reqs := c.all[first:]
	return c.r.Waitall(c.p, reqs)
}

// subsetWait settles just the given requests (progress keeps every other
// in-flight request moving too).
func (c *call) subsetWait(reqs []*mpi.Request) error {
	return c.r.Waitall(c.p, reqs)
}

// waitHandles polls scheme handles (direct unpack jobs the engine issued
// itself) to completion, keeping the progress engine moving.
func (c *call) waitHandles(hs []mpi.Handle) error {
	poll := c.r.World().Cfg.PollIntervalNs
	for {
		var err error
		done := 0
		for _, h := range hs {
			if herr := h.Err(); herr != nil {
				err = herr
				done++
				continue
			}
			if h.Done(c.p) {
				done++
			}
		}
		if done == len(hs) {
			return err
		}
		// Jobs behind these handles sit in the fusion scheduler's pending
		// queue; outside a window nothing else launches them (raw handles
		// bypass Waitall's flush), so drive the launch ourselves.
		c.r.Scheme().Flush(c.p)
		c.r.Progress(c.p)
		start := c.p.Now()
		c.p.Sleep(poll)
		collCharge(c.r, trace.Sync, "handle-poll", start, poll)
	}
}

// staging allocates a uniquely named device staging buffer for this rank.
func (c *call) staging(kind string, n int64) *gpu.Buffer {
	c.st.staging++
	if n <= 0 {
		n = 1
	}
	return c.r.Dev.Alloc(fmt.Sprintf("coll-%s-%d-%d", kind, c.r.ID(), c.st.staging), int(n))
}

// shifted returns l's blocks repeated count times and displaced by off
// bytes, committed as a reusable layout (cached per rank per signature).
func (c *call) shifted(l *datatype.Layout, count int, off int64) *datatype.Layout {
	key := shiftKey{uid: l.UID, count: count, off: off}
	if sl, ok := c.st.shifted[key]; ok {
		return sl
	}
	blocks := l.Repeat(count)
	lens := make([]int, len(blocks))
	displs := make([]int64, len(blocks))
	for i, b := range blocks {
		lens[i] = int(b.Len)
		displs[i] = off + b.Offset
	}
	sl := datatype.Commit(datatype.Hindexed(lens, displs, datatype.Byte))
	c.st.shifted[key] = sl
	return sl
}

// bytesAt returns a contiguous n-byte layout at byte offset off (cached).
func (c *call) bytesAt(off, n int64) *datatype.Layout {
	key := [2]int64{off, n}
	if l, ok := c.st.contig[key]; ok {
		return l
	}
	var l *datatype.Layout
	if off == 0 {
		l = datatype.Commit(datatype.Contiguous(int(n), datatype.Byte))
	} else {
		l = datatype.Commit(datatype.Hindexed([]int{int(n)}, []int64{off}, datatype.Byte))
	}
	c.st.contig[key] = l
	return l
}

// unpackJob enqueues a direct unpack of staging[off:off+size] into the
// blocks of l×count within buf, returning the scheme handle. Inside a
// window these jobs fuse with everything else pending.
func (c *call) unpackJob(staging, buf *gpu.Buffer, l *datatype.Layout, count int, off int64) mpi.Handle {
	e := c.r.LayoutEntry(l, count)
	job := pack.NewJob(pack.OpUnpack, staging, buf, e.Blocks)
	job.Plan = e.Plan
	job.OriginOff = off
	return c.r.Scheme().Unpack(c.p, job)
}

// collCharge mirrors a Breakdown charge as a coll-layer timeline span —
// the pairing that keeps timeline sums reconciled with trace.Breakdown.
func collCharge(r *mpi.Rank, cat trace.Category, name string, start, d int64) {
	r.Trace.Add(cat, d)
	if tl := r.Timeline(); tl != nil {
		tl.Span(timeline.LayerColl, cat, "", name, start, d)
	}
}

// --- topology helpers ---

func (e *Engine) gpusPerNode() int { return e.w.Cluster.Spec.GPUsPerNode }
func (e *Engine) nodes() int       { return e.w.Cluster.Spec.Nodes }

// leaderOf returns the node-leader rank (first rank of the node).
func (e *Engine) leaderOf(node int) int { return node * e.gpusPerNode() }

// nodeOf returns the node a rank lives on.
func (e *Engine) nodeOf(rank int) int { return rank / e.gpusPerNode() }

// localRanks lists the ranks of one node in ascending order.
func (e *Engine) localRanks(node int) []int {
	gpn := e.gpusPerNode()
	out := make([]int, 0, gpn)
	for i := 0; i < gpn; i++ {
		out = append(out, node*gpn+i)
	}
	return out
}

// topoHierarchical reports whether the cluster shape justifies two-level
// algorithms: multiple nodes, multiple GPUs per node to aggregate over,
// enough ranks to amortize the extra hop — and world scope, because the
// node-leader layout is a world-rank property that a shrunken survivor
// communicator no longer matches.
func (e *Engine) topoHierarchical() bool {
	return e.worldScope() && e.nodes() > 1 && e.gpusPerNode() > 1 && e.w.Size() >= e.tuning.HierMinRanks
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
