package coll

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// NeighborAlltoallw exchanges per-neighbor datatyped legs — the paper's
// bulk non-contiguous transfer pattern (MPI_Neighbor_alltoallw). ops keep
// their topology order: the k-th leg to a peer on one side matches the
// k-th leg from that peer on the other (index-FIFO matching), so both
// endpoints must list any repeated peer in the same order, as the MPI
// graph-topology contract guarantees.
//
// The whole exchange is ONE fused phase: every leg's pack launches as a
// single kernel, and every arrival's unpack/IPC scatter as another —
// this supersedes mpi.(*Rank).NeighborExchange, which batches only
// per-message.
func (e *Engine) NeighborAlltoallw(p *sim.Proc, r *mpi.Rank, ops []mpi.NeighborOp) error {
	alg := e.tuning.Neighbor
	if err := validAlg("neighbor-alltoallw", alg, Linear); err != nil {
		return err
	}
	for _, op := range ops {
		if op.Peer < 0 || op.Peer >= e.size() {
			return fmt.Errorf("coll: NeighborAlltoallw: peer %d out of range", op.Peer)
		}
	}
	c := e.begin(r, p, 2*len(ops))
	recvs := make([]leg, 0, len(ops))
	sends := make([]leg, 0, len(ops))
	for _, op := range ops {
		count := op.Count
		if count == 0 {
			count = 1
		}
		recvs = append(recvs, leg{peer: op.Peer, tag: c.tag(tagData), buf: op.RecvBuf, l: op.RecvType, count: count})
		sends = append(sends, leg{peer: op.Peer, tag: c.tag(tagData), buf: op.SendBuf, l: op.SendType, count: count})
	}
	err := c.exchangePhase(recvs, sends)
	return c.finish("neighbor-alltoallw", Linear, err)
}
